package lifeguard_test

import (
	"net/netip"
	"testing"
	"time"

	"lifeguard"
	"lifeguard/internal/core/isolation"
	"lifeguard/internal/core/remedy"
	"lifeguard/internal/splice"
	"lifeguard/internal/topo"
)

// Fig. 2 cast, built through the public API.
const (
	asO lifeguard.ASN = 10
	asB lifeguard.ASN = 20
	asA lifeguard.ASN = 30
	asC lifeguard.ASN = 40
	asD lifeguard.ASN = 50
	asE lifeguard.ASN = 60
	asF lifeguard.ASN = 70
)

func fig2Network(t *testing.T) *lifeguard.Network {
	t.Helper()
	b := lifeguard.NewTopologyBuilder()
	for _, asn := range []lifeguard.ASN{asO, asB, asA, asC, asD, asE, asF} {
		b.AddAS(asn, "")
		b.AddRouter(asn, "")
	}
	for _, r := range [][2]lifeguard.ASN{{asO, asB}, {asB, asA}, {asB, asC}, {asC, asD}, {asA, asE}, {asD, asE}, {asF, asA}} {
		b.Provider(r[0], r[1])
		b.ConnectAS(r[0], r[1])
	}
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := lifeguard.AssembleNetwork(top, lifeguard.NetworkOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestEndToEndRepairLifecycle drives the complete LIFEGUARD loop on the
// Fig. 2 scenario: a silent reverse-path failure in A is detected, isolated
// to A, repaired by poisoning, and the poison is withdrawn once the sentinel
// sees the failure heal — the §6 case study in miniature.
func TestEndToEndRepairLifecycle(t *testing.T) {
	n := fig2Network(t)
	target := n.RouterAddr(n.Hub(asE))
	sys := lifeguard.NewSystem(n, lifeguard.Config{
		Origin:  asO,
		VPs:     []lifeguard.RouterID{n.Hub(asO), n.Hub(asC)},
		Targets: []netip.Addr{target},
	})
	sys.Start()
	n.Clk.RunFor(3 * time.Minute) // healthy baseline

	failAt := n.Clk.Now()
	fid := n.InjectFailure(lifeguard.BlackholeASTowards(asA, lifeguard.Block(asO)))
	n.Clk.RunFor(20 * time.Minute)

	// Outage detected and isolated to A, reverse direction.
	outages := sys.EventsOfKind(lifeguard.EventOutage)
	if len(outages) == 0 {
		t.Fatal("no outage detected")
	}
	isolated := sys.EventsOfKind(lifeguard.EventIsolated)
	if len(isolated) == 0 {
		t.Fatal("no isolation ran")
	}
	rep := isolated[0].Report
	if rep.Blamed != topo.ASN(asA) || rep.Direction != isolation.Reverse {
		t.Fatalf("isolated %d/%v, want A/reverse", rep.Blamed, rep.Direction)
	}

	// Repair: poisoned, and not before the outage aged past the threshold.
	repairs := sys.EventsOfKind(lifeguard.EventRepair)
	if len(repairs) == 0 {
		t.Fatal("no repair decision")
	}
	if repairs[0].Action != remedy.Poisoned {
		t.Fatalf("repair action = %v, want poisoned", repairs[0].Action)
	}
	if repairs[0].At < failAt+5*time.Minute {
		t.Fatalf("poisoned at %v, before the 5-minute maturity threshold (fail at %v)",
			repairs[0].At, failAt)
	}

	// Traffic recovered while the underlying failure persists.
	if len(sys.EventsOfKind(lifeguard.EventRecovered)) == 0 {
		t.Fatal("monitored traffic did not recover after poisoning")
	}
	if sys.Remedy.Active() == nil {
		t.Fatal("poison should still be active while A is broken")
	}
	// E must be routing around A on the production prefix.
	r, ok := n.Eng.BestRoute(topo.ASN(asE), lifeguard.ProductionPrefix(asO))
	if !ok || r.Path[0] != topo.ASN(asD) {
		t.Fatalf("E production route = %+v, want via D", r)
	}

	// Heal: the sentinel notices and the poison is withdrawn.
	n.HealFailure(fid)
	n.Clk.RunFor(10 * time.Minute)
	if sys.Remedy.Active() != nil {
		t.Fatal("poison not withdrawn after healing")
	}
	if len(sys.EventsOfKind(lifeguard.EventUnpoison)) != 1 {
		t.Fatal("missing unpoison event")
	}
	n.Converge()
	r, _ = n.Eng.BestRoute(topo.ASN(asE), lifeguard.ProductionPrefix(asO))
	if r.Path[0] != topo.ASN(asA) {
		t.Fatalf("E should return to the A path after unpoison, got %v", r.Path)
	}
	sys.Stop()
}

func TestObserverModeNeverPoisons(t *testing.T) {
	n := fig2Network(t)
	target := n.RouterAddr(n.Hub(asE))
	sys := lifeguard.NewSystem(n, lifeguard.Config{
		Origin:            asO,
		VPs:               []lifeguard.RouterID{n.Hub(asO), n.Hub(asC)},
		Targets:           []netip.Addr{target},
		DisableAutoRepair: true,
	})
	sys.Start()
	n.Clk.RunFor(time.Minute)
	n.InjectFailure(lifeguard.BlackholeASTowards(asA, lifeguard.Block(asO)))
	n.Clk.RunFor(20 * time.Minute)
	if len(sys.EventsOfKind(lifeguard.EventOutage)) == 0 {
		t.Fatal("observer should still detect outages")
	}
	if len(sys.EventsOfKind(lifeguard.EventRepair)) != 0 {
		t.Fatal("observer mode must not repair")
	}
	if sys.Remedy.Active() != nil {
		t.Fatal("phantom poison")
	}
}

// TestRepairOnGeneratedInternet runs the whole pipeline on a synthetic
// Internet: pick a transit AS on the reverse path from a target stub to the
// origin stub, break it silently, and verify LIFEGUARD repairs it.
func TestRepairOnGeneratedInternet(t *testing.T) {
	n, err := lifeguard.GenerateInternet(lifeguard.InternetConfig{
		Seed: 42, NumTransit: 12, NumStub: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	origin := n.Gen.Stubs[0]

	// Choose a target stub whose reverse path to the origin has a transit
	// AS that can be avoided (an alternate valley-free path exists).
	var targetAS, blameAS lifeguard.ASN
search:
	for _, cand := range n.Gen.Stubs[1:] {
		path := n.Eng.ASPathTo(topo.ASN(cand), lifeguard.ProductionAddr(origin))
		for _, hop := range path {
			if hop == topo.ASN(origin) || hop == topo.ASN(cand) {
				continue
			}
			if splice.CanReach(n.Top, topo.ASN(cand), topo.ASN(origin), splice.Avoid1(hop)) {
				targetAS, blameAS = cand, lifeguard.ASN(hop)
				break search
			}
		}
	}
	if targetAS == 0 {
		t.Skip("no avoidable transit found for this seed")
	}

	target := n.RouterAddr(n.Hub(targetAS))
	helper := n.Gen.Stubs[len(n.Gen.Stubs)-1]
	sys := lifeguard.NewSystem(n, lifeguard.Config{
		Origin:  origin,
		VPs:     []lifeguard.RouterID{n.Hub(origin), n.Hub(helper)},
		Targets: []netip.Addr{target},
	})
	sys.Start()
	n.Clk.RunFor(2 * time.Minute)
	n.InjectFailure(lifeguard.BlackholeASTowards(blameAS, lifeguard.Block(origin)))
	n.Clk.RunFor(30 * time.Minute)

	repairs := sys.EventsOfKind(lifeguard.EventRepair)
	if len(repairs) == 0 {
		t.Fatal("no repair on generated internet")
	}
	if repairs[0].Action != remedy.Poisoned {
		t.Fatalf("action = %v (blamed %d, injected %d)", repairs[0].Action, repairs[0].Avoided, blameAS)
	}
	if repairs[0].Avoided != topo.ASN(blameAS) {
		t.Fatalf("poisoned %d, injected failure at %d", repairs[0].Avoided, blameAS)
	}
	if len(sys.EventsOfKind(lifeguard.EventRecovered)) == 0 {
		t.Fatal("traffic did not recover")
	}
}
