package lifeguard_test

import (
	"net/netip"
	"testing"
	"time"

	"lifeguard"
	"lifeguard/internal/obs"
)

// fig2HijackNetwork is fig2Network with a journal and metrics registry, the
// instrumentation the hijack e2e assertions read back.
func fig2HijackNetwork(t *testing.T) *lifeguard.Network {
	t.Helper()
	b := lifeguard.NewTopologyBuilder()
	for _, asn := range []lifeguard.ASN{asO, asB, asA, asC, asD, asE, asF} {
		b.AddAS(asn, "")
		b.AddRouter(asn, "")
	}
	for _, r := range [][2]lifeguard.ASN{{asO, asB}, {asB, asA}, {asB, asC}, {asC, asD}, {asA, asE}, {asD, asE}, {asF, asA}} {
		b.Provider(r[0], r[1])
		b.ConnectAS(r[0], r[1])
	}
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := lifeguard.AssembleNetwork(top, lifeguard.NetworkOptions{
		Seed:    11,
		Obs:     obs.New(),
		Journal: obs.NewJournal(1 << 14),
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestEndToEndHijackPipeline is the hijack plane's §6-style case study: a
// scripted sub-prefix hijack by rogue F against owner O's space is injected
// through the chaos runner while a Session with the hijack plane enabled
// defends. The detector must classify the attack from collector streams,
// the responder must re-claim the prefix and verify data-plane recovery,
// the cleared attack must leave zero chaos invariant violations, and every
// stage must land in the journal with its measured sim-time latency.
func TestEndToEndHijackPipeline(t *testing.T) {
	n := fig2HijackNetwork(t)
	ses := lifeguard.NewSession(n, lifeguard.SessionConfig{
		Config: lifeguard.Config{Origin: asO},
		Hijack: lifeguard.HijackConfig{
			Enable:         true,
			CollectorPeers: []lifeguard.ASN{asA, asB, asE},
		},
	})
	ses.Start()
	n.Clk.RunFor(1 * time.Minute)

	sub := netip.MustParsePrefix("1.10.128.0/24")
	script, err := lifeguard.ParseChaosScript("at 1m for 20m subhijack 70 1.10.128.0/24\nat 30m check")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := n.RunChaos(script, lifeguard.ChaosOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("chaos violations despite detect→mitigate→clear:\n%s", rep)
	}

	// Detection: classified as sub-prefix, rogue F, with positive latency.
	detected := ses.EventsOfKind(lifeguard.EventHijackDetected)
	if len(detected) != 1 {
		t.Fatalf("%d hijack-detected events, want 1", len(detected))
	}
	a := detected[0].Alarm
	if a.Prefix != sub || a.Rogue != asF || a.Owner != asO {
		t.Fatalf("misattributed alarm: %v", a)
	}
	if a.Latency <= 0 {
		t.Fatalf("detection latency %v, want > 0", a.Latency)
	}

	// Mitigation: counter-announced with the rogue poisoned, verified from
	// the owner's provider, latency measured from detection.
	mitigated := ses.EventsOfKind(lifeguard.EventHijackMitigated)
	if len(mitigated) != 1 {
		t.Fatalf("%d hijack-mitigated events, want 1", len(mitigated))
	}
	m := mitigated[0].Mitigation
	if m.Poisoned != asF {
		t.Fatalf("mitigation poisoned %d, want the rogue %d", m.Poisoned, asF)
	}
	if m.Latency <= 0 || m.Recovered != m.Vantages || m.Vantages == 0 {
		t.Fatalf("unverified mitigation: latency %v, recovered %d/%d",
			m.Latency, m.Recovered, m.Vantages)
	}

	// Clearance: the alarm cleared after the rogue withdrew, and the
	// counter-announcement was withdrawn with it.
	cleared := ses.EventsOfKind(lifeguard.EventHijackCleared)
	if len(cleared) != 1 {
		t.Fatalf("%d hijack-cleared events, want 1", len(cleared))
	}
	if len(ses.Hijack.Active()) != 0 {
		t.Fatal("alarm still active at end of run")
	}
	if got := len(ses.Remedy.Counters()); got != 0 {
		t.Fatalf("%d counter-announcements still installed", got)
	}

	// The journal carries all three stages, with the detection and
	// mitigation records each bearing a measured latency field.
	hasLatency := func(e obs.Event) bool {
		for _, f := range e.Fields {
			if f.Key == "latency" && f.Value != "" && f.Value != "0s" {
				return true
			}
		}
		return false
	}
	var sawDetected, sawMitigated, sawCleared bool
	for _, e := range n.Journal.Events() {
		switch e.Kind {
		case "hijack-detected":
			sawDetected = sawDetected || hasLatency(e)
		case "hijack-mitigated":
			sawMitigated = sawMitigated || hasLatency(e)
		case "hijack-cleared":
			sawCleared = true
		}
	}
	if !sawDetected || !sawMitigated || !sawCleared {
		t.Fatalf("journal missing hijack stages: detected=%v mitigated=%v cleared=%v",
			sawDetected, sawMitigated, sawCleared)
	}
}
