package lifeguard

import (
	"fmt"
	"net/netip"
	"time"

	"lifeguard/internal/atlas"
	"lifeguard/internal/core/isolation"
	"lifeguard/internal/core/remedy"
	"lifeguard/internal/hijack"
	"lifeguard/internal/monitor"
)

// Config parameterizes a System deployment.
type Config struct {
	// Origin is the AS whose prefixes LIFEGUARD manages.
	Origin ASN
	// VPs are the vantage-point routers used for monitoring and
	// isolation (the PlanetLab role in the paper).
	VPs []RouterID
	// Targets are the destinations monitored for reachability.
	Targets []netip.Addr

	// Monitor, Atlas, Isolation and Remedy tune the subsystems; zero
	// values select paper-calibrated defaults.
	Monitor   monitor.Config
	Atlas     atlas.Config
	Isolation isolation.Config
	Remedy    remedy.Config

	// DisableAutoRepair turns the system into a pure observer: outages
	// are detected and isolated but never poisoned.
	DisableAutoRepair bool
}

// EventKind classifies Session history entries.
type EventKind int

// Session event kinds. New kinds are appended — the numeric values of
// existing kinds are part of the journal compatibility surface.
const (
	EventOutage EventKind = iota
	EventIsolated
	EventRepair
	EventUnpoison
	EventRecovered
	EventControlCrash
	EventControlRestore
	EventFailsafeEnter
	EventFailsafeExit
	EventHijackDetected
	EventHijackMitigated
	EventHijackCleared
)

// String names the event kind. Unknown values render as "eventkind(N)" —
// stable across enum growth, so forward-compatible consumers can log them
// without aliasing distinct unknown kinds to one string.
func (k EventKind) String() string {
	switch k {
	case EventOutage:
		return "outage"
	case EventIsolated:
		return "isolated"
	case EventRepair:
		return "repair"
	case EventUnpoison:
		return "unpoison"
	case EventRecovered:
		return "recovered"
	case EventControlCrash:
		return "control-crash"
	case EventControlRestore:
		return "control-restore"
	case EventFailsafeEnter:
		return "failsafe-enter"
	case EventFailsafeExit:
		return "failsafe-exit"
	case EventHijackDetected:
		return "hijack-detected"
	case EventHijackMitigated:
		return "hijack-mitigated"
	case EventHijackCleared:
		return "hijack-cleared"
	default:
		return fmt.Sprintf("eventkind(%d)", int(k))
	}
}

// Event is one entry of a session's history log.
type Event struct {
	At     time.Duration
	Kind   EventKind
	VP     RouterID
	Target netip.Addr
	// Report is set for EventIsolated.
	Report *isolation.Report
	// Action is set for EventRepair (it may be a refusal such as
	// NoAlternate).
	Action remedy.Action
	// Avoided is set for EventRepair/EventUnpoison when a poison was
	// involved.
	Avoided ASN
	// Alarm is set for the hijack events (EventHijackDetected, -Mitigated,
	// -Cleared); Mitigation additionally for EventHijackMitigated.
	Alarm      *hijack.Alarm
	Mitigation *hijack.Mitigation
}

// System is the single-tenant compatibility facade: one LIFEGUARD session
// welded to one Network, exactly the shape the pre-Rig code used. It is a
// thin wrapper — an unlabelled Session with the historical journal
// subsystem ("system") and unscoped metrics — so existing tests,
// experiments, and CLIs keep their byte-identical outputs. New code that
// wants more than one tenant, control-plane restarts, or failsafe wiring
// should use Rig/Session directly.
type System struct {
	*Session
}

// NewSystem wires a System over the network. Call Start to begin
// monitoring, then advance the network clock.
func NewSystem(n *Network, cfg Config) *System {
	return &System{Session: newSession(n, SessionConfig{Config: cfg})}
}
