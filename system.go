package lifeguard

import (
	"net/netip"
	"time"

	"lifeguard/internal/atlas"
	"lifeguard/internal/core/isolation"
	"lifeguard/internal/core/remedy"
	"lifeguard/internal/monitor"
	"lifeguard/internal/obs"
	"lifeguard/internal/topo"
)

// Config parameterizes a System deployment.
type Config struct {
	// Origin is the AS whose prefixes LIFEGUARD manages.
	Origin ASN
	// VPs are the vantage-point routers used for monitoring and
	// isolation (the PlanetLab role in the paper).
	VPs []RouterID
	// Targets are the destinations monitored for reachability.
	Targets []netip.Addr

	// Monitor, Atlas, Isolation and Remedy tune the subsystems; zero
	// values select paper-calibrated defaults.
	Monitor   monitor.Config
	Atlas     atlas.Config
	Isolation isolation.Config
	Remedy    remedy.Config

	// DisableAutoRepair turns the system into a pure observer: outages
	// are detected and isolated but never poisoned.
	DisableAutoRepair bool
}

// EventKind classifies System history entries.
type EventKind int

// System event kinds.
const (
	EventOutage EventKind = iota
	EventIsolated
	EventRepair
	EventUnpoison
	EventRecovered
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventOutage:
		return "outage"
	case EventIsolated:
		return "isolated"
	case EventRepair:
		return "repair"
	case EventUnpoison:
		return "unpoison"
	case EventRecovered:
		return "recovered"
	default:
		return "unknown"
	}
}

// Event is one entry of the system's history log.
type Event struct {
	At     time.Duration
	Kind   EventKind
	VP     RouterID
	Target netip.Addr
	// Report is set for EventIsolated.
	Report *isolation.Report
	// Action is set for EventRepair (it may be a refusal such as
	// NoAlternate).
	Action remedy.Action
	// Avoided is set for EventRepair/EventUnpoison when a poison was
	// involved.
	Avoided ASN
}

// System is the full LIFEGUARD deployment over a Network: reachability
// monitoring feeding failure isolation feeding the poisoning controller,
// all driven by the virtual clock.
type System struct {
	Net      *Network
	Atlas    *atlas.Atlas
	Monitor  *monitor.Monitor
	Isolator *isolation.Isolator
	Remedy   *remedy.Controller

	cfg Config

	// History records everything the system did.
	History []Event
}

// NewSystem wires a System over the network. Call Start to begin
// monitoring, then advance the network clock.
func NewSystem(n *Network, cfg Config) *System {
	cfg.Remedy.Origin = cfg.Origin
	s := &System{Net: n, cfg: cfg}

	s.Atlas = atlas.New(n.Top, n.Prober, n.Clk, cfg.Atlas)
	for _, vp := range cfg.VPs {
		s.Atlas.AddVP(vp)
	}
	for _, t := range cfg.Targets {
		s.Atlas.AddTarget(t)
	}

	s.Monitor = monitor.New(n.Prober, n.Clk, cfg.Monitor)
	s.Monitor.Atlas = s.Atlas
	for _, vp := range cfg.VPs {
		for _, t := range cfg.Targets {
			// Vantage points inside the origin AS probe from the
			// production prefix, so the monitored reachability is
			// exactly the traffic poisoning repairs.
			if n.Top.Router(vp).AS == cfg.Origin {
				s.Monitor.WatchFrom(vp, topo.ProductionAddr(cfg.Origin), t)
			} else {
				s.Monitor.Watch(vp, t)
			}
		}
	}

	s.Isolator = isolation.New(n.Top, n.Prober, s.Atlas, n.Clk, cfg.Isolation)
	s.Remedy = remedy.New(n.Eng, n.Prober, n.Clk, cfg.Remedy)

	// A nil registry makes every Instrument call a no-op, so wiring is
	// unconditional.
	s.Monitor.Instrument(n.Obs)
	s.Isolator.Instrument(n.Obs)
	s.Remedy.Instrument(n.Obs)

	s.Monitor.OnOutage = s.handleOutage
	s.Monitor.OnRecovery = func(o *monitor.Outage) {
		s.log(Event{At: n.Clk.Now(), Kind: EventRecovered, VP: o.VP, Target: o.Target})
	}
	s.Remedy.OnUnpoison = func(r *remedy.Repair) {
		s.log(Event{At: n.Clk.Now(), Kind: EventUnpoison, Target: r.Victim, Avoided: r.Avoided})
	}
	return s
}

// Start announces the origin's production and sentinel prefixes and begins
// the atlas refresh and monitoring loops.
func (s *System) Start() {
	s.Remedy.AnnounceBaseline()
	s.Atlas.Start()
	s.Monitor.Start()
}

// Stop halts monitoring and atlas refresh (an active poison stays in place
// until its sentinel clears it or Remedy.Unpoison is called).
func (s *System) Stop() {
	s.Monitor.Stop()
	s.Atlas.Stop()
}

func (s *System) log(e Event) {
	s.History = append(s.History, e)
	if j := s.Net.Journal; j.Enabled() {
		fields := []obs.Field{
			obs.F("vp", e.VP),
			obs.F("target", e.Target),
		}
		if e.Kind == EventRepair {
			fields = append(fields, obs.F("action", e.Action), obs.F("avoided", e.Avoided))
		}
		if e.Kind == EventUnpoison {
			fields = append(fields, obs.F("avoided", e.Avoided))
		}
		j.Record(e.At, "system", e.Kind.String(), fields...)
	}
}

// handleOutage runs the paper's §4.2 pipeline: isolate now, then decide to
// poison once the measurements would have completed and the outage has aged
// past the threshold.
func (s *System) handleOutage(o *monitor.Outage) {
	now := s.Net.Clk.Now()
	s.log(Event{At: now, Kind: EventOutage, VP: o.VP, Target: o.Target})

	rep := s.Isolator.Isolate(o.VP, o.Target)
	s.log(Event{At: now, Kind: EventIsolated, VP: o.VP, Target: o.Target, Report: rep})
	if rep.Healed || s.cfg.DisableAutoRepair {
		return
	}

	// The poison decision happens after isolation would have finished
	// and no earlier than the minimum outage age.
	decideAt := now + rep.EstimatedDuration
	minAge := s.Remedy.Config().MinOutageAge
	if t := o.Start + minAge; t > decideAt {
		decideAt = t
	}
	s.Net.Clk.At(decideAt, func() {
		if !s.Monitor.Down(o.VP, o.Target) {
			return // healed while we waited
		}
		action := s.Remedy.DecideAndRepair(rep, o.Start)
		s.log(Event{
			At: s.Net.Clk.Now(), Kind: EventRepair, VP: o.VP, Target: o.Target,
			Report: rep, Action: action, Avoided: rep.Blamed,
		})
	})
}

// EventsOfKind filters the history.
func (s *System) EventsOfKind(k EventKind) []Event {
	var out []Event
	for _, e := range s.History {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}
