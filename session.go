package lifeguard

import (
	"fmt"
	"time"

	"lifeguard/internal/atlas"
	"lifeguard/internal/bgp"
	"lifeguard/internal/collectors"
	"lifeguard/internal/core/isolation"
	"lifeguard/internal/core/remedy"
	"lifeguard/internal/hijack"
	"lifeguard/internal/monitor"
	"lifeguard/internal/obs"
	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
)

// FailsafeConfig bounds how long a session may run blind before it stops
// trusting itself. The contract mirrors the failsafe-timing specification
// the design docs cite: with a monitor round expected every Interval, the
// watchdog declares monitor loss after MissedRounds intervals plus Grace —
// at the defaults (3 missed 30s rounds + 5s) no more than 95 seconds pass
// between the last completed round and the FAILSAFE journal entry. While
// in FAILSAFE the session suspends repair actions (poisoning on stale
// reachability data is worse than not poisoning) and exits on the first
// completed round after the monitor returns.
type FailsafeConfig struct {
	// MissedRounds is how many monitor intervals may elapse without a
	// completed round before FAILSAFE is entered. Default 3.
	MissedRounds int
	// Grace is the additional timeout on top of the missed rounds,
	// absorbing in-flight probe latency. Default 5s.
	Grace time.Duration
	// Disable turns the watchdog off entirely.
	Disable bool
}

func (c FailsafeConfig) withDefaults() FailsafeConfig {
	if c.MissedRounds == 0 {
		c.MissedRounds = 3
	}
	if c.Grace == 0 {
		c.Grace = 5 * time.Second
	}
	return c
}

// MaxDelay is the contractual detection bound: the longest a monitor loss
// can go unnoticed, measured from the last completed round.
func (c FailsafeConfig) MaxDelay(interval time.Duration) time.Duration {
	c = c.withDefaults()
	return time.Duration(c.MissedRounds)*interval + c.Grace
}

// HijackConfig enables the ARTEMIS-style hijack plane for a session: a
// route-collector view feeding a detector, and (unless disabled) an
// auto-responder that counter-announces and verifies recovery.
type HijackConfig struct {
	// Enable turns the hijack plane on. Off (the zero value), a session
	// behaves exactly as before this subsystem existed.
	Enable bool
	// CollectorPeers are the ASes whose best-route streams the detector
	// consumes — the RouteViews/RIS peer set. Default: the origin's
	// providers.
	CollectorPeers []ASN
	// ScanInterval is the detection poll period. Default 10s.
	ScanInterval time.Duration
	// Vantages are the ASes whose data-plane view verifies mitigation;
	// default the origin's providers.
	Vantages []ASN
	// VerifyInterval is the recovery-poll period. Default 30s.
	VerifyInterval time.Duration
	// DisableAutoMitigate makes the hijack plane detection-only: alarms
	// are raised and journaled but nothing is counter-announced.
	DisableAutoMitigate bool
}

// SessionConfig parameterizes one tenant's Session over a shared Rig.
type SessionConfig struct {
	Config

	// Hijack enables and tunes the session's hijack detection/mitigation
	// plane.
	Hijack HijackConfig

	// Tenant labels the session's obs partition and journal records.
	// Defaults to "AS<origin>". The single-session compatibility System
	// leaves it empty: metrics stay unscoped and journal records keep the
	// historical "system" subsystem, byte-identical to the pre-Rig facade.
	Tenant string

	// Failsafe tunes the monitor-loss watchdog.
	Failsafe FailsafeConfig

	// NoGracefulRestart disables graceful-restart semantics for
	// CrashControl/Restart: the crash then withdraws every announcement
	// the origin had installed and re-announces on restore, so remote
	// routers lose their routes for the duration — the classic restart
	// behaviour graceful restart exists to avoid. The zero value (graceful
	// on) is the production default.
	NoGracefulRestart bool
}

// Session is one tenant of a Rig: an origin AS's monitor → isolation →
// repair pipeline, with its own event history and obs partition, sharing
// the Rig's internetwork and clock with every other session. The
// control-plane lifecycle (Start/Stop/CrashControl/RestoreControl/Restart)
// is decoupled from the data plane: the tenant's announced routes — and so
// the forwarding of its traffic — survive a control crash when graceful
// restart is on.
type Session struct {
	Net      *Network
	Atlas    *atlas.Atlas
	Monitor  *monitor.Monitor
	Isolator *isolation.Isolator
	Remedy   *remedy.Controller

	// Collector, Hijack and HijackResponder form the session's hijack
	// plane; all nil unless SessionConfig.Hijack.Enable was set
	// (HijackResponder additionally nil under DisableAutoMitigate).
	Collector       *collectors.Collector
	Hijack          *hijack.Detector
	HijackResponder *hijack.Responder

	// Traffic is the session's flow-population generator; nil until
	// AttachTraffic wires one.
	Traffic *TrafficGenerator

	cfg SessionConfig

	// History records everything the session did.
	History []Event

	// Obs is the session's metrics partition: a child view of the
	// network's registry scoped by tenant, the network registry itself for
	// an unlabelled (compat) session, or nil when uninstrumented.
	Obs *obs.Registry

	started bool
	crashed bool

	// Graceful-restart state: announcements captured at a non-graceful
	// crash, replayed on restore.
	savedOrigins []bgp.OriginAnnouncement

	// Failsafe watchdog state.
	failsafe  bool
	lastRound time.Duration
	watchdog  simclock.EventID
	maxDelay  time.Duration
}

// newSession wires a session over the network without starting it.
func newSession(n *Network, cfg SessionConfig) *Session {
	cfg.Remedy.Origin = cfg.Origin
	cfg.Failsafe = cfg.Failsafe.withDefaults()
	s := &Session{Net: n, cfg: cfg}

	s.Obs = n.Obs
	if cfg.Tenant != "" {
		s.Obs = n.Obs.Child(obs.L("tenant", cfg.Tenant))
	}

	s.Atlas = atlas.New(n.Top, n.Prober, n.Clk, cfg.Atlas)
	for _, vp := range cfg.VPs {
		s.Atlas.AddVP(vp)
	}
	for _, t := range cfg.Targets {
		s.Atlas.AddTarget(t)
	}

	s.Monitor = monitor.New(n.Prober, n.Clk, cfg.Monitor)
	s.Monitor.Atlas = s.Atlas
	for _, vp := range cfg.VPs {
		for _, t := range cfg.Targets {
			// Vantage points inside the origin AS probe from the
			// production prefix, so the monitored reachability is
			// exactly the traffic poisoning repairs.
			if n.Top.Router(vp).AS == cfg.Origin {
				s.Monitor.WatchFrom(vp, topo.ProductionAddr(cfg.Origin), t)
			} else {
				s.Monitor.Watch(vp, t)
			}
		}
	}

	s.Isolator = isolation.New(n.Top, n.Prober, s.Atlas, n.Clk, cfg.Isolation)
	s.Remedy = remedy.New(n.Eng, n.Prober, n.Clk, cfg.Remedy)

	// A nil registry makes every Instrument call a no-op, so wiring is
	// unconditional.
	s.Monitor.Instrument(s.Obs)
	s.Isolator.Instrument(s.Obs)
	s.Remedy.Instrument(s.Obs)

	s.maxDelay = cfg.Failsafe.MaxDelay(s.Monitor.Interval())

	s.Monitor.OnOutage = s.handleOutage
	s.Monitor.OnRecovery = func(o *monitor.Outage) {
		s.log(Event{At: n.Clk.Now(), Kind: EventRecovered, VP: o.VP, Target: o.Target})
	}
	s.Monitor.OnRound = s.onRound
	s.Remedy.OnUnpoison = func(r *remedy.Repair) {
		s.log(Event{At: n.Clk.Now(), Kind: EventUnpoison, Target: r.Victim, Avoided: r.Avoided})
	}

	if cfg.Hijack.Enable {
		s.wireHijack()
	}
	return s
}

// wireHijack assembles the session's hijack plane: collector streams from
// the configured peers, a detector checking them against an ownership table
// snapshotted from the engine's pre-attack origins, and (unless detection-
// only) a responder announcing through the session's remedy controller. The
// detector's journal hook is installed before the responder chains onto
// OnAlarm, so every alarm is journaled before mitigation reacts to it.
func (s *Session) wireHijack() {
	n := s.Net
	hc := s.cfg.Hijack
	peers := hc.CollectorPeers
	if len(peers) == 0 {
		peers = n.Top.Providers(s.cfg.Origin)
	}
	s.Collector = collectors.New(n.Eng, peers...)
	s.Collector.Instrument(s.Obs)

	tbl := hijack.TableFromEngine(n.Eng)
	s.Hijack = hijack.NewDetector(s.Collector, n.Top, n.Clk, tbl,
		hijack.DetectorConfig{Interval: hc.ScanInterval})
	s.Hijack.Instrument(s.Obs)
	s.Hijack.OnAlarm = func(a *hijack.Alarm) {
		s.log(Event{At: n.Clk.Now(), Kind: EventHijackDetected, Alarm: a},
			obs.F("class", a.Class), obs.F("prefix", a.Prefix),
			obs.F("rogue", a.Rogue), obs.F("owner", a.Owner),
			obs.F("latency", a.Latency))
	}
	s.Hijack.OnClear = func(a *hijack.Alarm) {
		s.log(Event{At: n.Clk.Now(), Kind: EventHijackCleared, Alarm: a},
			obs.F("class", a.Class), obs.F("prefix", a.Prefix),
			obs.F("rogue", a.Rogue),
			obs.F("active_for", a.ClearedAt-a.DetectedAt))
	}

	if hc.DisableAutoMitigate {
		return
	}
	s.HijackResponder = hijack.NewResponder(s.Hijack, s.Remedy, n.Plane, hijack.ResponderConfig{
		Owner:          s.cfg.Origin,
		Vantages:       hc.Vantages,
		VerifyInterval: hc.VerifyInterval,
	})
	s.HijackResponder.Instrument(s.Obs)
	s.HijackResponder.OnMitigated = func(m *hijack.Mitigation) {
		s.log(Event{At: n.Clk.Now(), Kind: EventHijackMitigated, Alarm: m.Alarm, Mitigation: m},
			obs.F("class", m.Alarm.Class), obs.F("prefix", m.Alarm.Prefix),
			obs.F("announced", len(m.Announced)), obs.F("poisoned", m.Poisoned),
			obs.F("fallback", m.Fallback), obs.F("latency", m.Latency),
			obs.F("recovered", m.Recovered), obs.F("vantages", m.Vantages))
	}
}

// NewSession wires a standalone session over a network — the single-tenant
// form of Rig.AddSession, useful for tests that want session semantics
// (tenant scoping, lifecycle, failsafe) without a Rig.
func NewSession(n *Network, cfg SessionConfig) *Session {
	if cfg.Tenant == "" {
		cfg.Tenant = fmt.Sprintf("AS%d", cfg.Origin)
	}
	return newSession(n, cfg)
}

// Config returns the session's effective configuration.
func (s *Session) Config() SessionConfig { return s.cfg }

// Tenant returns the session's tenant label ("" for a compat System).
func (s *Session) Tenant() string { return s.cfg.Tenant }

// Origin returns the AS the session speaks for.
func (s *Session) Origin() ASN { return s.cfg.Origin }

// Started reports whether the session is administratively running.
func (s *Session) Started() bool { return s.started }

// Crashed reports whether the control plane is currently crashed.
func (s *Session) Crashed() bool { return s.crashed }

// InFailsafe reports whether the monitor-loss watchdog has tripped.
func (s *Session) InFailsafe() bool { return s.failsafe }

// Start announces the origin's production and sentinel prefixes and begins
// the atlas refresh and monitoring loops. Idempotent. Start after Stop is
// well-defined: monitoring resumes from fresh per-pair state, and the
// baseline is re-announced only when no repair is active — a poison
// installed before the Stop stays installed, its sentinel still ticking.
func (s *Session) Start() {
	if s.started {
		return
	}
	s.started = true
	if s.Remedy.Active() == nil {
		s.Remedy.AnnounceBaseline()
	}
	s.Atlas.Start()
	s.Monitor.Start()
	if s.Hijack != nil {
		s.Hijack.Start()
	}
}

// Stop halts monitoring, atlas refresh, and the failsafe watchdog — an
// administrative stop, not a crash, so no FAILSAFE entry results.
// Idempotent. An active poison stays in place until its sentinel clears it
// or Remedy.Unpoison is called.
func (s *Session) Stop() {
	if !s.started {
		return
	}
	s.started = false
	s.Monitor.Stop()
	s.Atlas.Stop()
	if s.Hijack != nil {
		s.Hijack.Stop()
	}
	s.Net.Clk.Cancel(s.watchdog)
}

// CrashControl takes the session's control plane down, as by a process
// crash: monitor rounds stop, isolation and repair decisions are
// suspended. With graceful restart (the default) the origin's announced
// routes stay installed — remote routers retain them as if stale-marked,
// and the data plane keeps forwarding the tenant's traffic. With
// NoGracefulRestart the crash withdraws every announcement (captured
// first, for the restore), so reachability is lost for the duration. The
// failsafe watchdog deliberately survives the crash: it is the mechanism
// that detects the resulting monitor loss and journals the FAILSAFE entry.
func (s *Session) CrashControl() {
	if s.crashed {
		return
	}
	s.crashed = true
	s.Monitor.Stop()
	s.Atlas.Stop()
	if s.Hijack != nil {
		// Detection pauses with the rest of the control plane; alarms
		// raised before the crash stay raised and clear on the first scan
		// after the restore.
		s.Hijack.Stop()
	}
	s.Remedy.Suspend()
	if s.cfg.NoGracefulRestart {
		s.savedOrigins = s.Net.Eng.Origins(s.cfg.Origin)
		for _, o := range s.savedOrigins {
			s.Net.Eng.Withdraw(s.cfg.Origin, o.Prefix)
		}
	}
	s.log(Event{At: s.Net.Clk.Now(), Kind: EventControlCrash},
		obs.F("graceful", !s.cfg.NoGracefulRestart))
}

// RestoreControl brings a crashed control plane back up. Graceful restart
// finishes with the deferred re-announce: every origin prefix is refreshed
// from the retained state, the restarted speaker's end-of-RIB. A
// non-graceful restore replays the announcement set captured at the crash.
// Monitoring and repair resume only if the session was administratively
// started; the first completed round clears any FAILSAFE state.
func (s *Session) RestoreControl() {
	if !s.crashed {
		return
	}
	s.crashed = false
	reannounced := 0
	if s.cfg.NoGracefulRestart {
		for _, o := range s.savedOrigins {
			s.Net.Eng.Announce(s.cfg.Origin, o.Prefix, o.Config)
		}
		reannounced = len(s.savedOrigins)
		s.savedOrigins = nil
	} else {
		reannounced = s.Net.Eng.ReannounceOrigins(s.cfg.Origin)
	}
	s.log(Event{At: s.Net.Clk.Now(), Kind: EventControlRestore},
		obs.F("graceful", !s.cfg.NoGracefulRestart),
		obs.F("reannounced", reannounced))
	s.Remedy.Resume()
	if s.started {
		s.Atlas.Start()
		s.Monitor.Start()
		if s.Hijack != nil {
			s.Hijack.Start()
		}
	}
}

// Restart crashes and immediately restores the control plane — the planned
// upgrade case. With graceful restart on, the tenant's traffic forwards
// through the whole restart.
func (s *Session) Restart() {
	s.CrashControl()
	s.RestoreControl()
}

// repairsAllowed gates poison decisions on control-plane health: a crashed
// control plane or a tripped failsafe means the reachability picture is
// stale, and acting on stale data is the failure mode the watchdog exists
// to prevent.
func (s *Session) repairsAllowed() bool { return !s.crashed && !s.failsafe }

// onRound is the monitor's heartbeat: every completed round re-arms the
// failsafe watchdog and clears FAILSAFE if it was entered.
func (s *Session) onRound() {
	now := s.Net.Clk.Now()
	s.lastRound = now
	if s.failsafe {
		s.failsafe = false
		s.log(Event{At: now, Kind: EventFailsafeExit})
	}
	if s.cfg.Failsafe.Disable || !s.started {
		return
	}
	s.Net.Clk.Cancel(s.watchdog)
	last := s.lastRound
	s.watchdog = s.Net.Clk.At(now+s.maxDelay, func() {
		if s.failsafe || !s.started || s.lastRound != last {
			return
		}
		s.failsafe = true
		s.log(Event{At: s.Net.Clk.Now(), Kind: EventFailsafeEnter},
			obs.F("delay", s.Net.Clk.Now()-last),
			obs.F("bound", s.maxDelay))
	})
}

func (s *Session) log(e Event, extra ...obs.Field) {
	s.History = append(s.History, e)
	if j := s.Net.Journal; j.Enabled() {
		subsystem := "system"
		var fields []obs.Field
		if s.cfg.Tenant != "" {
			subsystem = "session"
			fields = append(fields, obs.F("tenant", s.cfg.Tenant))
		}
		switch e.Kind {
		case EventControlCrash, EventControlRestore, EventFailsafeEnter, EventFailsafeExit,
			EventHijackDetected, EventHijackMitigated, EventHijackCleared:
			// Lifecycle and hijack events carry no vp/target (hijack
			// records carry their own fields from the wiring site).
		default:
			fields = append(fields, obs.F("vp", e.VP), obs.F("target", e.Target))
		}
		if e.Kind == EventRepair {
			fields = append(fields, obs.F("action", e.Action), obs.F("avoided", e.Avoided))
		}
		if e.Kind == EventUnpoison {
			fields = append(fields, obs.F("avoided", e.Avoided))
		}
		fields = append(fields, extra...)
		j.Record(e.At, subsystem, e.Kind.String(), fields...)
	}
}

// handleOutage runs the paper's §4.2 pipeline: isolate now, then decide to
// poison once the measurements would have completed and the outage has aged
// past the threshold.
func (s *Session) handleOutage(o *monitor.Outage) {
	now := s.Net.Clk.Now()
	s.log(Event{At: now, Kind: EventOutage, VP: o.VP, Target: o.Target})

	rep := s.Isolator.Isolate(o.VP, o.Target)
	s.log(Event{At: now, Kind: EventIsolated, VP: o.VP, Target: o.Target, Report: rep})
	if rep.Healed || s.cfg.DisableAutoRepair {
		return
	}

	// The poison decision happens after isolation would have finished
	// and no earlier than the minimum outage age.
	decideAt := now + rep.EstimatedDuration
	minAge := s.Remedy.Config().MinOutageAge
	if t := o.Start + minAge; t > decideAt {
		decideAt = t
	}
	var decide func()
	decide = func() {
		if !s.Monitor.Down(o.VP, o.Target) {
			return // healed while we waited
		}
		if !s.repairsAllowed() {
			// Control crashed or failsafe tripped: the repair is
			// deferred, not dropped — retry a round later, so the
			// pipeline resumes once the monitor is healthy again.
			s.Net.Clk.After(s.Monitor.Interval(), decide)
			return
		}
		action := s.Remedy.DecideAndRepair(rep, o.Start)
		s.log(Event{
			At: s.Net.Clk.Now(), Kind: EventRepair, VP: o.VP, Target: o.Target,
			Report: rep, Action: action, Avoided: rep.Blamed,
		})
	}
	s.Net.Clk.At(decideAt, decide)
}

// EventsOfKind filters the history.
func (s *Session) EventsOfKind(k EventKind) []Event {
	var out []Event
	for _, e := range s.History {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}
