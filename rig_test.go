package lifeguard_test

import (
	"bytes"
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"lifeguard"
	"lifeguard/internal/core/remedy"
	"lifeguard/internal/obs"
	"lifeguard/internal/splice"
)

// fastBGP keeps control-plane convergence transients far below the 30s
// monitoring grid (small MRAI) and free of rng draws (negative jitters
// disable the jitter path entirely), which is what makes session outcomes
// composable: every history-relevant instant lands on the monitor/sentinel
// grid regardless of what the other tenants' announcements are doing.
func fastBGP() lifeguard.BGPConfig {
	return lifeguard.BGPConfig{
		MRAI:       200 * time.Millisecond,
		MRAIJitter: -1,
		PropJitter: -1,
	}
}

// fig2RigNetwork is fig2Network with fast BGP, metrics, and a journal —
// the rig tests assert on all three.
func fig2RigNetwork(t *testing.T) *lifeguard.Network {
	t.Helper()
	b := lifeguard.NewTopologyBuilder()
	for _, asn := range []lifeguard.ASN{asO, asB, asA, asC, asD, asE, asF} {
		b.AddAS(asn, "")
		b.AddRouter(asn, "")
	}
	for _, r := range [][2]lifeguard.ASN{{asO, asB}, {asB, asA}, {asB, asC}, {asC, asD}, {asA, asE}, {asD, asE}, {asF, asA}} {
		b.Provider(r[0], r[1])
		b.ConnectAS(r[0], r[1])
	}
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := lifeguard.AssembleNetwork(top, lifeguard.NetworkOptions{
		Seed: 11, BGP: fastBGP(),
		Obs:     obs.New(),
		Journal: obs.NewJournal(1 << 16),
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// renderHistory flattens a session's event history to comparable bytes.
func renderHistory(s *lifeguard.Session) string {
	var b strings.Builder
	for _, e := range s.History {
		fmt.Fprintf(&b, "%v %v vp=%v target=%v", e.At, e.Kind, e.VP, e.Target)
		if e.Report != nil {
			fmt.Fprintf(&b, " blamed=%d dir=%v", e.Report.Blamed, e.Report.Direction)
		}
		if e.Kind == lifeguard.EventRepair {
			fmt.Fprintf(&b, " action=%v avoided=%d", e.Action, e.Avoided)
		}
		if e.Kind == lifeguard.EventUnpoison {
			fmt.Fprintf(&b, " avoided=%d", e.Avoided)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// snapshotBytes freezes a session's obs partition to comparable bytes.
func snapshotBytes(t *testing.T, s *lifeguard.Session) string {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Obs.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// tenantScenario is one origin babysitting one target with one avoidable
// transit to blame.
type tenantScenario struct {
	origin, target, blame lifeguard.ASN
}

// findTenantScenarios picks count disjoint (origin, target, blame) triples
// on the generated internet such that each origin can poison around its
// blamed transit. Origins and targets are pairwise disjoint across tenants
// (and distinct from the shared helper VP), so the tenants' production
// traffic, faults, and repairs cannot interact.
func findTenantScenarios(t *testing.T, n *lifeguard.Network, helper lifeguard.ASN, count int) []tenantScenario {
	t.Helper()
	used := map[lifeguard.ASN]bool{helper: true}
	var out []tenantScenario
	for _, o := range n.Gen.Stubs {
		if len(out) == count {
			break
		}
		if used[o] {
			continue
		}
	search:
		for _, cand := range n.Gen.Stubs {
			if cand == o || used[cand] {
				continue
			}
			path := n.Eng.ASPathTo(cand, lifeguard.ProductionAddr(o))
			for _, hop := range path {
				if hop == o || hop == cand {
					continue
				}
				if splice.CanReach(n.Top, cand, o, splice.Avoid1(hop)) {
					out = append(out, tenantScenario{origin: o, target: cand, blame: hop})
					used[o], used[cand] = true, true
					break search
				}
			}
		}
	}
	if len(out) < count {
		t.Skipf("found only %d/%d tenant scenarios for this seed", len(out), count)
	}
	return out
}

// TestRigMultiTenantMatchesSoloSessions is the determinism contract of the
// Rig/Session split: a rig hosting N tenants produces, for each tenant, a
// byte-identical event history and obs partition snapshot to a dedicated
// single-session run with the same seed — the same faults on the same
// timeline, just without the other tenants. Sessions sharing a rig must
// not perturb each other.
func TestRigMultiTenantMatchesSoloSessions(t *testing.T) {
	const seed = 42
	build := func() *lifeguard.Network {
		n, err := lifeguard.GenerateInternet(
			lifeguard.InternetConfig{Seed: seed, NumTransit: 12, NumStub: 30},
			lifeguard.NetworkOptions{Seed: seed, BGP: fastBGP(), Obs: obs.New()})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	probe := build()
	helper := probe.Gen.Stubs[len(probe.Gen.Stubs)-1]
	scenarios := findTenantScenarios(t, probe, helper, 3)

	type result struct{ history, snapshot string }
	// run replays the same world — same faults, same timeline — hosting
	// only the sessions in include; results are keyed by scenario index.
	run := func(include ...int) map[int]result {
		n := build()
		rig := lifeguard.NewRig(n)
		sessions := make(map[int]*lifeguard.Session)
		for _, i := range include {
			sc := scenarios[i]
			s, err := rig.AddSession(lifeguard.SessionConfig{Config: lifeguard.Config{
				Origin:  sc.origin,
				VPs:     []lifeguard.RouterID{n.Hub(sc.origin), n.Hub(helper)},
				Targets: []netip.Addr{n.RouterAddr(n.Hub(sc.target))},
			}})
			if err != nil {
				t.Fatal(err)
			}
			sessions[i] = s
		}
		rig.Start()
		n.Clk.RunFor(3 * time.Minute)
		// Every run carries the full fault schedule, sessions or not:
		// faults are scoped to their tenant's address block, so foreign
		// faults are invisible to a session — which is exactly what this
		// test proves.
		ids := make([]lifeguard.FailureID, len(scenarios))
		for i, sc := range scenarios {
			ids[i] = n.InjectFailure(lifeguard.BlackholeASTowards(sc.blame, lifeguard.Block(sc.origin)))
		}
		n.Clk.RunFor(12 * time.Minute)
		for _, id := range ids {
			n.HealFailure(id)
		}
		n.Clk.RunFor(6 * time.Minute)
		out := make(map[int]result)
		for i, s := range sessions {
			out[i] = result{history: renderHistory(s), snapshot: snapshotBytes(t, s)}
		}
		return out
	}

	shared := run(0, 1, 2)
	for i := range scenarios {
		// The shared run must be non-trivial for every tenant: detected,
		// poisoned, recovered, and unpoisoned after the heal.
		h := shared[i].history
		for _, want := range []string{"outage", "repair", "action=poisoned", "recovered", "unpoison"} {
			if !strings.Contains(h, want) {
				t.Fatalf("tenant %d (origin %d) shared-run history has no %q:\n%s",
					i, scenarios[i].origin, want, h)
			}
		}
		solo := run(i)
		if solo[i].history != h {
			t.Errorf("tenant %d history diverges between shared rig and solo run:\nshared:\n%s\nsolo:\n%s",
				i, h, solo[i].history)
		}
		if solo[i].snapshot != shared[i].snapshot {
			t.Errorf("tenant %d obs snapshot diverges between shared rig and solo run:\nshared:\n%s\nsolo:\n%s",
				i, shared[i].snapshot, solo[i].snapshot)
		}
	}
}

// TestGracefulRestartForwardsThroughControlCrash is the graceful-restart
// e2e contract: a chaos crashcontrol fault takes a tenant's control plane
// down mid-outage, and with graceful restart (the default) the data plane
// keeps forwarding the tenant's traffic through the whole restart window —
// zero no-route drops, every externally-driven probe answered — after
// which the session resumes the monitor → isolate → repair pipeline. The
// non-graceful variant is the contrast that proves the mechanism: the same
// timeline with stale-route retention off loses routes and drops packets.
func TestGracefulRestartForwardsThroughControlCrash(t *testing.T) {
	for _, graceful := range []bool{true, false} {
		name := "graceful"
		if !graceful {
			name = "non-graceful"
		}
		t.Run(name, func(t *testing.T) {
			n := fig2RigNetwork(t)
			rig := lifeguard.NewRig(n)
			target := n.RouterAddr(n.Hub(asE))
			s, err := rig.AddSession(lifeguard.SessionConfig{
				Config: lifeguard.Config{
					Origin:  asO,
					VPs:     []lifeguard.RouterID{n.Hub(asO), n.Hub(asC)},
					Targets: []netip.Addr{target},
				},
				NoGracefulRestart: !graceful,
			})
			if err != nil {
				t.Fatal(err)
			}
			rig.Start()
			n.Clk.RunFor(3 * time.Minute)

			// The persistent silent failure the session is mid-way through
			// handling when its control plane crashes.
			n.InjectFailure(lifeguard.BlackholeASTowards(asA, lifeguard.Block(asO)))

			// The crash window is [base+2m15s, base+3m45s]: the outage is
			// declared at the 4th failed round (~base+2m), so the control
			// plane dies mid-outage and returns before the 5-minute
			// poison maturity.
			base := n.Clk.Now()
			crashAt := base + 2*time.Minute + 15*time.Second
			restoreAt := crashAt + 90*time.Second

			// External traffic through the window: C pings the production
			// prefix every 15s. C's path to O avoids A, so with routes
			// retained every probe must succeed despite the outage *and*
			// the crash; without retention C has no route at all.
			noRoute := n.Obs.Counter("lifeguard_dataplane_packets_dropped_total", obs.L("reason", "no-route"))
			var dropsAtCrash, dropsAtRestore int64
			n.Clk.At(crashAt, func() { dropsAtCrash = noRoute.Value() })
			n.Clk.At(restoreAt, func() { dropsAtRestore = noRoute.Value() })
			var pingOK, pingFail int
			for off := 15 * time.Second; off < 90*time.Second; off += 15 * time.Second {
				n.Clk.At(crashAt+off, func() {
					if n.Prober.Ping(n.Hub(asC), lifeguard.ProductionAddr(asO)).OK {
						pingOK++
					} else {
						pingFail++
					}
				})
			}

			script, err := lifeguard.ParseChaosScript("at 2m15s for 90s crashcontrol 10")
			if err != nil {
				t.Fatal(err)
			}
			rep, err := rig.RunChaos(script, lifeguard.ChaosOptions{})
			if err != nil {
				t.Fatal(err)
			}

			if len(s.EventsOfKind(lifeguard.EventControlCrash)) != 1 ||
				len(s.EventsOfKind(lifeguard.EventControlRestore)) != 1 {
				t.Fatal("crashcontrol did not drive the session's crash/restore lifecycle")
			}
			if s.Crashed() {
				t.Fatal("session still crashed after the heal")
			}
			outages := s.EventsOfKind(lifeguard.EventOutage)
			if len(outages) == 0 || outages[0].At >= crashAt {
				t.Fatalf("outage not declared before the crash (events %v, crash at %v)", outages, crashAt)
			}

			windowDrops := dropsAtRestore - dropsAtCrash
			if graceful {
				if rep.Failed() {
					t.Fatalf("chaos invariants violated: %v", rep.Err())
				}
				if pingFail != 0 || pingOK == 0 {
					t.Fatalf("graceful restart dropped probes: %d ok, %d failed", pingOK, pingFail)
				}
				if windowDrops != 0 {
					t.Fatalf("graceful restart window saw %d no-route drops, want 0", windowDrops)
				}
			} else {
				if pingFail == 0 {
					t.Fatal("non-graceful restart lost no probes — the contrast is broken")
				}
				if windowDrops == 0 {
					t.Fatal("non-graceful restart window saw no no-route drops — the contrast is broken")
				}
			}

			// After restore the pipeline resumes: the outage matures and
			// the session poisons, then monitored traffic recovers.
			n.Clk.RunFor(8 * time.Minute)
			repairs := s.EventsOfKind(lifeguard.EventRepair)
			if len(repairs) == 0 {
				t.Fatal("no repair decision after control restore")
			}
			if repairs[0].Action != remedy.Poisoned {
				t.Fatalf("repair action = %v, want poisoned", repairs[0].Action)
			}
			if repairs[0].At <= restoreAt {
				t.Fatalf("repair at %v, before control restore at %v", repairs[0].At, restoreAt)
			}
			if len(s.EventsOfKind(lifeguard.EventRecovered)) == 0 {
				t.Fatal("monitored traffic did not recover after the restart-spanning repair")
			}
		})
	}
}

// TestFailsafeTimingBoundedAndJournaled pins the failsafe contract: when
// the monitor dies, the session enters FAILSAFE within the configured
// bound (MissedRounds × interval + grace, 95s at the defaults), journals
// the entry, suspends repair decisions for the duration, and exits on the
// first completed round after the monitor returns — at which point the
// deferred repair goes ahead.
func TestFailsafeTimingBoundedAndJournaled(t *testing.T) {
	n := fig2RigNetwork(t)
	target := n.RouterAddr(n.Hub(asE))
	s := lifeguard.NewSession(n, lifeguard.SessionConfig{Config: lifeguard.Config{
		Origin:  asO,
		VPs:     []lifeguard.RouterID{n.Hub(asO), n.Hub(asC)},
		Targets: []netip.Addr{target},
	}})
	s.Start()
	n.Clk.RunFor(2 * time.Minute)
	n.InjectFailure(lifeguard.BlackholeASTowards(asA, lifeguard.Block(asO)))
	n.Clk.RunFor(2*time.Minute + 30*time.Second)
	if len(s.EventsOfKind(lifeguard.EventOutage)) == 0 {
		t.Fatal("outage not declared before the monitor loss")
	}

	// The monitor dies out from under the session (not an administrative
	// Stop — the session doesn't know). The poison decision for the
	// ongoing outage falls due inside the dead window.
	stopAt := n.Clk.Now()
	s.Monitor.Stop()
	n.Clk.RunFor(5 * time.Minute)

	maxDelay := s.Config().Failsafe.MaxDelay(s.Monitor.Interval())
	enters := s.EventsOfKind(lifeguard.EventFailsafeEnter)
	if len(enters) != 1 {
		t.Fatalf("%d FAILSAFE entries, want 1", len(enters))
	}
	if enters[0].At <= stopAt || enters[0].At > stopAt+maxDelay {
		t.Fatalf("FAILSAFE entered at %v; monitor died at %v, bound %v", enters[0].At, stopAt, maxDelay)
	}
	if !s.InFailsafe() {
		t.Fatal("session not in FAILSAFE while the monitor is dead")
	}
	if got := s.EventsOfKind(lifeguard.EventRepair); len(got) != 0 {
		t.Fatalf("repair decided while in FAILSAFE: %+v", got)
	}
	found := false
	for _, e := range n.Journal.Events() {
		if e.Subsystem == "session" && e.Kind == "failsafe-enter" {
			found = true
			fields := map[string]string{}
			for _, f := range e.Fields {
				fields[f.Key] = f.Value
			}
			if fields["tenant"] != "AS10" {
				t.Fatalf("failsafe-enter journaled without tenant: %+v", e.Fields)
			}
			if fields["delay"] == "" || fields["bound"] == "" {
				t.Fatalf("failsafe-enter missing delay/bound fields: %+v", e.Fields)
			}
		}
	}
	if !found {
		t.Fatal("FAILSAFE entry not journaled")
	}

	// Monitor returns: the first completed round exits FAILSAFE, and the
	// deferred repair resumes within a round.
	s.Monitor.Start()
	if s.InFailsafe() {
		t.Fatal("first completed round did not clear FAILSAFE")
	}
	if len(s.EventsOfKind(lifeguard.EventFailsafeExit)) != 1 {
		t.Fatal("missing FAILSAFE exit event")
	}
	n.Clk.RunFor(2 * time.Minute)
	repairs := s.EventsOfKind(lifeguard.EventRepair)
	if len(repairs) == 0 {
		t.Fatal("deferred repair never resumed after FAILSAFE exit")
	}
	if repairs[0].Action != remedy.Poisoned {
		t.Fatalf("resumed repair action = %v, want poisoned", repairs[0].Action)
	}
}

// TestRigHitlessReload: adding and removing tenants on a live rig, and
// retuning a tenant's monitor cadence, must not disturb the other
// sessions' state — the daemon's config-reload contract.
func TestRigHitlessReload(t *testing.T) {
	n := fig2RigNetwork(t)
	rig := lifeguard.NewRig(n)
	target := n.RouterAddr(n.Hub(asE))
	s1, err := rig.AddSession(lifeguard.SessionConfig{Config: lifeguard.Config{
		Origin:  asO,
		VPs:     []lifeguard.RouterID{n.Hub(asO), n.Hub(asC)},
		Targets: []netip.Addr{target},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rig.Start()
	n.Clk.RunFor(time.Minute)

	// An ongoing outage for tenant 1...
	n.InjectFailure(lifeguard.BlackholeASTowards(asA, lifeguard.Block(asO)))
	n.Clk.RunFor(3 * time.Minute)
	if len(s1.EventsOfKind(lifeguard.EventOutage)) == 0 {
		t.Fatal("tenant 1 outage not declared")
	}

	// ...must survive a second tenant arriving live...
	s2, err := rig.AddSession(lifeguard.SessionConfig{Config: lifeguard.Config{
		Origin:  asF,
		VPs:     []lifeguard.RouterID{n.Hub(asF)},
		Targets: []netip.Addr{n.RouterAddr(n.Hub(asC))},
	}})
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	// ...a cadence retune on the newcomer...
	s2.Monitor.SetInterval(10 * time.Second)
	outages1 := len(s1.Monitor.History)
	// One more minute keeps us inside tenant 1's 5-minute poison
	// maturity: the outage must still be open, untouched by the reload.
	n.Clk.RunFor(time.Minute)
	if !s1.Monitor.Down(n.Hub(asO), target) {
		t.Fatal("tenant 1 outage state lost across the reload")
	}
	if len(s1.Monitor.History) != outages1 {
		t.Fatal("tenant 1 outage history perturbed by the reload")
	}
	if len(s2.EventsOfKind(lifeguard.EventOutage)) != 0 {
		t.Fatalf("tenant 2 sees phantom outages: %+v", s2.History)
	}

	// ...and tenant 2 leaving again, with its prefixes withdrawn.
	if !rig.RemoveSession(asF) {
		t.Fatal("RemoveSession(asF) found no session")
	}
	if rig.Session(asF) != nil || len(rig.Sessions()) != 1 {
		t.Fatal("rig still lists the removed session")
	}
	n.Converge()
	if _, ok := n.Eng.BestRoute(asB, lifeguard.ProductionPrefix(asF)); ok {
		t.Fatal("removed tenant's production prefix still routed")
	}
	// Tenant 1 keeps running: its repair pipeline completes as usual.
	n.Clk.RunFor(10 * time.Minute)
	repairs := s1.EventsOfKind(lifeguard.EventRepair)
	if len(repairs) == 0 || repairs[0].Action != remedy.Poisoned {
		t.Fatalf("tenant 1 pipeline broken after reload: %+v", repairs)
	}
}
