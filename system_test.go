package lifeguard_test

import (
	"net/netip"
	"testing"
	"time"

	"lifeguard"
)

// TestVisibleFailureSelfHealsWithoutPoisoning exercises the §4.2 decision
// policy end to end: a *visible* failure (BGP session cut) causes a brief
// convergence outage that BGP repairs on its own — LIFEGUARD detects it but
// must NOT poison, because by decision time the outage has healed.
func TestVisibleFailureSelfHealsWithoutPoisoning(t *testing.T) {
	n := fig2Network(t)
	target := n.RouterAddr(n.Hub(asE))
	sys := lifeguard.NewSystem(n, lifeguard.Config{
		Origin:  asO,
		VPs:     []lifeguard.RouterID{n.Hub(asO), n.Hub(asC)},
		Targets: []netip.Addr{target},
	})
	sys.Start()
	n.Clk.RunFor(2 * time.Minute)

	// Cut the A–E session: E (and B's side of the world) must reconverge
	// onto the D–C path by itself.
	ids := n.FailAdjacency(asA, asE)
	n.Clk.RunFor(30 * time.Minute)

	// The network healed itself: traffic flows again...
	if sys.Monitor.Down(n.Hub(asO), target) {
		t.Fatal("pair still down after BGP reconvergence")
	}
	// ...and LIFEGUARD never poisoned (no repair events with a poison,
	// and nothing active).
	if sys.Remedy.Active() != nil {
		t.Fatalf("poisoned a self-healing failure: %+v", sys.Remedy.Active())
	}
	for _, e := range sys.EventsOfKind(lifeguard.EventRepair) {
		t.Fatalf("unexpected repair decision %v for a visible failure", e.Action)
	}

	// Restore the session; the world returns to the original routes.
	n.HealAdjacency(asA, asE, ids)
	if !n.Converge() {
		t.Fatal("no convergence after restore")
	}
	r, ok := n.Eng.BestRoute(asE, lifeguard.ProductionPrefix(asO))
	if !ok {
		t.Fatal("E lost the route")
	}
	if r.Path[0] != asA {
		t.Fatalf("E should return to the A path, got %v", r.Path)
	}
	sys.Stop()
}

// TestVisibleFailureOutageIsShort quantifies the contrast the paper draws:
// convergence outages last ~minutes (self-healing), silent failures last
// until someone intervenes.
func TestVisibleFailureOutageIsShort(t *testing.T) {
	n := fig2Network(t)
	target := n.RouterAddr(n.Hub(asE))
	sys := lifeguard.NewSystem(n, lifeguard.Config{
		Origin:            asO,
		VPs:               []lifeguard.RouterID{n.Hub(asO), n.Hub(asC)},
		Targets:           []netip.Addr{target},
		DisableAutoRepair: true, // observe both failure classes untreated
	})
	sys.Start()
	n.Clk.RunFor(2 * time.Minute)

	// Visible failure: cut and leave it cut; BGP routes around it.
	n.FailAdjacency(asA, asE)
	n.Clk.RunFor(30 * time.Minute)
	var visibleDown time.Duration
	for _, o := range sys.Monitor.History {
		if o.End == 0 {
			t.Fatal("visible failure did not self-heal")
		}
		visibleDown += o.Duration(n.Clk.Now())
	}
	if visibleDown > 10*time.Minute {
		t.Fatalf("convergence outage lasted %v — should be minutes at most", visibleDown)
	}

	// Silent failure: inject and wait the same 30 minutes; without
	// LIFEGUARD it never heals.
	seen := len(sys.Monitor.History)
	n.InjectFailure(lifeguard.BlackholeASTowards(asD, lifeguard.Block(asO)))
	n.Clk.RunFor(30 * time.Minute)
	silent := sys.Monitor.History[seen:]
	if len(silent) == 0 {
		t.Fatal("silent failure not detected")
	}
	for _, o := range silent {
		if o.End != 0 {
			t.Fatalf("silent failure 'healed' without intervention: %+v", o)
		}
	}
}
