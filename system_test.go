package lifeguard_test

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"lifeguard"
)

// TestVisibleFailureSelfHealsWithoutPoisoning exercises the §4.2 decision
// policy end to end: a *visible* failure (BGP session cut) causes a brief
// convergence outage that BGP repairs on its own — LIFEGUARD detects it but
// must NOT poison, because by decision time the outage has healed.
func TestVisibleFailureSelfHealsWithoutPoisoning(t *testing.T) {
	n := fig2Network(t)
	target := n.RouterAddr(n.Hub(asE))
	sys := lifeguard.NewSystem(n, lifeguard.Config{
		Origin:  asO,
		VPs:     []lifeguard.RouterID{n.Hub(asO), n.Hub(asC)},
		Targets: []netip.Addr{target},
	})
	sys.Start()
	n.Clk.RunFor(2 * time.Minute)

	// Cut the A–E session: E (and B's side of the world) must reconverge
	// onto the D–C path by itself.
	ids := n.FailAdjacency(asA, asE)
	n.Clk.RunFor(30 * time.Minute)

	// The network healed itself: traffic flows again...
	if sys.Monitor.Down(n.Hub(asO), target) {
		t.Fatal("pair still down after BGP reconvergence")
	}
	// ...and LIFEGUARD never poisoned (no repair events with a poison,
	// and nothing active).
	if sys.Remedy.Active() != nil {
		t.Fatalf("poisoned a self-healing failure: %+v", sys.Remedy.Active())
	}
	for _, e := range sys.EventsOfKind(lifeguard.EventRepair) {
		t.Fatalf("unexpected repair decision %v for a visible failure", e.Action)
	}

	// Restore the session; the world returns to the original routes.
	n.HealAdjacency(asA, asE, ids)
	if !n.Converge() {
		t.Fatal("no convergence after restore")
	}
	r, ok := n.Eng.BestRoute(asE, lifeguard.ProductionPrefix(asO))
	if !ok {
		t.Fatal("E lost the route")
	}
	if r.Path[0] != asA {
		t.Fatalf("E should return to the A path, got %v", r.Path)
	}
	sys.Stop()
}

// TestVisibleFailureOutageIsShort quantifies the contrast the paper draws:
// convergence outages last ~minutes (self-healing), silent failures last
// until someone intervenes.
func TestVisibleFailureOutageIsShort(t *testing.T) {
	n := fig2Network(t)
	target := n.RouterAddr(n.Hub(asE))
	sys := lifeguard.NewSystem(n, lifeguard.Config{
		Origin:            asO,
		VPs:               []lifeguard.RouterID{n.Hub(asO), n.Hub(asC)},
		Targets:           []netip.Addr{target},
		DisableAutoRepair: true, // observe both failure classes untreated
	})
	sys.Start()
	n.Clk.RunFor(2 * time.Minute)

	// Visible failure: cut and leave it cut; BGP routes around it.
	n.FailAdjacency(asA, asE)
	n.Clk.RunFor(30 * time.Minute)
	var visibleDown time.Duration
	for _, o := range sys.Monitor.History {
		if o.End == 0 {
			t.Fatal("visible failure did not self-heal")
		}
		visibleDown += o.Duration(n.Clk.Now())
	}
	if visibleDown > 10*time.Minute {
		t.Fatalf("convergence outage lasted %v — should be minutes at most", visibleDown)
	}

	// Silent failure: inject and wait the same 30 minutes; without
	// LIFEGUARD it never heals.
	seen := len(sys.Monitor.History)
	n.InjectFailure(lifeguard.BlackholeASTowards(asD, lifeguard.Block(asO)))
	n.Clk.RunFor(30 * time.Minute)
	silent := sys.Monitor.History[seen:]
	if len(silent) == 0 {
		t.Fatal("silent failure not detected")
	}
	for _, o := range silent {
		if o.End != 0 {
			t.Fatalf("silent failure 'healed' without intervention: %+v", o)
		}
	}
}

// TestStopStartLifecycle pins the re-entrant lifecycle contract the
// session refactor made reachable: Stop before Start is a no-op, Stop and
// Start are idempotent, monitoring resumes after a Stop/Start cycle, and a
// poison installed before the Stop survives it — Start must not clobber an
// active repair with a fresh baseline announcement.
func TestStopStartLifecycle(t *testing.T) {
	n := fig2Network(t)
	target := n.RouterAddr(n.Hub(asE))
	sys := lifeguard.NewSystem(n, lifeguard.Config{
		Origin:  asO,
		VPs:     []lifeguard.RouterID{n.Hub(asO), n.Hub(asC)},
		Targets: []netip.Addr{target},
	})

	sys.Stop() // Stop before Start: well-defined no-op
	sys.Start()
	sys.Start() // idempotent
	n.Clk.RunFor(2 * time.Minute)
	rounds := len(sys.Monitor.History)

	sys.Stop()
	sys.Stop() // idempotent
	n.Clk.RunFor(5 * time.Minute)
	if len(sys.Monitor.History) != rounds {
		t.Fatal("monitor kept running after Stop")
	}

	// Start after Stop resumes detection end to end.
	sys.Start()
	n.Clk.RunFor(time.Minute)
	n.InjectFailure(lifeguard.BlackholeASTowards(asA, lifeguard.Block(asO)))
	n.Clk.RunFor(15 * time.Minute)
	if len(sys.EventsOfKind(lifeguard.EventRepair)) == 0 {
		t.Fatal("no repair after Stop/Start cycle")
	}
	if sys.Remedy.Active() == nil {
		t.Fatal("expected an active poison")
	}

	// A Stop/Start cycle with the poison active must preserve it: E keeps
	// routing around A, and no fresh baseline overwrote the poison.
	sys.Stop()
	sys.Start()
	n.Converge()
	if sys.Remedy.Active() == nil {
		t.Fatal("restart dropped the active poison")
	}
	r, ok := n.Eng.BestRoute(asE, lifeguard.ProductionPrefix(asO))
	if !ok || r.Path[0] != asD {
		t.Fatalf("restart clobbered the poisoned announcement: E routes %+v", r)
	}
}

// TestEventKindStringRoundTrip guards the journal vocabulary: every
// defined kind has a unique stable name, and unknown values render as
// "eventkind(N)" instead of aliasing to one opaque string — the enum grows
// with the session lifecycle, and consumers must be able to tell new kinds
// apart.
func TestEventKindStringRoundTrip(t *testing.T) {
	all := []lifeguard.EventKind{
		lifeguard.EventOutage, lifeguard.EventIsolated, lifeguard.EventRepair,
		lifeguard.EventUnpoison, lifeguard.EventRecovered,
		lifeguard.EventControlCrash, lifeguard.EventControlRestore,
		lifeguard.EventFailsafeEnter, lifeguard.EventFailsafeExit,
		lifeguard.EventHijackDetected, lifeguard.EventHijackMitigated,
		lifeguard.EventHijackCleared,
	}
	seen := make(map[string]lifeguard.EventKind, len(all))
	for _, k := range all {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "eventkind(") {
			t.Fatalf("kind %d has no proper name: %q", int(k), s)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("kinds %d and %d share the name %q", int(prev), int(k), s)
		}
		seen[s] = k
	}
	// The contiguous enum ends exactly where the named kinds do.
	if next := lifeguard.EventHijackCleared + 1; next.String() != "eventkind(12)" {
		t.Fatalf("first unknown kind renders %q, want eventkind(12)", next.String())
	}
	for _, k := range []lifeguard.EventKind{99, -3} {
		want := "eventkind(" + intString(int(k)) + ")"
		if got := k.String(); got != want {
			t.Fatalf("EventKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func intString(n int) string {
	if n < 0 {
		return "-" + intString(-n)
	}
	if n < 10 {
		return string(rune('0' + n))
	}
	return intString(n/10) + string(rune('0'+n%10))
}
