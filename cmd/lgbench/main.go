// Command lgbench is the benchmark-regression harness: it runs the
// engine-convergence and dataplane-forwarding benchmarks (the two hot paths
// every experiment pays for) with -benchmem and records the headline
// metrics — ns/op, B/op, allocs/op, and packets/sec for the per-packet
// benchmarks — as JSON.
//
// The output file doubles as the regression ledger: the first run seeds a
// "baseline" section, and later runs refresh only "current" (plus a "delta"
// section comparing the two), so the committed file always shows the perf
// trajectory since the baseline was taken. Re-seed deliberately by deleting
// the file.
//
// Besides the micro-benchmarks, lgbench times the experiment suite itself
// through the internal/runner pool — once sequentially, once at full
// parallelism — and records the wall-clock speedup (the "suite" section).
// Disable with -suite=false for the fastest smoke run.
//
// It also times the sequential suite twice — uninstrumented (obs.Disabled)
// and with a live per-trial metrics registry — and records the overhead
// ratio (the "obs_overhead" section); instrumentation is contractually
// cheap, and this keeps it honest.
//
//	go run ./cmd/lgbench -benchtime 2s -out BENCH_pr4.json   # make bench
//	go run ./cmd/lgbench -benchtime 1x -out /tmp/smoke.json  # CI smoke
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"lifeguard/internal/experiments"
	"lifeguard/internal/obs"
	"lifeguard/internal/runner"
)

// benchPattern selects the harnessed benchmarks: control-plane convergence,
// the LPM lookup primitive, and end-to-end packet forwarding.
const benchPattern = "BenchmarkConvergence|BenchmarkLookupLPM|BenchmarkDataplane"

var benchPackages = []string{"./internal/bgp/", "./internal/dataplane/"}

// Metrics is one benchmark's headline numbers.
type Metrics struct {
	Iterations    int     `json:"iterations"`
	NsPerOp       float64 `json:"ns_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	PacketsPerSec float64 `json:"packets_per_sec,omitempty"`
}

// Delta compares current against baseline for one benchmark.
type Delta struct {
	// Speedup is baseline ns/op divided by current ns/op (>1 is faster).
	Speedup float64 `json:"speedup"`
	// AllocRatio is current allocs/op divided by baseline allocs/op
	// (<1 is fewer allocations).
	AllocRatio float64 `json:"alloc_ratio"`
}

// SuiteTiming records one wall-clock measurement of the experiment suite
// on the runner pool. Speedup is sequential over parallel wall-clock; it
// tracks the host's core count (GOMAXPROCS 1 pins it to ~1.0).
type SuiteTiming struct {
	GoMaxProcs   int      `json:"gomaxprocs"`
	Workers      int      `json:"workers"`
	Experiments  []string `json:"experiments"`
	Seeds        int      `json:"seeds"`
	Trials       int      `json:"trials"`
	SequentialMS float64  `json:"sequential_ms"`
	ParallelMS   float64  `json:"parallel_ms"`
	Speedup      float64  `json:"speedup"`
}

// ObsOverhead records what metrics instrumentation costs: the sequential
// suite timed once uninstrumented (obs.Disabled — every metric site is one
// nil-check branch) and once with a live per-trial registry merged into a
// process-wide one. Overhead is instrumented over uninstrumented
// wall-clock; 1.0 means free.
type ObsOverhead struct {
	Experiments      []string `json:"experiments"`
	Seeds            int      `json:"seeds"`
	UninstrumentedMS float64  `json:"uninstrumented_ms"`
	InstrumentedMS   float64  `json:"instrumented_ms"`
	Overhead         float64  `json:"overhead"`
	// Series counts the distinct metric series the instrumented run produced.
	Series int `json:"series"`
}

// Report is the file schema.
type Report struct {
	Schema    string             `json:"schema"`
	GoVersion string             `json:"go_version"`
	Benchtime string             `json:"benchtime"`
	Note      string             `json:"note"`
	Baseline  map[string]Metrics `json:"baseline"`
	Current   map[string]Metrics `json:"current"`
	Delta     map[string]Delta   `json:"delta,omitempty"`
	Suite     *SuiteTiming       `json:"suite,omitempty"`
	Obs       *ObsOverhead       `json:"obs_overhead,omitempty"`
}

func main() {
	benchtime := flag.String("benchtime", "2s", "go test -benchtime value (e.g. 2s or 1x for a smoke run)")
	out := flag.String("out", "BENCH_pr4.json", "output JSON file; an existing file's baseline section is preserved")
	suite := flag.Bool("suite", true, "also time the experiment suite sequentially vs in parallel")
	seeds := flag.Int("seeds", 2, "seeds per experiment for the suite timing")
	scale := flag.Bool("scale", false, "run the Internet-scale bench family (200/2k/10k ASes) instead of the micro-benchmarks")
	scaleSmoke := flag.Bool("scale-smoke", false, "CI smoke: one 2k-AS case under a wall-clock budget plus a worker-count determinism diff")
	scaleOut := flag.String("scale-out", "BENCH_pr7.json", "output file for -scale")
	scaleCase := flag.String("scale-case", "", "internal: run one scale case from a JSON config and print the result (self-exec)")
	trafficFlag := flag.Bool("traffic", false, "run the traffic-at-scale bench family (batched vs single-packet throughput + user-seconds-lost experiment)")
	trafficFlows := flag.Int("traffic-flows", 1_000_000, "modelled flow population for -traffic")
	trafficEpochs := flag.Int("traffic-epochs", 3, "epochs per forwarding mode for -traffic")
	trafficSeed := flag.Int64("traffic-seed", 1, "experiment seed for -traffic")
	trafficOut := flag.String("traffic-out", "BENCH_pr10.json", "output file for -traffic")
	flag.Parse()

	if *trafficFlag {
		if err := runTrafficFamily(*trafficFlows, *trafficEpochs, *trafficSeed, *trafficOut); err != nil {
			fmt.Fprintln(os.Stderr, "lgbench:", err)
			os.Exit(1)
		}
		return
	}
	if *scaleCase != "" {
		runScaleCase(*scaleCase)
		return
	}
	if *scaleSmoke {
		if err := runScaleSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "lgbench:", err)
			os.Exit(1)
		}
		return
	}
	if *scale {
		if err := runScaleFamily(*scaleOut); err != nil {
			fmt.Fprintln(os.Stderr, "lgbench:", err)
			os.Exit(1)
		}
		return
	}

	current, err := runBenchmarks(*benchtime)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lgbench:", err)
		os.Exit(1)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "lgbench: no benchmark results parsed")
		os.Exit(1)
	}

	rep := Report{
		Schema:    "lifeguard-bench/v1",
		GoVersion: runtime.Version(),
		Benchtime: *benchtime,
		Note: "baseline is seeded on the first run against this file and " +
			"kept on later runs; delete the file to re-seed",
		Baseline: loadBaseline(*out),
		Current:  current,
	}
	if rep.Baseline == nil {
		rep.Baseline = current
	}
	rep.Delta = deltas(rep.Baseline, current)
	if *suite {
		st, err := measureSuite(*seeds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lgbench:", err)
			os.Exit(1)
		}
		rep.Suite = st
		oo, err := measureObsOverhead(*seeds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lgbench:", err)
			os.Exit(1)
		}
		rep.Obs = oo
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "lgbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "lgbench:", err)
		os.Exit(1)
	}
	fmt.Printf("lgbench: wrote %d benchmarks to %s\n", len(current), *out)
}

// suiteIDs are the multi-trial experiments the suite timing exercises —
// the ones whose wall clock actually shards across runner workers.
var suiteIDs = []string{"efficacy", "fig6", "loss", "abl-threshold", "abl-dampening"}

// measureSuite times the experiment suite once sequentially and once at
// full parallelism. Both runs produce identical reports (that is the
// runner's contract, asserted by the committed tests); only the wall
// clock differs, and only when the host has cores to spare.
func measureSuite(seeds int) (*SuiteTiming, error) {
	exps, err := suiteExperiments()
	if err != nil {
		return nil, err
	}
	const baseSeed = 1
	ctx := context.Background()

	timeRun := func(parallelism int) (time.Duration, error) {
		start := time.Now()
		_, err := experiments.RunSuite(ctx, exps, baseSeed, seeds, runner.Config{Parallelism: parallelism}, nil)
		return time.Since(start), err
	}

	seq, err := timeRun(1)
	if err != nil {
		return nil, fmt.Errorf("suite timing (sequential): %w", err)
	}
	cfg := runner.Config{}
	par, err := timeRun(cfg.Workers())
	if err != nil {
		return nil, fmt.Errorf("suite timing (parallel): %w", err)
	}

	st := &SuiteTiming{
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Workers:      cfg.Workers(),
		Experiments:  suiteIDs,
		Seeds:        seeds,
		Trials:       experiments.SuiteTrialCount(exps, baseSeed, seeds),
		SequentialMS: float64(seq.Milliseconds()),
		ParallelMS:   float64(par.Milliseconds()),
	}
	if par > 0 {
		st.Speedup = float64(seq) / float64(par)
	}
	fmt.Printf("lgbench: suite %d trials: sequential %v, parallel %v on %d workers (%.2fx)\n",
		st.Trials, seq.Round(time.Millisecond), par.Round(time.Millisecond), st.Workers, st.Speedup)
	return st, nil
}

// suiteExperiments resolves suiteIDs against the registry.
func suiteExperiments() ([]experiments.Experiment, error) {
	var exps []experiments.Experiment
	for _, id := range suiteIDs {
		e, ok := experiments.ByID(id)
		if !ok {
			return nil, fmt.Errorf("suite timing: unknown experiment %q", id)
		}
		exps = append(exps, e)
	}
	return exps, nil
}

// measureObsOverhead times the sequential suite with instrumentation off
// (the nil registry) and on (a live registry fed by per-trial registries).
// Sequential runs keep the comparison free of scheduling noise.
func measureObsOverhead(seeds int) (*ObsOverhead, error) {
	exps, err := suiteExperiments()
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	timeRun := func(reg *obs.Registry) (time.Duration, error) {
		start := time.Now()
		_, err := experiments.RunSuite(ctx, exps, 1, seeds, runner.Config{Parallelism: 1}, reg)
		return time.Since(start), err
	}

	off, err := timeRun(obs.Disabled)
	if err != nil {
		return nil, fmt.Errorf("obs overhead (uninstrumented): %w", err)
	}
	reg := obs.New()
	on, err := timeRun(reg)
	if err != nil {
		return nil, fmt.Errorf("obs overhead (instrumented): %w", err)
	}

	oo := &ObsOverhead{
		Experiments:      suiteIDs,
		Seeds:            seeds,
		UninstrumentedMS: float64(off.Milliseconds()),
		InstrumentedMS:   float64(on.Milliseconds()),
		Series:           len(reg.Snapshot().Metrics),
	}
	if off > 0 {
		oo.Overhead = float64(on) / float64(off)
	}
	fmt.Printf("lgbench: obs overhead: uninstrumented %v, instrumented %v (%.3fx, %d series)\n",
		off.Round(time.Millisecond), on.Round(time.Millisecond), oo.Overhead, oo.Series)
	return oo, nil
}

// runBenchmarks shells out to go test and parses the -benchmem result lines.
func runBenchmarks(benchtime string) (map[string]Metrics, error) {
	args := []string{"test", "-run", "^$", "-bench", benchPattern,
		"-benchmem", "-benchtime", benchtime}
	args = append(args, benchPackages...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	os.Stdout.Write(outBytes)
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	results := make(map[string]Metrics)
	for _, line := range strings.Split(string(outBytes), "\n") {
		name, m, ok := parseBenchLine(line)
		if ok {
			results[name] = m
		}
	}
	return results, nil
}

// parseBenchLine decodes one "BenchmarkX-8  N  ns/op  B/op  allocs/op"
// line; ok=false for anything else (headers, PASS, package summaries).
func parseBenchLine(line string) (string, Metrics, bool) {
	f := strings.Fields(line)
	if len(f) < 8 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", Metrics{}, false
	}
	if f[3] != "ns/op" || f[5] != "B/op" || f[7] != "allocs/op" {
		return "", Metrics{}, false
	}
	iters, err1 := strconv.Atoi(f[1])
	ns, err2 := strconv.ParseFloat(f[2], 64)
	bytes, err3 := strconv.ParseFloat(f[4], 64)
	allocs, err4 := strconv.ParseFloat(f[6], 64)
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
		return "", Metrics{}, false
	}
	// Strip the -GOMAXPROCS suffix so names are stable across machines.
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	m := Metrics{Iterations: iters, NsPerOp: ns, BytesPerOp: bytes, AllocsPerOp: allocs}
	// The dataplane benchmarks forward exactly one packet per op, so the
	// inverse rate is the headline packets/sec figure.
	if strings.HasPrefix(name, "BenchmarkDataplane") && ns > 0 {
		m.PacketsPerSec = 1e9 / ns
	}
	return name, m, true
}

// loadBaseline returns the baseline section of an existing report, or nil.
func loadBaseline(path string) map[string]Metrics {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var prev Report
	if err := json.Unmarshal(buf, &prev); err != nil || len(prev.Baseline) == 0 {
		fmt.Fprintf(os.Stderr, "lgbench: %s exists but has no usable baseline; re-seeding\n", path)
		return nil
	}
	return prev.Baseline
}

// deltas compares benchmarks present in both runs.
func deltas(baseline, current map[string]Metrics) map[string]Delta {
	d := make(map[string]Delta)
	for name, base := range baseline {
		now, ok := current[name]
		if !ok || now.NsPerOp == 0 {
			continue
		}
		dl := Delta{Speedup: base.NsPerOp / now.NsPerOp}
		if base.AllocsPerOp > 0 {
			dl.AllocRatio = now.AllocsPerOp / base.AllocsPerOp
		}
		d[name] = dl
	}
	return d
}
