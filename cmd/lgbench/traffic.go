package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"lifeguard/internal/bgp"
	"lifeguard/internal/dataplane"
	"lifeguard/internal/experiments"
	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
	"lifeguard/internal/topogen"
	"lifeguard/internal/traffic"
)

// The -traffic family measures the traffic-at-scale dataplane two ways:
// modelled-flow throughput (the same million-flow population pushed through
// the batched and the single-packet forwarding paths, packets/sec each),
// and the user-seconds-lost experiment's headline numbers (the same
// outage timeline scored with the repair loop armed and disarmed). The
// batched/single ratio is the PR's amortization claim; the experiment
// numbers are its fidelity claim.

// TrafficThroughput is one forwarding mode's measurement.
type TrafficThroughput struct {
	Epochs        int     `json:"epochs"`
	Packets       int64   `json:"packets"`
	WallMS        float64 `json:"wall_ms"`
	PacketsPerSec float64 `json:"packets_per_sec"`
	FlowsPerSec   float64 `json:"flows_per_sec"`
}

// TrafficExperiment carries the user-seconds-lost sweep's headline values.
type TrafficExperiment struct {
	Seed                    int64   `json:"seed"`
	Flows                   float64 `json:"flows"`
	UserSecondsLostRepair   float64 `json:"user_seconds_lost_repair"`
	UserSecondsLostNoRepair float64 `json:"user_seconds_lost_norepair"`
	SavedFrac               float64 `json:"user_seconds_saved_frac"`
	AvailabilityRepair      float64 `json:"availability_repair"`
	AvailabilityNoRepair    float64 `json:"availability_norepair"`
	Violations              float64 `json:"violations"`
}

// TrafficReport is the BENCH_pr10.json schema.
type TrafficReport struct {
	Schema    string            `json:"schema"`
	GoVersion string            `json:"go_version"`
	Flows     int               `json:"flows"`
	Vantages  int               `json:"vantages"`
	Dests     int               `json:"dests"`
	Batched   TrafficThroughput `json:"batched"`
	Single    TrafficThroughput `json:"single"`
	// Speedup is batched packets/sec over single packets/sec — the
	// amortization win of ForwardBatch (target >= 3x).
	Speedup    float64           `json:"speedup"`
	Experiment TrafficExperiment `json:"experiment"`
}

// trafficRig builds the converged ~100-AS throughput internetwork.
func trafficRig() (*topogen.Result, *simclock.Scheduler, *dataplane.Plane, error) {
	res, err := topogen.Generate(topogen.Config{Seed: 1, NumTransit: 25, NumStub: 80})
	if err != nil {
		return nil, nil, nil, err
	}
	clk := simclock.New()
	eng := bgp.New(res.Top, clk, bgp.Config{Seed: 1})
	for _, asn := range res.Top.ASNs() {
		eng.Originate(asn, topo.Block(asn))
	}
	if !eng.Converge(500_000_000) {
		return nil, nil, nil, fmt.Errorf("throughput rig did not converge")
	}
	return res, clk, dataplane.New(res.Top, eng), nil
}

// measureTrafficMode times epochs of one forwarding mode over a fresh rig,
// so the two modes never share warmed caches or churned flow state.
func measureTrafficMode(flows, epochs int, single bool) (TrafficThroughput, int, int, error) {
	res, clk, plane, err := trafficRig()
	if err != nil {
		return TrafficThroughput{}, 0, 0, err
	}
	var vantages []topo.ASN
	for _, s := range res.Stubs[:8] {
		vantages = append(vantages, s)
	}
	var dests []traffic.Dest
	for i, s := range res.Stubs[8:24] {
		dests = append(dests, traffic.Dest{Addr: topo.ProductionAddr(s), Weight: 1 + i%3})
	}
	gen, err := traffic.New(traffic.Deps{Top: res.Top, Clk: clk, Plane: plane}, traffic.Config{
		Seed:         1,
		Flows:        flows,
		Vantages:     vantages,
		Dests:        dests,
		Epoch:        10 * time.Second,
		Churn:        0.02,
		SinglePacket: single,
	})
	if err != nil {
		return TrafficThroughput{}, 0, 0, err
	}

	var packets, flowEpochs int64
	start := time.Now()
	for i := 0; i < epochs; i++ {
		clk.RunFor(gen.Epoch())
		rep := gen.RunEpoch()
		packets += rep.Packets
		flowEpochs += rep.Flows
	}
	wall := time.Since(start)

	tp := TrafficThroughput{
		Epochs:  epochs,
		Packets: packets,
		WallMS:  float64(wall.Milliseconds()),
	}
	if secs := wall.Seconds(); secs > 0 {
		tp.PacketsPerSec = float64(packets) / secs
		tp.FlowsPerSec = float64(flowEpochs) / secs
	}
	return tp, len(vantages), len(dests), nil
}

// runTrafficFamily writes the BENCH_pr10.json report.
func runTrafficFamily(flows, epochs int, seed int64, out string) error {
	rep := TrafficReport{
		Schema:    "lifeguard-bench-traffic/v1",
		GoVersion: runtime.Version(),
		Flows:     flows,
	}

	var err error
	rep.Batched, rep.Vantages, rep.Dests, err = measureTrafficMode(flows, epochs, false)
	if err != nil {
		return err
	}
	fmt.Printf("lgbench: traffic batched: %d flows, %d epochs, %.0f packets/sec\n",
		flows, epochs, rep.Batched.PacketsPerSec)
	rep.Single, _, _, err = measureTrafficMode(flows, epochs, true)
	if err != nil {
		return err
	}
	fmt.Printf("lgbench: traffic single:  %d flows, %d epochs, %.0f packets/sec\n",
		flows, epochs, rep.Single.PacketsPerSec)
	if rep.Single.PacketsPerSec > 0 {
		rep.Speedup = rep.Batched.PacketsPerSec / rep.Single.PacketsPerSec
	}
	fmt.Printf("lgbench: traffic batching speedup %.1fx\n", rep.Speedup)

	r := experiments.Traffic(seed)
	rep.Experiment = TrafficExperiment{
		Seed:                    seed,
		Flows:                   r.Values["flows_total"],
		UserSecondsLostRepair:   r.Values["user_seconds_lost_repair"],
		UserSecondsLostNoRepair: r.Values["user_seconds_lost_norepair"],
		SavedFrac:               r.Values["user_seconds_saved_frac"],
		AvailabilityRepair:      r.Values["availability_repair"],
		AvailabilityNoRepair:    r.Values["availability_norepair"],
		Violations:              r.Values["violations_total"],
	}
	fmt.Printf("lgbench: traffic experiment: %.0f user-seconds lost with repair, %.0f without (%.1f%% saved)\n",
		rep.Experiment.UserSecondsLostRepair, rep.Experiment.UserSecondsLostNoRepair,
		100*rep.Experiment.SavedFrac)

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("lgbench: wrote traffic report to %s\n", out)
	return nil
}
