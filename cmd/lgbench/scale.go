package main

// The scale family measures how the engine behaves as the topology grows
// from hundreds to tens of thousands of ASes: full-table convergence
// wall-clock, peak RSS, and routing-state size at 200, 2k, and 10k ASes,
// plus a digest cross-check that the sharded event loop is byte-identical
// across worker counts.
//
// Each case runs in a fresh subprocess (self-exec with -scale-case) so
// VmHWM — which is monotone for a process lifetime — isolates that case's
// peak memory instead of whichever case ran biggest first.
//
//	go run ./cmd/lgbench -scale                 # full family -> BENCH_pr7.json
//	go run ./cmd/lgbench -scale-smoke           # CI: 2k case + determinism diff
//	go run ./cmd/lgbench -scale-case '{"ases":200,...}'  # internal self-exec

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"time"

	"lifeguard/internal/scalebench"
)

// scaleCases is the committed family. The 2k case runs at two worker
// counts; equal digests are asserted, and the scaling section reads the
// workers=1 run so the axis is topology size, not parallelism.
var scaleCases = []scalebench.Config{
	{ASes: 200, Prefixes: 200, Seed: 7, ShardWorkers: 1},
	{ASes: 2000, Prefixes: 200, Seed: 7, ShardWorkers: 1},
	{ASes: 2000, Prefixes: 200, Seed: 7, ShardWorkers: 4},
	{ASes: 10000, Prefixes: 200, Seed: 7, ShardWorkers: 1},
}

// ScaleRatios compares one case against the 200-AS baseline. Sublinear
// means the resource grew by a smaller factor than the AS count did —
// the acceptance bar for the interned-path/delta-RIB memory model. The
// per-route ratios normalize by loc-RIB size (ASes x prefixes), which
// removes the baseline's smaller prefix table (a 200-AS topology has only
// 155 stubs to originate from) from the comparison; note full-table
// convergence work is necessarily Ω(ASes x prefixes), so the per-route
// ratio — not the raw wall-clock ratio — is the per-unit-cost trend.
type ScaleRatios struct {
	ASRatio               float64 `json:"as_ratio"`
	RouteRatio            float64 `json:"route_ratio"`
	ConvergeRatio         float64 `json:"converge_ratio"`
	PeakRSSRatio          float64 `json:"peak_rss_ratio"`
	ConvergePerRouteRatio float64 `json:"converge_per_route_ratio"`
	PeakRSSPerRouteRatio  float64 `json:"peak_rss_per_route_ratio"`
	ConvergeSub           bool    `json:"converge_sublinear"`
	PeakRSSSub            bool    `json:"peak_rss_sublinear"`
}

// ScaleReport is the BENCH_pr7.json schema.
type ScaleReport struct {
	Schema    string                 `json:"schema"`
	GoVersion string                 `json:"go_version"`
	Cases     []*scalebench.Result   `json:"cases"`
	Scaling   map[string]ScaleRatios `json:"scaling_vs_200"`
	// DigestMatch records the 2k-AS workers=1 vs workers=4 comparison —
	// the determinism contract at scale.
	DigestMatch bool `json:"digest_match_across_workers"`
}

// runScaleCase is the hidden subprocess entry: decode one config from the
// -scale-case flag, run it in this fresh process, print the Result JSON.
func runScaleCase(confJSON string) {
	var cfg scalebench.Config
	if err := json.Unmarshal([]byte(confJSON), &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "lgbench: bad -scale-case:", err)
		os.Exit(1)
	}
	res, err := scalebench.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lgbench:", err)
		os.Exit(1)
	}
	json.NewEncoder(os.Stdout).Encode(res)
}

// runCaseSubprocess self-execs one case so its VmHWM reading is clean.
func runCaseSubprocess(cfg scalebench.Config) (*scalebench.Result, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, err
	}
	buf, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(self, "-scale-case", string(buf))
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("scale case %d ASes: %w", cfg.ASes, err)
	}
	var res scalebench.Result
	if err := json.Unmarshal(out, &res); err != nil {
		return nil, fmt.Errorf("scale case %d ASes: bad result: %w", cfg.ASes, err)
	}
	return &res, nil
}

// runScaleFamily executes every committed case and writes the report.
func runScaleFamily(out string) error {
	rep := ScaleReport{
		Schema:    "lifeguard-scalebench/v1",
		GoVersion: runtime.Version(),
		Scaling:   make(map[string]ScaleRatios),
	}
	var baseline *scalebench.Result
	digests := map[int]map[int]string{} // ASes -> workers -> digest
	for _, cfg := range scaleCases {
		fmt.Printf("lgbench: scale %d ASes x %d prefixes (workers=%d)...\n",
			cfg.ASes, cfg.Prefixes, cfg.ShardWorkers)
		res, err := runCaseSubprocess(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("lgbench:   converge %.0f ms, peak RSS %.1f MB, %d updates, digest %s\n",
			res.ConvergeMS, res.VmHWMMB, res.Updates, res.Digest)
		rep.Cases = append(rep.Cases, res)
		if digests[res.ASes] == nil {
			digests[res.ASes] = map[int]string{}
		}
		digests[res.ASes][res.ShardWorkers] = res.Digest
		if res.ASes == 200 {
			baseline = res
		}
	}

	rep.DigestMatch = true
	sizes := make([]int, 0, len(digests))
	for ases := range digests {
		sizes = append(sizes, ases)
	}
	sort.Ints(sizes)
	for _, ases := range sizes {
		byWorkers := digests[ases]
		workers := make([]int, 0, len(byWorkers))
		for w := range byWorkers {
			workers = append(workers, w)
		}
		sort.Ints(workers)
		first := byWorkers[workers[0]]
		for _, w := range workers[1:] {
			if byWorkers[w] != first {
				rep.DigestMatch = false
				fmt.Fprintf(os.Stderr, "lgbench: DIGEST MISMATCH at %d ASes: workers=%d got %s, workers=%d got %s\n",
					ases, workers[0], first, w, byWorkers[w])
			}
		}
	}

	if baseline != nil {
		for _, res := range rep.Cases {
			if res.ASes == 200 || res.ShardWorkers != 1 {
				continue
			}
			asR := float64(res.ASes) / float64(baseline.ASes)
			r := ScaleRatios{ASRatio: asR}
			if baseline.LocRIBRoutes > 0 {
				r.RouteRatio = float64(res.LocRIBRoutes) / float64(baseline.LocRIBRoutes)
			}
			if baseline.ConvergeMS > 0 {
				r.ConvergeRatio = res.ConvergeMS / baseline.ConvergeMS
				r.ConvergeSub = r.ConvergeRatio < asR
				if r.RouteRatio > 0 {
					r.ConvergePerRouteRatio = r.ConvergeRatio / r.RouteRatio
				}
			}
			if baseline.VmHWMMB > 0 {
				r.PeakRSSRatio = res.VmHWMMB / baseline.VmHWMMB
				r.PeakRSSSub = r.PeakRSSRatio < asR
				if r.RouteRatio > 0 {
					r.PeakRSSPerRouteRatio = r.PeakRSSRatio / r.RouteRatio
				}
			}
			rep.Scaling[fmt.Sprintf("%d_ases", res.ASes)] = r
		}
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("lgbench: wrote %d scale cases to %s\n", len(rep.Cases), out)
	if !rep.DigestMatch {
		return fmt.Errorf("determinism violation: digests diverged across worker counts")
	}
	return nil
}

// scaleSmokeBudget bounds the CI smoke's 2k-AS convergence wall-clock.
const scaleSmokeBudget = 5 * time.Minute

// runScaleSmoke is the CI gate: one 2k-AS case at workers 1 and 4,
// in-process (peak RSS is not the smoke's concern), asserting the
// determinism contract and a wall-clock budget. Nonzero exit on either
// violation.
func runScaleSmoke() error {
	cfg := scalebench.Config{ASes: 2000, Prefixes: 50, Seed: 7, ShardWorkers: 1}
	start := time.Now()
	r1, err := scalebench.Run(cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("lgbench: scale smoke: 2000 ASes converged in %v (sim %.0fs, %d updates, digest %s)\n",
		elapsed.Round(time.Millisecond), r1.SimSeconds, r1.Updates, r1.Digest)
	if elapsed > scaleSmokeBudget {
		return fmt.Errorf("scale smoke: 2k-AS convergence took %v, budget %v", elapsed, scaleSmokeBudget)
	}
	cfg.ShardWorkers = 4
	r4, err := scalebench.Run(cfg)
	if err != nil {
		return err
	}
	if r4.Digest != r1.Digest || r4.Updates != r1.Updates {
		return fmt.Errorf("scale smoke: workers 1 vs 4 diverged: digest %s/%s updates %d/%d",
			r1.Digest, r4.Digest, r1.Updates, r4.Updates)
	}
	fmt.Println("lgbench: scale smoke: workers 1 vs 4 byte-identical (SCALE-SMOKE-OK)")
	return nil
}
