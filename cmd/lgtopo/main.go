// Command lgtopo generates and inspects the synthetic internetworks the
// experiments run over: AS counts per tier, degree distribution, multihoming
// rate, and (with -dump) the full relationship list.
//
//	lgtopo -seed 1 -transits 40 -stubs 150
//	lgtopo -seed 1 -dump | head
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"lifeguard/internal/metrics"
	"lifeguard/internal/splice"
	"lifeguard/internal/topo"
	"lifeguard/internal/topogen"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "generation seed")
		tier1s   = flag.Int("tier1s", 5, "tier-1 clique size")
		transits = flag.Int("transits", 40, "transit ASes")
		stubs    = flag.Int("stubs", 150, "stub ASes")
		dump     = flag.Bool("dump", false, "dump every AS relationship")
	)
	flag.Parse()

	res, err := topogen.Generate(topogen.Config{
		Seed: *seed, NumTier1: *tier1s, NumTransit: *transits, NumStub: *stubs,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lgtopo:", err)
		os.Exit(1)
	}
	top := res.Top

	fmt.Printf("ASes: %d total (%d tier-1, %d transit, %d stub); routers: %d; links: %d\n",
		top.NumASes(), len(res.Tier1s), len(res.Transit), len(res.Stubs),
		top.NumRouters(), len(top.Links()))

	var degrees metrics.Sample
	maxDeg, maxASN := 0, topo.ASN(0)
	multi := 0
	for _, asn := range top.ASNs() {
		d := len(top.Neighbors(asn))
		degrees.Add(float64(d))
		if d > maxDeg {
			maxDeg, maxASN = d, asn
		}
	}
	for _, s := range res.Stubs {
		if len(top.Providers(s)) >= 2 {
			multi++
		}
	}
	fmt.Printf("degree: median %.0f, p90 %.0f, max %d (%s)\n",
		degrees.Median(), degrees.Percentile(90), maxDeg, top.AS(maxASN).Name)
	fmt.Printf("multihomed stubs: %d/%d (%.0f%%)\n",
		multi, len(res.Stubs), 100*float64(multi)/float64(len(res.Stubs)))

	// Universal-reachability sanity check from a sample origin.
	origin := res.Stubs[0]
	reach := splice.Reach(top, origin, nil)
	fmt.Printf("valley-free reachability from AS%d: %d/%d ASes\n",
		origin, len(reach), top.NumASes())

	if *dump {
		fmt.Println()
		asns := top.ASNs()
		sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
		for _, asn := range asns {
			as := top.AS(asn)
			fmt.Printf("AS%-5d %-10s tier%d providers=%v peers=%v customers=%v\n",
				asn, as.Name, as.Tier,
				top.Providers(asn), top.Peers(asn), top.Customers(asn))
		}
	}
}
