// Command lgchaos runs chaos fault timelines (internal/chaos) against
// freshly generated internetworks and reports the invariant checker's
// verdict. Timelines come from the seeded outage-calibrated generator or
// from a script file:
//
//	lgchaos                                  # one generated timeline
//	lgchaos -seed 7 -intensity 2 -faults 8   # denser generated timeline
//	lgchaos -script failures.chaos           # scripted timeline
//	lgchaos -trials 4 -parallel 4            # independent seeds, in parallel
//	lgchaos -obs metrics.json                # metrics snapshot side-file
//	lgchaos -hijack                          # scripted hijack vs the defended session
//	lgchaos -list-faults                     # print the fault vocabulary
//
// -hijack replaces the generated timeline with the hijack-plane smoke: a
// scripted sub-prefix hijack is injected against an owner whose Session
// runs the detection+mitigation pipeline, and the report carries the
// detect→mitigate→clear stages with their sim-time latencies. A missing
// pipeline stage counts as a violation, so the exit status covers the
// defense as well as the invariants.
//
// Reports go to stdout; timing and progress chatter go to stderr, so
// stdout is byte-identical for a fixed configuration at every -parallel
// level (diff it to audit the determinism contract). The exit status is 0
// when every trial upheld every invariant, 3 when violations were found.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"time"

	"lifeguard"
	"lifeguard/internal/obs"
	"lifeguard/internal/runner"
)

// Default topology size: big enough for real transit diversity, small
// enough that a multi-trial sweep stays interactive.
const (
	defaultTransit = 10
	defaultStub    = 20
)

// options collects everything main parses from flags, so tests can drive
// writeReports directly.
type options struct {
	script    string // script text; "" means generate
	seed      int64
	intensity float64
	faults    int
	trials    int
	parallel  int
	obsPath   string // write merged metrics snapshot JSON here; "" disables obs
	transit   int
	stub      int
	hijack    bool // run the hijack-plane smoke instead of a fault timeline
}

func main() {
	var (
		scriptPath = flag.String("script", "", "chaos script file (default: generate a timeline per trial)")
		seed       = flag.Int64("seed", 1, "base seed for topology and timeline generation")
		intensity  = flag.Float64("intensity", 1, "fault density multiplier for generated timelines")
		faults     = flag.Int("faults", 5, "faults per generated timeline")
		trials     = flag.Int("trials", 1, "independent trials on consecutive seeds")
		parallel   = flag.Int("parallel", 0, "trial workers (0 = GOMAXPROCS, 1 = sequential)")
		obsPath    = flag.String("obs", "", "write the merged metrics snapshot (JSON) to this file; empty disables instrumentation")
		transit    = flag.Int("transit", defaultTransit, "transit ASes in each generated internetwork")
		stub       = flag.Int("stub", defaultStub, "stub ASes in each generated internetwork")
		hijack     = flag.Bool("hijack", false, "run the hijack-plane smoke: scripted sub-prefix hijack vs a defended session")
		listFaults = flag.Bool("list-faults", false, "print the chaos script's fault vocabulary and exit")
	)
	flag.Parse()

	if *listFaults {
		writeFaultList(os.Stdout)
		return
	}

	opts := options{
		seed: *seed, intensity: *intensity, faults: *faults,
		trials: *trials, parallel: *parallel, obsPath: *obsPath,
		transit: *transit, stub: *stub, hijack: *hijack,
	}
	if *scriptPath != "" {
		buf, err := os.ReadFile(*scriptPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lgchaos: %v\n", err)
			os.Exit(1)
		}
		opts.script = string(buf)
	}

	violations, err := writeReports(context.Background(), os.Stdout, os.Stderr, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lgchaos: %v\n", err)
		os.Exit(1)
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "lgchaos: %d invariant violations\n", violations)
		os.Exit(3)
	}
}

// trialOut is one trial's rendered report plus the private registry it
// reported into (nil when the run is uninstrumented).
type trialOut struct {
	text       string
	violations int
	reg        *obs.Registry
}

// writeReports runs the trials on the runner pool and renders each report
// to out in seed order, returning the total violation count. Chatter goes
// to errw only: for a fixed configuration the bytes written to out are
// identical at every parallelism level, and identical with -obs on or off.
func writeReports(ctx context.Context, out, errw io.Writer, opts options) (int, error) {
	if opts.trials < 1 {
		opts.trials = 1
	}
	if opts.transit == 0 {
		opts.transit = defaultTransit
	}
	if opts.stub == 0 {
		opts.stub = defaultStub
	}
	cfg := runner.Config{Parallelism: opts.parallel}

	// The simulation runs on virtual time; this stopwatch only tells the
	// operator how long the real machine took.
	//lint:ignore lglint/simclockcheck wall-clock progress report for the operator; no result depends on it
	start := time.Now()
	fmt.Fprintf(errw, "lgchaos: %d trials on %d workers\n", opts.trials, cfg.Workers())

	var dst *obs.Registry
	if opts.obsPath != "" {
		dst = obs.New()
	}

	outs, err := runner.Map(ctx, opts.trials, cfg, func(_ context.Context, i int) (trialOut, error) {
		var reg *obs.Registry
		if dst.Enabled() {
			reg = obs.New()
		}
		if opts.hijack {
			return runHijackTrial(opts, opts.seed+int64(i), reg)
		}
		return runTrial(opts, opts.seed+int64(i), reg)
	})
	if err != nil {
		return 0, err
	}

	violations := 0
	for _, o := range outs {
		fmt.Fprint(out, o.text)
		violations += o.violations
		dst.Merge(o.reg)
	}

	if opts.obsPath != "" {
		if err := writeSnapshot(opts.obsPath, dst); err != nil {
			return 0, err
		}
		fmt.Fprintf(errw, "lgchaos: wrote metrics snapshot to %s\n", opts.obsPath)
	}

	//lint:ignore lglint/simclockcheck wall-clock progress report for the operator; no result depends on it
	fmt.Fprintf(errw, "lgchaos: completed in %v\n", time.Since(start).Round(time.Millisecond))
	return violations, nil
}

// runTrial assembles one internetwork, resolves its timeline (parsed per
// trial — faults carry per-run state, so a script is never shared across
// trials), runs it, and renders the deterministic report block.
func runTrial(opts options, seed int64, reg *obs.Registry) (trialOut, error) {
	net, err := lifeguard.GenerateInternet(
		lifeguard.InternetConfig{Seed: seed, NumTransit: opts.transit, NumStub: opts.stub},
		lifeguard.NetworkOptions{Obs: reg},
	)
	if err != nil {
		return trialOut{}, fmt.Errorf("trial seed %d: %w", seed, err)
	}

	var script *lifeguard.ChaosScript
	if opts.script != "" {
		script, err = lifeguard.ParseChaosScript(opts.script)
	} else {
		script, err = lifeguard.GenerateChaosScript(net.Top, lifeguard.ChaosGenConfig{
			Seed: seed, N: opts.faults, Intensity: opts.intensity,
		})
	}
	if err != nil {
		return trialOut{}, fmt.Errorf("trial seed %d: %w", seed, err)
	}

	// Reachability probes asserted at all-healed barriers: both directions
	// between two stub edges of the generated internetwork.
	s0, s1 := net.Gen.Stubs[0], net.Gen.Stubs[1]
	reach := []lifeguard.ChaosReachProbe{
		{From: net.Hub(s0), To: net.RouterAddr(net.Hub(s1))},
		{From: net.Hub(s1), To: net.RouterAddr(net.Hub(s0))},
	}

	rep, err := net.RunChaos(script, lifeguard.ChaosOptions{Obs: reg, Reach: reach})
	if err != nil {
		return trialOut{}, fmt.Errorf("trial seed %d: %w", seed, err)
	}

	text := fmt.Sprintf("## trial seed=%d\nscript:\n", seed)
	for _, line := range splitLines(script.String()) {
		text += "  " + line + "\n"
	}
	text += rep.String() + "\n"
	return trialOut{text: text, violations: len(rep.Violations), reg: reg}, nil
}

// runHijackTrial drives the hijack-plane smoke: one generated
// internetwork whose first stub runs a Session with detection and
// auto-mitigation enabled, a scripted sub-prefix hijack by another stub
// injected through the chaos runner, and a deterministic report of the
// detect→mitigate→clear pipeline in sim-time. Each missing stage counts
// as a violation so the exit status covers the defense, not just the
// runner's invariants.
func runHijackTrial(opts options, seed int64, reg *obs.Registry) (trialOut, error) {
	net, err := lifeguard.GenerateInternet(
		lifeguard.InternetConfig{Seed: seed, NumTransit: opts.transit, NumStub: opts.stub},
		lifeguard.NetworkOptions{Obs: reg},
	)
	if err != nil {
		return trialOut{}, fmt.Errorf("hijack trial seed %d: %w", seed, err)
	}
	owner, rogue := net.Gen.Stubs[0], net.Gen.Stubs[1]

	ses := lifeguard.NewSession(net, lifeguard.SessionConfig{
		Config: lifeguard.Config{Origin: owner},
		Hijack: lifeguard.HijackConfig{Enable: true, CollectorPeers: net.Gen.Transit},
	})
	ses.Start()
	net.Clk.RunFor(time.Minute)

	// The contested more-specific sits inside the owner's block but away
	// from the production/sentinel /24s, so it classifies as sub-prefix.
	b := lifeguard.Block(owner).Addr().As4()
	sub := netip.PrefixFrom(netip.AddrFrom4([4]byte{b[0], b[1], 128, 0}), 24)
	script, err := lifeguard.ParseChaosScript(
		fmt.Sprintf("at 1m for 20m subhijack %d %s\nat 30m check\n", rogue, sub))
	if err != nil {
		return trialOut{}, fmt.Errorf("hijack trial seed %d: %w", seed, err)
	}
	rep, err := net.RunChaos(script, lifeguard.ChaosOptions{Obs: reg})
	if err != nil {
		return trialOut{}, fmt.Errorf("hijack trial seed %d: %w", seed, err)
	}

	text := fmt.Sprintf("## hijack trial seed=%d\nowner=AS%d rogue=AS%d prefix=%s\nscript:\n",
		seed, owner, rogue, sub)
	for _, line := range splitLines(script.String()) {
		text += "  " + line + "\n"
	}
	text += rep.String() + "\npipeline:\n"
	violations := len(rep.Violations)

	if det := ses.EventsOfKind(lifeguard.EventHijackDetected); len(det) == 1 {
		a := det[0].Alarm
		text += fmt.Sprintf("  detected  %v of %s by AS%d latency=%v\n", a.Class, a.Prefix, a.Rogue, a.Latency)
	} else {
		violations++
		text += fmt.Sprintf("  VIOLATION: %d detection events, want 1\n", len(det))
	}
	if mit := ses.EventsOfKind(lifeguard.EventHijackMitigated); len(mit) == 1 {
		m := mit[0].Mitigation
		text += fmt.Sprintf("  mitigated announced=%v poisoned=AS%d latency=%v recovered=%d/%d\n",
			m.Announced, m.Poisoned, m.Latency, m.Recovered, m.Vantages)
	} else {
		violations++
		text += fmt.Sprintf("  VIOLATION: %d mitigation events, want 1\n", len(mit))
	}
	if len(ses.EventsOfKind(lifeguard.EventHijackCleared)) == 1 &&
		len(ses.Hijack.Active()) == 0 && len(ses.Remedy.Counters()) == 0 {
		text += "  cleared   alarm down, counter-announcements withdrawn\n"
	} else {
		violations++
		text += "  VIOLATION: alarm or counter-announcements outlived the attack\n"
	}
	ses.Stop()
	return trialOut{text: text, violations: violations, reg: reg}, nil
}

// writeFaultList prints the chaos script vocabulary, one keyword per line,
// already sorted by the chaos package's contract.
func writeFaultList(w io.Writer) {
	for _, d := range lifeguard.ChaosVocabulary() {
		fmt.Fprintf(w, "%-44s %s\n", d.Usage, d.Doc)
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// writeSnapshot dumps the merged registry as JSON. Per-trial registries
// merge in trial-index order, so for a fixed configuration the file is
// byte-identical at every -parallel level.
func writeSnapshot(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics snapshot: %w", err)
	}
	if err := reg.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("metrics snapshot: %w", err)
	}
	return f.Close()
}
