package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lifeguard"
)

// TestReportsByteIdenticalAcrossParallelism is the determinism contract
// the ISSUE demands end to end: the bytes lgchaos writes to stdout for a
// fixed seed must not depend on -parallel. Chatter goes to stderr and is
// allowed to differ (it carries wall-clock timings).
func TestReportsByteIdenticalAcrossParallelism(t *testing.T) {
	base := options{seed: 5, intensity: 1.5, faults: 4, trials: 3}

	render := func(parallel int) []byte {
		t.Helper()
		var out, chatter bytes.Buffer
		opts := base
		opts.parallel = parallel
		v, err := writeReports(context.Background(), &out, &chatter, opts)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		if v != 0 {
			t.Fatalf("parallel=%d: %d violations in a clean generated run:\n%s", parallel, v, out.Bytes())
		}
		return out.Bytes()
	}

	want := render(1)
	if len(want) == 0 {
		t.Fatal("sequential run produced no output")
	}
	if got := bytes.Count(want, []byte("## trial seed=")); got != 3 {
		t.Fatalf("expected 3 trial blocks, found %d:\n%s", got, want)
	}
	for _, par := range []int{2, 4} {
		if got := render(par); !bytes.Equal(got, want) {
			t.Errorf("stdout differs between -parallel 1 and -parallel %d:\n--- parallel ---\n%s\n--- sequential ---\n%s", par, got, want)
		}
	}
}

// TestObsSnapshotByteIdenticalAcrossParallelism pins both halves of the
// observability contract: -obs must not change a byte of the report
// stream, and the snapshot itself (per-trial registries merged in
// trial-index order) must not depend on -parallel.
func TestObsSnapshotByteIdenticalAcrossParallelism(t *testing.T) {
	dir := t.TempDir()
	run := func(parallel int, obsPath string) ([]byte, []byte) {
		t.Helper()
		var out, chatter bytes.Buffer
		opts := options{seed: 2, faults: 3, trials: 2, parallel: parallel, obsPath: obsPath}
		if _, err := writeReports(context.Background(), &out, &chatter, opts); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		var snap []byte
		if obsPath != "" {
			var err error
			if snap, err = os.ReadFile(obsPath); err != nil {
				t.Fatalf("parallel=%d: %v", parallel, err)
			}
		}
		return out.Bytes(), snap
	}

	plain, _ := run(1, "")
	seqOut, seqSnap := run(1, filepath.Join(dir, "seq.json"))
	if !bytes.Equal(plain, seqOut) {
		t.Error("stdout differs with -obs enabled")
	}
	if !bytes.Contains(seqSnap, []byte("lifeguard_chaos_faults_injected_total")) {
		t.Fatalf("snapshot is missing chaos counters:\n%s", seqSnap)
	}
	parOut, parSnap := run(4, filepath.Join(dir, "par.json"))
	if !bytes.Equal(parOut, seqOut) {
		t.Error("stdout differs between -parallel 1 and -parallel 4")
	}
	if !bytes.Equal(parSnap, seqSnap) {
		t.Error("metrics snapshot differs between -parallel 1 and -parallel 4")
	}
}

// TestScriptFileMode drives an explicit script — valid for the CLI's
// default topology at this seed — through the same path -script uses.
func TestScriptFileMode(t *testing.T) {
	net, err := lifeguard.GenerateInternet(
		lifeguard.InternetConfig{Seed: 9, NumTransit: defaultTransit, NumStub: defaultStub})
	if err != nil {
		t.Fatal(err)
	}
	// Any adjacent AS pair works; take a stub and its first provider.
	s := net.Gen.Stubs[0]
	p := net.Top.Providers(s)[0]
	script := fmt.Sprintf("at 10s for 2m linkdown %d %d\nat 10m check\n", s, p)

	var out, chatter bytes.Buffer
	opts := options{script: script, seed: 9, trials: 1}
	v, err := writeReports(context.Background(), &out, &chatter, opts)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("clean scripted run reported %d violations:\n%s", v, out.String())
	}
	if !strings.Contains(out.String(), fmt.Sprintf("linkdown %d %d", s, p)) {
		t.Fatalf("script not echoed in report:\n%s", out.String())
	}
}

// TestUnhealedFaultSurfacesViolations: a deliberately unhealed fault must
// drive the violation count (and hence the CLI's exit status) nonzero.
func TestUnhealedFaultSurfacesViolations(t *testing.T) {
	net, err := lifeguard.GenerateInternet(
		lifeguard.InternetConfig{Seed: 9, NumTransit: defaultTransit, NumStub: defaultStub})
	if err != nil {
		t.Fatal(err)
	}
	s := net.Gen.Stubs[0]
	p := net.Top.Providers(s)[0]
	script := fmt.Sprintf("at 10s oneway %d %d\n", p, s)

	var out, chatter bytes.Buffer
	opts := options{script: script, seed: 9, trials: 1}
	v, err := writeReports(context.Background(), &out, &chatter, opts)
	if err != nil {
		t.Fatal(err)
	}
	if v == 0 {
		t.Fatalf("unhealed fault produced no violations:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "unhealed") {
		t.Fatalf("report does not name the unhealed invariant:\n%s", out.String())
	}
}

// TestHijackModeByteIdenticalAcrossParallelism extends the determinism
// contract to the hijack-plane smoke: every trial must carry a complete
// detect→mitigate→clear pipeline (a miss counts as a violation), and the
// report bytes must not depend on -parallel.
func TestHijackModeByteIdenticalAcrossParallelism(t *testing.T) {
	render := func(parallel int) []byte {
		t.Helper()
		var out, chatter bytes.Buffer
		opts := options{seed: 1, trials: 2, parallel: parallel, hijack: true}
		v, err := writeReports(context.Background(), &out, &chatter, opts)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		if v != 0 {
			t.Fatalf("parallel=%d: %d violations in the hijack smoke:\n%s", parallel, v, out.Bytes())
		}
		return out.Bytes()
	}

	want := render(1)
	for _, stage := range []string{"detected  sub-prefix", "mitigated announced=", "cleared   alarm down"} {
		if got := bytes.Count(want, []byte(stage)); got != 2 {
			t.Fatalf("%q appears %d times, want once per trial:\n%s", stage, got, want)
		}
	}
	if got := render(4); !bytes.Equal(got, want) {
		t.Errorf("hijack report differs between -parallel 1 and -parallel 4:\n--- parallel ---\n%s\n--- sequential ---\n%s", got, want)
	}
}

// TestListFaults pins the -list-faults contract: one line per fault
// keyword, sorted by keyword, stable across invocations, and covering the
// hijack vocabulary this subsystem added.
func TestListFaults(t *testing.T) {
	var a, b bytes.Buffer
	writeFaultList(&a)
	writeFaultList(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("fault list is not stable across invocations")
	}
	lines := strings.Split(strings.TrimRight(a.String(), "\n"), "\n")
	if len(lines) != len(lifeguard.ChaosVocabulary()) {
		t.Fatalf("%d lines, want one per vocabulary entry (%d)", len(lines), len(lifeguard.ChaosVocabulary()))
	}
	var kinds []string
	for _, l := range lines {
		kind := strings.Fields(l)[0]
		if len(kinds) > 0 && kind <= kinds[len(kinds)-1] {
			t.Fatalf("fault list not sorted: %q after %q", kind, kinds[len(kinds)-1])
		}
		kinds = append(kinds, kind)
	}
	for _, want := range []string{"hijack", "subhijack", "forgedorigin", "crashcontrol"} {
		found := false
		for _, k := range kinds {
			found = found || k == want
		}
		if !found {
			t.Fatalf("fault list is missing %q:\n%s", want, a.String())
		}
	}
}
