// Command lgpeer is a minimal BGP-4 speaker built on the wire/session
// packages: it can sit as a route collector accepting any number of peers
// and printing every UPDATE it receives, or dial out and inject
// LIFEGUARD-style announcements — baselines, poisons, withdrawals — into a
// real peer such as gobgp or a router configured with a test session.
//
//	# terminal 1: collector (accepts any number of peers)
//	lgpeer -listen 127.0.0.1:1790 -as 65000 -linger 10m
//
//	# terminal 2: announce a poisoned path, then withdraw
//	lgpeer -connect 127.0.0.1:1790 -as 64512 \
//	       -announce 184.164.240.0/24 -path 64512,3356,64512 \
//	       -nexthop 198.51.100.1 -hold 30 -linger 5s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/netip"
	"os"
	"strconv"
	"strings"
	"time"

	"lifeguard/internal/bgp/session"
	"lifeguard/internal/bgp/wire"
	"lifeguard/internal/obs"
	"lifeguard/internal/obs/obshttp"
)

// peerObs counts wire-level activity for the -http metrics endpoint.
type peerObs struct {
	sessions            *obs.Counter
	updatesReceived     *obs.Counter
	withdrawalsReceived *obs.Counter
	updatesSent         *obs.Counter
}

func instrument(reg *obs.Registry) peerObs {
	reg.Describe("lifeguard_lgpeer_sessions_total", "BGP sessions established")
	reg.Describe("lifeguard_lgpeer_updates_received_total", "NLRI received from peers")
	reg.Describe("lifeguard_lgpeer_withdrawals_received_total", "withdrawals received from peers")
	reg.Describe("lifeguard_lgpeer_updates_sent_total", "UPDATE messages sent to peers")
	return peerObs{
		sessions:            reg.Counter("lifeguard_lgpeer_sessions_total"),
		updatesReceived:     reg.Counter("lifeguard_lgpeer_updates_received_total"),
		withdrawalsReceived: reg.Counter("lifeguard_lgpeer_withdrawals_received_total"),
		updatesSent:         reg.Counter("lifeguard_lgpeer_updates_sent_total"),
	}
}

func main() {
	var (
		listen   = flag.String("listen", "", "collector mode: accept BGP sessions on this address")
		connect  = flag.String("connect", "", "dial a BGP peer at this address")
		localAS  = flag.Uint("as", 64512, "local AS number")
		routerID = flag.String("id", "198.51.100.1", "BGP identifier")
		hold     = flag.Duration("hold", 90*time.Second, "proposed hold time")
		announce = flag.String("announce", "", "prefix to announce (connect mode)")
		withdraw = flag.String("withdraw", "", "prefix to withdraw (connect mode)")
		path     = flag.String("path", "", "comma-separated AS path for -announce")
		nexthop  = flag.String("nexthop", "198.51.100.1", "NEXT_HOP for -announce")
		linger   = flag.Duration("linger", 10*time.Second, "keep the session up this long")
		httpAddr = flag.String("http", "", "serve /metrics, /healthz, /debug/vars and /debug/pprof on this address (empty disables)")
	)
	flag.Parse()
	if (*listen == "") == (*connect == "") {
		fmt.Fprintln(os.Stderr, "lgpeer: exactly one of -listen or -connect is required")
		os.Exit(2)
	}
	if err := run(*listen, *connect, uint16(*localAS), *routerID, *hold,
		*announce, *withdraw, *path, *nexthop, *linger, *httpAddr); err != nil {
		fmt.Fprintln(os.Stderr, "lgpeer:", err)
		os.Exit(1)
	}
}

func run(listen, connect string, localAS uint16, routerID string, hold time.Duration,
	announce, withdraw, path, nexthop string, linger time.Duration, httpAddr string) error {

	id, err := netip.ParseAddr(routerID)
	if err != nil {
		return fmt.Errorf("bad -id: %w", err)
	}

	reg := obs.New()
	po := instrument(reg)
	if httpAddr != "" {
		go func() {
			if err := obshttp.Serve(httpAddr, obshttp.NewMux(reg, nil)); err != nil {
				fmt.Fprintln(os.Stderr, "lgpeer: http server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "lgpeer: serving metrics on %s\n", httpAddr)
	}

	if listen != "" {
		// Collector mode: accept any number of peers and print their
		// updates until the linger expires.
		ln, err := net.Listen("tcp", listen)
		if err != nil {
			return err
		}
		defer ln.Close()
		fmt.Printf("collecting on %s as AS%d for %v\n", ln.Addr(), localAS, linger)
		sv := session.NewServer(session.Config{LocalAS: localAS, RouterID: id, HoldTime: hold})
		sv.OnSession = func(s *session.Session) {
			po.sessions.Inc()
			fmt.Printf("session established with AS%d\n", s.Peer().AS)
		}
		sv.OnUpdate = func(peerAS uint16, u wire.Update) {
			for _, p := range u.Withdrawn {
				po.withdrawalsReceived.Inc()
				fmt.Printf("<- AS%d WITHDRAW %v\n", peerAS, p)
			}
			for _, p := range u.NLRI {
				po.updatesReceived.Inc()
				fmt.Printf("<- AS%d UPDATE %v AS_PATH %v NEXT_HOP %v\n",
					peerAS, p, u.ASPath, u.NextHop)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), linger)
		defer cancel()
		if err := sv.Serve(ctx, ln); err != nil && err != context.DeadlineExceeded {
			return err
		}
		return nil
	}

	conn, err := net.Dial("tcp", connect)
	if err != nil {
		return err
	}
	s := session.New(conn, session.Config{LocalAS: localAS, RouterID: id, HoldTime: hold})
	s.OnUpdate = func(u wire.Update) {
		for _, p := range u.Withdrawn {
			po.withdrawalsReceived.Inc()
			fmt.Printf("<- WITHDRAW %v\n", p)
		}
		for _, p := range u.NLRI {
			po.updatesReceived.Inc()
			fmt.Printf("<- UPDATE %v AS_PATH %v NEXT_HOP %v communities %v\n",
				p, u.ASPath, u.NextHop, u.Communities)
		}
	}
	if err := s.Start(context.Background()); err != nil {
		return err
	}
	defer s.Close()
	po.sessions.Inc()
	fmt.Printf("established with AS%d (hold %v)\n", s.Peer().AS, s.HoldTime())

	if announce != "" {
		prefix, err := netip.ParsePrefix(announce)
		if err != nil {
			return fmt.Errorf("bad -announce: %w", err)
		}
		asPath, err := parsePath(path, localAS)
		if err != nil {
			return err
		}
		nh, err := netip.ParseAddr(nexthop)
		if err != nil {
			return fmt.Errorf("bad -nexthop: %w", err)
		}
		u := wire.Update{ASPath: asPath, NextHop: nh, NLRI: []netip.Prefix{prefix}}
		if err := s.Announce(u); err != nil {
			return err
		}
		po.updatesSent.Inc()
		fmt.Printf("-> UPDATE %v AS_PATH %v\n", prefix, asPath)
	}
	if withdraw != "" {
		prefix, err := netip.ParsePrefix(withdraw)
		if err != nil {
			return fmt.Errorf("bad -withdraw: %w", err)
		}
		if err := s.Announce(wire.Update{Withdrawn: []netip.Prefix{prefix}}); err != nil {
			return err
		}
		po.updatesSent.Inc()
		fmt.Printf("-> WITHDRAW %v\n", prefix)
	}

	select {
	case <-s.Done():
		if err := s.Err(); err != nil {
			var n wire.Notification
			if errors.As(err, &n) && n.Code == wire.NotifCease {
				fmt.Println("peer closed the session (CEASE)")
				return nil
			}
			return err
		}
	case <-time.After(linger):
	}
	return nil
}

// parsePath parses "64512,3356,64512"; empty means the plain [localAS].
func parsePath(s string, localAS uint16) ([]uint16, error) {
	if s == "" {
		return []uint16{localAS}, nil
	}
	parts := strings.Split(s, ",")
	out := make([]uint16, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad -path element %q: %w", p, err)
		}
		out = append(out, uint16(v))
	}
	return out, nil
}
