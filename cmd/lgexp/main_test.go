package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestReportsByteIdenticalAcrossParallelism is the end-to-end determinism
// check the ISSUE demands: the bytes lgexp writes to stdout for a fixed
// seed must not depend on -parallel. Chatter goes to stderr and is
// allowed to differ (it carries wall-clock timings).
func TestReportsByteIdenticalAcrossParallelism(t *testing.T) {
	base := options{
		ids:   []string{"fig1", "abl-threshold", "abl-dampening"},
		seed:  1,
		seeds: 2,
	}

	render := func(parallel int) []byte {
		t.Helper()
		var out, chatter bytes.Buffer
		opts := base
		opts.parallel = parallel
		if err := writeReports(context.Background(), &out, &chatter, opts); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return out.Bytes()
	}

	want := render(1)
	if len(want) == 0 {
		t.Fatal("sequential run produced no output")
	}
	for _, par := range []int{2, 8} {
		if got := render(par); !bytes.Equal(got, want) {
			t.Errorf("stdout differs between -parallel 1 and -parallel %d:\n--- parallel ---\n%s\n--- sequential ---\n%s", par, got, want)
		}
	}
}

// TestSingleSeedReportMatchesDirectRun guards the seeds=1 path (no
// aggregation layer): the report must still render and be stable.
func TestSingleSeedReportMatchesDirectRun(t *testing.T) {
	opts := options{ids: []string{"tab2"}, seed: 3, seeds: 1, parallel: 4}
	var a, b, chatter bytes.Buffer
	if err := writeReports(context.Background(), &a, &chatter, opts); err != nil {
		t.Fatal(err)
	}
	opts.parallel = 1
	if err := writeReports(context.Background(), &b, &chatter, opts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("seeds=1 output differs across parallelism")
	}
}

// TestReportsByteIdenticalWithObsOnOff is the observability-neutrality
// contract: turning instrumentation on (-obs) must not change a single
// byte of the report stream. Metrics are a pure function of the
// simulation, never an input to it.
func TestReportsByteIdenticalWithObsOnOff(t *testing.T) {
	// abl-dampening and abl-precheck build real internetworks, so the
	// instrumented runs actually exercise the bgp/dataplane/probe counters
	// rather than trivially comparing two uninstrumented paths.
	base := options{
		ids:      []string{"abl-dampening", "abl-precheck"},
		seed:     1,
		seeds:    1,
		parallel: 4,
	}

	render := func(obsPath string) []byte {
		t.Helper()
		var out, chatter bytes.Buffer
		opts := base
		opts.obsPath = obsPath
		if err := writeReports(context.Background(), &out, &chatter, opts); err != nil {
			t.Fatalf("obs=%q: %v", obsPath, err)
		}
		return out.Bytes()
	}

	plain := render("")
	if len(plain) == 0 {
		t.Fatal("uninstrumented run produced no output")
	}
	snap := filepath.Join(t.TempDir(), "metrics.json")
	if got := render(snap); !bytes.Equal(got, plain) {
		t.Errorf("stdout differs with -obs enabled:\n--- instrumented ---\n%s\n--- plain ---\n%s", got, plain)
	}
	buf, err := os.ReadFile(snap)
	if err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	if !bytes.Contains(buf, []byte("lifeguard_bgp_updates_sent_total")) {
		t.Errorf("snapshot is missing bgp counters:\n%s", buf)
	}
}

// TestObsSnapshotByteIdenticalAcrossParallelism pins the merge discipline:
// per-trial registries fold into the destination in trial-index order, so
// the snapshot file must not depend on -parallel either.
func TestObsSnapshotByteIdenticalAcrossParallelism(t *testing.T) {
	dir := t.TempDir()
	snapshot := func(parallel int) []byte {
		t.Helper()
		var out, chatter bytes.Buffer
		path := filepath.Join(dir, "metrics.json")
		opts := options{
			ids:      []string{"abl-dampening"},
			seed:     1,
			seeds:    2,
			parallel: parallel,
			obsPath:  path,
		}
		if err := writeReports(context.Background(), &out, &chatter, opts); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return buf
	}

	want := snapshot(1)
	if !bytes.Contains(want, []byte("lifeguard_bgp_dampening_suppressions_total")) {
		t.Fatalf("sequential snapshot is missing the dampening counters:\n%s", want)
	}
	for _, par := range []int{2, 8} {
		if got := snapshot(par); !bytes.Equal(got, want) {
			t.Errorf("metrics snapshot differs between -parallel 1 and -parallel %d", par)
		}
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	var out, chatter bytes.Buffer
	err := writeReports(context.Background(), &out, &chatter, options{ids: []string{"nope"}})
	var unknown *unknownExperimentError
	if !errors.As(err, &unknown) {
		t.Fatalf("err = %v, want *unknownExperimentError", err)
	}
}

// TestGenerousTimeoutStillPasses makes sure the -timeout plumbing reaches
// the runner without tripping on healthy trials.
func TestGenerousTimeoutStillPasses(t *testing.T) {
	var out, chatter bytes.Buffer
	opts := options{ids: []string{"fig1"}, seed: 1, seeds: 1, parallel: 2, timeout: 5 * time.Minute}
	if err := writeReports(context.Background(), &out, &chatter, opts); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("no report produced")
	}
}
