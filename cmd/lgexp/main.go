// Command lgexp regenerates the paper's tables and figures from the
// simulated internetwork. Run with no arguments to execute every
// experiment, or name specific ones:
//
//	lgexp                    # everything, paper order
//	lgexp -exp fig6          # one experiment
//	lgexp -list              # what exists
//	lgexp -seed 7 -exp accuracy
//	lgexp -seeds 5 -parallel 8   # 5-seed variance report on 8 workers
//
// Reports go to stdout; timing and progress chatter go to stderr, so
// stdout is byte-identical for a fixed seed at every -parallel level
// (diff it to audit the determinism contract).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"lifeguard/internal/experiments"
	"lifeguard/internal/obs"
	"lifeguard/internal/runner"
)

// options collects everything main parses from flags, so tests can drive
// writeReports directly.
type options struct {
	ids       []string // empty: all paper artifacts (or ablations)
	ablations bool
	seed      int64
	seeds     int
	parallel  int           // runner workers; <=0 means GOMAXPROCS
	timeout   time.Duration // per-trial wall-clock watchdog; 0 disables
	obsPath   string        // write merged metrics snapshot JSON here; "" disables obs
}

func main() {
	var (
		list      = flag.Bool("list", false, "list experiments and exit")
		exp       = flag.String("exp", "", "comma-separated experiment IDs (default: all paper artifacts)")
		ablations = flag.Bool("ablations", false, "run the design-choice ablations instead")
		seed      = flag.Int64("seed", 1, "workload/topology seed")
		seeds     = flag.Int("seeds", 1, "average headline values over this many consecutive seeds")
		parallel  = flag.Int("parallel", 0, "trial workers (0 = GOMAXPROCS, 1 = sequential)")
		timeout   = flag.Duration("timeout", 0, "per-trial wall-clock timeout (0 = none)")
		obsPath   = flag.String("obs", "", "write the merged metrics snapshot (JSON) to this file; empty disables instrumentation")
		shard     = flag.Int("shard", 0, "BGP engine shard workers (0 = classic loop; any N >= 1 is byte-identical to every other N >= 1)")
	)
	flag.Parse()
	experiments.SetEngineShardWorkers(*shard)

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Brief)
		}
		for _, e := range experiments.Ablations() {
			fmt.Printf("%-16s %s\n", e.ID, e.Brief)
		}
		return
	}

	opts := options{
		ablations: *ablations,
		seed:      *seed,
		seeds:     *seeds,
		parallel:  *parallel,
		timeout:   *timeout,
		obsPath:   *obsPath,
	}
	if *exp != "" {
		for _, id := range strings.Split(*exp, ",") {
			opts.ids = append(opts.ids, strings.TrimSpace(id))
		}
	}

	err := writeReports(context.Background(), os.Stdout, os.Stderr, opts)
	if err == nil {
		return
	}
	var unknown *unknownExperimentError
	if errors.As(err, &unknown) {
		fmt.Fprintf(os.Stderr, "lgexp: %v (try -list)\n", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "lgexp: %v\n", err)
	var te *runner.TrialError
	if errors.As(err, &te) && len(te.Stack) > 0 {
		fmt.Fprintf(os.Stderr, "trial %d stack:\n%s", te.Trial, te.Stack)
	}
	os.Exit(1)
}

type unknownExperimentError struct{ id string }

func (e *unknownExperimentError) Error() string {
	return fmt.Sprintf("unknown experiment %q", e.id)
}

// selectExperiments resolves the requested experiment set in paper order.
func selectExperiments(opts options) ([]experiments.Experiment, error) {
	switch {
	case opts.ablations && len(opts.ids) == 0:
		return experiments.Ablations(), nil
	case len(opts.ids) == 0:
		return experiments.All(), nil
	}
	var todo []experiments.Experiment
	for _, id := range opts.ids {
		e, ok := experiments.ByID(id)
		if !ok {
			return nil, &unknownExperimentError{id: id}
		}
		todo = append(todo, e)
	}
	return todo, nil
}

// writeReports runs the selected experiments across seeds on the runner
// pool and renders each report to out. Chatter (timings, worker count)
// goes to errw only: for a fixed configuration the bytes written to out
// are identical at every parallelism level.
func writeReports(ctx context.Context, out, errw io.Writer, opts options) error {
	todo, err := selectExperiments(opts)
	if err != nil {
		return err
	}
	if opts.seeds < 1 {
		opts.seeds = 1
	}
	cfg := runner.Config{Parallelism: opts.parallel, Timeout: opts.timeout}

	// Experiments run entirely on the virtual clock; this stopwatch only
	// tells the operator how long the real machine took.
	//lint:ignore lglint/simclockcheck wall-clock progress report for the operator; no result depends on it
	start := time.Now()
	fmt.Fprintf(errw, "lgexp: %d experiments x %d seeds = %d trials on %d workers\n",
		len(todo), opts.seeds, experiments.SuiteTrialCount(todo, opts.seed, opts.seeds), cfg.Workers())

	// Metrics go to a side file, never stdout: the report stream stays
	// byte-identical whether or not instrumentation is on (-obs set), and
	// across every -parallel level.
	var reg *obs.Registry
	if opts.obsPath != "" {
		reg = obs.New()
	}

	results, err := experiments.RunSuite(ctx, todo, opts.seed, opts.seeds, cfg, reg)
	if err != nil {
		return err
	}

	for ei := range todo {
		if opts.seeds == 1 {
			fmt.Fprint(out, results[ei][0].String())
			fmt.Fprintln(out)
			continue
		}
		agg := experiments.NewAggregate()
		for _, r := range results[ei] {
			agg.Add(r)
		}
		fmt.Fprint(out, agg.String())
	}

	if opts.obsPath != "" {
		if err := writeSnapshot(opts.obsPath, reg); err != nil {
			return err
		}
		fmt.Fprintf(errw, "lgexp: wrote metrics snapshot to %s\n", opts.obsPath)
	}

	//lint:ignore lglint/simclockcheck wall-clock progress report for the operator; no result depends on it
	fmt.Fprintf(errw, "lgexp: suite completed in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// writeSnapshot dumps the merged registry as JSON. Per-trial registries are
// merged in trial-index order, so for a fixed configuration the file is
// byte-identical at every -parallel level.
func writeSnapshot(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics snapshot: %w", err)
	}
	if err := reg.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("metrics snapshot: %w", err)
	}
	return f.Close()
}
