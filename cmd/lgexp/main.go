// Command lgexp regenerates the paper's tables and figures from the
// simulated internetwork. Run with no arguments to execute every
// experiment, or name specific ones:
//
//	lgexp                 # everything, paper order
//	lgexp -exp fig6       # one experiment
//	lgexp -list           # what exists
//	lgexp -seed 7 -exp accuracy
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"lifeguard/internal/experiments"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list experiments and exit")
		exp       = flag.String("exp", "", "comma-separated experiment IDs (default: all paper artifacts)")
		ablations = flag.Bool("ablations", false, "run the design-choice ablations instead")
		seed      = flag.Int64("seed", 1, "workload/topology seed")
		seeds     = flag.Int("seeds", 1, "average headline values over this many consecutive seeds")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Brief)
		}
		for _, e := range experiments.Ablations() {
			fmt.Printf("%-16s %s\n", e.ID, e.Brief)
		}
		return
	}

	var todo []experiments.Experiment
	switch {
	case *ablations && *exp == "":
		todo = experiments.Ablations()
	case *exp == "":
		todo = experiments.All()
	default:
		for _, id := range strings.Split(*exp, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "lgexp: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	for _, e := range todo {
		// Experiments run entirely on the virtual clock; this stopwatch
		// only tells the operator how long the real machine took.
		//lint:ignore lglint/simclockcheck wall-clock progress report for the operator; no result depends on it
		start := time.Now()
		if *seeds <= 1 {
			fmt.Print(e.Run(*seed).String())
		} else {
			printAveraged(e, *seed, *seeds)
		}
		//lint:ignore lglint/simclockcheck wall-clock progress report for the operator; no result depends on it
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

// printAveraged runs an experiment across several seeds and reports the
// mean, min, and max of every headline value — a quick variance check for
// the topology-dependent results.
func printAveraged(e experiments.Experiment, base int64, n int) {
	sums := map[string]float64{}
	mins := map[string]float64{}
	maxs := map[string]float64{}
	var last *experiments.Result
	for i := 0; i < n; i++ {
		last = e.Run(base + int64(i))
		for k, v := range last.Values {
			sums[k] += v
			if i == 0 || v < mins[k] {
				mins[k] = v
			}
			if i == 0 || v > maxs[k] {
				maxs[k] = v
			}
		}
	}
	fmt.Printf("### %s — %s (averaged over %d seeds)\n\n", last.ID, last.Title, n)
	keys := make([]string, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-40s mean %-10.4f min %-10.4f max %-10.4f\n",
			k, sums[k]/float64(n), mins[k], maxs[k])
	}
}
