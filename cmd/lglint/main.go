// Command lglint is the repository's vet tool: five custom analyzers that
// enforce LIFEGUARD's determinism and concurrency invariants at compile
// time, complementing the runtime checks in determinism_test.go and
// internal/bgp/invariants_test.go.
//
// It speaks the standard `go vet -vettool` protocol, so it runs under the
// build cache with full type information:
//
//	go build -o bin/lglint ./cmd/lglint
//	go vet -vettool=bin/lglint ./...     # all five analyzers
//	go vet -vettool=bin/lglint -maporder ./...   # just one
//
// or simply `make lint`, which also runs the standard vet passes.
//
// Analyzers:
//
//	simclockcheck  no wall-clock time outside the allowlist (use simclock)
//	seededrand     no global math/rand or crypto/rand (inject *rand.Rand)
//	maporder       no order-sensitive output from map iteration
//	lockcopyplus   no lock-bearing structs moved by value in signatures
//	valleyfree     export policy must guard both sides of the valley-free rule
//
// A finding can be suppressed, with a mandatory written reason, by
//
//	//lint:ignore lglint/<analyzer> <reason>
//
// on or directly above the offending line; reasonless or misspelled
// directives are themselves diagnostics.
package main

import (
	"lifeguard/internal/analysis"
	"lifeguard/internal/analysis/lockcopyplus"
	"lifeguard/internal/analysis/maporder"
	"lifeguard/internal/analysis/seededrand"
	"lifeguard/internal/analysis/simclockcheck"
	"lifeguard/internal/analysis/valleyfree"
)

func main() {
	analysis.Main(
		simclockcheck.Analyzer,
		seededrand.Analyzer,
		maporder.Analyzer,
		lockcopyplus.Analyzer,
		valleyfree.Analyzer,
	)
}
