// Command lglint is the repository's vet tool: nine custom analyzers that
// enforce LIFEGUARD's determinism and concurrency invariants at compile
// time, complementing the runtime checks in determinism_test.go and
// internal/bgp/invariants_test.go.
//
// It speaks the standard `go vet -vettool` protocol, so it runs under the
// build cache with full type information:
//
//	go build -o bin/lglint ./cmd/lglint
//	go vet -vettool=bin/lglint ./...     # all nine analyzers
//	go vet -vettool=bin/lglint -maporder ./...   # just one
//
// or simply `make lint`, which also runs the standard vet passes.
//
// It also runs standalone, with output modes and fixes the vet protocol
// has no room for:
//
//	bin/lglint ./...                 # plain findings, exit 1 if any
//	bin/lglint -json ./...           # machine-readable findings
//	bin/lglint -sarif ./... > l.sarif   # for github/codeql-action/upload-sarif
//	bin/lglint -github ./...         # ::error workflow annotations
//	bin/lglint -fix ./...            # apply suggested fixes
//	bin/lglint -fix -dry-run ./...   # preview fixes as unified diffs
//
// Standalone exit codes: 0 no findings, 1 findings reported, 2 usage or
// load error.
//
// Per-package analyzers:
//
//	simclockcheck  no wall-clock time outside the allowlist (use simclock)
//	seededrand     no global math/rand or crypto/rand (inject *rand.Rand)
//	maporder       no order-sensitive output from map iteration
//	lockcopyplus   no lock-bearing structs moved by value in signatures
//	valleyfree     export policy must guard both sides of the valley-free rule
//
// Cross-package analyzers (facts flow along the import DAG):
//
//	errcontract    errors from *Err contract functions must be checked
//	failureid      FailureIDs must not be reused after Heal*/Remove*
//	obsregistry    obs handles must be created before runner.Map/Reduce fan-out
//	journaltaint   no wall-clock/RNG-derived values in the journal or reports
//
// A finding can be suppressed, with a mandatory written reason, by
//
//	//lint:ignore lglint/<analyzer> <reason>
//
// on or directly above the offending line; reasonless or misspelled
// directives are themselves diagnostics.
package main

import (
	"lifeguard/internal/analysis"
	"lifeguard/internal/analysis/errcontract"
	"lifeguard/internal/analysis/failureid"
	"lifeguard/internal/analysis/journaltaint"
	"lifeguard/internal/analysis/lockcopyplus"
	"lifeguard/internal/analysis/maporder"
	"lifeguard/internal/analysis/obsregistry"
	"lifeguard/internal/analysis/seededrand"
	"lifeguard/internal/analysis/simclockcheck"
	"lifeguard/internal/analysis/valleyfree"
)

func main() {
	analysis.Main(
		simclockcheck.Analyzer,
		seededrand.Analyzer,
		maporder.Analyzer,
		lockcopyplus.Analyzer,
		valleyfree.Analyzer,
		errcontract.Analyzer,
		failureid.Analyzer,
		obsregistry.Analyzer,
		journaltaint.Analyzer,
	)
}
