package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildDaemon compiles lifeguardd once per test binary into a temp dir.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "lifeguardd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestSignalShutdownContract pins the daemon's documented exit contract:
// SIGINT and SIGTERM produce a clean shutdown — exit code 0, with the
// final metrics snapshot (valid JSON) as the last thing on stdout.
func TestSignalShutdownContract(t *testing.T) {
	bin := buildDaemon(t)
	for _, tc := range []struct {
		name string
		sig  os.Signal
	}{
		{"SIGINT", os.Interrupt},
		{"SIGTERM", syscall.SIGTERM},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Hours is set far beyond what could simulate during the
			// test, so only the signal can end the run.
			cmd := exec.Command(bin, "-tenants", "2", "-hours", "1000000", "-failures", "2")
			stdout, err := cmd.StdoutPipe()
			if err != nil {
				t.Fatal(err)
			}
			var stderr bytes.Buffer
			cmd.Stderr = &stderr
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			defer cmd.Process.Kill()

			// Wait until the daemon reports its tenants — it is then in
			// the main loop and the signal handler is armed.
			var buf bytes.Buffer
			r := bufio.NewReader(io.TeeReader(stdout, &buf))
			for {
				line, err := r.ReadString('\n')
				if err != nil {
					t.Fatalf("daemon ended before startup banner (stderr: %s)", stderr.String())
				}
				if strings.HasPrefix(line, "tenant AS") && strings.Count(buf.String(), "tenant AS") == 2 {
					break
				}
			}
			if err := cmd.Process.Signal(tc.sig); err != nil {
				t.Fatal(err)
			}

			done := make(chan error, 1)
			go func() {
				_, cpErr := io.Copy(io.Discard, r) // buf keeps filling via the tee
				done <- cpErr
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("reading daemon stdout: %v", err)
				}
			//lint:ignore lglint/simclockcheck watchdog on a real child process; the simulation under test has its own clock
			case <-time.After(30 * time.Second):
				t.Fatal("daemon did not shut down within 30s of the signal")
			}
			if err := cmd.Wait(); err != nil {
				t.Fatalf("want exit code 0 after %s, got %v (stderr: %s)", tc.name, err, stderr.String())
			}

			out := buf.String()
			if !strings.Contains(out, "summary: ") {
				t.Fatalf("no summary line before the snapshot:\n%s", out)
			}
			// The snapshot must be the LAST stdout output: everything
			// after the final marker parses as one JSON document.
			marker := "final metrics snapshot:\n"
			i := strings.LastIndex(out, marker)
			if i < 0 {
				t.Fatalf("no final metrics snapshot on stdout:\n%s", out)
			}
			var snap map[string]any
			if err := json.Unmarshal([]byte(out[i+len(marker):]), &snap); err != nil {
				t.Fatalf("trailing stdout after the marker is not a single JSON document: %v", err)
			}
			if _, ok := snap["metrics"]; !ok {
				t.Fatalf("snapshot JSON has no metrics key: %v", snap)
			}
		})
	}
}

// TestHitlessReloadSignal verifies SIGHUP adds a tenant to the live rig
// and SIGUSR1 gracefully restarts tenant 1, neither disturbing the run.
func TestHitlessReloadSignal(t *testing.T) {
	bin := buildDaemon(t)
	cmd := exec.Command(bin, "-tenants", "1", "-hours", "1000000", "-failures", "1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var buf bytes.Buffer
	r := bufio.NewReader(io.TeeReader(stdout, &buf))
	waitFor := func(substr string, n int) {
		t.Helper()
		//lint:ignore lglint/simclockcheck deadline for output from a real child process, not simulated time
		deadline := time.Now().Add(30 * time.Second)
		for strings.Count(buf.String(), substr) < n {
			//lint:ignore lglint/simclockcheck see deadline above — wall-clock supervision of a subprocess
			if time.Now().After(deadline) {
				t.Fatalf("daemon never printed %q ×%d\nstdout: %s\nstderr: %s", substr, n, buf.String(), stderr.String())
			}
			if _, err := r.ReadString('\n'); err != nil {
				t.Fatalf("daemon ended waiting for %q (stderr: %s)", substr, stderr.String())
			}
		}
	}
	waitFor("announces production", 1)
	cmd.Process.Signal(syscall.SIGHUP)
	waitFor("announces production", 2) // second tenant banner from the reload
	cmd.Process.Signal(syscall.SIGUSR1)
	waitFor("RESTORE", 1)
	if !strings.Contains(buf.String(), "CRASH") {
		t.Fatalf("no control-crash event after SIGUSR1:\n%s", buf.String())
	}
	cmd.Process.Signal(syscall.SIGTERM)
	go io.Copy(io.Discard, r)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("want exit 0, got %v (stderr: %s)", err, stderr.String())
	}
	if c := strings.Count(stderr.String(), "added tenant"); c != 1 {
		t.Fatalf("want 1 hitless reload, saw %d (stderr: %s)", c, stderr.String())
	}
}
