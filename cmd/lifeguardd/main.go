// Command lifeguardd runs a complete LIFEGUARD deployment over a simulated
// internetwork: a synthetic Internet is generated, the daemon announces its
// production and sentinel prefixes, monitors a set of targets, and — as
// scripted silent failures strike transit networks — detects, isolates, and
// repairs them with BGP poisoning, unpoisoning when the sentinel sees each
// failure heal. The event log it prints is the §6 case study generalized.
//
//	lifeguardd -seed 1 -hours 6 -failures 4
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lifeguard"
	"lifeguard/internal/splice"
	"lifeguard/internal/topo"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "topology and timing seed")
		hours    = flag.Float64("hours", 6, "virtual hours to simulate")
		failures = flag.Int("failures", 4, "number of silent failures to script")
		transits = flag.Int("transits", 15, "transit ASes in the synthetic Internet")
		stubs    = flag.Int("stubs", 40, "stub ASes in the synthetic Internet")
	)
	flag.Parse()
	if err := run(*seed, *hours, *failures, *transits, *stubs); err != nil {
		fmt.Fprintln(os.Stderr, "lifeguardd:", err)
		os.Exit(1)
	}
}

func run(seed int64, hours float64, failures, transits, stubs int) error {
	n, err := lifeguard.GenerateInternet(lifeguard.InternetConfig{
		Seed: seed, NumTransit: transits, NumStub: stubs,
	})
	if err != nil {
		return err
	}
	origin := n.Gen.Stubs[0]
	fmt.Printf("internet: %d ASes (%d tier-1, %d transit, %d stub), %d routers\n",
		n.Top.NumASes(), len(n.Gen.Tier1s), len(n.Gen.Transit), len(n.Gen.Stubs),
		n.Top.NumRouters())
	fmt.Printf("origin AS%d announces production %v and sentinel %v\n\n",
		origin, lifeguard.ProductionPrefix(origin), lifeguard.SentinelPrefix(origin))

	// Monitor a handful of distant stubs, helped by two extra VPs.
	var targets []lifeguard.Addr
	targetASes := []lifeguard.ASN{}
	for _, s := range n.Gen.Stubs[1:] {
		if len(targets) >= 4 {
			break
		}
		targets = append(targets, n.RouterAddr(n.Hub(s)))
		targetASes = append(targetASes, s)
	}
	vps := []lifeguard.RouterID{
		n.Hub(origin),
		n.Hub(n.Gen.Stubs[len(n.Gen.Stubs)-1]),
		n.Hub(n.Gen.Stubs[len(n.Gen.Stubs)-2]),
	}

	sys := lifeguard.NewSystem(n, lifeguard.Config{Origin: origin, VPs: vps, Targets: targets})
	sys.Start()
	n.Clk.RunFor(5 * time.Minute) // warm baseline + atlas

	// Script the failures: pick avoidable transit hops on the reverse
	// paths from the targets, break each for a while, heal, repeat.
	type scripted struct {
		at, heal time.Duration
		as       lifeguard.ASN
		id       lifeguard.FailureID
	}
	var script []scripted
	gap := time.Duration(hours*float64(time.Hour)) / time.Duration(failures+1)
	for i := 0; i < failures; i++ {
		tgt := targetASes[i%len(targetASes)]
		path := n.Eng.ASPathTo(topo.ASN(tgt), lifeguard.ProductionAddr(origin))
		var victim lifeguard.ASN
		for _, hop := range path {
			if hop == topo.ASN(origin) || hop == topo.ASN(tgt) {
				continue
			}
			if splice.CanReach(n.Top, topo.ASN(tgt), topo.ASN(origin), splice.Avoid1(hop)) {
				victim = lifeguard.ASN(hop)
				break
			}
		}
		if victim == 0 {
			continue
		}
		at := gap * time.Duration(i+1)
		script = append(script, scripted{at: at, heal: at + 35*time.Minute, as: victim})
	}

	for i := range script {
		sc := &script[i]
		n.Clk.At(sc.at, func() {
			sc.id = n.InjectFailure(lifeguard.BlackholeASTowards(sc.as, lifeguard.Block(origin)))
			fmt.Printf("[%8s] FAULT    AS%d silently drops traffic toward AS%d's prefixes\n",
				fmtD(n.Clk.Now()), sc.as, origin)
		})
		n.Clk.At(sc.heal, func() {
			n.HealFailure(sc.id)
			fmt.Printf("[%8s] FIXED    AS%d's fault repaired by its operators\n",
				fmtD(n.Clk.Now()), sc.as)
		})
	}

	end := time.Duration(hours * float64(time.Hour))
	logged := 0
	for n.Clk.Now() < end {
		n.Clk.RunFor(time.Minute)
		for _, e := range sys.History[logged:] {
			printEvent(n, e)
		}
		logged = len(sys.History)
	}
	sys.Stop()

	fmt.Printf("\nsummary: %d outages, %d repairs, %d unpoisons, %d recoveries over %.1f virtual hours\n",
		len(sys.EventsOfKind(lifeguard.EventOutage)),
		len(sys.EventsOfKind(lifeguard.EventRepair)),
		len(sys.EventsOfKind(lifeguard.EventUnpoison)),
		len(sys.EventsOfKind(lifeguard.EventRecovered)),
		hours)
	return nil
}

func printEvent(n *lifeguard.Network, e lifeguard.Event) {
	switch e.Kind {
	case lifeguard.EventOutage:
		fmt.Printf("[%8s] OUTAGE   vp r%d cannot reach %v\n", fmtD(e.At), e.VP, e.Target)
	case lifeguard.EventIsolated:
		rep := e.Report
		if rep.Healed {
			fmt.Printf("[%8s] ISOLATE  transient — already healed\n", fmtD(e.At))
			return
		}
		fmt.Printf("[%8s] ISOLATE  %v failure blamed on AS%d (traceroute alone would say AS%d; %d probes, ~%s)\n",
			fmtD(e.At), rep.Direction, rep.Blamed, rep.TracerouteBlame,
			rep.ProbesUsed, fmtD(rep.EstimatedDuration))
	case lifeguard.EventRepair:
		fmt.Printf("[%8s] REPAIR   %v (avoiding AS%d)\n", fmtD(e.At), e.Action, e.Avoided)
	case lifeguard.EventRecovered:
		fmt.Printf("[%8s] RECOVER  traffic to %v restored\n", fmtD(e.At), e.Target)
	case lifeguard.EventUnpoison:
		fmt.Printf("[%8s] UNPOISON sentinel saw AS%d heal; baseline announcement restored\n",
			fmtD(e.At), e.Avoided)
	}
}

func fmtD(d time.Duration) string { return d.Round(time.Second).String() }
