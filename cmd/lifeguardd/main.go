// Command lifeguardd runs a complete LIFEGUARD deployment over a simulated
// internetwork: a synthetic Internet is generated, the daemon announces its
// production and sentinel prefixes, monitors a set of targets, and — as
// scripted silent failures strike transit networks — detects, isolates, and
// repairs them with BGP poisoning, unpoisoning when the sentinel sees each
// failure heal. The event log it prints is the §6 case study generalized.
//
// The daemon is fully instrumented: every subsystem reports into a metrics
// registry, and -http serves it live (/metrics in Prometheus text format,
// /healthz, /debug/vars, /debug/pprof). The final registry snapshot is
// printed to stdout as JSON when the run ends — whether it completes or is
// interrupted by SIGINT/SIGTERM, which shuts the daemon down cleanly.
//
//	lifeguardd -seed 1 -hours 6 -failures 4
//	lifeguardd -hours 48 -http :8080 &   # scrape localhost:8080/metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lifeguard"
	"lifeguard/internal/obs"
	"lifeguard/internal/obs/obshttp"
	"lifeguard/internal/splice"
	"lifeguard/internal/topo"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "topology and timing seed")
		hours    = flag.Float64("hours", 6, "virtual hours to simulate")
		failures = flag.Int("failures", 4, "number of silent failures to script")
		transits = flag.Int("transits", 15, "transit ASes in the synthetic Internet")
		stubs    = flag.Int("stubs", 40, "stub ASes in the synthetic Internet")
		httpAddr = flag.String("http", "", "serve /metrics, /healthz, /debug/vars and /debug/pprof on this address (empty disables)")
		journal  = flag.Int("journal", 256, "event-journal capacity for /debug/vars (0 disables)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: lifeguardd [flags]\n\nflags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), `
exit codes:
  0  run completed, or was shut down cleanly by SIGINT/SIGTERM; the final
     metrics snapshot (JSON) is the last thing printed to stdout
  1  runtime error (generation, simulation, or HTTP server failure)
  2  bad usage (unknown flag)
`)
	}
	flag.Parse()
	if err := run(*seed, *hours, *failures, *transits, *stubs, *httpAddr, *journal); err != nil {
		fmt.Fprintln(os.Stderr, "lifeguardd:", err)
		os.Exit(1)
	}
}

func run(seed int64, hours float64, failures, transits, stubs int, httpAddr string, journalCap int) error {
	reg := obs.New()
	var j *obs.Journal
	if journalCap > 0 {
		j = obs.NewJournal(journalCap)
	}
	n, err := lifeguard.GenerateInternet(lifeguard.InternetConfig{
		Seed: seed, NumTransit: transits, NumStub: stubs,
	}, lifeguard.NetworkOptions{Obs: reg, Journal: j})
	if err != nil {
		return err
	}
	origin := n.Gen.Stubs[0]
	fmt.Printf("internet: %d ASes (%d tier-1, %d transit, %d stub), %d routers\n",
		n.Top.NumASes(), len(n.Gen.Tier1s), len(n.Gen.Transit), len(n.Gen.Stubs),
		n.Top.NumRouters())
	fmt.Printf("origin AS%d announces production %v and sentinel %v\n\n",
		origin, lifeguard.ProductionPrefix(origin), lifeguard.SentinelPrefix(origin))

	if httpAddr != "" {
		mux := obshttp.NewMux(reg, j)
		errc := make(chan error, 1)
		go func() { errc <- obshttp.Serve(httpAddr, mux) }()
		// Give a bad address a moment to fail loudly instead of silently
		// serving nothing for the whole run.
		select {
		case err := <-errc:
			return fmt.Errorf("http server: %w", err)
		//lint:ignore lglint/simclockcheck real-time startup grace for the HTTP listener; no simulation result depends on it
		case <-time.After(100 * time.Millisecond):
		}
		fmt.Fprintf(os.Stderr, "lifeguardd: serving metrics on %s\n", httpAddr)
	}

	// SIGINT/SIGTERM end the run early but cleanly: the current simulated
	// minute finishes, the summary and final metrics snapshot print, and
	// the exit code is 0.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	// Monitor a handful of distant stubs, helped by two extra VPs.
	var targets []lifeguard.Addr
	targetASes := []lifeguard.ASN{}
	for _, s := range n.Gen.Stubs[1:] {
		if len(targets) >= 4 {
			break
		}
		targets = append(targets, n.RouterAddr(n.Hub(s)))
		targetASes = append(targetASes, s)
	}
	vps := []lifeguard.RouterID{
		n.Hub(origin),
		n.Hub(n.Gen.Stubs[len(n.Gen.Stubs)-1]),
		n.Hub(n.Gen.Stubs[len(n.Gen.Stubs)-2]),
	}

	sys := lifeguard.NewSystem(n, lifeguard.Config{Origin: origin, VPs: vps, Targets: targets})
	sys.Start()
	n.Clk.RunFor(5 * time.Minute) // warm baseline + atlas

	// Script the failures: pick avoidable transit hops on the reverse
	// paths from the targets, break each for a while, heal, repeat.
	type scripted struct {
		at, heal time.Duration
		as       lifeguard.ASN
		id       lifeguard.FailureID
	}
	var script []scripted
	gap := time.Duration(hours*float64(time.Hour)) / time.Duration(failures+1)
	for i := 0; i < failures; i++ {
		tgt := targetASes[i%len(targetASes)]
		path := n.Eng.ASPathTo(topo.ASN(tgt), lifeguard.ProductionAddr(origin))
		var victim lifeguard.ASN
		for _, hop := range path {
			if hop == topo.ASN(origin) || hop == topo.ASN(tgt) {
				continue
			}
			if splice.CanReach(n.Top, topo.ASN(tgt), topo.ASN(origin), splice.Avoid1(hop)) {
				victim = lifeguard.ASN(hop)
				break
			}
		}
		if victim == 0 {
			continue
		}
		at := gap * time.Duration(i+1)
		script = append(script, scripted{at: at, heal: at + 35*time.Minute, as: victim})
	}

	for i := range script {
		sc := &script[i]
		n.Clk.At(sc.at, func() {
			sc.id = n.InjectFailure(lifeguard.BlackholeASTowards(sc.as, lifeguard.Block(origin)))
			fmt.Printf("[%8s] FAULT    AS%d silently drops traffic toward AS%d's prefixes\n",
				fmtD(n.Clk.Now()), sc.as, origin)
		})
		n.Clk.At(sc.heal, func() {
			n.HealFailure(sc.id)
			fmt.Printf("[%8s] FIXED    AS%d's fault repaired by its operators\n",
				fmtD(n.Clk.Now()), sc.as)
		})
	}

	end := time.Duration(hours * float64(time.Hour))
	logged := 0
	interrupted := false
loop:
	for n.Clk.Now() < end {
		select {
		case sig := <-sigc:
			fmt.Fprintf(os.Stderr, "lifeguardd: %v — shutting down after %s virtual\n", sig, fmtD(n.Clk.Now()))
			interrupted = true
			break loop
		default:
		}
		n.Clk.RunFor(time.Minute)
		for _, e := range sys.History[logged:] {
			printEvent(n, e)
		}
		logged = len(sys.History)
	}
	sys.Stop()

	fmt.Printf("\nsummary: %d outages, %d repairs, %d unpoisons, %d recoveries over %.1f virtual hours",
		len(sys.EventsOfKind(lifeguard.EventOutage)),
		len(sys.EventsOfKind(lifeguard.EventRepair)),
		len(sys.EventsOfKind(lifeguard.EventUnpoison)),
		len(sys.EventsOfKind(lifeguard.EventRecovered)),
		n.Clk.Now().Hours())
	if interrupted {
		fmt.Printf(" (interrupted)")
	}
	fmt.Printf("\n\nfinal metrics snapshot:\n")
	return reg.Snapshot().WriteJSON(os.Stdout)
}

func printEvent(n *lifeguard.Network, e lifeguard.Event) {
	switch e.Kind {
	case lifeguard.EventOutage:
		fmt.Printf("[%8s] OUTAGE   vp r%d cannot reach %v\n", fmtD(e.At), e.VP, e.Target)
	case lifeguard.EventIsolated:
		rep := e.Report
		if rep.Healed {
			fmt.Printf("[%8s] ISOLATE  transient — already healed\n", fmtD(e.At))
			return
		}
		fmt.Printf("[%8s] ISOLATE  %v failure blamed on AS%d (traceroute alone would say AS%d; %d probes, ~%s)\n",
			fmtD(e.At), rep.Direction, rep.Blamed, rep.TracerouteBlame,
			rep.ProbesUsed, fmtD(rep.EstimatedDuration))
	case lifeguard.EventRepair:
		fmt.Printf("[%8s] REPAIR   %v (avoiding AS%d)\n", fmtD(e.At), e.Action, e.Avoided)
	case lifeguard.EventRecovered:
		fmt.Printf("[%8s] RECOVER  traffic to %v restored\n", fmtD(e.At), e.Target)
	case lifeguard.EventUnpoison:
		fmt.Printf("[%8s] UNPOISON sentinel saw AS%d heal; baseline announcement restored\n",
			fmtD(e.At), e.Avoided)
	}
}

func fmtD(d time.Duration) string { return d.Round(time.Second).String() }
