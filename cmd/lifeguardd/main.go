// Command lifeguardd runs a multi-tenant LIFEGUARD service over a simulated
// internetwork: a synthetic Internet is generated, and one session per
// tenant origin AS announces its production and sentinel prefixes, monitors
// a set of targets, and — as scripted silent failures strike transit
// networks — detects, isolates, and repairs them with BGP poisoning,
// unpoisoning when the sentinel sees each failure heal. All tenants share
// one rig (one internetwork, one virtual clock), so their timelines
// interleave deterministically. The event log it prints is the §6 case
// study generalized.
//
// The daemon is built for long-running operation:
//
//   - SIGINT/SIGTERM shut it down cleanly (exit 0, final metrics snapshot
//     as the last stdout output).
//   - SIGHUP is a hitless config reload: a new tenant is added to the live
//     rig without perturbing the existing sessions' monitors, outage
//     state, or active repairs.
//   - SIGUSR1 gracefully restarts tenant 1's control plane: with BGP
//     graceful-restart semantics the tenant's announced routes are
//     retained and re-announced on restore, so its traffic forwards
//     through the restart.
//
// The daemon is fully instrumented: every subsystem reports into a metrics
// registry (per-tenant series carry a tenant label), and -http serves it
// live (/metrics in Prometheus text format, /healthz, /debug/vars,
// /debug/pprof).
//
//	lifeguardd -seed 1 -hours 6 -failures 4
//	lifeguardd -tenants 3 -hours 48 -http :8080 &   # scrape localhost:8080/metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lifeguard"
	"lifeguard/internal/obs"
	"lifeguard/internal/obs/obshttp"
	"lifeguard/internal/splice"
	"lifeguard/internal/topo"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "topology and timing seed")
		hours    = flag.Float64("hours", 6, "virtual hours to simulate")
		failures = flag.Int("failures", 4, "number of silent failures to script (spread across tenants)")
		tenants  = flag.Int("tenants", 1, "tenant sessions to run over the shared rig")
		transits = flag.Int("transits", 15, "transit ASes in the synthetic Internet")
		stubs    = flag.Int("stubs", 40, "stub ASes in the synthetic Internet")
		httpAddr = flag.String("http", "", "serve /metrics, /healthz, /debug/vars and /debug/pprof on this address (empty disables)")
		journal  = flag.Int("journal", 256, "event-journal capacity for /debug/vars (0 disables)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: lifeguardd [flags]\n\nflags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), `
signals:
  SIGINT/SIGTERM  clean shutdown
  SIGHUP          hitless reload: add one tenant to the live rig
  SIGUSR1         graceful control-plane restart of tenant 1

exit codes:
  0  run completed, or was shut down cleanly by SIGINT/SIGTERM; the final
     metrics snapshot (JSON) is the last thing printed to stdout
  1  runtime error (generation, simulation, or HTTP server failure)
  2  bad usage (unknown flag)
`)
	}
	flag.Parse()
	if err := run(*seed, *hours, *failures, *tenants, *transits, *stubs, *httpAddr, *journal); err != nil {
		fmt.Fprintln(os.Stderr, "lifeguardd:", err)
		os.Exit(1)
	}
}

// tenantView is one live session plus the daemon's bookkeeping for it.
type tenantView struct {
	s      *lifeguard.Session
	origin lifeguard.ASN
	logged int
}

func run(seed int64, hours float64, failures, tenants, transits, stubs int, httpAddr string, journalCap int) error {
	reg := obs.New()
	var j *obs.Journal
	if journalCap > 0 {
		j = obs.NewJournal(journalCap)
	}
	n, err := lifeguard.GenerateInternet(lifeguard.InternetConfig{
		Seed: seed, NumTransit: transits, NumStub: stubs,
	}, lifeguard.NetworkOptions{Obs: reg, Journal: j})
	if err != nil {
		return err
	}
	if tenants < 1 {
		tenants = 1
	}
	if max := len(n.Gen.Stubs) - 6; tenants > max {
		return fmt.Errorf("%d tenants need more stubs (have %d, can host %d)", tenants, len(n.Gen.Stubs), max)
	}
	fmt.Printf("internet: %d ASes (%d tier-1, %d transit, %d stub), %d routers\n",
		n.Top.NumASes(), len(n.Gen.Tier1s), len(n.Gen.Transit), len(n.Gen.Stubs),
		n.Top.NumRouters())

	if httpAddr != "" {
		mux := obshttp.NewMux(reg, j)
		errc := make(chan error, 1)
		go func() { errc <- obshttp.Serve(httpAddr, mux) }()
		// Give a bad address a moment to fail loudly instead of silently
		// serving nothing for the whole run.
		select {
		case err := <-errc:
			return fmt.Errorf("http server: %w", err)
		//lint:ignore lglint/simclockcheck real-time startup grace for the HTTP listener; no simulation result depends on it
		case <-time.After(100 * time.Millisecond):
		}
		fmt.Fprintf(os.Stderr, "lifeguardd: serving metrics on %s\n", httpAddr)
	}

	// SIGINT/SIGTERM end the run early but cleanly: the current simulated
	// minute finishes, the summary and final metrics snapshot print, and
	// the exit code is 0. SIGHUP and SIGUSR1 drive live reconfiguration.
	sigc := make(chan os.Signal, 4)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP, syscall.SIGUSR1)
	defer signal.Stop(sigc)

	// Tenants take the first stubs as origins; the monitored targets and
	// the extra vantage points come from the far end of the stub list so
	// the roles never collide, even after SIGHUP adds tenants.
	rig := lifeguard.NewRig(n)
	var targets []lifeguard.Addr
	targetASes := []lifeguard.ASN{}
	for i := len(n.Gen.Stubs) - 3; len(targetASes) < 4 && i >= tenants; i-- {
		targets = append(targets, n.RouterAddr(n.Hub(n.Gen.Stubs[i])))
		targetASes = append(targetASes, n.Gen.Stubs[i])
	}
	helperVPs := []lifeguard.RouterID{
		n.Hub(n.Gen.Stubs[len(n.Gen.Stubs)-1]),
		n.Hub(n.Gen.Stubs[len(n.Gen.Stubs)-2]),
	}
	nextOrigin := 0
	addTenant := func() (*tenantView, error) {
		if nextOrigin >= len(n.Gen.Stubs)-6 {
			return nil, fmt.Errorf("no spare stub AS for another tenant")
		}
		origin := n.Gen.Stubs[nextOrigin]
		nextOrigin++
		s, err := rig.AddSession(lifeguard.SessionConfig{Config: lifeguard.Config{
			Origin:  origin,
			VPs:     append([]lifeguard.RouterID{n.Hub(origin)}, helperVPs...),
			Targets: targets,
		}})
		if err != nil {
			return nil, err
		}
		s.Start()
		fmt.Printf("tenant %s: origin AS%d announces production %v and sentinel %v\n",
			s.Tenant(), origin, lifeguard.ProductionPrefix(origin), lifeguard.SentinelPrefix(origin))
		return &tenantView{s: s, origin: origin}, nil
	}
	var views []*tenantView
	for i := 0; i < tenants; i++ {
		tv, err := addTenant()
		if err != nil {
			return err
		}
		views = append(views, tv)
	}
	fmt.Println()
	n.Clk.RunFor(5 * time.Minute) // warm baseline + atlas

	// Script the failures: pick avoidable transit hops on the reverse
	// paths from the targets to each tenant in turn, break each for a
	// while, heal, repeat.
	type scripted struct {
		at, heal time.Duration
		as       lifeguard.ASN
		origin   lifeguard.ASN
		id       lifeguard.FailureID
	}
	var script []scripted
	gap := time.Duration(hours*float64(time.Hour)) / time.Duration(failures+1)
	for i := 0; i < failures; i++ {
		origin := views[i%len(views)].origin
		tgt := targetASes[i%len(targetASes)]
		path := n.Eng.ASPathTo(topo.ASN(tgt), lifeguard.ProductionAddr(origin))
		var victim lifeguard.ASN
		for _, hop := range path {
			if hop == topo.ASN(origin) || hop == topo.ASN(tgt) {
				continue
			}
			if splice.CanReach(n.Top, topo.ASN(tgt), topo.ASN(origin), splice.Avoid1(hop)) {
				victim = lifeguard.ASN(hop)
				break
			}
		}
		if victim == 0 {
			continue
		}
		at := gap * time.Duration(i+1)
		script = append(script, scripted{at: at, heal: at + 35*time.Minute, as: victim, origin: origin})
	}

	for i := range script {
		sc := &script[i]
		n.Clk.At(sc.at, func() {
			sc.id = n.InjectFailure(lifeguard.BlackholeASTowards(sc.as, lifeguard.Block(sc.origin)))
			fmt.Printf("[%8s] FAULT    AS%d silently drops traffic toward AS%d's prefixes\n",
				fmtD(n.Clk.Now()), sc.as, sc.origin)
		})
		n.Clk.At(sc.heal, func() {
			n.HealFailure(sc.id)
			fmt.Printf("[%8s] FIXED    AS%d's fault repaired by its operators\n",
				fmtD(n.Clk.Now()), sc.as)
		})
	}

	end := time.Duration(hours * float64(time.Hour))
	interrupted := false
loop:
	for n.Clk.Now() < end {
		select {
		case sig := <-sigc:
			switch sig {
			case syscall.SIGHUP:
				// Hitless reload: a tenant joins the live rig; nobody
				// else's monitors, outages, or repairs are disturbed.
				tv, err := addTenant()
				if err != nil {
					fmt.Fprintf(os.Stderr, "lifeguardd: reload: %v\n", err)
					continue
				}
				views = append(views, tv)
				fmt.Fprintf(os.Stderr, "lifeguardd: SIGHUP — added tenant %s live\n", tv.s.Tenant())
				continue
			case syscall.SIGUSR1:
				// Graceful control-plane restart of the first tenant:
				// routes retained, forwarding uninterrupted.
				v := views[0]
				v.s.Restart()
				fmt.Fprintf(os.Stderr, "lifeguardd: SIGUSR1 — restarted tenant %s control plane (graceful)\n", v.s.Tenant())
				continue
			default:
				fmt.Fprintf(os.Stderr, "lifeguardd: %v — shutting down after %s virtual\n", sig, fmtD(n.Clk.Now()))
				interrupted = true
				break loop
			}
		default:
		}
		n.Clk.RunFor(time.Minute)
		for _, v := range views {
			for _, e := range v.s.History[v.logged:] {
				printEvent(v, e)
			}
			v.logged = len(v.s.History)
		}
	}
	rig.Stop()

	var outs, reps, unps, recs int
	for _, v := range views {
		outs += len(v.s.EventsOfKind(lifeguard.EventOutage))
		reps += len(v.s.EventsOfKind(lifeguard.EventRepair))
		unps += len(v.s.EventsOfKind(lifeguard.EventUnpoison))
		recs += len(v.s.EventsOfKind(lifeguard.EventRecovered))
	}
	fmt.Printf("\nsummary: %d tenants, %d outages, %d repairs, %d unpoisons, %d recoveries over %.1f virtual hours",
		len(views), outs, reps, unps, recs, n.Clk.Now().Hours())
	if interrupted {
		fmt.Printf(" (interrupted)")
	}
	fmt.Printf("\n\nfinal metrics snapshot:\n")
	return reg.Snapshot().WriteJSON(os.Stdout)
}

func printEvent(v *tenantView, e lifeguard.Event) {
	tn := v.s.Tenant()
	switch e.Kind {
	case lifeguard.EventOutage:
		fmt.Printf("[%8s] %s OUTAGE   vp r%d cannot reach %v\n", fmtD(e.At), tn, e.VP, e.Target)
	case lifeguard.EventIsolated:
		rep := e.Report
		if rep.Healed {
			fmt.Printf("[%8s] %s ISOLATE  transient — already healed\n", fmtD(e.At), tn)
			return
		}
		fmt.Printf("[%8s] %s ISOLATE  %v failure blamed on AS%d (traceroute alone would say AS%d; %d probes, ~%s)\n",
			fmtD(e.At), tn, rep.Direction, rep.Blamed, rep.TracerouteBlame,
			rep.ProbesUsed, fmtD(rep.EstimatedDuration))
	case lifeguard.EventRepair:
		fmt.Printf("[%8s] %s REPAIR   %v (avoiding AS%d)\n", fmtD(e.At), tn, e.Action, e.Avoided)
	case lifeguard.EventRecovered:
		fmt.Printf("[%8s] %s RECOVER  traffic to %v restored\n", fmtD(e.At), tn, e.Target)
	case lifeguard.EventUnpoison:
		fmt.Printf("[%8s] %s UNPOISON sentinel saw AS%d heal; baseline announcement restored\n",
			fmtD(e.At), tn, e.Avoided)
	case lifeguard.EventControlCrash:
		fmt.Printf("[%8s] %s CRASH    control plane down (routes retained)\n", fmtD(e.At), tn)
	case lifeguard.EventControlRestore:
		fmt.Printf("[%8s] %s RESTORE  control plane back; deferred re-announce done\n", fmtD(e.At), tn)
	case lifeguard.EventFailsafeEnter:
		fmt.Printf("[%8s] %s FAILSAFE monitor lost — repairs suspended\n", fmtD(e.At), tn)
	case lifeguard.EventFailsafeExit:
		fmt.Printf("[%8s] %s HEALTHY  monitor back — repairs resume\n", fmtD(e.At), tn)
	}
}

func fmtD(d time.Duration) string { return d.Round(time.Second).String() }
