// Case study: a replay of §6 of the paper. A LIFEGUARD origin ("Wisconsin")
// announces production and sentinel prefixes and exchanges test traffic
// with a distant monitored node ("Taiwan"). The Taiwanese side's reverse
// path silently switches into a commercial transit ("UUNET") that
// blackholes traffic back to Wisconsin; an academic path ("academic
// backbone") remains viable. LIFEGUARD isolates the reverse failure to
// UUNET, poisons it, traffic returns via the academic route, and when UUNET
// heals hours later the sentinel notices and the poison is withdrawn.
//
//	go run ./examples/casestudy
package main

import (
	"fmt"
	"log"
	"time"

	"lifeguard"
)

// Cast. Both transits reach Wisconsin's provider; Taiwan's academic network
// buys from both UUNET (commercial, preferred: shorter) and the academic
// backbone.
const (
	Wisconsin lifeguard.ASN = 100 // LIFEGUARD origin (BGP-Mux at UWisc)
	WiscNet   lifeguard.ASN = 101 // Wisconsin's provider
	UUNET     lifeguard.ASN = 200 // commercial transit — will fail silently
	Academic  lifeguard.ASN = 300 // academic backbone — the viable alternate
	TANet     lifeguard.ASN = 400 // Taiwanese academic network (target side)
	Helper    lifeguard.ASN = 500 // second vantage point
)

func main() {
	b := lifeguard.NewTopologyBuilder()
	for _, asn := range []lifeguard.ASN{Wisconsin, WiscNet, UUNET, Academic, TANet, Helper} {
		b.AddAS(asn, "")
		b.AddRouter(asn, "")
	}
	rels := [][2]lifeguard.ASN{
		{Wisconsin, WiscNet}, // Wisconsin buys from WiscNet
		{WiscNet, UUNET},     // WiscNet buys from UUNET
		{WiscNet, Academic},  // ...and from the academic backbone
		{TANet, UUNET},       // Taiwan buys from UUNET (shorter, preferred)
		{TANet, Academic},    // ...and from the academic backbone
		{Helper, Academic},
	}
	for _, r := range rels {
		b.Provider(r[0], r[1])
		b.ConnectAS(r[0], r[1])
	}
	top, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	n, err := lifeguard.AssembleNetwork(top, lifeguard.NetworkOptions{Seed: 64})
	if err != nil {
		log.Fatal(err)
	}

	taiwan := n.RouterAddr(n.Hub(TANet))
	sys := lifeguard.NewSystem(n, lifeguard.Config{
		Origin:  Wisconsin,
		VPs:     []lifeguard.RouterID{n.Hub(Wisconsin), n.Hub(Helper)},
		Targets: []lifeguard.Addr{taiwan},
	})
	sys.Start()
	n.Clk.RunFor(5 * time.Minute)
	route(n, "steady state")

	// 8:15pm: the Taiwanese side's reverse path runs through UUNET, which
	// silently stops delivering traffic toward Wisconsin.
	fmt.Println("\n=== 8:15pm — UUNET begins blackholing traffic toward Wisconsin ===")
	fid := n.InjectFailure(lifeguard.BlackholeASTowards(UUNET, lifeguard.Block(Wisconsin)))
	n.Clk.RunFor(20 * time.Minute)

	for _, e := range sys.EventsOfKind(lifeguard.EventIsolated) {
		fmt.Printf("isolation: %v failure; reachability horizon puts the break in AS%d (UUNET)\n",
			e.Report.Direction, e.Report.Blamed)
		fmt.Printf("           traceroute alone would have blamed AS%d\n", e.Report.TracerouteBlame)
	}
	for _, e := range sys.EventsOfKind(lifeguard.EventRepair) {
		fmt.Printf("repair:    %v at t=%v\n", e.Action, e.At.Round(time.Second))
	}
	route(n, "while poisoned")
	if a := sys.Remedy.Active(); a != nil {
		fmt.Printf("sentinel:  %d checks so far; still failing through UUNET\n", a.SentinelChecks)
	}

	// 4am: UUNET fixes its fault; the next sentinel probe returns via the
	// unpoisoned sentinel prefix and LIFEGUARD withdraws the poison.
	fmt.Println("\n=== 4:00am — UUNET's fault is repaired ===")
	n.HealFailure(fid)
	n.Clk.RunFor(10 * time.Minute)
	n.Converge()
	route(n, "after unpoison")

	fmt.Println("\ntimeline:")
	for _, e := range sys.History {
		fmt.Printf("  t=%-8v %v\n", e.At.Round(time.Second), e.Kind)
	}
}

func route(n *lifeguard.Network, label string) {
	r, ok := n.Eng.BestRoute(TANet, lifeguard.ProductionPrefix(Wisconsin))
	if !ok {
		fmt.Printf("%-15s Taiwan has no route to Wisconsin's production prefix\n", label+":")
		return
	}
	via := "UUNET (commercial)"
	if r.Path[0] == Academic {
		via = "academic backbone"
	}
	fmt.Printf("%-15s Taiwan -> Wisconsin production via %s, AS path [%v]\n", label+":", via, r.Path)
}
