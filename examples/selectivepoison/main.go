// Selective poisoning: the §5.2 / Fig. 3 technique. The origin has two
// providers with disjoint paths to a transit A. When the link between A and
// one of its neighbors fails silently, fully poisoning A would cut off
// everyone behind it — but poisoning A via only one provider leaves A with
// the clean announcement heard through the other side, steering A (and only
// A) off the failing link while everything else keeps its route.
//
// This mirrors the paper's UWash/UWisc experiment: shifting traffic off the
// Internet2-Chicago→WiscNet link by poisoning I2 from Wisconsin only.
//
//	go run ./examples/selectivepoison
package main

import (
	"fmt"
	"log"

	"lifeguard"
	"lifeguard/internal/core/remedy"
)

// Fig. 3 cast: O multihomes to D1 and D2. D2 connects straight to A; D1
// reaches A the long way through B1. C3 is a customer of A whose traffic to
// O crosses the A–D2 side.
const (
	O  lifeguard.ASN = 1
	D1 lifeguard.ASN = 2
	D2 lifeguard.ASN = 3
	A  lifeguard.ASN = 4
	B1 lifeguard.ASN = 5
	C3 lifeguard.ASN = 6
)

func main() {
	b := lifeguard.NewTopologyBuilder()
	for _, asn := range []lifeguard.ASN{O, D1, D2, A, B1, C3} {
		b.AddAS(asn, "")
		b.AddRouter(asn, "")
	}
	for _, r := range [][2]lifeguard.ASN{
		{O, D1}, {O, D2}, // O's two providers
		{D1, B1}, {B1, A}, // the long way to A
		{D2, A}, // the short way to A
		{C3, A}, // customer behind A
	} {
		b.Provider(r[0], r[1])
		b.ConnectAS(r[0], r[1])
	}
	top, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	n, err := lifeguard.AssembleNetwork(top, lifeguard.NetworkOptions{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	ctrl := remedy.New(n.Eng, n.Prober, n.Clk, remedy.Config{Origin: O})
	ctrl.AnnounceBaseline()
	n.Converge()
	show(n, "baseline")

	fmt.Println("\n*** the A→D2 direction fails silently; O steers A off it ***")
	n.InjectFailure(lifeguard.DropASLink(A, D2))

	// Selective poison: poison A on every provider except D1, so A only
	// hears the clean path via the D1/B1 side.
	ctrl.PoisonSelective(A, D1, n.RouterAddr(n.Hub(C3)))
	n.Converge()
	show(n, "selective poison")

	// Contrast: a full poison would have cut A and its captives off.
	ctrl.Unpoison()
	n.Converge()
	ctrl.Poison(A, n.RouterAddr(n.Hub(C3)))
	n.Converge()
	show(n, "full poison")

	ctrl.Unpoison()
	n.Converge()
	show(n, "restored")
}

func show(n *lifeguard.Network, label string) {
	fmt.Printf("%-18s", label+":")
	for _, asn := range []lifeguard.ASN{A, C3, D2} {
		if r, ok := n.Eng.BestRoute(asn, lifeguard.ProductionPrefix(O)); ok {
			fmt.Printf("  AS%d->[%v]", asn, r.Path)
		} else {
			fmt.Printf("  AS%d->NONE", asn)
		}
	}
	fmt.Println()
}
