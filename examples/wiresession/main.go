// Wire session: LIFEGUARD's announcements as real BGP-4 bytes. Two speakers
// — the LIFEGUARD origin and its upstream provider — establish a BGP
// session over an in-memory connection (swap in a net.Dial to talk to a
// real router or gobgp), and the origin drives the paper's announcement
// sequence on the wire: the prepended baseline, the sentinel, the O-A-O
// poison, and the post-repair restoration.
//
//	go run ./examples/wiresession
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/netip"
	"time"

	"lifeguard/internal/bgp/session"
	"lifeguard/internal/bgp/wire"
)

const (
	originAS   = 64512 // the LIFEGUARD origin (O)
	providerAS = 3356  // its upstream mux
	poisonedAS = 7018  // the AS being avoided (A)
)

func main() {
	conn1, conn2 := net.Pipe()

	origin := session.New(conn1, session.Config{
		LocalAS:  originAS,
		RouterID: netip.MustParseAddr("198.51.100.1"),
		HoldTime: 30 * time.Second,
	})
	provider := session.New(conn2, session.Config{
		LocalAS:  providerAS,
		RouterID: netip.MustParseAddr("198.51.100.2"),
		HoldTime: 30 * time.Second,
	})

	received := make(chan wire.Update, 16)
	provider.OnUpdate = func(u wire.Update) { received <- u }

	errs := make(chan error, 2)
	go func() { errs <- origin.Start(context.Background()) }()
	go func() { errs <- provider.Start(context.Background()) }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			log.Fatal(err)
		}
	}
	defer origin.Close()
	defer provider.Close()
	fmt.Printf("session established: local AS%d <-> peer AS%d, hold %v\n\n",
		originAS, origin.Peer().AS, origin.HoldTime())

	production := netip.MustParsePrefix("184.164.240.0/24")
	sentinel := netip.MustParsePrefix("184.164.240.0/23")
	nextHop := netip.MustParseAddr("198.51.100.1")

	announce := func(what string, u wire.Update) {
		if err := origin.Announce(u); err != nil {
			log.Fatal(err)
		}
		got := <-received
		raw, _ := wire.Marshal(got)
		fmt.Printf("%s\n  NLRI %v  AS_PATH %v  (%d bytes on the wire)\n\n",
			what, got.NLRI, got.ASPath, len(raw))
	}

	// 1. Steady state: prepended baseline O-O-O plus the sentinel.
	announce("baseline production announcement (O-O-O):", wire.Update{
		ASPath:  []uint16{originAS, originAS, originAS},
		NextHop: nextHop,
		NLRI:    []netip.Prefix{production},
	})
	announce("sentinel announcement (less-specific /23):", wire.Update{
		ASPath:  []uint16{originAS, originAS, originAS},
		NextHop: nextHop,
		NLRI:    []netip.Prefix{sentinel},
	})

	// 2. Failure isolated to AS 7018: poison it. Same length, same next
	//    hop — unaffected networks converge in one update.
	announce("POISONED announcement (O-A-O, avoiding AS7018):", wire.Update{
		ASPath:      []uint16{originAS, poisonedAS, originAS},
		NextHop:     nextHop,
		NLRI:        []netip.Prefix{production},
		Communities: []uint32{uint32(originAS)<<16 | 666}, // ops tag
	})

	// 3. Sentinel sees the failure heal: restore the baseline.
	announce("restored baseline after repair:", wire.Update{
		ASPath:  []uint16{originAS, originAS, originAS},
		NextHop: nextHop,
		NLRI:    []netip.Prefix{production},
	})

	sent, _ := origin.Counts()
	_, recv := provider.Counts()
	fmt.Printf("updates sent by origin: %d, received by provider: %d\n", sent, recv)
}
