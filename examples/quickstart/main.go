// Quickstart: the smallest end-to-end LIFEGUARD run. Builds the paper's
// Fig. 2 topology, injects a silent failure in transit AS A, and lets the
// system detect, isolate, poison, and — once the failure heals — unpoison,
// printing what happened at each step.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"lifeguard"
)

// The Fig. 2 cast: O originates; B..E are transit; F is captive behind A.
const (
	O lifeguard.ASN = 10
	B lifeguard.ASN = 20
	A lifeguard.ASN = 30
	C lifeguard.ASN = 40
	D lifeguard.ASN = 50
	E lifeguard.ASN = 60
	F lifeguard.ASN = 70
)

func main() {
	// 1. Describe the internetwork: ASes, routers, business relationships.
	b := lifeguard.NewTopologyBuilder()
	for _, asn := range []lifeguard.ASN{O, B, A, C, D, E, F} {
		b.AddAS(asn, "")
		b.AddRouter(asn, "") // hub router
	}
	for _, rel := range [][2]lifeguard.ASN{
		{O, B}, {B, A}, {B, C}, {C, D}, {A, E}, {D, E}, {F, A},
	} {
		b.Provider(rel[0], rel[1]) // rel[0] buys transit from rel[1]
		b.ConnectAS(rel[0], rel[1])
	}
	top, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Assemble the network: BGP converges, data plane attaches.
	n, err := lifeguard.AssembleNetwork(top, lifeguard.NetworkOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Deploy LIFEGUARD at O, monitoring a host in E with C as a helper
	//    vantage point.
	target := n.RouterAddr(n.Hub(E))
	sys := lifeguard.NewSystem(n, lifeguard.Config{
		Origin:  O,
		VPs:     []lifeguard.RouterID{n.Hub(O), n.Hub(C)},
		Targets: []lifeguard.Addr{target},
	})
	sys.Start()
	n.Clk.RunFor(3 * time.Minute)
	show(n, "baseline", E)

	// 4. A silently blackholes traffic toward O — the classic persistent
	//    partial outage: control plane keeps announcing, packets die.
	fmt.Println("\n*** AS30 (A) silently fails toward O's prefixes ***")
	fid := n.InjectFailure(lifeguard.BlackholeASTowards(A, lifeguard.Block(O)))
	n.Clk.RunFor(15 * time.Minute)

	for _, e := range sys.EventsOfKind(lifeguard.EventIsolated) {
		fmt.Printf("isolated: %v failure in AS%d (plain traceroute would blame AS%d)\n",
			e.Report.Direction, e.Report.Blamed, e.Report.TracerouteBlame)
	}
	for _, e := range sys.EventsOfKind(lifeguard.EventRepair) {
		fmt.Printf("repair:   %v — production prefix now announced as O-A-O\n", e.Action)
	}
	show(n, "while poisoned", E)

	// 5. The fault heals; the sentinel notices and the poison is removed.
	fmt.Println("\n*** AS30 repaired by its operators ***")
	n.HealFailure(fid)
	n.Clk.RunFor(10 * time.Minute)
	n.Converge()
	show(n, "after unpoison", E)

	fmt.Printf("\nevent log: %d outages, %d repairs, %d unpoisons, %d recoveries\n",
		len(sys.EventsOfKind(lifeguard.EventOutage)),
		len(sys.EventsOfKind(lifeguard.EventRepair)),
		len(sys.EventsOfKind(lifeguard.EventUnpoison)),
		len(sys.EventsOfKind(lifeguard.EventRecovered)))
}

// show prints how asn currently routes to O's production prefix.
func show(n *lifeguard.Network, label string, asn lifeguard.ASN) {
	if r, ok := n.Eng.BestRoute(asn, lifeguard.ProductionPrefix(O)); ok {
		fmt.Printf("%-15s AS%d reaches production via AS path [%v]\n", label+":", asn, r.Path)
	} else {
		fmt.Printf("%-15s AS%d has NO route to production\n", label+":", asn)
	}
}
