package lifeguard_test

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"lifeguard"
)

// TestWholeSystemDeterminism replays an identical scenario twice — same
// seeds, same failure schedule — and requires the complete event history to
// match event for event, timestamp for timestamp. This is the property that
// makes every experiment in this repository reproducible.
func TestWholeSystemDeterminism(t *testing.T) {
	run := func() []string {
		n := fig2Network(t)
		target := n.RouterAddr(n.Hub(asE))
		sys := lifeguard.NewSystem(n, lifeguard.Config{
			Origin:  asO,
			VPs:     []lifeguard.RouterID{n.Hub(asO), n.Hub(asC)},
			Targets: []netip.Addr{target},
		})
		sys.Start()
		n.Clk.RunFor(2 * time.Minute)
		fid := n.InjectFailure(lifeguard.BlackholeASTowards(asA, lifeguard.Block(asO)))
		n.Clk.RunFor(18 * time.Minute)
		n.HealFailure(fid)
		n.Clk.RunFor(10 * time.Minute)
		sys.Stop()

		var log []string
		for _, e := range sys.History {
			line := fmt.Sprintf("%v %v vp=%d target=%v avoided=%d action=%v",
				e.At, e.Kind, e.VP, e.Target, e.Avoided, e.Action)
			if e.Report != nil {
				line += fmt.Sprintf(" blamed=%d dir=%v probes=%d",
					e.Report.Blamed, e.Report.Direction, e.Report.ProbesUsed)
			}
			log = append(log, line)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("history lengths differ: %d vs %d\nA: %v\nB: %v", len(a), len(b), a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs:\n  %s\n  %s", i, a[i], b[i])
		}
	}
	// The scenario must have actually exercised the full pipeline.
	full := false
	for _, line := range a {
		if line != "" && len(a) >= 5 {
			full = true
		}
	}
	if !full {
		t.Fatalf("scenario too trivial to be a determinism witness: %v", a)
	}
}
