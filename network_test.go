package lifeguard_test

import (
	"testing"

	"lifeguard"
	"lifeguard/internal/topo"
)

func TestAssembleNetworkSelectiveOrigination(t *testing.T) {
	b := lifeguard.NewTopologyBuilder()
	for asn := lifeguard.ASN(1); asn <= 3; asn++ {
		b.AddAS(asn, "")
		b.AddRouter(asn, "")
	}
	b.Provider(1, 2)
	b.Provider(3, 2)
	b.ConnectAS(1, 2)
	b.ConnectAS(3, 2)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := lifeguard.AssembleNetwork(top, lifeguard.NetworkOptions{
		Seed:            9,
		OriginateBlocks: []lifeguard.ASN{1, 3}, // AS2's block stays dark
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Eng.BestRoute(3, lifeguard.Block(1)); !ok {
		t.Fatal("Block(1) should be routable")
	}
	if _, ok := n.Eng.BestRoute(1, lifeguard.Block(2)); ok {
		t.Fatal("Block(2) was not originated and must not be routable")
	}
}

func TestAssembleNetworkSkipConverge(t *testing.T) {
	b := lifeguard.NewTopologyBuilder()
	b.AddAS(1, "")
	b.AddRouter(1, "")
	b.AddAS(2, "")
	b.AddRouter(2, "")
	b.Provider(1, 2)
	b.ConnectAS(1, 2)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := lifeguard.AssembleNetwork(top, lifeguard.NetworkOptions{Seed: 1, SkipConverge: true})
	if err != nil {
		t.Fatal(err)
	}
	// Announcements are still in flight: AS2 has no route yet.
	if _, ok := n.Eng.BestRoute(2, lifeguard.Block(1)); ok {
		t.Fatal("route present before convergence")
	}
	if !n.Converge() {
		t.Fatal("Converge failed")
	}
	if _, ok := n.Eng.BestRoute(2, lifeguard.Block(1)); !ok {
		t.Fatal("route missing after convergence")
	}
}

func TestGenerateInternetExposesRoles(t *testing.T) {
	n, err := lifeguard.GenerateInternet(lifeguard.InternetConfig{Seed: 5, NumTransit: 8, NumStub: 20})
	if err != nil {
		t.Fatal(err)
	}
	if n.Gen == nil || len(n.Gen.Tier1s) == 0 || len(n.Gen.Stubs) != 20 {
		t.Fatalf("Gen = %+v", n.Gen)
	}
	// Hub and RouterAddr agree with the topology.
	s := n.Gen.Stubs[0]
	if got := n.RouterAddr(n.Hub(s)); got != n.Top.Router(n.Top.AS(topo.ASN(s)).Routers[0]).Addr {
		t.Fatalf("RouterAddr mismatch: %v", got)
	}
}

func TestInjectAndHealFailureRoundTrip(t *testing.T) {
	n, err := lifeguard.GenerateInternet(lifeguard.InternetConfig{Seed: 6, NumTransit: 8, NumStub: 20})
	if err != nil {
		t.Fatal(err)
	}
	src := n.Hub(n.Gen.Stubs[0])
	dst := n.RouterAddr(n.Hub(n.Gen.Stubs[5]))
	if !n.Prober.Ping(src, dst).OK {
		t.Fatal("baseline ping failed")
	}
	// Blackhole everything at the first transit on the path.
	path := n.Eng.ASPathTo(n.Top.Router(src).AS, dst)
	id := n.InjectFailure(lifeguard.BlackholeAS(lifeguard.ASN(path[0])))
	if n.Prober.Ping(src, dst).OK {
		t.Fatal("failure not effective")
	}
	if !n.HealFailure(id) {
		t.Fatal("HealFailure = false")
	}
	if !n.Prober.Ping(src, dst).OK {
		t.Fatal("ping still failing after heal")
	}
}
