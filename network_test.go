package lifeguard_test

import (
	"net/netip"
	"testing"
	"time"

	"lifeguard"
	"lifeguard/internal/core/isolation"
	"lifeguard/internal/dataplane"
	"lifeguard/internal/topo"
)

func TestAssembleNetworkSelectiveOrigination(t *testing.T) {
	b := lifeguard.NewTopologyBuilder()
	for asn := lifeguard.ASN(1); asn <= 3; asn++ {
		b.AddAS(asn, "")
		b.AddRouter(asn, "")
	}
	b.Provider(1, 2)
	b.Provider(3, 2)
	b.ConnectAS(1, 2)
	b.ConnectAS(3, 2)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := lifeguard.AssembleNetwork(top, lifeguard.NetworkOptions{
		Seed:            9,
		OriginateBlocks: []lifeguard.ASN{1, 3}, // AS2's block stays dark
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Eng.BestRoute(3, lifeguard.Block(1)); !ok {
		t.Fatal("Block(1) should be routable")
	}
	if _, ok := n.Eng.BestRoute(1, lifeguard.Block(2)); ok {
		t.Fatal("Block(2) was not originated and must not be routable")
	}
}

func TestAssembleNetworkSkipConverge(t *testing.T) {
	b := lifeguard.NewTopologyBuilder()
	b.AddAS(1, "")
	b.AddRouter(1, "")
	b.AddAS(2, "")
	b.AddRouter(2, "")
	b.Provider(1, 2)
	b.ConnectAS(1, 2)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := lifeguard.AssembleNetwork(top, lifeguard.NetworkOptions{Seed: 1, SkipConverge: true})
	if err != nil {
		t.Fatal(err)
	}
	// Announcements are still in flight: AS2 has no route yet.
	if _, ok := n.Eng.BestRoute(2, lifeguard.Block(1)); ok {
		t.Fatal("route present before convergence")
	}
	if !n.Converge() {
		t.Fatal("Converge failed")
	}
	if _, ok := n.Eng.BestRoute(2, lifeguard.Block(1)); !ok {
		t.Fatal("route missing after convergence")
	}
}

func TestGenerateInternetExposesRoles(t *testing.T) {
	n, err := lifeguard.GenerateInternet(lifeguard.InternetConfig{Seed: 5, NumTransit: 8, NumStub: 20})
	if err != nil {
		t.Fatal(err)
	}
	if n.Gen == nil || len(n.Gen.Tier1s) == 0 || len(n.Gen.Stubs) != 20 {
		t.Fatalf("Gen = %+v", n.Gen)
	}
	// Hub and RouterAddr agree with the topology.
	s := n.Gen.Stubs[0]
	if got := n.RouterAddr(n.Hub(s)); got != n.Top.Router(n.Top.AS(topo.ASN(s)).Routers[0]).Addr {
		t.Fatalf("RouterAddr mismatch: %v", got)
	}
}

func TestInjectAndHealFailureRoundTrip(t *testing.T) {
	n, err := lifeguard.GenerateInternet(lifeguard.InternetConfig{Seed: 6, NumTransit: 8, NumStub: 20})
	if err != nil {
		t.Fatal(err)
	}
	src := n.Hub(n.Gen.Stubs[0])
	dst := n.RouterAddr(n.Hub(n.Gen.Stubs[5]))
	if !n.Prober.Ping(src, dst).OK {
		t.Fatal("baseline ping failed")
	}
	// Blackhole everything at the first transit on the path.
	path := n.Eng.ASPathTo(n.Top.Router(src).AS, dst)
	id := n.InjectFailure(lifeguard.BlackholeAS(lifeguard.ASN(path[0])))
	if n.Prober.Ping(src, dst).OK {
		t.Fatal("failure not effective")
	}
	if !n.HealFailure(id) {
		t.Fatal("HealFailure = false")
	}
	if !n.Prober.Ping(src, dst).OK {
		t.Fatal("ping still failing after heal")
	}
}

// TestHealAdjacencyValidatesIDs pins the satellite contract: HealAdjacency
// only heals when handed the exact pair of directed drop rules that
// FailAdjacency installed for that adjacency, and a mismatch changes
// nothing (no partial heal).
func TestHealAdjacencyValidatesIDs(t *testing.T) {
	n := fig2Network(t)
	ids := n.FailAdjacency(asB, asA)
	unrelated := n.InjectFailure(lifeguard.BlackholeAS(asC))
	active := n.Plane.ActiveFailures()

	bad := [][2]lifeguard.FailureID{
		{ids[0], unrelated},        // second id is not a link rule
		{unrelated, ids[1]},        // first id is not a link rule
		{ids[0], ids[0]},           // same direction twice
		{ids[0] + 1000, ids[1]},    // first id unknown
		{ids[0], ids[1] + 1000},    // second id unknown
		{unrelated, unrelated + 1}, // neither belongs to the adjacency
	}
	for _, pair := range bad {
		if n.HealAdjacency(asB, asA, pair) {
			t.Fatalf("HealAdjacency accepted mismatched ids %v", pair)
		}
		if got := n.Plane.ActiveFailures(); got != active {
			t.Fatalf("partial heal: %d active failures after rejected ids %v, want %d",
				got, pair, active)
		}
		if !n.Eng.AdjacencyDown(topo.ASN(asB), topo.ASN(asA)) {
			t.Fatalf("session restored by rejected ids %v", pair)
		}
	}
	// Right ids against the wrong adjacency must also be rejected.
	if n.HealAdjacency(asB, asC, ids) {
		t.Fatal("HealAdjacency healed the wrong adjacency")
	}

	// The matching pair heals — in either order.
	//lint:ignore lglint/failureid the heal above targeted the wrong adjacency and was rejected, so ids are still live
	if !n.HealAdjacency(asB, asA, [2]lifeguard.FailureID{ids[1], ids[0]}) {
		t.Fatal("HealAdjacency rejected the correct (swapped) pair")
	}
	if n.Eng.AdjacencyDown(topo.ASN(asB), topo.ASN(asA)) {
		t.Fatal("session still down after heal")
	}
	if got := n.Plane.ActiveFailures(); got != active-2 {
		t.Fatalf("%d active failures after heal, want %d", got, active-2)
	}
	// Healing twice fails: the ids died with the first heal.
	//lint:ignore lglint/failureid deliberately probing that the first heal killed the ids
	if n.HealAdjacency(asB, asA, ids) {
		t.Fatal("HealAdjacency healed twice with the same ids")
	}
}

// TestUnidirectionalForwardFailureEndToEnd commits the PAPER.md §4 scenario
// end to end through the public API: the forward direction across the B–A
// adjacency dies (packets crossing B→A vanish) while A→B keeps working.
// The monitor must flag the outage and isolation must classify it as a
// *forward* failure localized to the far side of the broken crossing.
func TestUnidirectionalForwardFailureEndToEnd(t *testing.T) {
	n := fig2Network(t)
	target := n.RouterAddr(n.Hub(asE))
	sys := lifeguard.NewSystem(n, lifeguard.Config{
		Origin:  asO,
		VPs:     []lifeguard.RouterID{n.Hub(asO), n.Hub(asC)},
		Targets: []netip.Addr{target},
		// Observer mode: this test pins detection + classification; the
		// repair path is covered by TestEndToEndRepairLifecycle.
		DisableAutoRepair: true,
	})
	sys.Start()
	n.Clk.RunFor(3 * time.Minute) // healthy baseline

	// O's traffic to E crosses O→B→A→E; replies come back E→A→B→O. Kill
	// only the B→A crossing: forward dead, reverse alive.
	fid := n.InjectFailure(lifeguard.DropASLink(asB, asA))
	// The reverse direction really is alive: a raw packet from E still
	// reaches O (a Ping would round-trip through the dead crossing).
	res := n.Plane.Forward(n.Hub(asE), dataplane.Packet{
		Src: n.RouterAddr(n.Hub(asE)), Dst: n.RouterAddr(n.Hub(asO)),
	})
	if !res.Delivered() {
		t.Fatalf("reverse direction should be alive, got %v", res.Reason)
	}
	n.Clk.RunFor(20 * time.Minute)

	if len(sys.EventsOfKind(lifeguard.EventOutage)) == 0 {
		t.Fatal("monitor did not detect the forward-only failure")
	}
	isolated := sys.EventsOfKind(lifeguard.EventIsolated)
	if len(isolated) == 0 {
		t.Fatal("no isolation ran")
	}
	rep := isolated[0].Report
	if rep.Direction != isolation.Forward {
		t.Fatalf("direction = %v, want forward (B→A dead, A→B alive)", rep.Direction)
	}
	if rep.Blamed != topo.ASN(asA) {
		t.Fatalf("blamed AS%d, want AS%d (far side of the dead crossing)", rep.Blamed, asA)
	}
	if rep.BlamedLink == nil || rep.BlamedLink[0] != topo.ASN(asA) || rep.BlamedLink[1] != topo.ASN(asB) {
		t.Fatalf("blamed link = %v, want [A B]", rep.BlamedLink)
	}
	// The working (reverse) direction was actually measured.
	if len(rep.WorkingPath) == 0 {
		t.Fatal("working-direction path missing from the report")
	}

	n.HealFailure(fid)
	sys.Stop()
}
