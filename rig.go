package lifeguard

import (
	"fmt"

	"lifeguard/internal/chaos"
	"lifeguard/internal/topo"
)

// Rig is the shared layer of the multi-tenant facade: one simulated
// internetwork (topology, clock, BGP engine, data plane, prober) hosting
// any number of per-tenant Sessions. All sessions run on the one virtual
// clock, so their interleaving is deterministic: the same seed and the
// same AddSession order replay the same merged timeline, and each
// tenant's own event history and metrics partition are byte-identical to
// what a dedicated single-session run would have produced.
//
// The Rig also owns the chaos hooks: its ChaosTarget carries the
// control-plane interface that lets the crashcontrol fault crash and
// restore individual tenants' sessions while the internetwork keeps
// running.
type Rig struct {
	Net *Network

	sessions []*Session
	byOrigin map[ASN]*Session
}

// NewRig wraps an assembled network as a multi-tenant rig.
func NewRig(n *Network) *Rig {
	return &Rig{Net: n, byOrigin: make(map[ASN]*Session)}
}

// AddSession wires a new tenant over the rig without starting it; call
// Start on the returned session. One session per origin AS: a duplicate
// origin is an error. Tenant defaults to "AS<origin>". Sessions can be
// added while the rig is live — a hitless reload: existing tenants'
// monitors, outage state, and active repairs are untouched.
func (r *Rig) AddSession(cfg SessionConfig) (*Session, error) {
	if cfg.Tenant == "" {
		cfg.Tenant = fmt.Sprintf("AS%d", cfg.Origin)
	}
	if r.Net.Top.AS(cfg.Origin) == nil {
		return nil, fmt.Errorf("lifeguard: AddSession: unknown origin AS %d", cfg.Origin)
	}
	if _, dup := r.byOrigin[cfg.Origin]; dup {
		return nil, fmt.Errorf("lifeguard: AddSession: origin AS %d already has a session", cfg.Origin)
	}
	for _, s := range r.sessions {
		if s.cfg.Tenant == cfg.Tenant {
			return nil, fmt.Errorf("lifeguard: AddSession: tenant %q already exists", cfg.Tenant)
		}
	}
	s := newSession(r.Net, cfg)
	r.sessions = append(r.sessions, s)
	r.byOrigin[cfg.Origin] = s
	return s, nil
}

// RemoveSession stops origin's session, reverts any active repair, and
// withdraws the tenant's production and sentinel prefixes, leaving every
// other session untouched — the hitless removal half of config reload.
// It reports whether a session was removed.
func (r *Rig) RemoveSession(origin ASN) bool {
	s, ok := r.byOrigin[origin]
	if !ok {
		return false
	}
	s.Stop()
	s.Remedy.Unpoison()
	rcfg := s.Remedy.Config()
	r.Net.Eng.Withdraw(origin, rcfg.Production)
	r.Net.Eng.Withdraw(origin, rcfg.Sentinel)
	delete(r.byOrigin, origin)
	for i, cand := range r.sessions {
		if cand == s {
			r.sessions = append(r.sessions[:i], r.sessions[i+1:]...)
			break
		}
	}
	return true
}

// Session returns origin's session, or nil.
func (r *Rig) Session(origin ASN) *Session { return r.byOrigin[origin] }

// Sessions returns the rig's sessions in AddSession order.
func (r *Rig) Sessions() []*Session {
	out := make([]*Session, len(r.sessions))
	copy(out, r.sessions)
	return out
}

// Start starts every session, in AddSession order.
func (r *Rig) Start() {
	for _, s := range r.sessions {
		s.Start()
	}
}

// Stop stops every session, in AddSession order.
func (r *Rig) Stop() {
	for _, s := range r.sessions {
		s.Stop()
	}
}

// HasControl implements chaos.ControlPlane: crashcontrol faults validate
// against the set of hosted sessions.
func (r *Rig) HasControl(origin topo.ASN) bool { return r.byOrigin[origin] != nil }

// CrashControl implements chaos.ControlPlane.
func (r *Rig) CrashControl(origin topo.ASN) {
	if s := r.byOrigin[origin]; s != nil {
		s.CrashControl()
	}
}

// RestoreControl implements chaos.ControlPlane.
func (r *Rig) RestoreControl(origin topo.ASN) {
	if s := r.byOrigin[origin]; s != nil {
		s.RestoreControl()
	}
}

// ChaosTarget exposes the rig to the chaos engine, control hooks included
// — unlike Network.ChaosTarget, scripts may use crashcontrol.
func (r *Rig) ChaosTarget() *chaos.Target {
	t := r.Net.ChaosTarget()
	t.Control = r
	return t
}

// RunChaos executes a fault timeline against the rig, with the sessions'
// control planes in scope for crashcontrol faults.
func (r *Rig) RunChaos(s *ChaosScript, opts ChaosOptions) (*ChaosReport, error) {
	runner, err := chaos.NewRunner(r.ChaosTarget(), s, opts)
	if err != nil {
		return nil, err
	}
	return runner.Run()
}
