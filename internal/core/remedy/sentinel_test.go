package remedy_test

import (
	"testing"
	"time"

	"lifeguard/internal/core/remedy"
	"lifeguard/internal/dataplane"
	"lifeguard/internal/nettest"
	"lifeguard/internal/topo"
)

// sentinelLifecycle drives poison → persistent failure → heal → unpoison
// under a given sentinel mode and returns the controller mid-failure hooks.
func sentinelLifecycle(t *testing.T, mode remedy.SentinelMode) {
	t.Helper()
	n := nettest.Fig2(t)
	c := remedy.New(n.Eng, n.Prober, n.Clk, remedy.Config{Origin: nettest.O, Mode: mode})
	c.AnnounceBaseline()
	n.Converge(t)

	fid := n.Plane.AddFailure(dataplane.BlackholeASTowards(nettest.A, topo.Block(nettest.O)))
	victim := n.Top.Router(n.Hub(nettest.E)).Addr
	c.Poison(nettest.A, victim)
	n.Converge(t)

	// Failure persists: several sentinel intervals pass, poison stays.
	n.Clk.RunFor(10 * time.Minute)
	if c.Active() == nil {
		t.Fatalf("mode %v: unpoisoned while the failure persists", mode)
	}
	if c.Active().SentinelChecks == 0 {
		t.Fatalf("mode %v: sentinel never probed", mode)
	}

	n.Plane.RemoveFailure(fid)
	n.Clk.RunFor(5 * time.Minute)
	if c.Active() != nil {
		t.Fatalf("mode %v: poison not withdrawn after healing", mode)
	}
}

func TestSentinelLessSpecificLifecycle(t *testing.T) {
	sentinelLifecycle(t, remedy.SentinelLessSpecific)
}

func TestSentinelNonAdjacentLifecycle(t *testing.T) {
	sentinelLifecycle(t, remedy.SentinelNonAdjacent)
}

func TestSentinelPingPoisonedLifecycle(t *testing.T) {
	sentinelLifecycle(t, remedy.SentinelPingPoisoned)
}

// TestNonAdjacentSentinelSacrificesBackup shows the §7.2 trade-off: with a
// non-adjacent sentinel, repair detection still works, but captives behind
// the poisoned AS lose the production prefix with no covering backup.
func TestNonAdjacentSentinelSacrificesBackup(t *testing.T) {
	n := nettest.Fig2(t)
	c := remedy.New(n.Eng, n.Prober, n.Clk, remedy.Config{
		Origin: nettest.O, Mode: remedy.SentinelNonAdjacent,
	})
	c.AnnounceBaseline()
	n.Converge(t)
	c.Poison(nettest.A, n.Top.Router(n.Hub(nettest.E)).Addr)
	n.Converge(t)

	// Captive F: no production route and — unlike the less-specific
	// design — no covering backup either.
	if _, ok := n.Eng.BestRoute(nettest.F, c.Config().Production); ok {
		t.Fatal("F should lose the production route")
	}
	if _, ok := n.Eng.BestRoute(nettest.F, topo.SentinelPrefix(nettest.O)); ok {
		t.Fatal("no covering /23 should exist in non-adjacent mode")
	}
	// The non-adjacent prefix itself is announced and reaches F.
	if _, ok := n.Eng.BestRoute(nettest.F, topo.NonAdjacentSentinelPrefix(nettest.O)); !ok {
		t.Fatal("non-adjacent sentinel should be announced")
	}
}

// TestLessSpecificSentinelKeepsBackup is the §7.2 contrast: the deployed
// design leaves captives a usable covering route.
func TestLessSpecificSentinelKeepsBackup(t *testing.T) {
	n := nettest.Fig2(t)
	c := remedy.New(n.Eng, n.Prober, n.Clk, remedy.Config{Origin: nettest.O})
	c.AnnounceBaseline()
	n.Converge(t)
	c.Poison(nettest.A, n.Top.Router(n.Hub(nettest.E)).Addr)
	n.Converge(t)
	r, ok := n.Eng.BestRoute(nettest.F, topo.SentinelPrefix(nettest.O))
	if !ok {
		t.Fatal("captive F must keep the covering sentinel route")
	}
	if !topo.SentinelPrefix(nettest.O).Contains(topo.ProductionAddr(nettest.O)) {
		t.Fatal("sentinel must cover production")
	}
	// Data-plane check: F can still deliver packets toward production
	// addresses over the sentinel route (they die in the failed A only
	// while the failure exists; here there is no failure).
	res := n.Plane.Forward(n.Hub(nettest.F), dataplane.Packet{Dst: topo.ProductionAddr(nettest.O)})
	if !res.Delivered() {
		t.Fatalf("F -> production via sentinel: %v", res.Reason)
	}
	_ = r
}

func TestSentinelModeString(t *testing.T) {
	for m, want := range map[remedy.SentinelMode]string{
		remedy.SentinelLessSpecific: "less-specific",
		remedy.SentinelNonAdjacent:  "non-adjacent",
		remedy.SentinelPingPoisoned: "ping-poisoned",
	} {
		if m.String() != want {
			t.Fatalf("%d -> %q", m, m.String())
		}
	}
}
