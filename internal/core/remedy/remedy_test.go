package remedy_test

import (
	"testing"
	"time"

	"lifeguard/internal/core/isolation"
	"lifeguard/internal/core/remedy"
	"lifeguard/internal/dataplane"
	"lifeguard/internal/nettest"
	"lifeguard/internal/topo"
)

func newController(t *testing.T, n *nettest.Net) *remedy.Controller {
	t.Helper()
	c := remedy.New(n.Eng, n.Prober, n.Clk, remedy.Config{Origin: nettest.O})
	c.AnnounceBaseline()
	n.Converge(t)
	return c
}

func TestBaselineAnnouncesPrependedPatterns(t *testing.T) {
	n := nettest.Fig2(t)
	c := newController(t, n)
	prod := c.Config().Production
	r, ok := n.Eng.BestRoute(nettest.B, prod)
	if !ok {
		t.Fatal("B has no production route")
	}
	if !r.Path.Equal(topo.Path{nettest.O, nettest.O, nettest.O}) {
		t.Fatalf("B sees %v, want the O-O-O baseline", r.Path)
	}
	if _, ok := n.Eng.BestRoute(nettest.F, c.Config().Sentinel); !ok {
		t.Fatal("sentinel not propagated")
	}
}

func TestPoisonReroutesAndSentinelUnpoisons(t *testing.T) {
	n := nettest.Fig2(t)
	c := newController(t, n)
	prod := c.Config().Production

	// A silently blackholes everything toward O's address space.
	fid := n.Plane.AddFailure(dataplane.BlackholeASTowards(nettest.A, topo.Block(nettest.O)))

	victim := n.Top.Router(n.Hub(nettest.E)).Addr
	rep := c.Poison(nettest.A, victim)
	n.Converge(t)

	// E now reaches O around A; captive F lost the production route but
	// still holds the sentinel.
	rE, ok := n.Eng.BestRoute(nettest.E, prod)
	if !ok || rE.Path[0] != nettest.D {
		t.Fatalf("E production route = %v, want via D", rE)
	}
	if _, ok := n.Eng.BestRoute(nettest.F, prod); ok {
		t.Fatal("captive F should lose the production route")
	}
	if _, ok := n.Eng.BestRoute(nettest.F, c.Config().Sentinel); !ok {
		t.Fatal("F must keep the sentinel (Backup Property)")
	}

	// While the failure persists, sentinel checks keep the poison.
	n.Clk.RunFor(10 * time.Minute)
	if c.Active() == nil {
		t.Fatal("unpoisoned while the failure persists")
	}
	if rep.SentinelChecks == 0 {
		t.Fatal("sentinel never probed")
	}

	// Heal the failure: the next sentinel check reverts to baseline.
	n.Plane.RemoveFailure(fid)
	var done bool
	c.OnUnpoison = func(r *remedy.Repair) { done = true }
	n.Clk.RunFor(5 * time.Minute)
	if !done || c.Active() != nil {
		t.Fatal("poison not removed after healing")
	}
	n.Converge(t)
	rE, _ = n.Eng.BestRoute(nettest.E, prod)
	if rE.Path[0] != nettest.A {
		t.Fatalf("E should return to the A path, got %v", rE.Path)
	}
	if rep.Ended == 0 || rep.Ended <= rep.Started {
		t.Fatalf("repair window not closed: %+v", rep)
	}
}

func TestDecideAndRepairPolicy(t *testing.T) {
	n := nettest.Fig2(t)
	c := newController(t, n)
	victimE := n.Top.Router(n.Hub(nettest.E)).Addr
	now := n.Clk.Now()

	mkRep := func(blamed topo.ASN) *isolation.Report {
		return &isolation.Report{Blamed: blamed, Target: victimE, Direction: isolation.Reverse}
	}

	if got := c.DecideAndRepair(&isolation.Report{Healed: true}, now); got != remedy.NoFailure {
		t.Fatalf("healed -> %v", got)
	}
	if got := c.DecideAndRepair(mkRep(nettest.A), now); got != remedy.TooYoung {
		t.Fatalf("fresh outage -> %v, want too-young", got)
	}
	n.Clk.RunFor(6 * time.Minute)
	if got := c.DecideAndRepair(mkRep(nettest.O), now); got != remedy.NotPoisonable {
		t.Fatalf("origin blame -> %v", got)
	}
	if got := c.DecideAndRepair(mkRep(nettest.E), now); got != remedy.NotPoisonable {
		t.Fatalf("victim-AS blame -> %v", got)
	}
	// F is captive behind A: no alternate path around A exists for it.
	victimF := n.Top.Router(n.Hub(nettest.F)).Addr
	repF := &isolation.Report{Blamed: nettest.A, Target: victimF}
	if got := c.DecideAndRepair(repF, now); got != remedy.NoAlternate {
		t.Fatalf("captive victim -> %v, want no-alternate", got)
	}
	// E has the D-C-B path: poison.
	if got := c.DecideAndRepair(mkRep(nettest.A), now); got != remedy.Poisoned {
		t.Fatalf("eligible repair -> %v, want poisoned", got)
	}
	if got := c.DecideAndRepair(mkRep(nettest.A), now); got != remedy.AlreadyActive {
		t.Fatalf("repeat repair -> %v, want already-active", got)
	}
	if c.Active() == nil || c.Active().Avoided != nettest.A {
		t.Fatalf("active repair = %+v", c.Active())
	}
	if len(c.History) != 1 {
		t.Fatalf("history = %d entries", len(c.History))
	}
}

func TestPoisonPatternShape(t *testing.T) {
	n := nettest.Fig2(t)
	c := newController(t, n)
	c.Poison(nettest.A, n.Top.Router(n.Hub(nettest.E)).Addr)
	n.Converge(t)
	r, ok := n.Eng.BestRoute(nettest.B, c.Config().Production)
	if !ok {
		t.Fatal("B lost the route")
	}
	want := topo.Path{nettest.O, nettest.A, nettest.O}
	if !r.Path.Equal(want) {
		t.Fatalf("B sees %v, want %v (same length as baseline)", r.Path, want)
	}
}

// TestSelectivePoisoning reproduces Fig. 3: the origin has two providers
// with disjoint paths to A; poisoning A via one provider only steers A to
// the other side without cutting it off.
func TestSelectivePoisoning(t *testing.T) {
	// O(1) -> D1(2), D2(3); D1 -> B1(5) -> A(4); D2 -> A directly.
	b := topo.NewBuilder()
	for asn := topo.ASN(1); asn <= 5; asn++ {
		b.AddAS(asn, "")
		b.AddRouter(asn, "")
	}
	for _, r := range [][2]topo.ASN{{1, 2}, {1, 3}, {2, 5}, {5, 4}, {3, 4}} {
		b.Provider(r[0], r[1])
		b.ConnectAS(r[0], r[1])
	}
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n := nettest.FromTopology(t, top, 33)
	c := remedy.New(n.Eng, n.Prober, n.Clk, remedy.Config{Origin: 1})
	c.AnnounceBaseline()
	n.Converge(t)
	prod := c.Config().Production

	// Baseline: A prefers its short customer path via D2(3).
	rA, _ := n.Eng.BestRoute(4, prod)
	if rA.Path[0] != 3 {
		t.Fatalf("baseline A path = %v, want via 3", rA.Path)
	}

	c.PoisonSelective(4, 2, n.Top.Router(n.Hub(4)).Addr)
	n.Converge(t)
	rA, ok := n.Eng.BestRoute(4, prod)
	if !ok {
		t.Fatal("selective poisoning cut A off entirely")
	}
	if rA.Path[0] != 5 {
		t.Fatalf("A path = %v, want shifted to the 5-side", rA.Path)
	}
	// D2 keeps its own direct route: only A was forced to move.
	r3, ok := n.Eng.BestRoute(3, prod)
	if !ok || r3.Path[0] != 1 {
		t.Fatalf("D2 route = %v, want direct", r3)
	}
	if c.Active() == nil || c.Active().Selective != 2 {
		t.Fatalf("active = %+v", c.Active())
	}
}

func TestUnpoisonWithoutActiveIsNoop(t *testing.T) {
	n := nettest.Fig2(t)
	c := newController(t, n)
	c.Unpoison() // must not panic or announce anything weird
	if c.Active() != nil {
		t.Fatal("phantom active repair")
	}
}
