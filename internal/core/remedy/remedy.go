// Package remedy is LIFEGUARD's repair engine: it owns an origin AS's
// production and sentinel prefixes, keeps the prepended baseline
// announcement that smooths later convergence (§3.1.1), decides whether an
// isolated failure justifies poisoning (§4.2), crafts the poisoned —
// optionally selective (§3.1.2) — announcements, and watches the sentinel
// to withdraw the poison once the avoided path heals.
package remedy

import (
	"fmt"
	"net/netip"
	"time"

	"lifeguard/internal/bgp"
	"lifeguard/internal/core/isolation"
	"lifeguard/internal/obs"
	"lifeguard/internal/probe"
	"lifeguard/internal/simclock"
	"lifeguard/internal/splice"
	"lifeguard/internal/topo"
)

// Action is the outcome of a repair decision.
type Action int

// Repair decisions.
const (
	NoFailure           Action = iota // report was healed/empty
	TooYoung                          // outage hasn't aged past the poison threshold
	NotPoisonable                     // blamed AS is the origin, the destination, or unknown
	NoAlternate                       // no valley-free path around the blamed AS
	Poisoned                          // poisoned announcement installed
	SelectivelyPoisoned               // per-provider poison installed
	AlreadyActive                     // a repair for this AS is already in place
)

// String names the action.
func (a Action) String() string {
	switch a {
	case NoFailure:
		return "no-failure"
	case TooYoung:
		return "too-young"
	case NotPoisonable:
		return "not-poisonable"
	case NoAlternate:
		return "no-alternate"
	case Poisoned:
		return "poisoned"
	case SelectivelyPoisoned:
		return "selectively-poisoned"
	case AlreadyActive:
		return "already-active"
	default:
		return "unknown"
	}
}

// SentinelMode selects among the §7.2 sentinel designs.
type SentinelMode int

// Sentinel designs (§4.2, §7.2).
const (
	// SentinelLessSpecific announces a covering less-specific with an
	// unused sub-prefix: captives keep a backup route, and probes from
	// the unused half detect repair. The paper's deployed design.
	SentinelLessSpecific SentinelMode = iota
	// SentinelNonAdjacent uses an unused prefix that does not cover
	// production: repair detection works, but captives get no backup.
	SentinelNonAdjacent
	// SentinelPingPoisoned has no spare address space at all: a covering
	// less-specific (fully in use) is announced, and repair is detected
	// by pinging hosts inside the poisoned AS — their replies route via
	// the unpoisoned less-specific, exercising the failed element.
	SentinelPingPoisoned
)

// String names the mode.
func (m SentinelMode) String() string {
	switch m {
	case SentinelNonAdjacent:
		return "non-adjacent"
	case SentinelPingPoisoned:
		return "ping-poisoned"
	default:
		return "less-specific"
	}
}

// Config describes the origin deployment.
type Config struct {
	// Origin is the AS LIFEGUARD speaks for.
	Origin topo.ASN
	// Production and Sentinel are the prefixes to manage; zero values
	// default to the topo address plan for Origin.
	Production, Sentinel netip.Prefix
	// Mode selects the sentinel design. Default SentinelLessSpecific.
	Mode SentinelMode
	// PrependLength is the length of the baseline announcement pattern
	// (O-O-O by default, length 3), chosen so a single poison keeps the
	// path length unchanged.
	PrependLength int
	// MinOutageAge gates poisoning: outages younger than this are likely
	// to resolve on their own (Fig. 5 analysis). Default 5 minutes.
	MinOutageAge time.Duration
	// SentinelInterval is how often the sentinel is probed while a
	// poison is active. Default 2 minutes.
	SentinelInterval time.Duration
	// RequireAlternate, default true, refuses to poison when the static
	// analysis finds no valley-free path around the blamed AS (§4.2
	// "if no paths exist, LIFEGUARD does not attempt to poison").
	DisableAlternateCheck bool
}

func (c Config) withDefaults() Config {
	if c.Production == (netip.Prefix{}) {
		c.Production = topo.ProductionPrefix(c.Origin)
	}
	if c.Sentinel == (netip.Prefix{}) {
		if c.Mode == SentinelNonAdjacent {
			c.Sentinel = topo.NonAdjacentSentinelPrefix(c.Origin)
		} else {
			c.Sentinel = topo.SentinelPrefix(c.Origin)
		}
	}
	if c.PrependLength == 0 {
		c.PrependLength = 3
	}
	if c.MinOutageAge == 0 {
		c.MinOutageAge = 5 * time.Minute
	}
	if c.SentinelInterval == 0 {
		c.SentinelInterval = 2 * time.Minute
	}
	return c
}

// Repair records one poisoning episode.
type Repair struct {
	Avoided topo.ASN
	// Selective, when set, names the provider that kept the unpoisoned
	// announcement.
	Selective topo.ASN
	// Victim is the address whose reachability triggered the repair;
	// sentinel probes target it to detect healing.
	Victim         netip.Addr
	Started, Ended time.Duration
	SentinelChecks int
}

// Controller manages the origin's announcements.
type Controller struct {
	eng *bgp.Engine
	pr  *probe.Prober
	clk *simclock.Scheduler
	cfg Config

	// OnUnpoison, if set, fires when a repair is reverted.
	OnUnpoison func(*Repair)

	active *Repair
	// History lists finished and active repairs.
	History []*Repair

	// counters tracks the hijack responder's counter-announcements (see
	// counter.go); nil until the first CounterAnnounce.
	counters map[netip.Prefix]*CounterAnnouncement

	ticker    simclock.EventID
	suspended bool

	obs controllerObs
}

// controllerObs holds the repair engine's metric handles; all-nil means
// uninstrumented.
type controllerObs struct {
	poisons            *obs.Counter
	selectivePoisons   *obs.Counter
	unpoisons          *obs.Counter
	sentinelChecks     *obs.Counter
	sentinelHealed     *obs.Counter
	counterPlain       *obs.Counter
	counterPoisoned    *obs.Counter
	counterWithdrawals *obs.Counter
}

// Instrument registers the repair engine's metrics with reg. A nil
// registry leaves the controller uninstrumented.
func (c *Controller) Instrument(reg *obs.Registry) {
	reg.Describe("lifeguard_remedy_poisons_total",
		"poisoned announcements installed, by kind (full or selective)")
	reg.Describe("lifeguard_remedy_unpoisons_total",
		"repairs reverted to the baseline announcement")
	reg.Describe("lifeguard_remedy_sentinel_checks_total",
		"sentinel probes issued while a repair was active, by outcome")
	c.obs.poisons = reg.Counter("lifeguard_remedy_poisons_total", obs.L("kind", "full"))
	c.obs.selectivePoisons = reg.Counter("lifeguard_remedy_poisons_total", obs.L("kind", "selective"))
	c.obs.unpoisons = reg.Counter("lifeguard_remedy_unpoisons_total")
	c.obs.sentinelChecks = reg.Counter("lifeguard_remedy_sentinel_checks_total", obs.L("outcome", "pending"))
	c.obs.sentinelHealed = reg.Counter("lifeguard_remedy_sentinel_checks_total", obs.L("outcome", "healed"))
	reg.Describe("lifeguard_remedy_counter_announcements_total",
		"hijack counter-announcements installed, by kind (plain or poisoned)")
	reg.Describe("lifeguard_remedy_counter_withdrawals_total",
		"hijack counter-announcements withdrawn after the attack cleared")
	c.obs.counterPlain = reg.Counter("lifeguard_remedy_counter_announcements_total", obs.L("kind", "plain"))
	c.obs.counterPoisoned = reg.Counter("lifeguard_remedy_counter_announcements_total", obs.L("kind", "poisoned"))
	c.obs.counterWithdrawals = reg.Counter("lifeguard_remedy_counter_withdrawals_total")
}

// New returns a controller; call AnnounceBaseline before relying on it.
func New(eng *bgp.Engine, pr *probe.Prober, clk *simclock.Scheduler, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	if eng.Topology().AS(cfg.Origin) == nil {
		panic(fmt.Sprintf("remedy: unknown origin AS %d", cfg.Origin))
	}
	return &Controller{eng: eng, pr: pr, clk: clk, cfg: cfg}
}

// Config returns the effective configuration.
func (c *Controller) Config() Config { return c.cfg }

// Active returns the in-progress repair, or nil.
func (c *Controller) Active() *Repair { return c.active }

// baseline returns the prepended baseline pattern (O-O-O for length 3).
func (c *Controller) baseline() topo.Path {
	p := make(topo.Path, c.cfg.PrependLength)
	for i := range p {
		p[i] = c.cfg.Origin
	}
	return p
}

// poisonPattern returns the baseline with its middle element replaced by
// the avoided AS: O-A-O for length 3 — same length and next hop as the
// baseline, so unaffected ASes converge in a single update (§3.1.1).
func (c *Controller) poisonPattern(avoid topo.ASN) topo.Path {
	p := c.baseline()
	p[len(p)/2] = avoid
	return p
}

// AnnounceBaseline (re)announces the production prefix with the prepended
// baseline and the sentinel with the same unpoisoned pattern.
func (c *Controller) AnnounceBaseline() {
	c.eng.Announce(c.cfg.Origin, c.cfg.Production, bgp.OriginConfig{Pattern: c.baseline()})
	c.eng.Announce(c.cfg.Origin, c.cfg.Sentinel, bgp.OriginConfig{Pattern: c.baseline()})
}

// DecideAndRepair applies the §4.2 policy to an isolation report: poison
// only if the outage is old enough, the blamed AS is a poisonable transit,
// and an alternate policy-compliant path exists for the victim.
func (c *Controller) DecideAndRepair(rep *isolation.Report, outageStart time.Duration) Action {
	if rep == nil || rep.Healed || rep.Blamed == 0 {
		return NoFailure
	}
	if c.clk.Now()-outageStart < c.cfg.MinOutageAge {
		return TooYoung
	}
	victimAS, ok := topo.OwnerOf(rep.Target)
	if !ok {
		return NotPoisonable
	}
	if rep.Blamed == c.cfg.Origin || rep.Blamed == victimAS {
		// Failures inside the edge ASes are for their operators; the
		// paper scopes LIFEGUARD to transit problems.
		return NotPoisonable
	}
	if c.active != nil {
		if c.active.Avoided == rep.Blamed {
			return AlreadyActive
		}
		// One repair at a time: the paper assumes a single failure.
		return AlreadyActive
	}
	if !c.cfg.DisableAlternateCheck &&
		!splice.CanReach(c.eng.Topology(), victimAS, c.cfg.Origin, splice.Avoid1(rep.Blamed)) {
		return NoAlternate
	}
	c.Poison(rep.Blamed, rep.Target)
	return Poisoned
}

// Poison installs the poisoned production announcement avoiding asn and
// begins sentinel monitoring against victim.
func (c *Controller) Poison(asn topo.ASN, victim netip.Addr) *Repair {
	r := &Repair{Avoided: asn, Victim: victim, Started: c.clk.Now()}
	c.active = r
	c.History = append(c.History, r)
	c.obs.poisons.Inc()
	c.eng.Announce(c.cfg.Origin, c.cfg.Production, bgp.OriginConfig{Pattern: c.poisonPattern(asn)})
	c.armSentinel()
	return r
}

// PoisonSelective poisons asn on announcements via every provider except
// keepVia (§3.1.2): asn hears the clean path through keepVia's side and
// keeps routing to the origin — but only via that side, steering it off the
// failing link without cutting it off.
func (c *Controller) PoisonSelective(asn topo.ASN, keepVia topo.ASN, victim netip.Addr) *Repair {
	r := &Repair{Avoided: asn, Selective: keepVia, Victim: victim, Started: c.clk.Now()}
	c.active = r
	c.History = append(c.History, r)
	c.obs.selectivePoisons.Inc()
	per := make(map[topo.ASN]topo.Path)
	for _, p := range c.eng.Topology().Providers(c.cfg.Origin) {
		if p != keepVia {
			per[p] = c.poisonPattern(asn)
		}
	}
	c.eng.Announce(c.cfg.Origin, c.cfg.Production, bgp.OriginConfig{
		Pattern:     c.baseline(),
		PerNeighbor: per,
	})
	c.armSentinel()
	return r
}

// Unpoison reverts to the baseline announcement and closes the active
// repair.
func (c *Controller) Unpoison() {
	if c.active == nil {
		return
	}
	c.clk.Cancel(c.ticker)
	c.active.Ended = c.clk.Now()
	c.obs.unpoisons.Inc()
	done := c.active
	c.active = nil
	c.AnnounceBaseline()
	if c.OnUnpoison != nil {
		c.OnUnpoison(done)
	}
}

// Suspend cancels the sentinel ticker without closing the active repair —
// the control-plane-down half of a graceful restart. The poisoned
// announcement stays in the routing system (stale-route retention); only
// the periodic healing checks pause. No-op when idle or already suspended.
func (c *Controller) Suspend() {
	if c.suspended {
		return
	}
	c.suspended = true
	if c.active != nil {
		c.clk.Cancel(c.ticker)
	}
}

// Resume re-arms the sentinel ticker after a Suspend. The next check fires
// one SentinelInterval from now, so a restart defers — never skips — the
// healing decision. No-op unless suspended.
func (c *Controller) Resume() {
	if !c.suspended {
		return
	}
	c.suspended = false
	if c.active != nil {
		c.armSentinel()
	}
}

// Suspended reports whether sentinel checks are paused.
func (c *Controller) Suspended() bool { return c.suspended }

// armSentinel schedules periodic sentinel checks while a repair is active.
// Suspended controllers don't arm; Resume re-arms for them.
func (c *Controller) armSentinel() {
	if c.suspended {
		return
	}
	var tick func()
	tick = func() {
		if c.active == nil {
			return
		}
		if c.CheckSentinel() {
			c.Unpoison()
			return
		}
		c.ticker = c.clk.After(c.cfg.SentinelInterval, tick)
	}
	c.ticker = c.clk.After(c.cfg.SentinelInterval, tick)
}

// CheckSentinel tests whether the avoided path has healed, per the
// configured §7.2 sentinel design. In every mode the reply traffic routes
// via the unpoisoned sentinel announcement — through the avoided AS when
// that is the preferred path — so success means the underlying failure is
// gone (§4.2).
func (c *Controller) CheckSentinel() bool {
	if c.active == nil {
		return false
	}
	c.active.SentinelChecks++
	healed := c.sentinelHealed()
	if healed {
		c.obs.sentinelHealed.Inc()
	} else {
		c.obs.sentinelChecks.Inc()
	}
	return healed
}

// sentinelHealed issues one sentinel probe per the configured mode.
func (c *Controller) sentinelHealed() bool {
	hub := c.eng.Topology().AS(c.cfg.Origin).Routers[0]
	switch c.cfg.Mode {
	case SentinelNonAdjacent:
		src := topo.NonAdjacentProbeAddr(c.cfg.Origin)
		return c.pr.PingFromAddr(hub, src, c.active.Victim).OK
	case SentinelPingPoisoned:
		// No spare space: ping a host inside the poisoned AS from the
		// production prefix; its reply follows the less-specific route.
		as := c.eng.Topology().AS(c.active.Avoided)
		if as == nil || len(as.Routers) == 0 {
			return false
		}
		dst := c.eng.Topology().Router(as.Routers[0]).Addr
		return c.pr.PingFromAddr(hub, topo.ProductionAddr(c.cfg.Origin), dst).OK
	default:
		src := topo.SentinelProbeAddr(c.cfg.Origin)
		return c.pr.PingFromAddr(hub, src, c.active.Victim).OK
	}
}
