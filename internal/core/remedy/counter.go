package remedy

import (
	"net/netip"
	"sort"
	"time"

	"lifeguard/internal/bgp"
	"lifeguard/internal/topo"
)

// Counter-announcements are the hijack auto-responder's mitigation arm,
// distinct from the poison/unpoison repair cycle: a repair rewrites how the
// production prefix is announced, while a counter-announcement adds origin
// announcements (a hijacked more-specific re-claimed, or de-aggregated
// halves of an exactly-hijacked prefix) that are withdrawn when the attack
// clears. The two never share a prefix, so an active Repair and active
// counter-announcements coexist.

// CounterAnnouncement records one mitigation announcement.
type CounterAnnouncement struct {
	Prefix netip.Prefix
	// Poisoned names the rogue AS poisoned in the announcement pattern,
	// 0 for the plain baseline pattern (de-aggregation, or the Smith et
	// al. fallback when the rogue disables loop detection and cannot be
	// poisoned).
	Poisoned  topo.ASN
	Installed time.Duration
}

// CounterAnnounce announces prefix from the origin with the baseline
// pattern — poisoned against avoid when avoid != 0 — and tracks it for
// later withdrawal. Re-announcing a tracked prefix replaces its pattern.
func (c *Controller) CounterAnnounce(prefix netip.Prefix, avoid topo.ASN) *CounterAnnouncement {
	pattern := c.baseline()
	if avoid != 0 {
		pattern = c.poisonPattern(avoid)
	}
	c.eng.Announce(c.cfg.Origin, prefix, bgp.OriginConfig{Pattern: pattern})
	if c.counters == nil {
		c.counters = make(map[netip.Prefix]*CounterAnnouncement)
	}
	ca := &CounterAnnouncement{Prefix: prefix, Poisoned: avoid, Installed: c.clk.Now()}
	c.counters[prefix] = ca
	if avoid != 0 {
		c.obs.counterPoisoned.Inc()
	} else {
		c.obs.counterPlain.Inc()
	}
	return ca
}

// Halves splits prefix into its two more-specific halves — the ARTEMIS
// de-aggregation response to an exact-prefix hijack. False when the prefix
// is a /32 and cannot be split.
func Halves(prefix netip.Prefix) (lo, hi netip.Prefix, ok bool) {
	if !prefix.Addr().Is4() || prefix.Bits() >= 32 {
		return lo, hi, false
	}
	bits := prefix.Bits() + 1
	a := prefix.Masked().Addr().As4()
	lo = netip.PrefixFrom(netip.AddrFrom4(a), bits)
	a[prefix.Bits()/8] |= 1 << (7 - prefix.Bits()%8)
	hi = netip.PrefixFrom(netip.AddrFrom4(a), bits)
	return lo, hi, true
}

// WithdrawCounter withdraws one tracked counter-announcement; it reports
// whether the prefix was tracked.
func (c *Controller) WithdrawCounter(prefix netip.Prefix) bool {
	if _, ok := c.counters[prefix]; !ok {
		return false
	}
	delete(c.counters, prefix)
	c.eng.Withdraw(c.cfg.Origin, prefix)
	c.obs.counterWithdrawals.Inc()
	return true
}

// WithdrawAllCounters withdraws every tracked counter-announcement in
// sorted prefix order and returns how many were withdrawn.
func (c *Controller) WithdrawAllCounters() int {
	ps := make([]netip.Prefix, 0, len(c.counters))
	for p := range c.counters {
		ps = append(ps, p)
	}
	sortPrefixes(ps)
	for _, p := range ps {
		c.WithdrawCounter(p)
	}
	return len(ps)
}

// Counters lists the active counter-announcements in sorted prefix order.
func (c *Controller) Counters() []*CounterAnnouncement {
	out := make([]*CounterAnnouncement, 0, len(c.counters))
	for _, ca := range c.counters {
		out = append(out, ca)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix.Addr() != out[j].Prefix.Addr() {
			return out[i].Prefix.Addr().Less(out[j].Prefix.Addr())
		}
		return out[i].Prefix.Bits() < out[j].Prefix.Bits()
	})
	return out
}

func sortPrefixes(ps []netip.Prefix) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Addr() != ps[j].Addr() {
			return ps[i].Addr().Less(ps[j].Addr())
		}
		return ps[i].Bits() < ps[j].Bits()
	})
}
