package remedy_test

import (
	"net/netip"
	"testing"

	"lifeguard/internal/bgp"
	"lifeguard/internal/core/remedy"
	"lifeguard/internal/dataplane"
	"lifeguard/internal/nettest"
	"lifeguard/internal/topo"
)

func TestHalves(t *testing.T) {
	for _, tc := range []struct {
		in, lo, hi string
		ok         bool
	}{
		{"1.10.0.0/16", "1.10.0.0/17", "1.10.128.0/17", true},
		{"1.10.128.0/17", "1.10.128.0/18", "1.10.192.0/18", true},
		{"10.0.0.0/8", "10.0.0.0/9", "10.128.0.0/9", true},
		{"192.0.2.7/32", "", "", false},
	} {
		p := netip.MustParsePrefix(tc.in)
		lo, hi, ok := remedy.Halves(p)
		if ok != tc.ok {
			t.Fatalf("Halves(%v): ok=%v, want %v", p, ok, tc.ok)
		}
		if !ok {
			continue
		}
		if lo != netip.MustParsePrefix(tc.lo) || hi != netip.MustParsePrefix(tc.hi) {
			t.Fatalf("Halves(%v) = %v, %v; want %v, %v", p, lo, hi, tc.lo, tc.hi)
		}
	}
}

// TestCounterAnnounceDeaggregates plays the ARTEMIS response to an
// exact-prefix hijack on Fig. 2: rogue F originates O's block and captures
// A; O counter-announces the two more-specific halves, and longest-prefix
// match pulls the data plane back to O everywhere even though the hijacked
// /16 route is still in A's RIB.
func TestCounterAnnounceDeaggregates(t *testing.T) {
	n := nettest.Fig2(t)
	c := remedy.New(n.Eng, n.Prober, n.Clk, remedy.Config{Origin: nettest.O})
	c.AnnounceBaseline()
	n.Converge(t)

	victim := topo.Block(nettest.O)
	n.Eng.Announce(nettest.F, victim, bgp.OriginConfig{})
	n.Converge(t)
	probe := topo.Block(nettest.O).Addr().Next() // an address inside the hijacked block
	res := n.Plane.Forward(n.Hub(nettest.A), dataplane.Packet{Dst: probe})
	if res.Delivered() && res.LastAS == nettest.O {
		t.Fatal("hijack had no effect; test premise broken")
	}

	lo, hi, ok := remedy.Halves(victim)
	if !ok {
		t.Fatalf("cannot split %v", victim)
	}
	c.CounterAnnounce(lo, 0)
	c.CounterAnnounce(hi, 0)
	n.Converge(t)
	res = n.Plane.Forward(n.Hub(nettest.A), dataplane.Packet{Dst: probe})
	if !res.Delivered() || res.LastAS != nettest.O {
		t.Fatalf("de-aggregation did not recover A: %+v", res)
	}
	if got := len(c.Counters()); got != 2 {
		t.Fatalf("tracking %d counter-announcements, want 2", got)
	}

	// The attack clears; withdrawing the counters returns the control
	// plane to exactly the baseline announcements.
	n.Eng.Withdraw(nettest.F, victim)
	if got := c.WithdrawAllCounters(); got != 2 {
		t.Fatalf("withdrew %d, want 2", got)
	}
	n.Converge(t)
	if got := len(c.Counters()); got != 0 {
		t.Fatalf("%d counter-announcements still tracked", got)
	}
	if _, ok := n.Eng.BestRoute(nettest.A, lo); ok {
		t.Fatal("A still holds a route for the withdrawn half")
	}
	if c.WithdrawCounter(lo) {
		t.Fatal("WithdrawCounter reported an untracked prefix as tracked")
	}
}

// TestCounterAnnouncePoisoned covers the sub-prefix response: the hijacked
// more-specific is re-announced at the same length with the rogue poisoned.
// Recovery is partial by design — ASes nearer the rogue may keep preferring
// it — which is exactly what the hijack experiment's fraction-recovered
// metric measures.
func TestCounterAnnouncePoisoned(t *testing.T) {
	n := nettest.Fig2(t)
	c := remedy.New(n.Eng, n.Prober, n.Clk, remedy.Config{Origin: nettest.O})
	c.AnnounceBaseline()
	n.Converge(t)

	sub := netip.MustParsePrefix("1.10.240.0/24")
	n.Eng.Announce(nettest.F, sub, bgp.OriginConfig{})
	n.Converge(t)

	ca := c.CounterAnnounce(sub, nettest.F)
	if ca.Poisoned != nettest.F {
		t.Fatalf("counter-announcement poisons %d, want %d", ca.Poisoned, nettest.F)
	}
	n.Converge(t)

	// B hears the counter-announcement from its customer O and recovers.
	r, ok := n.Eng.BestRoute(nettest.B, sub)
	if !ok {
		t.Fatal("B has no route for the contested sub-prefix")
	}
	if o, _ := r.Path.Origin(); o != nettest.O {
		t.Fatalf("B's sub-prefix route originates at %d, want %d", o, nettest.O)
	}
	if !r.Path.Contains(nettest.F) {
		t.Fatal("counter-announcement pattern does not carry the poison token")
	}
}
