// Package isolation implements LIFEGUARD's failure-isolation engine (§4.1):
// given a (vantage point, target) pair in outage, it determines which
// direction failed, measures the working direction with spoofed probes,
// probes the hops of historical atlas paths to establish the reachability
// horizon, and blames the AS just beyond it. It also computes what a plain
// traceroute would have blamed, the baseline the paper shows is wrong 40%
// of the time.
package isolation

import (
	"net/netip"
	"time"

	"lifeguard/internal/atlas"
	"lifeguard/internal/obs"
	"lifeguard/internal/probe"
	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
)

// Direction classifies which direction of a path failed.
type Direction int

// Failure directions as isolated by spoofed pings.
const (
	Unknown Direction = iota
	Forward
	Reverse
	Bidirectional
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case Forward:
		return "forward"
	case Reverse:
		return "reverse"
	case Bidirectional:
		return "bidirectional"
	default:
		return "unknown"
	}
}

// Report is the outcome of one isolation run.
type Report struct {
	VP     topo.RouterID
	Target netip.Addr
	At     time.Duration

	// Healed is set when the target turned out reachable after all;
	// nothing else is filled in.
	Healed bool

	Direction Direction

	// Blamed is the AS isolation holds responsible — the poisoning
	// candidate. Zero when isolation could not localize the failure.
	Blamed topo.ASN
	// BlamedRouter is the representative broken router (H′ in §4.1.2).
	BlamedRouter topo.RouterID
	// BlamedLink, when non-nil, names the AS boundary the horizon
	// crossed: BlamedLink[0] (the blamed AS) fails toward BlamedLink[1].
	// Selective poisoning can target it (§3.1.2).
	BlamedLink *[2]topo.ASN

	// TracerouteBlame is what an operator using traceroute alone would
	// conclude (the AS of the last responsive hop) — the baseline of
	// §5.3.
	TracerouteBlame topo.ASN

	// WorkingPath is the measured path in the working direction, if any.
	WorkingPath []probe.Hop

	// HorizonPaths are the measured current reverse paths from hops that
	// still reach the vantage point, corroborating the horizon (§4.1.2).
	HorizonPaths [][]probe.Hop

	// ProbesUsed counts probe packets consumed by this isolation;
	// EstimatedDuration converts that to wall time (§5.4 reports ~280
	// probes and ~140s for reverse outages).
	ProbesUsed        int
	EstimatedDuration time.Duration
}

// Config tunes the isolator.
type Config struct {
	// PerProbeLatency converts probe count to estimated isolation wall
	// time (probe RTTs plus rate-limit pacing). Default 500ms.
	PerProbeLatency time.Duration
	// MaxHistoricalRecords bounds how many old atlas paths the §4.1.2
	// suspect-set expansion examines. Default 5.
	MaxHistoricalRecords int
}

func (c Config) withDefaults() Config {
	if c.PerProbeLatency == 0 {
		c.PerProbeLatency = 500 * time.Millisecond
	}
	if c.MaxHistoricalRecords == 0 {
		c.MaxHistoricalRecords = 5
	}
	return c
}

// Isolator runs failure isolation using a prober, a path atlas, and the
// atlas's other vantage points as spoofing helpers.
type Isolator struct {
	top *topo.Topology
	pr  *probe.Prober
	atl *atlas.Atlas
	clk *simclock.Scheduler
	cfg Config

	obs isolatorObs
}

// isolatorObs holds the isolator's metric handles; all-nil means
// uninstrumented.
type isolatorObs struct {
	runs     *obs.Counter
	healed   *obs.Counter
	probes   *obs.Counter
	duration *obs.Histogram
}

// isolationDurationBuckets covers the estimated isolation time in virtual
// seconds; the paper reports ~140s for reverse outages (§5.4).
var isolationDurationBuckets = []float64{10, 30, 60, 120, 240, 480, 960}

// Instrument registers the isolator's metrics with reg. A nil registry
// leaves the isolator uninstrumented.
func (iso *Isolator) Instrument(reg *obs.Registry) {
	reg.Describe("lifeguard_isolation_runs_total",
		"failure-isolation runs started")
	reg.Describe("lifeguard_isolation_healed_total",
		"isolation runs that found the outage already healed")
	reg.Describe("lifeguard_isolation_probes_total",
		"probe packets consumed by isolation runs")
	reg.Describe("lifeguard_isolation_duration_seconds",
		"estimated isolation duration per run, in virtual-time seconds")
	iso.obs.runs = reg.Counter("lifeguard_isolation_runs_total")
	iso.obs.healed = reg.Counter("lifeguard_isolation_healed_total")
	iso.obs.probes = reg.Counter("lifeguard_isolation_probes_total")
	iso.obs.duration = reg.Histogram("lifeguard_isolation_duration_seconds", isolationDurationBuckets)
}

// New returns an isolator. Vantage points are taken from the atlas.
func New(top *topo.Topology, pr *probe.Prober, atl *atlas.Atlas, clk *simclock.Scheduler, cfg Config) *Isolator {
	return &Isolator{top: top, pr: pr, atl: atl, clk: clk, cfg: cfg.withDefaults()}
}

// Isolate diagnoses the outage between vp and target. It issues probes but
// does not advance the virtual clock; EstimatedDuration tells the caller
// how long the measurements would have taken.
func (iso *Isolator) Isolate(vp topo.RouterID, target netip.Addr) *Report {
	rep := &Report{VP: vp, Target: target, At: iso.clk.Now()}
	iso.obs.runs.Inc()
	probesBefore := iso.pr.Sent
	defer func() {
		rep.ProbesUsed = iso.pr.Sent - probesBefore
		rep.EstimatedDuration = time.Duration(rep.ProbesUsed) * iso.cfg.PerProbeLatency
		if rep.Healed {
			iso.obs.healed.Inc()
		}
		iso.obs.probes.Add(int64(rep.ProbesUsed))
		iso.obs.duration.Observe(rep.EstimatedDuration.Seconds())
	}()

	// Re-confirm the failure; outages resolve on their own all the time.
	if iso.pr.Ping(vp, target).OK {
		rep.Healed = true
		return rep
	}

	// Baseline: what does plain traceroute say?
	tr := iso.pr.Traceroute(vp, target)
	if last, ok := tr.LastResponsive(); ok {
		rep.TracerouteBlame = last.AS
	}

	// Step 2a: isolate the failing direction with spoofed pings via a
	// helper vantage point that can reach the target.
	helper, hasHelper := iso.findHelper(vp, target)
	if hasHelper {
		forwardOK := iso.pr.SpoofedPing(vp, target, helper).OK
		reverseOK := iso.pr.SpoofedPing(helper, target, vp).OK
		switch {
		case forwardOK && !reverseOK:
			rep.Direction = Reverse
		case !forwardOK && reverseOK:
			rep.Direction = Forward
		case !forwardOK && !reverseOK:
			rep.Direction = Bidirectional
		default:
			// Both spoofed probes worked: the outage healed mid-run
			// or is flaky; report healed.
			rep.Healed = true
			return rep
		}
	} else {
		rep.Direction = Bidirectional // no helper: treat like a forward problem
	}

	// Step 2b: measure the working direction.
	switch rep.Direction {
	case Reverse:
		wd := iso.pr.SpoofedTraceroute(vp, target, helper)
		rep.WorkingPath = wd.Hops
	case Forward:
		if tr, ok := iso.targetRouter(target); ok {
			if rt, ok := iso.pr.ReverseTraceroute(tr, vp); ok {
				rep.WorkingPath = rt.Hops
			}
		}
	}

	// Steps 3–4: test atlas paths in the failing direction and blame the
	// far side of the reachability horizon.
	switch rep.Direction {
	case Reverse:
		iso.blameReverse(rep, vp, target, helper)
	default:
		iso.blameForward(rep, vp, target, &tr)
	}
	return rep
}

// findHelper returns a vantage point (other than vp) that currently has
// bidirectional connectivity to target.
func (iso *Isolator) findHelper(vp topo.RouterID, target netip.Addr) (topo.RouterID, bool) {
	for _, w := range iso.atl.VPs() {
		if w == vp {
			continue
		}
		if iso.pr.Ping(w, target).OK {
			return w, true
		}
	}
	return 0, false
}

func (iso *Isolator) targetRouter(target netip.Addr) (topo.RouterID, bool) {
	if r, ok := iso.top.RouterByAddr(target); ok {
		return r.ID, true
	}
	owner, ok := topo.OwnerOf(target)
	if !ok {
		return 0, false
	}
	as := iso.top.AS(owner)
	if as == nil || len(as.Routers) == 0 {
		return 0, false
	}
	return as.Routers[0], true
}

// hopState classifies a historical hop during horizon probing.
type hopState int

const (
	hopUnknown hopState = iota // never responsive, or can't tell
	hopReaches                 // responds to vp: has a working path back
	hopCutOff                  // alive (responds to helper) but not to vp
	hopDark                    // responded in the past, now silent to all
)

// classify probes one historical hop from vp and, when it fails, from every
// other vantage point — §4.1.2 distinguishes hops that "cannot reach S but
// respond to other vantage points" (cut off) from hops silent to everyone
// (dark, possibly the broken element itself).
func (iso *Isolator) classify(h probe.Hop, vp topo.RouterID, helper topo.RouterID, hasHelper bool) hopState {
	if h.Star {
		return hopUnknown
	}
	if !iso.atl.EverResponsive(h.Addr) {
		return hopUnknown // configured silent: silence proves nothing
	}
	if iso.pr.Ping(vp, h.Addr).OK {
		return hopReaches
	}
	state := hopDark
	for _, w := range iso.atl.VPs() {
		if w == vp {
			continue
		}
		if iso.pr.Ping(w, h.Addr).OK {
			state = hopCutOff
			break
		}
	}
	_ = helper
	_ = hasHelper
	return state
}

// blameReverse implements the §4.1.2 reverse-failure analysis: on the most
// recent historical reverse path (target→vp), find the farthest hop H that
// still reaches vp and blame the first hop H′ past it that cannot; repeat
// over older paths when the newest is inconclusive.
func (iso *Isolator) blameReverse(rep *Report, vp topo.RouterID, target netip.Addr, helper topo.RouterID) {
	// Step 3 — test atlas paths in the failing direction: ping every hop
	// that ever appeared on a path between vp and target (both
	// directions), from vp and, on failure, from the other vantage
	// points. This builds the reachability-horizon map.
	states := make(map[topo.RouterID]hopState)
	for _, hop := range iso.atl.HistoricalHops(vp, target) {
		states[hop.Router] = iso.classify(hop, vp, helper, true)
		// "For all hops still pingable from S, LIFEGUARD measures a
		// reverse traceroute to S" — these corroborate the horizon.
		if states[hop.Router] == hopReaches {
			if rt, ok := iso.pr.ReverseTraceroute(hop.Router, vp); ok {
				rep.HorizonPaths = append(rep.HorizonPaths, rt.Hops)
			}
		}
	}

	// Step 4 — prune: on the most recent pre-failure reverse path, H is
	// the farthest hop that still reaches vp; blame the first hop H′
	// past it that cannot. Older paths expand the suspect set when the
	// newest is inconclusive.
	recs := iso.atl.LatestReverseBefore(vp, target, iso.clk.Now())
	if len(recs) > iso.cfg.MaxHistoricalRecords {
		recs = recs[:iso.cfg.MaxHistoricalRecords]
	}
	for _, rec := range recs {
		// rec.Hops runs target→vp: scan from the vp end toward the
		// target.
		var hPrime *probe.Hop
		var h *probe.Hop
		for i := len(rec.Hops) - 1; i >= 0; i-- {
			hop := rec.Hops[i]
			st, seen := states[hop.Router]
			if !seen {
				st = iso.classify(hop, vp, helper, true)
				states[hop.Router] = st
			}
			switch st {
			case hopReaches:
				h = &rec.Hops[i]
			case hopCutOff, hopDark:
				hPrime = &rec.Hops[i]
			case hopUnknown:
				continue
			}
			if hPrime != nil {
				break
			}
		}
		if hPrime == nil {
			continue // every probed hop reaches vp: stale path, try older
		}
		rep.Blamed = hPrime.AS
		rep.BlamedRouter = hPrime.Router
		if h != nil && h.AS != hPrime.AS {
			rep.BlamedLink = &[2]topo.ASN{hPrime.AS, h.AS}
		}
		return
	}
}

// blameForward handles forward and bidirectional failures: the fault lies
// just past the last responsive traceroute hop; historical forward paths
// through that hop tell us which AS comes next.
func (iso *Isolator) blameForward(rep *Report, vp topo.RouterID, target netip.Addr, tr *probe.TracerouteReport) {
	last, ok := tr.LastResponsive()
	if !ok {
		return // not even the first hop answered; cannot localize
	}
	recs := iso.atl.Forward(vp, target)
	for i := len(recs) - 1; i >= 0; i-- {
		hops := recs[i].Hops
		for j, h := range hops {
			if h.Star || h.Router != last.Router {
				continue
			}
			// Found the horizon hop on a historical path: blame the
			// next responsive hop (often the next AS's ingress).
			for k := j + 1; k < len(hops); k++ {
				if !hops[k].Star {
					rep.Blamed = hops[k].AS
					rep.BlamedRouter = hops[k].Router
					if hops[k].AS != last.AS {
						rep.BlamedLink = &[2]topo.ASN{hops[k].AS, last.AS}
					}
					return
				}
			}
		}
	}
	// No history past the horizon: blame the last hop's own AS.
	rep.Blamed = last.AS
	rep.BlamedRouter = last.Router
}
