package isolation_test

import (
	"net/netip"
	"testing"
	"time"

	"lifeguard/internal/atlas"
	"lifeguard/internal/core/isolation"
	"lifeguard/internal/dataplane"
	"lifeguard/internal/nettest"
	"lifeguard/internal/topo"
)

// rig is a Fig.4 network with a warmed-up atlas and an isolator.
type rig struct {
	n      *nettest.Net
	atl    *atlas.Atlas
	iso    *isolation.Isolator
	vp     topo.RouterID
	target netip.Addr
}

func setup(t *testing.T) *rig {
	t.Helper()
	n := nettest.Fig4(t)
	atl := atlas.New(n.Top, n.Prober, n.Clk, atlas.Config{})
	atl.AddVP(n.Hub(nettest.VP1AS))
	atl.AddVP(n.Hub(nettest.VP5AS))
	target := n.Top.Router(n.Hub(nettest.TargetAS)).Addr
	atl.AddTarget(target)
	// Two refresh rounds of history before anything breaks.
	atl.RefreshAll()
	n.Clk.RunFor(15 * time.Minute)
	atl.RefreshAll()
	n.Clk.RunFor(time.Minute)
	return &rig{
		n:      n,
		atl:    atl,
		iso:    isolation.New(n.Top, n.Prober, atl, n.Clk, isolation.Config{}),
		vp:     n.Hub(nettest.VP1AS),
		target: target,
	}
}

func TestHealedWhenNoFailure(t *testing.T) {
	r := setup(t)
	rep := r.iso.Isolate(r.vp, r.target)
	if !rep.Healed {
		t.Fatalf("expected healed report, got %+v", rep)
	}
}

// TestReverseFailureIsolation replays the paper's Fig. 4 walkthrough: the
// far transit (Rostelecom analogue) loses its path back to the vantage
// point. Traceroute alone blames the near transit; LIFEGUARD must blame the
// far one.
func TestReverseFailureIsolation(t *testing.T) {
	r := setup(t)
	r.n.ReverseFailure()
	rep := r.iso.Isolate(r.vp, r.target)
	if rep.Healed {
		t.Fatal("failure not detected")
	}
	if rep.Direction != isolation.Reverse {
		t.Fatalf("direction = %v, want reverse", rep.Direction)
	}
	if rep.Blamed != nettest.TransitB {
		t.Fatalf("blamed AS%d, want AS%d (TransitB)", rep.Blamed, nettest.TransitB)
	}
	if rep.TracerouteBlame != nettest.TransitA {
		t.Fatalf("traceroute blame = AS%d, want AS%d (the misleading near transit)",
			rep.TracerouteBlame, nettest.TransitA)
	}
	if rep.TracerouteBlame == rep.Blamed {
		t.Fatal("this is exactly the case where traceroute-only diagnosis is wrong")
	}
	if rep.BlamedLink == nil || rep.BlamedLink[0] != nettest.TransitB || rep.BlamedLink[1] != nettest.TransitA {
		t.Fatalf("blamed link = %v, want [3 2]", rep.BlamedLink)
	}
	// The working (forward) direction was measured via spoofed traceroute.
	if len(rep.WorkingPath) == 0 {
		t.Fatal("working-direction path missing")
	}
	var wp topo.Path
	for _, h := range rep.WorkingPath {
		if !h.Star && (len(wp) == 0 || wp[len(wp)-1] != h.AS) {
			wp = append(wp, h.AS)
		}
	}
	if !wp.Equal(topo.Path{1, 2, 3, 4}) {
		t.Fatalf("working path = %v", wp)
	}
}

func TestForwardFailureIsolation(t *testing.T) {
	r := setup(t)
	// Directed failure: packets crossing from VP1's AS toward TransitA
	// vanish; replies (TransitA -> VP1) still flow.
	r.n.Plane.AddFailure(dataplane.DropASLink(nettest.VP1AS, nettest.TransitA))
	rep := r.iso.Isolate(r.vp, r.target)
	if rep.Direction != isolation.Forward {
		t.Fatalf("direction = %v, want forward", rep.Direction)
	}
	if rep.Blamed != nettest.TransitA {
		t.Fatalf("blamed = AS%d, want AS%d (far side of the broken link)", rep.Blamed, nettest.TransitA)
	}
	if rep.BlamedLink == nil || rep.BlamedLink[0] != nettest.TransitA || rep.BlamedLink[1] != nettest.VP1AS {
		t.Fatalf("blamed link = %v", rep.BlamedLink)
	}
	// Working (reverse) direction measured via reverse traceroute.
	if len(rep.WorkingPath) == 0 {
		t.Fatal("working-direction path missing")
	}
}

func TestBidirectionalFailureIsolation(t *testing.T) {
	r := setup(t)
	// TransitB blackholes all transit traffic in both directions — a
	// complete outage for both VPs, so no helper exists.
	r.n.Plane.AddFailure(dataplane.Rule{AtAS: nettest.TransitB, TransitOnly: true})
	rep := r.iso.Isolate(r.vp, r.target)
	if rep.Direction != isolation.Bidirectional {
		t.Fatalf("direction = %v, want bidirectional", rep.Direction)
	}
	if rep.Blamed != nettest.TransitB {
		t.Fatalf("blamed = AS%d, want AS%d", rep.Blamed, nettest.TransitB)
	}
	// Here traceroute agrees (forward component is visible).
	if rep.TracerouteBlame != nettest.TransitA {
		t.Fatalf("traceroute blame = AS%d (last responsive hop's AS)", rep.TracerouteBlame)
	}
}

func TestConfiguredSilentRouterNotBlamed(t *testing.T) {
	// A router that never answered probes must not be treated as broken:
	// its silence during the failure proves nothing (§4.1.2).
	n := nettest.Fig4(t)
	// TransitB's routers are ICMP-silent from the start.
	for _, rid := range n.Top.AS(nettest.TransitB).Routers {
		n.Top.Router(rid).Responsive = false
	}
	atl := atlas.New(n.Top, n.Prober, n.Clk, atlas.Config{})
	atl.AddVP(n.Hub(nettest.VP1AS))
	atl.AddVP(n.Hub(nettest.VP5AS))
	target := n.Top.Router(n.Hub(nettest.TargetAS)).Addr
	atl.AddTarget(target)
	atl.RefreshAll()
	n.Clk.RunFor(time.Minute)
	iso := isolation.New(n.Top, n.Prober, atl, n.Clk, isolation.Config{})
	n.ReverseFailure()
	rep := iso.Isolate(n.Hub(nettest.VP1AS), target)
	if rep.Direction != isolation.Reverse {
		t.Fatalf("direction = %v", rep.Direction)
	}
	// With TransitB unprobeable, the horizon evidence stops at the
	// target side; isolation must not blame TransitB on silence alone.
	if rep.Blamed == nettest.TransitB {
		t.Fatal("blamed a configured-silent AS with no positive evidence")
	}
}

func TestProbeBudgetAndDuration(t *testing.T) {
	r := setup(t)
	r.n.ReverseFailure()
	r.n.Prober.ResetSent()
	rep := r.iso.Isolate(r.vp, r.target)
	if rep.ProbesUsed == 0 || rep.ProbesUsed != r.n.Prober.Sent {
		t.Fatalf("ProbesUsed = %d, prober sent %d", rep.ProbesUsed, r.n.Prober.Sent)
	}
	if rep.ProbesUsed > 500 {
		t.Fatalf("isolation used %d probes; paper-scale budget is ~280", rep.ProbesUsed)
	}
	want := time.Duration(rep.ProbesUsed) * 500 * time.Millisecond
	if rep.EstimatedDuration != want {
		t.Fatalf("EstimatedDuration = %v, want %v", rep.EstimatedDuration, want)
	}
}

func TestIsolationDeterministic(t *testing.T) {
	run := func() topo.ASN {
		r := setup(t)
		r.n.ReverseFailure()
		return r.iso.Isolate(r.vp, r.target).Blamed
	}
	if run() != run() {
		t.Fatal("isolation nondeterministic")
	}
}
