package isolation_test

import (
	"testing"
	"time"

	"lifeguard/internal/atlas"
	"lifeguard/internal/core/isolation"
	"lifeguard/internal/nettest"
)

// BenchmarkIsolateReverseFailure measures one full isolation run — the
// spoofed-ping direction test, working-direction measurement, horizon
// probing, and blame — against a warmed atlas.
func BenchmarkIsolateReverseFailure(b *testing.B) {
	n := nettest.Fig4(b)
	atl := atlas.New(n.Top, n.Prober, n.Clk, atlas.Config{})
	atl.AddVP(n.Hub(nettest.VP1AS))
	atl.AddVP(n.Hub(nettest.VP5AS))
	target := n.Top.Router(n.Hub(nettest.TargetAS)).Addr
	atl.AddTarget(target)
	atl.RefreshAll()
	n.Clk.RunFor(15 * time.Minute)
	atl.RefreshAll()
	iso := isolation.New(n.Top, n.Prober, atl, n.Clk, isolation.Config{})
	n.ReverseFailure()
	vp := n.Hub(nettest.VP1AS)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := iso.Isolate(vp, target)
		if rep.Blamed != nettest.TransitB {
			b.Fatalf("blamed %d", rep.Blamed)
		}
	}
}
