package atlas

import (
	"net/netip"
	"testing"
	"time"

	"lifeguard/internal/nettest"
	"lifeguard/internal/topo"
)

func TestVPsAndTargetsAccessors(t *testing.T) {
	n, a := setup(t, Config{})
	if got := a.VPs(); len(got) != 1 || got[0] != n.Hub(nettest.VP1AS) {
		t.Fatalf("VPs = %v", got)
	}
	if got := a.Targets(); len(got) != 1 {
		t.Fatalf("Targets = %v", got)
	}
}

func TestSortedTargets(t *testing.T) {
	n, a := setup(t, Config{})
	// Add a second, lower-addressed target out of order.
	low := n.Top.Router(n.Hub(nettest.TransitA)).Addr
	a.AddTarget(low)
	got := a.SortedTargets()
	if len(got) != 2 || !got[0].Less(got[1]) {
		t.Fatalf("SortedTargets = %v", got)
	}
}

func TestTargetRouterResolution(t *testing.T) {
	n, a := setup(t, Config{})
	// Router address resolves to that router.
	r3 := n.Hub(nettest.TransitB)
	if got, ok := a.targetRouter(n.Top.Router(r3).Addr); !ok || got != r3 {
		t.Fatalf("targetRouter(router addr) = %v, %v", got, ok)
	}
	// Prefix-hosted address resolves to the owner's hub.
	if got, ok := a.targetRouter(topo.ProductionAddr(nettest.TargetAS)); !ok || got != n.Hub(nettest.TargetAS) {
		t.Fatalf("targetRouter(production) = %v, %v", got, ok)
	}
	// Addresses outside any block fail.
	if _, ok := a.targetRouter(netip.MustParseAddr("203.0.113.9")); ok {
		t.Fatal("foreign address resolved")
	}
	// Addresses in a block whose AS doesn't exist fail.
	if _, ok := a.targetRouter(topo.ProductionAddr(9999)); ok {
		t.Fatal("nonexistent AS resolved")
	}
}

func TestSamePathDisambiguation(t *testing.T) {
	n, a := setup(t, Config{})
	vp := n.Hub(nettest.VP1AS)
	target := n.Top.Router(n.Hub(nettest.TargetAS)).Addr
	a.RefreshAll()
	base := a.Reverse(vp, target)
	if len(base) != 1 {
		t.Fatal("setup")
	}
	// A refresh after a route change records a different path and
	// charges the from-scratch premium again.
	n.Top.AS(nettest.TransitB).MaxOwnASOccurs = 1 // no-op, keeps topology as is
	if !samePath(base[0].Hops, base[0].Hops) {
		t.Fatal("identical paths must compare equal")
	}
	other := append([]PathRecord(nil), base...)
	if samePath(base[0].Hops, other[0].Hops[:len(other[0].Hops)-1]) {
		t.Fatal("different lengths must differ")
	}
}

func TestRefreshRateZeroAtStart(t *testing.T) {
	n := nettest.Fig4(t)
	// A fresh scheduler (clock at 0) yields rate 0, no division by zero.
	// Note nettest's clock has advanced during convergence, so build the
	// atlas against a brand-new scheduler via the zero-time branch.
	a := New(n.Top, n.Prober, n.Clk, Config{})
	if n.Clk.Now() > 0 {
		if got := a.RefreshRatePerMinute(); got != 0 {
			t.Fatalf("no refreshes yet, rate = %v", got)
		}
		return
	}
	if got := a.RefreshRatePerMinute(); got != 0 {
		t.Fatalf("rate at t=0 = %v", got)
	}
}

func TestNoteResponsiveNegativeObservation(t *testing.T) {
	n, a := setup(t, Config{})
	addr := n.Top.Router(n.Hub(nettest.TransitA)).Addr
	a.NoteResponsive(addr, false) // a failed probe proves nothing
	if a.EverResponsive(addr) {
		t.Fatal("negative observation must not set ever-responsive")
	}
	a.NoteResponsive(addr, true)
	if !a.EverResponsive(addr) {
		t.Fatal("positive observation lost")
	}
	a.NoteResponsive(addr, false) // later silence must not erase history
	if !a.EverResponsive(addr) {
		t.Fatal("ever-responsive must be sticky")
	}
	_ = time.Second
}
