package atlas

import (
	"testing"
	"time"

	"lifeguard/internal/nettest"
	"lifeguard/internal/topo"
)

func setup(t *testing.T, cfg Config) (*nettest.Net, *Atlas) {
	t.Helper()
	n := nettest.Fig4(t)
	a := New(n.Top, n.Prober, n.Clk, cfg)
	a.AddVP(n.Hub(nettest.VP1AS))
	a.AddTarget(n.Top.Router(n.Hub(nettest.TargetAS)).Addr)
	return n, a
}

func TestRefreshRecordsBothDirections(t *testing.T) {
	n, a := setup(t, Config{})
	vp := n.Hub(nettest.VP1AS)
	target := n.Top.Router(n.Hub(nettest.TargetAS)).Addr
	a.RefreshAll()
	fwd := a.Forward(vp, target)
	if len(fwd) != 1 || !fwd[0].Reached {
		t.Fatalf("forward records = %+v", fwd)
	}
	if got := fwd[0].ASPath(); !got.Equal(topo.Path{1, 2, 3, 4}) {
		t.Fatalf("forward AS path = %v", got)
	}
	rev := a.Reverse(vp, target)
	if len(rev) != 1 || !rev[0].Reached {
		t.Fatalf("reverse records = %+v", rev)
	}
	if got := rev[0].ASPath(); !got.Equal(topo.Path{4, 3, 2, 1}) {
		t.Fatalf("reverse AS path = %v", got)
	}
}

func TestResponsivenessDB(t *testing.T) {
	n, a := setup(t, Config{})
	hub2 := n.Hub(nettest.TransitA)
	if a.EverResponsive(n.Top.Router(hub2).Addr) {
		t.Fatal("nothing probed yet")
	}
	a.RefreshAll()
	if !a.EverResponsive(n.Top.Router(hub2).Addr) {
		t.Fatal("transit hub should be recorded responsive")
	}
	// A configured-silent router never becomes responsive.
	silent := n.Hub(nettest.TransitB)
	n.Top.Router(silent).Responsive = false
	a2 := New(n.Top, n.Prober, n.Clk, Config{})
	a2.AddVP(n.Hub(nettest.VP1AS))
	a2.AddTarget(n.Top.Router(n.Hub(nettest.TargetAS)).Addr)
	a2.RefreshAll()
	if a2.EverResponsive(n.Top.Router(silent).Addr) {
		t.Fatal("silent router must not be marked responsive")
	}
}

func TestHistoricalHopsUnion(t *testing.T) {
	n, a := setup(t, Config{})
	a.RefreshAll()
	vp := n.Hub(nettest.VP1AS)
	target := n.Top.Router(n.Hub(nettest.TargetAS)).Addr
	hops := a.HistoricalHops(vp, target)
	if len(hops) == 0 {
		t.Fatal("no historical hops")
	}
	seen := map[topo.RouterID]int{}
	for _, h := range hops {
		seen[h.Router]++
		if seen[h.Router] > 1 {
			t.Fatalf("duplicate hop %d", h.Router)
		}
	}
	// Hops from both directions should appear; the reverse path's
	// ingress into AS3 differs from the forward egress, so the union is
	// strictly bigger than either single path.
	fwd := a.Forward(vp, target)[0]
	if len(hops) <= len(fwd.Hops)-1 {
		t.Fatalf("union %d not larger than forward %d", len(hops), len(fwd.Hops))
	}
}

func TestMaxHistoryBound(t *testing.T) {
	n, a := setup(t, Config{MaxHistory: 3})
	for i := 0; i < 6; i++ {
		a.RefreshAll()
		n.Clk.RunFor(time.Minute)
	}
	vp := n.Hub(nettest.VP1AS)
	target := n.Top.Router(n.Hub(nettest.TargetAS)).Addr
	if got := len(a.Forward(vp, target)); got != 3 {
		t.Fatalf("history length = %d, want 3", got)
	}
	recs := a.Forward(vp, target)
	for i := 1; i < len(recs); i++ {
		if recs[i].At < recs[i-1].At {
			t.Fatal("history out of order")
		}
	}
}

func TestAmortizedRefreshCost(t *testing.T) {
	_, a := setup(t, Config{FullMeasureCost: 35})
	a.RefreshAll() // first measurement: full cost
	first := a.pr.ResetSent()
	a.RefreshAll() // unchanged path: incremental cost only
	second := a.pr.ResetSent()
	if second >= first {
		t.Fatalf("steady-state refresh (%d probes) should be cheaper than initial (%d)", second, first)
	}
}

func TestPeriodicRefreshAndStop(t *testing.T) {
	n, a := setup(t, Config{RefreshInterval: 10 * time.Minute})
	a.Start()
	n.Clk.RunUntil(35 * time.Minute)
	if a.PathsRefreshed != 4 { // t=0,10,20,30
		t.Fatalf("PathsRefreshed = %d, want 4", a.PathsRefreshed)
	}
	a.Stop()
	n.Clk.RunUntil(2 * time.Hour)
	if a.PathsRefreshed != 4 {
		t.Fatalf("refresh continued after Stop: %d", a.PathsRefreshed)
	}
}

func TestLatestReverseBefore(t *testing.T) {
	n, a := setup(t, Config{})
	vp := n.Hub(nettest.VP1AS)
	target := n.Top.Router(n.Hub(nettest.TargetAS)).Addr
	base := n.Clk.Now()
	a.RefreshAll() // at base
	n.Clk.RunFor(10 * time.Minute)
	a.RefreshAll() // at base+10m
	n.Clk.RunFor(10 * time.Minute)
	recs := a.LatestReverseBefore(vp, target, base+5*time.Minute)
	if len(recs) != 1 || recs[0].At != base {
		t.Fatalf("records before base+5m = %+v", recs)
	}
	recs = a.LatestReverseBefore(vp, target, base+15*time.Minute)
	if len(recs) != 2 || recs[0].At != base+10*time.Minute {
		t.Fatalf("records before base+15m not newest-first: %+v", recs)
	}
}

func TestReverseRefreshFailsDuringFailure(t *testing.T) {
	n, a := setup(t, Config{})
	a.RefreshAll()
	n.ReverseFailure()
	before := a.PathsRefreshed
	a.RefreshAll()
	if a.PathsRefreshed != before {
		t.Fatal("reverse refresh should fail during reverse-path failure")
	}
	// Forward record is still appended (with stars past the horizon).
	vp := n.Hub(nettest.VP1AS)
	target := n.Top.Router(n.Hub(nettest.TargetAS)).Addr
	fwd := a.Forward(vp, target)
	lastRec := fwd[len(fwd)-1]
	if lastRec.Reached {
		t.Fatal("forward traceroute should not complete during failure")
	}
}

func TestRefreshRate(t *testing.T) {
	n, a := setup(t, Config{RefreshInterval: time.Minute})
	a.Start()
	n.Clk.RunUntil(10 * time.Minute)
	rate := a.RefreshRatePerMinute()
	if rate < 0.9 || rate > 1.3 {
		t.Fatalf("refresh rate = %v paths/min, want ~1.1", rate)
	}
}
