// Package atlas maintains LIFEGUARD's historical path atlas (§4.1.2): the
// regularly-refreshed forward and reverse paths between every vantage point
// and every monitored target, plus a responsiveness database that lets
// isolation distinguish "this router is cut off" from "this router never
// answers probes". The refresher implements the §5.4 cost optimizations:
// re-confirming an unchanged path is much cheaper than measuring one from
// scratch, and per-round caching reuses reverse measurements across
// converging paths.
package atlas

import (
	"net/netip"
	"sort"
	"time"

	"lifeguard/internal/probe"
	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
)

// PathRecord is one historical measurement of a path.
type PathRecord struct {
	At      time.Duration
	Hops    []probe.Hop
	Reached bool
}

// ASPath returns the distinct ASes of the record's responsive hops.
func (r *PathRecord) ASPath() topo.Path {
	var out topo.Path
	for _, h := range r.Hops {
		if h.Star {
			continue
		}
		if len(out) == 0 || out[len(out)-1] != h.AS {
			out = append(out, h.AS)
		}
	}
	return out
}

type pairKey struct {
	vp     topo.RouterID
	target netip.Addr
}

// Config tunes the atlas.
type Config struct {
	// RefreshInterval is the period between automatic refresh rounds
	// once Start is called. Default 15 minutes of virtual time.
	RefreshInterval time.Duration
	// MaxHistory bounds records kept per (vp, target, direction).
	// Default 32.
	MaxHistory int
	// FullMeasureCost is the option-probe cost of measuring a reverse
	// path from scratch (§5.4 cites ~35 for prior work); the prober
	// already charges its incremental cost, and the atlas tops it up to
	// FullMeasureCost when the path is new or changed. Default 35.
	FullMeasureCost int
}

func (c Config) withDefaults() Config {
	if c.RefreshInterval == 0 {
		c.RefreshInterval = 15 * time.Minute
	}
	if c.MaxHistory == 0 {
		c.MaxHistory = 32
	}
	if c.FullMeasureCost == 0 {
		c.FullMeasureCost = 35
	}
	return c
}

// Atlas is the path atlas. Construct with New, register vantage points and
// targets, then call RefreshAll (or Start for periodic refresh).
type Atlas struct {
	top *topo.Topology
	pr  *probe.Prober
	clk *simclock.Scheduler
	cfg Config

	vps     []topo.RouterID
	targets []netip.Addr

	forward map[pairKey][]PathRecord // vp -> target
	reverse map[pairKey][]PathRecord // target -> vp

	// resp records whether an address has ever answered a probe and when
	// it last did.
	resp map[netip.Addr]respEntry

	// PathsRefreshed counts reverse-path refreshes performed, for the
	// §5.4 throughput measurement.
	PathsRefreshed int

	ticker  simclock.EventID
	started bool
}

type respEntry struct {
	ever   bool
	lastOK time.Duration
}

// New returns an empty atlas.
func New(top *topo.Topology, pr *probe.Prober, clk *simclock.Scheduler, cfg Config) *Atlas {
	return &Atlas{
		top: top, pr: pr, clk: clk, cfg: cfg.withDefaults(),
		forward: make(map[pairKey][]PathRecord),
		reverse: make(map[pairKey][]PathRecord),
		resp:    make(map[netip.Addr]respEntry),
	}
}

// AddVP registers a vantage point router.
func (a *Atlas) AddVP(r topo.RouterID) { a.vps = append(a.vps, r) }

// AddTarget registers a monitored destination address.
func (a *Atlas) AddTarget(addr netip.Addr) { a.targets = append(a.targets, addr) }

// VPs returns the registered vantage points.
func (a *Atlas) VPs() []topo.RouterID { return a.vps }

// Targets returns the monitored destinations.
func (a *Atlas) Targets() []netip.Addr { return a.targets }

// targetRouter resolves the router that stands for a target address.
func (a *Atlas) targetRouter(addr netip.Addr) (topo.RouterID, bool) {
	if r, ok := a.top.RouterByAddr(addr); ok {
		return r.ID, true
	}
	owner, ok := topo.OwnerOf(addr)
	if !ok {
		return 0, false
	}
	as := a.top.AS(owner)
	if as == nil || len(as.Routers) == 0 {
		return 0, false
	}
	return as.Routers[0], true
}

// NoteResponsive records an externally-observed probe outcome for addr.
func (a *Atlas) NoteResponsive(addr netip.Addr, ok bool) {
	e := a.resp[addr]
	if ok {
		e.ever = true
		e.lastOK = a.clk.Now()
	}
	a.resp[addr] = e
}

// EverResponsive reports whether addr has ever answered a probe. Isolation
// uses it to exclude configured-silent routers from blame (§4.1.2).
func (a *Atlas) EverResponsive(addr netip.Addr) bool { return a.resp[addr].ever }

// RefreshPair measures and records the forward and reverse paths for one
// (vantage point, target) pair.
func (a *Atlas) RefreshPair(vp topo.RouterID, target netip.Addr) {
	now := a.clk.Now()
	k := pairKey{vp: vp, target: target}

	fwd := a.pr.Traceroute(vp, target)
	a.recordHops(fwd.Hops)
	a.append(a.forward, k, PathRecord{At: now, Hops: fwd.Hops, Reached: fwd.ReachedDst})

	if tr, ok := a.targetRouter(target); ok {
		rev, ok := a.pr.ReverseTraceroute(tr, vp)
		if ok {
			// Reverse-traceroute hops are discovered via IP options, not
			// ICMP echo, so they do not feed the ping-responsiveness DB.
			// Charge the from-scratch premium when the path is new or
			// different from the last record (§5.4 amortization).
			hist := a.reverse[k]
			if len(hist) == 0 || !samePath(hist[len(hist)-1].Hops, rev.Hops) {
				a.pr.Charge(a.cfg.FullMeasureCost - 10)
			}
			a.append(a.reverse, k, PathRecord{At: now, Hops: rev.Hops, Reached: true})
			a.PathsRefreshed++
		}
	}
}

// RefreshAll refreshes every (vp, target) pair once.
func (a *Atlas) RefreshAll() {
	for _, vp := range a.vps {
		for _, t := range a.targets {
			a.RefreshPair(vp, t)
		}
	}
}

// Start schedules periodic RefreshAll rounds on the virtual clock,
// beginning immediately.
func (a *Atlas) Start() {
	if a.started {
		return
	}
	a.started = true
	var tick func()
	tick = func() {
		if !a.started {
			return
		}
		a.RefreshAll()
		a.ticker = a.clk.After(a.cfg.RefreshInterval, tick)
	}
	a.RefreshAll()
	a.ticker = a.clk.After(a.cfg.RefreshInterval, tick)
}

// Stop halts periodic refreshing.
func (a *Atlas) Stop() {
	if a.started {
		a.started = false
		a.clk.Cancel(a.ticker)
	}
}

func (a *Atlas) append(m map[pairKey][]PathRecord, k pairKey, rec PathRecord) {
	h := append(m[k], rec)
	if len(h) > a.cfg.MaxHistory {
		h = h[len(h)-a.cfg.MaxHistory:]
	}
	m[k] = h
}

func (a *Atlas) recordHops(hops []probe.Hop) {
	for _, h := range hops {
		if !h.Star {
			a.NoteResponsive(h.Addr, true)
		}
	}
}

func samePath(a, b []probe.Hop) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Star != b[i].Star || a[i].Router != b[i].Router {
			return false
		}
	}
	return true
}

// Forward returns the recorded vp→target measurements, oldest first.
func (a *Atlas) Forward(vp topo.RouterID, target netip.Addr) []PathRecord {
	return a.forward[pairKey{vp: vp, target: target}]
}

// Reverse returns the recorded target→vp measurements, oldest first.
func (a *Atlas) Reverse(vp topo.RouterID, target netip.Addr) []PathRecord {
	return a.reverse[pairKey{vp: vp, target: target}]
}

// HistoricalHops returns the union of routers seen on any recorded path
// (both directions) between vp and target, deduplicated, in first-seen
// order across records from newest to oldest. These are the candidate
// failure locations isolation probes.
func (a *Atlas) HistoricalHops(vp topo.RouterID, target netip.Addr) []probe.Hop {
	var out []probe.Hop
	seen := make(map[topo.RouterID]bool)
	add := func(recs []PathRecord) {
		for i := len(recs) - 1; i >= 0; i-- {
			for _, h := range recs[i].Hops {
				if h.Star || seen[h.Router] {
					continue
				}
				seen[h.Router] = true
				out = append(out, h)
			}
		}
	}
	add(a.forward[pairKey{vp: vp, target: target}])
	add(a.reverse[pairKey{vp: vp, target: target}])
	return out
}

// LatestReverseBefore returns the most recent reverse record strictly older
// than cutoff, plus all older ones (newest first), for the §4.1.2 expanding
// suspect-set analysis.
func (a *Atlas) LatestReverseBefore(vp topo.RouterID, target netip.Addr, cutoff time.Duration) []PathRecord {
	recs := a.reverse[pairKey{vp: vp, target: target}]
	var out []PathRecord
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].At < cutoff {
			out = append(out, recs[i])
		}
	}
	return out
}

// RefreshRatePerMinute reports average reverse-path refreshes per virtual
// minute since the atlas started measuring.
func (a *Atlas) RefreshRatePerMinute() float64 {
	mins := a.clk.Now().Minutes()
	if mins <= 0 {
		return 0
	}
	return float64(a.PathsRefreshed) / mins
}

// SortedTargets returns targets in deterministic address order (test aid).
func (a *Atlas) SortedTargets() []netip.Addr {
	out := append([]netip.Addr(nil), a.targets...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
