package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Step is one timeline entry: either a fault injected at At and healed at
// At+For, or (when Check is true) an invariant-checker barrier.
type Step struct {
	// At is when the step fires, in virtual time relative to the start of
	// the run (the target's clock usually isn't at zero — initial BGP
	// convergence already consumed virtual time).
	At time.Duration
	// Check marks a barrier step: the runner drains the control plane and
	// runs the invariant checker instead of injecting anything.
	Check bool
	// Fault is the fault to inject (nil on barrier steps).
	Fault Fault
	// For is how long the fault stays injected before the runner heals
	// it. Zero or negative means the fault is never healed — the final
	// barrier then reports an unhealed-fault violation, which is exactly
	// the lever negative tests use.
	For time.Duration
}

// Script is an ordered fault/barrier timeline. Build one by hand, with
// Parse (text form), or with GenerateScript (seeded, outage-calibrated).
type Script struct {
	Steps []Step
}

// String renders the canonical text form: one step per line, sorted by
// (time, kind), faults in their Fault.String() syntax. Parse round-trips
// it, and the byte-identity contracts compare reports built from it.
func (s *Script) String() string {
	steps := append([]Step(nil), s.Steps...)
	sortSteps(steps)
	var b strings.Builder
	for _, st := range steps {
		if st.Check {
			fmt.Fprintf(&b, "at %v check\n", st.At)
			continue
		}
		if st.For > 0 {
			fmt.Fprintf(&b, "at %v for %v %s\n", st.At, st.For, st.Fault)
		} else {
			fmt.Fprintf(&b, "at %v %s\n", st.At, st.Fault)
		}
	}
	return b.String()
}

// Validate checks every fault against the target; the first error wins.
func (s *Script) Validate(t *Target) error {
	if err := t.validate(); err != nil {
		return err
	}
	for i, st := range s.Steps {
		if st.Check {
			continue
		}
		if st.Fault == nil {
			return fmt.Errorf("chaos: step %d has neither fault nor check", i)
		}
		if err := st.Fault.Validate(t); err != nil {
			return fmt.Errorf("chaos: step %d (%s): %w", i, st.Fault, err)
		}
	}
	return nil
}

// End returns the virtual time of the last scheduled action (latest of all
// step times and heal times).
func (s *Script) End() time.Duration {
	var end time.Duration
	for _, st := range s.Steps {
		t := st.At
		if !st.Check && st.For > 0 {
			t += st.For
		}
		if t > end {
			end = t
		}
	}
	return end
}

// sortSteps orders steps by time, barriers after faults at the same
// instant (a same-time check observes that instant's injections), with the
// original order as the final tiebreak so sorting is deterministic.
func sortSteps(steps []Step) {
	sort.SliceStable(steps, func(i, j int) bool {
		if steps[i].At != steps[j].At {
			return steps[i].At < steps[j].At
		}
		return !steps[i].Check && steps[j].Check
	})
}
