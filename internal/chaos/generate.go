package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"lifeguard/internal/outage"
	"lifeguard/internal/topo"
)

// GenConfig parameterizes the stochastic script generator. Timing, kind,
// direction, and partiality come from internal/outage's calibrated
// distributions (EC2 duration tail, 38% link share, §4.1 direction mix);
// this config only adds what a *live* injection needs: sites, intensity,
// and barrier placement.
type GenConfig struct {
	// Seed drives both the outage workload and the site/parameter draws.
	Seed int64
	// N is the number of faults to schedule. Default 5.
	N int
	// Intensity scales fault density: mean interarrival is divided by it,
	// so 2.0 packs faults twice as tight. Default 1.
	Intensity float64
	// Outage overrides the calibrated outage distributions. Zero values
	// keep the paper-calibrated defaults, except MaxDuration which the
	// generator caps at 10 minutes by default so scripts stay runnable
	// (the EC2 tail reaches 72h).
	Outage outage.Config
	// Avoid lists ASes never picked as fault sites (typically the origin
	// and vantage points, which the paper assumes stay up).
	Avoid []topo.ASN
	// CheckEvery inserts an invariant barrier after every k-th fault's
	// heal time. 0 means only the implicit final barrier the Runner adds.
	CheckEvery int
	// Settle is the quiet gap between a heal and the barrier it triggers,
	// and between the last heal and the end of the script. Default 2m.
	Settle time.Duration
}

func (c GenConfig) withDefaults() GenConfig {
	if c.N == 0 {
		c.N = 5
	}
	if c.Intensity == 0 {
		c.Intensity = 1
	}
	if c.Settle == 0 {
		c.Settle = 2 * time.Minute
	}
	if c.Outage.MaxDuration == 0 {
		c.Outage.MaxDuration = 10 * time.Minute
	}
	if c.Outage.MeanInterarrival == 0 {
		c.Outage.MeanInterarrival = 5 * time.Minute
	}
	c.Outage.MeanInterarrival = time.Duration(float64(c.Outage.MeanInterarrival) / c.Intensity)
	return c
}

// GenerateScript samples a fault timeline for the topology. Each outage
// event's (kind, direction, partiality, duration) maps onto the fault
// vocabulary:
//
//	link + forward/reverse      → oneway (the directed drop)
//	link + bidirectional        → partial: delay; full: sessionreset
//	                              (<5m) or linkdown (≥5m)
//	internal + forward/reverse  → blackhole toward a victim's block
//	internal + bidi + partial   → loss (probabilistic)
//	internal + bidi + full      → crash
//
// The same (topology, config) always yields the same script: sites are
// drawn with a generator-private rng over the topology's deterministic AS
// and adjacency orderings.
func GenerateScript(top *topo.Topology, cfg GenConfig) (*Script, error) {
	cfg = cfg.withDefaults()
	ocfg := cfg.Outage
	ocfg.Seed = cfg.Seed
	ocfg.N = cfg.N
	events := outage.Generate(ocfg)

	avoid := make(map[topo.ASN]bool, len(cfg.Avoid))
	for _, a := range cfg.Avoid {
		avoid[a] = true
	}
	var sites []topo.ASN
	for _, asn := range top.ASNs() {
		if !avoid[asn] {
			sites = append(sites, asn)
		}
	}
	var links [][2]topo.ASN
	for _, a := range sites {
		for _, b := range top.Neighbors(a) {
			if a < b && !avoid[b] {
				links = append(links, [2]topo.ASN{a, b})
			}
		}
	}
	if len(sites) < 2 {
		return nil, fmt.Errorf("chaos: topology has %d eligible fault sites, need 2", len(sites))
	}
	if len(links) == 0 {
		return nil, fmt.Errorf("chaos: no eligible adjacency to fault")
	}

	// A private stream for site/parameter draws, decoupled from the outage
	// workload so tweaking one distribution never reshuffles the other.
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5F4A7C15))
	var s Script
	for i, ev := range events {
		f := faultFor(ev, rng, sites, links)
		s.Steps = append(s.Steps, Step{At: ev.Start, Fault: f, For: ev.Duration})
		if cfg.CheckEvery > 0 && (i+1)%cfg.CheckEvery == 0 {
			s.Steps = append(s.Steps, Step{At: ev.End() + cfg.Settle, Check: true})
		}
	}
	s.Steps = append(s.Steps, Step{At: s.End() + cfg.Settle, Check: true})
	sortSteps(s.Steps)
	return &s, nil
}

func faultFor(ev outage.Event, rng *rand.Rand, sites []topo.ASN, links [][2]topo.ASN) Fault {
	pickAS := func() topo.ASN { return sites[rng.Intn(len(sites))] }
	pickLink := func() [2]topo.ASN { return links[rng.Intn(len(links))] }

	if ev.Kind == outage.ASLink {
		l := pickLink()
		switch {
		case ev.Direction == outage.Forward:
			return &OneWayLoss{From: l[0], To: l[1]}
		case ev.Direction == outage.Reverse:
			return &OneWayLoss{From: l[1], To: l[0]}
		case ev.Partial:
			// Some control-plane capacity survives: updates crawl.
			d := ev.Duration / 4
			if d > 30*time.Second {
				d = 30 * time.Second
			}
			if d < time.Second {
				d = time.Second
			}
			return &UpdateDelay{A: l[0], B: l[1], Delay: d}
		case ev.Duration < 5*time.Minute:
			return &SessionReset{A: l[0], B: l[1]}
		default:
			return &LinkDown{A: l[0], B: l[1]}
		}
	}
	site := pickAS()
	switch {
	case ev.Direction != outage.Bidirectional:
		victim := pickAS()
		for victim == site {
			victim = pickAS()
		}
		return &BlackholeTowards{AS: site, Dst: topo.Block(victim)}
	case ev.Partial:
		return &PacketLoss{AS: site, Prob: 0.2 + 0.6*rng.Float64(), Seed: rng.Uint64()}
	default:
		return &RouterCrash{AS: site}
	}
}
