package chaos

import (
	"fmt"
	"net/netip"

	"lifeguard/internal/bgp"
	"lifeguard/internal/topo"
)

// The hijack fault family models an adversary originating someone else's
// address space — the attack class LIFEGUARD's own monitor is blind to
// (it repairs paths, it does not police origins) and the one the ARTEMIS
// detection/mitigation plane in internal/hijack exists for. All three are
// plain reversible faults: Inject announces from the rogue AS through the
// ordinary engine machinery (so propagation, policy, and MRAI behave as
// for any announcement) and Heal withdraws.

// OriginHijack makes Rogue originate Prefix — an exact-prefix origin
// hijack. Only ASes that prefer the rogue's announcement under the normal
// decision process are captured, which is what makes the attack partial
// and placement-dependent.
type OriginHijack struct {
	Rogue  topo.ASN
	Prefix netip.Prefix
}

// Kind implements Fault.
func (f *OriginHijack) Kind() string { return "hijack" }

// String implements Fault.
func (f *OriginHijack) String() string { return fmt.Sprintf("hijack %d %v", f.Rogue, f.Prefix) }

// Validate implements Fault.
func (f *OriginHijack) Validate(t *Target) error {
	if err := requireHijackable(t, f.Rogue, f.Prefix); err != nil {
		return err
	}
	victim, ok := originOf(t, f.Prefix)
	if !ok {
		return fmt.Errorf("chaos: hijack %v: nobody originates that prefix", f.Prefix)
	}
	if victim == f.Rogue {
		return fmt.Errorf("chaos: hijack %v: AS %d already originates it", f.Prefix, f.Rogue)
	}
	return nil
}

// Inject implements Fault.
func (f *OriginHijack) Inject(t *Target) { t.Eng.Announce(f.Rogue, f.Prefix, bgp.OriginConfig{}) }

// Heal implements Fault.
func (f *OriginHijack) Heal(t *Target) { t.Eng.Withdraw(f.Rogue, f.Prefix) }

// SubPrefixHijack makes Rogue originate a more-specific of someone else's
// prefix. Longest-prefix match means every AS that accepts the route at
// all diverts traffic to the rogue — the total-capture variant ARTEMIS
// calls a sub-prefix hijack, and the case where the victim cannot simply
// de-aggregate back (the rogue is already at the specificity frontier).
type SubPrefixHijack struct {
	Rogue  topo.ASN
	Prefix netip.Prefix // the more-specific the rogue announces
}

// Kind implements Fault.
func (f *SubPrefixHijack) Kind() string { return "subhijack" }

// String implements Fault.
func (f *SubPrefixHijack) String() string { return fmt.Sprintf("subhijack %d %v", f.Rogue, f.Prefix) }

// Validate implements Fault.
func (f *SubPrefixHijack) Validate(t *Target) error {
	if err := requireHijackable(t, f.Rogue, f.Prefix); err != nil {
		return err
	}
	if _, taken := originOf(t, f.Prefix); taken {
		return fmt.Errorf("chaos: subhijack %v: prefix is originated exactly (use hijack)", f.Prefix)
	}
	if _, ok := coveringOriginOf(t, f.Prefix); !ok {
		return fmt.Errorf("chaos: subhijack %v: no AS originates a covering less-specific", f.Prefix)
	}
	return nil
}

// Inject implements Fault.
func (f *SubPrefixHijack) Inject(t *Target) { t.Eng.Announce(f.Rogue, f.Prefix, bgp.OriginConfig{}) }

// Heal implements Fault.
func (f *SubPrefixHijack) Heal(t *Target) { t.Eng.Withdraw(f.Rogue, f.Prefix) }

// ForgedOrigin makes Rogue announce Victim's prefix with a forged AS path
// [Rogue Victim]: the true origin appears last, so origin-only filters see
// nothing wrong, and the hijack is visible only as an impossible adjacency
// in the middle of the path (Rogue claims a link to Victim that the
// topology does not contain). This is ARTEMIS's "type-1" / fake-first-hop
// attack, and the reason the detector cross-checks path adjacencies rather
// than just origins.
type ForgedOrigin struct {
	Rogue  topo.ASN
	Victim topo.ASN
	Prefix netip.Prefix
}

// Kind implements Fault.
func (f *ForgedOrigin) Kind() string { return "forgedorigin" }

// String implements Fault.
func (f *ForgedOrigin) String() string {
	return fmt.Sprintf("forgedorigin %d %d %v", f.Rogue, f.Victim, f.Prefix)
}

// Validate implements Fault.
func (f *ForgedOrigin) Validate(t *Target) error {
	if err := requireHijackable(t, f.Rogue, f.Prefix); err != nil {
		return err
	}
	if err := requireAS(t, f.Victim); err != nil {
		return err
	}
	if f.Rogue == f.Victim {
		return fmt.Errorf("chaos: forgedorigin: rogue and victim are both AS %d", f.Rogue)
	}
	if t.Top.Adjacent(f.Rogue, f.Victim) {
		return fmt.Errorf("chaos: forgedorigin: AS %d and AS %d are adjacent — the forged link would be real", f.Rogue, f.Victim)
	}
	victim, ok := originOf(t, f.Prefix)
	if !ok || victim != f.Victim {
		return fmt.Errorf("chaos: forgedorigin: AS %d does not originate %v", f.Victim, f.Prefix)
	}
	return nil
}

// Inject implements Fault.
func (f *ForgedOrigin) Inject(t *Target) {
	if err := t.Eng.AnnounceForged(f.Rogue, f.Prefix, topo.Path{f.Rogue, f.Victim}); err != nil {
		panic(err)
	}
}

// Heal implements Fault.
func (f *ForgedOrigin) Heal(t *Target) { t.Eng.Withdraw(f.Rogue, f.Prefix) }

// requireHijackable gathers the checks all hijack variants share: the rogue
// exists and the prefix is a masked IPv4 prefix the engine will accept.
func requireHijackable(t *Target, rogue topo.ASN, p netip.Prefix) error {
	if err := requireAS(t, rogue); err != nil {
		return err
	}
	if !p.IsValid() || !p.Addr().Is4() || p != p.Masked() {
		return fmt.Errorf("chaos: hijack prefix %v is not a masked IPv4 prefix", p)
	}
	return nil
}

// originOf scans the engine's origin tables for the AS originating prefix
// exactly. Ambiguous prefixes (already originated by more than one AS —
// e.g. a previous hijack) report the lowest ASN, which is fine for the
// fail-fast validation this backs.
func originOf(t *Target, prefix netip.Prefix) (topo.ASN, bool) {
	for _, asn := range t.Top.ASNs() {
		for _, o := range t.Eng.Origins(asn) {
			if o.Prefix == prefix {
				return asn, true
			}
		}
	}
	return 0, false
}

// coveringOriginOf finds the AS originating the longest strict less-specific
// covering prefix.
func coveringOriginOf(t *Target, prefix netip.Prefix) (topo.ASN, bool) {
	best := -1
	var owner topo.ASN
	for _, asn := range t.Top.ASNs() {
		for _, o := range t.Eng.Origins(asn) {
			if o.Prefix.Bits() < prefix.Bits() && o.Prefix.Contains(prefix.Addr()) && o.Prefix.Bits() > best {
				best, owner = o.Prefix.Bits(), asn
			}
		}
	}
	return owner, best >= 0
}
