package chaos

import (
	"fmt"
	"hash/fnv"
	"net/netip"
	"sort"
	"time"

	"lifeguard/internal/dataplane"
	"lifeguard/internal/obs"
	"lifeguard/internal/topo"
)

// Invariant names one checked property.
type Invariant string

// The checked invariants. Loop and RIB checks run at every barrier;
// baseline, reachability, and origin authenticity only when no fault is
// active (a healthy network must look healthy); unhealed runs at the final
// barrier.
const (
	// InvForwardLoop: no AS-level forwarding loop in any LPM walk.
	InvForwardLoop Invariant = "forward-loop"
	// InvRIBConsistency: every selected route's next hop is an adjacent
	// AS with a live session, and no path routes through its own AS.
	InvRIBConsistency Invariant = "rib-consistency"
	// InvConvergence: the control plane drains within the barrier budget.
	InvConvergence Invariant = "convergence"
	// InvBaseline: with all faults healed, every loc-RIB returns to the
	// pre-chaos baseline (fingerprint match).
	InvBaseline Invariant = "baseline-divergence"
	// InvReachability: with all faults healed, every configured probe
	// pair delivers.
	InvReachability Invariant = "sentinel-unreachable"
	// InvUnhealed: no fault is still active when the run ends.
	InvUnhealed Invariant = "unhealed-fault"
	// InvOriginAuth: with all faults healed, every best route's origin is
	// the AS that owned the covering prefix before chaos began — no
	// lingering hijacked state (a rogue origin, or a forged path claiming
	// the true origin) survives in any loc-RIB.
	InvOriginAuth Invariant = "origin-hijacked"
)

// Violation is one invariant breach, stamped with the barrier's virtual
// time. It is both a typed error and a journaled event.
type Violation struct {
	At        time.Duration
	Invariant Invariant
	Detail    string
}

// Error implements error.
func (v Violation) Error() string {
	return fmt.Sprintf("chaos: %v: %s at %v", v.Invariant, v.Detail, v.At)
}

// ReachProbe is one data-plane reachability assertion checked at
// all-healed barriers: a packet from From must reach To. Callers point it
// at sentinel or production addresses (the paper's reachability signal).
type ReachProbe struct {
	From topo.RouterID
	To   netip.Addr
}

// checker runs the invariant suite against a target. It is owned by the
// Runner; all methods run on the simulation goroutine.
type checker struct {
	tgt        *Target
	reach      []ReachProbe
	baseline   uint64
	violations []Violation

	// owners is the pre-chaos prefix→origin table for the origin-
	// authenticity check, snapshotted at arm time; ownerPrefixes holds its
	// keys most-specific-first so covering lookups are deterministic.
	owners        map[netip.Prefix]topo.ASN
	ownerPrefixes []netip.Prefix
}

// armOwners snapshots which AS legitimately originates which prefix, taken
// over the converged pre-chaos network. A prefix originated by more than
// one AS at arm time (anycast-style) has no single owner and is excluded
// from the authenticity check.
func (c *checker) armOwners() {
	c.owners = make(map[netip.Prefix]topo.ASN)
	ambiguous := make(map[netip.Prefix]bool)
	for _, asn := range c.tgt.Top.ASNs() {
		for _, o := range c.tgt.Eng.Origins(asn) {
			if prev, dup := c.owners[o.Prefix]; dup && prev != asn {
				ambiguous[o.Prefix] = true
				continue
			}
			c.owners[o.Prefix] = asn
		}
	}
	c.ownerPrefixes = c.ownerPrefixes[:0]
	for p := range c.owners {
		if ambiguous[p] {
			delete(c.owners, p)
			continue
		}
		c.ownerPrefixes = append(c.ownerPrefixes, p)
	}
	// Most-specific first, address as the tiebreak: ownerOf's first
	// containing hit is then the longest covering owner.
	sort.Slice(c.ownerPrefixes, func(i, j int) bool {
		a, b := c.ownerPrefixes[i], c.ownerPrefixes[j]
		if a.Bits() != b.Bits() {
			return a.Bits() > b.Bits()
		}
		return a.Addr().Less(b.Addr())
	})
}

// ownerOf resolves the legitimate origin for prefix p: an exact table hit,
// else the owner of the longest covering less-specific (so an owner's own
// de-aggregated more-specifics — the hijack responder's mitigation — count
// as authentic). False when p falls under no owned space.
func (c *checker) ownerOf(p netip.Prefix) (topo.ASN, bool) {
	if asn, ok := c.owners[p]; ok {
		return asn, true
	}
	for _, op := range c.ownerPrefixes {
		if op.Bits() < p.Bits() && op.Contains(p.Addr()) {
			return c.owners[op], true
		}
	}
	return 0, false
}

// checkOriginAuth asserts origin authenticity over every loc-RIB: the AS a
// best route says originated the prefix must be the arm-time owner. Run
// only at zero-active-fault barriers — while a hijack fault is live the
// whole point is that this property is broken.
func (c *checker) checkOriginAuth() {
	if c.owners == nil {
		return
	}
	for _, asn := range c.tgt.Top.ASNs() {
		sp := c.tgt.Eng.Speaker(asn)
		for _, p := range sp.KnownPrefixes() {
			r, ok := sp.Best(p)
			if !ok {
				continue
			}
			owner, ok := c.ownerOf(p)
			if !ok {
				continue
			}
			claimed := asn // originated routes claim the holder itself
			if !r.Originated {
				var okO bool
				if claimed, okO = r.Path.Origin(); !okO {
					continue // empty non-originated path: checkRIB's problem
				}
			}
			if claimed != owner {
				c.report(InvOriginAuth,
					fmt.Sprintf("AS%d best route for %v claims origin AS%d, owner is AS%d (path %v)",
						asn, p, claimed, owner, r.Path))
			}
		}
	}
}

// fingerprint hashes every AS's loc-RIB — (asn, prefix, path) in the
// deterministic (ASNs, sorted prefixes) order — into one FNV-1a word.
// Identical routing state ⇒ identical fingerprint, and the repo's map-order
// discipline makes the converse reliable in practice.
func (c *checker) fingerprint() uint64 {
	h := fnv.New64a()
	for _, asn := range c.tgt.Top.ASNs() {
		sp := c.tgt.Eng.Speaker(asn)
		for _, p := range sp.KnownPrefixes() {
			r, ok := sp.Best(p)
			if !ok {
				continue
			}
			fmt.Fprintf(h, "%d|%v|%v\n", asn, p, r.Path)
		}
	}
	return h.Sum64()
}

// report records a violation and journals it.
func (c *checker) report(inv Invariant, detail string) {
	v := Violation{At: c.tgt.Clk.Now(), Invariant: inv, Detail: detail}
	c.violations = append(c.violations, v)
	c.tgt.journal("violation", obs.F("invariant", inv), obs.F("detail", detail))
}

// checkLoops walks the AS-level forwarding graph from every AS toward every
// other AS's hub address and reports any cycle. The walk follows
// Engine.Lookup next hops — the same LPM state the data plane uses — so a
// cycle here is a packet that would ping-pong until TTL death.
func (c *checker) checkLoops() {
	top := c.tgt.Top
	asns := top.ASNs()
	for _, dst := range asns {
		addr := top.Router(top.AS(dst).Routers[0]).Addr
		for _, src := range asns {
			if src == dst {
				continue
			}
			seen := map[topo.ASN]bool{src: true}
			cur := src
			for {
				r, ok := c.tgt.Eng.Lookup(cur, addr)
				if !ok {
					break // no route: a drop, not a loop
				}
				nh, ok := r.NextHop()
				if !ok {
					break // originated: delivered
				}
				if seen[nh] {
					c.report(InvForwardLoop,
						fmt.Sprintf("AS%d toward AS%d (%v) revisits AS%d", src, dst, addr, nh))
					break
				}
				seen[nh] = true
				cur = nh
			}
		}
	}
}

// checkRIB verifies structural loc-RIB sanity for every AS: selected routes
// must point at adjacent neighbors over live sessions, and no route's path
// may contain the AS holding it (BGP loop prevention).
func (c *checker) checkRIB() {
	top := c.tgt.Top
	for _, asn := range top.ASNs() {
		sp := c.tgt.Eng.Speaker(asn)
		for _, p := range sp.KnownPrefixes() {
			r, ok := sp.Best(p)
			if !ok {
				continue
			}
			if r.Originated {
				continue
			}
			nh, ok := r.NextHop()
			if !ok {
				c.report(InvRIBConsistency,
					fmt.Sprintf("AS%d route for %v has empty path but is not originated", asn, p))
				continue
			}
			if !top.Adjacent(asn, nh) {
				c.report(InvRIBConsistency,
					fmt.Sprintf("AS%d route for %v has non-adjacent next hop AS%d", asn, p, nh))
			}
			if c.tgt.Eng.AdjacencyDown(asn, nh) {
				c.report(InvRIBConsistency,
					fmt.Sprintf("AS%d route for %v uses down session to AS%d", asn, p, nh))
			}
			if r.Path.Contains(asn) {
				c.report(InvRIBConsistency,
					fmt.Sprintf("AS%d route for %v loops through itself: %v", asn, p, r.Path))
			}
		}
	}
}

// checkBaseline compares the current loc-RIB fingerprint to the pre-chaos
// one. Only meaningful with zero active faults.
func (c *checker) checkBaseline() {
	if fp := c.fingerprint(); fp != c.baseline {
		c.report(InvBaseline,
			fmt.Sprintf("loc-RIB fingerprint %016x differs from baseline %016x", fp, c.baseline))
	}
}

// checkReach forwards one packet per configured probe pair. Only meaningful
// with zero active faults.
func (c *checker) checkReach() {
	for _, pr := range c.reach {
		src := c.tgt.Top.Router(pr.From).Addr
		res := c.tgt.Plane.Forward(pr.From, dataplane.Packet{Src: src, Dst: pr.To})
		if !res.Delivered() {
			c.report(InvReachability,
				fmt.Sprintf("probe from router %d to %v dropped: %v at AS%d",
					pr.From, pr.To, res.Reason, res.LastAS))
		}
	}
}
