// Package chaos is a deterministic, simclock-driven fault-injection engine
// for the LIFEGUARD reproduction. It turns the hand-placed static failures
// of earlier test code into *scheduled timelines*: a script of reversible
// faults (link cuts, unidirectional loss, probabilistic packet loss, BGP
// session resets, router crash/restart, control-plane slowdowns) injected
// and healed at scripted virtual times, with an invariant checker run at
// barriers (no forwarding loops, RIB consistency, sentinel reachability,
// and "all faults healed ⇒ the control plane converges back to baseline").
//
// Everything is deterministic under the repo-wide contracts: faults fire at
// virtual times on the shared simclock.Scheduler, the stochastic script
// generator consumes only injected seeds (through internal/outage's
// calibrated distributions), and probabilistic loss delegates to the data
// plane's pure-hash verdicts — so one seed replays one timeline, byte for
// byte, at any parallelism.
package chaos

import (
	"fmt"

	"lifeguard/internal/bgp"
	"lifeguard/internal/dataplane"
	"lifeguard/internal/obs"
	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
)

// Target is the simulated internetwork a chaos run mutates. It mirrors the
// facade's Network bundle without importing it (the root package re-exports
// a constructor), so experiments and tests can aim chaos at hand-built rigs
// too. Journal may be nil (events are then discarded). Control is optional:
// only targets that host LIFEGUARD sessions (the facade's Rig) have
// control planes to crash, and only the crashcontrol fault needs it.
type Target struct {
	Top     *topo.Topology
	Clk     *simclock.Scheduler
	Eng     *bgp.Engine
	Plane   *dataplane.Plane
	Journal *obs.Journal
	Control ControlPlane
}

// ControlPlane lets chaos crash and restore a tenant's LIFEGUARD control
// plane — monitor, isolation, and repair engine — while the simulated
// internetwork (and the tenant's announced routes) keeps running. The
// facade's Rig implements it; restart semantics (graceful or not) are the
// session's own policy, not the fault's.
type ControlPlane interface {
	// HasControl reports whether origin hosts a crashable control plane.
	HasControl(origin topo.ASN) bool
	// CrashControl takes origin's control plane down.
	CrashControl(origin topo.ASN)
	// RestoreControl brings it back up.
	RestoreControl(origin topo.ASN)
}

// validate reports the first missing mandatory component.
func (t *Target) validate() error {
	switch {
	case t == nil:
		return fmt.Errorf("chaos: nil target")
	case t.Top == nil:
		return fmt.Errorf("chaos: target has no topology")
	case t.Clk == nil:
		return fmt.Errorf("chaos: target has no clock")
	case t.Eng == nil:
		return fmt.Errorf("chaos: target has no BGP engine")
	case t.Plane == nil:
		return fmt.Errorf("chaos: target has no data plane")
	}
	return nil
}

// journal records a chaos event when the target has a journal attached.
func (t *Target) journal(kind string, fields ...obs.Field) {
	if t.Journal.Enabled() {
		t.Journal.Record(t.Clk.Now(), "chaos", kind, fields...)
	}
}
