package chaos

import (
	"fmt"
	"net/netip"
	"strconv"
	"time"

	"lifeguard/internal/bgp"
	"lifeguard/internal/dataplane"
	"lifeguard/internal/topo"
)

// Fault is one reversible failure. Inject applies it to the target and Heal
// undoes it; both are driven by the Runner at scripted virtual times. A
// fault value carries its own revert state (failure IDs, captured origin
// announcements), so each value belongs to one script and must not be
// injected twice without an intervening Heal.
//
// String returns the fault in canonical script syntax — Parse(String())
// round-trips — which is also how faults are journaled and reported.
type Fault interface {
	// Kind is the script keyword ("linkdown", "oneway", ...).
	Kind() string
	// String renders the canonical script form, e.g. "linkdown 3 7".
	String() string
	// Validate checks the fault is applicable to the target's topology
	// before the run starts, so a bad script fails fast and atomically.
	Validate(t *Target) error
	// Inject applies the fault.
	Inject(t *Target)
	// Heal reverts it.
	Heal(t *Target)
}

// LinkDown cuts the A–B adjacency completely: the BGP session drops (both
// sides withdraw routes learned over it — a failure the protocol *sees*)
// and the data plane stops carrying packets across the link in either
// direction. The LIFEGUARD-relevant part is the healing churn: routes
// converge away and back.
type LinkDown struct {
	A, B topo.ASN

	ids [2]dataplane.FailureID
}

// Kind implements Fault.
func (f *LinkDown) Kind() string { return "linkdown" }

// String implements Fault.
func (f *LinkDown) String() string { return fmt.Sprintf("linkdown %d %d", f.A, f.B) }

// Validate implements Fault.
func (f *LinkDown) Validate(t *Target) error { return requireAdjacent(t, f.A, f.B) }

// Inject implements Fault.
func (f *LinkDown) Inject(t *Target) {
	t.Eng.SetAdjacencyDown(f.A, f.B, true)
	f.ids[0] = t.Plane.AddFailure(dataplane.DropASLink(f.A, f.B))
	f.ids[1] = t.Plane.AddFailure(dataplane.DropASLink(f.B, f.A))
}

// Heal implements Fault.
func (f *LinkDown) Heal(t *Target) {
	t.Plane.RemoveFailure(f.ids[0])
	t.Plane.RemoveFailure(f.ids[1])
	t.Eng.SetAdjacencyDown(f.A, f.B, false)
}

// OneWayLoss silently drops all traffic crossing the From→To direction of
// an adjacency while the reverse direction keeps working — the asymmetric
// failure mode of PAPER.md §4 that makes isolation hard: BGP sessions stay
// up, so only data-plane measurement can see it.
type OneWayLoss struct {
	From, To topo.ASN

	id dataplane.FailureID
}

// Kind implements Fault.
func (f *OneWayLoss) Kind() string { return "oneway" }

// String implements Fault.
func (f *OneWayLoss) String() string { return fmt.Sprintf("oneway %d %d", f.From, f.To) }

// Validate implements Fault.
func (f *OneWayLoss) Validate(t *Target) error { return requireAdjacent(t, f.From, f.To) }

// Inject implements Fault.
func (f *OneWayLoss) Inject(t *Target) {
	f.id = t.Plane.AddFailure(dataplane.DropASLink(f.From, f.To))
}

// Heal implements Fault.
func (f *OneWayLoss) Heal(t *Target) { t.Plane.RemoveFailure(f.id) }

// PacketLoss makes AS drop each forwarded packet independently with
// probability Prob. The verdict is the data plane's pure hash of
// (Seed, packet sequence), so a run replays identically (see
// dataplane.Rule.DropProb).
type PacketLoss struct {
	AS   topo.ASN
	Prob float64
	Seed uint64

	id dataplane.FailureID
}

// Kind implements Fault.
func (f *PacketLoss) Kind() string { return "loss" }

// String implements Fault.
func (f *PacketLoss) String() string {
	return fmt.Sprintf("loss %d %s %d", f.AS, strconv.FormatFloat(f.Prob, 'g', -1, 64), f.Seed)
}

// Validate implements Fault.
func (f *PacketLoss) Validate(t *Target) error {
	if err := requireAS(t, f.AS); err != nil {
		return err
	}
	if f.Prob <= 0 || f.Prob >= 1 {
		return fmt.Errorf("chaos: loss probability %v outside (0, 1)", f.Prob)
	}
	return nil
}

// Inject implements Fault.
func (f *PacketLoss) Inject(t *Target) {
	f.id = t.Plane.AddFailure(dataplane.LossyAS(f.AS, f.Prob, f.Seed))
}

// Heal implements Fault.
func (f *PacketLoss) Heal(t *Target) { t.Plane.RemoveFailure(f.id) }

// SessionReset fails only the BGP session between A and B; the data plane
// underneath keeps forwarding whatever routes remain. This is the visible,
// self-healing failure class that dominates Fig. 1's event count.
type SessionReset struct {
	A, B topo.ASN
}

// Kind implements Fault.
func (f *SessionReset) Kind() string { return "sessionreset" }

// String implements Fault.
func (f *SessionReset) String() string { return fmt.Sprintf("sessionreset %d %d", f.A, f.B) }

// Validate implements Fault.
func (f *SessionReset) Validate(t *Target) error { return requireAdjacent(t, f.A, f.B) }

// Inject implements Fault.
func (f *SessionReset) Inject(t *Target) { t.Eng.SetAdjacencyDown(f.A, f.B, true) }

// Heal implements Fault.
func (f *SessionReset) Heal(t *Target) { t.Eng.SetAdjacencyDown(f.A, f.B, false) }

// RouterCrash crashes AS's routing process: every locally-originated prefix
// is withdrawn (captured first, for the restart) and the AS blackholes all
// transit traffic while down. Heal restarts it — the captured announcement
// set is replayed verbatim, exercising the withdraw-all / re-announce
// convergence path.
type RouterCrash struct {
	AS topo.ASN

	saved []bgp.OriginAnnouncement
	id    dataplane.FailureID
}

// Kind implements Fault.
func (f *RouterCrash) Kind() string { return "crash" }

// String implements Fault.
func (f *RouterCrash) String() string { return fmt.Sprintf("crash %d", f.AS) }

// Validate implements Fault.
func (f *RouterCrash) Validate(t *Target) error { return requireAS(t, f.AS) }

// Inject implements Fault.
func (f *RouterCrash) Inject(t *Target) {
	f.saved = t.Eng.Origins(f.AS)
	for _, o := range f.saved {
		t.Eng.Withdraw(f.AS, o.Prefix)
	}
	f.id = t.Plane.AddFailure(dataplane.BlackholeAS(f.AS))
}

// Heal implements Fault.
func (f *RouterCrash) Heal(t *Target) {
	t.Plane.RemoveFailure(f.id)
	for _, o := range f.saved {
		t.Eng.Announce(f.AS, o.Prefix, o.Config)
	}
	f.saved = nil
}

// ControlCrash crashes the LIFEGUARD control plane of the session whose
// origin is AS — monitor rounds stop, isolation and repair decisions are
// suspended — while the simulated internetwork keeps forwarding and the
// session's announced routes stay installed. Heal restores the control
// plane; whether the restart is graceful (stale-route retention + deferred
// re-announce) or a full withdraw/re-announce is the session's configured
// policy. This is the OpenPERouter-style lifecycle decoupling fault: it
// exercises the contract that the data plane survives a control restart.
type ControlCrash struct {
	AS topo.ASN
}

// Kind implements Fault.
func (f *ControlCrash) Kind() string { return "crashcontrol" }

// String implements Fault.
func (f *ControlCrash) String() string { return fmt.Sprintf("crashcontrol %d", f.AS) }

// Validate implements Fault.
func (f *ControlCrash) Validate(t *Target) error {
	if err := requireAS(t, f.AS); err != nil {
		return err
	}
	if t.Control == nil {
		return fmt.Errorf("chaos: crashcontrol %d: target has no control plane hooks", f.AS)
	}
	if !t.Control.HasControl(f.AS) {
		return fmt.Errorf("chaos: crashcontrol %d: no session with that origin", f.AS)
	}
	return nil
}

// Inject implements Fault.
func (f *ControlCrash) Inject(t *Target) { t.Control.CrashControl(f.AS) }

// Heal implements Fault.
func (f *ControlCrash) Heal(t *Target) { t.Control.RestoreControl(f.AS) }

// UpdateDelay slows BGP propagation across the A–B adjacency by Delay per
// message in both directions — a congested or deprioritized control plane.
// Routing stays correct; convergence after other events just takes longer,
// widening the window in which LIFEGUARD must act on stale paths.
type UpdateDelay struct {
	A, B  topo.ASN
	Delay time.Duration
}

// Kind implements Fault.
func (f *UpdateDelay) Kind() string { return "delay" }

// String implements Fault.
func (f *UpdateDelay) String() string { return fmt.Sprintf("delay %d %d %v", f.A, f.B, f.Delay) }

// Validate implements Fault.
func (f *UpdateDelay) Validate(t *Target) error {
	if f.Delay <= 0 {
		return fmt.Errorf("chaos: delay %v must be positive", f.Delay)
	}
	return requireAdjacent(t, f.A, f.B)
}

// Inject implements Fault.
func (f *UpdateDelay) Inject(t *Target) { t.Eng.SetLinkExtraDelay(f.A, f.B, f.Delay) }

// Heal implements Fault.
func (f *UpdateDelay) Heal(t *Target) { t.Eng.SetLinkExtraDelay(f.A, f.B, 0) }

// BlackholeTowards makes AS silently drop traffic it forwards toward Dst —
// the canonical LIFEGUARD failure: a partial, destination-specific
// unidirectional blackhole inside a transit AS, invisible to BGP.
type BlackholeTowards struct {
	AS  topo.ASN
	Dst netip.Prefix

	id dataplane.FailureID
}

// Kind implements Fault.
func (f *BlackholeTowards) Kind() string { return "blackhole" }

// String implements Fault.
func (f *BlackholeTowards) String() string { return fmt.Sprintf("blackhole %d %v", f.AS, f.Dst) }

// Validate implements Fault.
func (f *BlackholeTowards) Validate(t *Target) error {
	if !f.Dst.IsValid() {
		return fmt.Errorf("chaos: blackhole %d: invalid destination prefix", f.AS)
	}
	return requireAS(t, f.AS)
}

// Inject implements Fault.
func (f *BlackholeTowards) Inject(t *Target) {
	f.id = t.Plane.AddFailure(dataplane.BlackholeASTowards(f.AS, f.Dst))
}

// Heal implements Fault.
func (f *BlackholeTowards) Heal(t *Target) { t.Plane.RemoveFailure(f.id) }

func requireAS(t *Target, asn topo.ASN) error {
	if t.Top.AS(asn) == nil {
		return fmt.Errorf("chaos: AS %d not in topology", asn)
	}
	return nil
}

func requireAdjacent(t *Target, a, b topo.ASN) error {
	if err := requireAS(t, a); err != nil {
		return err
	}
	if err := requireAS(t, b); err != nil {
		return err
	}
	if !t.Top.Adjacent(a, b) {
		return fmt.Errorf("chaos: ASes %d and %d are not adjacent", a, b)
	}
	return nil
}
