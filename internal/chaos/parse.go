package chaos

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"lifeguard/internal/topo"
)

// Parse reads the text form of a Script. The grammar is line-oriented:
//
//	at <time> check
//	at <time> [for <duration>] <fault> <args...>
//
// where <time>/<duration> use Go duration syntax ("90s", "2m30s"), omitting
// "for" schedules a fault that is never healed, "#" starts a comment, and
// blank lines are ignored. Fault forms (see fault.go for semantics):
//
//	linkdown <asA> <asB>
//	oneway <asFrom> <asTo>
//	loss <as> <prob> <seed>
//	sessionreset <asA> <asB>
//	crash <as>
//	crashcontrol <originAS>
//	delay <asA> <asB> <duration>
//	blackhole <as> <dstPrefix>
//	hijack <rogueAS> <prefix>
//	subhijack <rogueAS> <moreSpecificPrefix>
//	forgedorigin <rogueAS> <victimAS> <prefix>
//
// Parse(s.String()) reproduces s (canonical order); errors carry the
// 1-based line number.
func Parse(text string) (*Script, error) {
	var s Script
	for lineno, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		step, err := parseStep(fields)
		if err != nil {
			return nil, fmt.Errorf("chaos: line %d: %w", lineno+1, err)
		}
		s.Steps = append(s.Steps, step)
	}
	if len(s.Steps) == 0 {
		return nil, fmt.Errorf("chaos: script has no steps")
	}
	return &s, nil
}

func parseStep(f []string) (Step, error) {
	if f[0] != "at" || len(f) < 3 {
		return Step{}, fmt.Errorf("want %q, got %q", "at <time> ...", strings.Join(f, " "))
	}
	at, err := time.ParseDuration(f[1])
	if err != nil {
		return Step{}, fmt.Errorf("bad time %q: %v", f[1], err)
	}
	f = f[2:]
	st := Step{At: at}
	if f[0] == "check" {
		if len(f) != 1 {
			return Step{}, fmt.Errorf("trailing tokens after check: %q", strings.Join(f[1:], " "))
		}
		st.Check = true
		return st, nil
	}
	if f[0] == "for" {
		if len(f) < 3 {
			return Step{}, fmt.Errorf("want %q", "for <duration> <fault> ...")
		}
		if st.For, err = time.ParseDuration(f[1]); err != nil {
			return Step{}, fmt.Errorf("bad duration %q: %v", f[1], err)
		}
		if st.For <= 0 {
			return Step{}, fmt.Errorf("duration %q not positive (omit \"for\" for a never-healed fault)", f[1])
		}
		f = f[2:]
	}
	if st.Fault, err = parseFault(f); err != nil {
		return Step{}, err
	}
	return st, nil
}

func parseFault(f []string) (Fault, error) {
	kind, args := f[0], f[1:]
	argc := map[string]int{
		"linkdown": 2, "oneway": 2, "loss": 3,
		"sessionreset": 2, "crash": 1, "crashcontrol": 1,
		"delay": 3, "blackhole": 2,
		"hijack": 2, "subhijack": 2, "forgedorigin": 3,
	}
	n, ok := argc[kind]
	if !ok {
		return nil, fmt.Errorf("unknown fault kind %q", kind)
	}
	if len(args) != n {
		return nil, fmt.Errorf("%s wants %d args, got %d", kind, n, len(args))
	}
	switch kind {
	case "linkdown":
		a, b, err := twoASNs(args)
		return &LinkDown{A: a, B: b}, err
	case "oneway":
		a, b, err := twoASNs(args)
		return &OneWayLoss{From: a, To: b}, err
	case "loss":
		asn, err := parseASN(args[0])
		if err != nil {
			return nil, err
		}
		prob, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad probability %q: %v", args[1], err)
		}
		seed, err := strconv.ParseUint(args[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %v", args[2], err)
		}
		return &PacketLoss{AS: asn, Prob: prob, Seed: seed}, nil
	case "sessionreset":
		a, b, err := twoASNs(args)
		return &SessionReset{A: a, B: b}, err
	case "crash":
		asn, err := parseASN(args[0])
		return &RouterCrash{AS: asn}, err
	case "crashcontrol":
		asn, err := parseASN(args[0])
		return &ControlCrash{AS: asn}, err
	case "delay":
		a, b, err := twoASNs(args[:2])
		if err != nil {
			return nil, err
		}
		d, err := time.ParseDuration(args[2])
		if err != nil {
			return nil, fmt.Errorf("bad delay %q: %v", args[2], err)
		}
		return &UpdateDelay{A: a, B: b, Delay: d}, nil
	case "blackhole":
		asn, err := parseASN(args[0])
		if err != nil {
			return nil, err
		}
		dst, err := netip.ParsePrefix(args[1])
		if err != nil {
			return nil, fmt.Errorf("bad prefix %q: %v", args[1], err)
		}
		return &BlackholeTowards{AS: asn, Dst: dst}, nil
	case "hijack", "subhijack":
		asn, err := parseASN(args[0])
		if err != nil {
			return nil, err
		}
		p, err := netip.ParsePrefix(args[1])
		if err != nil {
			return nil, fmt.Errorf("bad prefix %q: %v", args[1], err)
		}
		if kind == "hijack" {
			return &OriginHijack{Rogue: asn, Prefix: p}, nil
		}
		return &SubPrefixHijack{Rogue: asn, Prefix: p}, nil
	case "forgedorigin":
		rogue, victim, err := twoASNs(args[:2])
		if err != nil {
			return nil, err
		}
		p, err := netip.ParsePrefix(args[2])
		if err != nil {
			return nil, fmt.Errorf("bad prefix %q: %v", args[2], err)
		}
		return &ForgedOrigin{Rogue: rogue, Victim: victim, Prefix: p}, nil
	}
	panic("unreachable")
}

func twoASNs(args []string) (a, b topo.ASN, err error) {
	if a, err = parseASN(args[0]); err != nil {
		return
	}
	b, err = parseASN(args[1])
	return
}

func parseASN(s string) (topo.ASN, error) {
	n, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad ASN %q: %v", s, err)
	}
	return topo.ASN(n), nil
}
