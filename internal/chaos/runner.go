package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"lifeguard/internal/obs"
)

// Options tunes a chaos run.
type Options struct {
	// ConvergeBudget bounds the scheduler steps each barrier may spend
	// draining the control plane. Default 200 million (matches the
	// facade's assembly budget).
	ConvergeBudget int
	// Reach lists data-plane reachability probes asserted at all-healed
	// barriers.
	Reach []ReachProbe
	// Obs, when non-nil, receives chaos counters (injections, heals,
	// barriers, violations by invariant). Observe-only by the repo-wide
	// contract: enabling it cannot change the timeline.
	Obs *obs.Registry
}

// Runner executes one Script against one Target. Build with NewRunner; a
// Runner is single-use and runs entirely on the simulation goroutine.
type Runner struct {
	tgt    *Target
	script *Script
	opts   Options
	chk    *checker

	active   map[Fault]bool
	injected int
	healed   int
	barriers int

	mInject, mHeal, mBarrier *obs.Counter
	mViolation               func(Invariant) *obs.Counter
}

// Report summarizes a finished run. Its String form is deterministic —
// same script, same seed, same target state ⇒ identical bytes — which the
// lgchaos CLI and the parallelism identity tests rely on.
type Report struct {
	// Faults and Checks count scripted steps by flavor.
	Faults, Checks int
	// Injected and Healed count fault transitions actually performed.
	Injected, Healed int
	// Barriers counts invariant-checker runs (scripted checks plus the
	// implicit final barrier).
	Barriers int
	// Start and End bound the run in virtual time.
	Start, End time.Duration
	// BaselineFingerprint is the pre-chaos loc-RIB hash.
	BaselineFingerprint uint64
	// Violations holds every invariant breach in detection order.
	Violations []Violation
}

// Failed reports whether any invariant was violated.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// Err returns the first violation as an error, or nil.
func (r *Report) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return r.Violations[0]
}

// String renders the deterministic report block.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: %d faults, %d scripted checks\n", r.Faults, r.Checks)
	fmt.Fprintf(&b, "  injected %d, healed %d, barriers %d\n", r.Injected, r.Healed, r.Barriers)
	fmt.Fprintf(&b, "  virtual time %v .. %v\n", r.Start, r.End)
	fmt.Fprintf(&b, "  baseline fingerprint %016x\n", r.BaselineFingerprint)
	fmt.Fprintf(&b, "  violations: %d\n", len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "    [%v] %v: %s\n", v.At, v.Invariant, v.Detail)
	}
	return b.String()
}

// NewRunner validates the script against the target and prepares a run.
func NewRunner(tgt *Target, script *Script, opts Options) (*Runner, error) {
	if err := script.Validate(tgt); err != nil {
		return nil, err
	}
	if opts.ConvergeBudget == 0 {
		opts.ConvergeBudget = 200_000_000
	}
	r := &Runner{
		tgt:    tgt,
		script: script,
		opts:   opts,
		chk:    &checker{tgt: tgt, reach: opts.Reach},
		active: make(map[Fault]bool),
	}
	r.mInject = opts.Obs.Counter("lifeguard_chaos_faults_injected_total")
	r.mHeal = opts.Obs.Counter("lifeguard_chaos_faults_healed_total")
	r.mBarrier = opts.Obs.Counter("lifeguard_chaos_barriers_total")
	r.mViolation = func(inv Invariant) *obs.Counter {
		return opts.Obs.Counter("lifeguard_chaos_violations_total", obs.L("invariant", string(inv)))
	}
	return r, nil
}

// event is one runner action on the flattened timeline.
type event struct {
	at   time.Duration
	kind int // 0 inject, 1 heal, 2 check — also the same-time tiebreak
	f    Fault
}

// Run arms the baseline, plays the timeline, and finishes with an implicit
// final barrier (which also flags unhealed faults). The scheduler advances
// through RunUntil between actions, so monitors and repair systems wired
// onto the same clock interleave exactly as they would in production; a
// barrier may push virtual time past the next scripted instant while
// draining the control plane, in which case later actions apply as soon as
// the barrier completes (deterministically — the drain length is itself a
// function of the seed).
func (r *Runner) Run() (*Report, error) {
	rep := &Report{Start: r.tgt.Clk.Now()}

	// Arm: the baseline fingerprint is taken over a drained control plane.
	if !r.tgt.Eng.Converge(r.opts.ConvergeBudget) {
		return nil, fmt.Errorf("chaos: control plane did not converge while arming")
	}
	r.chk.baseline = r.chk.fingerprint()
	r.chk.armOwners()
	rep.BaselineFingerprint = r.chk.baseline
	r.tgt.journal("arm", obs.F("fingerprint", fmt.Sprintf("%016x", r.chk.baseline)))

	// Script times are relative to the run start (arming may itself have
	// advanced the clock while draining).
	start := r.tgt.Clk.Now()
	var timeline []event
	for _, st := range r.script.Steps {
		if st.Check {
			rep.Checks++
			timeline = append(timeline, event{at: start + st.At, kind: 2})
			continue
		}
		rep.Faults++
		timeline = append(timeline, event{at: start + st.At, kind: 0, f: st.Fault})
		if st.For > 0 {
			timeline = append(timeline, event{at: start + st.At + st.For, kind: 1, f: st.Fault})
		}
	}
	// Heals before injects before checks at the same instant, original
	// order as the final tiebreak (stable sort): a zero-gap heal/reinject
	// of the same site must heal first, and a same-time check observes
	// the settled state.
	sort.SliceStable(timeline, func(i, j int) bool {
		if timeline[i].at != timeline[j].at {
			return timeline[i].at < timeline[j].at
		}
		order := func(k int) int { return [3]int{1, 0, 2}[k] }
		return order(timeline[i].kind) < order(timeline[j].kind)
	})

	for _, ev := range timeline {
		if ev.at > r.tgt.Clk.Now() {
			r.tgt.Clk.RunUntil(ev.at)
		}
		switch ev.kind {
		case 0:
			ev.f.Inject(r.tgt)
			r.active[ev.f] = true
			r.injected++
			r.mInject.Inc()
			r.tgt.journal("inject", obs.F("fault", ev.f))
		case 1:
			ev.f.Heal(r.tgt)
			delete(r.active, ev.f)
			r.healed++
			r.mHeal.Inc()
			r.tgt.journal("heal", obs.F("fault", ev.f))
		case 2:
			r.barrier(false)
		}
	}

	// Finish: the implicit final barrier, which additionally reports any
	// fault the script never healed.
	r.barrier(true)

	rep.Injected, rep.Healed, rep.Barriers = r.injected, r.healed, r.barriers
	rep.End = r.tgt.Clk.Now()
	rep.Violations = r.chk.violations
	for _, v := range rep.Violations {
		r.mViolation(v.Invariant).Inc()
	}
	r.tgt.journal("finish",
		obs.F("injected", rep.Injected), obs.F("healed", rep.Healed),
		obs.F("violations", len(rep.Violations)))
	return rep, nil
}

// barrier drains the control plane and runs the invariant suite. Loop and
// RIB checks always run; baseline, reachability, and origin authenticity
// only when the network should be healthy (zero active faults); the
// unhealed check only at the final barrier.
func (r *Runner) barrier(final bool) {
	r.barriers++
	r.mBarrier.Inc()
	before := len(r.chk.violations)
	if !r.tgt.Eng.Converge(r.opts.ConvergeBudget) {
		r.chk.report(InvConvergence,
			fmt.Sprintf("control plane still busy after %d steps", r.opts.ConvergeBudget))
	}
	r.chk.checkLoops()
	r.chk.checkRIB()
	if final {
		// Deterministic order: report unhealed faults sorted by their
		// canonical string, not map order.
		var unhealed []string
		for f := range r.active {
			unhealed = append(unhealed, f.String())
		}
		sort.Strings(unhealed)
		for _, s := range unhealed {
			r.chk.report(InvUnhealed, fmt.Sprintf("fault %q still active at end of run", s))
		}
	}
	if len(r.active) == 0 {
		r.chk.checkBaseline()
		r.chk.checkReach()
	}
	// Origin authenticity also runs at the final barrier even with faults
	// still active: an unhealed hijack is exactly the "hijacked state
	// outlives the run" condition the invariant exists to name (other
	// unhealed fault kinds reroute or drop but never forge origins, so
	// they cannot trip it).
	if len(r.active) == 0 || final {
		r.chk.checkOriginAuth()
	}
	r.tgt.journal("barrier",
		obs.F("final", final),
		obs.F("active", len(r.active)),
		obs.F("new_violations", len(r.chk.violations)-before))
}
