package chaos

import (
	"net/netip"
	"sort"
	"testing"

	"lifeguard/internal/nettest"
	"lifeguard/internal/topo"
)

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestVocabularyMatchesParser pins the -list-faults contract: the published
// vocabulary is sorted, stable, documented, and agrees with what the parser
// actually accepts — one sample line per kind must parse to a fault of that
// kind, and no two calls may disagree.
func TestVocabularyMatchesParser(t *testing.T) {
	vocab := Vocabulary()
	if !sort.SliceIsSorted(vocab, func(i, j int) bool { return vocab[i].Kind < vocab[j].Kind }) {
		t.Fatal("Vocabulary is not sorted by kind")
	}
	again := Vocabulary()
	for i := range vocab {
		if vocab[i] != again[i] {
			t.Fatalf("Vocabulary not stable at %d: %+v vs %+v", i, vocab[i], again[i])
		}
	}
	samples := map[string]string{
		"blackhole":    "blackhole 30 10.10.0.0/16",
		"crash":        "crash 70",
		"crashcontrol": "crashcontrol 10",
		"delay":        "delay 30 60 2s",
		"forgedorigin": "forgedorigin 70 50 1.50.0.0/16",
		"hijack":       "hijack 70 1.10.0.0/16",
		"linkdown":     "linkdown 20 30",
		"loss":         "loss 40 0.3 7",
		"oneway":       "oneway 30 20",
		"sessionreset": "sessionreset 40 50",
		"subhijack":    "subhijack 70 1.10.240.0/24",
	}
	if len(samples) != len(vocab) {
		t.Fatalf("vocabulary has %d kinds, samples cover %d", len(vocab), len(samples))
	}
	for _, d := range vocab {
		line, ok := samples[d.Kind]
		if !ok {
			t.Fatalf("vocabulary kind %q has no parser sample", d.Kind)
		}
		if d.Usage == "" || d.Doc == "" {
			t.Fatalf("vocabulary kind %q lacks usage or doc", d.Kind)
		}
		s, err := Parse("at 1s " + line)
		if err != nil {
			t.Fatalf("sample for %q does not parse: %v", d.Kind, err)
		}
		if got := s.Steps[0].Fault.Kind(); got != d.Kind {
			t.Fatalf("sample for %q parsed as kind %q", d.Kind, got)
		}
	}
}

// TestOriginHijackCapturesAndReverts drives the exact-prefix hijack by hand
// on Fig. 2: once rogue F originates O's block, ASes whose decision process
// prefers the shorter rogue path (A, and E through it) divert; healing
// restores the pre-attack routes.
func TestOriginHijackCapturesAndReverts(t *testing.T) {
	tgt, n := fig2Target(t)
	victim := topo.Block(nettest.O)
	f := &OriginHijack{Rogue: nettest.F, Prefix: victim}
	if err := f.Validate(tgt); err != nil {
		t.Fatal(err)
	}
	f.Inject(tgt)
	n.Converge(t)
	r, ok := n.Eng.BestRoute(nettest.A, victim)
	if !ok {
		t.Fatal("A lost the route entirely")
	}
	if nh, _ := r.NextHop(); nh != nettest.F {
		t.Fatalf("A was not captured: next hop %d, want %d (rogue)", nh, nettest.F)
	}
	f.Heal(tgt)
	n.Converge(t)
	r, ok = n.Eng.BestRoute(nettest.A, victim)
	if !ok {
		t.Fatal("A has no route after heal")
	}
	if nh, _ := r.NextHop(); nh != nettest.B {
		t.Fatalf("A did not revert to the legitimate path: next hop %d, want %d", nh, nettest.B)
	}
}

// TestForgedOriginLooksLegitimate pins the type-1 attack property: the
// forged path's origin is the true owner, so captured ASes hold a route
// whose origin check passes — only the fabricated rogue–victim adjacency
// betrays it.
func TestForgedOriginLooksLegitimate(t *testing.T) {
	tgt, n := fig2Target(t)
	victim := topo.Block(nettest.D)
	f := &ForgedOrigin{Rogue: nettest.F, Victim: nettest.D, Prefix: victim}
	if err := f.Validate(tgt); err != nil {
		t.Fatal(err)
	}
	f.Inject(tgt)
	n.Converge(t)
	// A prefers its customer F's forged route over the provider path via E.
	r, ok := n.Eng.BestRoute(nettest.A, victim)
	if !ok {
		t.Fatal("A lost the route")
	}
	if nh, _ := r.NextHop(); nh != nettest.F {
		t.Fatalf("A was not captured by the forged route: next hop %d", nh)
	}
	if o, _ := r.Path.Origin(); o != nettest.D {
		t.Fatalf("forged path origin = %d, want the victim %d (that is the point)", o, nettest.D)
	}
	if n.Top.Adjacent(nettest.F, nettest.D) {
		t.Fatal("test topology changed: rogue and victim adjacent")
	}
	f.Heal(tgt)
	n.Converge(t)
}

// TestHijackScriptZeroViolations runs all three hijack variants through the
// full runner: healed attacks must leave no trace — baseline fingerprint,
// reachability, and the origin-authenticity invariant all pass at the final
// barrier. The mid-attack check exercises the active-fault barrier path
// (loops and RIB sanity still hold during a hijack).
func TestHijackScriptZeroViolations(t *testing.T) {
	tgt, _ := fig2Target(t)
	s, err := Parse(`
at 1m for 10m hijack 70 1.10.0.0/16
at 5m check
at 15m for 10m subhijack 70 1.10.240.0/24
at 30m for 10m forgedorigin 70 50 1.50.0.0/16
at 50m check
`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(tgt, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("violations:\n%s", rep)
	}
	if rep.Injected != 3 || rep.Healed != 3 {
		t.Fatalf("injected %d healed %d, want 3/3", rep.Injected, rep.Healed)
	}
}

// TestUnhealedHijackTripsOriginAuth: a hijack the script never heals must
// be flagged by the final barrier as both an unhealed fault and an
// origin-authenticity violation — the invariant exists precisely to catch
// hijacked state outliving a run.
func TestUnhealedHijackTripsOriginAuth(t *testing.T) {
	tgt, _ := fig2Target(t)
	s, err := Parse("at 1m subhijack 70 1.10.240.0/24")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(tgt, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := map[Invariant]bool{}
	for _, v := range rep.Violations {
		got[v.Invariant] = true
	}
	if !got[InvUnhealed] {
		t.Fatalf("missing %v violation:\n%s", InvUnhealed, rep)
	}
	if !got[InvOriginAuth] {
		t.Fatalf("missing %v violation:\n%s", InvOriginAuth, rep)
	}
}

// TestHijackValidation rejects ill-posed attacks before a run starts.
func TestHijackValidation(t *testing.T) {
	tgt, _ := fig2Target(t)
	for name, f := range map[string]Fault{
		"hijack of unowned prefix":      &OriginHijack{Rogue: nettest.F, Prefix: mustPrefix(t, "9.9.9.0/24")},
		"self hijack":                   &OriginHijack{Rogue: nettest.O, Prefix: topo.Block(nettest.O)},
		"subhijack of exact origin":     &SubPrefixHijack{Rogue: nettest.F, Prefix: topo.Block(nettest.O)},
		"subhijack outside owned space": &SubPrefixHijack{Rogue: nettest.F, Prefix: mustPrefix(t, "9.9.9.0/24")},
		"forged origin adjacent":        &ForgedOrigin{Rogue: nettest.F, Victim: nettest.A, Prefix: topo.Block(nettest.A)},
		"forged origin wrong victim":    &ForgedOrigin{Rogue: nettest.F, Victim: nettest.D, Prefix: topo.Block(nettest.O)},
		"unknown rogue":                 &OriginHijack{Rogue: 9999, Prefix: topo.Block(nettest.O)},
	} {
		if err := f.Validate(tgt); err == nil {
			t.Errorf("%s: Validate succeeded, want error", name)
		}
	}
}
