package chaos

import (
	"strings"
	"testing"
	"time"

	"lifeguard/internal/dataplane"
	"lifeguard/internal/nettest"
	"lifeguard/internal/obs"
	"lifeguard/internal/topo"
)

// fig2Target wraps the canonical Fig. 2 internetwork as a chaos target.
func fig2Target(t *testing.T) (*Target, *nettest.Net) {
	t.Helper()
	n := nettest.Fig2(t)
	return &Target{
		Top: n.Top, Clk: n.Clk, Eng: n.Eng, Plane: n.Plane,
		Journal: obs.NewJournal(4096),
	}, n
}

func TestScriptRoundTrip(t *testing.T) {
	text := `
# exercise the whole vocabulary
at 10s for 2m linkdown 20 30
at 12s check
at 15s for 1m oneway 30 20
at 20s for 5m loss 40 0.3 7
at 30s for 1m sessionreset 40 50
at 40s for 2m crash 70
at 45s for 90s crashcontrol 10
at 50s for 3m delay 30 60 2s
at 1m for 2m blackhole 30 10.10.0.0/16
at 10m oneway 20 10
at 12m check
`
	s, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Steps) != 11 {
		t.Fatalf("parsed %d steps, want 11", len(s.Steps))
	}
	canon := s.String()
	s2, err := Parse(canon)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if got := s2.String(); got != canon {
		t.Fatalf("round trip diverged:\n%s\nvs\n%s", canon, got)
	}
	// The never-healed step must render without a "for" clause.
	if !strings.Contains(canon, "at 10m0s oneway 20 10\n") {
		t.Fatalf("canonical form missing bare oneway line:\n%s", canon)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"at",
		"at 10s",
		"at nonsense check",
		"at 10s check extra",
		"at 10s for -5s linkdown 1 2",
		"at 10s for 1m frobnicate 1 2",
		"at 10s for 1m linkdown 1",
		"at 10s for 1m loss 1 huh 3",
		"at 10s for 1m blackhole 1 not-a-prefix",
		"at 10s for 1m linkdown 9999999999 2", // overflows 32-bit ASN space
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestGenerateScriptDeterministic(t *testing.T) {
	tgt, _ := fig2Target(t)
	cfg := GenConfig{Seed: 7, N: 6, Intensity: 2, Avoid: []topo.ASN{nettest.O}}
	s1, err := GenerateScript(tgt.Top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := GenerateScript(tgt.Top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Fatalf("same seed, different scripts:\n%s\nvs\n%s", s1, s2)
	}
	cfg.Seed = 8
	s3, err := GenerateScript(tgt.Top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s3.String() == s1.String() {
		t.Fatal("different seeds produced identical scripts")
	}
	// Every generated fault must be valid for the topology and must not
	// touch the avoided AS.
	if err := s1.Validate(tgt); err != nil {
		t.Fatalf("generated script invalid: %v", err)
	}
	if strings.Contains(" "+s1.String(), " 10 ") {
		t.Fatalf("avoided AS %d appears as a site:\n%s", nettest.O, s1)
	}
	// Generated scripts always heal and end on a barrier.
	last := s1.Steps[len(s1.Steps)-1]
	if !last.Check {
		t.Fatal("generated script does not end with a check")
	}
	for _, st := range s1.Steps {
		if !st.Check && st.For <= 0 {
			t.Fatalf("generated fault %v never heals", st.Fault)
		}
	}
}

// TestRunnerCleanScript exercises every fault kind in one scripted run and
// expects zero violations: everything heals, the control plane converges
// back to baseline, and the origin stays reachable at the end.
func TestRunnerCleanScript(t *testing.T) {
	tgt, n := fig2Target(t)
	text := `
at 10s for 2m linkdown 20 30
at 3m for 1m oneway 30 20
at 5m for 2m loss 40 0.5 99
at 8m for 1m sessionreset 40 50
at 10m for 2m crash 70
at 13m for 1m delay 30 60 5s
at 15m for 1m blackhole 30 10.10.0.0/16
at 18m check
`
	s, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	r, err := NewRunner(tgt, s, Options{
		Obs: reg,
		Reach: []ReachProbe{
			{From: n.Hub(nettest.E), To: tgt.Top.Router(n.Hub(nettest.O)).Addr},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("violations in clean run:\n%s", rep)
	}
	if rep.Injected != 7 || rep.Healed != 7 {
		t.Fatalf("injected %d healed %d, want 7/7", rep.Injected, rep.Healed)
	}
	if rep.Barriers != 2 { // scripted + implicit final
		t.Fatalf("barriers = %d, want 2", rep.Barriers)
	}
	if rep.Err() != nil {
		t.Fatalf("Err = %v", rep.Err())
	}
	// Journal saw the lifecycle.
	kinds := map[string]int{}
	for _, ev := range tgt.Journal.Events() {
		if ev.Subsystem == "chaos" {
			kinds[ev.Kind]++
		}
	}
	if kinds["arm"] != 1 || kinds["inject"] != 7 || kinds["heal"] != 7 ||
		kinds["barrier"] != 2 || kinds["finish"] != 1 {
		t.Fatalf("journal kinds = %v", kinds)
	}
}

// TestRunnerCatchesUnhealedFault is the negative test of the acceptance
// criteria: a fault deliberately left active must surface as an
// unhealed-fault violation at the final barrier.
func TestRunnerCatchesUnhealedFault(t *testing.T) {
	tgt, _ := fig2Target(t)
	s, err := Parse("at 10s oneway 30 20\n")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(tgt, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("unhealed fault not flagged")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Invariant == InvUnhealed && strings.Contains(v.Detail, "oneway 30 20") {
			found = true
		}
		if v.Invariant == InvBaseline || v.Invariant == InvReachability {
			t.Fatalf("healthy-state invariant %v ran with a fault active", v.Invariant)
		}
	}
	if !found {
		t.Fatalf("no unhealed-fault violation in:\n%s", rep)
	}
}

// TestRunnerCatchesBaselineDivergence: routing state mutated behind the
// runner's back (an origination the script knows nothing about) must trip
// the baseline invariant once all scripted faults are healed.
func TestRunnerCatchesBaselineDivergence(t *testing.T) {
	tgt, _ := fig2Target(t)
	tgt.Clk.After(30*time.Second, func() {
		tgt.Eng.Originate(nettest.F, topo.ProductionPrefix(nettest.F))
	})
	s := &Script{Steps: []Step{
		{At: 10 * time.Second, Fault: &SessionReset{A: nettest.C, B: nettest.D}, For: 20 * time.Second},
		{At: time.Minute, Check: true},
	}}
	r, err := NewRunner(tgt, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		found = found || v.Invariant == InvBaseline
	}
	if !found {
		t.Fatalf("baseline divergence not flagged:\n%s", rep)
	}
}

// TestRunnerCatchesSilentBlackhole: a silent data-plane failure installed
// outside the script leaves the control plane (and so the baseline
// fingerprint) untouched — only the reachability probe can see it.
func TestRunnerCatchesSilentBlackhole(t *testing.T) {
	tgt, n := fig2Target(t)
	tgt.Clk.After(30*time.Second, func() {
		tgt.Plane.AddFailure(dataplane.BlackholeASTowards(nettest.B, topo.Block(nettest.O)))
	})
	s := &Script{Steps: []Step{{At: time.Minute, Check: true}}}
	r, err := NewRunner(tgt, s, Options{
		Reach: []ReachProbe{
			{From: n.Hub(nettest.E), To: tgt.Top.Router(n.Hub(nettest.O)).Addr},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	var reach, baseline bool
	for _, v := range rep.Violations {
		reach = reach || v.Invariant == InvReachability
		baseline = baseline || v.Invariant == InvBaseline
	}
	if !reach {
		t.Fatalf("silent blackhole not caught by reachability probe:\n%s", rep)
	}
	if baseline {
		t.Fatal("silent data-plane failure tripped the control-plane baseline")
	}
}

// TestRunnerDeterministic: the same generated script on two independently
// built but identical targets yields byte-identical reports and journals.
func TestRunnerDeterministic(t *testing.T) {
	run := func() (string, string) {
		tgt, n := fig2Target(t)
		s, err := GenerateScript(tgt.Top, GenConfig{Seed: 11, N: 4, Intensity: 4, Avoid: []topo.ASN{nettest.O}})
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(tgt, s, Options{
			Reach: []ReachProbe{
				{From: n.Hub(nettest.E), To: tgt.Top.Router(n.Hub(nettest.O)).Addr},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		var j strings.Builder
		for _, ev := range tgt.Journal.Events() {
			j.WriteString(ev.Kind)
			for _, f := range ev.Fields {
				j.WriteString(" " + f.Key + "=" + f.Value)
			}
			j.WriteString("\n")
		}
		return rep.String(), j.String()
	}
	r1, j1 := run()
	r2, j2 := run()
	if r1 != r2 {
		t.Fatalf("reports differ:\n%s\nvs\n%s", r1, r2)
	}
	if j1 != j2 {
		t.Fatalf("journals differ:\n%s\nvs\n%s", j1, j2)
	}
}

func TestValidateRejectsBadScript(t *testing.T) {
	tgt, _ := fig2Target(t)
	for _, s := range []*Script{
		{Steps: []Step{{At: 0, Fault: &LinkDown{A: nettest.O, B: nettest.E}}}},    // not adjacent
		{Steps: []Step{{At: 0, Fault: &RouterCrash{AS: 99}}}},                     // unknown AS
		{Steps: []Step{{At: 0, Fault: &PacketLoss{AS: nettest.B, Prob: 1.5}}}},    // bad prob
		{Steps: []Step{{At: 0, Fault: &UpdateDelay{A: nettest.B, B: nettest.A}}}}, // zero delay
		{Steps: []Step{{At: 0}}}, // neither fault nor check
	} {
		if _, err := NewRunner(tgt, s, Options{}); err == nil {
			t.Errorf("NewRunner accepted invalid script %+v", s.Steps)
		}
	}
}
