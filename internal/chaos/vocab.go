package chaos

// FaultDoc is one entry of the script vocabulary: the keyword, its argument
// shape in the script grammar, and a one-line description. It backs
// `lgchaos -list-faults`, so operators can discover the fault language
// without reading fault.go.
type FaultDoc struct {
	Kind  string // script keyword
	Usage string // canonical argument form
	Doc   string // one-line semantics
}

// Vocabulary enumerates every fault kind the parser accepts, sorted by
// keyword. TestVocabularyMatchesParser pins that this list and the parser's
// argc table never drift apart.
func Vocabulary() []FaultDoc {
	return []FaultDoc{
		{"blackhole", "blackhole <as> <dstPrefix>", "AS silently drops forwarded traffic toward dstPrefix (control plane unaffected)"},
		{"crash", "crash <as>", "AS's router crashes: origins withdrawn, all transit blackholed until healed"},
		{"crashcontrol", "crashcontrol <originAS>", "crash the LIFEGUARD control plane of the session with that origin (graceful-restart policy applies on heal)"},
		{"delay", "delay <asA> <asB> <duration>", "add per-message BGP propagation delay on the A-B adjacency (both directions)"},
		{"forgedorigin", "forgedorigin <rogueAS> <victimAS> <prefix>", "rogue announces victim's prefix with forged path [rogue victim] (origin looks legitimate)"},
		{"hijack", "hijack <rogueAS> <prefix>", "rogue originates someone else's exact prefix (partial capture by decision process)"},
		{"linkdown", "linkdown <asA> <asB>", "cut the A-B adjacency: BGP session down and data plane dropped both ways"},
		{"loss", "loss <as> <prob> <seed>", "AS drops each forwarded packet with probability prob (deterministic per-packet hash of seed)"},
		{"oneway", "oneway <asFrom> <asTo>", "silently drop traffic crossing from->to while the reverse direction keeps working"},
		{"sessionreset", "sessionreset <asA> <asB>", "fail only the BGP session between A and B; the data plane keeps forwarding"},
		{"subhijack", "subhijack <rogueAS> <moreSpecificPrefix>", "rogue originates a more-specific of someone else's prefix (LPM diverts all acceptors)"},
	}
}
