package experiments

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"lifeguard/internal/runner"
)

// The experiment tests assert the paper's qualitative shape — who wins, by
// roughly what factor, where the crossovers sit — with tolerances wide
// enough to absorb topology-seed variance but tight enough that a broken
// mechanism fails.

func inRange(t *testing.T, r *Result, key string, lo, hi float64) {
	t.Helper()
	v, ok := r.Values[key]
	if !ok {
		t.Fatalf("%s: missing value %q", r.ID, key)
	}
	if v < lo || v > hi {
		t.Fatalf("%s: %s = %.4f, want in [%.4f, %.4f]", r.ID, key, v, lo, hi)
	}
}

func TestFig1Shape(t *testing.T) {
	r := Fig1(1)
	inRange(t, r, "frac_events_le_10min", 0.88, 0.97)   // paper: >90%
	inRange(t, r, "unavail_share_gt_10min", 0.70, 0.92) // paper: 84%
	inRange(t, r, "median_duration_min", 1.4, 3.5)      // paper: 1.5 min
	inRange(t, r, "partial_outages", 7500, 8800)        // paper: 79% of 10308
}

func TestFig5Shape(t *testing.T) {
	r := Fig5(1)
	inRange(t, r, "persist5_given_5min", 0.40, 0.65)  // paper: 51%
	inRange(t, r, "persist5_given_10min", 0.60, 0.85) // paper: 68%
	if r.Values["persist5_given_10min"] <= r.Values["persist5_given_5min"] {
		t.Fatal("persistence must grow with elapsed time")
	}
	inRange(t, r, "avoidable_unavailability_7min_repair", 0.65, 0.90) // paper: up to 80%
}

func TestAltPathsShape(t *testing.T) {
	r := AltPaths(1)
	inRange(t, r, "frac_with_alternate", 0.40, 0.62)       // paper: 49%
	inRange(t, r, "frac_with_alternate_ge_1h", 0.60, 0.95) // paper: 83%
	if r.Values["frac_with_alternate_ge_1h"] <= r.Values["frac_with_alternate"] {
		t.Fatal("long outages must be MORE likely to have alternates")
	}
	inRange(t, r, "frac_alternate_persisted", 0.95, 1.0) // paper: 98%
}

func TestForwardDiversityShape(t *testing.T) {
	r := ForwardDiversity(1)
	inRange(t, r, "frac_forward_avoidable", 0.78, 0.97) // paper: 90%
	inRange(t, r, "cases", 60, 114)
}

func TestEfficacyShape(t *testing.T) {
	r := Efficacy(1)
	inRange(t, r, "frac_peers_found_alternate", 0.65, 0.95) // paper: 77%
	inRange(t, r, "frac_sim_alternate", 0.70, 0.95)         // paper: 90%
	inRange(t, r, "frac_isolated_alternate", 0.70, 1.0)     // paper: 94%
	// Our engine implements the exact policy model, so the validation
	// agreement should beat the paper's 92.5%.
	inRange(t, r, "sim_vs_testbed_agreement", 0.925, 1.0)
	// Two-thirds of cut-off cases are stubs behind their only provider.
	inRange(t, r, "frac_failures_stub_only_provider", 0.5, 1.0)
}

func TestConvergenceShape(t *testing.T) {
	r := Convergence(1)
	// Prepending: unaffected peers converge instantly with one update.
	inRange(t, r, "prepend_nochange_frac_instant", 0.95, 1.0)       // paper: >95%
	inRange(t, r, "prepend_nochange_frac_single_update", 0.95, 1.0) // paper: 97%
	// Without prepending, path exploration breaks that.
	inRange(t, r, "noprepend_nochange_frac_single_update", 0.0, 0.80) // paper: 64%
	if r.Values["noprepend_nochange_frac_single_update"] >=
		r.Values["prepend_nochange_frac_single_update"] {
		t.Fatal("prepending must reduce path exploration")
	}
	// Global convergence: minutes-scale, prepend faster.
	inRange(t, r, "global_p50_prepend_s", 20, 200)   // paper: 91s
	inRange(t, r, "global_p50_noprepend_s", 40, 300) // paper: 133s
	// Table 2's U: ~1 update per unaffected router with prepending
	// (paper: 1.07), more for affected routers (paper: 2.03).
	inRange(t, r, "U_nochange_prepend", 1.0, 1.2)
	inRange(t, r, "U_change_prepend", 1.0, 2.5)
	if r.Values["U_nochange_noprepend"] <= r.Values["U_nochange_prepend"] {
		t.Fatal("prepending must reduce per-router update load")
	}
	if r.Values["global_p50_prepend_s"] >= r.Values["global_p50_noprepend_s"] {
		t.Fatal("prepending must speed global convergence")
	}
}

func TestConvergenceLossShape(t *testing.T) {
	r := ConvergenceLoss(1)
	inRange(t, r, "frac_loss_under_2pct", 0.90, 1.0)  // paper: 98%
	inRange(t, r, "frac_with_spike_round", 0.0, 0.15) // paper: 2%
	inRange(t, r, "poisonings", 5, 25)
}

func TestSelectiveShape(t *testing.T) {
	r := Selective(1)
	inRange(t, r, "frac_links_avoided", 0.55, 0.95) // paper: 73%
}

func TestAccuracyShape(t *testing.T) {
	r := Accuracy(1)
	inRange(t, r, "frac_blame_correct", 0.85, 1.0)           // paper: 93%
	inRange(t, r, "frac_differs_from_traceroute", 0.2, 0.55) // paper: 40%
	inRange(t, r, "frac_direction_correct", 0.80, 1.0)
	inRange(t, r, "episodes", 80, 130)
}

func TestScalabilityShape(t *testing.T) {
	r := Scalability(1)
	// Same order of magnitude as the paper's 280 probes / 140 s; our
	// synthetic paths are shorter than Internet paths.
	inRange(t, r, "probes_per_isolation", 40, 400)
	inRange(t, r, "isolation_seconds", 20, 200)
	inRange(t, r, "refresh_paths_per_min", 150, 700) // paper: 225 avg, 502 peak
	inRange(t, r, "probes_per_refreshed_path", 10, 40)
}

func TestTable2Shape(t *testing.T) {
	r := Table2(1)
	// The I=0.01, T=0.5 row is the paper's headline: a few hundred extra
	// daily changes — under 1% of a router's normal churn.
	inRange(t, r, "load_I0.01_T0.5_d5", 200, 600) // paper: 393
	inRange(t, r, "load_I0.01_T0.5_d15", 80, 250) // paper: 137
	if r.Values["load_I0.01_T0.5_d5"] <= r.Values["load_I0.01_T0.5_d15"] {
		t.Fatal("shorter poisoning delay must mean more load")
	}
	// Large deployments become significant (paper: tens of thousands).
	inRange(t, r, "load_I0.5_T1_d5", 15000, 60000)
}

func TestBaselinesShape(t *testing.T) {
	r := Baselines(1)
	inRange(t, r, "scenarios", 10, 30)
	// Poisoning must dominate on repair rate...
	inRange(t, r, "frac_poisoning", 0.9, 1.0)
	if r.Values["frac_poisoning"] < r.Values["frac_prepending"] {
		t.Fatal("poisoning must beat prepending")
	}
	if r.Values["frac_prepending"] > 0.7 {
		t.Fatalf("prepending should mostly fail on remote failures: %.2f", r.Values["frac_prepending"])
	}
	// ...and on surgical precision: fewer working routes disturbed than
	// selective advertising.
	if r.Values["disrupt_poisoning"] >= r.Values["disrupt_selective_advertising"] {
		t.Fatalf("poisoning should disturb fewer working routes (%.1f) than selective advertising (%.1f)",
			r.Values["disrupt_poisoning"], r.Values["disrupt_selective_advertising"])
	}
}

func TestChaosShape(t *testing.T) {
	r := Chaos(1)
	// The hard contract: the invariant checker saw nothing — no loops, no
	// RIB inconsistencies, every timeline converged back to baseline.
	inRange(t, r, "violations_total", 0, 0)
	inRange(t, r, "faults_total", 24, 24) // 8 faults × 3 intensities
	// The monitor saw real outages and the repair loop engaged.
	inRange(t, r, "episodes_total", 8, 80)
	inRange(t, r, "poisons_total", 2, 30)
	inRange(t, r, "repaired_total", 2, 60)
	// Every episode eventually recovered (faults heal and barriers
	// demand reconvergence), on a minutes timescale.
	inRange(t, r, "recovered_frac", 0.95, 1.0)
	inRange(t, r, "ttr_mean_min", 0.5, 10)
}

func TestTrafficShape(t *testing.T) {
	r := Traffic(1)
	// The hard contracts: a clean timeline (no invariant violations) and
	// the headline contrast — the armed repair loop forfeits strictly
	// fewer user-seconds than waiting out the same fault.
	inRange(t, r, "violations_total", 0, 0)
	inRange(t, r, "flows_total", trafficFlows, trafficFlows)
	inRange(t, r, "poisons_total", 1, 10)
	lost := r.Values["user_seconds_lost_norepair"]
	saved := r.Values["user_seconds_lost_repair"]
	if lost <= 0 {
		t.Fatalf("the 20-minute blackhole cost nothing without repair (%v)", lost)
	}
	if saved >= lost {
		t.Fatalf("repair saved nothing: %v with vs %v without", saved, lost)
	}
	inRange(t, r, "user_seconds_saved_frac", 0.3, 1.0)
	inRange(t, r, "availability_repair", r.Values["availability_norepair"], 1.0)
}

func TestTrafficParallelIdentical(t *testing.T) {
	e, _ := ByID("traffic")
	seq := e.Run(2).String()
	par, err := e.RunParallel(context.Background(), 2, runner.Config{Parallelism: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq != par.String() {
		t.Fatalf("traffic report differs sequential vs parallel:\n%s\n---\n%s", seq, par.String())
	}
}

func TestMultitenantShape(t *testing.T) {
	r := Multitenant(1)
	// Every placed tenant detects its own failure, and most repair it
	// with a poison; what a tenant's policy refuses it refuses solo too.
	inRange(t, r, "repair_frac_n1", 1, 1)
	inRange(t, r, "repair_frac_n2", 0.5, 1)
	inRange(t, r, "repair_frac_n4", 0.5, 1)
	// The headline: per-tenant outage→poison latency is flat in tenant
	// count (detection grid + 5-minute maturity, regardless of N).
	for _, k := range []string{"ttr_mean_min_n1", "ttr_mean_min_n2", "ttr_mean_min_n4"} {
		inRange(t, r, k, 2, 7)
	}
	if d := r.Values["ttr_mean_min_n4"] - r.Values["ttr_mean_min_n1"]; d > 1 || d < -1 {
		t.Fatalf("per-tenant repair latency not flat in tenant count: n1=%.2f n4=%.2f",
			r.Values["ttr_mean_min_n1"], r.Values["ttr_mean_min_n4"])
	}
}

func TestHijackShape(t *testing.T) {
	r := Hijack(1)
	for _, d := range hijackDistances {
		key := func(s string) string { return fmt.Sprintf("%s_d%d", s, d) }
		if _, ok := r.Values[key("detect_s")]; !ok {
			// No stub at this distance on this seed — the row is absent
			// entirely, which reduceHijack reports by omission.
			continue
		}
		// Detection is bounded by the scan interval (10s) plus the attack's
		// propagation; mitigation adds a verify poll on top of it.
		inRange(t, r, key("detect_s"), 0.1, 60)
		inRange(t, r, key("mitigate_s"), 0.1, 120)
		// The sub-prefix wins longest-prefix match everywhere, and the
		// counter-announcement claws it back the same way.
		inRange(t, r, key("reach_attack"), 0, 0.1)
		inRange(t, r, key("reach_mitigated"), 0.9, 1.0)
		inRange(t, r, key("cleared"), 1, 1)
	}
	if len(r.Tables) == 0 || r.Tables[0].NumRows() == 0 {
		t.Fatal("no placement level produced a row")
	}
}

func TestAllRunnableAndRendered(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep is covered by individual shape tests")
	}
	for _, e := range All() {
		res := e.Run(2) // a different seed than the shape tests
		if res.ID == "" || len(res.Tables) == 0 {
			t.Fatalf("%s: empty result", e.ID)
		}
		out := res.String()
		if !strings.Contains(out, "paper") {
			t.Fatalf("%s: no paper comparison in output", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig6"); !ok {
		t.Fatal("fig6 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus ID resolved")
	}
	if _, ok := ByID("chaos"); !ok {
		t.Fatal("chaos missing")
	}
	if _, ok := ByID("traffic"); !ok {
		t.Fatal("traffic missing")
	}
	if len(All()) != 16 {
		t.Fatalf("expected 16 experiments, got %d", len(All()))
	}
}

func TestDeterministicResults(t *testing.T) {
	a, b := Fig1(5), Fig1(5)
	for k, v := range a.Values {
		if b.Values[k] != v {
			t.Fatalf("Fig1 value %s differs across runs: %v vs %v", k, v, b.Values[k])
		}
	}
	c := Convergence(3)
	d := Convergence(3)
	if c.Values["global_p50_prepend_s"] != d.Values["global_p50_prepend_s"] {
		t.Fatal("Convergence not deterministic")
	}
}
