package experiments

import (
	"time"

	"lifeguard/internal/metrics"
	"lifeguard/internal/outage"
)

// hubblePoisonableAt15PerDay anchors the outage rate: the paper derives
// P(d) from the Hubble dataset, and its Table 2 implies P(15 min) ≈ 27,500
// poisonable outages per day Internet-wide (137 daily path changes at
// I=0.005·T·U=1 scaling — see §5.4). We generate a workload with the
// calibrated duration distribution and rescale its event rate to match this
// anchor, then read P(5) and P(60) off the same distribution.
const hubblePoisonableAt15PerDay = 27500.0

// Table2 regenerates Table 2: the number of additional daily path changes
// per router caused by poisoning, for a grid of adoption fraction I,
// monitored fraction T, and poisoning delay d. U (updates per router per
// poison) is ~1, measured from the convergence experiments.
func Table2(seed int64) *Result {
	r := newResult("tab2", "daily path-change load from poisoning at scale")
	events := outage.Generate(outage.Config{Seed: seed, N: 200000})

	rawP15 := outage.PoisonableRate(events, 15*time.Minute)
	scale := hubblePoisonableAt15PerDay / rawP15
	p := func(d time.Duration) float64 {
		return outage.PoisonableRate(events, d) * scale
	}
	pd := map[int]float64{5: p(5 * time.Minute), 15: p(15 * time.Minute), 60: p(time.Hour)}

	tab := &metrics.Table{
		Title:  "Table 2 — additional daily path changes (U = 1)",
		Header: []string{"I", "T", "d=5min", "d=15min", "d=60min"},
	}
	for _, I := range []float64{0.01, 0.1, 0.5} {
		for _, T := range []float64{0.5, 1.0} {
			tab.AddRow(I, T, I*T*pd[5], I*T*pd[15], I*T*pd[60])
		}
	}
	r.addTable(tab)

	r.Values["P_5min_per_day"] = pd[5]
	r.Values["P_15min_per_day"] = pd[15]
	r.Values["P_60min_per_day"] = pd[60]
	r.Values["load_I0.01_T0.5_d5"] = 0.01 * 0.5 * pd[5]
	r.Values["load_I0.5_T1_d5"] = 0.5 * 1.0 * pd[5]
	r.Values["load_I0.01_T0.5_d15"] = 0.01 * 0.5 * pd[15]

	r.notef("paper Table 2 @ I=0.01,T=0.5: 393 (d=5), 137 (d=15), 58 (d=60); measured %.0f / %.0f / %.0f",
		0.005*pd[5], 0.005*pd[15], 0.005*pd[60])
	r.notef("paper: routers make 110K-315K updates/day, so small deployments add <1%% load")
	r.notef("rate anchored to the paper's Hubble-derived P(15min)=%.0f/day; the d=5 and d=60 columns test whether our duration distribution reproduces the paper's survival ratios", hubblePoisonableAt15PerDay)
	return r
}
