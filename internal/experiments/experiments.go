// Package experiments regenerates every table and figure of the paper's
// evaluation (§2 and §5). Each experiment returns a Result holding rendered
// tables, the headline numbers as machine-readable values (so benchmarks
// and tests can assert on the shape), and notes comparing against the
// numbers the paper reports. The absolute values come from a simulated
// internetwork rather than the authors' testbed; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"lifeguard/internal/metrics"
	"lifeguard/internal/obs"
)

// Result is the outcome of one experiment.
type Result struct {
	// ID names the experiment after the paper artifact it regenerates
	// ("fig1", "tab2", "sec5.2-loss", ...).
	ID string
	// Title is a human-readable one-liner.
	Title string
	// Tables are the rendered rows, mirroring the paper's presentation.
	Tables []*metrics.Table
	// Values holds the headline numbers, keyed by stable names, for
	// programmatic assertions.
	Values map[string]float64
	// Notes records paper-vs-measured commentary.
	Notes []string
}

func newResult(id, title string) *Result {
	return &Result{ID: id, Title: title, Values: make(map[string]float64)}
}

func (r *Result) addTable(t *metrics.Table) { r.Tables = append(r.Tables, t) }

func (r *Result) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the full report.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	if len(r.Values) > 0 {
		keys := make([]string, 0, len(r.Values))
		for k := range r.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("values:\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-40s %.4f\n", k, r.Values[k])
		}
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Trial is one independent unit of an experiment. Its Run closure builds
// every piece of simulated state it needs — topology, engine, virtual
// clock — from the scenario's seed, shares nothing mutable with any other
// trial, and returns a partial result for the scenario's Reduce. Because a
// trial is self-contained and single-threaded, the simclock
// single-ownership invariant holds whether trials run sequentially or on
// runner workers.
type Trial struct {
	// Name labels the trial for diagnostics ("testbed", "period=5m0s").
	Name string
	// Run performs the trial. It may panic on simulation bugs (the
	// runner captures the stack); it must be deterministic. reg, when
	// non-nil, is the trial's private metrics registry: the simulated
	// network the trial builds reports into it, and the caller merges
	// the per-trial registries in trial-index order. Metrics are
	// observe-only, so a nil reg yields the same trial output.
	Run func(reg *obs.Registry) any
}

// Scenario decomposes an experiment into independent per-seed trials plus
// a deterministic reduction. The contract mirrors internal/runner's:
// Reduce sees parts in trial order (parts[i] from Trials(seed)[i]), so
// the reduced Result is byte-identical however the trials were scheduled.
type Scenario struct {
	// Trials returns the trial set for one seed, in reduction order. It
	// must be cheap — all heavy work belongs inside Trial.Run.
	Trials func(seed int64) []Trial
	// Reduce merges the trial outputs into the rendered Result. It must
	// be pure: no clock, no rand, no state beyond parts.
	Reduce func(seed int64, parts []any) *Result
}

// Run executes the scenario sequentially on the calling goroutine — the
// reference path every parallel execution is measured against.
func (s Scenario) Run(seed int64) *Result {
	trials := s.Trials(seed)
	parts := make([]any, len(trials))
	for i := range trials {
		parts[i] = trials[i].Run(nil)
	}
	return s.Reduce(seed, parts)
}

// single wraps a monolithic run function as a one-trial scenario: the
// experiment's work is not subdividable without changing its random
// streams, so the whole run is the unit of parallelism.
func single(run func(seed int64, reg *obs.Registry) *Result) Scenario {
	return Scenario{
		Trials: func(seed int64) []Trial {
			return []Trial{{Name: "all", Run: func(reg *obs.Registry) any { return run(seed, reg) }}}
		},
		Reduce: func(_ int64, parts []any) *Result { return parts[0].(*Result) },
	}
}

// noObs adapts an experiment with no simulated network underneath (pure
// arithmetic over generated outage events) to the obs-threaded trial
// shape; there is nothing to instrument.
func noObs(run func(seed int64) *Result) func(int64, *obs.Registry) *Result {
	return func(seed int64, _ *obs.Registry) *Result { return run(seed) }
}

// Experiment couples an ID with its scenario.
type Experiment struct {
	ID       string
	Brief    string
	Scenario Scenario
}

// Run regenerates the artifact sequentially; see Scenario.Run.
func (e Experiment) Run(seed int64) *Result { return e.Scenario.Run(seed) }

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "outage duration CDF vs share of unavailability (§2.1)", single(noObs(Fig1))},
		{"fig5", "residual outage duration after X minutes (§4.2)", single(noObs(Fig5))},
		{"alt", "policy-compliant alternate paths during outages (§2.2)", single(altPaths)},
		{"fwd", "forward-path provider diversity (§2.3)", single(forwardDiversity)},
		{"efficacy", "poisoning efficacy: testbed + large-scale simulation (Table 1, §5.1)", efficacyScenario},
		{"fig6", "per-peer and global convergence after poisoning (Fig. 6, §5.2)", convergenceScenario},
		{"loss", "packet loss during post-poisoning convergence (§5.2)", lossScenario},
		{"selective", "selective poisoning of AS links (§5.2)", single(selective)},
		{"accuracy", "failure isolation accuracy vs traceroute (Table 1, §5.3)", single(accuracy)},
		{"scale", "atlas refresh and isolation overhead (§5.4)", single(scalability)},
		{"tab2", "Internet-wide update load from poisoning (Table 2, §5.4)", single(noObs(Table2))},
		{"baselines", "traditional route-control techniques vs remote failures (§2.3)", single(baselines)},
		{"chaos", "scripted fault timelines vs the repair loop, by intensity", chaosScenario},
		{"multitenant", "per-tenant repair pipelines on a shared rig, by tenant count", multitenantScenario},
		{"hijack", "hijack detection and auto-mitigation vs rogue placement", hijackScenario},
		{"traffic", "user-seconds lost through outage→repair, with and without LIFEGUARD", trafficScenario},
	}
}

// ByID returns the experiment (paper artifact or ablation) with the given
// ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range append(All(), Ablations()...) {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
