// Package experiments regenerates every table and figure of the paper's
// evaluation (§2 and §5). Each experiment returns a Result holding rendered
// tables, the headline numbers as machine-readable values (so benchmarks
// and tests can assert on the shape), and notes comparing against the
// numbers the paper reports. The absolute values come from a simulated
// internetwork rather than the authors' testbed; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"lifeguard/internal/metrics"
)

// Result is the outcome of one experiment.
type Result struct {
	// ID names the experiment after the paper artifact it regenerates
	// ("fig1", "tab2", "sec5.2-loss", ...).
	ID string
	// Title is a human-readable one-liner.
	Title string
	// Tables are the rendered rows, mirroring the paper's presentation.
	Tables []*metrics.Table
	// Values holds the headline numbers, keyed by stable names, for
	// programmatic assertions.
	Values map[string]float64
	// Notes records paper-vs-measured commentary.
	Notes []string
}

func newResult(id, title string) *Result {
	return &Result{ID: id, Title: title, Values: make(map[string]float64)}
}

func (r *Result) addTable(t *metrics.Table) { r.Tables = append(r.Tables, t) }

func (r *Result) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the full report.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	if len(r.Values) > 0 {
		keys := make([]string, 0, len(r.Values))
		for k := range r.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("values:\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-40s %.4f\n", k, r.Values[k])
		}
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment couples an ID with its runner.
type Experiment struct {
	ID    string
	Brief string
	Run   func(seed int64) *Result
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "outage duration CDF vs share of unavailability (§2.1)", Fig1},
		{"fig5", "residual outage duration after X minutes (§4.2)", Fig5},
		{"alt", "policy-compliant alternate paths during outages (§2.2)", AltPaths},
		{"fwd", "forward-path provider diversity (§2.3)", ForwardDiversity},
		{"efficacy", "poisoning efficacy: testbed + large-scale simulation (Table 1, §5.1)", Efficacy},
		{"fig6", "per-peer and global convergence after poisoning (Fig. 6, §5.2)", Convergence},
		{"loss", "packet loss during post-poisoning convergence (§5.2)", ConvergenceLoss},
		{"selective", "selective poisoning of AS links (§5.2)", Selective},
		{"accuracy", "failure isolation accuracy vs traceroute (Table 1, §5.3)", Accuracy},
		{"scale", "atlas refresh and isolation overhead (§5.4)", Scalability},
		{"tab2", "Internet-wide update load from poisoning (Table 2, §5.4)", Table2},
		{"baselines", "traditional route-control techniques vs remote failures (§2.3)", Baselines},
	}
}

// ByID returns the experiment (paper artifact or ablation) with the given
// ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range append(All(), Ablations()...) {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
