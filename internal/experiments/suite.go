package experiments

import (
	"context"

	"lifeguard/internal/runner"
)

// RunParallel executes one experiment's trials on the runner pool and
// reduces them in trial order. For any fixed seed the Result — and hence
// the rendered report — is byte-identical to Run at every parallelism
// level; only wall-clock time changes.
func (e Experiment) RunParallel(ctx context.Context, seed int64, cfg runner.Config) (*Result, error) {
	trials := e.Scenario.Trials(seed)
	parts, err := runner.Map(ctx, len(trials), cfg, func(_ context.Context, i int) (any, error) {
		return trials[i].Run(), nil
	})
	if err != nil {
		return nil, err
	}
	return e.Scenario.Reduce(seed, parts), nil
}

// span locates one (experiment, seed) reduction's parts inside the flat
// trial pool.
type span struct{ start, n int }

// RunSuite runs several experiments across consecutive seeds as one flat
// trial pool — the sharding axis lgexp and lgbench use. The returned
// results are indexed [experiment][seed offset], reduced in deterministic
// order regardless of how the pool interleaved the trials. A failing
// trial (panic, timeout, error) aborts the suite with the runner's typed
// error.
func RunSuite(ctx context.Context, exps []Experiment, baseSeed int64, seeds int, cfg runner.Config) ([][]*Result, error) {
	if seeds < 1 {
		seeds = 1
	}
	var units []func() any
	spans := make([][]span, len(exps))
	for ei, e := range exps {
		spans[ei] = make([]span, seeds)
		for s := 0; s < seeds; s++ {
			trials := e.Scenario.Trials(baseSeed + int64(s))
			spans[ei][s] = span{start: len(units), n: len(trials)}
			for i := range trials {
				units = append(units, trials[i].Run)
			}
		}
	}

	parts, err := runner.Map(ctx, len(units), cfg, func(_ context.Context, i int) (any, error) {
		return units[i](), nil
	})
	if err != nil {
		return nil, err
	}

	out := make([][]*Result, len(exps))
	for ei, e := range exps {
		out[ei] = make([]*Result, seeds)
		for s, sp := range spans[ei] {
			out[ei][s] = e.Scenario.Reduce(baseSeed+int64(s), parts[sp.start:sp.start+sp.n])
		}
	}
	return out, nil
}

// SuiteTrialCount reports how many independent trials RunSuite would
// schedule — the suite's effective parallelism ceiling.
func SuiteTrialCount(exps []Experiment, baseSeed int64, seeds int) int {
	if seeds < 1 {
		seeds = 1
	}
	n := 0
	for _, e := range exps {
		for s := 0; s < seeds; s++ {
			n += len(e.Scenario.Trials(baseSeed + int64(s)))
		}
	}
	return n
}
