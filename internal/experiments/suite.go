package experiments

import (
	"context"

	"lifeguard/internal/obs"
	"lifeguard/internal/runner"
)

// unitOut pairs one trial's partial result with the private registry it
// reported into (nil when the run is uninstrumented).
type unitOut struct {
	part any
	reg  *obs.Registry
}

// runUnits executes trial closures on the pool, giving each its own
// registry when dst is enabled, and merges the per-trial registries into
// dst in trial-index order after the pool drains. Per-trial metrics are
// pure functions of the trial, and the merge order is fixed, so dst's
// snapshot is byte-identical at every parallelism level.
func runUnits(ctx context.Context, units []func(reg *obs.Registry) any, cfg runner.Config, dst *obs.Registry) ([]any, error) {
	outs, err := runner.Map(ctx, len(units), cfg, func(_ context.Context, i int) (unitOut, error) {
		var reg *obs.Registry
		if dst.Enabled() {
			reg = obs.New()
		}
		return unitOut{part: units[i](reg), reg: reg}, nil
	})
	if err != nil {
		return nil, err
	}
	parts := make([]any, len(outs))
	for i, o := range outs {
		parts[i] = o.part
		dst.Merge(o.reg)
	}
	return parts, nil
}

// RunParallel executes one experiment's trials on the runner pool and
// reduces them in trial order. For any fixed seed the Result — and hence
// the rendered report — is byte-identical to Run at every parallelism
// level; only wall-clock time changes. reg, when non-nil, accumulates the
// trials' metrics (merged in trial order).
func (e Experiment) RunParallel(ctx context.Context, seed int64, cfg runner.Config, reg *obs.Registry) (*Result, error) {
	trials := e.Scenario.Trials(seed)
	units := make([]func(reg *obs.Registry) any, len(trials))
	for i := range trials {
		units[i] = trials[i].Run
	}
	parts, err := runUnits(ctx, units, cfg, reg)
	if err != nil {
		return nil, err
	}
	return e.Scenario.Reduce(seed, parts), nil
}

// span locates one (experiment, seed) reduction's parts inside the flat
// trial pool.
type span struct{ start, n int }

// RunSuite runs several experiments across consecutive seeds as one flat
// trial pool — the sharding axis lgexp and lgbench use. The returned
// results are indexed [experiment][seed offset], reduced in deterministic
// order regardless of how the pool interleaved the trials. A failing
// trial (panic, timeout, error) aborts the suite with the runner's typed
// error. reg, when non-nil, accumulates every trial's metrics: each trial
// reports into a private registry, merged into reg in trial-index order,
// so reg's snapshot is byte-identical at every parallelism level.
func RunSuite(ctx context.Context, exps []Experiment, baseSeed int64, seeds int, cfg runner.Config, reg *obs.Registry) ([][]*Result, error) {
	if seeds < 1 {
		seeds = 1
	}
	var units []func(reg *obs.Registry) any
	spans := make([][]span, len(exps))
	for ei, e := range exps {
		spans[ei] = make([]span, seeds)
		for s := 0; s < seeds; s++ {
			trials := e.Scenario.Trials(baseSeed + int64(s))
			spans[ei][s] = span{start: len(units), n: len(trials)}
			for i := range trials {
				units = append(units, trials[i].Run)
			}
		}
	}

	parts, err := runUnits(ctx, units, cfg, reg)
	if err != nil {
		return nil, err
	}

	out := make([][]*Result, len(exps))
	for ei, e := range exps {
		out[ei] = make([]*Result, seeds)
		for s, sp := range spans[ei] {
			out[ei][s] = e.Scenario.Reduce(baseSeed+int64(s), parts[sp.start:sp.start+sp.n])
		}
	}
	return out, nil
}

// SuiteTrialCount reports how many independent trials RunSuite would
// schedule — the suite's effective parallelism ceiling.
func SuiteTrialCount(exps []Experiment, baseSeed int64, seeds int) int {
	if seeds < 1 {
		seeds = 1
	}
	n := 0
	for _, e := range exps {
		for s := 0; s < seeds; s++ {
			n += len(e.Scenario.Trials(baseSeed + int64(s)))
		}
	}
	return n
}
