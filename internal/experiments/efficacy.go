package experiments

import (
	"net/netip"
	"time"

	"lifeguard/internal/bgp"
	"lifeguard/internal/collectors"
	"lifeguard/internal/metrics"
	"lifeguard/internal/obs"
	"lifeguard/internal/outage"
	"lifeguard/internal/splice"
	"lifeguard/internal/topo"
	"lifeguard/internal/topogen"
)

// The §5.1 effectiveness results decompose into three independent
// sub-studies that share only the (deterministically rebuildable) rig:
//
//   - Testbed-style: the origin (single provider, Georgia-Tech-style)
//     harvests every AS on collector-peer paths to its prefix, poisons each
//     in turn, and counts how many peers that had been routing through the
//     poisoned AS find an alternate (paper: 77%, with two-thirds of the
//     failures being poisons of a stub's only provider).
//   - Large-scale simulation: for every (source, transit) pair over BGP
//     paths, does a valley-free route avoiding the transit exist (paper:
//     90% of 10M cases)?
//   - Isolated-failure check: for failures placed per the outage model,
//     alternates exist in 94% of cases.
//
// The testbed study also validates the static simulation against actual
// poisoning outcomes (paper: 92.5% agreement; our engine implements
// exactly the policy model, so agreement should be essentially total).
//
// Each trial builds its own rig from the seed, so the three run on
// separate workers without sharing an engine or clock. The rig's rng is a
// single per-seed stream consumed in a fixed order (peer sample → origin
// sample → site sample); trials that skip an earlier study burn its draws
// to stay stream-aligned with the sequential reference.

// efficacyRig is the §5.1 deployment every efficacy trial reconstructs:
// a converged internetwork, an origin announcing the production prefix
// with the plain baseline, collectors over a peer sample, and the
// harvested poison victims.
type efficacyRig struct {
	n        *net
	prod     netip.Prefix
	baseline topo.Path
	coll     *collectors.Collector
	victims  []topo.ASN
}

func buildEfficacyRig(seed int64, reg *obs.Registry) *efficacyRig {
	n := buildWithOrigin(seed, topogen.Config{
		NumTransit: 30, NumStub: 100,
		TransitPeerProb: 0.12, StubMultihomeProb: 0.72, TransitExtraProviderProb: 0.8,
	}, 1, reg)
	rig := &efficacyRig{n: n, prod: topo.ProductionPrefix(n.origin)}
	gtProvider := n.muxes[0]

	// Route collectors peer with a broad sample of ASes. (First draw on
	// the rig's rng stream.)
	peerSet := sample(n.rng, append(append([]topo.ASN(nil), n.gen.Stubs...), n.gen.Transit...), 60)
	rig.coll = collectors.New(n.eng)
	rig.coll.Instrument(reg)
	for _, p := range peerSet {
		if p != n.origin {
			rig.coll.AddPeer(p)
		}
	}

	rig.baseline = topo.Path{n.origin, n.origin, n.origin}
	n.eng.Announce(n.origin, rig.prod, bgp.OriginConfig{Pattern: rig.baseline})
	n.converge()

	// Harvest ASes on peer paths, excluding Tier-1s and the origin's
	// provider (the paper excluded Tier-1s and Cogent).
	tier1 := make(map[topo.ASN]bool)
	for _, t := range n.gen.Tier1s {
		tier1[t] = true
	}
	for _, a := range rig.coll.HarvestASes(rig.prod, n.origin) {
		if !tier1[a] && a != gtProvider {
			rig.victims = append(rig.victims, a)
		}
	}
	return rig
}

// sampleSimOrigins is the sim study's rng draw. The isolated-failure
// trial calls it too — discarding the result — so its later draws land on
// the same stream positions as in a sequential run of all three studies.
func (rig *efficacyRig) sampleSimOrigins() []topo.ASN {
	return sample(rig.n.rng, rig.n.gen.Stubs, 25)
}

// efficacyTestbedPart is the testbed trial's partial result.
type efficacyTestbedPart struct {
	victims          int
	casesOnPath      int
	foundAlt         int
	stubOnlyProvider int
	agree            metrics.Counter
}

func efficacyTestbed(seed int64, reg *obs.Registry) *efficacyTestbedPart {
	rig := buildEfficacyRig(seed, reg)
	n := rig.n
	p := &efficacyTestbedPart{victims: len(rig.victims)}
	for _, a := range rig.victims {
		since := n.clk.Now()
		n.eng.Announce(n.origin, rig.prod, bgp.OriginConfig{Pattern: topo.Path{n.origin, a, n.origin}})
		n.converge()
		rep := rig.coll.ConvergenceReport(rig.prod, since, a)
		reach := splice.Reach(n.top, n.origin, splice.Avoid1(a))
		for _, pc := range rep {
			if !pc.WasOnPath || pc.Peer == a {
				continue
			}
			p.casesOnPath++
			got := pc.FinalPath != nil
			if got {
				p.foundAlt++
			} else if isStubWithOnlyProvider(n.top, pc.Peer, a) {
				p.stubOnlyProvider++
			}
			// Validation: actual outcome vs static prediction.
			p.agree.Observe(got == reach[pc.Peer])
		}
		n.eng.Announce(n.origin, rig.prod, bgp.OriginConfig{Pattern: rig.baseline})
		n.converge()
	}
	return p
}

// efficacySimPart is the large-scale static-simulation partial result.
type efficacySimPart struct {
	simCases, simAlt int
}

func efficacySim(seed int64, reg *obs.Registry) *efficacySimPart {
	rig := buildEfficacyRig(seed, reg)
	n := rig.n
	p := &efficacySimPart{}
	origins := rig.sampleSimOrigins()
	for _, o := range origins {
		for _, src := range n.top.ASNs() {
			if src == o {
				continue
			}
			path := n.eng.ASPathTo(src, topo.ProductionAddr(o))
			hops := transitHops(path)
			if len(path) < 3 || len(hops) == 0 {
				continue
			}
			// Skip the destination's immediate provider (last transit):
			// a single-homed destination can never avoid it.
			for _, h := range hops[:max(0, len(hops)-1)] {
				p.simCases++
				if splice.CanReach(n.top, src, o, splice.Avoid1(h)) {
					p.simAlt++
				}
			}
		}
	}
	return p
}

// efficacyIsoPart is the isolated-failure partial result.
type efficacyIsoPart struct {
	isoCases, isoAlt int
}

func efficacyIso(seed int64, reg *obs.Registry) *efficacyIsoPart {
	rig := buildEfficacyRig(seed, reg)
	n := rig.n
	_ = rig.sampleSimOrigins() // burn the sim study's draw: stream alignment
	p := &efficacyIsoPart{}

	// Failure locations drawn per the outage model on monitored paths.
	events := outage.Generate(outage.Config{Seed: seed, N: 1500})
	sites := sample(n.rng, n.gen.Stubs, 20)
	for i, ev := range events {
		src := sites[i%len(sites)]
		dst := sites[(i+7)%len(sites)]
		if src == dst {
			continue
		}
		path := n.eng.ASPathTo(src, topo.ProductionAddr(dst))
		if len(path) < 3 {
			continue
		}
		failAS, ok := chooseFailureAS(n, path, ev.Duration)
		if !ok || failAS == dst || failAS == src {
			continue
		}
		// Only long-lasting partial outages reach the poisoning stage:
		// detection plus isolation takes ~7 minutes (§4.2), so the
		// isolated-failure population is the >=10 min survivors.
		if !ev.Partial || ev.Duration < 10*time.Minute {
			continue
		}
		p.isoCases++
		if splice.CanReach(n.top, src, dst, splice.Avoid1(failAS)) {
			p.isoAlt++
		}
	}
	return p
}

var efficacyScenario = Scenario{
	Trials: func(seed int64) []Trial {
		return []Trial{
			{Name: "testbed", Run: func(reg *obs.Registry) any { return efficacyTestbed(seed, reg) }},
			{Name: "simulation", Run: func(reg *obs.Registry) any { return efficacySim(seed, reg) }},
			{Name: "isolated", Run: func(reg *obs.Registry) any { return efficacyIso(seed, reg) }},
		}
	},
	Reduce: func(_ int64, parts []any) *Result {
		tb := parts[0].(*efficacyTestbedPart)
		sim := parts[1].(*efficacySimPart)
		iso := parts[2].(*efficacyIsoPart)

		r := newResult("tab1-efficacy", "poisoning efficacy")
		tab := &metrics.Table{
			Title:  "Table 1 / §5.1 — do routes around a poisoned AS exist?",
			Header: []string{"study", "cases", "alternate found", "fraction"},
		}
		tab.AddRow("testbed poisons (peers on path)", tb.casesOnPath, tb.foundAlt, frac(tb.foundAlt, tb.casesOnPath))
		tab.AddRow("large-scale simulation", sim.simCases, sim.simAlt, frac(sim.simAlt, sim.simCases))
		tab.AddRow("isolated failures", iso.isoCases, iso.isoAlt, frac(iso.isoAlt, iso.isoCases))
		r.addTable(tab)

		r.Values["poisons"] = float64(tb.victims)
		r.Values["frac_peers_found_alternate"] = frac(tb.foundAlt, tb.casesOnPath)
		r.Values["frac_failures_stub_only_provider"] = frac(tb.stubOnlyProvider, tb.casesOnPath-tb.foundAlt)
		r.Values["frac_sim_alternate"] = frac(sim.simAlt, sim.simCases)
		r.Values["frac_isolated_alternate"] = frac(iso.isoAlt, iso.isoCases)
		r.Values["sim_vs_testbed_agreement"] = tb.agree.Fraction()

		r.notef("paper: 77%% of on-path collector peers found alternates; measured %.0f%%", frac(tb.foundAlt, tb.casesOnPath)*100)
		r.notef("paper: two-thirds of no-alternate cases were a stub's only provider; measured %.0f%%",
			frac(tb.stubOnlyProvider, tb.casesOnPath-tb.foundAlt)*100)
		r.notef("paper: alternates in 90%% of 10M simulated cases; measured %.0f%% of %d", frac(sim.simAlt, sim.simCases)*100, sim.simCases)
		r.notef("paper: alternates for 94%% of isolated failures; measured %.0f%%", frac(iso.isoAlt, iso.isoCases)*100)
		r.notef("paper: simulation matched testbed outcomes in 92.5%% of cases; measured %.1f%%", tb.agree.Percent())
		return r
	},
}

// Efficacy regenerates the §5.1 effectiveness results (sequential
// reference path over the three-trial scenario above).
func Efficacy(seed int64) *Result { return efficacyScenario.Run(seed) }

// isStubWithOnlyProvider reports whether peer is a stub whose sole provider
// is a — the captive case the paper identifies as the dominant reason
// poisoning cuts a network off.
func isStubWithOnlyProvider(top *topo.Topology, peer, a topo.ASN) bool {
	provs := top.Providers(peer)
	return len(top.Customers(peer)) == 0 && len(provs) == 1 && provs[0] == a
}
