package experiments

import (
	"time"

	"lifeguard/internal/bgp"
	"lifeguard/internal/collectors"
	"lifeguard/internal/metrics"
	"lifeguard/internal/outage"
	"lifeguard/internal/splice"
	"lifeguard/internal/topo"
	"lifeguard/internal/topogen"
)

// Efficacy regenerates the §5.1 effectiveness results:
//
//   - Testbed-style: the origin (single provider, Georgia-Tech-style)
//     harvests every AS on collector-peer paths to its prefix, poisons each
//     in turn, and counts how many peers that had been routing through the
//     poisoned AS find an alternate (paper: 77%, with two-thirds of the
//     failures being poisons of a stub's only provider).
//   - Large-scale simulation: for every (source, transit) pair over BGP
//     paths, does a valley-free route avoiding the transit exist (paper:
//     90% of 10M cases)?
//   - Validation: the static simulation must agree with the actual
//     poisoning outcomes (paper: 92.5% agreement; our engine implements
//     exactly the policy model, so agreement should be essentially total).
//   - Isolated-failure check: for failures placed per the outage model,
//     alternates exist in 94% of cases.
func Efficacy(seed int64) *Result {
	r := newResult("tab1-efficacy", "poisoning efficacy")
	n := buildWithOrigin(seed, topogen.Config{
		NumTransit: 30, NumStub: 100,
		TransitPeerProb: 0.12, StubMultihomeProb: 0.72, TransitExtraProviderProb: 0.8,
	}, 1)
	prod := topo.ProductionPrefix(n.origin)
	gtProvider := n.muxes[0]

	// Route collectors peer with a broad sample of ASes.
	peerSet := sample(n.rng, append(append([]topo.ASN(nil), n.gen.Stubs...), n.gen.Transit...), 60)
	coll := collectors.New(n.eng)
	for _, p := range peerSet {
		if p != n.origin {
			coll.AddPeer(p)
		}
	}

	baseline := topo.Path{n.origin, n.origin, n.origin}
	n.eng.Announce(n.origin, prod, bgp.OriginConfig{Pattern: baseline})
	n.converge()

	// Harvest ASes on peer paths, excluding Tier-1s and the origin's
	// provider (the paper excluded Tier-1s and Cogent).
	tier1 := make(map[topo.ASN]bool)
	for _, t := range n.gen.Tier1s {
		tier1[t] = true
	}
	var victims []topo.ASN
	for _, a := range coll.HarvestASes(prod, n.origin) {
		if !tier1[a] && a != gtProvider {
			victims = append(victims, a)
		}
	}

	var casesOnPath, foundAlt, stubOnlyProvider int
	agree := &metrics.Counter{}
	for _, a := range victims {
		since := n.clk.Now()
		n.eng.Announce(n.origin, prod, bgp.OriginConfig{Pattern: topo.Path{n.origin, a, n.origin}})
		n.converge()
		rep := coll.ConvergenceReport(prod, since, a)
		reach := splice.Reach(n.top, n.origin, splice.Avoid1(a))
		for _, pc := range rep {
			if !pc.WasOnPath || pc.Peer == a {
				continue
			}
			casesOnPath++
			got := pc.FinalPath != nil
			if got {
				foundAlt++
			} else if isStubWithOnlyProvider(n.top, pc.Peer, a) {
				stubOnlyProvider++
			}
			// Validation: actual outcome vs static prediction.
			agree.Observe(got == reach[pc.Peer])
		}
		n.eng.Announce(n.origin, prod, bgp.OriginConfig{Pattern: baseline})
		n.converge()
	}

	// Large-scale static simulation over every (source, transit) pair.
	var simCases, simAlt int
	origins := sample(n.rng, n.gen.Stubs, 25)
	for _, o := range origins {
		for _, src := range n.top.ASNs() {
			if src == o {
				continue
			}
			path := n.eng.ASPathTo(src, topo.ProductionAddr(o))
			hops := transitHops(path)
			if len(path) < 3 || len(hops) == 0 {
				continue
			}
			// Skip the destination's immediate provider (last transit):
			// a single-homed destination can never avoid it.
			for _, h := range hops[:max(0, len(hops)-1)] {
				simCases++
				if splice.CanReach(n.top, src, o, splice.Avoid1(h)) {
					simAlt++
				}
			}
		}
	}

	// Isolated-failure check: failure locations drawn per the outage
	// model on monitored paths.
	events := outage.Generate(outage.Config{Seed: seed, N: 1500})
	var isoCases, isoAlt int
	sites := sample(n.rng, n.gen.Stubs, 20)
	for i, ev := range events {
		src := sites[i%len(sites)]
		dst := sites[(i+7)%len(sites)]
		if src == dst {
			continue
		}
		path := n.eng.ASPathTo(src, topo.ProductionAddr(dst))
		if len(path) < 3 {
			continue
		}
		failAS, ok := chooseFailureAS(n, path, ev.Duration)
		if !ok || failAS == dst || failAS == src {
			continue
		}
		// Only long-lasting partial outages reach the poisoning stage:
		// detection plus isolation takes ~7 minutes (§4.2), so the
		// isolated-failure population is the >=10 min survivors.
		if !ev.Partial || ev.Duration < 10*time.Minute {
			continue
		}
		isoCases++
		if splice.CanReach(n.top, src, dst, splice.Avoid1(failAS)) {
			isoAlt++
		}
	}

	tab := &metrics.Table{
		Title:  "Table 1 / §5.1 — do routes around a poisoned AS exist?",
		Header: []string{"study", "cases", "alternate found", "fraction"},
	}
	tab.AddRow("testbed poisons (peers on path)", casesOnPath, foundAlt, frac(foundAlt, casesOnPath))
	tab.AddRow("large-scale simulation", simCases, simAlt, frac(simAlt, simCases))
	tab.AddRow("isolated failures", isoCases, isoAlt, frac(isoAlt, isoCases))
	r.addTable(tab)

	r.Values["poisons"] = float64(len(victims))
	r.Values["frac_peers_found_alternate"] = frac(foundAlt, casesOnPath)
	r.Values["frac_failures_stub_only_provider"] = frac(stubOnlyProvider, casesOnPath-foundAlt)
	r.Values["frac_sim_alternate"] = frac(simAlt, simCases)
	r.Values["frac_isolated_alternate"] = frac(isoAlt, isoCases)
	r.Values["sim_vs_testbed_agreement"] = agree.Fraction()

	r.notef("paper: 77%% of on-path collector peers found alternates; measured %.0f%%", frac(foundAlt, casesOnPath)*100)
	r.notef("paper: two-thirds of no-alternate cases were a stub's only provider; measured %.0f%%",
		frac(stubOnlyProvider, casesOnPath-foundAlt)*100)
	r.notef("paper: alternates in 90%% of 10M simulated cases; measured %.0f%% of %d", frac(simAlt, simCases)*100, simCases)
	r.notef("paper: alternates for 94%% of isolated failures; measured %.0f%%", frac(isoAlt, isoCases)*100)
	r.notef("paper: simulation matched testbed outcomes in 92.5%% of cases; measured %.1f%%", agree.Percent())
	return r
}

// isStubWithOnlyProvider reports whether peer is a stub whose sole provider
// is a — the captive case the paper identifies as the dominant reason
// poisoning cuts a network off.
func isStubWithOnlyProvider(top *topo.Topology, peer, a topo.ASN) bool {
	provs := top.Providers(peer)
	return len(top.Customers(peer)) == 0 && len(provs) == 1 && provs[0] == a
}
