package experiments

import (
	"fmt"
	"math/rand"

	"lifeguard/internal/bgp"
	"lifeguard/internal/dataplane"
	"lifeguard/internal/obs"
	"lifeguard/internal/probe"
	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
	"lifeguard/internal/topogen"
)

// net bundles the simulated internetwork an experiment runs over.
type net struct {
	gen    *topogen.Result
	top    *topo.Topology
	clk    *simclock.Scheduler
	eng    *bgp.Engine
	plane  *dataplane.Plane
	prober *probe.Prober
	rng    *rand.Rand
	reg    *obs.Registry // nil when the trial runs uninstrumented

	// origin, when built with buildWithOrigin, is the multihomed stub AS
	// playing the LIFEGUARD/BGP-Mux role; muxes are its providers.
	origin topo.ASN
	muxes  []topo.ASN
}

func (n *net) hub(asn topo.ASN) topo.RouterID { return n.top.AS(asn).Routers[0] }

func (n *net) converge() {
	if !n.eng.Converge(500_000_000) {
		panic("experiments: BGP did not converge")
	}
}

// engineShardWorkers is the bgp.Config.ShardWorkers value every experiment
// engine is built with. 0 (the default) keeps the classic loop — and the
// seed-pinned numbers in EXPERIMENTS.md, which were recorded under it. Any
// value >= 1 selects the sharded loop, whose results are identical for every
// worker count but form a separate deterministic universe from classic.
var engineShardWorkers int

// SetEngineShardWorkers selects the engine execution model for subsequently
// built experiment networks (see cmd/lgexp's -shard flag). Call it before
// RunSuite, never concurrently with running trials.
func SetEngineShardWorkers(n int) { engineShardWorkers = n }

// build assembles a converged internetwork of the given size. reg, when
// non-nil, instruments every subsystem of the assembled network.
func build(seed int64, cfg topogen.Config, reg *obs.Registry) *net {
	cfg.Seed = seed
	gen, err := topogen.Generate(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: topogen: %v", err))
	}
	clk := simclock.New()
	eng := bgp.New(gen.Top, clk, bgp.Config{Seed: seed, Obs: reg, ShardWorkers: engineShardWorkers})
	for _, asn := range gen.Top.ASNs() {
		eng.Originate(asn, topo.Block(asn))
	}
	n := &net{
		gen: gen, top: gen.Top, clk: clk, eng: eng,
		plane: dataplane.New(gen.Top, eng),
		rng:   rand.New(rand.NewSource(seed ^ 0x5EED)),
		reg:   reg,
	}
	n.plane.Instrument(reg)
	n.prober = probe.New(gen.Top, n.plane, clk, probe.Config{})
	n.prober.Instrument(reg)
	n.converge()
	return n
}

// buildWithOrigin builds an internetwork plus a fresh multihomed origin
// stub attached to `providers` distinct transit ASes — the BGP-Mux
// deployment shape of §5 (one AS, announcements via several university
// muxes).
func buildWithOrigin(seed int64, cfg topogen.Config, providers int, reg *obs.Registry) *net {
	cfg.Seed = seed
	gen, err := topogen.GenerateWithOrigin(cfg, providers)
	if err != nil {
		panic(fmt.Sprintf("experiments: topogen: %v", err))
	}
	clk := simclock.New()
	eng := bgp.New(gen.Top, clk, bgp.Config{Seed: seed, Obs: reg, ShardWorkers: engineShardWorkers})
	for _, asn := range gen.Top.ASNs() {
		eng.Originate(asn, topo.Block(asn))
	}
	n := &net{
		gen: gen, top: gen.Top, clk: clk, eng: eng,
		plane:  dataplane.New(gen.Top, eng),
		rng:    rand.New(rand.NewSource(seed ^ 0x5EED)),
		reg:    reg,
		origin: gen.Origin,
		muxes:  gen.Top.Providers(gen.Origin),
	}
	n.plane.Instrument(reg)
	n.prober = probe.New(gen.Top, n.plane, clk, probe.Config{})
	n.prober.Instrument(reg)
	n.converge()
	return n
}

// sample returns k distinct elements of xs in deterministic shuffled order.
func sample[T any](rng *rand.Rand, xs []T, k int) []T {
	idx := rng.Perm(len(xs))
	if k > len(xs) {
		k = len(xs)
	}
	out := make([]T, 0, k)
	for _, i := range idx[:k] {
		out = append(out, xs[i])
	}
	return out
}

// transitHops returns the path's transit ASes: everything except the first
// (the viewer's neighbor may be kept via keepFirst=false) and the origin's
// trailing pattern.
func transitHops(p topo.Path) []topo.ASN {
	if len(p) == 0 {
		return nil
	}
	origin := p[len(p)-1]
	var out []topo.ASN
	for _, a := range p {
		if a == origin {
			break
		}
		out = append(out, a)
	}
	return out
}
