package experiments

import (
	"time"

	"lifeguard/internal/metrics"
	"lifeguard/internal/obs"
	"lifeguard/internal/outage"
	"lifeguard/internal/splice"
	"lifeguard/internal/topo"
	"lifeguard/internal/topogen"
)

// AltPaths regenerates the §2.2 analysis: during outages between a mesh of
// measurement sites, how often do the observed traceroutes contain a
// working, policy-compliant spliced path around the failed AS? The paper
// found alternates for 49% of all outages, 83% of outages lasting at least
// an hour, and that 98% of alternates present in the first round persisted.
//
// Failure locations follow the paper's empirical pattern: long-lived
// problems concentrate in transit networks away from the edge (where path
// diversity is high), while short blips cluster at the destination's access
// providers (where a single-homed stub has no alternative) — that location
// skew is what makes alternate-path availability grow with outage duration.
func AltPaths(seed int64) *Result { return altPaths(seed, nil) }

func altPaths(seed int64, reg *obs.Registry) *Result {
	r := newResult("sec2.2", "policy-compliant alternate paths during outages")
	// PlanetLab-like conditions: sites are multihomed academic edge
	// networks, and the transit mesh is well peered.
	n := build(seed, topogen.Config{NumTransit: 30, NumStub: 90,
		TransitPeerProb: 0.12, StubMultihomeProb: 0.75}, reg)

	// Site mix mirrors PlanetLab: mostly multihomed academic networks,
	// with a minority of single-homed sites.
	var multihomed, singlehomed []topo.ASN
	for _, s := range n.gen.Stubs {
		if len(n.top.Providers(s)) >= 2 {
			multihomed = append(multihomed, s)
		} else {
			singlehomed = append(singlehomed, s)
		}
	}
	sites := sample(n.rng, multihomed, 34)
	sites = append(sites, sample(n.rng, singlehomed, 16)...)
	type sitePair struct{ s, d int }

	// One week-equivalent of mesh traceroutes: every ordered site pair.
	obs := splice.NewObserved()
	fromSite := make(map[topo.ASN][]splice.HopPath)
	toSite := make(map[topo.ASN][]splice.HopPath)
	pathFor := make(map[sitePair]topo.Path)
	for i, s := range sites {
		for j, d := range sites {
			if i == j {
				continue
			}
			tr := n.prober.Traceroute(n.hub(s), n.top.Router(n.hub(d)).Addr)
			if !tr.ReachedDst {
				continue
			}
			hp := splice.HopPath(tr.Hops)
			obs.AddASPath(hp.ASPath())
			fromSite[s] = append(fromSite[s], hp)
			toSite[d] = append(toSite[d], hp)
			pathFor[sitePair{i, j}] = hp.ASPath()
		}
	}
	// The paper's export-policy corpus comes from a week of continuous
	// mesh rounds — on the order of a million traceroutes. Enrich the
	// observed-subpath index (only the index; splice candidates still
	// come from the site mesh) with paths from every stub to the sites.
	for _, s := range n.gen.Stubs {
		for _, d := range n.gen.Stubs {
			if s == d {
				continue
			}
			tr := n.prober.Traceroute(n.hub(s), n.top.Router(n.hub(d)).Addr)
			if tr.ReachedDst {
				obs.AddASPath(splice.HopPath(tr.Hops).ASPath())
			}
		}
	}

	// Outage events: draw durations from the calibrated workload, then
	// place each failure on the live path of a random site pair.
	events := outage.Generate(outage.Config{Seed: seed, N: 1500})
	var all, allWithAlt, long, longWithAlt, persist, persistChecked int
	var reachable int // diagnostic upper bound: a valley-free path exists
	for _, ev := range events {
		i := n.rng.Intn(len(sites))
		j := n.rng.Intn(len(sites))
		if i == j {
			continue
		}
		path := pathFor[sitePair{i, j}]
		if len(path) < 3 {
			continue
		}
		d := sites[j]
		failAS, ok := chooseFailureAS(n, path, ev.Duration)
		if !ok {
			continue
		}
		all++
		isLong := ev.Duration >= time.Hour
		if isLong {
			long++
		}
		if splice.CanReach(n.top, sites[i], d, splice.Avoid1(failAS)) {
			reachable++
		}
		alt, found := splice.Splice(fromSite[sites[i]], toSite[d], failAS, obs)
		if found {
			allWithAlt++
			if isLong {
				longWithAlt++
			}
			// Persistence: does the same splice hold at the end of the
			// outage? Our control plane is static across the outage, so
			// re-validating the spliced path suffices.
			persistChecked++
			if stillValid(n, alt, failAS) {
				persist++
			}
		}
	}

	tab := &metrics.Table{
		Title:  "§2.2 — alternate policy-compliant paths during outages",
		Header: []string{"class", "outages", "with alternate", "fraction"},
	}
	tab.AddRow("all", all, allWithAlt, frac(allWithAlt, all))
	tab.AddRow(">=1h", long, longWithAlt, frac(longWithAlt, long))
	tab.AddRow("persisted", persistChecked, persist, frac(persist, persistChecked))
	r.addTable(tab)

	r.Values["outages"] = float64(all)
	r.Values["frac_valley_free_alternate_exists"] = frac(reachable, all)
	r.Values["frac_with_alternate"] = frac(allWithAlt, all)
	r.Values["frac_with_alternate_ge_1h"] = frac(longWithAlt, long)
	r.Values["frac_alternate_persisted"] = frac(persist, persistChecked)

	r.notef("paper: alternates existed for 49%% of outages; measured %.0f%%", frac(allWithAlt, all)*100)
	r.notef("paper: 83%% for outages >=1h; measured %.0f%%", frac(longWithAlt, long)*100)
	r.notef("paper: 98%% of first-round alternates persisted; measured %.0f%%", frac(persist, persistChecked)*100)
	return r
}

// chooseFailureAS picks where the outage lives on the path, biased by
// duration: short outages mostly at the destination's access provider
// (where a stub has little or no diversity), long outages in interior
// transit (where diversity is high). This is the empirical pattern behind
// the paper's §2.2 finding that alternate availability grows with duration.
func chooseFailureAS(n *net, path topo.Path, d time.Duration) (topo.ASN, bool) {
	// path: src-side first, destination AS last.
	if len(path) < 3 {
		return 0, false
	}
	mid := path[1 : len(path)-1]
	accessProvider := mid[len(mid)-1] // the destination's provider
	interior := mid
	if len(mid) >= 3 {
		interior = mid[1 : len(mid)-1] // exclude both edges' access providers
	}
	pAccess := 0.65
	if d >= time.Hour {
		pAccess = 0.0
	} else if d >= 10*time.Minute {
		pAccess = 0.35
	}
	if n.rng.Float64() < pAccess {
		return accessProvider, true
	}
	// Long-lasting problems occur outside the largest networks (§7.1
	// cites [32, 36]): exclude Tier-1s from long-outage placement.
	if d >= 10*time.Minute {
		var nonT1 []topo.ASN
		for _, a := range interior {
			if n.top.AS(a).Tier != 1 {
				nonT1 = append(nonT1, a)
			}
		}
		if len(nonT1) > 0 {
			interior = nonT1
		}
	}
	return interior[n.rng.Intn(len(interior))], true
}

// stillValid re-walks the spliced path hop sequence against the data plane
// to confirm adjacent hops remain connected and off the failed AS.
func stillValid(n *net, alt splice.HopPath, failAS topo.ASN) bool {
	for _, h := range alt {
		if !h.Star && h.AS == failAS {
			return false
		}
	}
	// Adjacent spliced hops must still be reachable pairwise.
	var prev *topo.RouterID
	for i := range alt {
		if alt[i].Star {
			continue
		}
		cur := alt[i].Router
		if prev != nil && *prev != cur {
			// same-AS hops are intra-connected by construction; check
			// AS boundaries only, cheaply, via topology adjacency.
			a, b := n.top.Router(*prev).AS, n.top.Router(cur).AS
			if a != b && !n.top.Adjacent(a, b) {
				return false
			}
		}
		prev = &cur
	}
	return true
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
