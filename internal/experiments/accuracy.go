package experiments

import (
	"net/netip"
	"time"

	"lifeguard/internal/atlas"
	"lifeguard/internal/core/isolation"
	"lifeguard/internal/dataplane"
	"lifeguard/internal/metrics"
	"lifeguard/internal/obs"
	"lifeguard/internal/outage"
	"lifeguard/internal/topo"
	"lifeguard/internal/topogen"
)

// isoRig is the measurement deployment the §5.3/§5.4 experiments share:
// vantage points, targets, a warmed atlas, and an isolator over a synthetic
// internetwork.
type isoRig struct {
	n       *net
	atl     *atlas.Atlas
	iso     *isolation.Isolator
	vps     []topo.RouterID
	targets []netip.Addr
}

func buildIsoRig(seed int64, reg *obs.Registry) *isoRig {
	n := build(seed, topogen.Config{NumTransit: 35, NumStub: 110}, reg)
	rig := &isoRig{n: n}
	rig.atl = atlas.New(n.top, n.prober, n.clk, atlas.Config{})
	for _, s := range sample(n.rng, n.gen.Stubs, 8) {
		vp := n.hub(s)
		rig.vps = append(rig.vps, vp)
		rig.atl.AddVP(vp)
	}
	targetASes := sample(n.rng, append(append([]topo.ASN(nil), n.gen.Stubs...), n.gen.Transit...), 20)
	for _, t := range targetASes {
		addr := n.top.Router(n.hub(t)).Addr
		rig.targets = append(rig.targets, addr)
		rig.atl.AddTarget(addr)
	}
	// Two atlas rounds of history.
	rig.atl.RefreshAll()
	n.clk.RunFor(15 * time.Minute)
	rig.atl.RefreshAll()
	n.clk.RunFor(time.Minute)
	rig.iso = isolation.New(n.top, n.prober, rig.atl, n.clk, isolation.Config{})
	rig.iso.Instrument(reg)
	return rig
}

// injectedFailure describes one ground-truth fault.
type injectedFailure struct {
	as topo.ASN
	// next is the far side of the failed link for ASLink faults.
	next   topo.ASN
	isLink bool
	ids    []dataplane.FailureID
	dir    outage.Direction
	kind   outage.Kind
}

// matches reports whether an isolation report correctly localizes this
// fault: the blamed AS is the faulty one, or — for link faults, where the
// paper also blames at link granularity — the blamed link touches it.
func (f *injectedFailure) matches(rep *isolation.Report) bool {
	if rep.Blamed == f.as {
		return true
	}
	if f.isLink && rep.BlamedLink != nil {
		l := *rep.BlamedLink
		return (l[0] == f.as && l[1] == f.next) || (l[0] == f.next && l[1] == f.as)
	}
	return false
}

// inject places ev's failure on the live path between vp and target,
// returning ground truth, or ok=false when no sensible placement exists.
func (rig *isoRig) inject(ev outage.Event, vp topo.RouterID, target netip.Addr) (injectedFailure, bool) {
	n := rig.n
	vpAS := n.top.Router(vp).AS
	tgtOwner, _ := topo.OwnerOf(target)
	fwd := n.eng.ASPathTo(vpAS, target)
	rev := n.eng.ASPathTo(tgtOwner, n.top.Router(vp).Addr)
	pick := func(p topo.Path) (topo.ASN, topo.ASN, bool) {
		// Choose a transit hop (not either edge AS); return it and the
		// next AS toward the victim side (for link failures).
		if len(p) < 3 {
			return 0, 0, false
		}
		mid := p[:len(p)-1] // drop the origin AS of the path
		var cands []int
		for i, a := range mid {
			if a != vpAS && a != tgtOwner {
				cands = append(cands, i)
			}
		}
		if len(cands) == 0 {
			return 0, 0, false
		}
		i := cands[n.rng.Intn(len(cands))]
		next := p[len(p)-1]
		if i+1 < len(p) {
			next = p[i+1]
		}
		return mid[i], next, true
	}

	f := injectedFailure{dir: ev.Direction, kind: ev.Kind}
	add := func(rule dataplane.Rule) { f.ids = append(f.ids, n.plane.AddFailure(rule)) }
	// AS-internal faults hit one router inside the AS (a corrupted line
	// card, §2.1), so forward traceroutes die *inside* the faulty AS —
	// the case where traceroute-only diagnosis gets the AS right. Link
	// faults and reverse faults are where it goes wrong.
	internalRule := func(x topo.ASN, towards topo.ASN) dataplane.Rule {
		return dataplane.Rule{
			AtRouter: n.hub(x), HasRouter: true,
			DstWithin: topo.Block(towards),
		}
	}
	switch ev.Direction {
	case outage.Reverse:
		x, next, ok := pick(rev)
		if !ok {
			return f, false
		}
		f.as = x
		if ev.Kind == outage.ASLink && n.top.Adjacent(x, next) {
			f.isLink, f.next = true, next
			add(dataplane.DropASLink(x, next))
		} else {
			add(internalRule(x, vpAS))
		}
	case outage.Forward:
		x, next, ok := pick(fwd)
		if !ok {
			return f, false
		}
		f.as = x
		if ev.Kind == outage.ASLink && n.top.Adjacent(x, next) {
			f.isLink, f.next = true, next
			add(dataplane.DropASLink(x, next))
		} else {
			add(internalRule(x, tgtOwner))
		}
	default:
		x, _, ok := pick(fwd)
		if !ok {
			return f, false
		}
		f.as = x
		add(internalRule(x, tgtOwner))
		add(internalRule(x, vpAS))
	}
	return f, true
}

func (rig *isoRig) clear(f injectedFailure) {
	for _, id := range f.ids {
		rig.n.plane.RemoveFailure(id)
	}
}

// Accuracy regenerates the §5.3 evaluation: inject ground-truth failures,
// run isolation, and compare (a) the blamed AS against the injected one —
// the analogue of "consistent with traceroutes from the far side" (93%) —
// and (b) LIFEGUARD's blame against what traceroute alone would conclude
// (different in 40% of poisoning-candidate cases).
func Accuracy(seed int64) *Result { return accuracy(seed, nil) }

func accuracy(seed int64, reg *obs.Registry) *Result {
	r := newResult("tab1-accuracy", "failure isolation accuracy")
	rig := buildIsoRig(seed, reg)
	n := rig.n

	events := outage.Generate(outage.Config{Seed: seed + 1, N: 600})
	correct := &metrics.Counter{}
	trDiffer := &metrics.Counter{}
	dirCorrect := &metrics.Counter{}
	byDir := map[outage.Direction]*metrics.Counter{
		outage.Forward: {}, outage.Reverse: {}, outage.Bidirectional: {},
	}
	episodes := 0
	for _, ev := range events {
		if episodes >= 120 {
			break
		}
		vp := rig.vps[n.rng.Intn(len(rig.vps))]
		target := rig.targets[n.rng.Intn(len(rig.targets))]
		if n.top.Router(vp).AS == mustOwner(target) {
			continue
		}
		f, ok := rig.inject(ev, vp, target)
		if !ok {
			continue
		}
		// The failure must actually break the monitored pair; partial
		// placements that don't are skipped (as in the paper's criteria).
		if n.prober.Ping(vp, target).OK {
			rig.clear(f)
			continue
		}
		episodes++
		rep := rig.iso.Isolate(vp, target)
		rig.clear(f)
		if rep.Healed {
			continue
		}
		hit := f.matches(rep)
		correct.Observe(hit)
		byDir[f.dir].Observe(hit)
		if rep.Blamed != 0 {
			trDiffer.Observe(rep.TracerouteBlame != rep.Blamed)
		}
		wantDir := map[outage.Direction]isolation.Direction{
			outage.Forward: isolation.Forward, outage.Reverse: isolation.Reverse,
			outage.Bidirectional: isolation.Bidirectional,
		}[f.dir]
		dirCorrect.Observe(rep.Direction == wantDir)
	}

	tab := &metrics.Table{
		Title:  "Table 1 / §5.3 — isolation vs ground truth",
		Header: []string{"metric", "hits/total", "fraction"},
	}
	tab.AddRow("blamed AS == injected AS", correct.String(), correct.Fraction())
	tab.AddRow("direction identified", dirCorrect.String(), dirCorrect.Fraction())
	tab.AddRow("differs from traceroute-only", trDiffer.String(), trDiffer.Fraction())
	tab.AddRow("reverse-failure accuracy", byDir[outage.Reverse].String(), byDir[outage.Reverse].Fraction())
	tab.AddRow("forward-failure accuracy", byDir[outage.Forward].String(), byDir[outage.Forward].Fraction())
	r.addTable(tab)

	r.Values["episodes"] = float64(episodes)
	r.Values["frac_blame_correct"] = correct.Fraction()
	r.Values["frac_direction_correct"] = dirCorrect.Fraction()
	r.Values["frac_differs_from_traceroute"] = trDiffer.Fraction()

	r.notef("paper: isolation consistent with far-side view for 93%% (169/182); measured %.0f%% against injected ground truth",
		correct.Fraction()*100)
	r.notef("paper: 40%% of isolated outages blamed differently than traceroute alone; measured %.0f%%",
		trDiffer.Fraction()*100)
	return r
}

// Scalability regenerates the §5.4 overhead numbers: atlas refresh
// throughput and amortized cost, and per-isolation probe count and latency
// (paper: ~10 option probes + ~2 traceroutes per refreshed path, 225
// paths/min average; ~280 probes and ~140 s per isolated outage).
func Scalability(seed int64) *Result { return scalability(seed, nil) }

func scalability(seed int64, reg *obs.Registry) *Result {
	r := newResult("sec5.4", "measurement overhead and throughput")
	rig := buildIsoRig(seed, reg)
	n := rig.n

	// Steady-state refresh cost: probes per reverse path, amortized.
	n.prober.ResetSent()
	before := rig.atl.PathsRefreshed
	rounds := 3
	for i := 0; i < rounds; i++ {
		rig.atl.RefreshAll()
		n.clk.RunFor(15 * time.Minute)
	}
	probes := n.prober.ResetSent()
	refreshed := rig.atl.PathsRefreshed - before
	probesPerPath := float64(probes) / float64(refreshed)
	// Throughput at the paper's implied packet budget: 225 paths/min at
	// ~10 option probes plus ~2 traceroutes (~11 packets each) per path
	// is roughly 7200 probe packets per minute.
	pathsPerMin := 7200.0 / probesPerPath

	// Isolation cost over reverse-path failures (the poisoning
	// candidates the paper times).
	var probeCost, duration metrics.Sample
	events := outage.Generate(outage.Config{Seed: seed + 2, N: 200})
	done := 0
	for _, ev := range events {
		if done >= 25 {
			break
		}
		ev.Direction = outage.Reverse
		vp := rig.vps[done%len(rig.vps)]
		target := rig.targets[(done*3)%len(rig.targets)]
		if n.top.Router(vp).AS == mustOwner(target) {
			continue
		}
		f, ok := rig.inject(ev, vp, target)
		if !ok {
			continue
		}
		if n.prober.Ping(vp, target).OK {
			rig.clear(f)
			continue
		}
		rep := rig.iso.Isolate(vp, target)
		rig.clear(f)
		if rep.Healed {
			continue
		}
		done++
		probeCost.Add(float64(rep.ProbesUsed))
		duration.Add(rep.EstimatedDuration.Seconds())
	}

	tab := &metrics.Table{
		Title:  "§5.4 — measurement overhead",
		Header: []string{"metric", "measured", "paper"},
	}
	tab.AddRow("amortized probes per refreshed reverse path", probesPerPath, "~10 opts + 2 traceroutes")
	tab.AddRow("refresh throughput (paths/min @ 7200 probes/min)", pathsPerMin, "225 avg, 502 peak")
	tab.AddRow("probes per isolation (mean)", probeCost.Mean(), "~280")
	tab.AddRow("isolation latency seconds (mean)", duration.Mean(), "~140")
	r.addTable(tab)

	r.Values["probes_per_refreshed_path"] = probesPerPath
	r.Values["refresh_paths_per_min"] = pathsPerMin
	r.Values["probes_per_isolation"] = probeCost.Mean()
	r.Values["isolation_seconds"] = duration.Mean()
	r.Values["isolations_measured"] = float64(done)

	r.notef("paper: 140 s and ~280 probes per reverse-path isolation; measured %.0f s, %.0f probes",
		duration.Mean(), probeCost.Mean())
	r.notef("paper: 225 reverse paths/min refresh; measured %.0f at the same probe budget", pathsPerMin)
	return r
}

func mustOwner(a netip.Addr) topo.ASN {
	o, _ := topo.OwnerOf(a)
	return o
}
