package experiments

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"lifeguard/internal/bgp"
	"lifeguard/internal/runner"
	"lifeguard/internal/topo"
)

// recordStreams builds the efficacy rig for one seed, poisons the first
// harvested victim, and renders every collector peer's full update stream
// as text — a stable fingerprint of what the collectors saw.
func recordStreams(seed int64) string {
	rig := buildEfficacyRig(seed, nil)
	n := rig.n
	if len(rig.victims) > 0 {
		a := rig.victims[0]
		n.eng.Announce(n.origin, rig.prod, bgp.OriginConfig{Pattern: topo.Path{n.origin, a, n.origin}})
		n.converge()
	}
	var sb strings.Builder
	for _, p := range rig.coll.Peers() {
		for _, e := range rig.coll.Updates(p, rig.prod) {
			fmt.Fprintf(&sb, "%d %v %v\n", p, e.At, e.Path)
		}
	}
	return sb.String()
}

// TestCollectorStreamsIdenticalAcrossParallelism asserts the collector
// view is deterministic under the runner pool: the recorded update
// streams — timestamps, paths, and ordering — are identical whether the
// trials run sequentially or on 8 workers. The streams feed every
// efficacy/convergence number, so this pins the whole measurement layer.
func TestCollectorStreamsIdenticalAcrossParallelism(t *testing.T) {
	const trials = 3
	record := func(par int) []string {
		t.Helper()
		outs, err := runner.Map(context.Background(), trials, runner.Config{Parallelism: par},
			func(_ context.Context, i int) (string, error) {
				return recordStreams(int64(i + 1)), nil
			})
		if err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		return outs
	}

	want := record(1)
	for i, s := range want {
		if s == "" {
			t.Fatalf("seed %d recorded no updates", i+1)
		}
	}
	got := record(8)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("seed %d: collector streams differ between parallel 1 and 8", i+1)
		}
	}
}
