package experiments

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"lifeguard/internal/atlas"
	"lifeguard/internal/chaos"
	"lifeguard/internal/core/isolation"
	"lifeguard/internal/core/remedy"
	"lifeguard/internal/metrics"
	"lifeguard/internal/obs"
	"lifeguard/internal/outage"
	"lifeguard/internal/topo"
	"lifeguard/internal/topogen"
)

// The chaos experiment stress-tests the full LIFEGUARD loop — monitor →
// isolation → remedy — against scripted fault timelines from
// internal/chaos, swept over fault intensity. Each trial builds a BGP-Mux
// deployment (a multihomed origin watching remote targets), schedules
// outage-calibrated faults on the monitored reverse paths, lets a
// clock-driven monitor race them with poisoning repairs, and runs the
// chaos invariant checker over the whole timeline: any forwarding loop,
// RIB inconsistency, or failure to converge back to baseline is a
// violation, and the experiment demands zero.

// chaosIntensities are the fault-density multipliers swept (1.0 keeps the
// §2.1-calibrated 5-minute mean interarrival; 2.0 packs faults twice as
// tight, so repairs overlap and the one-repair-at-a-time engine saturates).
var chaosIntensities = []float64{0.5, 1, 2}

// chaosFaults is the number of scripted faults per intensity level.
const chaosFaults = 8

// chaosPart is one intensity level's trial outcome.
type chaosPart struct {
	intensity        float64
	faults           int
	injected, healed int
	barriers         int
	violations       int
	// episodes are monitor-observed reachability losses on the monitored
	// pairs; recovered counts those that ended, repaired those that ended
	// while a poison was active (the repair beat the scripted heal), and
	// ttrSum accumulates recovered durations in seconds.
	episodes  int
	recovered int
	repaired  int
	ttrSum    float64
	// poisons counts repairs the remedy engine installed.
	poisons int
}

var chaosScenario = Scenario{
	Trials: func(seed int64) []Trial {
		var ts []Trial
		for _, in := range chaosIntensities {
			in := in
			ts = append(ts, Trial{
				Name: fmt.Sprintf("intensity=%g", in),
				Run:  func(reg *obs.Registry) any { return chaosTrial(seed, in, reg) },
			})
		}
		return ts
	},
	Reduce: reduceChaos,
}

// Chaos runs the fault-injection stress sweep; see chaosScenario.
func Chaos(seed int64) *Result { return chaosScenario.Run(seed) }

// chaosPair is one monitored origin→target pair.
type chaosPair struct {
	as   topo.ASN
	addr netip.Addr
}

func chaosTrial(seed int64, intensity float64, reg *obs.Registry) chaosPart {
	n := buildWithOrigin(seed, topogen.Config{NumTransit: 15, NumStub: 30}, 3, reg)

	// The repair engine owns the origin's announcements. A short outage-age
	// gate and a tight sentinel keep the repair loop responsive at the
	// compressed timescales of a scripted run.
	ctrl := remedy.New(n.eng, n.prober, n.clk, remedy.Config{
		Origin:           n.origin,
		MinOutageAge:     time.Minute,
		SentinelInterval: time.Minute,
	})
	ctrl.Instrument(reg)
	ctrl.AnnounceBaseline()
	n.converge()

	// The measurement deployment: the origin hub watches two remote stub
	// targets (pinging from the production prefix, as the System does, so
	// reply traffic rides the poisonable announcement), with a warmed
	// atlas so isolation has reverse-path history.
	vp := n.hub(n.origin)
	src := topo.ProductionAddr(n.origin)
	var pairs []chaosPair
	atl := atlas.New(n.top, n.prober, n.clk, atlas.Config{})
	atl.AddVP(vp)
	for _, t := range sample(n.rng, n.gen.Stubs, 2) {
		addr := n.top.Router(n.hub(t)).Addr
		atl.AddTarget(addr)
		pairs = append(pairs, chaosPair{as: t, addr: addr})
	}
	atl.RefreshAll()
	n.clk.RunFor(15 * time.Minute)
	atl.RefreshAll()
	n.clk.RunFor(time.Minute)
	iso := isolation.New(n.top, n.prober, atl, n.clk, isolation.Config{})
	iso.Instrument(reg)

	script := chaosScript(n, pairs, seed, intensity)

	part := chaosPart{intensity: intensity}
	for _, st := range script.Steps {
		if !st.Check {
			part.faults++
		}
	}

	// The monitor: a clock-driven poller pinging each target every 30s.
	// On sustained loss it isolates and hands the report to the remedy
	// engine — the System loop, inlined so the trial stays self-contained.
	type episode struct {
		open    bool
		start   time.Duration
		lastIso time.Duration
	}
	states := make([]episode, len(pairs))
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		now := n.clk.Now()
		for i := range pairs {
			st := &states[i]
			ok := n.prober.PingFromAddr(vp, src, pairs[i].addr).OK
			switch {
			case !ok && !st.open:
				st.open, st.start, st.lastIso = true, now, now
				part.episodes++
			case !ok && st.open:
				if ctrl.Active() == nil && now-st.lastIso >= 2*time.Minute {
					st.lastIso = now
					rep := iso.Isolate(vp, pairs[i].addr)
					ctrl.DecideAndRepair(rep, st.start)
				}
			case ok && st.open:
				st.open = false
				part.recovered++
				part.ttrSum += (now - st.start).Seconds()
				if a := ctrl.Active(); a != nil && a.Victim == pairs[i].addr {
					// Reachability to this victim returned while its
					// poison was still up: the repair beat the heal.
					part.repaired++
				}
			}
		}
		n.clk.After(30*time.Second, tick)
	}
	n.clk.After(30*time.Second, tick)

	// Reachability probes asserted at all-healed barriers: the forward
	// direction to every target, and the reverse direction back into the
	// production prefix.
	var reach []chaos.ReachProbe
	for _, p := range pairs {
		reach = append(reach, chaos.ReachProbe{From: vp, To: p.addr})
		reach = append(reach, chaos.ReachProbe{From: n.hub(p.as), To: src})
	}

	tgt := &chaos.Target{Top: n.top, Clk: n.clk, Eng: n.eng, Plane: n.plane}
	runner, err := chaos.NewRunner(tgt, script, chaos.Options{Obs: reg, Reach: reach})
	if err != nil {
		panic(fmt.Sprintf("chaos experiment: %v", err))
	}
	rep, err := runner.Run()
	if err != nil {
		panic(fmt.Sprintf("chaos experiment: run: %v", err))
	}
	stopped = true

	part.injected, part.healed = rep.Injected, rep.Healed
	part.barriers = rep.Barriers
	part.violations = len(rep.Violations)
	part.poisons = len(ctrl.History)
	return part
}

// chaosScript builds the trial's fault timeline: outage-calibrated timing
// and kinds (internal/outage), with every fault placed on a monitored
// reverse path so the sweep measures the repair loop rather than fault
// placement luck. Silent faults (one-way drops, reverse blackholes,
// packet loss) are LIFEGUARD's target; full bidirectional link outages
// become visible session resets BGP heals on its own — the contrast case.
func chaosScript(n *net, pairs []chaosPair, seed int64, intensity float64) *chaos.Script {
	trialSeed := seed*31 + int64(intensity*8)
	events := outage.Generate(outage.Config{
		Seed: trialSeed,
		N:    chaosFaults,
		// 4–10 minute outages: long enough for detect→isolate→poison to
		// race the heal, short enough that the sweep stays minutes-scale.
		MinDuration:      4 * time.Minute,
		MaxDuration:      10 * time.Minute,
		MeanInterarrival: time.Duration(float64(5*time.Minute) / intensity),
	})
	rng := rand.New(rand.NewSource(trialSeed ^ 0x0C4A05))
	avoid := map[topo.ASN]bool{n.origin: true}
	for _, m := range n.muxes {
		avoid[m] = true
	}
	for _, p := range pairs {
		avoid[p.as] = true
	}

	var s chaos.Script
	for _, ev := range events {
		pair := pairs[rng.Intn(len(pairs))]
		// The reverse path the monitored replies ride, origin-side last.
		rev := n.eng.ASPathTo(pair.as, topo.ProductionAddr(n.origin))
		var cands []int
		for i, a := range rev {
			if !avoid[a] {
				cands = append(cands, i)
			}
		}
		if len(cands) == 0 {
			continue // target sits directly behind a mux; nothing to fault
		}
		i := cands[rng.Intn(len(cands))]
		x := rev[i]
		next := n.origin
		if i+1 < len(rev) {
			next = rev[i+1]
		}

		var f chaos.Fault
		switch {
		case ev.Kind == outage.ASLink && n.top.Adjacent(x, next):
			if ev.Direction == outage.Bidirectional && !ev.Partial {
				f = &chaos.SessionReset{A: x, B: next}
			} else {
				f = &chaos.OneWayLoss{From: x, To: next}
			}
		case ev.Partial:
			f = &chaos.PacketLoss{AS: x, Prob: 0.5 + 0.4*rng.Float64(), Seed: rng.Uint64()}
		default:
			f = &chaos.BlackholeTowards{AS: x, Dst: topo.Block(n.origin)}
		}
		s.Steps = append(s.Steps, chaos.Step{At: ev.Start, Fault: f, For: ev.Duration})
	}
	// One final barrier, far enough past the last heal for the sentinel
	// to withdraw any lingering poison before the baseline check.
	s.Steps = append(s.Steps, chaos.Step{At: s.End() + 10*time.Minute, Check: true})
	return &s
}

func reduceChaos(_ int64, parts []any) *Result {
	r := newResult("chaos", "scripted fault timelines vs the repair loop")
	tab := &metrics.Table{
		Title:  "chaos — repair vs fault intensity (zero-violation contract)",
		Header: []string{"intensity", "faults", "episodes", "poisons", "repaired", "mean ttr (min)", "violations"},
	}
	var faults, episodes, recovered, repaired, poisons, violations int
	var ttrSum float64
	for _, p := range parts {
		c := p.(chaosPart)
		mean := 0.0
		if c.recovered > 0 {
			mean = c.ttrSum / float64(c.recovered) / 60
		}
		tab.AddRow(fmt.Sprintf("%gx", c.intensity), c.faults, c.episodes,
			c.poisons, c.repaired, mean, c.violations)
		faults += c.faults
		episodes += c.episodes
		recovered += c.recovered
		repaired += c.repaired
		poisons += c.poisons
		violations += c.violations
		ttrSum += c.ttrSum
		r.Values[fmt.Sprintf("episodes_i%g", c.intensity)] = float64(c.episodes)
		r.Values[fmt.Sprintf("violations_i%g", c.intensity)] = float64(c.violations)
	}
	r.addTable(tab)

	r.Values["faults_total"] = float64(faults)
	r.Values["episodes_total"] = float64(episodes)
	r.Values["recovered_total"] = float64(recovered)
	r.Values["repaired_total"] = float64(repaired)
	r.Values["poisons_total"] = float64(poisons)
	r.Values["violations_total"] = float64(violations)
	if recovered > 0 {
		r.Values["ttr_mean_min"] = ttrSum / float64(recovered) / 60
	}
	if episodes > 0 {
		r.Values["recovered_frac"] = float64(recovered) / float64(episodes)
		r.Values["repaired_frac"] = float64(repaired) / float64(episodes)
	}

	r.notef("fault mix calibrated to the paper's §2.1 outage study (durations, link share); %d faults injected, %d invariant violations (want 0)",
		faults, violations)
	r.notef("the repair loop poisoned %d times across %d reachability episodes and beat the scripted heal in %d; paper §4.2 gates poisoning on outage age and alternate-path existence",
		poisons, episodes, repaired)
	return r
}
