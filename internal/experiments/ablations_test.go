package experiments

import "testing"

func TestAblationThresholdShape(t *testing.T) {
	r := AblationThreshold(1)
	// Poisoning immediately wastes most poisons on self-healing blips.
	inRange(t, r, "wasted_frac_0s", 0.5, 0.9)
	// The paper's ~5 min threshold cuts waste sharply...
	inRange(t, r, "wasted_frac_5m0s", 0.05, 0.35)
	// ...while still avoiding the bulk of the downtime.
	inRange(t, r, "avoided_5m0s", 0.65, 0.85)
	// Monotonicity of the trade-off.
	if r.Values["poisons_0s"] <= r.Values["poisons_15m0s"] {
		t.Fatal("poison volume must shrink with threshold")
	}
	if r.Values["avoided_0s"] < r.Values["avoided_15m0s"] {
		t.Fatal("avoided downtime must shrink with threshold")
	}
	if r.Values["wasted_frac_0s"] <= r.Values["wasted_frac_5m0s"] {
		t.Fatal("waste must shrink with threshold")
	}
}

func TestAblationPrecheckShape(t *testing.T) {
	r := AblationPrecheck(1)
	// A substantial share of naive poisons sever their own victim —
	// that is exactly what the precheck prevents.
	inRange(t, r, "frac_severed_without_precheck", 0.15, 0.70)
	// The static precheck must predict the protocol outcome exactly
	// (same policy model; proven equivalent in the splice tests).
	inRange(t, r, "precheck_agreement", 0.99, 1.0)
	inRange(t, r, "cases", 30, 400)
}

func TestAblationDampeningShape(t *testing.T) {
	r := AblationDampening(1)
	fast := r.Values["frac_suppressing_5m0s"]
	slow := r.Values["frac_suppressing_1h30m0s"]
	if fast <= slow {
		t.Fatalf("faster cycling must suppress more: 5m=%.2f vs 90m=%.2f", fast, slow)
	}
	inRange(t, r, "frac_suppressing_5m0s", 0.5, 1.0)
	inRange(t, r, "frac_suppressing_1h30m0s", 0.0, 0.3)
	// Suppression translates into lost reachability.
	inRange(t, r, "frac_unreachable_5m0s", 0.5, 1.0)
	inRange(t, r, "frac_unreachable_1h30m0s", 0.0, 0.25)
}

func TestAblationsListedAndResolvable(t *testing.T) {
	if len(Ablations()) != 3 {
		t.Fatalf("ablations = %d", len(Ablations()))
	}
	for _, e := range Ablations() {
		if _, ok := ByID(e.ID); !ok {
			t.Fatalf("%s not resolvable via ByID", e.ID)
		}
	}
}
