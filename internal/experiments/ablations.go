package experiments

import (
	"math/rand"
	"time"

	"lifeguard/internal/bgp"
	"lifeguard/internal/metrics"
	"lifeguard/internal/obs"
	"lifeguard/internal/outage"
	"lifeguard/internal/simclock"
	"lifeguard/internal/splice"
	"lifeguard/internal/topo"
	"lifeguard/internal/topogen"
)

// Ablations lists the design-choice studies that go beyond the paper's
// published artifacts: each isolates one LIFEGUARD mechanism and measures
// what breaks without it.
func Ablations() []Experiment {
	return []Experiment{
		{"abl-threshold", "poison-maturity threshold: wasted poisons vs downtime avoided (§4.2)", thresholdScenario},
		{"abl-precheck", "alternate-path precheck: harmful poisons prevented (§4.2)", single(ablationPrecheck)},
		{"abl-dampening", "unpoison pacing vs route-flap dampening (§5)", dampeningScenario},
	}
}

// ablationThresholds is the swept set of minimum outage ages, in sweep
// (and hence trial/row) order.
var ablationThresholds = []time.Duration{0, time.Minute, 3 * time.Minute, 5 * time.Minute, 10 * time.Minute, 15 * time.Minute}

// thresholdPart is one threshold's partial result. Every trial
// regenerates the same deterministic event set from the seed, so the
// per-threshold counts are independent.
type thresholdPart struct {
	threshold       time.Duration
	poisons, wasted int
	saved, total    float64
}

func thresholdSweep(seed int64, th time.Duration) *thresholdPart {
	events := outage.Generate(outage.Config{Seed: seed, N: 50000})
	const detect = 2 * time.Minute   // monitoring declares after ~4 rounds
	const converge = 2 * time.Minute // poisoned routes settle

	p := &thresholdPart{threshold: th}
	for i := range events {
		p.total += events[i].Duration.Seconds()
	}
	trigger := detect + th
	for i := range events {
		d := events[i].Duration
		if d <= trigger {
			continue // healed before we would have poisoned
		}
		p.poisons++
		if d <= trigger+converge {
			p.wasted++ // healed before the poison even converged
			continue
		}
		p.saved += (d - trigger - converge).Seconds()
	}
	return p
}

// thresholdScenario sweeps the minimum outage age before poisoning, one
// trial per threshold. Too eager wastes poisons on outages that were
// about to heal anyway (pure churn); too patient forfeits avoidable
// downtime. The paper picks ~5 minutes from the Fig. 5 residuals; this
// quantifies the trade-off.
var thresholdScenario = Scenario{
	Trials: func(seed int64) []Trial {
		trials := make([]Trial, len(ablationThresholds))
		for i, th := range ablationThresholds {
			th := th
			trials[i] = Trial{Name: "threshold=" + th.String(), Run: func(_ *obs.Registry) any { return thresholdSweep(seed, th) }}
		}
		return trials
	},
	Reduce: func(_ int64, parts []any) *Result {
		r := newResult("abl-threshold", "poison-maturity threshold trade-off")
		tab := &metrics.Table{
			Title:  "ablation — when to poison",
			Header: []string{"threshold (min)", "poisons", "wasted (healed first)", "wasted frac", "downtime avoided"},
		}
		for _, pa := range parts {
			p := pa.(*thresholdPart)
			tab.AddRow(p.threshold.Minutes(), p.poisons, p.wasted, frac(p.wasted, p.poisons), p.saved/p.total)
			key := p.threshold.String()
			r.Values["poisons_"+key] = float64(p.poisons)
			r.Values["wasted_frac_"+key] = frac(p.wasted, p.poisons)
			r.Values["avoided_"+key] = p.saved / p.total
		}
		r.addTable(tab)
		r.notef("the paper's ~5 min threshold: nearly all long-tail downtime is still avoided while poison volume drops ~%.0fx vs poisoning immediately",
			r.Values["poisons_0s"]/r.Values["poisons_5m0s"])
		r.notef("thresholds beyond ~10 min stop paying: wasted-poison rate stays low but avoided downtime declines")
		return r
	},
}

// AblationThreshold regenerates the threshold sweep (sequential reference
// path over thresholdScenario).
func AblationThreshold(seed int64) *Result { return thresholdScenario.Run(seed) }

// AblationPrecheck measures what the §4.2 alternate-path precheck buys:
// without it, a poison against an AS that is some victim's only path cuts
// that victim off entirely (worse than the outage, which was partial).
func AblationPrecheck(seed int64) *Result { return ablationPrecheck(seed, nil) }

func ablationPrecheck(seed int64, reg *obs.Registry) *Result {
	r := newResult("abl-precheck", "alternate-path precheck value")
	n := buildWithOrigin(seed, topogen.Config{NumTransit: 15, NumStub: 40}, 1, reg)
	prod := topo.ProductionPrefix(n.origin)
	n.eng.Announce(n.origin, prod, bgp.OriginConfig{Pattern: topo.Path{n.origin, n.origin, n.origin}})
	n.converge()

	// For every (victim stub, transit on its path) pair: would poisoning
	// that transit sever the victim? The precheck predicts it; poisoning
	// confirms it.
	victims := sample(n.rng, n.gen.Stubs, 30)
	var cases, severed, predicted, agree int
	for _, v := range victims {
		if v == n.origin {
			continue
		}
		path := n.eng.ASPathTo(v, topo.ProductionAddr(n.origin))
		for _, a := range transitHops(path) {
			if a == v {
				continue
			}
			cases++
			pred := !canReachAvoiding(n, v, a)
			if pred {
				predicted++
			}
			since := n.clk.Now()
			n.eng.Announce(n.origin, prod, bgp.OriginConfig{Pattern: topo.Path{n.origin, a, n.origin}})
			n.converge()
			_, ok := n.eng.BestRoute(v, prod)
			if !ok {
				severed++
			}
			if pred == !ok {
				agree++
			}
			n.eng.Announce(n.origin, prod, bgp.OriginConfig{Pattern: topo.Path{n.origin, n.origin, n.origin}})
			n.converge()
			_ = since
		}
	}
	tab := &metrics.Table{
		Title:  "ablation — poisoning without the alternate-path precheck",
		Header: []string{"poison cases", "victims severed", "precheck predicted", "prediction agreement"},
	}
	tab.AddRow(cases, severed, predicted, frac(agree, cases))
	r.addTable(tab)
	r.Values["cases"] = float64(cases)
	r.Values["frac_severed_without_precheck"] = frac(severed, cases)
	r.Values["precheck_agreement"] = frac(agree, cases)
	r.notef("without the precheck, %.0f%% of naive poisons would sever the very victim they meant to help; the static precheck predicts severance with %.0f%% agreement",
		frac(severed, cases)*100, frac(agree, cases)*100)
	return r
}

// ablationPeriods is the swept set of poison/unpoison cycle periods, in
// sweep (and hence trial/row) order.
var ablationPeriods = []time.Duration{5 * time.Minute, 15 * time.Minute, 45 * time.Minute, 90 * time.Minute}

// dampeningPart is one cycle period's partial result. Each trial builds
// its own dampening-enabled internetwork, so the periods sweep in
// parallel without sharing engine state.
type dampeningPart struct {
	period                         time.Duration
	cycles                         int
	maxSuppressing, maxUnreachable int
	asesTotal                      int
}

func dampeningSweep(seed int64, period time.Duration, reg *obs.Registry) *dampeningPart {
	n, victim := dampeningNet(seed, reg)
	prod := topo.ProductionPrefix(n.origin)
	base := topo.Path{n.origin, n.origin, n.origin}
	n.eng.Announce(n.origin, prod, bgp.OriginConfig{Pattern: base})
	n.converge()
	p := &dampeningPart{period: period, cycles: 6, asesTotal: n.top.NumASes() - 1}
	sampleState := func() {
		suppressing, unreachable := 0, 0
		for _, asn := range n.top.ASNs() {
			if asn == n.origin {
				continue
			}
			s := n.eng.Speaker(asn)
			for _, nb := range n.top.Neighbors(asn) {
				if s.Suppressed(nb, prod) {
					suppressing++
					break
				}
			}
			if _, ok := n.eng.BestRoute(asn, prod); !ok {
				unreachable++
			}
		}
		p.maxSuppressing = max(p.maxSuppressing, suppressing)
		p.maxUnreachable = max(p.maxUnreachable, unreachable)
	}
	for i := 0; i < p.cycles; i++ {
		n.clk.RunFor(period)
		n.eng.Announce(n.origin, prod, bgp.OriginConfig{Pattern: topo.Path{n.origin, victim, n.origin}})
		n.converge()
		sampleState()
		n.clk.RunFor(period)
		n.eng.Announce(n.origin, prod, bgp.OriginConfig{Pattern: base})
		n.converge()
		sampleState()
	}
	return p
}

// dampeningScenario sweeps how fast an origin cycles poison/unpoison on a
// dampening-enabled internetwork — one trial per period — and measures
// how many ASes end up suppressing the production prefix: the §5
// rationale for 90-minute announcement pacing.
var dampeningScenario = Scenario{
	Trials: func(seed int64) []Trial {
		trials := make([]Trial, len(ablationPeriods))
		for i, period := range ablationPeriods {
			period := period
			trials[i] = Trial{Name: "period=" + period.String(), Run: func(reg *obs.Registry) any { return dampeningSweep(seed, period, reg) }}
		}
		return trials
	},
	Reduce: func(_ int64, parts []any) *Result {
		r := newResult("abl-dampening", "repair pacing vs route-flap dampening")
		tab := &metrics.Table{
			Title:  "ablation — poison/unpoison cycle period vs suppression",
			Header: []string{"cycle period", "cycles", "peak ASes suppressing", "peak frac suppressing", "peak frac unreachable"},
		}
		for _, pa := range parts {
			p := pa.(*dampeningPart)
			fracSupp := float64(p.maxSuppressing) / float64(p.asesTotal)
			fracUnreach := float64(p.maxUnreachable) / float64(p.asesTotal)
			tab.AddRow(p.period.String(), p.cycles, p.maxSuppressing, fracSupp, fracUnreach)
			r.Values["frac_suppressing_"+p.period.String()] = fracSupp
			r.Values["frac_unreachable_"+p.period.String()] = fracUnreach
		}
		r.addTable(tab)
		r.notef("fast repair cycling trips RFC 2439 dampening internetwork-wide (5-minute cycling peaks at total unreachability); the paper's 90-minute pacing keeps the impact marginal")
		return r
	},
}

// AblationDampening regenerates the pacing sweep (sequential reference
// path over dampeningScenario).
func AblationDampening(seed int64) *Result { return dampeningScenario.Run(seed) }

// dampeningNet builds a small dampening-enabled internetwork with an origin
// and a poison victim on collector paths.
func dampeningNet(seed int64, reg *obs.Registry) (*net, topo.ASN) {
	gen, err := topogen.GenerateWithOrigin(topogen.Config{
		Seed: seed, NumTier1: 3, NumTransit: 10, NumStub: 25,
	}, 1)
	if err != nil {
		panic(err)
	}
	clk := simclock.New()
	eng := bgp.New(gen.Top, clk, bgp.Config{
		Seed:         seed,
		Dampening:    bgp.DampeningConfig{Enabled: true},
		Obs:          reg,
		ShardWorkers: engineShardWorkers,
	})
	for _, asn := range gen.Top.ASNs() {
		eng.Originate(asn, topo.Block(asn))
	}
	n := &net{gen: gen, top: gen.Top, clk: clk, eng: eng, origin: gen.Origin,
		muxes: gen.Top.Providers(gen.Origin)}
	n.rng = rand.New(rand.NewSource(seed))
	n.converge()
	// Victim: any transit that is not the origin's provider.
	for _, tr := range gen.Transit {
		if tr != n.muxes[0] {
			return n, tr
		}
	}
	return n, gen.Transit[0]
}

func canReachAvoiding(n *net, src, avoid topo.ASN) bool {
	return splice.CanReach(n.top, src, n.origin, splice.Avoid1(avoid))
}
