package experiments

import (
	"context"
	"errors"
	"testing"

	"lifeguard/internal/obs"
	"lifeguard/internal/runner"
)

// cheapIDs are multi-trial experiments fast enough to run repeatedly in
// the equivalence tests (the heavyweight artifacts share the same
// Scenario machinery, so they inherit the guarantee).
var cheapIDs = []string{"fig1", "fig5", "tab2", "abl-threshold", "abl-dampening"}

func cheapExperiments(t *testing.T) []Experiment {
	t.Helper()
	var exps []Experiment
	for _, id := range cheapIDs {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q missing", id)
		}
		exps = append(exps, e)
	}
	return exps
}

// TestRunParallelMatchesRun asserts the core determinism contract: for a
// fixed seed, the rendered report is byte-identical at every parallelism
// level — parallelism changes wall-clock only, never output.
func TestRunParallelMatchesRun(t *testing.T) {
	for _, e := range cheapExperiments(t) {
		want := e.Run(3).String()
		for _, par := range []int{1, 2, 8} {
			got, err := e.RunParallel(context.Background(), 3, runner.Config{Parallelism: par}, nil)
			if err != nil {
				t.Fatalf("%s parallel=%d: %v", e.ID, par, err)
			}
			if got.String() != want {
				t.Errorf("%s parallel=%d: output differs from sequential run", e.ID, par)
			}
		}
	}
}

// TestRunSuiteMatchesSequential asserts the same contract for the flat
// experiments×seeds pool lgexp runs: every (experiment, seed) cell must
// match an isolated sequential Run.
func TestRunSuiteMatchesSequential(t *testing.T) {
	exps := cheapExperiments(t)
	const baseSeed, seeds = 1, 2
	results, err := RunSuite(context.Background(), exps, baseSeed, seeds, runner.Config{Parallelism: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(exps) {
		t.Fatalf("got %d experiment rows, want %d", len(results), len(exps))
	}
	for ei, e := range exps {
		if len(results[ei]) != seeds {
			t.Fatalf("%s: got %d seed cells, want %d", e.ID, len(results[ei]), seeds)
		}
		for s := 0; s < seeds; s++ {
			want := e.Run(baseSeed + int64(s)).String()
			if got := results[ei][s].String(); got != want {
				t.Errorf("%s seed %d: suite output differs from sequential run", e.ID, baseSeed+int64(s))
			}
		}
	}
}

func TestSuiteTrialCount(t *testing.T) {
	exps := cheapExperiments(t)
	// fig1=1, fig5=1, tab2=1, abl-threshold=6, abl-dampening=4 trials per
	// seed.
	if got := SuiteTrialCount(exps, 1, 2); got != 2*(1+1+1+6+4) {
		t.Fatalf("SuiteTrialCount = %d, want %d", got, 2*(1+1+1+6+4))
	}
}

// TestRunParallelPropagatesTrialPanic asserts a panicking trial surfaces
// as a runner.TrialError instead of crashing or hanging the pool.
func TestRunParallelPropagatesTrialPanic(t *testing.T) {
	e := Experiment{
		ID:    "boom",
		Brief: "panics",
		Scenario: Scenario{
			Trials: func(seed int64) []Trial {
				return []Trial{
					{Name: "ok", Run: func(_ *obs.Registry) any { return 1 }},
					{Name: "bad", Run: func(_ *obs.Registry) any { panic("synthetic trial failure") }},
				}
			},
			Reduce: func(_ int64, parts []any) *Result { return newResult("boom", "unreachable") },
		},
	}
	_, err := e.RunParallel(context.Background(), 1, runner.Config{Parallelism: 4}, nil)
	if err == nil {
		t.Fatal("expected error from panicking trial")
	}
	var te *runner.TrialError
	if !errors.As(err, &te) {
		t.Fatalf("error %v is not a *runner.TrialError", err)
	}
	if te.Trial != 1 || len(te.Stack) == 0 {
		t.Fatalf("TrialError{Trial: %d, stack %d bytes}; want trial 1 with stack", te.Trial, len(te.Stack))
	}
}
