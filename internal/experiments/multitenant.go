package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"lifeguard"
	"lifeguard/internal/core/remedy"
	"lifeguard/internal/metrics"
	"lifeguard/internal/obs"
	"lifeguard/internal/splice"
)

// The multitenant experiment measures the Rig/Session split under load:
// one shared internetwork hosts N tenant sessions, every tenant is hit by
// its own concurrent silent failure, and each must independently detect,
// isolate, poison, recover, and unpoison — with per-tenant repair latency
// flat in N. Interference would show up as missed repairs or latency
// growing with tenant count; the companion determinism test
// (TestRigMultiTenantMatchesSoloSessions) proves the stronger property
// that each tenant's history is byte-identical to a solo run.

// multitenantCounts is the tenant-count sweep.
var multitenantCounts = []int{1, 2, 4}

// mtPart is one tenant-count level's outcome.
type mtPart struct {
	tenants   int
	placed    int // scenarios actually found on this topology
	detected  int // tenants that declared the outage
	poisoned  int // tenants whose repair decision was a poison
	recovered int // tenants whose monitored traffic came back
	unpoison  int // tenants that reverted to baseline after the heal
	ttrSum    float64
}

var multitenantScenario = Scenario{
	Trials: func(seed int64) []Trial {
		var ts []Trial
		for _, count := range multitenantCounts {
			count := count
			ts = append(ts, Trial{
				Name: fmt.Sprintf("tenants=%d", count),
				Run:  func(reg *obs.Registry) any { return multitenantTrial(seed, count, reg) },
			})
		}
		return ts
	},
	Reduce: reduceMultitenant,
}

// Multitenant runs the tenant-count sweep; see multitenantScenario.
func Multitenant(seed int64) *Result { return multitenantScenario.Run(seed) }

// mtScenario is one tenant: an origin monitoring one target with one
// avoidable transit to blame. Origins and targets are pairwise disjoint
// across tenants, so the concurrent failures are independent by
// construction and any cross-tenant effect is the rig's fault.
type mtScenario struct {
	origin, target, blame lifeguard.ASN
}

// mtFindScenarios mirrors the rig test's scenario search: disjoint
// (origin, target, blame) triples where the origin can poison around the
// blamed transit on the reverse path.
func mtFindScenarios(n *lifeguard.Network, helper lifeguard.ASN, count int) []mtScenario {
	used := map[lifeguard.ASN]bool{helper: true}
	var out []mtScenario
	for _, o := range n.Gen.Stubs {
		if len(out) == count {
			break
		}
		if used[o] {
			continue
		}
	search:
		for _, cand := range n.Gen.Stubs {
			if cand == o || used[cand] {
				continue
			}
			path := n.Eng.ASPathTo(cand, lifeguard.ProductionAddr(o))
			for _, hop := range path {
				if hop == o || hop == cand {
					continue
				}
				if splice.CanReach(n.Top, cand, o, splice.Avoid1(hop)) {
					out = append(out, mtScenario{origin: o, target: cand, blame: hop})
					used[o], used[cand] = true, true
					break search
				}
			}
		}
	}
	return out
}

func multitenantTrial(seed int64, count int, reg *obs.Registry) mtPart {
	if reg == nil {
		reg = obs.New()
	}
	n, err := lifeguard.GenerateInternet(
		lifeguard.InternetConfig{Seed: seed, NumTransit: 12, NumStub: 30},
		lifeguard.NetworkOptions{
			Seed: seed,
			// Small rng-free MRAI keeps convergence transients below the
			// monitor grid, as in the rig determinism test.
			BGP: lifeguard.BGPConfig{MRAI: 200 * time.Millisecond, MRAIJitter: -1, PropJitter: -1},
			Obs: reg,
		})
	if err != nil {
		panic(fmt.Sprintf("multitenant experiment: %v", err))
	}
	helper := n.Gen.Stubs[len(n.Gen.Stubs)-1]
	scenarios := mtFindScenarios(n, helper, count)

	rig := lifeguard.NewRig(n)
	sessions := make([]*lifeguard.Session, len(scenarios))
	for i, sc := range scenarios {
		s, err := rig.AddSession(lifeguard.SessionConfig{Config: lifeguard.Config{
			Origin:  sc.origin,
			VPs:     []lifeguard.RouterID{n.Hub(sc.origin), n.Hub(helper)},
			Targets: []netip.Addr{n.RouterAddr(n.Hub(sc.target))},
		}})
		if err != nil {
			panic(fmt.Sprintf("multitenant experiment: %v", err))
		}
		sessions[i] = s
	}
	rig.Start()
	n.Clk.RunFor(3 * time.Minute)

	// Every tenant's transit fails at the same instant: N concurrent
	// silent failures, one per tenant, scoped to that tenant's block.
	ids := make([]lifeguard.FailureID, len(scenarios))
	for i, sc := range scenarios {
		ids[i] = n.InjectFailure(lifeguard.BlackholeASTowards(sc.blame, lifeguard.Block(sc.origin)))
	}
	n.Clk.RunFor(12 * time.Minute)
	for _, id := range ids {
		n.HealFailure(id)
	}
	n.Clk.RunFor(6 * time.Minute)
	rig.Stop()

	part := mtPart{tenants: count, placed: len(scenarios)}
	for _, s := range sessions {
		outages := s.EventsOfKind(lifeguard.EventOutage)
		if len(outages) == 0 {
			continue
		}
		part.detected++
		for _, e := range s.EventsOfKind(lifeguard.EventRepair) {
			if e.Action == remedy.Poisoned {
				part.poisoned++
				part.ttrSum += (e.At - outages[0].At).Seconds()
				break
			}
		}
		if len(s.EventsOfKind(lifeguard.EventRecovered)) > 0 {
			part.recovered++
		}
		if len(s.EventsOfKind(lifeguard.EventUnpoison)) > 0 {
			part.unpoison++
		}
	}
	return part
}

func reduceMultitenant(_ int64, parts []any) *Result {
	r := newResult("multitenant", "per-tenant repair pipelines on a shared rig")
	tab := &metrics.Table{
		Title:  "multitenant — N concurrent tenant outages on one rig",
		Header: []string{"tenants", "detected", "poisoned", "recovered", "unpoisoned", "mean outage→poison (min)"},
	}
	for _, p := range parts {
		m := p.(mtPart)
		mean := 0.0
		if m.poisoned > 0 {
			mean = m.ttrSum / float64(m.poisoned) / 60
		}
		tab.AddRow(m.placed, m.detected, m.poisoned, m.recovered, m.unpoison, mean)
		r.Values[fmt.Sprintf("poisoned_n%d", m.tenants)] = float64(m.poisoned)
		r.Values[fmt.Sprintf("recovered_n%d", m.tenants)] = float64(m.recovered)
		r.Values[fmt.Sprintf("ttr_mean_min_n%d", m.tenants)] = mean
		if m.placed > 0 {
			r.Values[fmt.Sprintf("repair_frac_n%d", m.tenants)] = float64(m.poisoned) / float64(m.placed)
		}
	}
	r.addTable(tab)
	r.notef("beyond the paper: the single-origin deployment of §3 generalized to N tenants on one rig; every tenant runs the full detect→isolate→poison→recover→unpoison pipeline against its own concurrent failure, and flat per-tenant latency across N shows sessions do not contend")
	r.notef("the companion test TestRigMultiTenantMatchesSoloSessions proves the stronger contract: per-tenant histories and metrics are byte-identical to dedicated single-session runs")
	return r
}
