package experiments

import (
	"time"

	"lifeguard/internal/metrics"
	"lifeguard/internal/outage"
)

// Fig1 regenerates Figure 1: for partial outages observed from EC2-style
// monitoring, the fraction of outages of at most a given duration, and the
// corresponding fraction of total unreachability. The paper's headline:
// more than 90% of outages last at most 10 minutes, but 84% of total
// unavailability comes from outages longer than 10 minutes.
func Fig1(seed int64) *Result {
	r := newResult("fig1", "outage durations vs. total unreachability")
	events := outage.Generate(outage.Config{Seed: seed, N: 10308})
	partial := 0
	var s metrics.Sample
	for i := range events {
		if !events[i].Partial {
			continue
		}
		partial++
		s.Add(events[i].Duration.Minutes())
	}

	tab := &metrics.Table{
		Title:  "Fig. 1 — CDF over partial outages (x = minutes, log scale)",
		Header: []string{"minutes", "frac events <= x", "frac unreachability <= x"},
	}
	xs := metrics.LogSpace(1.5, 4320, 18)
	ev := s.CDF(xs)
	wt := s.WeightedCDF(xs)
	for i := range xs {
		tab.AddRow(xs[i], ev[i].Frac, wt[i].Frac)
	}
	r.addTable(tab)

	fracShort := s.FractionAtMost(10)
	wShort := s.WeightedCDF([]float64{10})[0].Frac
	r.Values["partial_outages"] = float64(partial)
	r.Values["frac_events_le_10min"] = fracShort
	r.Values["unavail_share_gt_10min"] = 1 - wShort
	r.Values["median_duration_min"] = s.Median()

	r.notef("paper: >90%% of outages <=10 min; measured %.1f%%", fracShort*100)
	r.notef("paper: 84%% of unavailability from >10 min outages; measured %.1f%%", (1-wShort)*100)
	r.notef("paper: median outage duration 90 s (the observable minimum); measured %.1f min", s.Median())
	return r
}

// Fig5 regenerates Figure 5: the residual duration of an outage given that
// it has already persisted X minutes, plus the §4.2 persistence statistics
// that justify waiting ~5 minutes before poisoning.
func Fig5(seed int64) *Result {
	r := newResult("fig5", "residual outage duration after X minutes")
	events := outage.Generate(outage.Config{Seed: seed, N: 50000})
	var elapsed []time.Duration
	for m := 0; m <= 30; m += 5 {
		elapsed = append(elapsed, time.Duration(m)*time.Minute)
	}
	pts := outage.Residuals(events, elapsed)

	tab := &metrics.Table{
		Title:  "Fig. 5 — residual duration per failure (minutes)",
		Header: []string{"elapsed", "surviving", "mean", "median", "p25", "P(>=5 more min)"},
	}
	for _, p := range pts {
		tab.AddRow(
			p.Elapsed.Minutes(), p.Surviving,
			p.Mean.Minutes(), p.Median.Minutes(), p.P25.Minutes(),
			p.FracPersist5MoreMins,
		)
	}
	r.addTable(tab)

	r.Values["persist5_given_5min"] = pts[1].FracPersist5MoreMins
	r.Values["persist5_given_10min"] = pts[2].FracPersist5MoreMins
	r.Values["median_residual_at_10min_min"] = pts[2].Median.Minutes()
	avoid := outage.AvoidableUnavailability(events, 7*time.Minute)
	r.Values["avoidable_unavailability_7min_repair"] = avoid

	r.notef("paper: of outages lasting 5 min, 51%% persist >=5 more; measured %.0f%%",
		pts[1].FracPersist5MoreMins*100)
	r.notef("paper: of outages lasting 10 min, 68%% persist >=5 more; measured %.0f%%",
		pts[2].FracPersist5MoreMins*100)
	r.notef("paper §4.2: repair after ~7 min could avoid up to 80%% of unavailability; measured %.0f%%",
		avoid*100)
	return r
}
