package experiments

import (
	"strings"
	"testing"
)

func resultWith(id string, vals map[string]float64) *Result {
	r := newResult(id, "title for "+id)
	for k, v := range vals {
		r.Values[k] = v
	}
	return r
}

// TestAggregateSparseKey is the regression test for the printAveraged
// min/max bug: a key absent from the first seed used to keep the zero
// min/max it was initialized with on the `i == 0` branch, reporting e.g.
// min 0 for a metric that never measured 0. The aggregate must instead
// track per-key presence and compute min/max only over seeds where the
// key appeared.
func TestAggregateSparseKey(t *testing.T) {
	a := NewAggregate()
	a.Add(resultWith("x", map[string]float64{"always": 1.0}))
	a.Add(resultWith("x", map[string]float64{"always": 3.0, "late": 7.5}))
	a.Add(resultWith("x", map[string]float64{"always": 2.0, "late": 9.5}))

	if got, ok := a.Min("late"); !ok || got != 7.5 {
		t.Fatalf("Min(late) = %v, %v; want 7.5 (phantom zero from absent first seed?)", got, ok)
	}
	out := a.String()
	if !strings.Contains(out, "late") {
		t.Fatalf("rendered aggregate missing sparse key:\n%s", out)
	}
	// The sparse key's line must carry its real min (7.5) and coverage
	// annotation, never a phantom 0 min.
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "late") {
			continue
		}
		if !strings.Contains(line, "7.5000") {
			t.Fatalf("sparse key line lost its real min: %q", line)
		}
		if !strings.Contains(line, "(in 2/3 seeds)") {
			t.Fatalf("sparse key line missing coverage annotation: %q", line)
		}
	}
	// Full-coverage keys are not annotated.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "always") && strings.Contains(line, "seeds)") && strings.Contains(line, "(in") {
			t.Fatalf("full-coverage key wrongly annotated: %q", line)
		}
	}
}

// TestAggregateMergeMatchesSequentialAdd asserts the parallel-reduction
// path: folding seed results into shard aggregates and merging them must
// render byte-identically to one sequential Add pass.
func TestAggregateMergeMatchesSequentialAdd(t *testing.T) {
	seeds := []*Result{
		resultWith("m", map[string]float64{"a": 0.125, "b": 3}),
		resultWith("m", map[string]float64{"a": 0.25}),
		resultWith("m", map[string]float64{"a": 0.5, "b": 1, "c": 42}),
		resultWith("m", map[string]float64{"a": 0.0625, "b": 2}),
	}

	seq := NewAggregate()
	for _, r := range seeds {
		seq.Add(r)
	}

	left, right := NewAggregate(), NewAggregate()
	left.Add(seeds[0])
	left.Add(seeds[1])
	right.Add(seeds[2])
	right.Add(seeds[3])
	merged := NewAggregate()
	merged.Merge(left)
	merged.Merge(right)

	if got, want := merged.String(), seq.String(); got != want {
		t.Fatalf("merged rendering differs from sequential:\n--- merged ---\n%s--- sequential ---\n%s", got, want)
	}
	if merged.Seeds() != len(seeds) {
		t.Fatalf("Seeds() = %d, want %d", merged.Seeds(), len(seeds))
	}
}
