package experiments

import (
	"lifeguard/internal/bgp"
	"lifeguard/internal/metrics"
	"lifeguard/internal/obs"
	"lifeguard/internal/topo"
	"lifeguard/internal/topogen"
)

// ForwardDiversity regenerates the §2.3 forward-path study: an origin with
// five providers (the university BGP-Mux sites) inspects the BGP paths each
// provider offers to ~114 destination ASes. If the last AS link before a
// destination on the preferred route failed silently, could the origin
// avoid it by egressing via a different provider? The paper: yes in 90% of
// cases.
func ForwardDiversity(seed int64) *Result { return forwardDiversity(seed, nil) }

func forwardDiversity(seed int64, reg *obs.Registry) *Result {
	r := newResult("sec2.3", "forward-path provider diversity")
	n := buildWithOrigin(seed, topogen.Config{NumTransit: 35, NumStub: 120}, 5, reg)

	// Target ASes mirror the paper's 114 feed ASes: networks that peer
	// with route collectors are well-connected, so restrict to transit
	// ASes and multihomed stubs.
	targets := sample(n.rng, feedLikeASes(n), 114)
	var cases, avoidable int
	for _, t := range targets {
		if t == n.origin {
			continue
		}
		prefix := topo.Block(t)
		// Paths to t as seen via each provider.
		var paths []topo.Path
		for _, mux := range n.muxes {
			if rt, ok := n.eng.BestRoute(mux, prefix); ok {
				paths = append(paths, rt.Path.Prepend(mux))
			}
		}
		if len(paths) < 2 {
			continue
		}
		// The preferred route is via the first provider; its last AS link
		// before the destination is the failure under study.
		pref := paths[0]
		if len(pref) < 2 {
			continue // destination is directly a provider
		}
		linkA, linkB := pref[len(pref)-2], pref[len(pref)-1]
		cases++
		for _, alt := range paths[1:] {
			if !containsLink(alt, linkA, linkB) {
				avoidable++
				break
			}
		}
	}

	tab := &metrics.Table{
		Title:  "§2.3 — avoiding the last AS link before the destination via another provider",
		Header: []string{"cases", "avoidable", "fraction"},
	}
	tab.AddRow(cases, avoidable, frac(avoidable, cases))
	r.addTable(tab)
	r.Values["cases"] = float64(cases)
	r.Values["frac_forward_avoidable"] = frac(avoidable, cases)
	r.notef("paper: 90%% of last links avoidable via a different provider; measured %.0f%%",
		frac(avoidable, cases)*100)
	return r
}

// feedLikeASes returns the ASes plausible as route-collector feeds: all
// transits plus multihomed stubs.
func feedLikeASes(n *net) []topo.ASN {
	out := append([]topo.ASN(nil), n.gen.Transit...)
	for _, s := range n.gen.Stubs {
		if len(n.top.Providers(s)) >= 2 {
			out = append(out, s)
		}
	}
	return out
}

func containsLink(p topo.Path, a, b topo.ASN) bool {
	for i := 0; i+1 < len(p); i++ {
		if p[i] == a && p[i+1] == b {
			return true
		}
	}
	return false
}

// Selective regenerates the §5.2 selective-poisoning study: with the origin
// announcing via five muxes, can it steer a given peer AS off its current
// first-hop AS link by poisoning the peer via all muxes but one, without
// cutting the peer off? The paper avoided 73% of the first-hop links of its
// 114 feed ASes this way (vs. 90% for forward paths).
func Selective(seed int64) *Result { return selective(seed, nil) }

func selective(seed int64, reg *obs.Registry) *Result {
	r := newResult("sec5.2-selective", "selective poisoning of first-hop AS links")
	n := buildWithOrigin(seed, topogen.Config{NumTransit: 35, NumStub: 120}, 5, reg)
	prod := topo.ProductionPrefix(n.origin)

	baselinePattern := topo.Path{n.origin, n.origin, n.origin}
	announceBaseline := func() {
		n.eng.Announce(n.origin, prod, bgp.OriginConfig{Pattern: baselinePattern})
		n.converge()
	}
	announceBaseline()

	peers := sample(n.rng, feedLikeASes(n), 60)
	var cases, avoided, keptRoute int
	for _, peer := range peers {
		if peer == n.origin {
			continue
		}
		base, ok := n.eng.BestRoute(peer, prod)
		if !ok || len(base.Path) == 0 {
			continue
		}
		baseNext := base.Path[0]
		if baseNext == n.origin {
			continue // directly adjacent: no link to steer around
		}
		cases++
		for _, keep := range n.muxes {
			per := make(map[topo.ASN]topo.Path)
			for _, m := range n.muxes {
				if m != keep {
					per[m] = topo.Path{n.origin, peer, n.origin}
				}
			}
			n.eng.Announce(n.origin, prod, bgp.OriginConfig{Pattern: baselinePattern, PerNeighbor: per})
			n.converge()
			rt, ok := n.eng.BestRoute(peer, prod)
			if ok {
				keptRoute++
			}
			if ok && rt.Path[0] != baseNext {
				avoided++
				break
			}
		}
		announceBaseline()
	}

	tab := &metrics.Table{
		Title:  "§5.2 — selective poisoning: first-hop link avoidance",
		Header: []string{"peer cases", "link avoided", "fraction"},
	}
	tab.AddRow(cases, avoided, frac(avoided, cases))
	r.addTable(tab)
	r.Values["cases"] = float64(cases)
	r.Values["frac_links_avoided"] = frac(avoided, cases)
	r.Values["trials_peer_kept_route"] = float64(keptRoute)
	r.notef("paper: selective poisoning avoided 73%% of first-hop AS links while keeping the peer routed; measured %.0f%%",
		frac(avoided, cases)*100)
	return r
}
