package experiments

import (
	"fmt"
	"sort"
	"strings"

	"lifeguard/internal/metrics"
)

// Aggregate folds the per-seed Results of one experiment into mean/min/max
// statistics per headline key — the multi-seed variance report lgexp
// prints for -seeds N.
//
// Every key tracks its own presence: a key that appears in only some
// seeds is averaged over the seeds that produced it and annotated with
// its coverage, instead of inheriting a phantom zero min/max from seeds
// it was absent from (the bug in the old first-seed-initialized
// printAveraged loop; see TestAggregateSparseKey).
type Aggregate struct {
	id, title string
	n         int // results folded in
	perKey    map[string]*metrics.Sample
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{perKey: make(map[string]*metrics.Sample)}
}

// Add folds one seed's Result in. Call in seed order for deterministic
// rendering of order-sensitive statistics (float means).
func (a *Aggregate) Add(r *Result) {
	a.id, a.title = r.ID, r.Title
	a.n++
	for k, v := range r.Values {
		s := a.perKey[k]
		if s == nil {
			s = &metrics.Sample{}
			a.perKey[k] = s
		}
		s.Add(v)
	}
}

// Merge folds another aggregate in — the reduction step when per-seed
// aggregates are produced by parallel trials. Merging b's per-key samples
// after a's mirrors sequential Add order, so the rendered statistics are
// bit-identical to a single sequential pass.
func (a *Aggregate) Merge(b *Aggregate) {
	if b.n == 0 {
		return
	}
	a.id, a.title = b.id, b.title
	a.n += b.n
	for k, s := range b.perKey {
		dst := a.perKey[k]
		if dst == nil {
			dst = &metrics.Sample{}
			a.perKey[k] = dst
		}
		dst.Merge(s)
	}
}

// Seeds reports how many results have been folded in.
func (a *Aggregate) Seeds() int { return a.n }

// Min returns the smallest observed value for key and whether the key was
// ever observed.
func (a *Aggregate) Min(key string) (float64, bool) {
	s, ok := a.perKey[key]
	if !ok {
		return 0, false
	}
	return s.Min(), true
}

// String renders the report: one line per key with mean, min, and max over
// the seeds where the key was present, annotated when coverage is partial.
func (a *Aggregate) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s (averaged over %d seeds)\n\n", a.id, a.title, a.n)
	keys := make([]string, 0, len(a.perKey))
	for k := range a.perKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := a.perKey[k]
		fmt.Fprintf(&b, "  %-40s mean %-10.4f min %-10.4f max %-10.4f",
			k, s.Mean(), s.Min(), s.Max())
		if s.N() < a.n {
			fmt.Fprintf(&b, " (in %d/%d seeds)", s.N(), a.n)
		}
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	return b.String()
}
