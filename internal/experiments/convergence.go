package experiments

import (
	"net/netip"
	"time"

	"lifeguard/internal/bgp"
	"lifeguard/internal/collectors"
	"lifeguard/internal/metrics"
	"lifeguard/internal/topo"
	"lifeguard/internal/topogen"
)

// Convergence regenerates Fig. 6 and the §5.2 global-convergence numbers:
// poison each harvested AS once from a plain "O" baseline and once from the
// prepended "O-O-O" baseline, and measure per-peer convergence time
// (first-to-last update of the peer's burst), separated by whether the peer
// had been routing through the poisoned AS. The paper: with prepending,
// >95% of unaffected peers converge instantly and 97% emit a single update;
// without prepending only ~64% emit a single update; global convergence
// medians 91s (prepend) vs 133s.
func Convergence(seed int64) *Result {
	r := newResult("fig6", "convergence after poisoned announcements")
	n := buildWithOrigin(seed, topogen.Config{NumTransit: 30, NumStub: 100}, 1)
	prod := topo.ProductionPrefix(n.origin)

	peerSet := sample(n.rng, append(append([]topo.ASN(nil), n.gen.Stubs...), n.gen.Transit...), 50)
	coll := collectors.New(n.eng)
	for _, p := range peerSet {
		if p != n.origin {
			coll.AddPeer(p)
		}
	}

	plain := topo.Path{n.origin}
	prepend := topo.Path{n.origin, n.origin, n.origin}
	n.eng.Announce(n.origin, prod, bgp.OriginConfig{Pattern: plain})
	n.converge()

	tier1 := make(map[topo.ASN]bool)
	for _, t := range n.gen.Tier1s {
		tier1[t] = true
	}
	var victims []topo.ASN
	for _, a := range coll.HarvestASes(prod, n.origin) {
		if !tier1[a] && a != n.muxes[0] {
			victims = append(victims, a)
		}
	}
	if len(victims) > 25 {
		victims = sample(n.rng, victims, 25)
	}

	type bucket struct {
		settle       metrics.Sample
		singleUpdate metrics.Counter
		instant      metrics.Counter
		updatesTotal float64
	}
	buckets := map[string]*bucket{
		"prepend-change":      {},
		"prepend-no-change":   {},
		"noprepend-change":    {},
		"noprepend-no-change": {},
	}
	var globalPrepend, globalPlain metrics.Sample

	run := func(baseline topo.Path, label string, global *metrics.Sample) {
		for _, a := range victims {
			n.eng.Announce(n.origin, prod, bgp.OriginConfig{Pattern: baseline})
			n.converge()
			since := n.clk.Now()
			n.eng.Announce(n.origin, prod, bgp.OriginConfig{Pattern: topo.Path{n.origin, a, n.origin}})
			n.converge()
			if g, ok := coll.GlobalConvergenceTime(prod, since); ok {
				global.AddDuration(g)
			}
			for _, pc := range coll.ConvergenceReport(prod, since, a) {
				if pc.Peer == a {
					continue
				}
				key := label + "-no-change"
				if pc.WasOnPath {
					key = label + "-change"
				}
				b := buckets[key]
				if !pc.Updated {
					// Never saw the poison (filtered upstream): counts
					// as instantly converged with zero updates.
					b.instant.Observe(true)
					b.singleUpdate.Observe(true)
					b.settle.Add(0)
					continue
				}
				st := pc.SettleTime(pc.First) // burst width
				b.settle.AddDuration(st)
				b.instant.Observe(st == 0)
				b.singleUpdate.Observe(pc.NumUpdates == 1)
				b.updatesTotal += float64(pc.NumUpdates)
			}
		}
	}
	run(prepend, "prepend", &globalPrepend)
	run(plain, "noprepend", &globalPlain)

	tab := &metrics.Table{
		Title:  "Fig. 6 — per-peer convergence after poisoning",
		Header: []string{"bucket", "peers", "frac instant", "frac single-update", "p50 (s)", "p95 (s)"},
	}
	for _, key := range []string{"prepend-no-change", "noprepend-no-change", "prepend-change", "noprepend-change"} {
		b := buckets[key]
		tab.AddRow(key, b.settle.N(), b.instant.Fraction(), b.singleUpdate.Fraction(),
			b.settle.Percentile(50), b.settle.Percentile(95))
	}
	r.addTable(tab)

	gt := &metrics.Table{
		Title:  "§5.2 — global convergence time (s)",
		Header: []string{"baseline", "p50", "p75", "p90"},
	}
	gt.AddRow("prepend (O-O-O)", globalPrepend.Percentile(50), globalPrepend.Percentile(75), globalPrepend.Percentile(90))
	gt.AddRow("no prepend (O)", globalPlain.Percentile(50), globalPlain.Percentile(75), globalPlain.Percentile(90))
	r.addTable(gt)

	// U — updates per router per poison, the Table 2 parameter (paper:
	// 2.03 for routers that had been routing via the poisoned AS, 1.07
	// for the rest; both ≈1 extra update of pure overhead).
	uOf := func(b *bucket) float64 {
		if b.singleUpdate.Total == 0 {
			return 0
		}
		// settle.N counts peers; total updates = sum over peers of
		// NumUpdates, which we recover from the single-update counter
		// plus the multi-update remainder captured in settle sizes.
		return b.updatesTotal / float64(b.singleUpdate.Total)
	}
	r.Values["U_change_prepend"] = uOf(buckets["prepend-change"])
	r.Values["U_nochange_prepend"] = uOf(buckets["prepend-no-change"])
	r.Values["U_nochange_noprepend"] = uOf(buckets["noprepend-no-change"])

	r.Values["poisons"] = float64(len(victims))
	r.Values["prepend_nochange_frac_instant"] = buckets["prepend-no-change"].instant.Fraction()
	r.Values["prepend_nochange_frac_single_update"] = buckets["prepend-no-change"].singleUpdate.Fraction()
	r.Values["noprepend_nochange_frac_single_update"] = buckets["noprepend-no-change"].singleUpdate.Fraction()
	r.Values["global_p50_prepend_s"] = globalPrepend.Percentile(50)
	r.Values["global_p50_noprepend_s"] = globalPlain.Percentile(50)
	r.Values["global_p90_prepend_s"] = globalPrepend.Percentile(90)

	r.notef("paper: >95%% of unaffected peers converge instantly with prepending; measured %.0f%%",
		buckets["prepend-no-change"].instant.Fraction()*100)
	r.notef("paper: 97%% single-update (prepend) vs 64%% (no prepend) for unaffected peers; measured %.0f%% vs %.0f%%",
		buckets["prepend-no-change"].singleUpdate.Fraction()*100,
		buckets["noprepend-no-change"].singleUpdate.Fraction()*100)
	r.notef("paper: global convergence median 91s (prepend) vs 133s (no prepend); measured %.0fs vs %.0fs",
		globalPrepend.Percentile(50), globalPlain.Percentile(50))
	r.notef("paper Table 2 parameter U: 2.03 updates/router (was on path) vs 1.07 (was not); measured %.2f vs %.2f",
		r.Values["U_change_prepend"], r.Values["U_nochange_prepend"])
	return r
}

// ConvergenceLoss regenerates the §5.2 loss measurement: during the
// convergence window after each poisoning, ping all measurement sites from
// the production prefix every 10 virtual seconds and compute the loss rate.
// The paper: loss under 1% for 60% of poisonings, under 2% for 98%, and
// only 2% of poisonings had any 10-second round above 10% loss.
func ConvergenceLoss(seed int64) *Result {
	r := newResult("sec5.2-loss", "packet loss during post-poisoning convergence")
	n := buildWithOrigin(seed, topogen.Config{NumTransit: 30, NumStub: 100}, 1)
	prod := topo.ProductionPrefix(n.origin)
	prepend := topo.Path{n.origin, n.origin, n.origin}
	n.eng.Announce(n.origin, prod, bgp.OriginConfig{Pattern: prepend})
	n.converge()

	sites := sample(n.rng, n.gen.Stubs, 40)
	victims := harvestForLoss(n, sites)
	if len(victims) > 20 {
		victims = victims[:20]
	}

	var lossRates metrics.Sample
	spikes := &metrics.Counter{}
	under1, under2 := &metrics.Counter{}, &metrics.Counter{}
	srcAddr := topo.ProductionAddr(n.origin)
	hub := n.hub(n.origin)

	for _, a := range victims {
		n.eng.Announce(n.origin, prod, bgp.OriginConfig{Pattern: prepend})
		n.converge()
		// Sites cut off entirely by this poison are excluded, as in the
		// paper.
		cut := make(map[topo.ASN]bool)
		n.eng.Announce(n.origin, prod, bgp.OriginConfig{Pattern: topo.Path{n.origin, a, n.origin}})

		sent, lost := 0, 0
		spike := false
		for !n.eng.Quiescent() {
			n.clk.RunFor(10 * time.Second)
			roundSent, roundLost := 0, 0
			for _, s := range sites {
				if s == a || cut[s] {
					continue
				}
				rep := pingSite(n, hub, srcAddr, s)
				roundSent++
				if !rep {
					roundLost++
				}
			}
			sent += roundSent
			lost += roundLost
			if roundSent > 0 && float64(roundLost)/float64(roundSent) > 0.10 {
				spike = true
			}
		}
		// Determine and retroactively exclude cut-off sites.
		excluded := 0
		for _, s := range sites {
			if _, ok := n.eng.BestRoute(s, prod); !ok {
				cut[s] = true
				excluded++
			}
		}
		if sent == 0 {
			continue
		}
		// Approximate exclusion: remove the cut sites' rounds from the
		// tally (they lost everything after the poison reached them).
		rate := float64(lost) / float64(sent)
		if excluded > 0 {
			adj := float64(lost) - float64(excluded)*float64(sent)/float64(len(sites))
			if adj < 0 {
				adj = 0
			}
			rate = adj / float64(sent)
		}
		lossRates.Add(rate)
		under1.Observe(rate < 0.01)
		under2.Observe(rate < 0.02)
		spikes.Observe(spike)
	}

	tab := &metrics.Table{
		Title:  "§5.2 — loss during convergence",
		Header: []string{"poisonings", "frac <1% loss", "frac <2% loss", "frac w/ >10% round"},
	}
	tab.AddRow(lossRates.N(), under1.Fraction(), under2.Fraction(), spikes.Fraction())
	r.addTable(tab)

	r.Values["poisonings"] = float64(lossRates.N())
	r.Values["frac_loss_under_1pct"] = under1.Fraction()
	r.Values["frac_loss_under_2pct"] = under2.Fraction()
	r.Values["frac_with_spike_round"] = spikes.Fraction()
	r.Values["median_loss_rate"] = lossRates.Percentile(50)

	r.notef("paper: <1%% loss after 60%% of poisonings; measured %.0f%%", under1.Fraction()*100)
	r.notef("paper: <2%% loss for 98%% of poisonings; measured %.0f%%", under2.Fraction()*100)
	r.notef("paper: only 2%% of poisonings had any 10s round over 10%% loss; measured %.0f%%", spikes.Fraction()*100)
	return r
}

// harvestForLoss picks poison victims: transit ASes on the reverse paths
// from the measurement sites to the origin.
func harvestForLoss(n *net, sites []topo.ASN) []topo.ASN {
	tier1 := make(map[topo.ASN]bool)
	for _, t := range n.gen.Tier1s {
		tier1[t] = true
	}
	seen := make(map[topo.ASN]bool)
	var out []topo.ASN
	for _, s := range sites {
		for _, h := range transitHops(n.eng.ASPathTo(s, topo.ProductionAddr(n.origin))) {
			if !seen[h] && !tier1[h] && h != n.muxes[0] && h != s {
				seen[h] = true
				out = append(out, h)
			}
		}
	}
	return out
}

// pingSite sends one production-sourced ping to the site hub and reports
// bidirectional success.
func pingSite(n *net, hub topo.RouterID, srcAddr netip.Addr, site topo.ASN) bool {
	dst := n.top.Router(n.hub(site)).Addr
	return n.prober.PingFromAddr(hub, srcAddr, dst).OK
}
