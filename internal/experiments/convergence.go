package experiments

import (
	"net/netip"
	"time"

	"lifeguard/internal/bgp"
	"lifeguard/internal/collectors"
	"lifeguard/internal/metrics"
	"lifeguard/internal/obs"
	"lifeguard/internal/topo"
	"lifeguard/internal/topogen"
)

// Fig. 6 and the §5.2 numbers compare two origin baselines — prepended
// "O-O-O" and plain "O" — over the same poison set. The two baselines
// never interact: each per-victim cycle re-announces its baseline and
// converges before measuring, so the prepend and no-prepend sweeps are
// independent trials that share only the deterministically rebuilt rig
// (net, collectors, victim sample).

// convRig is the Fig. 6 deployment each convergence trial reconstructs.
type convRig struct {
	n              *net
	prod           netip.Prefix
	coll           *collectors.Collector
	victims        []topo.ASN
	plain, prepend topo.Path
}

func buildConvRig(seed int64, reg *obs.Registry) *convRig {
	n := buildWithOrigin(seed, topogen.Config{NumTransit: 30, NumStub: 100}, 1, reg)
	rig := &convRig{
		n:    n,
		prod: topo.ProductionPrefix(n.origin),
	}
	rig.plain = topo.Path{n.origin}
	rig.prepend = topo.Path{n.origin, n.origin, n.origin}

	peerSet := sample(n.rng, append(append([]topo.ASN(nil), n.gen.Stubs...), n.gen.Transit...), 50)
	rig.coll = collectors.New(n.eng)
	rig.coll.Instrument(reg)
	for _, p := range peerSet {
		if p != n.origin {
			rig.coll.AddPeer(p)
		}
	}

	n.eng.Announce(n.origin, rig.prod, bgp.OriginConfig{Pattern: rig.plain})
	n.converge()

	tier1 := make(map[topo.ASN]bool)
	for _, t := range n.gen.Tier1s {
		tier1[t] = true
	}
	for _, a := range rig.coll.HarvestASes(rig.prod, n.origin) {
		if !tier1[a] && a != n.muxes[0] {
			rig.victims = append(rig.victims, a)
		}
	}
	if len(rig.victims) > 25 {
		rig.victims = sample(n.rng, rig.victims, 25)
	}
	return rig
}

// convBucket accumulates per-peer convergence behaviour for one
// (baseline, was-on-path) class.
type convBucket struct {
	settle       metrics.Sample
	singleUpdate metrics.Counter
	instant      metrics.Counter
	updatesTotal float64
}

// convPart is one baseline sweep's partial result.
type convPart struct {
	poisons  int
	change   convBucket
	noChange convBucket
	global   metrics.Sample
}

// convergenceSweep poisons every victim once from the given baseline and
// measures per-peer convergence (burst width from the collectors'
// report), separated by whether the peer had been routing through the
// poisoned AS.
func convergenceSweep(seed int64, usePrepend bool, reg *obs.Registry) *convPart {
	rig := buildConvRig(seed, reg)
	n := rig.n
	baseline := rig.plain
	if usePrepend {
		baseline = rig.prepend
	}
	p := &convPart{poisons: len(rig.victims)}
	for _, a := range rig.victims {
		n.eng.Announce(n.origin, rig.prod, bgp.OriginConfig{Pattern: baseline})
		n.converge()
		since := n.clk.Now()
		n.eng.Announce(n.origin, rig.prod, bgp.OriginConfig{Pattern: topo.Path{n.origin, a, n.origin}})
		n.converge()
		if g, ok := rig.coll.GlobalConvergenceTime(rig.prod, since); ok {
			p.global.AddDuration(g)
		}
		for _, pc := range rig.coll.ConvergenceReport(rig.prod, since, a) {
			if pc.Peer == a {
				continue
			}
			b := &p.noChange
			if pc.WasOnPath {
				b = &p.change
			}
			if !pc.Updated {
				// Never saw the poison (filtered upstream): counts
				// as instantly converged with zero updates.
				b.instant.Observe(true)
				b.singleUpdate.Observe(true)
				b.settle.Add(0)
				continue
			}
			st := pc.SettleTime(pc.First) // burst width
			b.settle.AddDuration(st)
			b.instant.Observe(st == 0)
			b.singleUpdate.Observe(pc.NumUpdates == 1)
			b.updatesTotal += float64(pc.NumUpdates)
		}
	}
	return p
}

// convergenceScenario regenerates Fig. 6 and the §5.2 global-convergence
// numbers. The paper: with prepending, >95% of unaffected peers converge
// instantly and 97% emit a single update; without prepending only ~64%
// emit a single update; global convergence medians 91s (prepend) vs 133s.
var convergenceScenario = Scenario{
	Trials: func(seed int64) []Trial {
		return []Trial{
			{Name: "prepend", Run: func(reg *obs.Registry) any { return convergenceSweep(seed, true, reg) }},
			{Name: "noprepend", Run: func(reg *obs.Registry) any { return convergenceSweep(seed, false, reg) }},
		}
	},
	Reduce: func(_ int64, parts []any) *Result {
		pre := parts[0].(*convPart)
		pla := parts[1].(*convPart)
		r := newResult("fig6", "convergence after poisoned announcements")

		buckets := map[string]*convBucket{
			"prepend-change":      &pre.change,
			"prepend-no-change":   &pre.noChange,
			"noprepend-change":    &pla.change,
			"noprepend-no-change": &pla.noChange,
		}

		tab := &metrics.Table{
			Title:  "Fig. 6 — per-peer convergence after poisoning",
			Header: []string{"bucket", "peers", "frac instant", "frac single-update", "p50 (s)", "p95 (s)"},
		}
		for _, key := range []string{"prepend-no-change", "noprepend-no-change", "prepend-change", "noprepend-change"} {
			b := buckets[key]
			tab.AddRow(key, b.settle.N(), b.instant.Fraction(), b.singleUpdate.Fraction(),
				b.settle.Percentile(50), b.settle.Percentile(95))
		}
		r.addTable(tab)

		gt := &metrics.Table{
			Title:  "§5.2 — global convergence time (s)",
			Header: []string{"baseline", "p50", "p75", "p90"},
		}
		gt.AddRow("prepend (O-O-O)", pre.global.Percentile(50), pre.global.Percentile(75), pre.global.Percentile(90))
		gt.AddRow("no prepend (O)", pla.global.Percentile(50), pla.global.Percentile(75), pla.global.Percentile(90))
		r.addTable(gt)

		// U — updates per router per poison, the Table 2 parameter (paper:
		// 2.03 for routers that had been routing via the poisoned AS, 1.07
		// for the rest; both ≈1 extra update of pure overhead).
		uOf := func(b *convBucket) float64 {
			if b.singleUpdate.Total == 0 {
				return 0
			}
			return b.updatesTotal / float64(b.singleUpdate.Total)
		}
		r.Values["U_change_prepend"] = uOf(&pre.change)
		r.Values["U_nochange_prepend"] = uOf(&pre.noChange)
		r.Values["U_nochange_noprepend"] = uOf(&pla.noChange)

		r.Values["poisons"] = float64(pre.poisons)
		r.Values["prepend_nochange_frac_instant"] = pre.noChange.instant.Fraction()
		r.Values["prepend_nochange_frac_single_update"] = pre.noChange.singleUpdate.Fraction()
		r.Values["noprepend_nochange_frac_single_update"] = pla.noChange.singleUpdate.Fraction()
		r.Values["global_p50_prepend_s"] = pre.global.Percentile(50)
		r.Values["global_p50_noprepend_s"] = pla.global.Percentile(50)
		r.Values["global_p90_prepend_s"] = pre.global.Percentile(90)

		r.notef("paper: >95%% of unaffected peers converge instantly with prepending; measured %.0f%%",
			pre.noChange.instant.Fraction()*100)
		r.notef("paper: 97%% single-update (prepend) vs 64%% (no prepend) for unaffected peers; measured %.0f%% vs %.0f%%",
			pre.noChange.singleUpdate.Fraction()*100,
			pla.noChange.singleUpdate.Fraction()*100)
		r.notef("paper: global convergence median 91s (prepend) vs 133s (no prepend); measured %.0fs vs %.0fs",
			pre.global.Percentile(50), pla.global.Percentile(50))
		r.notef("paper Table 2 parameter U: 2.03 updates/router (was on path) vs 1.07 (was not); measured %.2f vs %.2f",
			r.Values["U_change_prepend"], r.Values["U_nochange_prepend"])
		return r
	},
}

// Convergence regenerates Fig. 6 and the §5.2 global-convergence numbers
// (sequential reference path over convergenceScenario).
func Convergence(seed int64) *Result { return convergenceScenario.Run(seed) }

// lossRig is the §5.2 loss deployment each loss trial reconstructs.
type lossRig struct {
	n       *net
	prod    netip.Prefix
	prepend topo.Path
	sites   []topo.ASN
	victims []topo.ASN
}

func buildLossRig(seed int64, reg *obs.Registry) *lossRig {
	n := buildWithOrigin(seed, topogen.Config{NumTransit: 30, NumStub: 100}, 1, reg)
	rig := &lossRig{n: n, prod: topo.ProductionPrefix(n.origin)}
	rig.prepend = topo.Path{n.origin, n.origin, n.origin}
	n.eng.Announce(n.origin, rig.prod, bgp.OriginConfig{Pattern: rig.prepend})
	n.converge()

	rig.sites = sample(n.rng, n.gen.Stubs, 40)
	rig.victims = harvestForLoss(n, rig.sites)
	if len(rig.victims) > 20 {
		rig.victims = rig.victims[:20]
	}
	return rig
}

// lossPart is one victim shard's partial result; the accumulators merge
// in trial order in the scenario reduce.
type lossPart struct {
	lossRates metrics.Sample
	spikes    metrics.Counter
	under1    metrics.Counter
	under2    metrics.Counter
}

// lossSweep measures convergence-window loss for one contiguous shard of
// the victim list. Each victim's cycle re-converges its baseline before
// poisoning, so victims are independent and the list shards cleanly.
func lossSweep(seed int64, shard, shards int, reg *obs.Registry) *lossPart {
	rig := buildLossRig(seed, reg)
	n := rig.n
	p := &lossPart{}
	srcAddr := topo.ProductionAddr(n.origin)
	hub := n.hub(n.origin)

	for i, a := range rig.victims {
		if i%shards != shard {
			continue
		}
		n.eng.Announce(n.origin, rig.prod, bgp.OriginConfig{Pattern: rig.prepend})
		n.converge()
		// Sites cut off entirely by this poison are excluded, as in the
		// paper.
		cut := make(map[topo.ASN]bool)
		n.eng.Announce(n.origin, rig.prod, bgp.OriginConfig{Pattern: topo.Path{n.origin, a, n.origin}})

		sent, lost := 0, 0
		spike := false
		for !n.eng.Quiescent() {
			n.clk.RunFor(10 * time.Second)
			roundSent, roundLost := 0, 0
			for _, s := range rig.sites {
				if s == a || cut[s] {
					continue
				}
				rep := pingSite(n, hub, srcAddr, s)
				roundSent++
				if !rep {
					roundLost++
				}
			}
			sent += roundSent
			lost += roundLost
			if roundSent > 0 && float64(roundLost)/float64(roundSent) > 0.10 {
				spike = true
			}
		}
		// Determine and retroactively exclude cut-off sites.
		excluded := 0
		for _, s := range rig.sites {
			if _, ok := n.eng.BestRoute(s, rig.prod); !ok {
				cut[s] = true
				excluded++
			}
		}
		if sent == 0 {
			continue
		}
		// Approximate exclusion: remove the cut sites' rounds from the
		// tally (they lost everything after the poison reached them).
		rate := float64(lost) / float64(sent)
		if excluded > 0 {
			adj := float64(lost) - float64(excluded)*float64(sent)/float64(len(rig.sites))
			if adj < 0 {
				adj = 0
			}
			rate = adj / float64(sent)
		}
		p.lossRates.Add(rate)
		p.under1.Observe(rate < 0.01)
		p.under2.Observe(rate < 0.02)
		p.spikes.Observe(spike)
	}
	return p
}

// lossScenario regenerates the §5.2 loss measurement: during the
// convergence window after each poisoning, ping all measurement sites from
// the production prefix every 10 virtual seconds and compute the loss rate.
// The paper: loss under 1% for 60% of poisonings, under 2% for 98%, and
// only 2% of poisonings had any 10-second round above 10% loss. The two
// trials sweep interleaved victim shards; the reduce merges their
// accumulators in trial order.
var lossScenario = Scenario{
	Trials: func(seed int64) []Trial {
		return []Trial{
			{Name: "shard0", Run: func(reg *obs.Registry) any { return lossSweep(seed, 0, 2, reg) }},
			{Name: "shard1", Run: func(reg *obs.Registry) any { return lossSweep(seed, 1, 2, reg) }},
		}
	},
	Reduce: func(_ int64, parts []any) *Result {
		merged := &lossPart{}
		for _, pa := range parts {
			p := pa.(*lossPart)
			merged.lossRates.Merge(&p.lossRates)
			merged.spikes.Merge(p.spikes)
			merged.under1.Merge(p.under1)
			merged.under2.Merge(p.under2)
		}

		r := newResult("sec5.2-loss", "packet loss during post-poisoning convergence")
		tab := &metrics.Table{
			Title:  "§5.2 — loss during convergence",
			Header: []string{"poisonings", "frac <1% loss", "frac <2% loss", "frac w/ >10% round"},
		}
		tab.AddRow(merged.lossRates.N(), merged.under1.Fraction(), merged.under2.Fraction(), merged.spikes.Fraction())
		r.addTable(tab)

		r.Values["poisonings"] = float64(merged.lossRates.N())
		r.Values["frac_loss_under_1pct"] = merged.under1.Fraction()
		r.Values["frac_loss_under_2pct"] = merged.under2.Fraction()
		r.Values["frac_with_spike_round"] = merged.spikes.Fraction()
		r.Values["median_loss_rate"] = merged.lossRates.Percentile(50)

		r.notef("paper: <1%% loss after 60%% of poisonings; measured %.0f%%", merged.under1.Fraction()*100)
		r.notef("paper: <2%% loss for 98%% of poisonings; measured %.0f%%", merged.under2.Fraction()*100)
		r.notef("paper: only 2%% of poisonings had any 10s round over 10%% loss; measured %.0f%%", merged.spikes.Fraction()*100)
		return r
	},
}

// ConvergenceLoss regenerates the §5.2 loss measurement (sequential
// reference path over lossScenario).
func ConvergenceLoss(seed int64) *Result { return lossScenario.Run(seed) }

// harvestForLoss picks poison victims: transit ASes on the reverse paths
// from the measurement sites to the origin.
func harvestForLoss(n *net, sites []topo.ASN) []topo.ASN {
	tier1 := make(map[topo.ASN]bool)
	for _, t := range n.gen.Tier1s {
		tier1[t] = true
	}
	seen := make(map[topo.ASN]bool)
	var out []topo.ASN
	for _, s := range sites {
		for _, h := range transitHops(n.eng.ASPathTo(s, topo.ProductionAddr(n.origin))) {
			if !seen[h] && !tier1[h] && h != n.muxes[0] && h != s {
				seen[h] = true
				out = append(out, h)
			}
		}
	}
	return out
}

// pingSite sends one production-sourced ping to the site hub and reports
// bidirectional success.
func pingSite(n *net, hub topo.RouterID, srcAddr netip.Addr, site topo.ASN) bool {
	dst := n.top.Router(n.hub(site)).Addr
	return n.prober.PingFromAddr(hub, srcAddr, dst).OK
}
