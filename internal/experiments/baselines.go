package experiments

import (
	"lifeguard/internal/bgp"
	"lifeguard/internal/dataplane"
	"lifeguard/internal/metrics"
	"lifeguard/internal/obs"
	"lifeguard/internal/topo"
	"lifeguard/internal/topogen"
)

// Baselines quantifies §2.3's argument: the traditional announcement-based
// route-control techniques act on the *next-hop provider*, not on the AS
// actually causing the problem, so they usually fail to repair a remote
// reverse-path failure — which is exactly what poisoning fixes.
//
// Setup: a dual-homed origin; for each scenario a transit AS on a victim's
// reverse path silently blackholes traffic toward the origin. Each
// technique is applied and the victim's production reachability re-tested:
//
//   - selective advertising: withhold the prefix from the provider whose
//     side carries the failure;
//   - prepending: make that side's announcement much longer;
//   - selective poisoning of the faulty AS (via the other provider);
//   - full poisoning of the faulty AS.
func Baselines(seed int64) *Result { return baselines(seed, nil) }

func baselines(seed int64, reg *obs.Registry) *Result {
	r := newResult("sec2.3-baselines", "remediation techniques vs remote reverse failures")
	n := buildWithOrigin(seed, topogen.Config{
		NumTransit: 25, NumStub: 80,
		TransitPeerProb: 0.10, StubMultihomeProb: 0.65,
	}, 2, reg)
	prod := topo.ProductionPrefix(n.origin)
	base := topo.Path{n.origin, n.origin, n.origin}
	baseline := func() {
		n.eng.Announce(n.origin, prod, bgp.OriginConfig{Pattern: base})
		n.converge()
	}
	baseline()

	// The victim reaches the origin via a path through its production
	// route; delivery is tested end to end on the data plane.
	victimOK := func(v topo.ASN) bool {
		res := n.plane.Forward(n.hub(v), dataplane.Packet{
			Src: n.top.Router(n.hub(v)).Addr, Dst: topo.ProductionAddr(n.origin),
		})
		return res.Delivered()
	}

	techniques := []string{"selective advertising", "prepending", "selective poisoning", "poisoning"}
	wins := map[string]*metrics.Counter{}
	disruption := map[string]*metrics.Sample{}
	for _, t := range techniques {
		wins[t] = &metrics.Counter{}
		disruption[t] = &metrics.Sample{}
	}

	// pathSnapshot records every AS's production next hop plus whether
	// its path transits a given AS, to measure how many *working* routes
	// each technique disturbs unnecessarily (§2.3's other complaint:
	// "all working routes that had previously gone through that provider
	// will change").
	type snap struct {
		nh      topo.ASN
		viaFail bool
	}
	pathSnapshot := func(failAS topo.ASN) map[topo.ASN]snap {
		out := make(map[topo.ASN]snap, n.top.NumASes())
		for _, asn := range n.top.ASNs() {
			if rt, ok := n.eng.BestRoute(asn, prod); ok {
				nh, _ := rt.NextHop()
				via := false
				for _, a := range rt.Path {
					if a == n.origin {
						break
					}
					if a == failAS {
						via = true
					}
				}
				out[asn] = snap{nh: nh, viaFail: via}
			}
		}
		return out
	}

	scenarios := 0
	for _, v := range sample(n.rng, n.gen.Stubs, 40) {
		if scenarios >= 25 || v == n.origin {
			continue
		}
		baseline()
		path := n.eng.ASPathTo(v, topo.ProductionAddr(n.origin))
		hops := transitHops(path)
		if len(hops) < 2 {
			continue
		}
		// Fail an interior transit (not the victim's own provider, not
		// the origin's).
		failAS := hops[len(hops)/2]
		isMux := false
		for _, m := range n.muxes {
			if failAS == m {
				isMux = true
			}
		}
		if isMux || failAS == v {
			continue
		}
		// Which of the origin's providers carries the failing side?
		sideMux := path[len(path)-1]
		if len(path) >= 2 {
			sideMux = path[len(path)-2] // the AS just before the origin pattern
		}
		for i := len(path) - 1; i >= 0; i-- {
			if path[i] == n.origin {
				continue
			}
			sideMux = path[i]
			break
		}
		var otherMux topo.ASN
		for _, m := range n.muxes {
			if m != sideMux {
				otherMux = m
			}
		}
		if otherMux == 0 || sideMux == 0 {
			continue
		}
		fid := n.plane.AddFailure(dataplane.BlackholeASTowards(failAS, topo.Block(n.origin)))
		if victimOK(v) {
			n.plane.RemoveFailure(fid)
			continue // the failure didn't actually break this victim
		}
		scenarios++
		before := pathSnapshot(failAS)

		apply := func(name string, cfg bgp.OriginConfig) {
			n.eng.Announce(n.origin, prod, cfg)
			n.converge()
			wins[name].Observe(victimOK(v))
			// Collateral: ASes whose working route (one NOT through the
			// faulty AS) was forced to change. ASes that were routing
			// via the faulty AS had to move anyway and don't count.
			after := pathSnapshot(failAS)
			changed := 0
			for asn, b := range before {
				if asn == v || b.viaFail {
					continue
				}
				if after[asn].nh != b.nh {
					changed++
				}
			}
			disruption[name].Add(float64(changed))
			baseline()
		}

		apply("selective advertising", bgp.OriginConfig{
			Pattern:  base,
			Withhold: map[topo.ASN]bool{sideMux: true},
		})
		apply("prepending", bgp.OriginConfig{
			Pattern: base,
			PerNeighbor: map[topo.ASN]topo.Path{
				sideMux: {n.origin, n.origin, n.origin, n.origin, n.origin, n.origin, n.origin},
			},
		})
		apply("selective poisoning", bgp.OriginConfig{
			Pattern: base,
			PerNeighbor: map[topo.ASN]topo.Path{
				sideMux: {n.origin, failAS, n.origin},
			},
		})
		apply("poisoning", bgp.OriginConfig{
			Pattern: topo.Path{n.origin, failAS, n.origin},
		})
		n.plane.RemoveFailure(fid)
	}

	tab := &metrics.Table{
		Title:  "§2.3 — can each technique repair a remote reverse-path failure?",
		Header: []string{"technique", "repaired/scenarios", "fraction", "working routes disturbed (mean)"},
	}
	for _, t := range techniques {
		tab.AddRow(t, wins[t].String(), wins[t].Fraction(), disruption[t].Mean())
	}
	r.addTable(tab)
	r.Values["scenarios"] = float64(scenarios)
	r.Values["frac_selective_advertising"] = wins["selective advertising"].Fraction()
	r.Values["frac_prepending"] = wins["prepending"].Fraction()
	r.Values["frac_selective_poisoning"] = wins["selective poisoning"].Fraction()
	r.Values["frac_poisoning"] = wins["poisoning"].Fraction()
	r.Values["disrupt_selective_advertising"] = disruption["selective advertising"].Mean()
	r.Values["disrupt_poisoning"] = disruption["poisoning"].Mean()
	r.Values["disrupt_selective_poisoning"] = disruption["selective poisoning"].Mean()
	r.notef("the paper's §2.3 argument quantified: prepending is both ineffective and disruptive; selective advertising repairs by brute force but disturbs ~4x more working routes than poisoning; poisoning repairs every scenario while touching only the routes that had to move")
	return r
}
