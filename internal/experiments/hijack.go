package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"lifeguard"
	"lifeguard/internal/dataplane"
	"lifeguard/internal/metrics"
	"lifeguard/internal/obs"
)

// The hijack experiment measures the ARTEMIS-style pipeline end to end on a
// synthetic Internet, sweeping where the rogue AS sits relative to the
// victim: a rogue close to the victim's providers captures more of the
// network before longest-prefix-match mitigation claws it back. Each
// placement level injects a sub-prefix hijack against an owner running the
// full Session hijack plane and reports the three headline numbers —
// detection latency, mitigation latency, and the fraction of ASes whose
// data plane recovered — plus whether the alarm cleared after the rogue
// withdrew.

// hijackDistances is the rogue-placement sweep: the AS-path distance from
// the rogue to the victim origin. Rogues are picked among stubs at exactly
// this distance; levels with no such stub report placed=0.
var hijackDistances = []int{2, 3, 4}

// hjPart is one placement level's outcome.
type hjPart struct {
	distance int
	placed   bool
	rogue    lifeguard.ASN
	// detectS and mitigateS are the measured latencies in seconds.
	detectS, mitigateS float64
	// reachAttack and reachMitigated are the fraction of routered ASes
	// whose data plane delivered to the owner for the contested prefix,
	// measured at the attack's convergence and after mitigation verified.
	reachAttack, reachMitigated float64
	mitigated, cleared          bool
}

var hijackScenario = Scenario{
	Trials: func(seed int64) []Trial {
		var ts []Trial
		for _, d := range hijackDistances {
			d := d
			ts = append(ts, Trial{
				Name: fmt.Sprintf("distance=%d", d),
				Run:  func(reg *obs.Registry) any { return hijackTrial(seed, d, reg) },
			})
		}
		return ts
	},
	Reduce: reduceHijack,
}

// Hijack runs the rogue-placement sweep; see hijackScenario.
func Hijack(seed int64) *Result { return hijackScenario.Run(seed) }

// hjReachFraction measures the fraction of routered ASes (owner and rogue
// excluded) whose data plane delivers traffic for probe to the owner.
func hjReachFraction(n *lifeguard.Network, owner, rogue lifeguard.ASN, probe lifeguard.Addr) float64 {
	reached, total := 0, 0
	for _, asn := range n.Top.ASNs() {
		if asn == owner || asn == rogue {
			continue
		}
		as := n.Top.AS(asn)
		if len(as.Routers) == 0 {
			continue
		}
		total++
		res := n.Plane.Forward(as.Routers[0], dataplane.Packet{Dst: probe})
		if res.Delivered() && res.LastAS == owner {
			reached++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(reached) / float64(total)
}

func hijackTrial(seed int64, distance int, reg *obs.Registry) hjPart {
	if reg == nil {
		reg = obs.New()
	}
	n, err := lifeguard.GenerateInternet(
		lifeguard.InternetConfig{Seed: seed, NumTransit: 12, NumStub: 30},
		lifeguard.NetworkOptions{
			Seed: seed,
			BGP:  lifeguard.BGPConfig{MRAI: 200 * time.Millisecond, MRAIJitter: -1, PropJitter: -1},
			Obs:  reg,
		})
	if err != nil {
		panic(fmt.Sprintf("hijack experiment: %v", err))
	}
	owner := n.Gen.Stubs[0]
	part := hjPart{distance: distance}

	// Rogue: the first stub whose AS path to the owner has the requested
	// length. Deterministic — Gen.Stubs order is seed-fixed.
	for _, cand := range n.Gen.Stubs[1:] {
		if len(n.Eng.ASPathTo(cand, lifeguard.ProductionAddr(owner))) == distance {
			part.placed, part.rogue = true, cand
			break
		}
	}
	if !part.placed {
		return part
	}

	ses := lifeguard.NewSession(n, lifeguard.SessionConfig{
		Config: lifeguard.Config{Origin: owner},
		Hijack: lifeguard.HijackConfig{
			Enable:         true,
			CollectorPeers: n.Gen.Transit,
		},
	})
	ses.Start()
	n.Clk.RunFor(2 * time.Minute)

	// The rogue originates a more-specific inside the owner's block,
	// outside the production/sentinel range so it is a sub-prefix (not
	// exact-prefix) attack.
	b := lifeguard.Block(owner).Addr().As4()
	sub := netip.PrefixFrom(netip.AddrFrom4([4]byte{b[0], b[1], 128, 0}), 24)
	probe := netip.AddrFrom4([4]byte{b[0], b[1], 128, 1})
	n.Eng.Announce(part.rogue, sub, lifeguard.OriginConfig{})
	n.Converge()
	part.reachAttack = hjReachFraction(n, owner, part.rogue, probe)

	n.Clk.RunFor(10 * time.Minute)
	if det := ses.EventsOfKind(lifeguard.EventHijackDetected); len(det) > 0 {
		part.detectS = det[0].Alarm.Latency.Seconds()
	}
	if mit := ses.EventsOfKind(lifeguard.EventHijackMitigated); len(mit) > 0 {
		part.mitigated = true
		part.mitigateS = mit[0].Mitigation.Latency.Seconds()
	}
	n.Converge()
	part.reachMitigated = hjReachFraction(n, owner, part.rogue, probe)

	// The rogue withdraws; the alarm must clear and the counter-
	// announcements come down with it.
	n.Eng.Withdraw(part.rogue, sub)
	n.Clk.RunFor(5 * time.Minute)
	part.cleared = len(ses.Hijack.Active()) == 0 && len(ses.Remedy.Counters()) == 0
	ses.Stop()
	return part
}

func reduceHijack(_ int64, parts []any) *Result {
	r := newResult("hijack", "hijack detection and auto-mitigation vs rogue placement")
	tab := &metrics.Table{
		Title:  "hijack — sub-prefix attack vs the session hijack plane, by rogue distance",
		Header: []string{"rogue distance", "detect (s)", "mitigate (s)", "reach attack", "reach mitigated", "cleared"},
	}
	for _, p := range parts {
		h := p.(hjPart)
		if !h.placed {
			continue
		}
		tab.AddRow(h.distance, h.detectS, h.mitigateS, h.reachAttack, h.reachMitigated, h.cleared)
		key := fmt.Sprintf("_d%d", h.distance)
		r.Values["detect_s"+key] = h.detectS
		r.Values["mitigate_s"+key] = h.mitigateS
		r.Values["reach_attack"+key] = h.reachAttack
		r.Values["reach_mitigated"+key] = h.reachMitigated
		if h.cleared {
			r.Values["cleared"+key] = 1
		}
	}
	r.addTable(tab)
	r.notef("beyond the paper: LIFEGUARD's machinery (collectors, poisoned announcements, data-plane sentinels) repurposed as an ARTEMIS-style owner-side hijack defense; detection rides the collector streams, mitigation the counter-announcement engine")
	r.notef("mitigation recovers by longest-prefix match, so the recovered fraction rises toward 1.0 regardless of rogue placement; detection latency is bounded by the scan interval plus propagation")
	return r
}
