package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"lifeguard/internal/atlas"
	"lifeguard/internal/chaos"
	"lifeguard/internal/core/isolation"
	"lifeguard/internal/core/remedy"
	"lifeguard/internal/metrics"
	"lifeguard/internal/obs"
	"lifeguard/internal/topo"
	"lifeguard/internal/topogen"
	"lifeguard/internal/traffic"
)

// The traffic experiment scores the repair loop the way the paper's
// headline framing does: not probe convergence but user traffic actually
// served. A flow population behind remote vantage ASes exchanges packet
// pairs with the origin's production prefix every epoch while a scripted
// reverse-path blackhole runs for 20 minutes; the experiment replays the
// identical timeline with the LIFEGUARD monitor→isolate→poison loop armed
// and disarmed, and reports user-seconds lost in each world. The flow
// population is sharded over destination addresses across runner trials
// (two shards per mode); per-epoch reports merge in trial order, so the
// rendered result is byte-identical at any -parallel level.

const (
	// trafficFlows is the modelled population size per mode (split across
	// the shards). lgbench scales this up to millions; the experiment
	// keeps it CI-sized.
	trafficFlows = 120_000
	// trafficShards fixes the destination sharding. Two is enough to keep
	// the merge path honest without doubling trial cost further.
	trafficShards = 2
	// trafficEpoch is the accounting interval; it doubles as the monitor
	// poll period so served-traffic accounting and detection share a
	// timescale.
	trafficEpoch = 30 * time.Second
)

// trafficPart is one (mode, shard) trial outcome.
type trafficPart struct {
	repair     bool
	shard      int
	flows      int
	eps        []traffic.EpochReport
	poisons    int
	violations int
}

var trafficScenario = Scenario{
	Trials: func(seed int64) []Trial {
		var ts []Trial
		for _, repair := range []bool{true, false} {
			for shard := 0; shard < trafficShards; shard++ {
				repair, shard := repair, shard
				name := "norepair"
				if repair {
					name = "repair"
				}
				ts = append(ts, Trial{
					Name: fmt.Sprintf("%s/shard=%d", name, shard),
					Run:  func(reg *obs.Registry) any { return trafficTrial(seed, repair, shard, reg) },
				})
			}
		}
		return ts
	},
	Reduce: reduceTraffic,
}

// Traffic runs the user-seconds-lost sweep; see trafficScenario.
func Traffic(seed int64) *Result { return trafficScenario.Run(seed) }

// trafficDests spreads the monitored destinations over the origin's
// production /24 — one routed prefix, several user-facing addresses, so
// destination sharding has something to cut across.
func trafficDests(origin topo.ASN) []traffic.Dest {
	base := topo.ProductionAddr(origin).As4()
	var dests []traffic.Dest
	for i := 0; i < 4; i++ {
		addr := netip.AddrFrom4([4]byte{base[0], base[1], base[2], byte(1 + i)})
		dests = append(dests, traffic.Dest{Addr: addr, Weight: 1 + i%3})
	}
	return dests
}

func trafficTrial(seed int64, repair bool, shard int, reg *obs.Registry) trafficPart {
	n := buildWithOrigin(seed, topogen.Config{NumTransit: 12, NumStub: 24}, 3, reg)

	// Both worlds run the full monitor/remedy stack — the norepair world
	// simply never pulls the repair trigger — so the only difference
	// between them is the poison.
	ctrl := remedy.New(n.eng, n.prober, n.clk, remedy.Config{
		Origin:           n.origin,
		MinOutageAge:     time.Minute,
		SentinelInterval: time.Minute,
	})
	ctrl.Instrument(reg)
	ctrl.AnnounceBaseline()
	n.converge()

	// The user populations sit behind four remote stubs; the same stubs
	// are the monitor's targets, so the monitored reverse paths are
	// exactly the paths the flows' forward packets ride.
	vantages := sample(n.rng, n.gen.Stubs, 4)
	vp := n.hub(n.origin)
	src := topo.ProductionAddr(n.origin)
	atl := atlas.New(n.top, n.prober, n.clk, atlas.Config{})
	atl.AddVP(vp)
	var targets []netip.Addr
	for _, t := range vantages {
		addr := n.top.Router(n.hub(t)).Addr
		atl.AddTarget(addr)
		targets = append(targets, addr)
	}
	atl.RefreshAll()
	n.clk.RunFor(15 * time.Minute)
	atl.RefreshAll()
	n.clk.RunFor(time.Minute)
	iso := isolation.New(n.top, n.prober, atl, n.clk, isolation.Config{})
	iso.Instrument(reg)

	gen, err := traffic.New(traffic.Deps{
		Top: n.top, Clk: n.clk, Plane: n.plane, Obs: reg,
	}, traffic.Config{
		Seed:       uint64(seed) ^ 0x7AFF1C,
		Flows:      trafficFlows,
		Vantages:   vantages,
		Dests:      trafficDests(n.origin),
		Epoch:      trafficEpoch,
		Churn:      0.02,
		ShardIndex: shard,
		ShardCount: trafficShards,
	})
	if err != nil {
		panic(fmt.Sprintf("traffic experiment: %v", err))
	}

	// The inlined System loop from the chaos experiment: poll each target,
	// open an episode on loss, isolate and (in the repair world) hand the
	// report to the remedy engine.
	type episode struct {
		open    bool
		start   time.Duration
		lastIso time.Duration
	}
	states := make([]episode, len(targets))
	part := trafficPart{repair: repair, shard: shard, flows: gen.Flows()}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		now := n.clk.Now()
		for i := range targets {
			st := &states[i]
			ok := n.prober.PingFromAddr(vp, src, targets[i]).OK
			switch {
			case !ok && !st.open:
				st.open, st.start, st.lastIso = true, now, now
			case !ok && st.open:
				if repair && ctrl.Active() == nil && now-st.lastIso >= 2*time.Minute {
					st.lastIso = now
					rep := iso.Isolate(vp, targets[i])
					ctrl.DecideAndRepair(rep, st.start)
				}
			case ok && st.open:
				st.open = false
			}
		}
		// Close the traffic epoch after the poll so an epoch's packets see
		// any poison the monitor just installed.
		part.eps = append(part.eps, gen.RunEpoch())
		n.clk.After(trafficEpoch, tick)
	}
	n.clk.After(trafficEpoch, tick)

	script := trafficScript(n, vantages)
	var reach []chaos.ReachProbe
	for _, addr := range targets {
		reach = append(reach, chaos.ReachProbe{From: vp, To: addr})
	}
	for _, v := range vantages {
		reach = append(reach, chaos.ReachProbe{From: n.hub(v), To: src})
	}
	tgt := &chaos.Target{Top: n.top, Clk: n.clk, Eng: n.eng, Plane: n.plane}
	runner, err := chaos.NewRunner(tgt, script, chaos.Options{Obs: reg, Reach: reach})
	if err != nil {
		panic(fmt.Sprintf("traffic experiment: %v", err))
	}
	rep, err := runner.Run()
	if err != nil {
		panic(fmt.Sprintf("traffic experiment: run: %v", err))
	}
	stopped = true

	part.poisons = len(ctrl.History)
	part.violations = len(rep.Violations)
	return part
}

// trafficScript injects the paper's canonical fault — an AS partway down
// the monitored reverse path silently blackholing everything toward the
// origin's block — for 20 minutes, then demands convergence back to
// baseline. The faulted AS is derived from routing state, identically on
// every shard and in both repair worlds.
func trafficScript(n *net, vantages []topo.ASN) *chaos.Script {
	avoid := map[topo.ASN]bool{n.origin: true}
	for _, m := range n.muxes {
		avoid[m] = true
	}
	for _, v := range vantages {
		avoid[v] = true
	}
	var fault topo.ASN
	for _, v := range vantages {
		rev := n.eng.ASPathTo(v, topo.ProductionAddr(n.origin))
		for _, a := range rev {
			if !avoid[a] {
				fault = a
				break
			}
		}
		if fault != 0 {
			break
		}
	}
	if fault == 0 {
		panic("traffic experiment: no faultable AS on any monitored reverse path")
	}
	var s chaos.Script
	s.Steps = append(s.Steps, chaos.Step{
		At:    5 * time.Minute,
		Fault: &chaos.BlackholeTowards{AS: fault, Dst: topo.Block(n.origin)},
		For:   20 * time.Minute,
	})
	s.Steps = append(s.Steps, chaos.Step{At: s.End() + 10*time.Minute, Check: true})
	return &s
}

func reduceTraffic(_ int64, parts []any) *Result {
	r := newResult("traffic", "user-seconds lost through outage→repair, with and without LIFEGUARD")

	// Parts arrive in trial order: repair shards first, then norepair.
	byMode := map[bool][][]traffic.EpochReport{}
	flows := map[bool]int{}
	poisons, violations := 0, 0
	for _, p := range parts {
		t := p.(trafficPart)
		byMode[t.repair] = append(byMode[t.repair], t.eps)
		flows[t.repair] += t.flows
		poisons += t.poisons
		violations += t.violations
	}
	sums := map[bool]traffic.Summary{}
	tab := &metrics.Table{
		Title:  "traffic — served user traffic vs repair (20-minute reverse-path blackhole)",
		Header: []string{"mode", "flows", "epochs", "packets", "availability", "user-seconds lost"},
	}
	for _, repair := range []bool{true, false} {
		merged, err := traffic.MergeEpochs(byMode[repair]...)
		if err != nil {
			panic(fmt.Sprintf("traffic experiment: merge: %v", err))
		}
		sum := traffic.Summarize(merged)
		sums[repair] = sum
		mode := "norepair"
		if repair {
			mode = "repair"
		}
		tab.AddRow(mode, flows[repair], sum.Epochs, sum.Packets,
			sum.Availability(), sum.UserSecondsLost)
		r.Values["user_seconds_lost_"+mode] = float64(sum.UserSecondsLost)
		r.Values["availability_"+mode] = sum.Availability()
	}
	r.addTable(tab)

	lostRepair := sums[true].UserSecondsLost
	lostNone := sums[false].UserSecondsLost
	r.Values["flows_total"] = float64(flows[true])
	r.Values["poisons_total"] = float64(poisons)
	r.Values["violations_total"] = float64(violations)
	if lostNone > 0 {
		r.Values["user_seconds_saved_frac"] = 1 - float64(lostRepair)/float64(lostNone)
	}

	r.notef("%d flows behind 4 vantage ASes, %d invariant violations (want 0); the same fault timeline costs %d user-seconds without repair and %d with the poison loop armed",
		flows[true], violations, lostNone, lostRepair)
	r.notef("the paper's Fig. 5/6 claim is exactly this contrast: locating and poisoning around a persistent reverse-path failure restores most of the outage's user traffic that waiting for the provider would forfeit")
	return r
}
