// Package splice answers "does a policy-compliant path exist?" questions
// without running the protocol: valley-free reachability over the AS graph
// with an avoided-AS set (the large-scale poisoning simulation of §5.1, and
// remedy's poison/don't-poison predicate), and the §2.2 traceroute-splicing
// analysis with its three-tuple export-policy check.
package splice

import (
	"slices"

	"lifeguard/internal/probe"
	"lifeguard/internal/topo"
)

// Reach computes the set of ASes that have at least one valley-free
// (Gao–Rexford exportable) route to origin, never traversing an AS in
// avoid. The origin itself is included unless avoided.
//
// The computation mirrors route export: customer-learned (or originated)
// routes propagate to providers, peers, and customers; peer- or
// provider-learned routes propagate only to customers. That yields the
// classic three phases: uphill from the origin through providers, one
// optional peer hop, then downhill through customers.
func Reach(top *topo.Topology, origin topo.ASN, avoid map[topo.ASN]bool) map[topo.ASN]bool {
	reached := make(map[topo.ASN]bool)
	if avoid[origin] {
		return reached
	}

	// Phase 1 — uphill: ASes with a customer route to origin.
	up := []topo.ASN{origin}
	reached[origin] = true
	for len(up) > 0 {
		cur := up[0]
		up = up[1:]
		for _, p := range top.Providers(cur) {
			if !reached[p] && !avoid[p] {
				reached[p] = true
				up = append(up, p)
			}
		}
	}

	// Phase 2 — one peer edge off any uphill AS. The result is a set, so
	// expansion order cannot change it, but keep the walk in ASN order
	// anyway: determinism by construction beats determinism by argument.
	var frontier []topo.ASN
	for asn := range reached {
		frontier = append(frontier, asn)
	}
	slices.Sort(frontier)
	var down []topo.ASN
	down = append(down, frontier...)
	for _, u := range frontier {
		for _, p := range top.Peers(u) {
			if !reached[p] && !avoid[p] {
				reached[p] = true
				down = append(down, p)
			}
		}
	}

	// Phase 3 — downhill to customers from everything reached so far.
	for len(down) > 0 {
		cur := down[0]
		down = down[1:]
		for _, c := range top.Customers(cur) {
			if !reached[c] && !avoid[c] {
				reached[c] = true
				down = append(down, c)
			}
		}
	}
	return reached
}

// CanReach reports whether src has a valley-free route to origin avoiding
// the given ASes.
func CanReach(top *topo.Topology, src, origin topo.ASN, avoid map[topo.ASN]bool) bool {
	if avoid[src] {
		return false
	}
	return Reach(top, origin, avoid)[src]
}

// Avoid1 is a convenience constructor for a single-AS avoid set.
func Avoid1(asn topo.ASN) map[topo.ASN]bool { return map[topo.ASN]bool{asn: true} }

// Observed indexes the AS-level subpaths seen in a body of traceroutes. The
// §2.2 methodology accepts a spliced path only if the three-AS subpath
// centered at the splice point was observed in some real traceroute — an
// empirical stand-in for export-policy compliance.
type Observed struct {
	triples map[[3]topo.ASN]bool
	pairs   map[[2]topo.ASN]bool
}

// NewObserved returns an empty index.
func NewObserved() *Observed {
	return &Observed{
		triples: make(map[[3]topo.ASN]bool),
		pairs:   make(map[[2]topo.ASN]bool),
	}
}

// AddASPath records every consecutive pair and triple of the path.
func (o *Observed) AddASPath(p topo.Path) {
	for i := 0; i+1 < len(p); i++ {
		o.pairs[[2]topo.ASN{p[i], p[i+1]}] = true
	}
	for i := 0; i+2 < len(p); i++ {
		o.triples[[3]topo.ASN{p[i], p[i+1], p[i+2]}] = true
	}
}

// HasTriple reports whether a-b-c was observed.
func (o *Observed) HasTriple(a, b, c topo.ASN) bool {
	return o.triples[[3]topo.ASN{a, b, c}]
}

// HasPair reports whether a-b was observed.
func (o *Observed) HasPair(a, b topo.ASN) bool {
	return o.pairs[[2]topo.ASN{a, b}]
}

// HopPath is a router-level measured path (responsive hops only).
type HopPath []probe.Hop

// asAt returns the AS of the hop at index i.
func (p HopPath) asAt(i int) topo.ASN { return p[i].AS }

// ASPath collapses the hop path to distinct ASes.
func (p HopPath) ASPath() topo.Path {
	var out topo.Path
	for _, h := range p {
		if len(out) == 0 || out[len(out)-1] != h.AS {
			out = append(out, h.AS)
		}
	}
	return out
}

// Splice searches for a working alternate path per §2.2: a path from the
// source (one of fromSrc, measured src→anywhere) that intersects — at a
// shared router — a path that reaches the destination (one of toDst), such
// that the spliced result avoids avoidAS and the AS subpath around the
// splice point passes the observed-subpath test. It returns the first
// (deterministically ordered) valid splice.
func Splice(fromSrc, toDst []HopPath, avoidAS topo.ASN, obs *Observed) (HopPath, bool) {
	// Index routers on destination paths: router -> (path, position).
	type pos struct{ path, idx int }
	index := make(map[topo.RouterID][]pos)
	for pi, p := range toDst {
		for i, h := range p {
			if h.Star {
				continue
			}
			index[h.Router] = append(index[h.Router], pos{path: pi, idx: i})
		}
	}
	for _, sp := range fromSrc {
		for i, h := range sp {
			if h.Star {
				continue
			}
			for _, loc := range index[h.Router] {
				dp := toDst[loc.path]
				cand := make(HopPath, 0, i+1+len(dp)-loc.idx-1)
				cand = append(cand, sp[:i+1]...)
				cand = append(cand, dp[loc.idx+1:]...)
				if !validSplice(cand, sp, i, dp, loc.idx, avoidAS, obs) {
					continue
				}
				return cand, true
			}
		}
	}
	return nil, false
}

func validSplice(cand, srcPart HopPath, si int, dstPart HopPath, di int, avoidAS topo.ASN, obs *Observed) bool {
	for _, h := range cand {
		if !h.Star && h.AS == avoidAS {
			return false
		}
	}
	// Export-policy check: the (up to) three distinct ASes centered at the
	// splice point must have been observed in sequence somewhere.
	at := srcPart.asAt(si)
	var before, after topo.ASN
	hasBefore, hasAfter := false, false
	for j := si - 1; j >= 0; j-- {
		if !srcPart[j].Star && srcPart.asAt(j) != at {
			before, hasBefore = srcPart.asAt(j), true
			break
		}
	}
	for j := di + 1; j < len(dstPart); j++ {
		if !dstPart[j].Star && dstPart.asAt(j) != at {
			after, hasAfter = dstPart.asAt(j), true
			break
		}
	}
	switch {
	case hasBefore && hasAfter:
		return obs.HasTriple(before, at, after)
	case hasBefore:
		return obs.HasPair(before, at)
	case hasAfter:
		return obs.HasPair(at, after)
	default:
		return true // whole path within one AS
	}
}
