package splice

import (
	"math/rand"
	"net/netip"
	"testing"

	"lifeguard/internal/bgp"
	"lifeguard/internal/probe"
	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
)

// randTopo builds a random AS-level internet: a provider tree rooted at AS 1
// plus random peering edges.
func randTopo(t *testing.T, rng *rand.Rand, n int) *topo.Topology {
	t.Helper()
	b := topo.NewBuilder()
	for i := 1; i <= n; i++ {
		b.AddAS(topo.ASN(i), "")
	}
	for i := 2; i <= n; i++ {
		b.Provider(topo.ASN(i), topo.ASN(1+rng.Intn(i-1)))
	}
	for k := 0; k < n/3; k++ {
		a := topo.ASN(1 + rng.Intn(n))
		c := topo.ASN(1 + rng.Intn(n))
		if a == c {
			continue
		}
		func() {
			defer func() { recover() }() // skip if already related
			b.Peer(a, c)
		}()
	}
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return top
}

// TestReachMatchesBGPPropagation cross-validates the static valley-free
// reachability against actual protocol propagation: an AS ends up with a
// route iff Reach says a policy-compliant path exists. This is the exact
// analogue of the paper's §5.1 simulation-vs-testbed validation.
func TestReachMatchesBGPPropagation(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 12; trial++ {
		n := 10 + rng.Intn(30)
		top := randTopo(t, rng, n)
		origin := topo.ASN(1 + rng.Intn(n))
		prefix := topo.ProductionPrefix(origin)

		clk := simclock.New()
		eng := bgp.New(top, clk, bgp.Config{Seed: int64(trial)})
		eng.Originate(origin, prefix)
		if !eng.Converge(10_000_000) {
			t.Fatal("no convergence")
		}
		want := Reach(top, origin, nil)
		for _, asn := range top.ASNs() {
			_, has := eng.BestRoute(asn, prefix)
			if has != want[asn] {
				t.Fatalf("trial %d AS %d: engine=%v reach=%v (origin %d)",
					trial, asn, has, want[asn], origin)
			}
		}
	}
}

// TestReachAvoidMatchesPoisonedBGP extends the cross-validation to
// poisoning: after poisoning X, exactly the ASes with a valley-free path
// avoiding X retain a route.
func TestReachAvoidMatchesPoisonedBGP(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		n := 10 + rng.Intn(30)
		top := randTopo(t, rng, n)
		origin := topo.ASN(1 + rng.Intn(n))
		var x topo.ASN
		for {
			x = topo.ASN(1 + rng.Intn(n))
			if x != origin {
				break
			}
		}
		prefix := topo.ProductionPrefix(origin)
		clk := simclock.New()
		eng := bgp.New(top, clk, bgp.Config{Seed: int64(trial)})
		eng.Announce(origin, prefix, bgp.OriginConfig{Pattern: topo.Path{origin, x, origin}})
		if !eng.Converge(10_000_000) {
			t.Fatal("no convergence")
		}
		want := Reach(top, origin, Avoid1(x))
		for _, asn := range top.ASNs() {
			_, has := eng.BestRoute(asn, prefix)
			if asn == x {
				if has {
					t.Fatalf("trial %d: poisoned AS %d kept a route", trial, x)
				}
				continue
			}
			if has != want[asn] {
				t.Fatalf("trial %d AS %d: engine=%v reach=%v (origin %d, poison %d)",
					trial, asn, has, want[asn], origin, x)
			}
		}
	}
}

func TestReachSimpleShapes(t *testing.T) {
	// chain: 3 -> 2 -> 1 (customers of), origin 3 (a stub).
	b := topo.NewBuilder()
	b.AddAS(1, "")
	b.AddAS(2, "")
	b.AddAS(3, "")
	b.Provider(2, 1)
	b.Provider(3, 2)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := Reach(top, 3, nil)
	if len(r) != 3 {
		t.Fatalf("reach = %v", r)
	}
	// Avoiding the only provider chain cuts everything upstream.
	r = Reach(top, 3, Avoid1(2))
	if len(r) != 1 || !r[3] {
		t.Fatalf("reach avoiding 2 = %v", r)
	}
	if CanReach(top, 1, 3, Avoid1(2)) {
		t.Fatal("1 should not reach 3 avoiding 2")
	}
	if !CanReach(top, 1, 3, nil) {
		t.Fatal("1 should reach 3")
	}
	// Avoiding the origin yields the empty set.
	if got := Reach(top, 3, Avoid1(3)); len(got) != 0 {
		t.Fatalf("reach avoiding origin = %v", got)
	}
	if CanReach(top, 3, 3, Avoid1(3)) {
		t.Fatal("avoided source cannot reach")
	}
}

func TestReachValleyRule(t *testing.T) {
	// 1 and 2 are both customers of P(3); 1 and 2 peer with nobody;
	// 4 peers with 3. Origin 1: 4 reaches via peer edge then downhill is
	// not needed; but a customer of 4 (5) also reaches (downhill after
	// peer). A second peer hop (6 peering 4) must NOT reach.
	b := topo.NewBuilder()
	for i := 1; i <= 6; i++ {
		b.AddAS(topo.ASN(i), "")
	}
	b.Provider(1, 3)
	b.Provider(2, 3)
	b.Peer(3, 4)
	b.Provider(5, 4)
	b.Peer(4, 6)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := Reach(top, 1, nil)
	for _, want := range []topo.ASN{1, 2, 3, 4, 5} {
		if !r[want] {
			t.Fatalf("AS %d should reach: %v", want, r)
		}
	}
	if r[6] {
		t.Fatal("AS 6 would need two peer edges (a valley): must not reach")
	}
}

// --- Splice tests -----------------------------------------------------

func hop(router int, as topo.ASN) probe.Hop {
	return probe.Hop{Router: topo.RouterID(router), AS: as, Addr: netip.AddrFrom4([4]byte{9, byte(as), 0, byte(router)})}
}

func TestSpliceBasic(t *testing.T) {
	src := HopPath{hop(1, 100), hop(2, 200)}
	dst := HopPath{hop(9, 150), hop(2, 200), hop(3, 300)}
	obs := NewObserved()
	obs.AddASPath(topo.Path{100, 200, 300})
	got, ok := Splice([]HopPath{src}, []HopPath{dst}, 0, obs)
	if !ok {
		t.Fatal("splice not found")
	}
	if !got.ASPath().Equal(topo.Path{100, 200, 300}) {
		t.Fatalf("spliced AS path = %v", got.ASPath())
	}
	if len(got) != 3 || got[1].Router != 2 {
		t.Fatalf("spliced hops = %+v", got)
	}
}

func TestSpliceRejectsUnobservedTriple(t *testing.T) {
	src := HopPath{hop(1, 100), hop(2, 200)}
	dst := HopPath{hop(2, 200), hop(3, 300)}
	obs := NewObserved()
	obs.AddASPath(topo.Path{100, 200, 999}) // wrong continuation
	if _, ok := Splice([]HopPath{src}, []HopPath{dst}, 0, obs); ok {
		t.Fatal("splice should fail the three-tuple test")
	}
	obs.AddASPath(topo.Path{100, 200, 300})
	if _, ok := Splice([]HopPath{src}, []HopPath{dst}, 0, obs); !ok {
		t.Fatal("splice should pass after observing the triple")
	}
}

func TestSpliceAvoidsAS(t *testing.T) {
	src := HopPath{hop(1, 100), hop(2, 200)}
	dst := HopPath{hop(2, 200), hop(3, 300)}
	obs := NewObserved()
	obs.AddASPath(topo.Path{100, 200, 300})
	if _, ok := Splice([]HopPath{src}, []HopPath{dst}, 300, obs); ok {
		t.Fatal("splice must avoid AS 300")
	}
	if _, ok := Splice([]HopPath{src}, []HopPath{dst}, 200, obs); ok {
		t.Fatal("splice must avoid AS 200 (on-path)")
	}
}

func TestSpliceNoSharedRouter(t *testing.T) {
	src := HopPath{hop(1, 100), hop(2, 200)}
	dst := HopPath{hop(7, 200), hop(3, 300)} // same AS, different router
	obs := NewObserved()
	obs.AddASPath(topo.Path{100, 200, 300})
	if _, ok := Splice([]HopPath{src}, []HopPath{dst}, 0, obs); ok {
		t.Fatal("paths intersect at AS but not router: §2.2 requires shared IP")
	}
}

func TestSpliceAtSourceUsesPairCheck(t *testing.T) {
	// Splice at the very first hop: no "before" AS exists.
	src := HopPath{hop(2, 200)}
	dst := HopPath{hop(2, 200), hop(3, 300)}
	obs := NewObserved()
	if _, ok := Splice([]HopPath{src}, []HopPath{dst}, 0, obs); ok {
		t.Fatal("pair not observed yet")
	}
	obs.AddASPath(topo.Path{200, 300})
	if _, ok := Splice([]HopPath{src}, []HopPath{dst}, 0, obs); !ok {
		t.Fatal("pair observed; splice should succeed")
	}
}

func TestSpliceSkipsStars(t *testing.T) {
	star := probe.Hop{Star: true}
	src := HopPath{hop(1, 100), star, hop(2, 200)}
	dst := HopPath{hop(2, 200), hop(3, 300)}
	obs := NewObserved()
	obs.AddASPath(topo.Path{100, 200, 300})
	if _, ok := Splice([]HopPath{src}, []HopPath{dst}, 0, obs); !ok {
		t.Fatal("stars should not block splicing")
	}
}

func TestObservedIndexing(t *testing.T) {
	obs := NewObserved()
	obs.AddASPath(topo.Path{1, 2, 3, 4})
	if !obs.HasTriple(1, 2, 3) || !obs.HasTriple(2, 3, 4) {
		t.Fatal("triples missing")
	}
	if obs.HasTriple(1, 3, 4) {
		t.Fatal("false triple")
	}
	if !obs.HasPair(3, 4) || obs.HasPair(4, 3) {
		t.Fatal("pairs are directional")
	}
}
