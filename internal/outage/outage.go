// Package outage generates synthetic outage workloads calibrated to the
// paper's measurement studies: the EC2 duration distribution (§2.1 / Fig. 1
// — over 90% of partial outages last under ten minutes, yet the long tail
// carries ~84% of total unavailability), the failure-location split (§3.1.2
// cites 38% of failures on inter-AS links), and direction mix (many
// failures are unidirectional, §4.1). It also provides the residual-duration
// analysis behind Fig. 5 and the poisonable-outage-rate model behind
// Table 2.
package outage

import (
	"math"
	"math/rand"
	"time"

	"lifeguard/internal/metrics"
)

// Kind locates a failure.
type Kind int

// Failure locations.
const (
	ASInternal Kind = iota // fault within a single AS
	ASLink                 // fault on an inter-AS link
)

// Direction is which direction(s) of traffic a failure drops.
type Direction int

// Failure directions.
const (
	Forward Direction = iota
	Reverse
	Bidirectional
)

// Event is one synthetic outage.
type Event struct {
	Start     time.Duration
	Duration  time.Duration
	Kind      Kind
	Direction Direction
	// Partial marks outages where some vantage points retain
	// connectivity (79% in the EC2 study).
	Partial bool
}

// End returns Start + Duration.
func (e *Event) End() time.Duration { return e.Start + e.Duration }

// Config parameterizes generation. Zero values select the calibrated
// defaults documented on each field.
type Config struct {
	Seed int64
	// N is the number of events to generate. Default 10000 (≈ the 10308
	// partial outages of the EC2 study).
	N int
	// MinDuration is the observability floor. Default 90s (the EC2
	// methodology's minimum).
	MinDuration time.Duration
	// ShortMean is the mean extra duration of short outages beyond
	// MinDuration (exponential). Default 60s, putting the median outage
	// near the 90s floor as the EC2 study found.
	ShortMean time.Duration
	// TailFraction is the fraction of outages drawn from the heavy tail.
	// Default 0.09.
	TailFraction float64
	// TailXm and TailAlpha parameterize the (truncated) Pareto tail.
	// Defaults: 6min and 0.75 — calibrated so that >10min outages carry
	// ~80% of total downtime and, of outages that survive 5 minutes,
	// roughly half persist at least 5 more (the paper reports 84% and
	// 51%).
	TailXm    time.Duration
	TailAlpha float64
	// MaxDuration truncates the tail. Default 72h.
	MaxDuration time.Duration
	// MeanInterarrival spaces event start times (exponential). Default
	// 5 minutes.
	MeanInterarrival time.Duration
	// LinkFraction is the share of failures on inter-AS links. Default
	// 0.38 (§3.1.2).
	LinkFraction float64
	// ForwardFraction / ReverseFraction split directionality; the
	// remainder is bidirectional. Defaults 0.3 / 0.4.
	ForwardFraction, ReverseFraction float64
	// PartialFraction is the share of partial outages. Default 0.79.
	PartialFraction float64
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 10000
	}
	if c.MinDuration == 0 {
		c.MinDuration = 90 * time.Second
	}
	if c.ShortMean == 0 {
		c.ShortMean = 60 * time.Second
	}
	if c.TailFraction == 0 {
		c.TailFraction = 0.09
	}
	if c.TailXm == 0 {
		c.TailXm = 6 * time.Minute
	}
	if c.TailAlpha == 0 {
		c.TailAlpha = 0.75
	}
	if c.MaxDuration == 0 {
		c.MaxDuration = 72 * time.Hour
	}
	if c.MeanInterarrival == 0 {
		c.MeanInterarrival = 5 * time.Minute
	}
	if c.LinkFraction == 0 {
		c.LinkFraction = 0.38
	}
	if c.ForwardFraction == 0 {
		c.ForwardFraction = 0.30
	}
	if c.ReverseFraction == 0 {
		c.ReverseFraction = 0.40
	}
	if c.PartialFraction == 0 {
		c.PartialFraction = 0.79
	}
	return c
}

// Generate produces a deterministic event sequence for the config.
func Generate(cfg Config) []Event {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	events := make([]Event, 0, cfg.N)
	var clock time.Duration
	for i := 0; i < cfg.N; i++ {
		clock += time.Duration(rng.ExpFloat64() * float64(cfg.MeanInterarrival))
		ev := Event{
			Start:    clock,
			Duration: drawDuration(rng, cfg),
			Partial:  rng.Float64() < cfg.PartialFraction,
		}
		if rng.Float64() < cfg.LinkFraction {
			ev.Kind = ASLink
		}
		switch u := rng.Float64(); {
		case u < cfg.ForwardFraction:
			ev.Direction = Forward
		case u < cfg.ForwardFraction+cfg.ReverseFraction:
			ev.Direction = Reverse
		default:
			ev.Direction = Bidirectional
		}
		events = append(events, ev)
	}
	return events
}

func drawDuration(rng *rand.Rand, cfg Config) time.Duration {
	var d time.Duration
	if rng.Float64() < cfg.TailFraction {
		// Pareto: xm * U^(-1/alpha).
		u := rng.Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		d = time.Duration(float64(cfg.TailXm) * math.Pow(u, -1/cfg.TailAlpha))
	} else {
		d = cfg.MinDuration + time.Duration(rng.ExpFloat64()*float64(cfg.ShortMean))
	}
	if d < cfg.MinDuration {
		d = cfg.MinDuration
	}
	if d > cfg.MaxDuration {
		d = cfg.MaxDuration
	}
	return d
}

// Durations extracts the duration sample from events.
func Durations(events []Event) *metrics.Sample {
	var s metrics.Sample
	for i := range events {
		s.AddDuration(events[i].Duration)
	}
	return &s
}

// ResidualPoint is one x-position of the Fig. 5 residual-duration analysis.
type ResidualPoint struct {
	Elapsed              time.Duration
	Mean, Median, P25    time.Duration
	Surviving            int     // outages still ongoing at Elapsed
	FracPersist5MoreMins float64 // of those, fraction lasting ≥5 more min
}

// Residuals computes, for each elapsed time, the distribution of remaining
// outage duration among outages that survived that long — Fig. 5 and the
// §4.2 "should we poison yet" analysis.
func Residuals(events []Event, elapsed []time.Duration) []ResidualPoint {
	out := make([]ResidualPoint, 0, len(elapsed))
	for _, x := range elapsed {
		var s metrics.Sample
		persist := 0
		for i := range events {
			if events[i].Duration > x {
				rem := events[i].Duration - x
				s.AddDuration(rem)
				if rem >= 5*time.Minute {
					persist++
				}
			}
		}
		pt := ResidualPoint{Elapsed: x, Surviving: s.N()}
		if s.N() > 0 {
			pt.Mean = time.Duration(s.Mean() * float64(time.Second))
			pt.Median = time.Duration(s.Median() * float64(time.Second))
			pt.P25 = time.Duration(s.Percentile(25) * float64(time.Second))
			pt.FracPersist5MoreMins = float64(persist) / float64(s.N())
		}
		out = append(out, pt)
	}
	return out
}

// AvoidableUnavailability estimates the fraction of total downtime that a
// repair system eliminates if it repairs any outage lasting beyond
// (detect + converge) at that deadline — the "poisoning could avoid up to
// 80% of unavailability" estimate of §4.2.
func AvoidableUnavailability(events []Event, repairAfter time.Duration) float64 {
	var total, saved float64
	for i := range events {
		d := events[i].Duration.Seconds()
		total += d
		if events[i].Duration > repairAfter {
			saved += d - repairAfter.Seconds()
		}
	}
	if total == 0 {
		return 0
	}
	return saved / total
}

// PoisonableRate returns P(d): the number of events per day lasting at
// least d that are candidates for poisoning (partial outages only, complete
// ones excluded per §5.4), given the observation window implied by the
// event start times.
func PoisonableRate(events []Event, d time.Duration) float64 {
	if len(events) == 0 {
		return 0
	}
	span := events[len(events)-1].Start + events[len(events)-1].Duration
	days := span.Hours() / 24
	if days <= 0 {
		return 0
	}
	n := 0
	for i := range events {
		if events[i].Partial && events[i].Duration >= d {
			n++
		}
	}
	return float64(n) / days
}
