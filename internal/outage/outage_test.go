package outage

import (
	"testing"
	"time"
)

func TestFig1Calibration(t *testing.T) {
	// The generated workload must reproduce the paper's headline marginals:
	// >90% of outages last at most 10 minutes, but outages longer than 10
	// minutes carry ~84% of total unavailability.
	events := Generate(Config{Seed: 1, N: 50000})
	s := Durations(events)
	fracShort := s.FractionAtMost((10 * time.Minute).Seconds())
	if fracShort < 0.88 || fracShort > 0.95 {
		t.Fatalf("fraction <=10min = %.3f, want ~0.90", fracShort)
	}
	shortWeight := s.WeightedCDF([]float64{(10 * time.Minute).Seconds()})[0].Frac
	longShare := 1 - shortWeight
	if longShare < 0.72 || longShare > 0.92 {
		t.Fatalf("unavailability share of >10min outages = %.3f, want ~0.84", longShare)
	}
}

func TestMinimumDurationFloor(t *testing.T) {
	events := Generate(Config{Seed: 2, N: 5000})
	for _, e := range events {
		if e.Duration < 90*time.Second {
			t.Fatalf("duration %v below the 90s observability floor", e.Duration)
		}
		if e.Duration > 72*time.Hour {
			t.Fatalf("duration %v above the truncation cap", e.Duration)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{Seed: 7, N: 1000})
	b := Generate(Config{Seed: 7, N: 1000})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := Generate(Config{Seed: 8, N: 1000})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestMixFractions(t *testing.T) {
	events := Generate(Config{Seed: 3, N: 20000})
	var link, fwd, rev, part int
	for _, e := range events {
		if e.Kind == ASLink {
			link++
		}
		switch e.Direction {
		case Forward:
			fwd++
		case Reverse:
			rev++
		}
		if e.Partial {
			part++
		}
	}
	n := float64(len(events))
	if f := float64(link) / n; f < 0.35 || f > 0.41 {
		t.Fatalf("link fraction = %.3f, want ~0.38", f)
	}
	if f := float64(fwd) / n; f < 0.27 || f > 0.33 {
		t.Fatalf("forward fraction = %.3f, want ~0.30", f)
	}
	if f := float64(rev) / n; f < 0.37 || f > 0.43 {
		t.Fatalf("reverse fraction = %.3f, want ~0.40", f)
	}
	if f := float64(part) / n; f < 0.76 || f > 0.82 {
		t.Fatalf("partial fraction = %.3f, want ~0.79", f)
	}
}

func TestResidualsFig5Shape(t *testing.T) {
	events := Generate(Config{Seed: 4, N: 50000})
	pts := Residuals(events, []time.Duration{0, 5 * time.Minute, 10 * time.Minute})
	if pts[0].Surviving != len(events) {
		t.Fatalf("at 0 elapsed all outages survive: %d", pts[0].Surviving)
	}
	// The paper: of problems persisting 5 minutes, 51% last >=5 more; at
	// 10 minutes, 68% persist >=5 more. Our calibrated tail must show the
	// same "the longer it lasted, the longer it will last" growth.
	p5, p10 := pts[1].FracPersist5MoreMins, pts[2].FracPersist5MoreMins
	if p5 < 0.35 || p5 > 0.70 {
		t.Fatalf("P(>=5 more min | lasted 5) = %.2f, want ~0.5", p5)
	}
	if p10 <= p5 {
		t.Fatalf("residual persistence must grow: %.2f at 10min vs %.2f at 5min", p10, p5)
	}
	if pts[2].Median < pts[1].Median {
		t.Fatalf("median residual should grow with elapsed: %v < %v", pts[2].Median, pts[1].Median)
	}
	// Mean residual dominated by the tail: far above the median.
	if pts[1].Mean < pts[1].Median {
		t.Fatal("heavy tail should pull mean above median")
	}
}

func TestAvoidableUnavailability(t *testing.T) {
	events := Generate(Config{Seed: 5, N: 50000})
	// §4.2: with ~5min to detect/locate + ~2min to converge, poisoning
	// could avoid up to ~80% of total unavailability.
	frac := AvoidableUnavailability(events, 7*time.Minute)
	if frac < 0.65 || frac > 0.92 {
		t.Fatalf("avoidable fraction = %.3f, want ~0.8", frac)
	}
	// A slower repair saves less.
	slower := AvoidableUnavailability(events, 30*time.Minute)
	if slower >= frac {
		t.Fatalf("slower repair should save less: %.3f vs %.3f", slower, frac)
	}
	if AvoidableUnavailability(nil, time.Minute) != 0 {
		t.Fatal("empty events should yield 0")
	}
}

func TestPoisonableRateMonotone(t *testing.T) {
	events := Generate(Config{Seed: 6, N: 20000})
	r5 := PoisonableRate(events, 5*time.Minute)
	r15 := PoisonableRate(events, 15*time.Minute)
	r60 := PoisonableRate(events, time.Hour)
	if !(r5 > r15 && r15 > r60) {
		t.Fatalf("rates must decrease with d: %v %v %v", r5, r15, r60)
	}
	if r60 <= 0 {
		t.Fatal("hour-long outages must exist in the workload")
	}
	if PoisonableRate(nil, time.Minute) != 0 {
		t.Fatal("empty events should yield 0")
	}
}

func TestEventEnd(t *testing.T) {
	e := Event{Start: time.Minute, Duration: 2 * time.Minute}
	if e.End() != 3*time.Minute {
		t.Fatalf("End = %v", e.End())
	}
}
