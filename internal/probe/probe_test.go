package probe

import (
	"testing"
	"time"

	"lifeguard/internal/bgp"
	"lifeguard/internal/dataplane"
	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
)

// fig4Net builds the shape of the paper's Fig. 4 example:
//
//	VP1(AS1) and VP5(AS5) are customers of transit AS2; AS3 is AS2's
//	customer-side transit toward the destination AS4.
//
// A reverse failure is modelled as AS3 dropping traffic destined to AS1
// (Rostelecom losing its route back to GMU).
type fig4 struct {
	top *topo.Topology
	eng *bgp.Engine
	pl  *dataplane.Plane
	clk *simclock.Scheduler
	pr  *Prober
	vp1 topo.RouterID // GMU-like vantage point
	vp5 topo.RouterID // second vantage point with working paths
	dst topo.RouterID // target router in AS4
}

func buildFig4(t *testing.T, cfg Config) *fig4 {
	t.Helper()
	b := topo.NewBuilder()
	for asn := topo.ASN(1); asn <= 5; asn++ {
		b.AddAS(asn, "")
		b.AddRouter(asn, "")
	}
	b.Provider(1, 2)
	b.Provider(5, 2)
	b.Provider(3, 2)
	b.Provider(4, 3)
	b.ConnectAS(1, 2)
	b.ConnectAS(5, 2)
	b.ConnectAS(3, 2)
	b.ConnectAS(4, 3)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	clk := simclock.New()
	eng := bgp.New(top, clk, bgp.Config{Seed: 9})
	for asn := topo.ASN(1); asn <= 5; asn++ {
		eng.Originate(asn, topo.Block(asn))
	}
	if !eng.Converge(1_000_000) {
		t.Fatal("no convergence")
	}
	pl := dataplane.New(top, eng)
	return &fig4{
		top: top, eng: eng, pl: pl, clk: clk,
		pr:  New(top, pl, clk, cfg),
		vp1: top.AS(1).Routers[0],
		vp5: top.AS(5).Routers[0],
		dst: top.AS(4).Routers[0],
	}
}

func (f *fig4) injectReverseFailure() dataplane.FailureID {
	// AS3 silently drops everything destined to AS1's block.
	return f.pl.AddFailure(dataplane.BlackholeASTowards(3, topo.Block(1)))
}

func TestPingRoundTrip(t *testing.T) {
	f := buildFig4(t, Config{})
	rep := f.pr.Ping(f.vp1, f.top.Router(f.dst).Addr)
	if !rep.OK || !rep.ForwardOK || !rep.Responded || !rep.ReverseOK {
		t.Fatalf("ping report = %+v", rep)
	}
	if got := rep.Forward.ASPath(); !got.Equal(topo.Path{1, 2, 3, 4}) {
		t.Fatalf("forward AS path = %v", got)
	}
}

func TestPingDetectsReverseFailure(t *testing.T) {
	f := buildFig4(t, Config{})
	f.injectReverseFailure()
	rep := f.pr.Ping(f.vp1, f.top.Router(f.dst).Addr)
	if rep.OK {
		t.Fatal("ping should fail")
	}
	if !rep.ForwardOK || !rep.Responded || rep.ReverseOK {
		t.Fatalf("want forward-only success, got %+v", rep)
	}
}

func TestPingUnresponsiveTarget(t *testing.T) {
	f := buildFig4(t, Config{})
	f.top.Router(f.dst).Responsive = false
	rep := f.pr.Ping(f.vp1, f.top.Router(f.dst).Addr)
	if rep.OK || rep.Responded || !rep.ForwardOK {
		t.Fatalf("report = %+v", rep)
	}
}

func TestPingPrefixHostAlwaysResponds(t *testing.T) {
	f := buildFig4(t, Config{})
	f.eng.Originate(4, topo.ProductionPrefix(4))
	f.eng.Converge(1_000_000)
	rep := f.pr.Ping(f.vp1, topo.ProductionAddr(4))
	if !rep.OK {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRateLimiting(t *testing.T) {
	f := buildFig4(t, Config{RateWindow: time.Minute})
	f.top.Router(f.dst).RateLimitPerRound = 2
	addr := f.top.Router(f.dst).Addr
	for i := 0; i < 2; i++ {
		if rep := f.pr.Ping(f.vp1, addr); !rep.OK {
			t.Fatalf("ping %d should succeed", i)
		}
	}
	if rep := f.pr.Ping(f.vp1, addr); rep.OK || rep.Responded {
		t.Fatalf("third ping should be rate-limited: %+v", rep)
	}
	// A new window restores the budget.
	f.clk.RunFor(2 * time.Minute)
	if rep := f.pr.Ping(f.vp1, addr); !rep.OK {
		t.Fatalf("ping after window should succeed: %+v", rep)
	}
}

func TestTracerouteFullPath(t *testing.T) {
	f := buildFig4(t, Config{})
	rep := f.pr.Traceroute(f.vp1, f.top.Router(f.dst).Addr)
	if !rep.ReachedDst {
		t.Fatalf("traceroute did not reach dst: %+v", rep.Hops)
	}
	if got := rep.ASPath(); !got.Equal(topo.Path{1, 2, 3, 4}) {
		t.Fatalf("AS path = %v", got)
	}
	for _, h := range rep.Hops {
		if h.Star {
			t.Fatalf("unexpected star on healthy path: %+v", rep.Hops)
		}
	}
}

// TestTracerouteMisleadsOnReverseFailure reproduces the Fig. 4 deception:
// with a reverse failure in AS3, a plain traceroute truncates at AS2 and an
// operator would wrongly blame the AS2→AS3 boundary.
func TestTracerouteMisleadsOnReverseFailure(t *testing.T) {
	f := buildFig4(t, Config{})
	f.injectReverseFailure()
	rep := f.pr.Traceroute(f.vp1, f.top.Router(f.dst).Addr)
	if rep.ReachedDst {
		t.Fatal("traceroute should not complete")
	}
	last, ok := rep.LastResponsive()
	if !ok {
		t.Fatal("no responsive hops at all")
	}
	if last.AS != 2 {
		t.Fatalf("last responsive hop in AS%d, want AS2 (the misleading horizon)", last.AS)
	}
}

func TestSpoofedTracerouteMeasuresWorkingDirection(t *testing.T) {
	f := buildFig4(t, Config{})
	f.injectReverseFailure()
	// Spoofing as VP5 redirects replies around the failure, revealing
	// that the forward path is intact all the way to AS4.
	rep := f.pr.SpoofedTraceroute(f.vp1, f.top.Router(f.dst).Addr, f.vp5)
	if !rep.ReachedDst {
		t.Fatalf("spoofed traceroute should reach dst: %+v", rep.Hops)
	}
	if got := rep.ASPath(); !got.Equal(topo.Path{1, 2, 3, 4}) {
		t.Fatalf("AS path = %v", got)
	}
}

func TestSpoofedPingIsolatesDirection(t *testing.T) {
	f := buildFig4(t, Config{})
	f.injectReverseFailure()
	addr := f.top.Router(f.dst).Addr
	// Forward direction works: probes from vp1 spoofed as vp5 draw
	// replies at vp5.
	if rep := f.pr.SpoofedPing(f.vp1, addr, f.vp5); !rep.OK {
		t.Fatalf("spoofed ping via vp5 should succeed: %+v", rep)
	}
	// Reverse direction broken: probes from vp5 spoofed as vp1 never
	// arrive back at vp1.
	if rep := f.pr.SpoofedPing(f.vp5, addr, f.vp1); rep.OK {
		t.Fatal("reply to vp1 should be lost")
	}
}

func TestTracerouteIntoBlackhole(t *testing.T) {
	f := buildFig4(t, Config{})
	// Bidirectional blackhole of all transit in AS3.
	f.pl.AddFailure(dataplane.Rule{AtAS: 3, TransitOnly: true})
	rep := f.pr.Traceroute(f.vp1, f.top.Router(f.dst).Addr)
	if rep.ReachedDst {
		t.Fatal("should not reach dst")
	}
	last, ok := rep.LastResponsive()
	if !ok || last.AS != 2 {
		t.Fatalf("last responsive = %+v, want AS2", last)
	}
}

func TestTracerouteSkipsUnresponsiveMiddleHop(t *testing.T) {
	f := buildFig4(t, Config{})
	// Silence AS2's hub router; traceroute should star it and continue.
	f.top.Router(f.top.AS(2).Routers[0]).Responsive = false
	rep := f.pr.Traceroute(f.vp1, f.top.Router(f.dst).Addr)
	if !rep.ReachedDst {
		t.Fatalf("should reach dst despite silent hop: %+v", rep.Hops)
	}
	stars := 0
	for _, h := range rep.Hops {
		if h.Star {
			stars++
		}
	}
	if stars == 0 {
		t.Fatal("expected at least one star for the silent router")
	}
}

func TestReverseTraceroute(t *testing.T) {
	f := buildFig4(t, Config{})
	rep, ok := f.pr.ReverseTraceroute(f.dst, f.vp1)
	if !ok || !rep.ReachedDst {
		t.Fatalf("reverse traceroute failed: %v %v", rep, ok)
	}
	if got := rep.ASPath(); !got.Equal(topo.Path{4, 3, 2, 1}) {
		t.Fatalf("reverse AS path = %v", got)
	}
	// During the reverse failure it must fail — that's why isolation
	// falls back to the historical atlas.
	f.injectReverseFailure()
	if _, ok := f.pr.ReverseTraceroute(f.dst, f.vp1); ok {
		t.Fatal("reverse traceroute should fail during reverse failure")
	}
}

func TestReverseTracerouteUnresponsiveSource(t *testing.T) {
	f := buildFig4(t, Config{})
	f.top.Router(f.dst).Responsive = false
	if _, ok := f.pr.ReverseTraceroute(f.dst, f.vp1); ok {
		t.Fatal("should fail for unresponsive far end")
	}
}

func TestProbeAccounting(t *testing.T) {
	f := buildFig4(t, Config{OptionProbeCost: 10})
	f.pr.Ping(f.vp1, f.top.Router(f.dst).Addr)
	if f.pr.Sent != 1 { // one echo request; the reply is not ours
		t.Fatalf("ping cost = %d, want 1", f.pr.Sent)
	}
	f.pr.ResetSent()
	f.pr.ReverseTraceroute(f.dst, f.vp1)
	if f.pr.Sent != 10 {
		t.Fatalf("reverse traceroute cost = %d, want 10", f.pr.Sent)
	}
	if got := f.pr.ResetSent(); got != 10 {
		t.Fatalf("ResetSent = %d", got)
	}
	if f.pr.Sent != 0 {
		t.Fatal("Sent not reset")
	}
	f.pr.Traceroute(f.vp1, f.top.Router(f.dst).Addr)
	if f.pr.Sent < 4 { // one probe per TTL at minimum
		t.Fatalf("traceroute cost = %d, suspiciously low", f.pr.Sent)
	}
}
