package probe

import (
	"net/netip"
	"testing"

	"lifeguard/internal/dataplane"
	"lifeguard/internal/topo"
)

// failureTowards is shorthand for a dst-scoped AS blackhole.
func failureTowards(asn topo.ASN, p netip.Prefix) dataplane.Rule {
	return dataplane.BlackholeASTowards(asn, p)
}

func TestPingFromAddr(t *testing.T) {
	f := buildFig4(t, Config{})
	// Announce a production prefix at AS1 so replies to it can route.
	f.eng.Originate(1, topo.ProductionPrefix(1))
	f.eng.Converge(1_000_000)
	dst := f.top.Router(f.dst).Addr
	rep := f.pr.PingFromAddr(f.vp1, topo.ProductionAddr(1), dst)
	if !rep.OK {
		t.Fatalf("production-sourced ping failed: %+v", rep)
	}
	// The reply must have been addressed to the production prefix, not
	// the router: its walk terminates at AS1's hub (the prefix host).
	if rep.Reverse.LastAS != 1 {
		t.Fatalf("reply landed in AS%d", rep.Reverse.LastAS)
	}
}

func TestPingFromAddrReverseScopedFailure(t *testing.T) {
	f := buildFig4(t, Config{})
	f.eng.Originate(1, topo.ProductionPrefix(1))
	f.eng.Converge(1_000_000)
	// AS3 drops only traffic toward the production /24 — the poisoned
	// prefix scenario. Production-sourced pings fail; router-sourced
	// pings still work.
	f.pl.AddFailure(failureTowards(3, topo.ProductionPrefix(1)))
	dst := f.top.Router(f.dst).Addr
	if rep := f.pr.PingFromAddr(f.vp1, topo.ProductionAddr(1), dst); rep.OK {
		t.Fatal("production-sourced ping should fail")
	}
	if rep := f.pr.Ping(f.vp1, dst); !rep.OK {
		t.Fatal("router-sourced ping should still work")
	}
}

func TestPingFromAddrForwardLoss(t *testing.T) {
	f := buildFig4(t, Config{})
	f.eng.Originate(1, topo.ProductionPrefix(1))
	f.eng.Converge(1_000_000)
	f.pl.AddFailure(failureTowards(2, topo.Block(4)))
	rep := f.pr.PingFromAddr(f.vp1, topo.ProductionAddr(1), f.top.Router(f.dst).Addr)
	if rep.OK || rep.ForwardOK {
		t.Fatalf("forward direction should fail: %+v", rep)
	}
}

func TestPingFromAddrUnresponsiveTarget(t *testing.T) {
	f := buildFig4(t, Config{})
	f.eng.Originate(1, topo.ProductionPrefix(1))
	f.eng.Converge(1_000_000)
	f.top.Router(f.dst).Responsive = false
	rep := f.pr.PingFromAddr(f.vp1, topo.ProductionAddr(1), f.top.Router(f.dst).Addr)
	if rep.OK || rep.Responded || !rep.ForwardOK {
		t.Fatalf("report = %+v", rep)
	}
}

func TestCharge(t *testing.T) {
	f := buildFig4(t, Config{})
	f.pr.Charge(17)
	if f.pr.Sent != 17 {
		t.Fatalf("Sent = %d", f.pr.Sent)
	}
}

func TestLastResponsiveEmptyAndAllStars(t *testing.T) {
	var rep TracerouteReport
	if _, ok := rep.LastResponsive(); ok {
		t.Fatal("empty report should have no responsive hop")
	}
	rep.Hops = []Hop{{Star: true}, {Star: true}}
	if _, ok := rep.LastResponsive(); ok {
		t.Fatal("all-star report should have no responsive hop")
	}
	if p := rep.ASPath(); len(p) != 0 {
		t.Fatalf("ASPath of stars = %v", p)
	}
}
