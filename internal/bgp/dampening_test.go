package bgp

import (
	"testing"
	"time"

	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
)

// dampNet: 1 (origin) customer of 2, 2 customer of 3. Dampening enabled.
func dampNet(t *testing.T) (*Engine, *simclock.Scheduler) {
	t.Helper()
	b := topo.NewBuilder()
	for asn := topo.ASN(1); asn <= 3; asn++ {
		b.AddAS(asn, "")
	}
	b.Provider(1, 2)
	b.Provider(2, 3)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	clk := simclock.New()
	e := New(top, clk, Config{Seed: 5, Dampening: DampeningConfig{Enabled: true}})
	return e, clk
}

func flapOnce(e *Engine, p topo.Path) {
	prefix := topo.ProductionPrefix(1)
	e.Announce(1, prefix, OriginConfig{Pattern: p})
	e.Converge(5_000_000)
}

func TestRapidFlappingTriggersSuppression(t *testing.T) {
	e, clk := dampNet(t)
	prefix := topo.ProductionPrefix(1)
	base := topo.Path{1, 1, 1}
	poison := topo.Path{1, 9, 1} // poison some non-local AS
	flapOnce(e, base)
	// Flap every two minutes: penalties accumulate far faster than the
	// 15-minute half-life can shed them.
	for i := 0; i < 4; i++ {
		clk.RunFor(2 * time.Minute)
		if i%2 == 0 {
			flapOnce(e, poison)
		} else {
			flapOnce(e, base)
		}
	}
	if !e.Speaker(2).Suppressed(1, prefix) {
		t.Fatalf("AS2 should have suppressed the flapping prefix (penalty %.0f)",
			e.Speaker(2).Penalty(1, prefix))
	}
	// Suppression removes the route upstream too.
	if _, ok := e.BestRoute(3, prefix); ok {
		t.Fatal("AS3 should lose the route while AS2 suppresses it")
	}
}

func TestSuppressedRouteReusedAfterDecay(t *testing.T) {
	e, clk := dampNet(t)
	prefix := topo.ProductionPrefix(1)
	flapOnce(e, topo.Path{1, 1, 1})
	for i := 0; i < 4; i++ {
		clk.RunFor(time.Minute)
		flapOnce(e, topo.Path{1, topo.ASN(8 + i%2), 1})
	}
	if !e.Speaker(2).Suppressed(1, prefix) {
		t.Fatal("setup: not suppressed")
	}
	// Stop flapping; within a few half-lives the penalty decays below
	// the reuse threshold and the route returns everywhere.
	clk.RunFor(90 * time.Minute)
	e.Converge(5_000_000)
	if e.Speaker(2).Suppressed(1, prefix) {
		t.Fatalf("still suppressed after decay (penalty %.0f)", e.Speaker(2).Penalty(1, prefix))
	}
	if _, ok := e.BestRoute(3, prefix); !ok {
		t.Fatal("route did not return after reuse")
	}
}

// TestLifeguardPacingAvoidsDampening verifies the §5 operational rule: one
// poison/unpoison cycle per 90 minutes never accumulates enough penalty to
// be suppressed.
func TestLifeguardPacingAvoidsDampening(t *testing.T) {
	e, clk := dampNet(t)
	prefix := topo.ProductionPrefix(1)
	flapOnce(e, topo.Path{1, 1, 1})
	for cycle := 0; cycle < 4; cycle++ {
		clk.RunFor(90 * time.Minute)
		flapOnce(e, topo.Path{1, 9, 1}) // poison
		clk.RunFor(90 * time.Minute)
		flapOnce(e, topo.Path{1, 1, 1}) // unpoison
		if e.Speaker(2).Suppressed(1, prefix) {
			t.Fatalf("cycle %d: paced announcements got suppressed", cycle)
		}
	}
	if _, ok := e.BestRoute(3, prefix); !ok {
		t.Fatal("route lost despite pacing")
	}
}

func TestDampeningDisabledByDefault(t *testing.T) {
	b := topo.NewBuilder()
	b.AddAS(1, "")
	b.AddAS(2, "")
	b.Provider(1, 2)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	clk := simclock.New()
	e := New(top, clk, Config{Seed: 1})
	prefix := topo.ProductionPrefix(1)
	for i := 0; i < 10; i++ {
		e.Announce(1, prefix, OriginConfig{Pattern: topo.Path{1, topo.ASN(5 + i%3), 1}})
		e.Converge(5_000_000)
		clk.RunFor(time.Minute)
	}
	if e.Speaker(2).Suppressed(1, prefix) {
		t.Fatal("dampening should be off by default")
	}
	if _, ok := e.BestRoute(2, prefix); !ok {
		t.Fatal("route missing")
	}
}

// TestDuplicateReadvertisementNotPenalized is the regression test for the
// RFC 2439 §4.4.3 rule that only updates which *change* an existing route
// count as flaps. The pre-fix Speaker.receive noted a flap before the
// routesEqual dedup check, so a neighbor re-sending its current route (a
// common BGP occurrence after e.g. a session refresh) accrued penalty and
// could be suppressed without ever flapping. Updates are injected with
// receive directly because the sender-side flush dedup would otherwise
// filter the duplicates before they reach the receiver.
func TestDuplicateReadvertisementNotPenalized(t *testing.T) {
	e, _ := dampNet(t)
	prefix := topo.ProductionPrefix(1)
	s := e.Speaker(2)
	adv := func(p topo.Path) { s.receive(1, update{prefix: prefix, path: p}) }

	adv(topo.Path{1}) // first announcement ever: not a flap
	if got := s.Penalty(1, prefix); got != 0 {
		t.Fatalf("first announcement penalized: %v", got)
	}
	adv(topo.Path{1}) // identical re-advertisement: nothing changed
	if got := s.Penalty(1, prefix); got != 0 {
		t.Fatalf("duplicate re-advertisement penalized: %v", got)
	}
	adv(topo.Path{1, 9, 1}) // genuine path change: one flap
	p1 := s.Penalty(1, prefix)
	if p1 <= 0 {
		t.Fatal("genuine path change not penalized")
	}
	adv(topo.Path{1, 9, 1}) // duplicate of the changed route: no extra flap
	if got := s.Penalty(1, prefix); got != p1 {
		t.Fatalf("duplicate after change penalized: %v, want %v", got, p1)
	}
	s.receive(1, update{prefix: prefix}) // withdrawing a known route: one flap
	p2 := s.Penalty(1, prefix)
	if p2 <= p1 {
		t.Fatalf("withdrawal not penalized: %v, want > %v", p2, p1)
	}
	s.receive(1, update{prefix: prefix}) // withdrawing nothing: not a flap
	if got := s.Penalty(1, prefix); got != p2 {
		t.Fatalf("redundant withdrawal penalized: %v, want %v", got, p2)
	}
}

func TestPenaltyDecay(t *testing.T) {
	st := dampState{penalty: 2000, updatedAt: 0}
	half := 15 * time.Minute
	if got := st.decayedPenalty(15*time.Minute, half); got < 990 || got > 1010 {
		t.Fatalf("one half-life: %v", got)
	}
	if got := st.decayedPenalty(30*time.Minute, half); got < 495 || got > 505 {
		t.Fatalf("two half-lives: %v", got)
	}
	if got := st.decayedPenalty(0, half); got != 2000 {
		t.Fatalf("no time: %v", got)
	}
}
