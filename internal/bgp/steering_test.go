package bgp

import (
	"slices"
	"testing"

	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
)

// fig3Topo: O(1) -> D1(2), D2(3); D1 -> B1(5) -> A(4); D2 -> A; C2(6) and
// C3(7) are customers of A; C4(8) is a customer of B1; C5(9) buys from both
// D2 and B1 (so it compares the two sides by path length, like the
// networks the paper worries prepending would disturb).
func fig3Topo(t *testing.T) *topo.Topology {
	t.Helper()
	b := topo.NewBuilder()
	for asn := topo.ASN(1); asn <= 9; asn++ {
		b.AddAS(asn, "")
	}
	for _, r := range [][2]topo.ASN{
		{1, 2}, {1, 3}, {2, 5}, {5, 4}, {3, 4}, {6, 4}, {7, 4}, {8, 5},
		{9, 3}, {9, 5},
	} {
		b.Provider(r[0], r[1])
	}
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return top
}

// TestSelectivePoisoningVsPrepending verifies the §3.1.2 claim: prepending
// via one provider is a blunt instrument that moves every network using
// that side, while selective poisoning moves exactly the targeted AS.
func TestSelectivePoisoningVsPrepending(t *testing.T) {
	const (
		O  = topo.ASN(1)
		D1 = topo.ASN(2)
		D2 = topo.ASN(3)
		A  = topo.ASN(4)
		B1 = topo.ASN(5)
	)
	top := fig3Topo(t)
	prefix := topo.ProductionPrefix(O)

	snapshot := func(e *Engine) map[topo.ASN]topo.ASN {
		out := make(map[topo.ASN]topo.ASN)
		for _, asn := range top.ASNs() {
			if asn == O {
				continue
			}
			if r, ok := e.BestRoute(asn, prefix); ok {
				nh, _ := r.NextHop()
				out[asn] = nh
			}
		}
		return out
	}
	changedFrom := func(base, now map[topo.ASN]topo.ASN) []topo.ASN {
		var out []topo.ASN
		for asn, nh := range base {
			if now[asn] != nh {
				out = append(out, asn)
			}
		}
		slices.Sort(out)
		return out
	}

	run := func(cfg OriginConfig) (map[topo.ASN]topo.ASN, map[topo.ASN]topo.ASN) {
		clk := simclock.New()
		e := New(top, clk, Config{Seed: 12})
		e.Announce(O, prefix, OriginConfig{Pattern: topo.Path{O, O, O}})
		if !e.Converge(5_000_000) {
			t.Fatal("no convergence")
		}
		base := snapshot(e)
		e.Announce(O, prefix, cfg)
		if !e.Converge(5_000_000) {
			t.Fatal("no convergence")
		}
		return base, snapshot(e)
	}

	// Technique 1 — heavy prepending via D2 (the traditional tool): the
	// D2 side becomes longer for everyone, so any AS comparing the two
	// sides shifts, not just A.
	base, afterPrepend := run(OriginConfig{
		Pattern: topo.Path{O, O, O},
		PerNeighbor: map[topo.ASN]topo.Path{
			D2: {O, O, O, O, O, O, O},
		},
	})
	prependChanged := changedFrom(base, afterPrepend)

	// Technique 2 — selective poisoning of A via D2: A hears the clean
	// path only through D1's side, so A (and only A) moves.
	base2, afterSelective := run(OriginConfig{
		Pattern: topo.Path{O, O, O},
		PerNeighbor: map[topo.ASN]topo.Path{
			D2: {O, A, O},
		},
	})
	selectiveChanged := changedFrom(base2, afterSelective)

	if len(selectiveChanged) != 1 || selectiveChanged[0] != A {
		t.Fatalf("selective poisoning should move exactly A, moved %v", selectiveChanged)
	}
	if afterSelective[A] != B1 {
		t.Fatalf("A should shift to the B1 side, went via %d", afterSelective[A])
	}
	// Prepending must move A too — but it is not allowed to be "surgical":
	// in this topology D2 itself also abandons its direct route.
	movedA := false
	for _, asn := range prependChanged {
		if asn == A {
			movedA = true
		}
	}
	if !movedA {
		t.Fatalf("prepending failed to move A at all: %v", prependChanged)
	}
	if len(prependChanged) <= len(selectiveChanged) {
		t.Fatalf("prepending should be blunter than selective poisoning: %v vs %v",
			prependChanged, selectiveChanged)
	}
}
