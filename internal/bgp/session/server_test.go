package session

import (
	"context"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"lifeguard/internal/bgp/wire"
)

// startServer runs a Server on a loopback listener and returns its address
// and a cancel func.
func startServer(t *testing.T, sv *Server) (string, context.CancelFunc) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = sv.Serve(ctx, ln)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not stop")
		}
	})
	return ln.Addr().String(), cancel
}

func dialPeer(t *testing.T, addr string, as uint16) *Session {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	s := New(conn, Config{LocalAS: as, RouterID: netip.AddrFrom4([4]byte{10, 0, byte(as >> 8), byte(as)})})
	if err := s.Start(context.Background()); err != nil {
		t.Fatalf("peer AS%d start: %v", as, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestServerAcceptsMultiplePeers(t *testing.T) {
	var mu sync.Mutex
	got := map[uint16][]wire.Update{}
	sv := NewServer(Config{LocalAS: 65000})
	sv.OnUpdate = func(peerAS uint16, u wire.Update) {
		mu.Lock()
		got[peerAS] = append(got[peerAS], u)
		mu.Unlock()
	}
	addr, _ := startServer(t, sv)

	peers := []*Session{dialPeer(t, addr, 64512), dialPeer(t, addr, 64513), dialPeer(t, addr, 64514)}
	for i, p := range peers {
		u := wire.Update{
			ASPath:  []uint16{64512 + uint16(i)},
			NextHop: netip.MustParseAddr("192.0.2.1"),
			NLRI:    []netip.Prefix{netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 16)},
		}
		if err := p.Announce(u); err != nil {
			t.Fatalf("peer %d announce: %v", i, err)
		}
	}

	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("only %d peers' updates arrived", n)
		case <-time.After(20 * time.Millisecond):
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for as, us := range got {
		if len(us) != 1 || us[0].ASPath[0] != as {
			t.Fatalf("peer AS%d updates = %+v", as, us)
		}
	}
}

func TestServerSessionsTracking(t *testing.T) {
	sv := NewServer(Config{LocalAS: 65000})
	established := make(chan *Session, 4)
	sv.OnSession = func(s *Session) { established <- s }
	addr, _ := startServer(t, sv)

	p1 := dialPeer(t, addr, 64512)
	p2 := dialPeer(t, addr, 64513)
	for i := 0; i < 2; i++ {
		select {
		case <-established:
		case <-time.After(5 * time.Second):
			t.Fatal("session not established")
		}
	}
	if n := len(sv.Sessions()); n != 2 {
		t.Fatalf("Sessions() = %d, want 2", n)
	}
	p1.Close()
	// After a peer closes, it drops out of the established list.
	deadline := time.After(5 * time.Second)
	for len(sv.Sessions()) != 1 {
		select {
		case <-deadline:
			t.Fatalf("Sessions() = %d, want 1", len(sv.Sessions()))
		case <-time.After(20 * time.Millisecond):
		}
	}
	_ = p2
}

func TestServerShutdownClosesPeers(t *testing.T) {
	sv := NewServer(Config{LocalAS: 65000})
	established := make(chan *Session, 1)
	sv.OnSession = func(s *Session) { established <- s }
	addr, cancel := startServer(t, sv)
	p := dialPeer(t, addr, 64512)
	select {
	case <-established:
	case <-time.After(5 * time.Second):
		t.Fatal("no session")
	}
	cancel()
	select {
	case <-p.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("peer not closed on server shutdown")
	}
}
