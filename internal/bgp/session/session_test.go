package session

import (
	"context"
	"net"
	"net/netip"
	"testing"
	"time"

	"lifeguard/internal/bgp/wire"
)

// pair establishes two sessions over an in-memory pipe.
func pair(t *testing.T, cfgA, cfgB Config) (*Session, *Session) {
	t.Helper()
	ca, cb := net.Pipe()
	a, b := New(ca, cfgA), New(cb, cfgB)
	errs := make(chan error, 2)
	go func() { errs <- a.Start(context.Background()) }()
	go func() { errs <- b.Start(context.Background()) }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("Start: %v", err)
		}
	}
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

func TestHandshakeEstablishes(t *testing.T) {
	a, b := pair(t,
		Config{LocalAS: 64512, RouterID: netip.MustParseAddr("10.0.0.1"), HoldTime: 30 * time.Second},
		Config{LocalAS: 3356, RouterID: netip.MustParseAddr("10.0.0.2"), HoldTime: 9 * time.Second},
	)
	if a.State() != Established || b.State() != Established {
		t.Fatalf("states: %v %v", a.State(), b.State())
	}
	if a.Peer().AS != 3356 || b.Peer().AS != 64512 {
		t.Fatalf("peer ASes: %d %d", a.Peer().AS, b.Peer().AS)
	}
	// Negotiated hold time is the minimum of both proposals.
	if a.HoldTime() != 9*time.Second || b.HoldTime() != 9*time.Second {
		t.Fatalf("hold times: %v %v", a.HoldTime(), b.HoldTime())
	}
}

func TestUpdateExchange(t *testing.T) {
	got := make(chan wire.Update, 1)
	ca, cb := net.Pipe()
	a := New(ca, Config{LocalAS: 64512})
	b := New(cb, Config{LocalAS: 64513})
	b.OnUpdate = func(u wire.Update) { got <- u }
	errs := make(chan error, 2)
	go func() { errs <- a.Start(context.Background()) }()
	go func() { errs <- b.Start(context.Background()) }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("Start: %v", err)
		}
	}
	defer a.Close()
	defer b.Close()

	// Announce a poisoned path, LIFEGUARD-style.
	u := wire.Update{
		ASPath:  []uint16{64512, 3356, 64512},
		NextHop: netip.MustParseAddr("198.51.100.1"),
		NLRI:    []netip.Prefix{netip.MustParsePrefix("184.164.240.0/24")},
	}
	if err := a.Announce(u); err != nil {
		t.Fatalf("Announce: %v", err)
	}
	select {
	case recv := <-got:
		if len(recv.ASPath) != 3 || recv.ASPath[1] != 3356 {
			t.Fatalf("received path %v", recv.ASPath)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("update not delivered")
	}
	sent, _ := a.Counts()
	if sent != 1 {
		t.Fatalf("sent = %d", sent)
	}
	// Give the counter a moment; OnUpdate fired so it is already counted.
	_, recvN := b.Counts()
	if recvN != 1 {
		t.Fatalf("recv = %d", recvN)
	}
}

func TestKeepalivesSustainSession(t *testing.T) {
	a, b := pair(t,
		Config{LocalAS: 1, HoldTime: 3 * time.Second},
		Config{LocalAS: 2, HoldTime: 3 * time.Second},
	)
	// Longer than the hold time: keepalives must keep both sides alive.
	time.Sleep(4 * time.Second)
	if a.State() != Established || b.State() != Established {
		t.Fatalf("session died: %v/%v a.err=%v b.err=%v", a.State(), b.State(), a.Err(), b.Err())
	}
}

func TestCleanCloseNotifiesPeer(t *testing.T) {
	a, b := pair(t, Config{LocalAS: 1}, Config{LocalAS: 2})
	a.Close()
	select {
	case <-b.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("peer did not observe close")
	}
	if b.Err() == nil {
		t.Fatal("peer should record the CEASE notification")
	}
}

func TestAnnounceAfterCloseFails(t *testing.T) {
	a, _ := pair(t, Config{LocalAS: 1}, Config{LocalAS: 2})
	a.Close()
	err := a.Announce(wire.Update{})
	if err == nil {
		t.Fatal("Announce on closed session succeeded")
	}
}

func TestStartTwiceFails(t *testing.T) {
	a, _ := pair(t, Config{LocalAS: 1}, Config{LocalAS: 2})
	if err := a.Start(context.Background()); err == nil {
		t.Fatal("second Start should fail")
	}
}

func TestHandshakeTimeout(t *testing.T) {
	ca, _ := net.Pipe() // nobody on the far end
	s := New(ca, Config{LocalAS: 1, HandshakeTimeout: 200 * time.Millisecond})
	start := time.Now()
	err := s.Start(context.Background())
	if err == nil {
		t.Fatal("handshake against silent peer succeeded")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("timeout took too long")
	}
	if s.State() != Closed {
		t.Fatalf("state = %v", s.State())
	}
}

func TestContextDeadlineBoundsHandshake(t *testing.T) {
	ca, _ := net.Pipe()
	s := New(ca, Config{LocalAS: 1, HandshakeTimeout: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := s.Start(ctx); err == nil {
		t.Fatal("expected failure")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("ctx deadline ignored")
	}
}

func TestOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		s   *Session
		err error
	}
	accepted := make(chan res, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			accepted <- res{nil, err}
			return
		}
		s := New(conn, Config{LocalAS: 65001})
		accepted <- res{s, s.Start(context.Background())}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cli := New(conn, Config{LocalAS: 65002})
	if err := cli.Start(context.Background()); err != nil {
		t.Fatalf("client start: %v", err)
	}
	defer cli.Close()
	srv := <-accepted
	if srv.err != nil {
		t.Fatalf("server start: %v", srv.err)
	}
	defer srv.s.Close()
	if cli.Peer().AS != 65001 || srv.s.Peer().AS != 65002 {
		t.Fatalf("peer ASes: %d %d", cli.Peer().AS, srv.s.Peer().AS)
	}
}

func TestStateStrings(t *testing.T) {
	for st, want := range map[State]string{
		Idle: "idle", OpenSent: "open-sent", OpenConfirm: "open-confirm",
		Established: "established", Closed: "closed", State(99): "unknown",
	} {
		if st.String() != want {
			t.Fatalf("%d -> %q", st, st.String())
		}
	}
}
