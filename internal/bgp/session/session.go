// Package session runs a BGP-4 peering over a net.Conn: OPEN handshake with
// hold-time negotiation, keepalive generation, hold-timer enforcement via
// read deadlines, and UPDATE exchange using the wire codec. It is the
// transport a LIFEGUARD deployment uses to feed crafted announcements to an
// upstream router (the BGP-Mux role in the paper's deployment).
package session

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"

	"lifeguard/internal/bgp/wire"
)

// State is the FSM state.
type State int

// FSM states (the TCP states of RFC 4271 are collapsed: the caller supplies
// an established conn).
const (
	Idle State = iota
	OpenSent
	OpenConfirm
	Established
	Closed
)

// String names the state.
func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case OpenSent:
		return "open-sent"
	case OpenConfirm:
		return "open-confirm"
	case Established:
		return "established"
	case Closed:
		return "closed"
	default:
		return "unknown"
	}
}

// ErrClosed is returned by operations on a closed session.
var ErrClosed = errors.New("session: closed")

// Config identifies the local speaker.
type Config struct {
	LocalAS  uint16
	RouterID netip.Addr
	// HoldTime proposed to the peer; the negotiated value is the minimum
	// of both sides. Default 90s. Zero after negotiation disables the
	// hold timer.
	HoldTime time.Duration
	// HandshakeTimeout bounds the OPEN/KEEPALIVE exchange. Default 10s.
	HandshakeTimeout time.Duration
	// Capabilities advertised in OPEN.
	Capabilities []wire.Capability
}

func (c Config) withDefaults() Config {
	if c.HoldTime == 0 {
		c.HoldTime = 90 * time.Second
	}
	if c.HandshakeTimeout == 0 {
		c.HandshakeTimeout = 10 * time.Second
	}
	if !c.RouterID.IsValid() {
		c.RouterID = netip.AddrFrom4([4]byte{192, 0, 2, 1})
	}
	return c
}

// Session is one side of a BGP peering.
type Session struct {
	cfg  Config
	conn net.Conn
	br   *bufio.Reader

	// OnUpdate, if set before Start, receives every UPDATE from the peer.
	OnUpdate func(wire.Update)

	mu        sync.Mutex
	state     State
	peer      wire.Open
	hold      time.Duration
	err       error
	closeOnce sync.Once
	done      chan struct{}

	sendMu sync.Mutex // serializes writes

	// Counters for observability.
	updatesSent, updatesRecv int
	mcount                   sync.Mutex
}

// New wraps conn in an un-started session.
func New(conn net.Conn, cfg Config) *Session {
	return &Session{
		cfg:   cfg.withDefaults(),
		conn:  conn,
		br:    bufio.NewReader(conn),
		state: Idle,
		done:  make(chan struct{}),
	}
}

// State returns the current FSM state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Peer returns the peer's OPEN message (valid once Established).
func (s *Session) Peer() wire.Open {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peer
}

// HoldTime returns the negotiated hold time.
func (s *Session) HoldTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hold
}

// Counts returns (updates sent, updates received).
func (s *Session) Counts() (int, int) {
	s.mcount.Lock()
	defer s.mcount.Unlock()
	return s.updatesSent, s.updatesRecv
}

// Done is closed when the session terminates; Err then reports why.
func (s *Session) Done() <-chan struct{} { return s.done }

// Err reports the terminal error (nil for a clean local Close).
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *Session) setState(st State) {
	s.mu.Lock()
	s.state = st
	s.mu.Unlock()
}

// Start performs the OPEN/KEEPALIVE handshake and, on success, launches the
// reader and keepalive goroutines. It is symmetric: two sessions over the
// ends of a net.Pipe establish against each other.
func (s *Session) Start(ctx context.Context) error {
	if s.State() != Idle {
		return fmt.Errorf("session: Start in state %v", s.State())
	}
	deadline := time.Now().Add(s.cfg.HandshakeTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	_ = s.conn.SetDeadline(deadline)

	// Writes on an unbuffered transport (net.Pipe) block until the peer
	// reads, so send the OPEN from a goroutine while we read theirs.
	openErr := make(chan error, 1)
	go func() {
		openErr <- s.write(wire.Open{
			AS:           s.cfg.LocalAS,
			HoldTime:     uint16(s.cfg.HoldTime / time.Second),
			BGPID:        s.cfg.RouterID,
			Capabilities: s.cfg.Capabilities,
		})
	}()
	s.setState(OpenSent)

	msg, err := s.read()
	if err != nil {
		s.fail(fmt.Errorf("session: reading OPEN: %w", err))
		return s.Err()
	}
	peer, ok := msg.(wire.Open)
	if !ok {
		s.fail(fmt.Errorf("session: expected OPEN, got %T", msg))
		return s.Err()
	}
	if peer.Version != 4 {
		_ = s.write(wire.Notification{Code: wire.NotifOpenError, Subcode: 1})
		s.fail(fmt.Errorf("session: unsupported BGP version %d", peer.Version))
		return s.Err()
	}
	if err := <-openErr; err != nil {
		s.fail(fmt.Errorf("session: sending OPEN: %w", err))
		return s.Err()
	}

	hold := s.cfg.HoldTime
	if p := time.Duration(peer.HoldTime) * time.Second; p < hold {
		hold = p
	}
	s.mu.Lock()
	s.peer, s.hold = peer, hold
	s.mu.Unlock()
	s.setState(OpenConfirm)

	kaErr := make(chan error, 1)
	go func() { kaErr <- s.write(wire.Keepalive{}) }()
	msg, err = s.read()
	if err != nil {
		s.fail(fmt.Errorf("session: reading confirm KEEPALIVE: %w", err))
		return s.Err()
	}
	if _, ok := msg.(wire.Keepalive); !ok {
		s.fail(fmt.Errorf("session: expected KEEPALIVE, got %T", msg))
		return s.Err()
	}
	if err := <-kaErr; err != nil {
		s.fail(fmt.Errorf("session: sending KEEPALIVE: %w", err))
		return s.Err()
	}
	s.setState(Established)
	s.resetHoldTimer()

	go s.readLoop()
	go s.keepaliveLoop()
	return nil
}

// Announce sends an UPDATE to the peer.
func (s *Session) Announce(u wire.Update) error {
	if s.State() != Established {
		return ErrClosed
	}
	if err := s.write(u); err != nil {
		return err
	}
	s.mcount.Lock()
	s.updatesSent++
	s.mcount.Unlock()
	return nil
}

// Close tears the session down cleanly with a CEASE notification.
func (s *Session) Close() error {
	s.closeOnce.Do(func() {
		if s.State() == Established {
			_ = s.write(wire.Notification{Code: wire.NotifCease})
		}
		s.setState(Closed)
		_ = s.conn.Close()
		close(s.done)
	})
	return nil
}

// fail records err and closes without the CEASE courtesy.
func (s *Session) fail(err error) {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.err = err
		s.state = Closed
		s.mu.Unlock()
		_ = s.conn.Close()
		close(s.done)
	})
}

func (s *Session) write(m wire.Message) error {
	b, err := wire.Marshal(m)
	if err != nil {
		return err
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	_, err = s.conn.Write(b)
	return err
}

// read blocks for one complete message.
func (s *Session) read() (wire.Message, error) {
	hdr := make([]byte, wire.HeaderLen)
	if _, err := io.ReadFull(s.br, hdr); err != nil {
		return nil, err
	}
	length := int(hdr[16])<<8 | int(hdr[17])
	if length < wire.HeaderLen || length > wire.MaxMsgLen {
		return nil, wire.ErrBadLength
	}
	full := make([]byte, length)
	copy(full, hdr)
	if _, err := io.ReadFull(s.br, full[wire.HeaderLen:]); err != nil {
		return nil, err
	}
	m, _, err := wire.Unmarshal(full)
	return m, err
}

// resetHoldTimer pushes the read deadline out by the negotiated hold time.
func (s *Session) resetHoldTimer() {
	if h := s.HoldTime(); h > 0 {
		_ = s.conn.SetReadDeadline(time.Now().Add(h))
	} else {
		_ = s.conn.SetReadDeadline(time.Time{})
	}
	_ = s.conn.SetWriteDeadline(time.Time{})
}

func (s *Session) readLoop() {
	for {
		msg, err := s.read()
		if err != nil {
			if s.State() == Closed {
				return
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				_ = s.write(wire.Notification{Code: wire.NotifHoldTimer})
				s.fail(fmt.Errorf("session: hold timer expired: %w", err))
				return
			}
			s.fail(fmt.Errorf("session: read: %w", err))
			return
		}
		s.resetHoldTimer()
		switch m := msg.(type) {
		case wire.Keepalive:
			// hold timer already reset
		case wire.Update:
			s.mcount.Lock()
			s.updatesRecv++
			s.mcount.Unlock()
			if s.OnUpdate != nil {
				s.OnUpdate(m)
			}
		case wire.Notification:
			s.fail(fmt.Errorf("session: peer notification: %w", error(m)))
			return
		case wire.Open:
			s.fail(errors.New("session: unexpected OPEN while established"))
			return
		}
	}
}

func (s *Session) keepaliveLoop() {
	h := s.HoldTime()
	if h <= 0 {
		return
	}
	t := time.NewTicker(h / 3)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			if err := s.write(wire.Keepalive{}); err != nil {
				s.fail(fmt.Errorf("session: keepalive write: %w", err))
				return
			}
		}
	}
}
