package session

import (
	"context"
	"errors"
	"net"
	"sync"

	"lifeguard/internal/bgp/wire"
)

// Server accepts BGP peerings on a listener and runs a Session for each —
// the shape of a route collector (RouteViews / RIPE RIS), which is exactly
// the vantage the paper's efficacy and convergence measurements come from.
// Use Collector to retain every received update per peer.
type Server struct {
	cfg Config

	// OnUpdate, if set, receives every UPDATE from any peer along with
	// the peer's AS. It must be safe for concurrent use; sessions run in
	// their own goroutines.
	OnUpdate func(peerAS uint16, u wire.Update)

	// OnSession, if set, observes each established session.
	OnSession func(s *Session)

	mu       sync.Mutex
	sessions []*Session
	closed   bool

	wg sync.WaitGroup
}

// NewServer returns a server that will identify itself with cfg on every
// accepted session.
func NewServer(cfg Config) *Server { return &Server{cfg: cfg} }

// Serve accepts connections until the listener fails or ctx is cancelled.
// It blocks; run it in a goroutine. Closing the listener unblocks it.
func (sv *Server) Serve(ctx context.Context, ln net.Listener) error {
	defer sv.closeAll()
	stop := context.AfterFunc(ctx, func() { _ = ln.Close() })
	defer stop()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		sv.wg.Add(1)
		go sv.handle(ctx, conn)
	}
}

func (sv *Server) handle(ctx context.Context, conn net.Conn) {
	defer sv.wg.Done()
	s := New(conn, sv.cfg)
	s.OnUpdate = func(u wire.Update) {
		if sv.OnUpdate != nil {
			sv.OnUpdate(s.Peer().AS, u)
		}
	}
	if err := s.Start(ctx); err != nil {
		return
	}
	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		s.Close()
		return
	}
	sv.sessions = append(sv.sessions, s)
	sv.mu.Unlock()
	if sv.OnSession != nil {
		sv.OnSession(s)
	}
	<-s.Done()
}

// Sessions returns the currently-tracked sessions (established order).
func (sv *Server) Sessions() []*Session {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	out := make([]*Session, 0, len(sv.sessions))
	for _, s := range sv.sessions {
		if s.State() == Established {
			out = append(out, s)
		}
	}
	return out
}

func (sv *Server) closeAll() {
	sv.mu.Lock()
	sv.closed = true
	sessions := append([]*Session(nil), sv.sessions...)
	sv.mu.Unlock()
	for _, s := range sessions {
		s.Close()
	}
	sv.wg.Wait()
}
