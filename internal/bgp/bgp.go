// Package bgp implements the interdomain routing substrate: a discrete-event
// path-vector protocol engine with the pieces LIFEGUARD's remediation relies
// on — per-neighbor adj-RIB-in, the standard decision process over
// Gao–Rexford local preferences, valley-free export filtering, AS-path loop
// prevention (which poisoning exploits), MRAI batching (which shapes
// convergence time and path exploration), prepending, selective per-neighbor
// advertisement, and community propagation.
//
// One speaker models one AS. Router-level detail lives in the data plane;
// route selection is AS-granular, matching how the paper reasons about
// poisoning ("BGP uses AS-level topology abstractions", §3).
package bgp

import (
	"net/netip"
	"time"

	"lifeguard/internal/obs"
	"lifeguard/internal/topo"
)

// Community is an opaque BGP community value attached by the origin.
type Community uint32

// LocalPref values derived from the business relationship of the neighbor a
// route was learned from (Gao–Rexford economics: prefer routes you are paid
// to carry).
const (
	prefOriginated = 1000
	prefCustomer   = 300
	prefPeer       = 200
	prefProvider   = 100
	prefBackup     = 50 // routes demoted by an ActionLowerPref community
)

// Route is one entry of an adj-RIB-in (or, after selection, a loc-RIB).
type Route struct {
	Prefix netip.Prefix
	// Path is the AS path as received: Path[0] is the neighbor that sent
	// the route (and therefore the forwarding next hop), the origin is
	// last. Poisons and prepends appear verbatim.
	Path topo.Path
	// From is the neighbor AS the route was learned from. For originated
	// routes From is the owning AS itself.
	From topo.ASN
	// Rel is the relationship of From as seen by the receiving AS at
	// import time (RelNone for originated routes).
	Rel         topo.Rel
	LocalPref   int
	MED         int
	Communities []Community
	// Originated marks locally-originated routes.
	Originated bool

	// exportPath caches Path prepended with the owning speaker's ASN (see
	// Route.exportedTo). A Route instance belongs to exactly one speaker's
	// loc-RIB (or is its originated route), so the cache never crosses
	// speakers.
	exportPath topo.Path
	// expID is the interned handle of exportPath, cached alongside it so
	// per-flush dedup against lastAdv is a 32-bit compare.
	expID pathID
	// pid/cid are the interned handles of Path and Communities for routes
	// materialized from a compact adj-RIB-in entry (zero for originated
	// routes, whose equality is checked field-wise).
	pid pathID
	cid commID
}

// exportedTo returns Path prepended with self plus its interned handle,
// computed once: Path never mutates after construction and every neighbor
// receives the same prepended path, so one allocation (and one arena
// round-trip) serves all exports of this route.
func (r *Route) exportedTo(a *arena, self topo.ASN) (topo.Path, pathID) {
	if r.exportPath == nil {
		r.exportPath = r.Path.Prepend(self)
		r.expID = a.internPath(r.exportPath)
	}
	return r.exportPath, r.expID
}

// NextHop returns the neighbor AS traffic is forwarded to, and false for
// originated routes (local delivery).
func (r *Route) NextHop() (topo.ASN, bool) {
	if r.Originated || len(r.Path) == 0 {
		return 0, false
	}
	return r.Path[0], true
}

// better reports whether a is preferred over b by the BGP decision process:
// higher local-pref, then shorter AS path, then lower MED, then lowest
// neighbor ASN as the deterministic tiebreak.
func better(a, b *Route) bool {
	if b == nil {
		return true
	}
	if a == nil {
		return false
	}
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	if len(a.Path) != len(b.Path) {
		return len(a.Path) < len(b.Path)
	}
	if a.MED != b.MED {
		return a.MED < b.MED
	}
	return a.From < b.From
}

// OriginConfig controls how an AS announces one of its own prefixes. The
// zero value announces the plain single-ASN path to every neighbor.
type OriginConfig struct {
	// Pattern is the AS path to announce, origin conventions apply: the
	// announcing AS must appear first (it is the next hop) and last (it
	// is the registered origin); poisons sit in between. nil means the
	// plain [self] path. [self self self] is the prepended baseline of
	// §3.1.1; [self A self] poisons A.
	Pattern topo.Path
	// PerNeighbor overrides Pattern for specific neighbors — the
	// selective-poisoning primitive of §3.1.2. An entry with a nil path
	// is invalid; use Withhold for selective advertising.
	PerNeighbor map[topo.ASN]topo.Path
	// Withhold suppresses the announcement to the listed neighbors
	// entirely (selective advertising, §2.3).
	Withhold map[topo.ASN]bool
	// Communities are attached to the announcement and propagate until
	// an AS with StripCommunities drops them.
	Communities []Community
	// PerNeighborCommunities overrides Communities for specific
	// neighbors — how an operator tags an action community on just one
	// session ("treat my route via you as backup").
	PerNeighborCommunities map[topo.ASN][]Community
	// MED is advertised to all neighbors (meaningful only to multi-link
	// neighbors; carried for completeness).
	MED int
}

// sanitized returns a deep copy of c. Announce applies it at the API
// boundary, so the engine's internals (export, lastAdv dedup, deliveries)
// can alias the config's paths and community slices freely without a caller
// mutating them underneath — and the hot flush path needs no per-message
// defensive clones.
func (c OriginConfig) sanitized() OriginConfig {
	c.Pattern = c.Pattern.Clone()
	if c.PerNeighbor != nil {
		m := make(map[topo.ASN]topo.Path, len(c.PerNeighbor))
		for n, p := range c.PerNeighbor {
			m[n] = p.Clone()
		}
		c.PerNeighbor = m
	}
	if c.Withhold != nil {
		m := make(map[topo.ASN]bool, len(c.Withhold))
		for n, v := range c.Withhold {
			m[n] = v
		}
		c.Withhold = m
	}
	c.Communities = append([]Community(nil), c.Communities...)
	if c.PerNeighborCommunities != nil {
		m := make(map[topo.ASN][]Community, len(c.PerNeighborCommunities))
		for n, cs := range c.PerNeighborCommunities {
			m[n] = append([]Community(nil), cs...)
		}
		c.PerNeighborCommunities = m
	}
	return c
}

// pattern returns the effective path pattern announced to neighbor n.
func (c *OriginConfig) pattern(self, n topo.ASN) (topo.Path, bool) {
	if c.Withhold[n] {
		return nil, false
	}
	if p, ok := c.PerNeighbor[n]; ok {
		return p, true
	}
	if c.Pattern != nil {
		return c.Pattern, true
	}
	return topo.Path{self}, true
}

// EffectivePattern returns the AS path this config announces to neighbor n
// (self is the origin), and false when the announcement is withheld from n.
// External systems (e.g. the wire bridge) use it to mirror the simulator's
// announcements onto real BGP sessions.
func (c *OriginConfig) EffectivePattern(self, n topo.ASN) (topo.Path, bool) {
	p, ok := c.pattern(self, n)
	if !ok {
		return nil, false
	}
	return p.Clone(), true
}

// EffectiveCommunities returns the communities announced to neighbor n.
func (c *OriginConfig) EffectiveCommunities(n topo.ASN) []Community {
	cs := c.Communities
	if per, ok := c.PerNeighborCommunities[n]; ok {
		cs = per
	}
	return append([]Community(nil), cs...)
}

// BestChange is emitted through Engine.OnBestChange whenever any AS's
// selected route for a prefix changes. A nil Path means the AS lost its
// route. Route collectors and convergence instrumentation consume these.
type BestChange struct {
	At     time.Duration
	AS     topo.ASN
	Prefix netip.Prefix
	Path   topo.Path // nil when the route was lost
}

// Config tunes the engine's timing model.
type Config struct {
	// MRAI is the mean minimum route advertisement interval per neighbor
	// session. Default 30s, jittered ±MRAIJitter.
	MRAI       time.Duration
	MRAIJitter float64 // fraction of MRAI, default 0.25
	// PropDelay is the mean one-way message propagation+processing delay
	// between adjacent speakers. Default 50ms, jittered ±PropJitter.
	PropDelay  time.Duration
	PropJitter float64 // fraction, default 0.5
	// Seed feeds the engine's private RNG; runs with equal seeds replay
	// identically.
	Seed int64
	// Dampening enables RFC 2439 route-flap dampening at every speaker.
	Dampening DampeningConfig
	// Obs receives the engine's metrics (update counts, decision runs,
	// MRAI deferrals, dampening activity, loc-RIB and LPM sizes). nil
	// disables instrumentation at the cost of one branch per site;
	// enabled or not, protocol behaviour is identical.
	Obs *obs.Registry
	// ShardWorkers, when > 0, runs the engine's event loop sharded by
	// speaker: events are batched into barrier windows shorter than the
	// minimum propagation delay, each window's speakers run concurrently
	// (on up to ShardWorkers goroutines), and their effects merge back in
	// deterministic order. Results are byte-identical for every worker
	// count ≥ 1 under a given seed; 0 selects the classic single-threaded
	// loop, whose event interleaving (and thus rng stream) differs from
	// the sharded model's. See shard.go for the window-safety argument.
	ShardWorkers int
}

func (c Config) withDefaults() Config {
	if c.MRAI == 0 {
		c.MRAI = 30 * time.Second
	}
	if c.MRAIJitter == 0 {
		c.MRAIJitter = 0.25
	}
	if c.PropDelay == 0 {
		c.PropDelay = 50 * time.Millisecond
	}
	if c.PropJitter == 0 {
		c.PropJitter = 0.5
	}
	c.Dampening = c.Dampening.withDefaults()
	return c
}

// update is the wire message between speakers. A nil path is a withdrawal.
// The sender resolves the interned handles at flush time and ships both
// forms: the slices feed import policy (loop checks walk the path), the
// handles land in the receiver's compact adj-RIB-in without re-interning.
type update struct {
	prefix      netip.Prefix
	path        topo.Path
	communities []Community
	med         int
	pid         pathID
	cid         commID
}
