package bgp

import (
	"net/netip"
	"testing"

	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
)

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// chainNet builds 1 ← 2 ← 3 (1 is a customer of 2, 2 of 3).
func chainNet(t *testing.T) *Engine {
	t.Helper()
	b := topo.NewBuilder()
	for asn := topo.ASN(1); asn <= 3; asn++ {
		b.AddAS(asn, "")
	}
	b.Provider(1, 2)
	b.Provider(2, 3)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return New(top, simclock.New(), Config{Seed: 1})
}

// TestLookupShortPrefixes is the regression test for the pre-LPM lookup,
// which scanned candidate lengths /32../8 only: a /7 aggregate or a /0
// default route was installed in the loc-RIB but unreachable by
// longest-prefix match.
func TestLookupShortPrefixes(t *testing.T) {
	e := chainNet(t)
	slash7 := mustPrefix(t, "2.0.0.0/7")
	dflt := mustPrefix(t, "0.0.0.0/0")
	e.Announce(1, slash7, OriginConfig{})
	e.Announce(1, dflt, OriginConfig{})
	if !e.Converge(5_000_000) {
		t.Fatal("no convergence")
	}
	// 3.1.2.3 is inside 2.0.0.0/7; the /7 must win over the /0.
	r, ok := e.Lookup(3, mustAddr(t, "3.1.2.3"))
	if !ok || r.Prefix != slash7 {
		t.Fatalf("Lookup inside /7 = %v, %v; want route for %v", r, ok, slash7)
	}
	// 9.9.9.9 matches only the default route.
	r, ok = e.Lookup(3, mustAddr(t, "9.9.9.9"))
	if !ok || r.Prefix != dflt {
		t.Fatalf("Lookup of default-routed addr = %v, %v; want route for %v", r, ok, dflt)
	}
	// Withdrawing the /7 leaves its addresses on the default route.
	e.Withdraw(1, slash7)
	if !e.Converge(5_000_000) {
		t.Fatal("no convergence after withdraw")
	}
	r, ok = e.Lookup(3, mustAddr(t, "3.1.2.3"))
	if !ok || r.Prefix != dflt {
		t.Fatalf("Lookup after /7 withdrawal = %v, %v; want default route", r, ok)
	}
}

func TestLookupLongestMatchAndMisses(t *testing.T) {
	e := chainNet(t)
	block := topo.Block(1)             // 1.1.0.0/16
	prod := topo.ProductionPrefix(1)   // 1.1.240.0/24
	sentinel := topo.SentinelPrefix(1) // 1.1.240.0/23
	host := mustPrefix(t, "1.1.240.9/32")
	for _, p := range []netip.Prefix{block, prod, sentinel, host} {
		e.Announce(1, p, OriginConfig{})
	}
	if !e.Converge(5_000_000) {
		t.Fatal("no convergence")
	}
	cases := []struct {
		addr string
		want netip.Prefix
	}{
		{"1.1.240.9", host},     // /32 host route wins
		{"1.1.240.1", prod},     // /24 beats the /23 and /16
		{"1.1.241.7", sentinel}, // sentinel half: /23 beats /16
		{"1.1.9.9", block},      // block only
	}
	for _, c := range cases {
		r, ok := e.Lookup(3, mustAddr(t, c.addr))
		if !ok || r.Prefix != c.want {
			t.Errorf("Lookup(%s): got %v, %v; want %v", c.addr, r, ok, c.want)
		}
	}
	if _, ok := e.Lookup(3, mustAddr(t, "5.5.5.5")); ok {
		t.Error("Lookup of uncovered addr should miss")
	}
	// 4-in-6 mapped forms of IPv4 addresses match their IPv4 routes.
	if r, ok := e.Lookup(3, mustAddr(t, "::ffff:1.1.240.1")); !ok || r.Prefix != prod {
		t.Errorf("Lookup of 4-in-6 mapped addr = %v, %v; want %v", r, ok, prod)
	}
	// Real IPv6 has no routes in the IPv4-only address plan.
	if _, ok := e.Lookup(3, mustAddr(t, "2001:db8::1")); ok {
		t.Error("Lookup of IPv6 addr should miss")
	}
	// Unknown AS has no RIB at all.
	if _, ok := e.Lookup(99, mustAddr(t, "1.1.9.9")); ok {
		t.Error("Lookup at unknown AS should miss")
	}
}

// TestLPMIndexPruning exercises the trie's node recycling directly: a
// withdraw returns the route's exclusive tail to the free list, and a
// re-announce reuses it without growing the slab.
func TestLPMIndexPruning(t *testing.T) {
	var x lpmIndex
	p := netip.MustParsePrefix("10.0.0.0/24")
	q := netip.MustParsePrefix("10.0.0.0/8")
	rp, rq := &Route{Prefix: p}, &Route{Prefix: q}
	x.insert(p, rp)
	x.insert(q, rq)
	if x.len != 2 {
		t.Fatalf("len = %d, want 2", x.len)
	}
	key, _ := v4Key(netip.MustParseAddr("10.0.0.1"))
	if got := x.lookup(key); got != rp {
		t.Fatalf("lookup = %v, want the /24 route", got)
	}
	x.remove(p)
	if got := x.lookup(key); got != rq {
		t.Fatalf("lookup after /24 removal = %v, want the /8 route", got)
	}
	// The /24's sixteen exclusive nodes (depths 9..24) were recycled.
	if len(x.free) != 16 {
		t.Fatalf("free list has %d nodes after prune, want 16", len(x.free))
	}
	x.insert(p, rp)
	if len(x.free) != 0 {
		t.Fatalf("free list has %d nodes after re-insert, want 0 (reused)", len(x.free))
	}
	x.remove(q)
	x.remove(p)
	if x.len != 0 {
		t.Fatalf("len = %d after removing all, want 0", x.len)
	}
	if got := x.lookup(key); got != nil {
		t.Fatalf("lookup on empty index = %v, want nil", got)
	}
	// Removing an absent prefix is a no-op.
	x.remove(p)
	if x.len != 0 {
		t.Fatalf("len = %d after redundant remove, want 0", x.len)
	}
}
