package bgp

import (
	"testing"

	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
	"lifeguard/internal/topogen"
)

func benchTopo(b *testing.B, transits, stubs int) *topogen.Result {
	b.Helper()
	res, err := topogen.Generate(topogen.Config{Seed: 1, NumTransit: transits, NumStub: stubs})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkConvergenceSinglePrefix measures full-internet propagation of
// one prefix over a ~200-AS topology.
func BenchmarkConvergenceSinglePrefix(b *testing.B) {
	res := benchTopo(b, 40, 150)
	origin := res.Stubs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk := simclock.New()
		e := New(res.Top, clk, Config{Seed: int64(i)})
		e.Originate(origin, topo.ProductionPrefix(origin))
		if !e.Converge(50_000_000) {
			b.Fatal("no convergence")
		}
	}
}

// BenchmarkConvergenceFullTable measures every AS originating its block —
// the initial-convergence cost experiments pay once per topology.
func BenchmarkConvergenceFullTable(b *testing.B) {
	res := benchTopo(b, 25, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk := simclock.New()
		e := New(res.Top, clk, Config{Seed: int64(i)})
		for _, asn := range res.Top.ASNs() {
			e.Originate(asn, topo.Block(asn))
		}
		if !e.Converge(500_000_000) {
			b.Fatal("no convergence")
		}
	}
}

// BenchmarkPoisonReconvergence measures one poison/converge cycle on a
// warm engine — the inner loop of the efficacy and convergence experiments.
func BenchmarkPoisonReconvergence(b *testing.B) {
	res := benchTopo(b, 40, 150)
	origin := res.Stubs[0]
	prefix := topo.ProductionPrefix(origin)
	clk := simclock.New()
	e := New(res.Top, clk, Config{Seed: 7})
	baseline := topo.Path{origin, origin, origin}
	e.Announce(origin, prefix, OriginConfig{Pattern: baseline})
	e.Converge(50_000_000)
	victim := res.Transit[3]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Announce(origin, prefix, OriginConfig{Pattern: topo.Path{origin, victim, origin}})
		e.Converge(50_000_000)
		e.Announce(origin, prefix, OriginConfig{Pattern: baseline})
		e.Converge(50_000_000)
	}
}

// BenchmarkLookupLPM measures the data-plane-facing longest-prefix match.
func BenchmarkLookupLPM(b *testing.B) {
	res := benchTopo(b, 25, 80)
	clk := simclock.New()
	e := New(res.Top, clk, Config{Seed: 3})
	for _, asn := range res.Top.ASNs() {
		e.Originate(asn, topo.Block(asn))
	}
	e.Converge(500_000_000)
	viewer := res.Stubs[0]
	addrs := make([]topo.ASN, 0, 32)
	for i, s := range res.Stubs {
		if i%3 == 0 {
			addrs = append(addrs, s)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := addrs[i%len(addrs)]
		if _, ok := e.Lookup(viewer, topo.ProductionAddr(target)); !ok {
			b.Fatal("lookup failed")
		}
	}
}
