package bgp

import "net/netip"

// Compiled longest-prefix-match index. Every simulated probe is forwarded
// hop-by-hop, and every hop does one LPM lookup in the transit AS's loc-RIB,
// so this is the hottest read path in the repository. The index is a binary
// trie keyed on the 32-bit big-endian IPv4 address: a node at depth d
// corresponds to a /d prefix, and a best route is hung at the node of its
// prefix. Lookup walks at most 32 child pointers and remembers the deepest
// route passed — no netip.Prefix construction, no map probes, no
// allocations.
//
// The trie is maintained incrementally by Speaker.decide: every loc-RIB
// install goes through insert and every loc-RIB delete through remove, so
// the index is always exactly the loc-RIB (invariant checked against a
// brute-force match over KnownPrefixes in lpm_quick_test.go). Structure and
// contents are a pure function of the loc-RIB — no ordering, randomness, or
// wall-clock input — so determinism of a run is unaffected.
//
// Unlike the map-probe loop it replaces (which scanned /32../8 only), the
// trie matches the full /0../32 range: default routes and other sub-/8
// aggregates are routable.

// lpmNode is one trie node. route is non-nil when a selected route's prefix
// terminates here.
type lpmNode struct {
	child [2]*lpmNode
	route *Route
}

// lpmIndex is one speaker's index over its loc-RIB. The zero value is an
// empty index ready for use.
type lpmIndex struct {
	root  lpmNode
	len   int // number of routes in the index
	nodes int // live trie nodes below the root (the size gauge reads this)

	// Nodes are carved from slabs and recycled through a free list, so
	// installing a /24 costs well under one heap allocation on average and
	// steady-state announce/withdraw churn costs none.
	slab []lpmNode
	free []*lpmNode
}

// lpmSlabSize is the node-slab granularity: one slab covers a fresh /24
// insert (at most 32 new nodes), and a speaker with a handful of routes
// wastes at most a few hundred bytes.
const lpmSlabSize = 32

func (x *lpmIndex) newNode() *lpmNode {
	x.nodes++
	if n := len(x.free); n > 0 {
		nd := x.free[n-1]
		x.free = x.free[:n-1]
		*nd = lpmNode{}
		return nd
	}
	if len(x.slab) == 0 {
		x.slab = make([]lpmNode, lpmSlabSize)
	}
	nd := &x.slab[0]
	x.slab = x.slab[1:]
	return nd
}

// v4Key flattens an IPv4 (or 4-in-6 mapped) address to its 32-bit key;
// ok=false for other address families, which the IPv4-only address plan
// never routes.
func v4Key(a netip.Addr) (uint32, bool) {
	a = a.Unmap()
	if !a.Is4() {
		return 0, false
	}
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), true
}

// insert hangs r at p, replacing any route already there. Prefixes are
// masked at the Announce boundary, so only the top p.Bits() bits of the
// address are significant.
func (x *lpmIndex) insert(p netip.Prefix, r *Route) {
	key, ok := v4Key(p.Addr())
	if !ok {
		return
	}
	n := &x.root
	for depth := 0; depth < p.Bits(); depth++ {
		b := (key >> (31 - depth)) & 1
		if n.child[b] == nil {
			n.child[b] = x.newNode()
		}
		n = n.child[b]
	}
	if n.route == nil {
		x.len++
	}
	n.route = r
}

// remove deletes the route at p, if any, and prunes the now-empty tail of
// its path back onto the free list, so announce/withdraw churn cannot grow
// the trie without bound.
func (x *lpmIndex) remove(p netip.Prefix) {
	key, ok := v4Key(p.Addr())
	if !ok {
		return
	}
	bits := p.Bits()
	var path [32]*lpmNode // path[d] is the node at depth d on the way down
	n := &x.root
	for depth := 0; depth < bits; depth++ {
		path[depth] = n
		n = n.child[(key>>(31-depth))&1]
		if n == nil {
			return
		}
	}
	if n.route == nil {
		return
	}
	n.route = nil
	x.len--
	for depth := bits - 1; depth >= 0; depth-- {
		if n.route != nil || n.child[0] != nil || n.child[1] != nil {
			break
		}
		parent := path[depth]
		parent.child[(key>>(31-depth))&1] = nil
		x.free = append(x.free, n)
		x.nodes--
		n = parent
	}
}

// lookup returns the longest-prefix-match route for key, or nil if no
// prefix (not even a default route) covers it.
func (x *lpmIndex) lookup(key uint32) *Route {
	n := &x.root
	best := n.route // a /0 default route lives at the root
	for depth := 0; depth < 32; depth++ {
		n = n.child[(key>>(31-depth))&1]
		if n == nil {
			break
		}
		if n.route != nil {
			best = n.route
		}
	}
	return best
}
