package bgp

import (
	"sort"

	"lifeguard/internal/topo"
)

// Compact adj-RIB-in. The previous representation — map[prefix]map[ASN]*Route
// with a materialized topo.Path per entry — costs two map headers plus a
// Route and path slice per (prefix, neighbor), which dominates memory on
// full tables at 10k ASes. Entries are instead delta-encoded against the
// loc-RIB: only the selection-relevant scalars and the interned path /
// community handles are stored (16 bytes each), sorted by neighbor in a
// flat slice per prefix. The winning route alone is materialized as a
// *Route (the LPM trie and every public API hand out *Route), and AdjIn
// rebuilds full Routes from the arena only when asked.

// adjEntry is one neighbor's offered route for a prefix.
type adjEntry struct {
	nbr   topo.ASN
	rel   topo.Rel
	plen  uint16 // AS-path length, the decision process's second comparator
	lpref int32
	med   int32
	path  pathID
	comms commID
}

// prefixRIB holds a prefix's offers, sorted by neighbor ASN.
type prefixRIB struct {
	entries []adjEntry
}

// find returns the index of nbr's entry, or -1.
func (rb *prefixRIB) find(nbr topo.ASN) int {
	i := sort.Search(len(rb.entries), func(i int) bool { return rb.entries[i].nbr >= nbr })
	if i < len(rb.entries) && rb.entries[i].nbr == nbr {
		return i
	}
	return -1
}

// insert adds a new entry, keeping neighbor order. The caller has already
// established no entry for ent.nbr exists.
func (rb *prefixRIB) insert(ent adjEntry) {
	i := sort.Search(len(rb.entries), func(i int) bool { return rb.entries[i].nbr >= ent.nbr })
	rb.entries = append(rb.entries, adjEntry{})
	copy(rb.entries[i+1:], rb.entries[i:])
	rb.entries[i] = ent
}

// remove drops the entry at index i.
func (rb *prefixRIB) remove(i int) {
	rb.entries = append(rb.entries[:i], rb.entries[i+1:]...)
}

// entryBetter mirrors better() over compact entries: higher local-pref,
// then shorter AS path, then lower MED, then lowest neighbor ASN.
func entryBetter(a, b *adjEntry) bool {
	if a.lpref != b.lpref {
		return a.lpref > b.lpref
	}
	if a.plen != b.plen {
		return a.plen < b.plen
	}
	if a.med != b.med {
		return a.med < b.med
	}
	return a.nbr < b.nbr
}
