package bgp

import (
	"net/netip"
	"testing"

	"lifeguard/internal/topo"
)

// TestAnnounceErrContract pins the error cases of the non-panicking API:
// unknown AS, unusable prefixes (the loc-RIB keys by masked IPv4 form), and
// patterns violating the §3.1.1 origin conventions — for Pattern and for
// every PerNeighbor override. A failed call installs nothing.
func TestAnnounceErrContract(t *testing.T) {
	e, _ := newEngine(t, lineTopo(t))
	good := topo.ProductionPrefix(1)
	if err := e.AnnounceErr(1, good, OriginConfig{}); err != nil {
		t.Fatalf("valid announce: %v", err)
	}
	cases := []struct {
		name   string
		asn    topo.ASN
		prefix netip.Prefix
		cfg    OriginConfig
	}{
		{"unknown AS", 99, good, OriginConfig{}},
		{"zero prefix", 1, netip.Prefix{}, OriginConfig{}},
		{"IPv6 prefix", 1, netip.MustParsePrefix("2001:db8::/32"), OriginConfig{}},
		{"host bits set", 1, netip.MustParsePrefix("9.9.9.9/24"), OriginConfig{}},
		{"bad pattern", 1, good, OriginConfig{Pattern: topo.Path{2, 1}}},
		{"bad per-neighbor pattern", 1, good,
			OriginConfig{PerNeighbor: map[topo.ASN]topo.Path{2: {1, 2}}}},
	}
	for _, c := range cases {
		if err := e.AnnounceErr(c.asn, c.prefix, c.cfg); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	converge(t, e)
	if _, ok := e.BestRoute(1, netip.MustParsePrefix("9.9.0.0/24")); ok {
		t.Error("rejected announcement was installed")
	}
}

// TestWithdrawErrContract: an unknown AS is an error (the panicking
// Withdraw used to no-op silently, hiding typos in experiment scripts);
// withdrawing a prefix the AS does not originate stays a harmless no-op.
func TestWithdrawErrContract(t *testing.T) {
	e, _ := newEngine(t, lineTopo(t))
	p := topo.ProductionPrefix(1)
	if err := e.WithdrawErr(99, p); err == nil {
		t.Error("unknown AS: want error")
	}
	if err := e.WithdrawErr(1, p); err != nil {
		t.Errorf("withdrawing a never-announced prefix: %v", err)
	}
	e.Announce(1, p, OriginConfig{})
	converge(t, e)
	if err := e.WithdrawErr(1, p); err != nil {
		t.Fatalf("withdraw: %v", err)
	}
	converge(t, e)
	if _, ok := e.BestRoute(2, p); ok {
		t.Error("route survived withdrawal")
	}
}

// TestAnnounceWithdrawPanicOnError: the convenience wrappers surface every
// AnnounceErr/WithdrawErr failure as a panic.
func TestAnnounceWithdrawPanicOnError(t *testing.T) {
	e, _ := newEngine(t, lineTopo(t))
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("Announce to unknown AS", func() {
		e.Announce(99, topo.ProductionPrefix(1), OriginConfig{})
	})
	mustPanic("Announce with host bits", func() {
		e.Announce(1, netip.MustParsePrefix("9.9.9.9/24"), OriginConfig{})
	})
	mustPanic("Withdraw from unknown AS", func() {
		e.Withdraw(99, topo.ProductionPrefix(1))
	})
}

// TestAnnounceConfigSanitized: the config is deep-copied at the Announce
// boundary, so a caller mutating its maps and slices afterwards cannot
// change what the origin exports.
func TestAnnounceConfigSanitized(t *testing.T) {
	e, _ := newEngine(t, lineTopo(t))
	p := topo.ProductionPrefix(1)
	cfg := OriginConfig{
		Pattern:     topo.Path{1, 9, 1},
		Withhold:    map[topo.ASN]bool{},
		Communities: []Community{42},
	}
	e.Announce(1, p, cfg)
	// Corrupt everything the caller still holds.
	cfg.Pattern[1] = 77
	cfg.Withhold[2] = true
	cfg.Communities[0] = 7
	converge(t, e)
	r, ok := e.BestRoute(2, p)
	if !ok {
		t.Fatal("route missing at AS2 (caller's Withhold mutation leaked in)")
	}
	if !r.Path.Equal(topo.Path{1, 9, 1}) {
		t.Fatalf("exported path %v, want the pre-mutation pattern [1 9 1]", r.Path)
	}
	if len(r.Communities) != 1 || r.Communities[0] != 42 {
		t.Fatalf("exported communities %v, want the pre-mutation [42]", r.Communities)
	}
}
