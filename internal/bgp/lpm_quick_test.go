package bgp

import (
	"math/rand"
	"net/netip"
	"testing"

	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
	"lifeguard/internal/topogen"
)

// bruteLookup is the oracle for Engine.Lookup: a linear longest-match scan
// over the loc-RIB, with none of the index's incremental bookkeeping. The
// scan keeps the strictly longest containing prefix, so map iteration order
// cannot influence the result.
func bruteLookup(s *Speaker, addr netip.Addr) *Route {
	a := addr.Unmap()
	if !a.Is4() {
		return nil
	}
	var bestLen = -1
	var r *Route
	for p, route := range s.best {
		if p.Contains(a) && p.Bits() > bestLen {
			bestLen, r = p.Bits(), route
		}
	}
	return r
}

// addrInside returns a random address covered by p.
func addrInside(p netip.Prefix, rng *rand.Rand) netip.Addr {
	key, _ := v4Key(p.Addr())
	if p.Bits() < 32 {
		key |= rng.Uint32() >> p.Bits()
	}
	return netip.AddrFrom4([4]byte{byte(key >> 24), byte(key >> 16), byte(key >> 8), byte(key)})
}

// TestLPMMatchesBruteForce is a quick-check-style invariant test: under
// seeded randomized origin churn (plain announcements, poisoned patterns,
// withdrawals) over a generated internetwork, every speaker's compiled LPM
// index must agree with a brute-force longest-match over its loc-RIB for
// both covered and uncovered addresses. This is the safety net for the
// incremental insert/remove maintenance in decide: any divergence between
// the trie and the map it indexes shows up here.
func TestLPMMatchesBruteForce(t *testing.T) {
	res, err := topogen.Generate(topogen.Config{Seed: 11, NumTier1: 3, NumTransit: 8, NumStub: 10})
	if err != nil {
		t.Fatal(err)
	}
	e := New(res.Top, simclock.New(), Config{Seed: 11})
	rng := rand.New(rand.NewSource(2439))
	all := res.AllASNs()

	// Candidate (origin, prefix) pairs spanning the full length range,
	// including the /8 and shorter prefixes the pre-LPM lookup missed and
	// a default route. Overlaps across origins are deliberate.
	type cand struct {
		asn    topo.ASN
		prefix netip.Prefix
	}
	var cands []cand
	origins := res.Stubs[:4]
	for _, asn := range origins {
		block := topo.Block(asn)
		host := netip.PrefixFrom(topo.ProductionPrefix(asn).Addr(), 32)
		cands = append(cands,
			cand{asn, block},
			cand{asn, topo.ProductionPrefix(asn)},
			cand{asn, topo.SentinelPrefix(asn)},
			cand{asn, netip.PrefixFrom(block.Addr(), 8).Masked()},
			cand{asn, netip.PrefixFrom(block.Addr(), 6).Masked()},
			cand{asn, host},
		)
	}
	cands = append(cands, cand{origins[0], netip.MustParsePrefix("0.0.0.0/0")})

	check := func(round int) {
		for _, viewer := range all {
			s := e.Speaker(viewer)
			probe := func(addr netip.Addr) {
				want := bruteLookup(s, addr)
				got, ok := e.Lookup(viewer, addr)
				if ok != (want != nil) || got != want {
					t.Fatalf("round %d: AS%d Lookup(%v) = %v, %v; brute force says %v",
						round, viewer, addr, got, ok, want)
				}
			}
			for _, c := range cands {
				probe(c.prefix.Addr())
				probe(addrInside(c.prefix, rng))
			}
			for i := 0; i < 8; i++ {
				u := rng.Uint32()
				probe(netip.AddrFrom4([4]byte{byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u)}))
			}
		}
	}

	const rounds = 60
	for i := 0; i < rounds; i++ {
		c := cands[rng.Intn(len(cands))]
		switch rng.Intn(4) {
		case 0, 1:
			e.Announce(c.asn, c.prefix, OriginConfig{})
		case 2:
			victim := all[rng.Intn(len(all))]
			e.Announce(c.asn, c.prefix, OriginConfig{Pattern: topo.Path{c.asn, victim, c.asn}})
		default:
			e.Withdraw(c.asn, c.prefix)
		}
		if !e.Converge(50_000_000) {
			t.Fatalf("round %d: no convergence", i)
		}
		if i%5 == 4 || i == rounds-1 {
			check(i)
		}
	}
}
