package bgp

import (
	"net/netip"
	"testing"

	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
)

// lineTopo builds stub(1) -> transit(2) -> transit(3) -> stub(4), each AS a
// customer of the next.
func lineTopo(t *testing.T) *topo.Topology {
	t.Helper()
	b := topo.NewBuilder()
	for asn := topo.ASN(1); asn <= 4; asn++ {
		b.AddAS(asn, "")
	}
	b.Provider(1, 2)
	b.Provider(2, 3)
	b.Provider(3, 4)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func newEngine(t *testing.T, top *topo.Topology) (*Engine, *simclock.Scheduler) {
	t.Helper()
	clk := simclock.New()
	return New(top, clk, Config{Seed: 42}), clk
}

func converge(t *testing.T, e *Engine) {
	t.Helper()
	if !e.Converge(5_000_000) {
		t.Fatal("engine did not converge")
	}
}

func TestPropagationAlongLine(t *testing.T) {
	e, _ := newEngine(t, lineTopo(t))
	p := topo.ProductionPrefix(1)
	e.Originate(1, p)
	converge(t, e)
	r, ok := e.BestRoute(4, p)
	if !ok {
		t.Fatal("AS4 has no route")
	}
	if !r.Path.Equal(topo.Path{3, 2, 1}) {
		t.Fatalf("AS4 path = %v, want 3 2 1", r.Path)
	}
	nh, ok := r.NextHop()
	if !ok || nh != 3 {
		t.Fatalf("NextHop = %v, %v", nh, ok)
	}
	// The origin's own route is originated with an empty path.
	ro, _ := e.BestRoute(1, p)
	if !ro.Originated || len(ro.Path) != 0 {
		t.Fatalf("origin route = %+v", ro)
	}
}

func TestCustomerPreferredOverPeerAndProvider(t *testing.T) {
	// AS1 originates. AS4 can learn it from customer 3, peer 2, provider 5.
	// 1 is customer of 2, 3 and 5; 2 peers 4; 3 is customer of 4; 4 is
	// customer of 5.
	b := topo.NewBuilder()
	for asn := topo.ASN(1); asn <= 5; asn++ {
		b.AddAS(asn, "")
	}
	b.Provider(1, 2)
	b.Provider(1, 3)
	b.Provider(1, 5)
	b.Peer(2, 4)
	b.Provider(3, 4)
	b.Provider(4, 5)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := newEngine(t, top)
	p := topo.ProductionPrefix(1)
	e.Originate(1, p)
	converge(t, e)
	r, ok := e.BestRoute(4, p)
	if !ok {
		t.Fatal("AS4 has no route")
	}
	if nh, _ := r.NextHop(); nh != 3 {
		t.Fatalf("AS4 next hop = %d, want customer 3 (path %v)", nh, r.Path)
	}
	if r.LocalPref != prefCustomer {
		t.Fatalf("LocalPref = %d, want %d", r.LocalPref, prefCustomer)
	}
}

func TestValleyFreeExport(t *testing.T) {
	// 1 originates; 2 is 1's peer; 3 is 2's peer; 4 is 2's customer.
	// Peer-learned routes must reach customers (4) but not peers (3).
	b := topo.NewBuilder()
	for asn := topo.ASN(1); asn <= 4; asn++ {
		b.AddAS(asn, "")
	}
	b.Peer(1, 2)
	b.Peer(2, 3)
	b.Provider(4, 2)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := newEngine(t, top)
	p := topo.ProductionPrefix(1)
	e.Originate(1, p)
	converge(t, e)
	if _, ok := e.BestRoute(4, p); !ok {
		t.Fatal("customer 4 should learn peer route")
	}
	if r, ok := e.BestRoute(3, p); ok {
		t.Fatalf("peer 3 should NOT learn peer route, got %v", r.Path)
	}
}

// fig2Topo reproduces the topology of Fig. 2 in the paper.
//
//	O(10) customer of B(20); B customer of A(30) and C(40); C customer of
//	D(50); A and D customers of E(60); F(70) customer of A.
func fig2Topo(t *testing.T) *topo.Topology {
	t.Helper()
	b := topo.NewBuilder()
	for _, asn := range []topo.ASN{10, 20, 30, 40, 50, 60, 70} {
		b.AddAS(asn, "")
	}
	b.Provider(10, 20) // O -> B
	b.Provider(20, 30) // B -> A
	b.Provider(20, 40) // B -> C
	b.Provider(40, 50) // C -> D
	b.Provider(30, 60) // A -> E
	b.Provider(50, 60) // D -> E
	b.Provider(70, 30) // F -> A
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestFig2PoisoningRepairsAndCutsCaptive(t *testing.T) {
	const (
		O = topo.ASN(10)
		B = topo.ASN(20)
		A = topo.ASN(30)
		C = topo.ASN(40)
		D = topo.ASN(50)
		E = topo.ASN(60)
		F = topo.ASN(70)
	)
	top := fig2Topo(t)
	e, _ := newEngine(t, top)
	prod := topo.ProductionPrefix(O)
	sent := topo.SentinelPrefix(O)
	// Baseline: prepended production announcement + unpoisoned sentinel.
	e.Announce(O, prod, OriginConfig{Pattern: topo.Path{O, O, O}})
	e.Announce(O, sent, OriginConfig{Pattern: topo.Path{O, O, O}})
	converge(t, e)

	// Fig 2(a): E routes via A (shorter), F via A, A via B.
	r, _ := e.BestRoute(E, prod)
	if nh, _ := r.NextHop(); nh != A {
		t.Fatalf("pre-poison E next hop = %d, want A (path %v)", nh, r.Path)
	}
	if r, ok := e.BestRoute(F, prod); !ok || r.Path[0] != A {
		t.Fatalf("pre-poison F should route via A, got %v", r)
	}

	// Fig 2(b): poison A.
	e.Announce(O, prod, OriginConfig{Pattern: topo.Path{O, A, O}})
	converge(t, e)

	if _, ok := e.BestRoute(A, prod); ok {
		t.Fatal("A should have rejected the poisoned production route")
	}
	r, ok := e.BestRoute(E, prod)
	if !ok {
		t.Fatal("E lost its route entirely")
	}
	// The poison token A appears in the path, but A must no longer be a
	// forwarding hop: the route now goes E->D->C->B->O.
	if !r.Path.Equal(topo.Path{D, C, B, O, A, O}) {
		t.Fatalf("E path = %v, want D C B O A O", r.Path)
	}
	if nh, _ := r.NextHop(); nh != D {
		t.Fatalf("E next hop = %d, want D", nh)
	}
	if _, ok := e.BestRoute(F, prod); ok {
		t.Fatal("captive F should have no production route")
	}
	// ...but F keeps the unpoisoned sentinel (Backup Property).
	rs, ok := e.BestRoute(F, sent)
	if !ok {
		t.Fatal("F lost the sentinel")
	}
	if rs.Path[0] != A {
		t.Fatalf("F sentinel path = %v, want via A", rs.Path)
	}
	// A also keeps a sentinel route (it can still try to reach O).
	if _, ok := e.BestRoute(A, sent); !ok {
		t.Fatal("A lost the sentinel")
	}

	// Unpoison: everyone reconverges to the original routes.
	e.Announce(O, prod, OriginConfig{Pattern: topo.Path{O, O, O}})
	converge(t, e)
	r, _ = e.BestRoute(E, prod)
	if nh, _ := r.NextHop(); nh != A {
		t.Fatalf("post-unpoison E next hop = %d, want A", nh)
	}
	if _, ok := e.BestRoute(F, prod); !ok {
		t.Fatal("F should regain the production route")
	}
}

func TestPoisonLengthMatchesPrepenedBaseline(t *testing.T) {
	// O-A-O and O-O-O are the same length, so an AS not routing via A
	// keeps its path (just swaps the announcement) without exploring.
	top := fig2Topo(t)
	e, _ := newEngine(t, top)
	prod := topo.ProductionPrefix(10)
	e.Announce(10, prod, OriginConfig{Pattern: topo.Path{10, 10, 10}})
	converge(t, e)
	rB, _ := e.BestRoute(20, prod)
	if len(rB.Path) != 3 {
		t.Fatalf("B baseline path len = %d, want 3", len(rB.Path))
	}
	e.Announce(10, prod, OriginConfig{Pattern: topo.Path{10, 30, 10}})
	converge(t, e)
	rB2, _ := e.BestRoute(20, prod)
	if len(rB2.Path) != 3 || rB2.Path[1] != 30 {
		t.Fatalf("B poisoned path = %v", rB2.Path)
	}
}

func TestMaxOwnASOccursTwoNeedsDoublePoison(t *testing.T) {
	top := fig2Topo(t)
	top.AS(30).MaxOwnASOccurs = 2 // AS286-style remote-site config
	e, _ := newEngine(t, top)
	prod := topo.ProductionPrefix(10)
	e.Announce(10, prod, OriginConfig{Pattern: topo.Path{10, 30, 10}})
	converge(t, e)
	if _, ok := e.BestRoute(30, prod); !ok {
		t.Fatal("single poison should be accepted by MaxOwnASOccurs=2 AS")
	}
	// Double poison works (§7.1).
	e.Announce(10, prod, OriginConfig{Pattern: topo.Path{10, 30, 30, 10}})
	converge(t, e)
	if _, ok := e.BestRoute(30, prod); ok {
		t.Fatal("double poison should be rejected")
	}
}

func TestLoopDetectionDisabledCannotBePoisoned(t *testing.T) {
	top := fig2Topo(t)
	top.AS(30).MaxOwnASOccurs = 0
	e, _ := newEngine(t, top)
	prod := topo.ProductionPrefix(10)
	e.Announce(10, prod, OriginConfig{Pattern: topo.Path{10, 30, 10}})
	converge(t, e)
	if _, ok := e.BestRoute(30, prod); !ok {
		t.Fatal("AS with loop detection disabled should accept its own ASN")
	}
}

func TestCogentStylePeerFilter(t *testing.T) {
	// 1 originates and poisons 4. 2 is 1's provider; 3 is 2's provider;
	// 3 peers with 4. With FilterPeersFromCustomers, 3 rejects the
	// customer-learned route containing its peer 4.
	b := topo.NewBuilder()
	for asn := topo.ASN(1); asn <= 4; asn++ {
		b.AddAS(asn, "")
	}
	b.Provider(1, 2)
	b.Provider(2, 3)
	b.Peer(3, 4)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	top.AS(3).FilterPeersFromCustomers = true
	e, _ := newEngine(t, top)
	p := topo.ProductionPrefix(1)
	e.Announce(1, p, OriginConfig{Pattern: topo.Path{1, 4, 1}})
	converge(t, e)
	if _, ok := e.BestRoute(3, p); ok {
		t.Fatal("Cogent-style AS should reject customer route containing its peer")
	}
	// An unpoisoned announcement passes.
	e.Announce(1, p, OriginConfig{Pattern: topo.Path{1, 1, 1}})
	converge(t, e)
	if _, ok := e.BestRoute(3, p); !ok {
		t.Fatal("unpoisoned route should be accepted")
	}
}

func TestSelectiveAdvertising(t *testing.T) {
	// O(1) has providers 2 and 3; withholding from 3 leaves only the
	// 2-side route at grandparent 4 (provider of both).
	b := topo.NewBuilder()
	for asn := topo.ASN(1); asn <= 4; asn++ {
		b.AddAS(asn, "")
	}
	b.Provider(1, 2)
	b.Provider(1, 3)
	b.Provider(2, 4)
	b.Provider(3, 4)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := newEngine(t, top)
	p := topo.ProductionPrefix(1)
	e.Announce(1, p, OriginConfig{Withhold: map[topo.ASN]bool{3: true}})
	converge(t, e)
	// The withheld provider no longer has the direct customer route; the
	// best it can do is the long way round via its own provider 4 —
	// exactly the traffic shift selective advertising is used for.
	r3, ok := e.BestRoute(3, p)
	if !ok {
		t.Fatal("AS3 should still reach the prefix via AS4")
	}
	if r3.Path[0] != 4 {
		t.Fatalf("AS3 route = %v, want via 4", r3.Path)
	}
	r, ok := e.BestRoute(4, p)
	if !ok || r.Path[0] != 2 {
		t.Fatalf("AS4 route = %v, want via 2", r)
	}
}

func TestSelectivePoisoningFig3(t *testing.T) {
	// O(1) announces unpoisoned via D1(2) and poisons A(4) via D2(3).
	// A receives the poisoned path from the 3 side and the clean path
	// from the 2 side, so A keeps a route but only via the 2 side —
	// traffic shifts off the A–(3-side) link without cutting A off.
	b := topo.NewBuilder()
	for asn := topo.ASN(1); asn <= 5; asn++ {
		b.AddAS(asn, "")
	}
	b.Provider(1, 2) // O -> D1
	b.Provider(1, 3) // O -> D2
	b.Provider(2, 5) // D1 -> B1
	b.Provider(5, 4) // B1 -> A
	b.Provider(3, 4) // D2 -> A (disjoint path)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := newEngine(t, top)
	p := topo.ProductionPrefix(1)
	// Baseline: A prefers the shorter customer path via 3.
	e.Announce(1, p, OriginConfig{})
	converge(t, e)
	r, _ := e.BestRoute(4, p)
	if nh, _ := r.NextHop(); nh != 3 {
		t.Fatalf("baseline A next hop = %d, want 3 (path %v)", nh, r.Path)
	}
	// Selectively poison A on announcements via 3 only.
	e.Announce(1, p, OriginConfig{
		PerNeighbor: map[topo.ASN]topo.Path{3: {1, 4, 1}},
	})
	converge(t, e)
	r, ok := e.BestRoute(4, p)
	if !ok {
		t.Fatal("A should still have a route (selective, not full, poison)")
	}
	if nh, _ := r.NextHop(); nh != 5 {
		t.Fatalf("selectively-poisoned A next hop = %d, want 5 (path %v)", nh, r.Path)
	}
	// D2(3) itself still has its direct customer route.
	r3, ok := e.BestRoute(3, p)
	if !ok || r3.Path[0] != 1 {
		t.Fatalf("D2 route = %v, want direct", r3)
	}
}

func TestCommunityPropagationAndStripping(t *testing.T) {
	top := lineTopo(t) // 1 -> 2 -> 3 -> 4 customer chain
	top.AS(3).StripCommunities = true
	e, _ := newEngine(t, top)
	p := topo.ProductionPrefix(1)
	e.Announce(1, p, OriginConfig{Communities: []Community{0xFFFF0001}})
	converge(t, e)
	r2, _ := e.BestRoute(2, p)
	if len(r2.Communities) != 1 || r2.Communities[0] != 0xFFFF0001 {
		t.Fatalf("AS2 communities = %v", r2.Communities)
	}
	r3, _ := e.BestRoute(3, p)
	if len(r3.Communities) != 1 {
		t.Fatalf("AS3 should still see the community: %v", r3.Communities)
	}
	r4, _ := e.BestRoute(4, p)
	if len(r4.Communities) != 0 {
		t.Fatalf("AS4 should not see the community (3 strips): %v", r4.Communities)
	}
}

func TestWithdrawPropagates(t *testing.T) {
	e, _ := newEngine(t, lineTopo(t))
	p := topo.ProductionPrefix(1)
	e.Originate(1, p)
	converge(t, e)
	if _, ok := e.BestRoute(4, p); !ok {
		t.Fatal("setup: no route at 4")
	}
	e.Withdraw(1, p)
	converge(t, e)
	for asn := topo.ASN(2); asn <= 4; asn++ {
		if _, ok := e.BestRoute(asn, p); ok {
			t.Fatalf("AS%d still has a route after withdrawal", asn)
		}
	}
}

func TestLookupLongestPrefixMatch(t *testing.T) {
	e, _ := newEngine(t, lineTopo(t))
	prod := topo.ProductionPrefix(1) // /24
	sent := topo.SentinelPrefix(1)   // /23
	blk := topo.Block(1)             // /16
	e.Originate(1, blk)
	e.Originate(1, sent)
	e.Originate(1, prod)
	converge(t, e)
	// Production address matches /24 over /23 over /16.
	r, ok := e.Lookup(4, topo.ProductionAddr(1))
	if !ok || r.Prefix != prod {
		t.Fatalf("LPM production = %v", r)
	}
	// Sentinel probe address is outside /24 but inside /23.
	r, ok = e.Lookup(4, topo.SentinelProbeAddr(1))
	if !ok || r.Prefix != sent {
		t.Fatalf("LPM sentinel = %v", r)
	}
	// A router address matches only the block.
	r, ok = e.Lookup(4, topo.RouterAddr(1, 0))
	if !ok || r.Prefix != blk {
		t.Fatalf("LPM block = %v", r)
	}
	if _, ok := e.Lookup(4, netip.MustParseAddr("203.0.113.1")); ok {
		t.Fatal("unknown address should not resolve")
	}
}

func TestSplitHorizonNoEcho(t *testing.T) {
	// Two ASes: after convergence, updates should stop; an echo loop
	// would keep the engine busy forever.
	b := topo.NewBuilder()
	b.AddAS(1, "")
	b.AddAS(2, "")
	b.Peer(1, 2)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := newEngine(t, top)
	e.Originate(1, topo.ProductionPrefix(1))
	converge(t, e)
	if got := e.UpdatesSentBy(2); got != 0 {
		t.Fatalf("AS2 sent %d updates, want 0 (split horizon + no customers)", got)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (int, topo.Path) {
		top := fig2Topo(t)
		clk := simclock.New()
		e := New(top, clk, Config{Seed: 7})
		p := topo.ProductionPrefix(10)
		e.Announce(10, p, OriginConfig{Pattern: topo.Path{10, 10, 10}})
		e.Converge(1_000_000)
		e.Announce(10, p, OriginConfig{Pattern: topo.Path{10, 30, 10}})
		e.Converge(1_000_000)
		total := e.TotalUpdatesSent()
		r, _ := e.BestRoute(60, p)
		return total, r.Path
	}
	t1, p1 := run()
	t2, p2 := run()
	if t1 != t2 || !p1.Equal(p2) {
		t.Fatalf("replay diverged: (%d,%v) vs (%d,%v)", t1, p1, t2, p2)
	}
}

func TestAnnouncePatternValidation(t *testing.T) {
	e, _ := newEngine(t, lineTopo(t))
	p := topo.ProductionPrefix(1)
	for _, bad := range []topo.Path{{2, 1}, {1, 2}, {}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("pattern %v should panic", bad)
				}
			}()
			e.Announce(1, p, OriginConfig{Pattern: bad})
		}()
	}
}

func TestBestChangeHookFires(t *testing.T) {
	top := lineTopo(t)
	clk := simclock.New()
	e := New(top, clk, Config{Seed: 1})
	var events []BestChange
	e.OnBestChange = func(bc BestChange) { events = append(events, bc) }
	p := topo.ProductionPrefix(1)
	e.Originate(1, p)
	e.Converge(1_000_000)
	// 4 ASes each gained a route exactly once.
	if len(events) != 4 {
		t.Fatalf("got %d best-change events, want 4: %+v", len(events), events)
	}
	e.Withdraw(1, p)
	e.Converge(1_000_000)
	last := events[len(events)-1]
	if last.Path != nil {
		t.Fatalf("final event should be a loss, got %+v", last)
	}
}

func TestConvergenceTimeIsPlausible(t *testing.T) {
	top := fig2Topo(t)
	clk := simclock.New()
	e := New(top, clk, Config{Seed: 3})
	p := topo.ProductionPrefix(10)
	e.Announce(10, p, OriginConfig{Pattern: topo.Path{10, 10, 10}})
	e.Converge(1_000_000)
	start := clk.Now()
	e.Announce(10, p, OriginConfig{Pattern: topo.Path{10, 30, 10}})
	e.Converge(1_000_000)
	elapsed := clk.Now() - start
	// Poisoning must settle within minutes (paper: global convergence
	// typically < 200s), and can't be instantaneous since E must explore.
	if elapsed <= 0 || elapsed.Seconds() > 300 {
		t.Fatalf("poison convergence took %v", elapsed)
	}
}
