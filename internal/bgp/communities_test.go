package bgp

import (
	"testing"

	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
)

// commTopo: origin 1 customer of 2; 2 peers 3; 2 customer of 4; 5 customer
// of 2 (so 2 has a customer to export to regardless).
func commTopo(t *testing.T) *topo.Topology {
	t.Helper()
	b := topo.NewBuilder()
	for asn := topo.ASN(1); asn <= 5; asn++ {
		b.AddAS(asn, "")
	}
	b.Provider(1, 2)
	b.Peer(2, 3)
	b.Provider(2, 4)
	b.Provider(5, 2)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func commEngine(t *testing.T, top *topo.Topology) *Engine {
	t.Helper()
	clk := simclock.New()
	return New(top, clk, Config{Seed: 8})
}

const commNoPeers Community = 0x0002_0001 // "2: don't export to peers"

func TestActionNoExportToPeers(t *testing.T) {
	top := commTopo(t)
	e := commEngine(t, top)
	e.SetCommunityAction(2, commNoPeers, ActionNoExportToPeers)
	p := topo.ProductionPrefix(1)
	e.Announce(1, p, OriginConfig{Communities: []Community{commNoPeers}})
	if !e.Converge(5_000_000) {
		t.Fatal("no convergence")
	}
	if _, ok := e.BestRoute(3, p); ok {
		t.Fatal("peer 3 should not receive the tagged route")
	}
	// Customers and providers still do.
	if _, ok := e.BestRoute(4, p); !ok {
		t.Fatal("provider 4 should receive the route")
	}
	if _, ok := e.BestRoute(5, p); !ok {
		t.Fatal("customer 5 should receive the route")
	}
	// Untagged announcements export normally.
	e.Announce(1, p, OriginConfig{})
	e.Converge(5_000_000)
	if _, ok := e.BestRoute(3, p); !ok {
		t.Fatal("untagged route should reach the peer")
	}
}

func TestActionNoExportToProviders(t *testing.T) {
	top := commTopo(t)
	e := commEngine(t, top)
	e.SetCommunityAction(2, commNoPeers, ActionNoExportToProviders)
	p := topo.ProductionPrefix(1)
	e.Announce(1, p, OriginConfig{Communities: []Community{commNoPeers}})
	e.Converge(5_000_000)
	if _, ok := e.BestRoute(4, p); ok {
		t.Fatal("provider 4 should not receive the tagged route")
	}
	if _, ok := e.BestRoute(3, p); !ok {
		t.Fatal("peer 3 should receive the route")
	}
}

func TestActionNoExport(t *testing.T) {
	top := commTopo(t)
	e := commEngine(t, top)
	e.SetCommunityAction(2, commNoPeers, ActionNoExport)
	p := topo.ProductionPrefix(1)
	e.Announce(1, p, OriginConfig{Communities: []Community{commNoPeers}})
	e.Converge(5_000_000)
	for _, asn := range []topo.ASN{3, 4, 5} {
		if _, ok := e.BestRoute(asn, p); ok {
			t.Fatalf("AS%d should not receive a NO_EXPORT route", asn)
		}
	}
	if _, ok := e.BestRoute(2, p); !ok {
		t.Fatal("AS2 itself keeps the route")
	}
}

func TestActionLowerPref(t *testing.T) {
	// Diamond: 1 -> 2 directly and 1 -> 5 -> 2, so AS2 holds two
	// customer routes for the prefix and normally prefers the shorter
	// direct one.
	b := topo.NewBuilder()
	for asn := topo.ASN(1); asn <= 5; asn++ {
		b.AddAS(asn, "")
	}
	b.Provider(1, 2)
	b.Provider(1, 5)
	b.Provider(5, 2)
	b.Provider(3, 2) // extra customer to observe 2's export
	b.Provider(4, 3) // and one below it
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := commEngine(t, top)
	const backup Community = 0x0002_00FF
	e.SetCommunityAction(2, backup, ActionLowerPref)
	p := topo.ProductionPrefix(1)

	// Baseline: 2 prefers the direct (shorter) customer route from 1.
	e.Announce(1, p, OriginConfig{})
	e.Converge(5_000_000)
	r, _ := e.BestRoute(2, p)
	if nh, _ := r.NextHop(); nh != 1 {
		t.Fatalf("baseline next hop = %d, want 1", nh)
	}

	// Tag the announcement as backup on the direct session only (the
	// session-scoped form operators actually use): 2 demotes it below
	// the longer path via 5.
	e.Announce(1, p, OriginConfig{
		PerNeighborCommunities: map[topo.ASN][]Community{2: {backup}},
	})
	e.Converge(5_000_000)
	r, ok := e.BestRoute(2, p)
	if !ok {
		t.Fatal("2 lost the route")
	}
	if nh, _ := r.NextHop(); nh != 5 {
		t.Fatalf("tagged next hop = %d, want 5 (backup demotion)", nh)
	}
}

// TestCommunitiesDoNotCrossTier1s reproduces the §2.3 negative finding: an
// action community aimed at an AS beyond a community-stripping Tier-1 never
// arrives, so remote traffic engineering via communities fails.
func TestCommunitiesDoNotCrossTier1s(t *testing.T) {
	// 1 -> 2 (tier1, strips) -> 3 (defines the action) chain of customers.
	b := topo.NewBuilder()
	for asn := topo.ASN(1); asn <= 3; asn++ {
		b.AddAS(asn, "")
	}
	b.Provider(1, 2)
	b.Provider(2, 3)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	top.AS(2).StripCommunities = true
	e := commEngine(t, top)
	const remote Community = 0x0003_0001
	e.SetCommunityAction(3, remote, ActionNoExport)
	p := topo.ProductionPrefix(1)
	e.Announce(1, p, OriginConfig{Communities: []Community{remote}})
	e.Converge(5_000_000)
	// AS3 never saw the community (stripped at 2), so the action never
	// fired and the route is plain at 3.
	r, ok := e.BestRoute(3, p)
	if !ok {
		t.Fatal("3 should have the route")
	}
	if len(r.Communities) != 0 {
		t.Fatalf("community crossed the stripping Tier-1: %v", r.Communities)
	}
}
