package bgp

import "lifeguard/internal/obs"

// engineObs bundles the engine's metric handles. The handles are fetched
// once at construction; with obs disabled (nil Config.Obs) every handle
// is nil and each instrumentation site costs exactly one branch — the
// determinism-neutrality contract means none of these counters may feed
// back into protocol behaviour.
type engineObs struct {
	updatesSent         *obs.Counter
	updatesReceived     *obs.Counter
	withdrawalsReceived *obs.Counter
	decisionRuns        *obs.Counter
	mraiDeferrals       *obs.Counter
	dampPenalties       *obs.Counter
	dampSuppressions    *obs.Counter
	locRIBRoutes        *obs.Gauge
	lpmNodes            *obs.Gauge
}

// speakerStats buffers one speaker's metric deltas for the duration of a
// barrier window. Workers may not touch the shared obs registry (its
// counters are not the hot path's bottleneck, but racing on them would
// still be a data race); each speaker accumulates locally and the merge
// step folds the deltas in deterministic speaker order.
type speakerStats struct {
	updatesSent         int64
	updatesReceived     int64
	withdrawalsReceived int64
	decisionRuns        int64
	mraiDeferrals       int64
	dampPenalties       int64
	dampSuppressions    int64
	locRIBRoutes        int64
	lpmNodes            int64
}

// flushStats folds a window's buffered deltas into the registry and resets
// the buffer.
func (e *Engine) flushStats(st *speakerStats) {
	if st.updatesSent != 0 {
		e.obs.updatesSent.Add(st.updatesSent)
	}
	if st.updatesReceived != 0 {
		e.obs.updatesReceived.Add(st.updatesReceived)
	}
	if st.withdrawalsReceived != 0 {
		e.obs.withdrawalsReceived.Add(st.withdrawalsReceived)
	}
	if st.decisionRuns != 0 {
		e.obs.decisionRuns.Add(st.decisionRuns)
	}
	if st.mraiDeferrals != 0 {
		e.obs.mraiDeferrals.Add(st.mraiDeferrals)
	}
	if st.dampPenalties != 0 {
		e.obs.dampPenalties.Add(st.dampPenalties)
	}
	if st.dampSuppressions != 0 {
		e.obs.dampSuppressions.Add(st.dampSuppressions)
	}
	if st.locRIBRoutes != 0 {
		e.obs.locRIBRoutes.Add(st.locRIBRoutes)
	}
	if st.lpmNodes != 0 {
		e.obs.lpmNodes.Add(st.lpmNodes)
	}
	*st = speakerStats{}
}

func newEngineObs(reg *obs.Registry) engineObs {
	reg.Describe("lifeguard_bgp_updates_sent_total", "BGP update messages (announcements and withdrawals) sent engine-wide")
	reg.Describe("lifeguard_bgp_updates_received_total", "BGP update messages delivered to speakers")
	reg.Describe("lifeguard_bgp_withdrawals_received_total", "withdrawal messages delivered to speakers")
	reg.Describe("lifeguard_bgp_decision_runs_total", "runs of the per-prefix decision process")
	reg.Describe("lifeguard_bgp_mrai_deferrals_total", "updates batched behind an already-armed MRAI timer")
	reg.Describe("lifeguard_bgp_dampening_penalties_total", "RFC 2439 flap penalties applied")
	reg.Describe("lifeguard_bgp_dampening_suppressions_total", "routes newly suppressed by dampening")
	reg.Describe("lifeguard_bgp_locrib_routes", "selected routes across all loc-RIBs")
	reg.Describe("lifeguard_bgp_lpm_nodes", "live nodes across all compiled LPM tries")
	return engineObs{
		updatesSent:         reg.Counter("lifeguard_bgp_updates_sent_total"),
		updatesReceived:     reg.Counter("lifeguard_bgp_updates_received_total"),
		withdrawalsReceived: reg.Counter("lifeguard_bgp_withdrawals_received_total"),
		decisionRuns:        reg.Counter("lifeguard_bgp_decision_runs_total"),
		mraiDeferrals:       reg.Counter("lifeguard_bgp_mrai_deferrals_total"),
		dampPenalties:       reg.Counter("lifeguard_bgp_dampening_penalties_total"),
		dampSuppressions:    reg.Counter("lifeguard_bgp_dampening_suppressions_total"),
		locRIBRoutes:        reg.Gauge("lifeguard_bgp_locrib_routes"),
		lpmNodes:            reg.Gauge("lifeguard_bgp_lpm_nodes"),
	}
}
