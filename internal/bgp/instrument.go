package bgp

import "lifeguard/internal/obs"

// engineObs bundles the engine's metric handles. The handles are fetched
// once at construction; with obs disabled (nil Config.Obs) every handle
// is nil and each instrumentation site costs exactly one branch — the
// determinism-neutrality contract means none of these counters may feed
// back into protocol behaviour.
type engineObs struct {
	updatesSent         *obs.Counter
	updatesReceived     *obs.Counter
	withdrawalsReceived *obs.Counter
	decisionRuns        *obs.Counter
	mraiDeferrals       *obs.Counter
	dampPenalties       *obs.Counter
	dampSuppressions    *obs.Counter
	locRIBRoutes        *obs.Gauge
	lpmNodes            *obs.Gauge
}

func newEngineObs(reg *obs.Registry) engineObs {
	reg.Describe("lifeguard_bgp_updates_sent_total", "BGP update messages (announcements and withdrawals) sent engine-wide")
	reg.Describe("lifeguard_bgp_updates_received_total", "BGP update messages delivered to speakers")
	reg.Describe("lifeguard_bgp_withdrawals_received_total", "withdrawal messages delivered to speakers")
	reg.Describe("lifeguard_bgp_decision_runs_total", "runs of the per-prefix decision process")
	reg.Describe("lifeguard_bgp_mrai_deferrals_total", "updates batched behind an already-armed MRAI timer")
	reg.Describe("lifeguard_bgp_dampening_penalties_total", "RFC 2439 flap penalties applied")
	reg.Describe("lifeguard_bgp_dampening_suppressions_total", "routes newly suppressed by dampening")
	reg.Describe("lifeguard_bgp_locrib_routes", "selected routes across all loc-RIBs")
	reg.Describe("lifeguard_bgp_lpm_nodes", "live nodes across all compiled LPM tries")
	return engineObs{
		updatesSent:         reg.Counter("lifeguard_bgp_updates_sent_total"),
		updatesReceived:     reg.Counter("lifeguard_bgp_updates_received_total"),
		withdrawalsReceived: reg.Counter("lifeguard_bgp_withdrawals_received_total"),
		decisionRuns:        reg.Counter("lifeguard_bgp_decision_runs_total"),
		mraiDeferrals:       reg.Counter("lifeguard_bgp_mrai_deferrals_total"),
		dampPenalties:       reg.Counter("lifeguard_bgp_dampening_penalties_total"),
		dampSuppressions:    reg.Counter("lifeguard_bgp_dampening_suppressions_total"),
		locRIBRoutes:        reg.Gauge("lifeguard_bgp_locrib_routes"),
		lpmNodes:            reg.Gauge("lifeguard_bgp_lpm_nodes"),
	}
}
