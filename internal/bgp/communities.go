package bgp

import (
	"lifeguard/internal/topo"
)

// Actionable communities (§2.3). Some transit networks define community
// values customers can attach to influence export — e.g. SAVVIS's
// "do not export this route to peers". The paper found them a promising
// but incomplete remediation primitive: they are not standardized, and
// many networks (Tier-1s in particular) do not propagate community values
// they receive, so a remote AS several hops away usually never sees them.

// CommunityAction is what an AS does when it sees one of its own
// action communities on a route.
type CommunityAction int

// Supported community actions.
const (
	// ActionNoExportToPeers stops the AS from exporting the route to its
	// settlement-free peers (it still goes to customers).
	ActionNoExportToPeers CommunityAction = iota + 1
	// ActionNoExportToProviders stops export to the AS's providers.
	ActionNoExportToProviders
	// ActionNoExport stops all re-export: only the AS itself uses the
	// route.
	ActionNoExport
	// ActionLowerPref makes the AS treat the route as a backup (local
	// preference below everything else), the classic "prepend-for-me"
	// community.
	ActionLowerPref
)

// SetCommunityAction registers an action community at asn: whenever a route
// carrying comm is selected by asn, the action applies to asn's handling of
// it. Actions are meaningful only at the AS that defines them; other ASes
// ignore (but may strip) the value.
func (e *Engine) SetCommunityAction(asn topo.ASN, comm Community, action CommunityAction) {
	s := e.speakers[asn]
	if s.commActions == nil {
		s.commActions = make(map[Community]CommunityAction)
	}
	s.commActions[comm] = action
}

// communityAction returns the action a route's communities trigger at this
// speaker (0 when none).
func (s *Speaker) communityAction(comms []Community) CommunityAction {
	if len(s.commActions) == 0 {
		return 0
	}
	for _, c := range comms {
		if a, ok := s.commActions[c]; ok {
			return a
		}
	}
	return 0
}

// blockExport reports whether an action community on the route forbids
// exporting it to a neighbor with the given relationship.
func blockExport(action CommunityAction, relToNeighbor topo.Rel) bool {
	switch action {
	case ActionNoExport:
		return true
	case ActionNoExportToPeers:
		return relToNeighbor == topo.RelPeer
	case ActionNoExportToProviders:
		return relToNeighbor == topo.RelProvider
	default:
		return false
	}
}
