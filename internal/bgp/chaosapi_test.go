package bgp

import (
	"testing"
	"time"

	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
)

func TestOriginsEnumeration(t *testing.T) {
	e, _ := newEngine(t, lineTopo(t))
	p1 := topo.Block(1)
	p2 := topo.ProductionPrefix(1)
	e.Originate(1, p2)
	e.Announce(1, p1, OriginConfig{Pattern: topo.Path{1, 1, 1}})
	converge(t, e)

	got := e.Origins(1)
	if len(got) != 2 {
		t.Fatalf("Origins(1) = %d entries, want 2", len(got))
	}
	// Sorted prefix order, configs round-trip.
	if got[0].Prefix != p1 || got[1].Prefix != p2 {
		t.Fatalf("order = %v, %v", got[0].Prefix, got[1].Prefix)
	}
	if !got[0].Config.Pattern.Equal(topo.Path{1, 1, 1}) {
		t.Fatalf("pattern = %v", got[0].Config.Pattern)
	}
	if got[1].Config.Pattern != nil {
		t.Fatalf("plain origination has pattern %v", got[1].Config.Pattern)
	}

	// The returned config is a deep copy: mutating it must not leak into
	// the installed policy.
	got[0].Config.Pattern[1] = 9
	after := e.Origins(1)
	if !after[0].Config.Pattern.Equal(topo.Path{1, 1, 1}) {
		t.Fatal("Origins aliases the installed config")
	}

	if e.Origins(2) != nil && len(e.Origins(2)) != 0 {
		t.Fatalf("Origins(2) = %v, want empty", e.Origins(2))
	}
	if e.Origins(99) != nil {
		t.Fatal("Origins(unknown) != nil")
	}

	// Withdraw-all then replay from the enumeration restores the same
	// loc-RIBs — the router-crash/restart contract chaos relies on.
	before, _ := e.BestRoute(4, p1)
	for _, o := range e.Origins(1) {
		e.Withdraw(1, o.Prefix)
	}
	converge(t, e)
	if _, ok := e.BestRoute(4, p1); ok {
		t.Fatal("route survives withdraw-all")
	}
	e.Announce(1, p1, OriginConfig{Pattern: topo.Path{1, 1, 1}})
	e.Announce(1, p2, OriginConfig{})
	converge(t, e)
	restored, ok := e.BestRoute(4, p1)
	if !ok || !restored.Path.Equal(before.Path) {
		t.Fatalf("restored path %v, want %v", restored, before)
	}
}

func TestSetLinkExtraDelay(t *testing.T) {
	top := lineTopo(t)

	// Convergence time of a fresh origination with and without an extra
	// delay on the 2–3 link; the slowed run must finish strictly later.
	run := func(extra time.Duration) time.Duration {
		clk := simclock.New()
		e := New(top, clk, Config{Seed: 42})
		if extra > 0 {
			e.SetLinkExtraDelay(2, 3, extra)
		}
		e.Originate(1, topo.ProductionPrefix(1))
		converge(t, e)
		return clk.Now()
	}
	base := run(0)
	slow := run(500 * time.Millisecond)
	if slow <= base {
		t.Fatalf("delayed convergence at %v, baseline %v", slow, base)
	}
	if slow < base+500*time.Millisecond {
		t.Fatalf("delay not applied: %v vs %v", slow, base)
	}

	// Removing the delay restores the exact baseline timeline (the rng
	// stream is untouched by install/remove).
	clk := simclock.New()
	e := New(top, clk, Config{Seed: 42})
	e.SetLinkExtraDelay(2, 3, time.Second)
	e.SetLinkExtraDelay(2, 3, 0)
	if d := e.LinkExtraDelay(2, 3); d != 0 {
		t.Fatalf("LinkExtraDelay = %v after removal", d)
	}
	e.Originate(1, topo.ProductionPrefix(1))
	converge(t, e)
	if clk.Now() != base {
		t.Fatalf("timeline shifted after install+remove: %v vs %v", clk.Now(), base)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("SetLinkExtraDelay on non-adjacent ASes did not panic")
		}
	}()
	e.SetLinkExtraDelay(1, 4, time.Second)
}

// TestSetLinkExtraDelayNegativePanics is the regression test for the old
// "d <= 0 removes the delay" behaviour: a negative duration — always a sign
// bug in the caller's arithmetic, never a removal request — was silently
// accepted. It now panics, matching the non-adjacent case.
func TestSetLinkExtraDelayNegativePanics(t *testing.T) {
	e, _ := newEngine(t, lineTopo(t))
	defer func() {
		if recover() == nil {
			t.Fatal("negative SetLinkExtraDelay did not panic")
		}
	}()
	e.SetLinkExtraDelay(2, 3, -time.Millisecond)
}
