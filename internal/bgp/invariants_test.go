package bgp

import (
	"math/rand"
	"testing"

	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
)

// randTopoB builds a random provider-tree-plus-peering internetwork.
func randTopoB(t *testing.T, rng *rand.Rand, n int) *topo.Topology {
	t.Helper()
	b := topo.NewBuilder()
	for i := 1; i <= n; i++ {
		b.AddAS(topo.ASN(i), "")
	}
	for i := 2; i <= n; i++ {
		b.Provider(topo.ASN(i), topo.ASN(1+rng.Intn(i-1)))
	}
	for k := 0; k < n/2; k++ {
		a := topo.ASN(1 + rng.Intn(n))
		c := topo.ASN(1 + rng.Intn(n))
		if a != c && !b.Related(a, c) {
			b.Peer(a, c)
		}
	}
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return top
}

// pathIsValleyFree verifies Gao–Rexford validity of a RIB path as seen by
// the holder: walking from the holder toward the origin, once the path
// goes "downhill" (provider→customer) or sideways (peer), it must never go
// up or sideways again. Origin prepend patterns (repeats of the origin and
// poison tokens) are excluded by trimming at the first origin occurrence.
func pathIsValleyFree(top *topo.Topology, holder topo.ASN, p topo.Path) bool {
	if len(p) == 0 {
		return true
	}
	origin := p[len(p)-1]
	// Trim the origin's announcement pattern suffix.
	trimmed := topo.Path{}
	for _, a := range p {
		if a == origin {
			break
		}
		trimmed = append(trimmed, a)
	}
	full := append(topo.Path{holder}, trimmed...)
	full = append(full, origin)
	// Classify each edge walking origin→holder as an export decision:
	// the route moves origin → ... → holder, so consider edges from the
	// origin side. Equivalent: walking holder→origin must look like
	// uphill* peer? downhill*.
	wentDownOrSideways := false
	for i := 0; i+1 < len(full); i++ {
		from, to := full[i], full[i+1] // toward the origin
		rel := top.Rel(from, to)
		switch rel {
		case topo.RelCustomer:
			// from's customer carries us toward origin: downhill seen
			// from traffic's perspective (traffic flows holder→origin
			// along this path; ok). Classify on the reverse direction:
			// route was exported customer→provider, i.e. uphill.
			wentDownOrSideways = true
		case topo.RelPeer:
			if wentDownOrSideways {
				return false // second non-up move after going down
			}
			wentDownOrSideways = true
		case topo.RelProvider:
			if wentDownOrSideways {
				return false // up after down: a valley
			}
		default:
			return false // non-adjacent hop on path
		}
	}
	return true
}

// TestInvariantValleyFreeAndLoopFree: after convergence on random
// topologies, every selected route must be loop-free and valley-free, and
// its first hop must be an actual neighbor.
func TestInvariantValleyFreeAndLoopFree(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		n := 12 + rng.Intn(25)
		top := randTopoB(t, rng, n)
		origin := topo.ASN(1 + rng.Intn(n))
		prefix := topo.ProductionPrefix(origin)
		clk := simclock.New()
		e := New(top, clk, Config{Seed: int64(trial)})
		e.Originate(origin, prefix)
		if !e.Converge(20_000_000) {
			t.Fatal("no convergence")
		}
		for _, asn := range top.ASNs() {
			r, ok := e.BestRoute(asn, prefix)
			if !ok || r.Originated {
				continue
			}
			// Loop freedom: the holder must not appear in its own path.
			if r.Path.Contains(asn) {
				t.Fatalf("trial %d: AS %d holds looped path %v", trial, asn, r.Path)
			}
			// Next hop adjacency.
			nh, _ := r.NextHop()
			if !top.Adjacent(asn, nh) {
				t.Fatalf("trial %d: AS %d next hop %d not adjacent", trial, asn, nh)
			}
			// No duplicate transit ASes (before the origin pattern).
			seen := map[topo.ASN]bool{}
			for _, a := range r.Path {
				if a == origin {
					break
				}
				if seen[a] {
					t.Fatalf("trial %d: duplicate transit %d in %v", trial, a, r.Path)
				}
				seen[a] = true
			}
			if !pathIsValleyFree(top, asn, r.Path) {
				t.Fatalf("trial %d: AS %d holds valley path %v", trial, asn, r.Path)
			}
		}
	}
}

// TestInvariantGaoRexfordPreference: no AS may select a peer/provider route
// when a customer route for the prefix exists in its adj-RIB-in.
func TestInvariantGaoRexfordPreference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		n := 12 + rng.Intn(20)
		top := randTopoB(t, rng, n)
		origin := topo.ASN(1 + rng.Intn(n))
		prefix := topo.ProductionPrefix(origin)
		clk := simclock.New()
		e := New(top, clk, Config{Seed: int64(trial * 3)})
		e.Originate(origin, prefix)
		if !e.Converge(20_000_000) {
			t.Fatal("no convergence")
		}
		for _, asn := range top.ASNs() {
			s := e.Speaker(asn)
			best, ok := s.Best(prefix)
			if !ok || best.Originated {
				continue
			}
			hasCustomer := false
			for _, r := range s.AdjIn(prefix) {
				if r.Rel == topo.RelCustomer {
					hasCustomer = true
				}
			}
			if hasCustomer && best.Rel != topo.RelCustomer {
				t.Fatalf("trial %d: AS %d selected %v route despite customer alternative",
					trial, asn, best.Rel)
			}
		}
	}
}

// TestInvariantWithdrawLeavesNoState: announce, converge, withdraw,
// converge — every speaker must end with no route and no adj-RIB-in entry.
func TestInvariantWithdrawLeavesNoState(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 6; trial++ {
		n := 10 + rng.Intn(20)
		top := randTopoB(t, rng, n)
		origin := topo.ASN(1 + rng.Intn(n))
		prefix := topo.ProductionPrefix(origin)
		clk := simclock.New()
		e := New(top, clk, Config{Seed: int64(trial)})
		e.Originate(origin, prefix)
		e.Converge(20_000_000)
		e.Withdraw(origin, prefix)
		if !e.Converge(20_000_000) {
			t.Fatal("no convergence after withdraw")
		}
		for _, asn := range top.ASNs() {
			if _, ok := e.BestRoute(asn, prefix); ok {
				t.Fatalf("trial %d: AS %d retains route after withdrawal", trial, asn)
			}
			if in := e.Speaker(asn).AdjIn(prefix); len(in) != 0 {
				t.Fatalf("trial %d: AS %d retains adj-RIB-in %v", trial, asn, in)
			}
		}
	}
}

// TestInvariantPoisonUnpoisonRoundTrip: poisoning then unpoisoning must
// restore exactly the pre-poison routing state at every AS.
func TestInvariantPoisonUnpoisonRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 6; trial++ {
		n := 12 + rng.Intn(20)
		top := randTopoB(t, rng, n)
		origin := topo.ASN(1 + rng.Intn(n))
		var victim topo.ASN
		for {
			victim = topo.ASN(1 + rng.Intn(n))
			if victim != origin {
				break
			}
		}
		prefix := topo.ProductionPrefix(origin)
		clk := simclock.New()
		e := New(top, clk, Config{Seed: int64(trial)})
		baseline := topo.Path{origin, origin, origin}
		e.Announce(origin, prefix, OriginConfig{Pattern: baseline})
		e.Converge(20_000_000)

		before := map[topo.ASN]topo.Path{}
		for _, asn := range top.ASNs() {
			if r, ok := e.BestRoute(asn, prefix); ok {
				before[asn] = r.Path.Clone()
			}
		}
		e.Announce(origin, prefix, OriginConfig{Pattern: topo.Path{origin, victim, origin}})
		e.Converge(20_000_000)
		e.Announce(origin, prefix, OriginConfig{Pattern: baseline})
		if !e.Converge(20_000_000) {
			t.Fatal("no convergence")
		}
		for _, asn := range top.ASNs() {
			r, ok := e.BestRoute(asn, prefix)
			want, had := before[asn]
			if had != ok {
				t.Fatalf("trial %d: AS %d existence changed (%v -> %v)", trial, asn, had, ok)
			}
			if ok && !r.Path.Equal(want) {
				t.Fatalf("trial %d: AS %d path %v != pre-poison %v", trial, asn, r.Path, want)
			}
		}
	}
}

// TestInvariantForwardingMatchesControlPlane is covered at router level in
// the dataplane package; here we check the AS-level agreement: walking
// next hops from any AS reaches the origin in exactly len(transit path)+1
// AS visits.
func TestInvariantForwardingMatchesControlPlane(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	top := randTopoB(t, rng, 25)
	origin := topo.ASN(3)
	prefix := topo.ProductionPrefix(origin)
	clk := simclock.New()
	e := New(top, clk, Config{Seed: 4})
	e.Originate(origin, prefix)
	e.Converge(20_000_000)
	for _, asn := range top.ASNs() {
		r, ok := e.BestRoute(asn, prefix)
		if !ok || r.Originated {
			continue
		}
		cur := asn
		visits := 0
		for cur != origin {
			rr, ok := e.BestRoute(cur, prefix)
			if !ok {
				t.Fatalf("AS %d: next hop chain broke at %d", asn, cur)
			}
			if rr.Originated {
				break
			}
			nh, _ := rr.NextHop()
			cur = nh
			visits++
			if visits > top.NumASes() {
				t.Fatalf("AS %d: forwarding loop", asn)
			}
		}
		// The walk length must match the RIB path's transit length.
		want := 0
		for _, a := range r.Path {
			if a == origin {
				break
			}
			want++
		}
		if visits != want+1 && visits != want {
			t.Fatalf("AS %d: walked %d hops, RIB path %v", asn, visits, r.Path)
		}
	}
}
