package bgp

import (
	"fmt"
	"net/netip"

	"lifeguard/internal/topo"
)

// Adjacency (session) failures. Unlike the silent data-plane failures
// LIFEGUARD exists for, a failed BGP session is *visible* to the protocol:
// both sides withdraw everything learned over it and the Internet
// re-converges on its own. These produce the short, self-healing outages
// that dominate Fig. 1's event count (while contributing little downtime) —
// exactly the class the §4.2 maturity threshold avoids poisoning.

// SetAdjacencyDown fails or restores the BGP session between adjacent ASes
// a and b. On failure each side drops every route learned from the other
// and stops exporting to it; on restore each side re-advertises its full
// table. The topology relationship itself is untouched.
//
// Note this affects only the control plane; callers modelling a physical
// link cut should also install the matching data-plane rules (the facade's
// Network.FailAdjacency does both).
func (e *Engine) SetAdjacencyDown(a, b topo.ASN, down bool) {
	if !e.top.Adjacent(a, b) {
		panic(fmt.Sprintf("bgp: SetAdjacencyDown(%d, %d): not adjacent", a, b))
	}
	e.speakers[a].setNeighborDown(b, down)
	e.speakers[b].setNeighborDown(a, down)
}

// AdjacencyDown reports whether the session between a and b is failed.
func (e *Engine) AdjacencyDown(a, b topo.ASN) bool {
	return e.speakers[a].neighborDown(b)
}

func (s *Speaker) setNeighborDown(n topo.ASN, down bool) {
	i := s.nbrIndex(n)
	st := &s.out[i]
	if st.down == down {
		return
	}
	st.down = down
	if down {
		// Session loss: everything learned from n evaporates at once,
		// and our send state toward n resets (no withdrawals cross a
		// dead session).
		st.pending = nil
		clear(st.lastAdv)
		var changed []netip.Prefix
		for prefix, rb := range s.adjIn {
			if idx := rb.find(n); idx >= 0 {
				rb.remove(idx)
				changed = append(changed, prefix)
			}
		}
		// Re-decide in prefix order, not adjIn iteration order, so the
		// resulting update schedule is identical across runs.
		sortPrefixes(changed)
		for _, prefix := range changed {
			if s.decide(prefix) {
				s.markAllPending(prefix)
			}
		}
		return
	}
	// Session re-established: advertise the full table to n.
	for prefix := range s.best {
		st.markPending(prefix)
	}
	for prefix := range s.origin {
		st.markPending(prefix)
	}
	s.kick(i)
}
