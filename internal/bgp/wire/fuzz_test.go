package wire

import (
	"math/rand"
	"net/netip"
	"testing"
)

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

// TestUnmarshalNeverPanics feeds Unmarshal random byte soup — including
// soup with a valid header grafted on — and requires graceful errors, never
// panics. A codec that crashes on malformed input is a remote DoS in a
// session that accepts arbitrary peers.
func TestUnmarshalNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	validHeader := func(msgType byte, length int, body []byte) []byte {
		b := make([]byte, 0, HeaderLen+len(body))
		for i := 0; i < 16; i++ {
			b = append(b, 0xFF)
		}
		b = append(b, byte(length>>8), byte(length), msgType)
		return append(b, body...)
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Unmarshal panicked: %v", r)
		}
	}()
	for trial := 0; trial < 20000; trial++ {
		var input []byte
		switch trial % 3 {
		case 0: // pure noise
			input = make([]byte, rng.Intn(128))
			rng.Read(input)
		case 1: // valid marker, random rest
			body := make([]byte, rng.Intn(96))
			rng.Read(body)
			input = validHeader(byte(rng.Intn(6)), HeaderLen+len(body), body)
		case 2: // valid marker, length field lies
			body := make([]byte, rng.Intn(64))
			rng.Read(body)
			input = validHeader(byte(1+rng.Intn(4)), rng.Intn(8192), body)
		}
		_, _, _ = Unmarshal(input)
	}
}

// FuzzUnmarshal is the native fuzz entry point (go test -fuzz=FuzzUnmarshal
// ./internal/bgp/wire). The seed corpus covers each message type.
func FuzzUnmarshal(f *testing.F) {
	for _, m := range []Message{
		Keepalive{},
		Notification{Code: NotifCease},
		Open{AS: 1, HoldTime: 90, BGPID: mustAddr("10.0.0.1")},
	} {
		b, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := Unmarshal(data)
		if err == nil {
			if n <= 0 || n > len(data) {
				t.Fatalf("consumed %d of %d", n, len(data))
			}
			// Whatever parsed must re-marshal without error.
			if _, err := Marshal(m); err != nil {
				t.Fatalf("re-marshal of parsed message failed: %v", err)
			}
		}
	})
}
