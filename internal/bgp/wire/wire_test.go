package wire

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	b, err := Marshal(m)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, n, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d of %d bytes", n, len(b))
	}
	return got
}

func TestKeepaliveRoundTrip(t *testing.T) {
	got := roundTrip(t, Keepalive{})
	if _, ok := got.(Keepalive); !ok {
		t.Fatalf("got %T", got)
	}
	b, _ := Marshal(Keepalive{})
	if len(b) != HeaderLen {
		t.Fatalf("keepalive length = %d, want %d", len(b), HeaderLen)
	}
}

func TestOpenRoundTrip(t *testing.T) {
	in := Open{
		AS:       64512,
		HoldTime: 90,
		BGPID:    netip.MustParseAddr("10.0.0.1"),
		Capabilities: []Capability{
			{Code: 1, Value: []byte{0, 1, 0, 1}}, // MP: ipv4 unicast
			{Code: 2},                            // route refresh
		},
	}
	got := roundTrip(t, in).(Open)
	if got.Version != 4 {
		t.Fatalf("version = %d", got.Version)
	}
	if got.AS != in.AS || got.HoldTime != in.HoldTime || got.BGPID != in.BGPID {
		t.Fatalf("got %+v", got)
	}
	if len(got.Capabilities) != 2 || got.Capabilities[0].Code != 1 ||
		!bytes.Equal(got.Capabilities[0].Value, in.Capabilities[0].Value) {
		t.Fatalf("capabilities = %+v", got.Capabilities)
	}
}

func TestOpenNoCapabilities(t *testing.T) {
	in := Open{AS: 1, HoldTime: 180, BGPID: netip.MustParseAddr("192.0.2.1")}
	got := roundTrip(t, in).(Open)
	if len(got.Capabilities) != 0 {
		t.Fatalf("capabilities = %+v", got.Capabilities)
	}
}

func TestUpdateRoundTripPoisonedAnnouncement(t *testing.T) {
	// The exact shape LIFEGUARD emits: production /24 announced with the
	// poisoned path O-A-O.
	in := Update{
		Origin:      OriginIGP,
		ASPath:      []uint16{64512, 3356, 64512},
		NextHop:     netip.MustParseAddr("198.51.100.1"),
		Communities: []uint32{0xFDE80001},
		NLRI:        []netip.Prefix{netip.MustParsePrefix("184.164.240.0/24")},
	}
	got := roundTrip(t, in).(Update)
	if len(got.ASPath) != 3 || got.ASPath[1] != 3356 {
		t.Fatalf("AS path = %v", got.ASPath)
	}
	if got.NextHop != in.NextHop {
		t.Fatalf("next hop = %v", got.NextHop)
	}
	if len(got.NLRI) != 1 || got.NLRI[0] != in.NLRI[0] {
		t.Fatalf("nlri = %v", got.NLRI)
	}
	if len(got.Communities) != 1 || got.Communities[0] != 0xFDE80001 {
		t.Fatalf("communities = %v", got.Communities)
	}
	if got.HasMED || got.HasLocal {
		t.Fatal("phantom optional attributes")
	}
}

func TestUpdateWithdrawOnly(t *testing.T) {
	in := Update{Withdrawn: []netip.Prefix{
		netip.MustParsePrefix("10.1.0.0/16"),
		netip.MustParsePrefix("10.2.3.0/24"),
	}}
	got := roundTrip(t, in).(Update)
	if len(got.Withdrawn) != 2 || got.Withdrawn[1] != in.Withdrawn[1] {
		t.Fatalf("withdrawn = %v", got.Withdrawn)
	}
	if len(got.NLRI) != 0 || len(got.ASPath) != 0 {
		t.Fatalf("unexpected announce content: %+v", got)
	}
}

func TestUpdateMEDAndLocalPref(t *testing.T) {
	in := Update{
		ASPath:    []uint16{1},
		NextHop:   netip.MustParseAddr("10.0.0.9"),
		MED:       77,
		HasMED:    true,
		LocalPref: 300,
		HasLocal:  true,
		NLRI:      []netip.Prefix{netip.MustParsePrefix("192.0.2.0/25")},
	}
	got := roundTrip(t, in).(Update)
	if !got.HasMED || got.MED != 77 || !got.HasLocal || got.LocalPref != 300 {
		t.Fatalf("got %+v", got)
	}
}

func TestNLRIOddLengths(t *testing.T) {
	// Prefix lengths that don't fall on octet boundaries must survive.
	for _, s := range []string{"10.0.0.0/8", "10.128.0.0/9", "10.32.0.0/11", "192.0.2.128/25", "203.0.113.7/32", "0.0.0.0/0"} {
		p := netip.MustParsePrefix(s)
		in := Update{ASPath: []uint16{1}, NextHop: netip.MustParseAddr("10.0.0.1"), NLRI: []netip.Prefix{p}}
		got := roundTrip(t, in).(Update)
		if got.NLRI[0] != p {
			t.Fatalf("prefix %v became %v", p, got.NLRI[0])
		}
	}
}

func TestNotificationRoundTripAndError(t *testing.T) {
	in := Notification{Code: NotifHoldTimer, Subcode: 0, Data: []byte("x")}
	got := roundTrip(t, in).(Notification)
	if got.Code != NotifHoldTimer || !bytes.Equal(got.Data, []byte("x")) {
		t.Fatalf("got %+v", got)
	}
	if got.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	ka, _ := Marshal(Keepalive{})

	bad := append([]byte(nil), ka...)
	bad[0] = 0
	if _, _, err := Unmarshal(bad); err != ErrBadMarker {
		t.Fatalf("marker: %v", err)
	}

	bad = append([]byte(nil), ka...)
	bad[17] = 5 // length 5 < header
	if _, _, err := Unmarshal(bad); err != ErrBadLength {
		t.Fatalf("length: %v", err)
	}

	if _, _, err := Unmarshal(ka[:10]); err != ErrTruncated {
		t.Fatalf("truncated: %v", err)
	}

	bad = append([]byte(nil), ka...)
	bad[18] = 9
	if _, _, err := Unmarshal(bad); err == nil {
		t.Fatal("bad type accepted")
	}

	// Keepalive with a body.
	bad, _ = Marshal(Keepalive{})
	bad = append(bad, 0)
	bad[17] = byte(len(bad))
	if _, _, err := Unmarshal(bad); err == nil {
		t.Fatal("keepalive body accepted")
	}
}

func TestUnmarshalStreamFraming(t *testing.T) {
	// Two messages back to back: Unmarshal must report the right consume
	// count so a reader can iterate.
	m1, _ := Marshal(Keepalive{})
	m2, _ := Marshal(Notification{Code: NotifCease})
	stream := append(append([]byte(nil), m1...), m2...)
	got1, n1, err := Unmarshal(stream)
	if err != nil || n1 != len(m1) {
		t.Fatalf("first: %v %d", err, n1)
	}
	if _, ok := got1.(Keepalive); !ok {
		t.Fatalf("first type %T", got1)
	}
	got2, n2, err := Unmarshal(stream[n1:])
	if err != nil || n2 != len(m2) {
		t.Fatalf("second: %v %d", err, n2)
	}
	if nt, ok := got2.(Notification); !ok || nt.Code != NotifCease {
		t.Fatalf("second = %+v", got2)
	}
}

// Property: random updates survive a marshal/unmarshal round trip.
func TestUpdateRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		in := Update{
			Origin:  byte(rng.Intn(3)),
			NextHop: netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), 1, 1}),
		}
		for i, n := 0, rng.Intn(6)+1; i < n; i++ {
			in.ASPath = append(in.ASPath, uint16(rng.Intn(65535)+1))
		}
		for i, n := 0, rng.Intn(4)+1; i < n; i++ {
			bits := rng.Intn(25) + 8
			addr := netip.AddrFrom4([4]byte{byte(rng.Intn(223) + 1), byte(rng.Intn(256)), byte(rng.Intn(256)), 0})
			in.NLRI = append(in.NLRI, netip.PrefixFrom(addr, bits).Masked())
		}
		for i, n := 0, rng.Intn(3); i < n; i++ {
			in.Communities = append(in.Communities, rng.Uint32())
		}
		got := roundTrip(t, in).(Update)
		if len(got.ASPath) != len(in.ASPath) || len(got.NLRI) != len(in.NLRI) {
			return false
		}
		for i := range in.ASPath {
			if got.ASPath[i] != in.ASPath[i] {
				return false
			}
		}
		for i := range in.NLRI {
			if got.NLRI[i] != in.NLRI[i] {
				return false
			}
		}
		for i := range in.Communities {
			if got.Communities[i] != in.Communities[i] {
				return false
			}
		}
		return got.NextHop == in.NextHop && got.Origin == in.Origin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalRejectsOversized(t *testing.T) {
	u := Update{ASPath: []uint16{1}, NextHop: netip.MustParseAddr("10.0.0.1")}
	for i := 0; i < 1200; i++ {
		u.NLRI = append(u.NLRI, netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24))
	}
	if _, err := Marshal(u); err != ErrMsgTooLarge {
		t.Fatalf("err = %v, want ErrMsgTooLarge", err)
	}
}

func TestMarshalRejectsNonV4(t *testing.T) {
	u := Update{ASPath: []uint16{1}, NextHop: netip.MustParseAddr("::1"),
		NLRI: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")}}
	if _, err := Marshal(u); err == nil {
		t.Fatal("v6 next hop accepted")
	}
	o := Open{BGPID: netip.MustParseAddr("::1")}
	if _, err := Marshal(o); err == nil {
		t.Fatal("v6 BGP ID accepted")
	}
}
