// Package wire implements a BGP-4 (RFC 4271) message codec for the subset
// LIFEGUARD needs to speak to real routers: OPEN (with capabilities),
// UPDATE (ORIGIN / AS_PATH / NEXT_HOP / MED / LOCAL_PREF / COMMUNITIES and
// IPv4 NLRI), KEEPALIVE, and NOTIFICATION. The remediation engine's crafted
// announcements — prepended baselines, poisons, selective per-neighbor
// patterns — serialize through this package onto a TCP session.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Message types (RFC 4271 §4.1).
const (
	TypeOpen         = 1
	TypeUpdate       = 2
	TypeNotification = 3
	TypeKeepalive    = 4
)

// Protocol limits.
const (
	HeaderLen  = 19
	MaxMsgLen  = 4096
	markerByte = 0xFF
)

// Common errors.
var (
	ErrBadMarker   = errors.New("wire: header marker is not all-ones")
	ErrBadLength   = errors.New("wire: message length out of bounds")
	ErrTruncated   = errors.New("wire: message truncated")
	ErrBadType     = errors.New("wire: unknown message type")
	ErrMsgTooLarge = errors.New("wire: message exceeds 4096 bytes")
)

// Message is any BGP message body.
type Message interface {
	// Type returns the RFC 4271 message type code.
	Type() byte
	// marshalBody appends the body (everything after the header).
	marshalBody(dst []byte) ([]byte, error)
}

// Marshal serializes a message with its 19-byte header.
func Marshal(m Message) ([]byte, error) {
	buf := make([]byte, HeaderLen, 64)
	for i := 0; i < 16; i++ {
		buf[i] = markerByte
	}
	buf[18] = m.Type()
	buf, err := m.marshalBody(buf)
	if err != nil {
		return nil, err
	}
	if len(buf) > MaxMsgLen {
		return nil, ErrMsgTooLarge
	}
	binary.BigEndian.PutUint16(buf[16:18], uint16(len(buf)))
	return buf, nil
}

// Unmarshal parses one complete message (header included). It returns the
// parsed message and the total length consumed.
func Unmarshal(b []byte) (Message, int, error) {
	if len(b) < HeaderLen {
		return nil, 0, ErrTruncated
	}
	for i := 0; i < 16; i++ {
		if b[i] != markerByte {
			return nil, 0, ErrBadMarker
		}
	}
	length := int(binary.BigEndian.Uint16(b[16:18]))
	if length < HeaderLen || length > MaxMsgLen {
		return nil, 0, ErrBadLength
	}
	if len(b) < length {
		return nil, 0, ErrTruncated
	}
	body := b[HeaderLen:length]
	var (
		m   Message
		err error
	)
	switch b[18] {
	case TypeOpen:
		m, err = unmarshalOpen(body)
	case TypeUpdate:
		m, err = unmarshalUpdate(body)
	case TypeNotification:
		m, err = unmarshalNotification(body)
	case TypeKeepalive:
		if len(body) != 0 {
			err = fmt.Errorf("wire: keepalive with %d body bytes", len(body))
		} else {
			m = Keepalive{}
		}
	default:
		err = fmt.Errorf("%w: %d", ErrBadType, b[18])
	}
	if err != nil {
		return nil, 0, err
	}
	return m, length, nil
}

// --- OPEN ---------------------------------------------------------------

// Capability is one BGP capability advertised in OPEN (RFC 5492).
type Capability struct {
	Code  byte
	Value []byte
}

// Open is the OPEN message.
type Open struct {
	Version      byte // always 4
	AS           uint16
	HoldTime     uint16
	BGPID        netip.Addr // 4-byte router ID
	Capabilities []Capability
}

// Type implements Message.
func (Open) Type() byte { return TypeOpen }

func (o Open) marshalBody(dst []byte) ([]byte, error) {
	v := o.Version
	if v == 0 {
		v = 4
	}
	if !o.BGPID.Is4() {
		return nil, fmt.Errorf("wire: OPEN BGP identifier %v is not IPv4", o.BGPID)
	}
	dst = append(dst, v)
	dst = binary.BigEndian.AppendUint16(dst, o.AS)
	dst = binary.BigEndian.AppendUint16(dst, o.HoldTime)
	id := o.BGPID.As4()
	dst = append(dst, id[:]...)
	// Optional parameters: one parameter of type 2 (capabilities) when any
	// capabilities are present.
	if len(o.Capabilities) == 0 {
		return append(dst, 0), nil
	}
	var caps []byte
	for _, c := range o.Capabilities {
		if len(c.Value) > 255 {
			return nil, fmt.Errorf("wire: capability %d value too long", c.Code)
		}
		caps = append(caps, c.Code, byte(len(c.Value)))
		caps = append(caps, c.Value...)
	}
	if len(caps) > 253 {
		return nil, errors.New("wire: capabilities exceed optional parameter size")
	}
	dst = append(dst, byte(len(caps)+2), 2, byte(len(caps)))
	return append(dst, caps...), nil
}

func unmarshalOpen(b []byte) (Open, error) {
	var o Open
	if len(b) < 10 {
		return o, ErrTruncated
	}
	o.Version = b[0]
	o.AS = binary.BigEndian.Uint16(b[1:3])
	o.HoldTime = binary.BigEndian.Uint16(b[3:5])
	o.BGPID = netip.AddrFrom4([4]byte(b[5:9]))
	optLen := int(b[9])
	rest := b[10:]
	if len(rest) != optLen {
		return o, fmt.Errorf("wire: OPEN optional parameter length %d vs %d bytes", optLen, len(rest))
	}
	for len(rest) > 0 {
		if len(rest) < 2 {
			return o, ErrTruncated
		}
		ptype, plen := rest[0], int(rest[1])
		if len(rest) < 2+plen {
			return o, ErrTruncated
		}
		pval := rest[2 : 2+plen]
		rest = rest[2+plen:]
		if ptype != 2 {
			continue // ignore non-capability parameters
		}
		for len(pval) > 0 {
			if len(pval) < 2 || len(pval) < 2+int(pval[1]) {
				return o, ErrTruncated
			}
			o.Capabilities = append(o.Capabilities, Capability{
				Code:  pval[0],
				Value: append([]byte(nil), pval[2:2+int(pval[1])]...),
			})
			pval = pval[2+int(pval[1]):]
		}
	}
	return o, nil
}

// --- UPDATE --------------------------------------------------------------

// Path attribute type codes.
const (
	AttrOrigin      = 1
	AttrASPath      = 2
	AttrNextHop     = 3
	AttrMED         = 4
	AttrLocalPref   = 5
	AttrCommunities = 8
)

// ORIGIN values.
const (
	OriginIGP        = 0
	OriginEGP        = 1
	OriginIncomplete = 2
)

// Update is the UPDATE message: withdrawals plus one set of attributes
// shared by all announced NLRI.
type Update struct {
	Withdrawn []netip.Prefix

	Origin      byte
	ASPath      []uint16 // AS_SEQUENCE, leftmost first
	NextHop     netip.Addr
	MED         uint32
	HasMED      bool
	LocalPref   uint32
	HasLocal    bool
	Communities []uint32

	NLRI []netip.Prefix
}

// Type implements Message.
func (Update) Type() byte { return TypeUpdate }

func appendNLRI(dst []byte, prefixes []netip.Prefix) ([]byte, error) {
	for _, p := range prefixes {
		if !p.Addr().Is4() {
			return nil, fmt.Errorf("wire: non-IPv4 prefix %v", p)
		}
		bits := p.Bits()
		dst = append(dst, byte(bits))
		a := p.Masked().Addr().As4()
		dst = append(dst, a[:(bits+7)/8]...)
	}
	return dst, nil
}

func parseNLRI(b []byte) ([]netip.Prefix, error) {
	var out []netip.Prefix
	for len(b) > 0 {
		bits := int(b[0])
		if bits > 32 {
			return nil, fmt.Errorf("wire: NLRI prefix length %d", bits)
		}
		n := (bits + 7) / 8
		if len(b) < 1+n {
			return nil, ErrTruncated
		}
		var a [4]byte
		copy(a[:], b[1:1+n])
		out = append(out, netip.PrefixFrom(netip.AddrFrom4(a), bits))
		b = b[1+n:]
	}
	return out, nil
}

// attribute flag bits.
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagExtLen     = 0x10
)

func appendAttr(dst []byte, flags, typ byte, val []byte) []byte {
	if len(val) > 255 {
		flags |= flagExtLen
	}
	dst = append(dst, flags, typ)
	if flags&flagExtLen != 0 {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(val)))
	} else {
		dst = append(dst, byte(len(val)))
	}
	return append(dst, val...)
}

func (u Update) marshalBody(dst []byte) ([]byte, error) {
	// Withdrawn routes.
	wStart := len(dst)
	dst = append(dst, 0, 0)
	var err error
	dst, err = appendNLRI(dst, u.Withdrawn)
	if err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint16(dst[wStart:], uint16(len(dst)-wStart-2))

	// Path attributes (only when announcing).
	aStart := len(dst)
	dst = append(dst, 0, 0)
	if len(u.NLRI) > 0 {
		dst = appendAttr(dst, flagTransitive, AttrOrigin, []byte{u.Origin})
		if len(u.ASPath) > 255 {
			return nil, errors.New("wire: AS_PATH too long for one segment")
		}
		seg := []byte{2 /* AS_SEQUENCE */, byte(len(u.ASPath))}
		for _, a := range u.ASPath {
			seg = binary.BigEndian.AppendUint16(seg, a)
		}
		dst = appendAttr(dst, flagTransitive, AttrASPath, seg)
		if !u.NextHop.Is4() {
			return nil, fmt.Errorf("wire: NEXT_HOP %v is not IPv4", u.NextHop)
		}
		nh := u.NextHop.As4()
		dst = appendAttr(dst, flagTransitive, AttrNextHop, nh[:])
		if u.HasMED {
			dst = appendAttr(dst, flagOptional, AttrMED, binary.BigEndian.AppendUint32(nil, u.MED))
		}
		if u.HasLocal {
			dst = appendAttr(dst, flagTransitive, AttrLocalPref, binary.BigEndian.AppendUint32(nil, u.LocalPref))
		}
		if len(u.Communities) > 0 {
			var cv []byte
			for _, c := range u.Communities {
				cv = binary.BigEndian.AppendUint32(cv, c)
			}
			dst = appendAttr(dst, flagOptional|flagTransitive, AttrCommunities, cv)
		}
	}
	binary.BigEndian.PutUint16(dst[aStart:], uint16(len(dst)-aStart-2))

	return appendNLRI(dst, u.NLRI)
}

func unmarshalUpdate(b []byte) (Update, error) {
	var u Update
	if len(b) < 2 {
		return u, ErrTruncated
	}
	wLen := int(binary.BigEndian.Uint16(b[:2]))
	if len(b) < 2+wLen+2 {
		return u, ErrTruncated
	}
	var err error
	if u.Withdrawn, err = parseNLRI(b[2 : 2+wLen]); err != nil {
		return u, err
	}
	b = b[2+wLen:]
	aLen := int(binary.BigEndian.Uint16(b[:2]))
	if len(b) < 2+aLen {
		return u, ErrTruncated
	}
	attrs := b[2 : 2+aLen]
	if u.NLRI, err = parseNLRI(b[2+aLen:]); err != nil {
		return u, err
	}
	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return u, ErrTruncated
		}
		flags, typ := attrs[0], attrs[1]
		var vlen, off int
		if flags&flagExtLen != 0 {
			if len(attrs) < 4 {
				return u, ErrTruncated
			}
			vlen, off = int(binary.BigEndian.Uint16(attrs[2:4])), 4
		} else {
			vlen, off = int(attrs[2]), 3
		}
		if len(attrs) < off+vlen {
			return u, ErrTruncated
		}
		val := attrs[off : off+vlen]
		attrs = attrs[off+vlen:]
		switch typ {
		case AttrOrigin:
			if vlen != 1 {
				return u, fmt.Errorf("wire: ORIGIN length %d", vlen)
			}
			u.Origin = val[0]
		case AttrASPath:
			for len(val) > 0 {
				if len(val) < 2 {
					return u, ErrTruncated
				}
				segType, n := val[0], int(val[1])
				if segType != 2 && segType != 1 {
					return u, fmt.Errorf("wire: AS_PATH segment type %d", segType)
				}
				if len(val) < 2+2*n {
					return u, ErrTruncated
				}
				for i := 0; i < n; i++ {
					u.ASPath = append(u.ASPath, binary.BigEndian.Uint16(val[2+2*i:]))
				}
				val = val[2+2*n:]
			}
		case AttrNextHop:
			if vlen != 4 {
				return u, fmt.Errorf("wire: NEXT_HOP length %d", vlen)
			}
			u.NextHop = netip.AddrFrom4([4]byte(val))
		case AttrMED:
			if vlen != 4 {
				return u, fmt.Errorf("wire: MED length %d", vlen)
			}
			u.MED, u.HasMED = binary.BigEndian.Uint32(val), true
		case AttrLocalPref:
			if vlen != 4 {
				return u, fmt.Errorf("wire: LOCAL_PREF length %d", vlen)
			}
			u.LocalPref, u.HasLocal = binary.BigEndian.Uint32(val), true
		case AttrCommunities:
			if vlen%4 != 0 {
				return u, fmt.Errorf("wire: COMMUNITIES length %d", vlen)
			}
			for i := 0; i < vlen; i += 4 {
				u.Communities = append(u.Communities, binary.BigEndian.Uint32(val[i:]))
			}
		default:
			// Unknown attributes are ignored (a full implementation
			// would distinguish optional from well-known here).
		}
	}
	// RFC 4271 §6.3: NEXT_HOP is well-known mandatory when the message
	// announces routes. Rejecting its absence here also keeps the
	// parse→marshal round trip total (found by FuzzUnmarshal).
	if len(u.NLRI) > 0 && !u.NextHop.Is4() {
		return u, errors.New("wire: UPDATE announces NLRI without a valid IPv4 NEXT_HOP")
	}
	return u, nil
}

// --- NOTIFICATION ---------------------------------------------------------

// Notification error codes (RFC 4271 §4.5).
const (
	NotifMessageHeader = 1
	NotifOpenError     = 2
	NotifUpdateError   = 3
	NotifHoldTimer     = 4
	NotifFSMError      = 5
	NotifCease         = 6
)

// Notification is the NOTIFICATION message; sending one closes the session.
type Notification struct {
	Code, Subcode byte
	Data          []byte
}

// Type implements Message.
func (Notification) Type() byte { return TypeNotification }

func (n Notification) marshalBody(dst []byte) ([]byte, error) {
	dst = append(dst, n.Code, n.Subcode)
	return append(dst, n.Data...), nil
}

func unmarshalNotification(b []byte) (Notification, error) {
	if len(b) < 2 {
		return Notification{}, ErrTruncated
	}
	return Notification{Code: b[0], Subcode: b[1], Data: append([]byte(nil), b[2:]...)}, nil
}

// Error renders the notification as an error string.
func (n Notification) Error() string {
	return fmt.Sprintf("bgp notification code=%d subcode=%d", n.Code, n.Subcode)
}

// --- KEEPALIVE -------------------------------------------------------------

// Keepalive is the KEEPALIVE message (header only).
type Keepalive struct{}

// Type implements Message.
func (Keepalive) Type() byte { return TypeKeepalive }

func (Keepalive) marshalBody(dst []byte) ([]byte, error) { return dst, nil }
