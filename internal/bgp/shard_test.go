package bgp

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
	"lifeguard/internal/topogen"
)

// shardTestTopo builds a small Internet-like topology for determinism tests:
// big enough that barriers hold many concurrent speakers, small enough to
// converge quickly.
func shardTestTopo(t *testing.T) *topogen.Result {
	t.Helper()
	gen, err := topogen.Generate(topogen.Config{
		NumTier1:   5,
		NumTransit: 25,
		NumStub:    70,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

// ribDigest flattens every speaker's loc-RIB (plus its update counter) into
// a canonical string, so two runs can be compared byte-for-byte.
func ribDigest(e *Engine) string {
	var b strings.Builder
	for _, asn := range e.top.ASNs() {
		s := e.Speaker(asn)
		fmt.Fprintf(&b, "AS%d sent=%d\n", asn, e.UpdatesSentBy(asn))
		for _, p := range s.KnownPrefixes() {
			r, _ := s.Best(p)
			fmt.Fprintf(&b, "  %v via %v lp=%d\n", p, r.Path, r.LocalPref)
		}
	}
	return b.String()
}

// churn exercises announcement, convergence, poisoning, session failure and
// recovery — the full event mix the sharded loop must replay identically.
func churn(t *testing.T, e *Engine, gen *topogen.Result) {
	t.Helper()
	origins := gen.Stubs[:4]
	for _, asn := range origins {
		e.Originate(asn, topo.ProductionPrefix(asn))
	}
	if !e.Converge(100_000_000) {
		t.Fatal("initial convergence did not quiesce")
	}
	// Poison: origin 0 inserts a transit AS into its announced path.
	o := origins[0]
	e.Announce(o, topo.ProductionPrefix(o), OriginConfig{
		Pattern: topo.Path{o, gen.Transit[0], o},
	})
	if !e.Converge(100_000_000) {
		t.Fatal("post-poison convergence did not quiesce")
	}
	// Session failure between two tier-1s (clique: always adjacent),
	// then recovery.
	a, b := gen.Tier1s[0], gen.Tier1s[1]
	e.SetAdjacencyDown(a, b, true)
	if !e.Converge(100_000_000) {
		t.Fatal("post-failure convergence did not quiesce")
	}
	e.SetAdjacencyDown(a, b, false)
	// Withdraw one origin entirely.
	e.Withdraw(origins[1], topo.ProductionPrefix(origins[1]))
	if !e.Converge(100_000_000) {
		t.Fatal("final convergence did not quiesce")
	}
}

// TestShardedWorkerCountInvariance is the sharded engine's core contract:
// for a fixed seed, every ShardWorkers >= 1 produces byte-identical loc-RIBs
// and per-AS update counts.
func TestShardedWorkerCountInvariance(t *testing.T) {
	gen := shardTestTopo(t)
	run := func(workers int) string {
		clk := simclock.New()
		e := New(gen.Top, clk, Config{Seed: 11, ShardWorkers: workers})
		churn(t, e, gen)
		return ribDigest(e)
	}
	ref := run(1)
	for _, workers := range []int{2, 4, 8} {
		if got := run(workers); got != ref {
			t.Fatalf("ShardWorkers=%d diverged from ShardWorkers=1", workers)
		}
	}
	if ref == "" {
		t.Fatal("empty digest: no routes propagated")
	}
}

// TestShardedReplayStability re-runs the same sharded configuration twice;
// any hidden dependence on map iteration or scheduling shows up here.
func TestShardedReplayStability(t *testing.T) {
	gen := shardTestTopo(t)
	run := func() string {
		clk := simclock.New()
		e := New(gen.Top, clk, Config{Seed: 3, ShardWorkers: 4})
		churn(t, e, gen)
		return ribDigest(e)
	}
	if run() != run() {
		t.Fatal("sharded replay diverged between identical runs")
	}
}

// TestShardedMatchesClassicAtQuiescence checks the two execution models
// agree on the routing *outcome*. Their event interleavings (and rng
// streams) differ, so transient paths and update counts may differ — but
// Gao–Rexford policies with the deterministic tie-break have a unique
// stable state, and both loops must land on it.
func TestShardedMatchesClassicAtQuiescence(t *testing.T) {
	gen := shardTestTopo(t)
	best := func(workers int) string {
		clk := simclock.New()
		e := New(gen.Top, clk, Config{Seed: 9, ShardWorkers: workers})
		for _, asn := range gen.Stubs[:3] {
			e.Originate(asn, topo.ProductionPrefix(asn))
		}
		if !e.Converge(100_000_000) {
			t.Fatal("convergence did not quiesce")
		}
		var b strings.Builder
		for _, asn := range e.top.ASNs() {
			s := e.Speaker(asn)
			for _, p := range s.KnownPrefixes() {
				r, _ := s.Best(p)
				fmt.Fprintf(&b, "AS%d %v %v\n", asn, p, r.Path)
			}
		}
		return b.String()
	}
	if classic, sharded := best(0), best(2); classic != sharded {
		t.Fatal("sharded quiescent state differs from classic")
	}
}

// TestShardedDampeningDeterminism runs the flap-heavy path (dampening
// enabled, repeated re-announcements) under different worker counts.
func TestShardedDampeningDeterminism(t *testing.T) {
	gen := shardTestTopo(t)
	run := func(workers int) string {
		clk := simclock.New()
		e := New(gen.Top, clk, Config{
			Seed:         5,
			ShardWorkers: workers,
			Dampening:    DampeningConfig{Enabled: true},
		})
		o := gen.Stubs[0]
		p := topo.ProductionPrefix(o)
		for i := 0; i < 6; i++ {
			pat := topo.Path{o, gen.Transit[i%3], o}
			e.Announce(o, p, OriginConfig{Pattern: pat})
			if !e.Converge(100_000_000) {
				t.Fatal("convergence did not quiesce")
			}
			clk.RunFor(2 * time.Minute)
		}
		clk.RunFor(3 * time.Hour) // let reuse timers fire
		return ribDigest(e)
	}
	ref := run(1)
	if got := run(4); got != ref {
		t.Fatal("dampening state diverged across worker counts")
	}
}

// TestShardedPathInterning checks the arena is actually shared: across a
// ~100-AS topology with several origins, the number of distinct interned
// paths must be far below the number of adj-RIB-in entries.
func TestShardedPathInterning(t *testing.T) {
	gen := shardTestTopo(t)
	clk := simclock.New()
	e := New(gen.Top, clk, Config{Seed: 2, ShardWorkers: 2})
	for _, asn := range gen.Stubs[:4] {
		e.Originate(asn, topo.ProductionPrefix(asn))
	}
	if !e.Converge(100_000_000) {
		t.Fatal("convergence did not quiesce")
	}
	entries := 0
	for _, asn := range e.top.ASNs() {
		s := e.Speaker(asn)
		for _, rb := range s.adjIn {
			entries += len(rb.entries)
		}
	}
	arena := e.PathArenaSize()
	if entries == 0 || arena == 0 {
		t.Fatalf("no routes: entries=%d arena=%d", entries, arena)
	}
	if arena*2 > entries {
		t.Fatalf("interning ineffective: %d distinct paths for %d entries", arena, entries)
	}
}

// TestShardedWindowValidation: a timing model whose jitter floor leaves no
// barrier window must be rejected at construction, not corrupt a run.
func TestShardedWindowValidation(t *testing.T) {
	gen := shardTestTopo(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for PropJitter=1 with ShardWorkers")
		}
	}()
	New(gen.Top, simclock.New(), Config{PropJitter: 1.0, ShardWorkers: 2})
}
