package export

import (
	"context"
	"net"
	"net/netip"
	"testing"
	"time"

	"lifeguard/internal/bgp"
	"lifeguard/internal/bgp/session"
	"lifeguard/internal/bgp/wire"
	"lifeguard/internal/core/remedy"
	"lifeguard/internal/nettest"
	"lifeguard/internal/topo"
)

func TestUpdateFor(t *testing.T) {
	nh := netip.MustParseAddr("198.51.100.1")
	prefix := netip.MustParsePrefix("184.164.240.0/24")
	cfg := &bgp.OriginConfig{
		Pattern: topo.Path{10, 30, 10},
		PerNeighbor: map[topo.ASN]topo.Path{
			7: {10, 10, 10},
		},
		Withhold:    map[topo.ASN]bool{8: true},
		Communities: []bgp.Community{0xFDE80001},
		MED:         5,
	}
	// Default pattern neighbor.
	u, err := UpdateFor(10, prefix, cfg, 9, nh)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.ASPath) != 3 || u.ASPath[1] != 30 {
		t.Fatalf("ASPath = %v", u.ASPath)
	}
	if !u.HasMED || u.MED != 5 || len(u.Communities) != 1 {
		t.Fatalf("attrs = %+v", u)
	}
	// Per-neighbor override.
	u, _ = UpdateFor(10, prefix, cfg, 7, nh)
	if len(u.ASPath) != 3 || u.ASPath[1] != 10 {
		t.Fatalf("per-neighbor ASPath = %v", u.ASPath)
	}
	// Withheld neighbor gets a withdrawal.
	u, _ = UpdateFor(10, prefix, cfg, 8, nh)
	if len(u.Withdrawn) != 1 || len(u.NLRI) != 0 {
		t.Fatalf("withhold = %+v", u)
	}
	// Nil config is a withdrawal.
	u, _ = UpdateFor(10, prefix, nil, 9, nh)
	if len(u.Withdrawn) != 1 {
		t.Fatalf("withdraw = %+v", u)
	}
}

// TestBridgeMirrorsRepairOntoWire is the deployment story end to end: the
// remediation controller poisons inside the simulator, and the bridge ships
// the exact O-A-O announcement over a real BGP session to the upstream.
func TestBridgeMirrorsRepairOntoWire(t *testing.T) {
	n := nettest.Fig2(t)

	// A wire session standing in for the real upstream router.
	connA, connB := net.Pipe()
	local := session.New(connA, session.Config{LocalAS: uint16(nettest.O)})
	upstream := session.New(connB, session.Config{LocalAS: uint16(nettest.B)})
	got := make(chan wire.Update, 16)
	upstream.OnUpdate = func(u wire.Update) { got <- u }
	errs := make(chan error, 2)
	go func() { errs <- local.Start(context.Background()) }()
	go func() { errs <- upstream.Start(context.Background()) }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	defer local.Close()
	defer upstream.Close()

	NewBridge(n.Eng, nettest.O, netip.MustParseAddr("198.51.100.1"),
		map[topo.ASN]*session.Session{nettest.B: local})

	ctrl := remedy.New(n.Eng, n.Prober, n.Clk, remedy.Config{Origin: nettest.O})
	ctrl.AnnounceBaseline()

	recv := func() wire.Update {
		select {
		case u := <-got:
			return u
		//lint:ignore lglint/simclockcheck watchdog against a deadlocked wire session; the real session FSM cannot run on the virtual clock
		case <-time.After(3 * time.Second):
			t.Fatal("no update on the wire")
			return wire.Update{}
		}
	}
	// Baseline: production O-O-O then sentinel O-O-O.
	u := recv()
	if len(u.ASPath) != 3 || u.ASPath[0] != uint16(nettest.O) || u.ASPath[1] != uint16(nettest.O) {
		t.Fatalf("baseline path = %v", u.ASPath)
	}
	recv() // sentinel

	// The repair: poison A. The upstream must see O-A-O for production.
	ctrl.Poison(nettest.A, n.Top.Router(n.Hub(nettest.E)).Addr)
	u = recv()
	want := []uint16{uint16(nettest.O), uint16(nettest.A), uint16(nettest.O)}
	for i := range want {
		if u.ASPath[i] != want[i] {
			t.Fatalf("poisoned path on wire = %v, want %v", u.ASPath, want)
		}
	}
	if u.NLRI[0] != ctrl.Config().Production {
		t.Fatalf("poisoned NLRI = %v", u.NLRI)
	}

	// Unpoison restores the baseline on the wire (production + sentinel
	// are both re-announced).
	ctrl.Unpoison()
	u = recv()
	if u.ASPath[1] != uint16(nettest.O) {
		t.Fatalf("unpoisoned path = %v", u.ASPath)
	}
}
