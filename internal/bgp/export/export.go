// Package export bridges the simulator's control plane to real BGP
// sessions: it converts an origin's crafted announcement policies
// (prepended baselines, poisons, selective per-neighbor patterns) into wire
// UPDATE messages and mirrors every change onto live sessions. In a real
// deployment this is the piece between the remediation engine and the
// upstream router — the BGP-Mux role in the paper.
package export

import (
	"fmt"
	"net/netip"

	"lifeguard/internal/bgp"
	"lifeguard/internal/bgp/session"
	"lifeguard/internal/bgp/wire"
	"lifeguard/internal/topo"
)

// UpdateFor converts the origin's announcement policy toward one neighbor
// into a wire UPDATE. withdrawn=true (with cfg nil) produces a withdrawal;
// a config that withholds from this neighbor also yields a withdrawal.
func UpdateFor(origin topo.ASN, prefix netip.Prefix, cfg *bgp.OriginConfig,
	neighbor topo.ASN, nextHop netip.Addr) (wire.Update, error) {

	if cfg == nil {
		return wire.Update{Withdrawn: []netip.Prefix{prefix}}, nil
	}
	pat, ok := cfg.EffectivePattern(origin, neighbor)
	if !ok {
		return wire.Update{Withdrawn: []netip.Prefix{prefix}}, nil
	}
	u := wire.Update{
		Origin:  wire.OriginIGP,
		NextHop: nextHop,
		NLRI:    []netip.Prefix{prefix},
		MED:     uint32(cfg.MED),
		HasMED:  cfg.MED != 0,
	}
	// The wire codec speaks classic 2-byte-ASN BGP-4; ASNs above 65535
	// (which the engine supports) truncate here, as a real pre-RFC 6793
	// speaker would mangle them.
	for _, a := range pat {
		u.ASPath = append(u.ASPath, uint16(a))
	}
	for _, c := range cfg.EffectiveCommunities(neighbor) {
		u.Communities = append(u.Communities, uint32(c))
	}
	return u, nil
}

// Bridge mirrors one origin's announcements from a bgp.Engine onto live
// wire sessions, one per provider ("mux"). Attach it before the origin
// starts announcing.
type Bridge struct {
	origin  topo.ASN
	nextHop netip.Addr
	peers   map[topo.ASN]*session.Session

	// Err, if set, receives send failures (the bridge itself keeps
	// going; a dead session is the operator's problem to restore).
	Err func(neighbor topo.ASN, err error)
}

// NewBridge attaches a bridge for origin to the engine. peers maps each
// neighbor ASN to the established session carrying announcements to it.
// nextHop is the NEXT_HOP to advertise.
func NewBridge(e *bgp.Engine, origin topo.ASN, nextHop netip.Addr,
	peers map[topo.ASN]*session.Session) *Bridge {

	b := &Bridge{origin: origin, nextHop: nextHop, peers: peers}
	prev := e.OnOriginChange
	e.OnOriginChange = func(asn topo.ASN, prefix netip.Prefix, cfg *bgp.OriginConfig) {
		if prev != nil {
			prev(asn, prefix, cfg)
		}
		if asn == origin {
			b.mirror(prefix, cfg)
		}
	}
	return b
}

func (b *Bridge) mirror(prefix netip.Prefix, cfg *bgp.OriginConfig) {
	for n, s := range b.peers {
		u, err := UpdateFor(b.origin, prefix, cfg, n, b.nextHop)
		if err == nil {
			err = s.Announce(u)
		}
		if err != nil && b.Err != nil {
			b.Err(n, fmt.Errorf("export: mirror to AS%d: %w", n, err))
		}
	}
}
