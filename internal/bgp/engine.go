package bgp

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
)

// Engine owns one Speaker per AS and drives protocol dynamics over a
// simclock.Scheduler.
type Engine struct {
	top   *topo.Topology
	clk   *simclock.Scheduler
	cfg   Config
	rng   *rand.Rand
	arena *arena
	// asns is the sorted ASN table; a speaker's idx indexes it and every
	// dense per-AS slice below.
	asns     []topo.ASN
	speakers map[topo.ASN]*Speaker
	obs      engineObs
	// shard is non-nil when Config.ShardWorkers > 0 (see shard.go).
	shard *shardState

	// OnBestChange, if set, observes every loc-RIB change engine-wide.
	OnBestChange func(BestChange)

	// OnOriginChange, if set, observes every Announce/Withdraw an origin
	// makes (cfg is nil for withdrawals). The wire bridge uses it to
	// mirror crafted announcements onto real sessions.
	OnOriginChange func(asn topo.ASN, prefix netip.Prefix, cfg *OriginConfig)

	// pendingEvents counts scheduled BGP events (message deliveries and
	// armed MRAI timers); zero means the control plane is quiescent.
	pendingEvents int

	// updatesSent counts announcements+withdrawals sent per AS — the raw
	// material for the Table 2 update-load analysis — densely indexed by
	// speaker idx (it replaces a per-AS map; read it via UpdatesSentBy /
	// TotalUpdatesSent). Barrier workers increment distinct indices, so
	// the slice needs no lock.
	updatesSent []int64
}

// New builds an engine over the topology. No routes exist until Originate or
// Announce is called. With cfg.ShardWorkers > 0 the event loop runs sharded
// by speaker (see shard.go); New panics if the jitter configuration leaves
// no safe barrier window.
func New(top *topo.Topology, clk *simclock.Scheduler, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		top:         top,
		clk:         clk,
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		arena:       newArena(),
		asns:        top.ASNs(),
		speakers:    make(map[topo.ASN]*Speaker, top.NumASes()),
		obs:         newEngineObs(cfg.Obs),
		updatesSent: make([]int64, top.NumASes()),
	}
	for i, asn := range e.asns {
		e.speakers[asn] = newSpeaker(e, asn, i)
	}
	if cfg.ShardWorkers > 0 {
		e.initShard()
	}
	return e
}

// Topology returns the topology the engine routes over.
func (e *Engine) Topology() *topo.Topology { return e.top }

// Clock returns the scheduler driving the engine.
func (e *Engine) Clock() *simclock.Scheduler { return e.clk }

// Speaker returns the speaker for asn, or nil if the AS does not exist.
func (e *Engine) Speaker(asn topo.ASN) *Speaker { return e.speakers[asn] }

// UpdatesSentBy reports how many updates (announcements + withdrawals) asn
// has sent; 0 for an unknown AS.
func (e *Engine) UpdatesSentBy(asn topo.ASN) int {
	s := e.speakers[asn]
	if s == nil {
		return 0
	}
	return int(e.updatesSent[s.idx])
}

// TotalUpdatesSent reports the engine-wide update count.
func (e *Engine) TotalUpdatesSent() int {
	total := 0
	for _, c := range e.updatesSent {
		total += int(c)
	}
	return total
}

// RIBSizes reports the aggregate routing-state footprint: selected loc-RIB
// routes and compact adj-RIB-in entries across every speaker. The scale
// benchmarks divide memory by these to normalize across topology sizes.
func (e *Engine) RIBSizes() (locRIB, adjEntries int) {
	for _, asn := range e.asns {
		s := e.speakers[asn]
		locRIB += len(s.best)
		for _, rb := range s.adjIn {
			adjEntries += len(rb.entries)
		}
	}
	return locRIB, adjEntries
}

// Originate announces prefix from asn with the plain [asn] path.
func (e *Engine) Originate(asn topo.ASN, prefix netip.Prefix) {
	e.Announce(asn, prefix, OriginConfig{})
}

// Announce installs (or replaces) the origin configuration for prefix at asn
// and propagates the resulting updates. Use it for baseline prepending,
// poisoning, selective poisoning, and selective advertising alike.
//
// Announce panics on an invalid request (unknown AS, malformed pattern, or
// unusable prefix) — convenient for tests and experiment scripts where an
// invalid announcement is a programming error. Operational callers that
// must survive bad input use AnnounceErr; the two are otherwise identical.
func (e *Engine) Announce(asn topo.ASN, prefix netip.Prefix, cfg OriginConfig) {
	if err := e.AnnounceErr(asn, prefix, cfg); err != nil {
		panic(err)
	}
}

// AnnounceErr is Announce with an error contract instead of panics. It
// rejects an unknown AS, a pattern violating the §3.1.1 origin conventions
// (for Pattern and every PerNeighbor override), and a prefix that is not a
// masked IPv4 prefix (the address plan is IPv4-only, and the loc-RIB and
// LPM index key by the masked form). On error nothing is installed and no
// update propagates. The config is deep-copied before installation, so the
// caller may reuse or mutate it afterwards.
func (e *Engine) AnnounceErr(asn topo.ASN, prefix netip.Prefix, cfg OriginConfig) error {
	s := e.speakers[asn]
	if s == nil {
		return fmt.Errorf("bgp: Announce from unknown AS %d", asn)
	}
	if err := validatePrefix(prefix); err != nil {
		return err
	}
	if err := validatePattern(asn, cfg.Pattern); err != nil {
		return err
	}
	for n, p := range cfg.PerNeighbor {
		if err := validatePattern(asn, p); err != nil {
			return fmt.Errorf("per-neighbor %d: %w", n, err)
		}
	}
	cfg = cfg.sanitized()
	s.announce(prefix, cfg)
	if e.OnOriginChange != nil {
		e.OnOriginChange(asn, prefix, &cfg)
	}
	return nil
}

// AnnounceForged installs an origin configuration whose advertised pattern
// claims a different origin — path[len-1] is the forged origin, while
// path[0] must still be asn itself (neighbors drop updates whose first hop
// is not the sender). This is the adversarial hook the chaos hijack faults
// build on: a rogue AS forging the victim's origin so origin-based filters
// and detectors see an apparently legitimate announcement one hop longer.
// Everything downstream of installation (export policy, MRAI, interning)
// is the ordinary Announce machinery; only the §3.1.1 origin-convention
// check is bypassed. Withdraw reverts it like any other origin.
func (e *Engine) AnnounceForged(asn topo.ASN, prefix netip.Prefix, path topo.Path) error {
	s := e.speakers[asn]
	if s == nil {
		return fmt.Errorf("bgp: AnnounceForged from unknown AS %d", asn)
	}
	if err := validatePrefix(prefix); err != nil {
		return err
	}
	if len(path) == 0 {
		return fmt.Errorf("bgp: AnnounceForged needs a non-empty path")
	}
	if path[0] != asn {
		return fmt.Errorf("bgp: forged path %v must still start with the announcing AS %d", path, asn)
	}
	cfg := OriginConfig{Pattern: path}.sanitized()
	s.announce(prefix, cfg)
	if e.OnOriginChange != nil {
		e.OnOriginChange(asn, prefix, &cfg)
	}
	return nil
}

// validatePrefix enforces the RIB keying contract: announced prefixes are
// masked IPv4 prefixes. Anything else would be unreachable (IPv6 has no
// routers in the address plan) or would alias its masked form in lookups
// while remaining a distinct exact-match key.
func validatePrefix(p netip.Prefix) error {
	if !p.IsValid() || !p.Addr().Is4() {
		return fmt.Errorf("bgp: prefix %v is not a valid IPv4 prefix", p)
	}
	if p != p.Masked() {
		return fmt.Errorf("bgp: prefix %v has host bits set (use %v)", p, p.Masked())
	}
	return nil
}

// validatePattern enforces the §3.1.1 conventions: the origin must be both
// the first AS (next hop for neighbors) and the last AS (registered origin).
func validatePattern(self topo.ASN, p topo.Path) error {
	if p == nil {
		return nil
	}
	if len(p) == 0 {
		return fmt.Errorf("bgp: empty path pattern for AS %d", self)
	}
	if p[0] != self || p[len(p)-1] != self {
		return fmt.Errorf("bgp: pattern %v must start and end with origin %d", p, self)
	}
	return nil
}

// Withdraw removes asn's origin configuration for prefix and propagates
// withdrawals. Like Announce it panics on an unknown AS (it used to no-op
// silently, hiding typos in experiment scripts); withdrawing a prefix the
// AS does not originate remains a harmless no-op. Operational callers use
// WithdrawErr.
func (e *Engine) Withdraw(asn topo.ASN, prefix netip.Prefix) {
	if err := e.WithdrawErr(asn, prefix); err != nil {
		panic(err)
	}
}

// WithdrawErr is Withdraw with an error contract instead of panics: an
// unknown AS is an error; withdrawing a non-originated prefix is a no-op.
func (e *Engine) WithdrawErr(asn topo.ASN, prefix netip.Prefix) error {
	s := e.speakers[asn]
	if s == nil {
		return fmt.Errorf("bgp: Withdraw from unknown AS %d", asn)
	}
	s.withdrawOrigin(prefix)
	if e.OnOriginChange != nil {
		e.OnOriginChange(asn, prefix, nil)
	}
	return nil
}

// OriginAnnouncement is one locally-originated prefix and its announcement
// policy, as enumerated by Origins.
type OriginAnnouncement struct {
	Prefix netip.Prefix
	Config OriginConfig
}

// Origins enumerates asn's locally-originated prefixes in sorted prefix
// order, each with a deep copy of its installed (sanitized) config. Chaos
// router-crash faults use it to capture the announcement set before a
// withdraw-all and replay it verbatim on restart; nil for an unknown AS.
func (e *Engine) Origins(asn topo.ASN) []OriginAnnouncement {
	s := e.speakers[asn]
	if s == nil {
		return nil
	}
	prefixes := make([]netip.Prefix, 0, len(s.origin))
	for p := range s.origin {
		prefixes = append(prefixes, p)
	}
	sortPrefixes(prefixes)
	out := make([]OriginAnnouncement, len(prefixes))
	for i, p := range prefixes {
		out[i] = OriginAnnouncement{Prefix: p, Config: s.origin[p].cfg.sanitized()}
	}
	return out
}

// ReannounceOrigins re-announces every prefix asn already originates with
// its installed config, in sorted prefix order, and returns how many were
// re-sent. This is the deferred re-announce at the end of a graceful
// restart: the origin state survived the control-plane outage (stale-route
// retention), and replaying it refreshes neighbors without ever having
// withdrawn — routes that did not change produce no routing churn beyond
// the refresh updates themselves. Zero for an unknown AS.
func (e *Engine) ReannounceOrigins(asn topo.ASN) int {
	anns := e.Origins(asn)
	for _, a := range anns {
		e.Announce(asn, a.Prefix, a.Config)
	}
	return len(anns)
}

// SetLinkExtraDelay adds d of control-plane propagation delay to every BGP
// message crossing the a–b adjacency (both directions); d = 0 removes the
// slowdown, and a negative d panics — it is always a caller bug, never a
// removal request. The delay is applied after the per-message jitter draw,
// so toggling it never perturbs the engine's rng stream — chaos "update
// delay" faults compose with otherwise-identical runs. Panics if a and b
// are not adjacent, matching SetAdjacencyDown.
func (e *Engine) SetLinkExtraDelay(a, b topo.ASN, d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("bgp: SetLinkExtraDelay(%d, %d): negative delay %v", a, b, d))
	}
	if !e.top.Adjacent(a, b) {
		panic(fmt.Sprintf("bgp: SetLinkExtraDelay(%d, %d): not adjacent", a, b))
	}
	sa, sb := e.speakers[a], e.speakers[b]
	sa.out[sa.nbrIndex(b)].extra = d
	sb.out[sb.nbrIndex(a)].extra = d
}

// LinkExtraDelay returns the extra control-plane delay currently installed
// on the a→b direction (zero when none, or when the ASes are not adjacent).
func (e *Engine) LinkExtraDelay(a, b topo.ASN) time.Duration {
	s := e.speakers[a]
	if s == nil {
		return 0
	}
	i := s.nbrIndex(b)
	if i < 0 {
		return 0
	}
	return s.out[i].extra
}

// BestRoute returns asn's selected route for an exact prefix.
func (e *Engine) BestRoute(asn topo.ASN, prefix netip.Prefix) (*Route, bool) {
	s := e.speakers[asn]
	if s == nil {
		return nil, false
	}
	r, ok := s.best[prefix]
	return r, ok
}

// Lookup performs longest-prefix match for addr in asn's loc-RIB. It reads
// the speaker's compiled LPM index (see lpm.go), so a miss or hit costs a
// bounded trie walk with no allocations — this is the data plane's
// per-forwarding-hop primitive. The full IPv4 length range /0../32 matches,
// default routes included; non-IPv4 addresses (which the address plan never
// routes) report no route.
func (e *Engine) Lookup(asn topo.ASN, addr netip.Addr) (*Route, bool) {
	s := e.speakers[asn]
	if s == nil {
		return nil, false
	}
	key, ok := v4Key(addr)
	if !ok {
		return nil, false
	}
	s.compileLPM()
	r := s.lpm.lookup(key)
	return r, r != nil
}

// ASPathTo returns asn's current AS-level path toward addr (LPM), nil if it
// has no route. The returned path is the RIB path, poisons included.
func (e *Engine) ASPathTo(asn topo.ASN, addr netip.Addr) topo.Path {
	r, ok := e.Lookup(asn, addr)
	if !ok {
		return nil
	}
	return r.Path.Clone()
}

// Quiescent reports whether no BGP messages or MRAI flushes are pending.
func (e *Engine) Quiescent() bool { return e.pendingEvents == 0 }

// Converge steps the scheduler until the control plane is quiescent or the
// step budget is exhausted; it reports whether quiescence was reached. Other
// scheduled events (monitors, probes) run as encountered.
func (e *Engine) Converge(maxSteps int) bool {
	for i := 0; i < maxSteps; i++ {
		if e.Quiescent() {
			return true
		}
		if !e.clk.Step() {
			return e.Quiescent()
		}
	}
	return e.Quiescent()
}

// nowFor reports virtual time from s's point of view: the event being
// processed inside a barrier window, the scheduler's clock otherwise.
func (e *Engine) nowFor(s *Speaker) time.Duration {
	if s.inWindow {
		return s.now
	}
	return e.clk.Now()
}

// rngFor returns the stream protocol dynamics for s draw from: the
// per-speaker stream in sharded mode (workers cannot share one), the
// engine-global stream in the classic loop.
func (e *Engine) rngFor(s *Speaker) *rand.Rand {
	if s.rng != nil {
		return s.rng
	}
	return e.rng
}

// jitterFor returns d scaled by a uniform factor in [1-j, 1+j], drawn from
// s's stream.
func (e *Engine) jitterFor(s *Speaker, d time.Duration, j float64) time.Duration {
	if j <= 0 {
		return d
	}
	f := 1 + j*(2*e.rngFor(s).Float64()-1)
	return time.Duration(float64(d) * f)
}

// deliver schedules u from s toward its i-th neighbor, preserving per-pair
// FIFO order via the session's lastDelivery watermark.
func (e *Engine) deliver(s *Speaker, i int, u update) {
	e.updatesSent[s.idx]++
	if ss := s.stats; ss != nil && s.inWindow {
		ss.updatesSent++
	} else {
		e.obs.updatesSent.Inc()
	}
	st := &s.out[i]
	at := e.nowFor(s) + e.jitterFor(s, e.cfg.PropDelay, e.cfg.PropJitter) + st.extra
	if at <= st.lastDelivery {
		at = st.lastDelivery + time.Microsecond
	}
	st.lastDelivery = at
	to := s.neighbors[i]
	if e.shard != nil {
		e.emit(s, engEvent{kind: evDeliver, at: at, sp: to, from: s.asn, u: u}, true)
		return
	}
	dst := e.speakers[to]
	from := s.asn
	e.pendingEvents++
	e.clk.At(at, func() {
		e.pendingEvents--
		if dst.neighborDown(from) {
			return // the session died while the message was in flight
		}
		dst.receive(from, u)
	})
}

// schedPhase arms s's neighbor-i advertisement timer at the next tick of a
// free-running MRAI timer: a uniform phase in [0, MRAI).
func (e *Engine) schedPhase(s *Speaker, i int) {
	d := time.Duration(e.rngFor(s).Float64() * float64(e.cfg.MRAI))
	if e.shard != nil {
		e.emit(s, engEvent{kind: evTimer, at: e.nowFor(s) + d, sp: s.asn, nbr: int32(i)}, true)
		return
	}
	e.pendingEvents++
	e.clk.After(d, func() {
		e.pendingEvents--
		s.timerFired(i)
	})
}

// schedMRAI arms s's neighbor-i timer one jittered MRAI interval out.
func (e *Engine) schedMRAI(s *Speaker, i int) {
	d := e.jitterFor(s, e.cfg.MRAI, e.cfg.MRAIJitter)
	if e.shard != nil {
		e.emit(s, engEvent{kind: evTimer, at: e.nowFor(s) + d, sp: s.asn, nbr: int32(i)}, true)
		return
	}
	e.pendingEvents++
	e.clk.After(d, func() {
		e.pendingEvents--
		s.timerFired(i)
	})
}

// schedReuse arms a dampening reuse check d from now. Reuse timers are
// long-lived wall-clock state, not in-flight protocol work, so they do not
// count toward Quiescent().
func (e *Engine) schedReuse(s *Speaker, k dampKey, d time.Duration) {
	if e.shard != nil {
		e.emit(s, engEvent{kind: evReuse, at: e.nowFor(s) + d, sp: s.asn, from: k.from, u: update{prefix: k.prefix}}, false)
		return
	}
	e.clk.After(d, func() { s.reuseCheck(k) })
}

// notifyBest publishes a loc-RIB change. The path is cloned here, behind
// the nil check, so runs without an observer pay no per-change allocation.
// Inside a barrier window the change is buffered and delivered — globally
// time-sorted — at the merge.
func (e *Engine) notifyBest(s *Speaker, prefix netip.Prefix, path topo.Path) {
	if e.OnBestChange == nil {
		return
	}
	bc := BestChange{At: e.nowFor(s), AS: s.asn, Prefix: prefix, Path: path.Clone()}
	if s.inWindow {
		s.notifs = append(s.notifs, bc)
		return
	}
	e.OnBestChange(bc)
}
