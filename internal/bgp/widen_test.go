package bgp

import (
	"net/netip"
	"testing"

	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
)

// TestASNsAbove64k pins the 32-bit ASN plumbing end to end: ASes numbered
// far beyond the old uint16 range originate, propagate, and appear in AS
// paths without truncation or aliasing. The topology is router-less (pure
// AS level) because such ASes own no derived address block — they announce
// an explicit prefix instead.
func TestASNsAbove64k(t *testing.T) {
	const (
		origin = topo.ASN(70_000)
		mid    = topo.ASN(131_072) // 2^17: would alias to 0 under uint16
		edge   = topo.ASN(4_200_000_000)
	)
	b := topo.NewBuilder()
	for _, asn := range []topo.ASN{origin, mid, edge} {
		b.AddAS(asn, "")
	}
	b.Provider(origin, mid) // mid sells transit to origin
	b.Provider(mid, edge)   // edge sells transit to mid
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	e := New(top, simclock.New(), Config{Seed: 7})
	p := netip.MustParsePrefix("10.0.0.0/24")
	e.Announce(origin, p, OriginConfig{})
	converge(t, e)

	r, ok := e.BestRoute(edge, p)
	if !ok {
		t.Fatalf("AS %d never learned the route", edge)
	}
	want := topo.Path{mid, origin}
	if !r.Path.Equal(want) {
		t.Fatalf("path at AS %d = %v, want %v", edge, r.Path, want)
	}
	if o, _ := r.Path.Origin(); o != origin {
		t.Fatalf("path origin = %d, want %d", o, origin)
	}

	// Two distinct wide paths must intern to distinct handles: announce a
	// second prefix from mid and check edge sees both with the right paths
	// (a 2-byte path key would have collided 70000 with 70000%65536, etc.).
	p2 := netip.MustParsePrefix("10.0.1.0/24")
	e.Announce(mid, p2, OriginConfig{})
	converge(t, e)
	r2, ok := e.BestRoute(edge, p2)
	if !ok {
		t.Fatal("edge never learned the second route")
	}
	if !r2.Path.Equal(topo.Path{mid}) {
		t.Fatalf("second path = %v, want [%d]", r2.Path, mid)
	}
}
