package bgp

import (
	"testing"

	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
)

// diamond: 1 originates; 1 customer of 2 and 3; 2 and 3 customers of 4.
// 4 has two disjoint ways down to 1.
func diamond(t *testing.T) *topo.Topology {
	t.Helper()
	b := topo.NewBuilder()
	for asn := topo.ASN(1); asn <= 4; asn++ {
		b.AddAS(asn, "")
	}
	b.Provider(1, 2)
	b.Provider(1, 3)
	b.Provider(2, 4)
	b.Provider(3, 4)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestAdjacencyDownFailsOver(t *testing.T) {
	top := diamond(t)
	clk := simclock.New()
	e := New(top, clk, Config{Seed: 2})
	prefix := topo.ProductionPrefix(1)
	e.Originate(1, prefix)
	if !e.Converge(5_000_000) {
		t.Fatal("no convergence")
	}
	r, _ := e.BestRoute(4, prefix)
	primary, _ := r.NextHop()
	backup := topo.ASN(2 + 3 - primary) // the other middle AS

	// Cut the session 1—primary: AS4 must fail over to the other side.
	e.SetAdjacencyDown(1, primary, true)
	if !e.Converge(5_000_000) {
		t.Fatal("no convergence after session failure")
	}
	r, ok := e.BestRoute(4, prefix)
	if !ok {
		t.Fatal("AS4 lost the route entirely")
	}
	if nh, _ := r.NextHop(); nh != backup {
		t.Fatalf("AS4 next hop = %d, want failover to %d", nh, backup)
	}
	if !e.AdjacencyDown(1, primary) {
		t.Fatal("AdjacencyDown should report true")
	}

	// Restore: AS4 returns to the primary path.
	e.SetAdjacencyDown(1, primary, false)
	if !e.Converge(5_000_000) {
		t.Fatal("no convergence after restore")
	}
	r, _ = e.BestRoute(4, prefix)
	if nh, _ := r.NextHop(); nh != primary {
		t.Fatalf("AS4 next hop = %d, want %d after restore", nh, primary)
	}
	if e.AdjacencyDown(1, primary) {
		t.Fatal("AdjacencyDown should report false after restore")
	}
}

func TestAdjacencyDownLongWayRound(t *testing.T) {
	top := diamond(t)
	clk := simclock.New()
	e := New(top, clk, Config{Seed: 3})
	prefix := topo.ProductionPrefix(1)
	e.Originate(1, prefix)
	e.Converge(5_000_000)
	r, _ := e.BestRoute(4, prefix)
	primary, _ := r.NextHop()
	e.SetAdjacencyDown(1, primary, true)
	e.Converge(5_000_000)
	// primary still reaches 1 the long way: via its provider 4.
	rp, ok := e.BestRoute(primary, prefix)
	if !ok {
		t.Fatalf("AS%d should reach 1 via its provider", primary)
	}
	if nh, _ := rp.NextHop(); nh != 4 {
		t.Fatalf("AS%d next hop = %d, want 4", primary, nh)
	}
}

func TestAdjacencyDownWholeTableRestored(t *testing.T) {
	// Multiple prefixes: a session restore must re-advertise everything.
	top := diamond(t)
	clk := simclock.New()
	e := New(top, clk, Config{Seed: 4})
	prefixes := []struct{ owner topo.ASN }{{1}, {2}, {4}}
	for _, p := range prefixes {
		e.Originate(p.owner, topo.Block(p.owner))
	}
	e.Converge(5_000_000)
	e.SetAdjacencyDown(2, 4, true)
	e.Converge(5_000_000)
	e.SetAdjacencyDown(2, 4, false)
	if !e.Converge(5_000_000) {
		t.Fatal("no convergence")
	}
	// Every AS must again have routes to every block, and AS4's route to
	// Block(1) may again use either side.
	for _, asn := range top.ASNs() {
		for _, p := range prefixes {
			if asn == p.owner {
				continue
			}
			if _, ok := e.BestRoute(asn, topo.Block(p.owner)); !ok {
				t.Fatalf("AS%d missing route to Block(%d) after restore", asn, p.owner)
			}
		}
	}
}

func TestAdjacencyDownNotAdjacentPanics(t *testing.T) {
	top := diamond(t)
	clk := simclock.New()
	e := New(top, clk, Config{Seed: 5})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-adjacent pair")
		}
	}()
	e.SetAdjacencyDown(1, 4, true)
}

// TestSessionFailureIsVisibleUnlikeSilentFailure is the conceptual contrast
// at the heart of the paper: a session failure heals itself via BGP; a
// silent failure leaves stale routes in place forever.
func TestSessionFailureIsVisibleUnlikeSilentFailure(t *testing.T) {
	top := diamond(t)
	clk := simclock.New()
	e := New(top, clk, Config{Seed: 6})
	prefix := topo.ProductionPrefix(1)
	e.Originate(1, prefix)
	e.Converge(5_000_000)
	r, _ := e.BestRoute(4, prefix)
	primary, _ := r.NextHop()

	// Visible failure: routes move on their own.
	e.SetAdjacencyDown(1, primary, true)
	e.Converge(5_000_000)
	r, _ = e.BestRoute(4, prefix)
	if nh, _ := r.NextHop(); nh == primary {
		t.Fatal("BGP did not react to a visible failure")
	}
	e.SetAdjacencyDown(1, primary, false)
	e.Converge(5_000_000)

	// Silent failure (modelled in the data plane only): the control
	// plane keeps the stale route — no reaction, which is precisely why
	// LIFEGUARD needs poisoning.
	r, _ = e.BestRoute(4, prefix)
	before, _ := r.NextHop()
	// (no engine call at all — the silent failure is invisible here)
	e.Converge(5_000_000)
	r, _ = e.BestRoute(4, prefix)
	after, _ := r.NextHop()
	if before != after {
		t.Fatal("routes changed with no visible event")
	}
}
