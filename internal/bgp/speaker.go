package bgp

import (
	"net/netip"
	"sort"

	"lifeguard/internal/topo"
)

// Speaker is the BGP process of one AS.
type Speaker struct {
	e   *Engine
	asn topo.ASN

	// adjIn holds the latest accepted route per prefix per neighbor.
	adjIn map[netip.Prefix]map[topo.ASN]*Route
	// best is the loc-RIB: the selected route per prefix.
	best map[netip.Prefix]*Route
	// lpm is the compiled longest-prefix-match index over best, maintained
	// incrementally by decide (see lpm.go). Engine.Lookup — the data-plane
	// hot path — reads it instead of probing best per candidate length.
	lpm lpmIndex
	// origin holds locally-originated prefixes: the (sanitized) announcement
	// policy plus the originated loc-RIB route, built once per Announce so
	// decide does not reallocate it on every update.
	origin map[netip.Prefix]*originEntry
	// out tracks per-neighbor send state (MRAI batching + dedup).
	out map[topo.ASN]*outState
	// damp tracks RFC 2439 flap state per (neighbor, prefix).
	damp map[dampKey]*dampState
	// downNbrs marks neighbors whose BGP session is failed.
	downNbrs map[topo.ASN]bool
	// commActions maps this AS's action communities (§2.3) to behaviour.
	commActions map[Community]CommunityAction

	neighbors []topo.ASN // sorted, cached
	// flushBuf is the scratch slice flush sorts pending prefixes into;
	// flush never nests (deliveries are scheduled, not synchronous), so one
	// buffer per speaker removes a per-flush allocation.
	flushBuf []netip.Prefix
}

// originEntry pairs an origin policy with its pre-built loc-RIB route and
// the cached plain [self] pattern, so per-flush exports of a zero-config
// origination allocate nothing.
type originEntry struct {
	cfg   OriginConfig
	route *Route
	plain topo.Path // the [self] path announced when cfg.Pattern is nil
}

// pattern mirrors OriginConfig.pattern but returns the cached plain path
// instead of constructing one.
func (ent *originEntry) pattern(n topo.ASN) (topo.Path, bool) {
	c := &ent.cfg
	if c.Withhold[n] {
		return nil, false
	}
	if p, ok := c.PerNeighbor[n]; ok {
		return p, true
	}
	if c.Pattern != nil {
		return c.Pattern, true
	}
	return ent.plain, true
}

type advRecord struct {
	path        topo.Path
	communities []Community
}

type outState struct {
	pending    map[netip.Prefix]bool
	timerArmed bool
	lastAdv    map[netip.Prefix]advRecord
}

func newSpeaker(e *Engine, asn topo.ASN) *Speaker {
	s := &Speaker{
		e:         e,
		asn:       asn,
		adjIn:     make(map[netip.Prefix]map[topo.ASN]*Route),
		best:      make(map[netip.Prefix]*Route),
		origin:    make(map[netip.Prefix]*originEntry),
		out:       make(map[topo.ASN]*outState),
		damp:      make(map[dampKey]*dampState),
		downNbrs:  make(map[topo.ASN]bool),
		neighbors: e.top.Neighbors(asn),
	}
	for _, n := range s.neighbors {
		s.out[n] = &outState{
			pending: make(map[netip.Prefix]bool),
			lastAdv: make(map[netip.Prefix]advRecord),
		}
	}
	return s
}

// ASN returns the speaker's AS number.
func (s *Speaker) ASN() topo.ASN { return s.asn }

// Best returns the selected route for an exact prefix.
func (s *Speaker) Best(p netip.Prefix) (*Route, bool) {
	r, ok := s.best[p]
	return r, ok
}

// AdjIn returns a copy of the per-neighbor routes known for p.
func (s *Speaker) AdjIn(p netip.Prefix) map[topo.ASN]*Route {
	out := make(map[topo.ASN]*Route, len(s.adjIn[p]))
	for n, r := range s.adjIn[p] {
		out[n] = r
	}
	return out
}

// KnownPrefixes returns the prefixes with a selected route, sorted.
func (s *Speaker) KnownPrefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, len(s.best))
	for p := range s.best {
		out = append(out, p)
	}
	sortPrefixes(out)
	return out
}

// sortPrefixes orders prefixes by address then length. Every slice collected
// from a map of prefixes must pass through here before it drives decisions
// or output, so that map iteration order never leaks into a run.
func sortPrefixes(ps []netip.Prefix) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Addr() != ps[j].Addr() {
			return ps[i].Addr().Less(ps[j].Addr())
		}
		return ps[i].Bits() < ps[j].Bits()
	})
}

// announce installs an origin config (already sanitized by the engine) and
// propagates resulting changes.
func (s *Speaker) announce(prefix netip.Prefix, cfg OriginConfig) {
	s.origin[prefix] = &originEntry{
		cfg:   cfg,
		plain: topo.Path{s.asn},
		route: &Route{
			Prefix:      prefix,
			Path:        topo.Path{},
			From:        s.asn,
			LocalPref:   prefOriginated,
			Communities: cfg.Communities,
			Originated:  true,
		},
	}
	s.decide(prefix)
	// Even when the loc-RIB didn't change (origin routes always win),
	// the exported pattern may have: re-advertise everywhere.
	s.markAllPending(prefix)
}

func (s *Speaker) withdrawOrigin(prefix netip.Prefix) {
	if _, ok := s.origin[prefix]; !ok {
		return
	}
	delete(s.origin, prefix)
	s.decide(prefix)
	s.markAllPending(prefix)
}

// receive applies one update from a neighbor.
func (s *Speaker) receive(from topo.ASN, u update) {
	s.e.obs.updatesReceived.Inc()
	if u.path == nil {
		s.e.obs.withdrawalsReceived.Inc()
	}
	m := s.adjIn[u.prefix]
	old := m[from]
	if u.path == nil || !s.importOK(from, u.path) {
		// Withdrawal, or a route rejected by import policy: either way
		// the neighbor no longer offers a usable route.
		if old == nil {
			return
		}
		// Losing a known route is a genuine change, so it counts as a
		// flap (RFC 2439 §4.4.3).
		if s.e.cfg.Dampening.Enabled {
			s.noteFlap(dampKey{from: from, prefix: u.prefix})
		}
		delete(m, from)
	} else {
		rel := s.e.top.Rel(s.asn, from)
		r := &Route{
			Prefix:      u.prefix,
			Path:        u.path,
			From:        from,
			Rel:         rel,
			LocalPref:   localPref(rel),
			MED:         u.med,
			Communities: u.communities,
		}
		if s.communityAction(u.communities) == ActionLowerPref {
			r.LocalPref = prefBackup
		}
		if old != nil && routesEqual(old, r) {
			// Duplicate re-advertisement: RFC 2439 §4.4.3 counts only
			// updates that *change* an existing route, so no penalty.
			return
		}
		// A replacement announcement for a known route is a flap; the
		// first announcement from this neighbor is not.
		if s.e.cfg.Dampening.Enabled && old != nil {
			s.noteFlap(dampKey{from: from, prefix: u.prefix})
		}
		if m == nil {
			m = make(map[topo.ASN]*Route)
			s.adjIn[u.prefix] = m
		}
		m[from] = r
	}
	if s.decide(u.prefix) {
		s.markAllPending(u.prefix)
	}
}

func localPref(rel topo.Rel) int {
	switch rel {
	case topo.RelCustomer:
		return prefCustomer
	case topo.RelPeer:
		return prefPeer
	default:
		return prefProvider
	}
}

// importOK applies loop prevention and the §7.1 policy quirks.
func (s *Speaker) importOK(from topo.ASN, path topo.Path) bool {
	if len(path) == 0 || path[0] != from {
		return false
	}
	as := s.e.top.AS(s.asn)
	// MaxOwnASOccurs == 0 disables loop detection entirely (§7.1).
	if as.MaxOwnASOccurs > 0 && path.Count(s.asn) >= as.MaxOwnASOccurs {
		return false
	}
	if as.FilterPeersFromCustomers && s.e.top.Rel(s.asn, from) == topo.RelCustomer {
		for _, a := range path {
			if s.e.top.Rel(s.asn, a) == topo.RelPeer {
				return false
			}
		}
	}
	return true
}

// decide runs the decision process for prefix; reports whether the loc-RIB
// changed.
func (s *Speaker) decide(prefix netip.Prefix) bool {
	s.e.obs.decisionRuns.Inc()
	var newBest *Route
	if ent, ok := s.origin[prefix]; ok {
		newBest = ent.route
	}
	for n, r := range s.adjIn[prefix] {
		if s.e.cfg.Dampening.Enabled && s.Suppressed(n, prefix) {
			continue
		}
		if better(r, newBest) {
			newBest = r
		}
	}
	old := s.best[prefix]
	if routesEqual(old, newBest) {
		return false
	}
	nodesBefore := s.lpm.nodes
	if newBest == nil {
		delete(s.best, prefix)
		s.lpm.remove(prefix)
		s.e.obs.locRIBRoutes.Dec()
		s.e.notifyBest(s.asn, prefix, nil)
	} else {
		s.best[prefix] = newBest
		s.lpm.insert(prefix, newBest)
		if old == nil {
			s.e.obs.locRIBRoutes.Inc()
		}
		s.e.notifyBest(s.asn, prefix, newBest.Path)
	}
	s.e.obs.lpmNodes.Add(int64(s.lpm.nodes - nodesBefore))
	return true
}

func routesEqual(a, b *Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.From != b.From || !a.Path.Equal(b.Path) || a.Originated != b.Originated {
		return false
	}
	if len(a.Communities) != len(b.Communities) {
		return false
	}
	for i := range a.Communities {
		if a.Communities[i] != b.Communities[i] {
			return false
		}
	}
	return true
}

func (s *Speaker) markAllPending(prefix netip.Prefix) {
	for _, n := range s.neighbors {
		s.out[n].pending[prefix] = true
	}
	for _, n := range s.neighbors {
		s.kick(n)
	}
}

// kick schedules a flush toward n unless an advertisement timer is already
// running; in that case the pending prefixes ride along when it expires.
// The per-neighbor MRAI timer is modelled as free-running: a freshly-kicked
// session flushes at the timer's next tick, a uniform phase away — this is
// what spreads update propagation over tens of seconds per hop and gives
// realistic global convergence times.
func (s *Speaker) kick(n topo.ASN) {
	st := s.out[n]
	if st.timerArmed {
		s.e.obs.mraiDeferrals.Inc()
		return
	}
	st.timerArmed = true
	s.e.armPhase(func() {
		st.timerArmed = false
		if len(st.pending) > 0 {
			s.flushAndArm(n)
		}
	})
}

func (s *Speaker) flushAndArm(n topo.ASN) {
	st := s.out[n]
	if s.flush(n) == 0 {
		return
	}
	st.timerArmed = true
	s.e.armMRAI(func() {
		st.timerArmed = false
		if len(st.pending) > 0 {
			s.flushAndArm(n)
		}
	})
}

// flush sends the pending prefixes to n, deduplicating against what was
// last advertised; it returns the number of messages sent.
func (s *Speaker) flush(n topo.ASN) int {
	st := s.out[n]
	if s.downNbrs[n] {
		clear(st.pending)
		return 0
	}
	if len(st.pending) == 0 {
		return 0
	}
	prefixes := s.flushBuf[:0]
	for p := range st.pending {
		prefixes = append(prefixes, p)
	}
	sortPrefixes(prefixes)
	s.flushBuf = prefixes
	sent := 0
	for _, p := range prefixes {
		delete(st.pending, p)
		path, comms, med, ok := s.exportTo(n, p)
		last, had := st.lastAdv[p]
		if !ok {
			if had {
				delete(st.lastAdv, p)
				s.e.deliver(s.asn, n, update{prefix: p})
				sent++
			}
			continue
		}
		if had && last.path.Equal(path) && communitiesEqual(last.communities, comms) {
			continue
		}
		st.lastAdv[p] = advRecord{path: path, communities: comms}
		s.e.deliver(s.asn, n, update{prefix: p, path: path, communities: comms, med: med})
		sent++
	}
	return sent
}

func communitiesEqual(a, b []Community) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// exportTo computes the announcement of prefix p to neighbor n, applying
// origin patterns, valley-free export policy, split horizon, and community
// stripping. ok=false means "no announcement" (neighbor should hold no
// route from us).
func (s *Speaker) exportTo(n topo.ASN, p netip.Prefix) (path topo.Path, comms []Community, med int, ok bool) {
	if ent, isOrigin := s.origin[p]; isOrigin {
		cfg := &ent.cfg
		pat, announce := ent.pattern(n)
		if !announce {
			return nil, nil, 0, false
		}
		cs := cfg.Communities
		if per, ok := cfg.PerNeighborCommunities[n]; ok {
			cs = per
		}
		// The config was deep-copied at the Announce boundary and paths
		// and community slices are immutable from there on, so the
		// per-flush defensive clones are gone from this hot path.
		return pat, cs, cfg.MED, true
	}
	b := s.best[p]
	if b == nil || b.From == n {
		return nil, nil, 0, false
	}
	// Valley-free export: routes learned from peers or providers are
	// exported only to customers.
	relToN := s.e.top.Rel(s.asn, n)
	if relToN != topo.RelCustomer && b.Rel != topo.RelCustomer {
		return nil, nil, 0, false
	}
	// Action communities this AS defines (§2.3) can further restrict
	// export.
	if blockExport(s.communityAction(b.Communities), relToN) {
		return nil, nil, 0, false
	}
	out := b.exported(s.asn)
	c := b.Communities
	if s.e.top.AS(s.asn).StripCommunities {
		c = nil
	}
	return out, c, 0, true
}
