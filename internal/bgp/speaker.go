package bgp

import (
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"lifeguard/internal/topo"
)

// Speaker is the BGP process of one AS.
type Speaker struct {
	e   *Engine
	asn topo.ASN
	// idx is this speaker's position in the engine's sorted ASN table —
	// the index into the engine's dense per-AS slices.
	idx int

	// adjIn holds the latest accepted offer per prefix per neighbor, in
	// compact delta-encoded form (see rib.go): handles and selection
	// scalars only, sorted by neighbor.
	adjIn map[netip.Prefix]*prefixRIB
	// best is the loc-RIB: the selected route per prefix, materialized
	// (the one representation the data plane and public API consume).
	best map[netip.Prefix]*Route
	// lpm is the compiled longest-prefix-match index over best. It is
	// compiled on the speaker's first data-plane lookup and maintained
	// incrementally by decide from then on (lpmLive): pure control-plane
	// runs — convergence at Internet scale — never pay for a trie nobody
	// walks. Engine.Lookup — the data-plane hot path — reads it instead
	// of probing best per candidate length.
	lpm     lpmIndex
	lpmLive bool
	// origin holds locally-originated prefixes: the (sanitized) announcement
	// policy plus the originated loc-RIB route, built once per Announce so
	// decide does not reallocate it on every update.
	origin map[netip.Prefix]*originEntry
	// out tracks per-neighbor send state, indexed by position in neighbors
	// (dense — the per-AS maps this replaces cost a map header per
	// neighbor pair engine-wide).
	out []outState
	// damp tracks RFC 2439 flap state per (neighbor, prefix).
	damp map[dampKey]*dampState
	// commActions maps this AS's action communities (§2.3) to behaviour.
	commActions map[Community]CommunityAction

	neighbors []topo.ASN // sorted, cached
	// flushBuf is the scratch slice flush sorts pending prefixes into;
	// flush never nests (deliveries are scheduled, not synchronous), so one
	// buffer per speaker removes a per-flush allocation.
	flushBuf []netip.Prefix

	// Sharded-mode state (see shard.go). rng and stats are non-nil only
	// when the engine runs sharded; the remaining fields are live only
	// while the speaker executes a barrier window on a worker.
	rng      *rand.Rand
	stats    *speakerStats
	inWindow bool
	now      time.Duration // virtual time of the event being processed
	winEnd   time.Duration // exclusive end of the current window
	localQ   localHeap
	localSeq uint64
	emits    []engEvent
	notifs   []BestChange
	dirty    map[netip.Prefix]bool
	dirtyBuf []netip.Prefix
	pendDiff int
	active   bool
}

// originEntry pairs an origin policy with its pre-built loc-RIB route, the
// cached plain [self] pattern, and the interned handles of every path /
// community set the policy can announce — so per-flush exports allocate and
// intern nothing.
type originEntry struct {
	cfg   OriginConfig
	route *Route
	plain topo.Path // the [self] path announced when cfg.Pattern is nil

	plainID   pathID
	patternID pathID // 0 when cfg.Pattern is nil
	perNbrID  map[topo.ASN]pathID
	commsID   commID
	perNbrCID map[topo.ASN]commID
}

// export is one computed announcement: the wire slices plus their interned
// handles (pid 0 never reaches deliver — ok=false withdraws instead).
type export struct {
	path  topo.Path
	comms []Community
	med   int
	pid   pathID
	cid   commID
}

// pattern returns the effective path (with handle) announced to neighbor n.
func (ent *originEntry) pattern(n topo.ASN) (topo.Path, pathID, bool) {
	c := &ent.cfg
	if c.Withhold[n] {
		return nil, 0, false
	}
	if p, ok := c.PerNeighbor[n]; ok {
		return p, ent.perNbrID[n], true
	}
	if c.Pattern != nil {
		return c.Pattern, ent.patternID, true
	}
	return ent.plain, ent.plainID, true
}

// advRecord remembers what was last advertised to a neighbor for a prefix —
// two interned handles instead of a path and community slice.
type advRecord struct {
	pid pathID
	cid commID
}

// outState is one neighbor session's send-side state. lastDelivery (the
// per-directed-pair FIFO watermark), extra (chaos-installed propagation
// delay) and down (failed session) moved here from engine-wide maps keyed
// by AS pair.
type outState struct {
	// pending is nil between advertisement rounds: flush drops the map
	// once drained rather than keeping a full-table-sized husk per
	// neighbor session (at 10k ASes those husks were a double-digit
	// share of the heap).
	pending      map[netip.Prefix]bool
	timerArmed   bool
	lastAdv      map[netip.Prefix]advRecord
	lastDelivery time.Duration
	extra        time.Duration
	down         bool
}

// markPending queues p for the next flush toward this session.
func (st *outState) markPending(p netip.Prefix) {
	if st.pending == nil {
		st.pending = make(map[netip.Prefix]bool, 4)
	}
	st.pending[p] = true
}

func newSpeaker(e *Engine, asn topo.ASN, idx int) *Speaker {
	s := &Speaker{
		e:         e,
		asn:       asn,
		idx:       idx,
		adjIn:     make(map[netip.Prefix]*prefixRIB),
		best:      make(map[netip.Prefix]*Route),
		origin:    make(map[netip.Prefix]*originEntry),
		damp:      make(map[dampKey]*dampState),
		neighbors: e.top.Neighbors(asn),
	}
	s.out = make([]outState, len(s.neighbors))
	for i := range s.out {
		s.out[i] = outState{lastAdv: make(map[netip.Prefix]advRecord)}
	}
	return s
}

// nbrIndex returns n's position in the sorted neighbor list, or -1.
func (s *Speaker) nbrIndex(n topo.ASN) int {
	i := sort.Search(len(s.neighbors), func(i int) bool { return s.neighbors[i] >= n })
	if i < len(s.neighbors) && s.neighbors[i] == n {
		return i
	}
	return -1
}

// neighborDown reports whether the session to n is failed (false when n is
// not a neighbor at all).
func (s *Speaker) neighborDown(n topo.ASN) bool {
	i := s.nbrIndex(n)
	return i >= 0 && s.out[i].down
}

// ASN returns the speaker's AS number.
func (s *Speaker) ASN() topo.ASN { return s.asn }

// Best returns the selected route for an exact prefix.
func (s *Speaker) Best(p netip.Prefix) (*Route, bool) {
	r, ok := s.best[p]
	return r, ok
}

// AdjIn returns the per-neighbor routes known for p, materialized from the
// compact store. The returned map and routes are the caller's to keep; the
// path and community slices alias the engine's canonical interned copies
// and must be treated as read-only.
func (s *Speaker) AdjIn(p netip.Prefix) map[topo.ASN]*Route {
	rb := s.adjIn[p]
	out := make(map[topo.ASN]*Route, len(entriesOf(rb)))
	for i := range entriesOf(rb) {
		ent := &rb.entries[i]
		out[ent.nbr] = s.materialize(p, ent)
	}
	return out
}

func entriesOf(rb *prefixRIB) []adjEntry {
	if rb == nil {
		return nil
	}
	return rb.entries
}

// materialize builds the full Route for a compact entry.
func (s *Speaker) materialize(p netip.Prefix, ent *adjEntry) *Route {
	return &Route{
		Prefix:      p,
		Path:        s.e.arena.path(ent.path),
		From:        ent.nbr,
		Rel:         ent.rel,
		LocalPref:   int(ent.lpref),
		MED:         int(ent.med),
		Communities: s.e.arena.communities(ent.comms),
		pid:         ent.path,
		cid:         ent.comms,
	}
}

// KnownPrefixes returns the prefixes with a selected route, sorted.
func (s *Speaker) KnownPrefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, len(s.best))
	for p := range s.best {
		out = append(out, p)
	}
	sortPrefixes(out)
	return out
}

// sortPrefixes orders prefixes by address then length. Every slice collected
// from a map of prefixes must pass through here before it drives decisions
// or output, so that map iteration order never leaks into a run.
func sortPrefixes(ps []netip.Prefix) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Addr() != ps[j].Addr() {
			return ps[i].Addr().Less(ps[j].Addr())
		}
		return ps[i].Bits() < ps[j].Bits()
	})
}

// announce installs an origin config (already sanitized by the engine) and
// propagates resulting changes.
func (s *Speaker) announce(prefix netip.Prefix, cfg OriginConfig) {
	ent := &originEntry{
		cfg:   cfg,
		plain: topo.Path{s.asn},
		route: &Route{
			Prefix:      prefix,
			Path:        topo.Path{},
			From:        s.asn,
			LocalPref:   prefOriginated,
			Communities: cfg.Communities,
			Originated:  true,
		},
	}
	a := s.e.arena
	ent.plainID = a.internPath(ent.plain)
	if cfg.Pattern != nil {
		ent.patternID = a.internPath(cfg.Pattern)
	}
	if len(cfg.PerNeighbor) > 0 {
		ent.perNbrID = make(map[topo.ASN]pathID, len(cfg.PerNeighbor))
		for n, p := range cfg.PerNeighbor {
			ent.perNbrID[n] = a.internPath(p)
		}
	}
	ent.commsID = a.internComms(cfg.Communities)
	if len(cfg.PerNeighborCommunities) > 0 {
		ent.perNbrCID = make(map[topo.ASN]commID, len(cfg.PerNeighborCommunities))
		for n, cs := range cfg.PerNeighborCommunities {
			ent.perNbrCID[n] = a.internComms(cs)
		}
	}
	s.origin[prefix] = ent
	s.decide(prefix)
	// Even when the loc-RIB didn't change (origin routes always win),
	// the exported pattern may have: re-advertise everywhere.
	s.markAllPending(prefix)
}

func (s *Speaker) withdrawOrigin(prefix netip.Prefix) {
	if _, ok := s.origin[prefix]; !ok {
		return
	}
	delete(s.origin, prefix)
	s.decide(prefix)
	s.markAllPending(prefix)
}

// receive applies one update from a neighbor and, in the classic engine,
// immediately runs the decision process. The sharded engine calls
// applyUpdate directly and batches decisions per window (see settleDirty).
func (s *Speaker) receive(from topo.ASN, u update) {
	if s.applyUpdate(from, u) {
		if s.decide(u.prefix) {
			s.markAllPending(u.prefix)
		}
	}
}

// applyUpdate folds one update into the adj-RIB-in and reports whether the
// stored offer changed (i.e. whether a decision run could change the
// loc-RIB).
func (s *Speaker) applyUpdate(from topo.ASN, u update) bool {
	if st := s.stats; st != nil && s.inWindow {
		st.updatesReceived++
		if u.path == nil {
			st.withdrawalsReceived++
		}
	} else {
		s.e.obs.updatesReceived.Inc()
		if u.path == nil {
			s.e.obs.withdrawalsReceived.Inc()
		}
	}
	rb := s.adjIn[u.prefix]
	idx := -1
	if rb != nil {
		idx = rb.find(from)
	}
	if u.path == nil || !s.importOK(from, u.path) {
		// Withdrawal, or a route rejected by import policy: either way
		// the neighbor no longer offers a usable route.
		if idx < 0 {
			return false
		}
		// Losing a known route is a genuine change, so it counts as a
		// flap (RFC 2439 §4.4.3).
		if s.e.cfg.Dampening.Enabled {
			s.noteFlap(dampKey{from: from, prefix: u.prefix})
		}
		rb.remove(idx)
		return true
	}
	rel := s.e.top.Rel(s.asn, from)
	lpref := localPref(rel)
	if s.communityAction(u.communities) == ActionLowerPref {
		lpref = prefBackup
	}
	// Flush always ships interned handles alongside the slices; an update
	// injected without them (tests, external bridges) is interned here, on
	// defensive copies since the arena aliases what it is handed.
	pid, cid := u.pid, u.cid
	if pid == 0 {
		pid = s.e.arena.internPath(u.path.Clone())
	}
	if cid == 0 && len(u.communities) > 0 {
		cid = s.e.arena.internComms(append([]Community(nil), u.communities...))
	}
	ent := adjEntry{
		nbr:   from,
		rel:   rel,
		plen:  uint16(len(u.path)),
		lpref: int32(lpref),
		med:   int32(u.med),
		path:  pid,
		comms: cid,
	}
	if idx >= 0 {
		old := &rb.entries[idx]
		if old.path == ent.path && old.comms == ent.comms {
			// Duplicate re-advertisement: RFC 2439 §4.4.3 counts only
			// updates that *change* an existing route, so no penalty.
			// (MED-only changes are invisible here, as they were under
			// the materialized representation's routesEqual.)
			return false
		}
		// A replacement announcement for a known route is a flap; the
		// first announcement from this neighbor is not.
		if s.e.cfg.Dampening.Enabled {
			s.noteFlap(dampKey{from: from, prefix: u.prefix})
		}
		*old = ent
		return true
	}
	if rb == nil {
		rb = &prefixRIB{}
		s.adjIn[u.prefix] = rb
	}
	rb.insert(ent)
	return true
}

func localPref(rel topo.Rel) int {
	switch rel {
	case topo.RelCustomer:
		return prefCustomer
	case topo.RelPeer:
		return prefPeer
	default:
		return prefProvider
	}
}

// importOK applies loop prevention and the §7.1 policy quirks.
func (s *Speaker) importOK(from topo.ASN, path topo.Path) bool {
	if len(path) == 0 || path[0] != from {
		return false
	}
	as := s.e.top.AS(s.asn)
	// MaxOwnASOccurs == 0 disables loop detection entirely (§7.1).
	if as.MaxOwnASOccurs > 0 && path.Count(s.asn) >= as.MaxOwnASOccurs {
		return false
	}
	if as.FilterPeersFromCustomers && s.e.top.Rel(s.asn, from) == topo.RelCustomer {
		for _, a := range path {
			if s.e.top.Rel(s.asn, a) == topo.RelPeer {
				return false
			}
		}
	}
	return true
}

// decide runs the decision process for prefix; reports whether the loc-RIB
// changed. Only a changed winner is materialized into a *Route.
func (s *Speaker) decide(prefix netip.Prefix) bool {
	if st := s.stats; st != nil && s.inWindow {
		st.decisionRuns++
	} else {
		s.e.obs.decisionRuns.Inc()
	}
	old := s.best[prefix]
	var newBest *Route
	if ent, ok := s.origin[prefix]; ok {
		// Originated routes carry prefOriginated, above every imported
		// local-pref tier: they always win.
		newBest = ent.route
	} else {
		rb := s.adjIn[prefix]
		win := -1
		for i := range entriesOf(rb) {
			ent := &rb.entries[i]
			if s.e.cfg.Dampening.Enabled && s.Suppressed(ent.nbr, prefix) {
				continue
			}
			if win < 0 || entryBetter(ent, &rb.entries[win]) {
				win = i
			}
		}
		if win >= 0 {
			w := &rb.entries[win]
			if old != nil && !old.Originated && old.From == w.nbr &&
				old.pid == w.path && old.cid == w.comms {
				return false // same winner, same route
			}
			newBest = s.materialize(prefix, w)
		}
	}
	if routesEqual(old, newBest) {
		return false
	}
	nodesBefore := s.lpm.nodes
	if newBest == nil {
		delete(s.best, prefix)
		if s.lpmLive {
			s.lpm.remove(prefix)
		}
		s.statLocRIB(-1)
		s.e.notifyBest(s, prefix, nil)
	} else {
		s.best[prefix] = newBest
		if s.lpmLive {
			s.lpm.insert(prefix, newBest)
		}
		if old == nil {
			s.statLocRIB(1)
		}
		s.e.notifyBest(s, prefix, newBest.Path)
	}
	if s.lpmLive {
		s.statLPMNodes(int64(s.lpm.nodes - nodesBefore))
	}
	return true
}

// compileLPM builds the trie from the loc-RIB the first time the data
// plane looks anything up; decide keeps it current afterwards. The trie's
// shape is a function of the prefix set alone, so lazy compilation yields
// the exact index eager maintenance would have.
func (s *Speaker) compileLPM() {
	if s.lpmLive {
		return
	}
	s.lpmLive = true
	for p, r := range s.best {
		s.lpm.insert(p, r)
	}
	s.statLPMNodes(int64(s.lpm.nodes))
}

func routesEqual(a, b *Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.From != b.From || !a.Path.Equal(b.Path) || a.Originated != b.Originated {
		return false
	}
	if len(a.Communities) != len(b.Communities) {
		return false
	}
	for i := range a.Communities {
		if a.Communities[i] != b.Communities[i] {
			return false
		}
	}
	return true
}

func (s *Speaker) markAllPending(prefix netip.Prefix) {
	for i := range s.out {
		s.out[i].markPending(prefix)
	}
	for i := range s.out {
		s.kick(i)
	}
}

// kick schedules a flush toward neighbor i unless an advertisement timer is
// already running; in that case the pending prefixes ride along when it
// expires. The per-neighbor MRAI timer is modelled as free-running: a
// freshly-kicked session flushes at the timer's next tick, a uniform phase
// away — this is what spreads update propagation over tens of seconds per
// hop and gives realistic global convergence times.
func (s *Speaker) kick(i int) {
	st := &s.out[i]
	if st.timerArmed {
		if ss := s.stats; ss != nil && s.inWindow {
			ss.mraiDeferrals++
		} else {
			s.e.obs.mraiDeferrals.Inc()
		}
		return
	}
	st.timerArmed = true
	s.e.schedPhase(s, i)
}

// timerFired handles an expired phase or MRAI timer for neighbor i — the
// shared body of the classic closures and the sharded typed events.
func (s *Speaker) timerFired(i int) {
	st := &s.out[i]
	st.timerArmed = false
	if len(st.pending) > 0 {
		s.flushAndArm(i)
	}
}

func (s *Speaker) flushAndArm(i int) {
	if s.flush(i) == 0 {
		return
	}
	s.out[i].timerArmed = true
	s.e.schedMRAI(s, i)
}

// flush sends the pending prefixes to neighbor i, deduplicating against
// what was last advertised; it returns the number of messages sent.
func (s *Speaker) flush(i int) int {
	st := &s.out[i]
	n := s.neighbors[i]
	if st.down {
		st.pending = nil
		return 0
	}
	if len(st.pending) == 0 {
		return 0
	}
	prefixes := s.flushBuf[:0]
	for p := range st.pending {
		prefixes = append(prefixes, p)
	}
	sortPrefixes(prefixes)
	s.flushBuf = prefixes
	// Everything queued goes out below. Steady-state rounds keep their
	// small map (clearing is cheap, reallocating is GC churn); a
	// full-table burst round drops its map wholesale, since clearing a
	// burst-capacity husk on every later round costs O(capacity) and the
	// husk would otherwise stay resident per session for the whole run.
	if len(prefixes) > 64 {
		st.pending = nil
	} else {
		clear(st.pending)
	}
	sent := 0
	for _, p := range prefixes {
		ex, ok := s.exportTo(n, p)
		last, had := st.lastAdv[p]
		if !ok {
			if had {
				delete(st.lastAdv, p)
				s.e.deliver(s, i, update{prefix: p})
				sent++
			}
			continue
		}
		if had && last.pid == ex.pid && last.cid == ex.cid {
			continue
		}
		st.lastAdv[p] = advRecord{pid: ex.pid, cid: ex.cid}
		s.e.deliver(s, i, update{
			prefix:      p,
			path:        ex.path,
			communities: ex.comms,
			med:         ex.med,
			pid:         ex.pid,
			cid:         ex.cid,
		})
		sent++
	}
	return sent
}

// exportTo computes the announcement of prefix p to neighbor n, applying
// origin patterns, valley-free export policy, split horizon, and community
// stripping. ok=false means "no announcement" (neighbor should hold no
// route from us).
func (s *Speaker) exportTo(n topo.ASN, p netip.Prefix) (export, bool) {
	if ent, isOrigin := s.origin[p]; isOrigin {
		cfg := &ent.cfg
		pat, pid, announce := ent.pattern(n)
		if !announce {
			return export{}, false
		}
		cs, cid := cfg.Communities, ent.commsID
		if per, ok := cfg.PerNeighborCommunities[n]; ok {
			cs, cid = per, ent.perNbrCID[n]
		}
		// The config was deep-copied at the Announce boundary and paths
		// and community slices are immutable from there on, so the
		// per-flush defensive clones are gone from this hot path.
		return export{path: pat, comms: cs, med: cfg.MED, pid: pid, cid: cid}, true
	}
	b := s.best[p]
	if b == nil || b.From == n {
		return export{}, false
	}
	// Valley-free export: routes learned from peers or providers are
	// exported only to customers.
	relToN := s.e.top.Rel(s.asn, n)
	if relToN != topo.RelCustomer && b.Rel != topo.RelCustomer {
		return export{}, false
	}
	// Action communities this AS defines (§2.3) can further restrict
	// export.
	if blockExport(s.communityAction(b.Communities), relToN) {
		return export{}, false
	}
	out, pid := b.exportedTo(s.e.arena, s.asn)
	c, cid := b.Communities, b.cid
	if s.e.top.AS(s.asn).StripCommunities {
		c, cid = nil, 0
	}
	return export{path: out, comms: c, med: 0, pid: pid, cid: cid}, true
}

// statLocRIB and statLPMNodes route the loc-RIB gauges through the window
// buffer when the speaker runs on a barrier worker.
func (s *Speaker) statLocRIB(delta int64) {
	if st := s.stats; st != nil && s.inWindow {
		st.locRIBRoutes += delta
		return
	}
	s.e.obs.locRIBRoutes.Add(delta)
}

func (s *Speaker) statLPMNodes(delta int64) {
	if delta == 0 {
		return
	}
	if st := s.stats; st != nil && s.inWindow {
		st.lpmNodes += delta
		return
	}
	s.e.obs.lpmNodes.Add(delta)
}
