package bgp

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"lifeguard/internal/runner"
	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
)

// Sharded event loop. The classic engine schedules every protocol event as
// its own simclock closure, which serializes the whole Internet through one
// heap and spends most of a large run's wall clock on scheduler overhead.
// The sharded engine instead keeps protocol events in a typed heap of its
// own, pumps them in *barrier windows*, and runs each window's speakers
// concurrently:
//
//   - One simclock event (the pump) is armed at the typed heap's earliest
//     time, so the engine still interleaves correctly — and deterministically
//     — with everything else on the scheduler (monitors, probes, chaos
//     timelines).
//   - A window spans [t0, t0+W) where W = (1-PropJitter)·PropDelay − 1µs,
//     clamped down so it never crosses the next external simclock event.
//     Every cross-speaker message emitted at time t inside the window is
//     delivered at t + jitter·PropDelay + extra ≥ t0 + (1-PropJitter)·
//     PropDelay > t0 + W (extra delays are non-negative — SetLinkExtraDelay
//     panics otherwise — and the FIFO bump only pushes later). So no event
//     processed in this window can create work for another speaker *inside*
//     the window: speakers are causally independent within a window and may
//     run on separate workers. emit enforces this with a panic, making the
//     safety argument a checked invariant rather than a comment.
//   - Same-speaker events (MRAI/phase timers, dampening reuse checks) may
//     land inside the window; they go to the speaker's private local heap
//     and are processed in (time, global-before-local, sequence) order.
//   - Determinism: events are popped from the global heap in (time, seq)
//     order; the active-speaker list, each speaker's event sequence, its rng
//     stream (per-speaker, seeded from Seed and ASN), and the merge order of
//     emitted events and buffered BestChange notifications are all
//     independent of worker count. Sharded runs are byte-identical for every
//     ShardWorkers ≥ 1. (They differ from classic runs, which draw all
//     jitter from one engine-global stream.)
//
// Decision batching rides on the same structure: deliveries inside a window
// only fold into the adj-RIB-in and mark the prefix dirty; the decision
// process runs once per dirty prefix — in sorted prefix order — before any
// timer fires (a flush must export settled routes) and at window end.

// evKind discriminates typed engine events.
type evKind uint8

const (
	evDeliver evKind = iota // a BGP update arriving at sp from `from`
	evTimer                 // sp's phase/MRAI timer for neighbor index nbr
	evReuse                 // dampening reuse check at sp for (from, prefix)
)

// engEvent is one typed protocol event.
type engEvent struct {
	at  time.Duration
	seq uint64 // tie-break; global or per-speaker-local counter
	// local marks events emitted by their owner inside the current window;
	// at equal times the already-scheduled (global) event runs first,
	// matching the classic loop's FIFO heap.
	local   bool
	counted bool // contributes to Engine.pendingEvents (reuse checks do not)
	kind    evKind
	sp      topo.ASN // owner: the speaker that will process the event
	from    topo.ASN // evDeliver: sender; evReuse: dampened neighbor
	nbr     int32    // evTimer: neighbor index
	u       update   // evDeliver: payload; evReuse: u.prefix identifies the pair
}

func evLess(a, b *engEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.local != b.local {
		return !a.local
	}
	return a.seq < b.seq
}

// localHeap is a plain binary min-heap of engEvents, used both for the
// engine's global typed heap and each speaker's in-window local queue.
type localHeap struct {
	ev []engEvent
}

func (h *localHeap) len() int { return len(h.ev) }

func (h *localHeap) push(e engEvent) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !evLess(&h.ev[i], &h.ev[parent]) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

func (h *localHeap) pop() engEvent {
	top := h.ev[0]
	n := len(h.ev) - 1
	h.ev[0] = h.ev[n]
	h.ev[n] = engEvent{} // release payload references
	h.ev = h.ev[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && evLess(&h.ev[l], &h.ev[small]) {
			small = l
		}
		if r < n && evLess(&h.ev[r], &h.ev[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.ev[i], h.ev[small] = h.ev[small], h.ev[i]
		i = small
	}
	return top
}

// shardState is the engine's sharded-mode machinery.
type shardState struct {
	workers int
	window  time.Duration
	heap    localHeap
	seq     uint64
	// The pump is the single simclock event representing the typed heap;
	// when armed it sits exactly at the heap's earliest time.
	pumpArmed bool
	pumpAt    time.Duration
	pumpID    simclock.EventID
	active    []*Speaker // scratch: the current barrier's speakers, pop order
}

// initShard validates the timing model leaves a usable barrier window and
// equips every speaker with its own rng stream and stats buffer.
func (e *Engine) initShard() {
	w := time.Duration((1 - e.cfg.PropJitter) * float64(e.cfg.PropDelay))
	w -= time.Microsecond // FIFO bumps advance deliveries by 1µs
	if w <= 0 {
		panic(fmt.Sprintf("bgp: ShardWorkers requires (1-PropJitter)*PropDelay > 1µs; PropDelay %v with PropJitter %v leaves no safe barrier window",
			e.cfg.PropDelay, e.cfg.PropJitter))
	}
	e.shard = &shardState{workers: e.cfg.ShardWorkers, window: w}
	for _, asn := range e.asns {
		s := e.speakers[asn]
		// Distinct, reproducible stream per speaker: the golden-ratio
		// multiplier spreads consecutive ASNs across seed space.
		s.rng = rand.New(&splitmix{state: uint64(e.cfg.Seed + int64(asn)*0x9E3779B9)})
		s.stats = &speakerStats{}
		s.dirty = make(map[netip.Prefix]bool)
	}
}

// splitmix is SplitMix64 as a rand.Source64: 8 bytes of state where the
// stdlib's default source carries ~5KB — at one stream per speaker, the
// difference is tens of megabytes on a 10k-AS topology.
type splitmix struct{ state uint64 }

func (s *splitmix) Seed(seed int64) { s.state = uint64(seed) }

func (s *splitmix) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitmix) Int63() int64 { return int64(s.Uint64() >> 1) }

// emit routes a typed event: to the emitting speaker's local queue when it
// targets itself inside the current window, to its deferred-emit buffer when
// it lands at or past the window end, and straight onto the global heap when
// no window is active (API calls, chaos callbacks between barriers).
func (e *Engine) emit(s *Speaker, ev engEvent, counted bool) {
	ev.counted = counted
	if s.inWindow {
		if ev.at < s.winEnd {
			if ev.sp != s.asn {
				panic(fmt.Sprintf("bgp: shard window-safety violation: AS %d emitted an event for AS %d at %v inside window ending %v",
					s.asn, ev.sp, ev.at, s.winEnd))
			}
			ev.local = true
			ev.seq = s.localSeq
			s.localSeq++
			if counted {
				s.pendDiff++
			}
			s.localQ.push(ev)
			return
		}
		if counted {
			s.pendDiff++
		}
		s.emits = append(s.emits, ev)
		return
	}
	if counted {
		e.pendingEvents++
	}
	sh := e.shard
	ev.seq = sh.seq
	sh.seq++
	sh.heap.push(ev)
	e.rearmPump()
}

// rearmPump keeps the invariant "pump armed ⇔ typed heap non-empty, at its
// top's time". It is cheap when the invariant already holds.
func (e *Engine) rearmPump() {
	sh := e.shard
	if sh.heap.len() == 0 {
		if sh.pumpArmed {
			e.clk.Cancel(sh.pumpID)
			sh.pumpArmed = false
		}
		return
	}
	top := sh.heap.ev[0].at
	if sh.pumpArmed {
		if sh.pumpAt <= top {
			return
		}
		e.clk.Cancel(sh.pumpID)
	}
	sh.pumpArmed = true
	sh.pumpAt = top
	sh.pumpID = e.clk.At(top, e.pumpFire)
}

// pumpFire runs one barrier window and re-arms for the next.
func (e *Engine) pumpFire() {
	e.shard.pumpArmed = false
	e.runBarrier()
	e.rearmPump()
}

// runBarrier pops one window's worth of events, fans the active speakers out
// across workers, and merges their effects back in deterministic order.
func (e *Engine) runBarrier() {
	sh := e.shard
	if sh.heap.len() == 0 {
		return
	}
	t0 := sh.heap.ev[0].at
	tEnd := t0 + sh.window
	// Never run past the next external simclock event: a monitor or chaos
	// callback at t must observe engine state as of t, not t+window. An
	// external event at exactly t0 shrinks the window to the single instant.
	if next, ok := e.clk.NextAt(); ok && next < tEnd {
		if next <= t0 {
			tEnd = t0 + time.Nanosecond
		} else {
			tEnd = next
		}
	}
	active := sh.active[:0]
	for sh.heap.len() > 0 && sh.heap.ev[0].at < tEnd {
		ev := sh.heap.pop()
		if ev.counted {
			e.pendingEvents--
			ev.counted = false // the local pop must not decrement again
		}
		s := e.speakers[ev.sp]
		if !s.active {
			s.active = true
			s.inWindow = true
			s.winEnd = tEnd
			active = append(active, s)
		}
		s.localQ.push(ev) // keeps its global seq; local=false orders it first
	}
	sh.active = active
	if sh.workers > 1 && len(active) > 1 {
		_, err := runner.Map(context.Background(), len(active),
			runner.Config{Parallelism: sh.workers},
			func(_ context.Context, i int) (struct{}, error) {
				active[i].runWindow()
				return struct{}{}, nil
			})
		if err != nil {
			panic(fmt.Sprintf("bgp: barrier worker failed: %v", err))
		}
	} else {
		for _, s := range active {
			s.runWindow()
		}
	}
	// Merge, in the deterministic active order: pending-event deltas,
	// deferred emits (fresh global sequence numbers), buffered stats, and
	// loc-RIB change notifications (re-sorted into one global timeline).
	var notifs []BestChange
	for _, s := range active {
		e.pendingEvents += s.pendDiff
		s.pendDiff = 0
		for _, ev := range s.emits {
			ev.local = false
			ev.seq = sh.seq
			sh.seq++
			sh.heap.push(ev)
		}
		s.emits = s.emits[:0]
		if len(s.notifs) > 0 {
			notifs = append(notifs, s.notifs...)
			s.notifs = s.notifs[:0]
		}
		e.flushStats(s.stats)
		s.active = false
		s.inWindow = false
	}
	if len(notifs) > 0 {
		sort.SliceStable(notifs, func(i, j int) bool { return notifs[i].At < notifs[j].At })
		for _, bc := range notifs {
			e.OnBestChange(bc)
		}
	}
}

// runWindow drains the speaker's local queue — the barrier's events for this
// speaker plus whatever same-speaker events they spawn inside the window —
// then settles any deferred decisions. Runs on a worker goroutine; it may
// touch only this speaker's state, the engine's immutable config/topology,
// the lock-protected arena, and the speaker's own dense slots.
func (s *Speaker) runWindow() {
	for {
		for s.localQ.len() > 0 {
			ev := s.localQ.pop()
			s.now = ev.at
			if ev.counted {
				s.pendDiff--
			}
			switch ev.kind {
			case evDeliver:
				if s.neighborDown(ev.from) {
					break // the session died while the message was in flight
				}
				if s.applyUpdate(ev.from, ev.u) {
					s.dirty[ev.u.prefix] = true
				}
			case evTimer:
				// A flush exports loc-RIB routes: settle deferred
				// decisions first so it never advertises a stale winner.
				s.settleDirty()
				s.timerFired(int(ev.nbr))
			case evReuse:
				s.settleDirty()
				s.reuseCheck(dampKey{from: ev.from, prefix: ev.u.prefix})
			}
		}
		// Settling can kick sessions whose phase timer lands back inside
		// this window; loop until the queue stays empty, or those events
		// would go stale and replay with past timestamps in a later
		// barrier.
		s.settleDirty()
		if s.localQ.len() == 0 {
			return
		}
	}
}

// settleDirty runs the decision process for every prefix touched since the
// last settle, in sorted prefix order so map iteration never leaks into the
// update schedule.
func (s *Speaker) settleDirty() {
	if len(s.dirty) == 0 {
		return
	}
	buf := s.dirtyBuf[:0]
	for p := range s.dirty {
		buf = append(buf, p)
	}
	sortPrefixes(buf)
	s.dirtyBuf = buf
	clear(s.dirty)
	for _, p := range buf {
		if s.decide(p) {
			s.markAllPending(p)
		}
	}
}
