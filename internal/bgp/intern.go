package bgp

import (
	"sync"

	"lifeguard/internal/topo"
)

// AS-path and community interning. At Internet scale the same AS path is
// offered to a speaker by many neighbors and stored by thousands of
// speakers; materializing a []ASN per adj-RIB-in entry multiplies the
// dominant memory term by the mean path length. The engine instead keeps
// one global arena of canonical paths and hands out 32-bit handles: RIB
// entries store handles, and topo.Path values are materialized only at API
// boundaries (Best/AdjIn/BestChange) or when a message needs the slice for
// import policy.
//
// Handles are used strictly for equality ("is this the same path I already
// advertised / already store?"), never for ordering or output, so the
// numeric handle values — which depend on interning order — can never leak
// into a run's results. That makes the arena safe to share across the
// sharded engine's barrier workers under a plain RWMutex: two runs may
// assign different ids, but every id comparison they feed is between ids
// of the same run.

// pathID is a handle into the engine arena's path table. 0 means "no path"
// (a withdrawal); the empty path (an originated route) interns like any
// other and gets a nonzero id.
type pathID uint32

// commID is a handle into the arena's community-set table. 0 means "no
// communities" (nil or empty).
type commID uint32

// arena is the engine-global intern table for AS paths and community sets.
type arena struct {
	mu       sync.RWMutex
	paths    []topo.Path // paths[id-1] is the canonical slice for id
	pathIdx  map[string]pathID
	comms    [][]Community
	commsIdx map[string]commID
}

func newArena() *arena {
	return &arena{
		pathIdx:  make(map[string]pathID),
		commsIdx: make(map[string]commID),
	}
}

// pathKey encodes p as 4 bytes per hop into buf (reused across calls);
// topo.ASN is 32-bit, so the key must carry the full width or distinct
// paths above 65535 would alias.
func pathKey(buf []byte, p topo.Path) []byte {
	buf = buf[:0]
	for _, a := range p {
		buf = append(buf, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
	}
	return buf
}

// internPath returns the canonical id for p, interning it on first sight.
// p must be immutable from the caller's side (the arena aliases it); every
// interned path in this engine is either a sanitized origin pattern or a
// freshly-built export path, both of which never mutate.
func (a *arena) internPath(p topo.Path) pathID {
	if p == nil {
		return 0
	}
	var scratch [64]byte
	key := pathKey(scratch[:0], p)
	a.mu.RLock()
	id, ok := a.pathIdx[string(key)]
	a.mu.RUnlock()
	if ok {
		return id
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if id, ok := a.pathIdx[string(key)]; ok {
		return id
	}
	a.paths = append(a.paths, p)
	id = pathID(len(a.paths))
	a.pathIdx[string(key)] = id
	return id
}

// path materializes the canonical slice for id; callers must treat it as
// read-only. id 0 returns nil.
func (a *arena) path(id pathID) topo.Path {
	if id == 0 {
		return nil
	}
	a.mu.RLock()
	p := a.paths[id-1]
	a.mu.RUnlock()
	return p
}

// internComms returns the canonical id for cs (order-sensitive, matching
// the element-wise equality updates always used). Empty sets are id 0.
func (a *arena) internComms(cs []Community) commID {
	if len(cs) == 0 {
		return 0
	}
	var scratch [32]byte
	key := scratch[:0]
	for _, c := range cs {
		key = append(key, byte(c>>24), byte(c>>16), byte(c>>8), byte(c))
	}
	a.mu.RLock()
	id, ok := a.commsIdx[string(key)]
	a.mu.RUnlock()
	if ok {
		return id
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if id, ok := a.commsIdx[string(key)]; ok {
		return id
	}
	a.comms = append(a.comms, cs)
	id = commID(len(a.comms))
	a.commsIdx[string(key)] = id
	return id
}

// communities materializes the canonical set for id (read-only; nil for 0).
func (a *arena) communities(id commID) []Community {
	if id == 0 {
		return nil
	}
	a.mu.RLock()
	cs := a.comms[id-1]
	a.mu.RUnlock()
	return cs
}

// PathArenaSize reports how many distinct AS paths the engine has interned —
// the denominator of the memory win the arena buys (total adj-RIB-in entries
// divided by this is the sharing factor).
func (e *Engine) PathArenaSize() int {
	e.arena.mu.RLock()
	defer e.arena.mu.RUnlock()
	return len(e.arena.paths)
}
