package bgp

import (
	"math"
	"net/netip"
	"time"

	"lifeguard/internal/topo"
)

// Route-flap dampening (RFC 2439). The paper's deployment held each
// announcement for 90 minutes precisely "to allow convergence and to avoid
// flap dampening effects" (§5); with dampening enabled here, an origin that
// poisons and unpoisons too eagerly gets its prefix suppressed by remote
// ASes — the ablation benchmark quantifies that trade-off.

// DampeningConfig tunes the RFC 2439 parameters. Values follow the
// classic Cisco defaults.
type DampeningConfig struct {
	Enabled bool
	// Penalty added per flap (an update that changes an existing route,
	// or a withdrawal). Default 1000.
	FlapPenalty float64
	// SuppressAt is the penalty above which the route is suppressed.
	// Default 2000.
	SuppressAt float64
	// ReuseAt is the penalty below which a suppressed route is usable
	// again. Default 750.
	ReuseAt float64
	// HalfLife of the exponential decay. Default 15 minutes.
	HalfLife time.Duration
	// MaxPenalty caps accumulation. Default 12000.
	MaxPenalty float64
}

func (c DampeningConfig) withDefaults() DampeningConfig {
	if c.FlapPenalty == 0 {
		c.FlapPenalty = 1000
	}
	if c.SuppressAt == 0 {
		c.SuppressAt = 2000
	}
	if c.ReuseAt == 0 {
		c.ReuseAt = 750
	}
	if c.HalfLife == 0 {
		c.HalfLife = 15 * time.Minute
	}
	if c.MaxPenalty == 0 {
		c.MaxPenalty = 12000
	}
	return c
}

// dampKey identifies one dampened (neighbor, prefix) pair at a speaker.
type dampKey struct {
	from   topo.ASN
	prefix netip.Prefix
}

// dampState tracks one pair's figure of merit.
type dampState struct {
	penalty    float64
	updatedAt  time.Duration
	suppressed bool
}

// decayedPenalty returns the penalty decayed to virtual time now.
func (d *dampState) decayedPenalty(now time.Duration, half time.Duration) float64 {
	dt := now - d.updatedAt
	if dt <= 0 {
		return d.penalty
	}
	return d.penalty * math.Exp2(-float64(dt)/float64(half))
}

// noteFlap records a flap and reports whether the pair is now suppressed.
// It also handles reuse scheduling via the returned projected reuse delay
// (0 when not suppressed).
func (s *Speaker) noteFlap(k dampKey) {
	cfg := s.e.cfg.Dampening
	now := s.e.nowFor(s)
	st := s.damp[k]
	if st == nil {
		st = &dampState{updatedAt: now}
		s.damp[k] = st
	}
	st.penalty = st.decayedPenalty(now, cfg.HalfLife) + cfg.FlapPenalty
	if st.penalty > cfg.MaxPenalty {
		st.penalty = cfg.MaxPenalty
	}
	st.updatedAt = now
	if ss := s.stats; ss != nil && s.inWindow {
		ss.dampPenalties++
	} else {
		s.e.obs.dampPenalties.Inc()
	}
	if !st.suppressed && st.penalty >= cfg.SuppressAt {
		st.suppressed = true
		if ss := s.stats; ss != nil && s.inWindow {
			ss.dampSuppressions++
		} else {
			s.e.obs.dampSuppressions.Inc()
		}
		// Schedule the reuse check for when the penalty decays to the
		// reuse threshold.
		s.e.schedReuse(s, k, reuseDelay(st.penalty, cfg))
	}
}

// reuseDelay projects how long until penalty decays to the reuse
// threshold, floored at one second so a marginal overshoot cannot re-arm
// at the same virtual instant forever.
func reuseDelay(penalty float64, cfg DampeningConfig) time.Duration {
	halfLives := math.Log2(penalty / cfg.ReuseAt)
	d := time.Duration(halfLives * float64(cfg.HalfLife))
	if d < time.Second {
		d = time.Second
	}
	return d
}

// reuseCheck releases a suppressed pair once its penalty has decayed.
func (s *Speaker) reuseCheck(k dampKey) {
	cfg := s.e.cfg.Dampening
	st := s.damp[k]
	if st == nil || !st.suppressed {
		return
	}
	if p := st.decayedPenalty(s.e.nowFor(s), cfg.HalfLife); p > cfg.ReuseAt {
		// Not yet (another flap bumped it); re-arm.
		s.e.schedReuse(s, k, reuseDelay(p, cfg))
		return
	}
	st.suppressed = false
	if s.decide(k.prefix) {
		s.markAllPending(k.prefix)
	}
}

// Suppressed reports whether the route from neighbor for prefix is
// currently dampened at this speaker.
func (s *Speaker) Suppressed(from topo.ASN, prefix netip.Prefix) bool {
	st := s.damp[dampKey{from: from, prefix: prefix}]
	return st != nil && st.suppressed
}

// Penalty returns the current decayed penalty for the pair (0 if none).
func (s *Speaker) Penalty(from topo.ASN, prefix netip.Prefix) float64 {
	st := s.damp[dampKey{from: from, prefix: prefix}]
	if st == nil {
		return 0
	}
	return st.decayedPenalty(s.e.nowFor(s), s.e.cfg.Dampening.HalfLife)
}
