// Package lockcopyplus extends vet's copylocks to API shape: any function
// signature that moves a lock-bearing struct by value is reported, even when
// no call site copies it yet.
//
// The BGP session and server types guard connection state with sync.Mutex;
// copying one forks the lock while both copies share the net.Conn, a race
// that -race only catches if a test happens to hit the interleaving. vet's
// copylocks pass flags existing copies; this analyzer forbids declaring the
// copying signature in the first place — value receivers, value parameters,
// and value results of any type that transitively contains a sync.Mutex or
// sync.RWMutex (through fields, embedding, or arrays).
package lockcopyplus

import (
	"go/ast"
	"go/types"

	"lifeguard/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockcopyplus",
	Doc: "flag value receivers, parameters, and results of structs containing sync.Mutex/RWMutex\n" +
		"\nCopying a lock-bearing struct forks its mutex while the guarded state" +
		" stays shared; such types must move by pointer.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					checkFields(pass, n.Recv, "receiver", "use a pointer receiver")
				}
				checkSignature(pass, n.Type)
			case *ast.FuncLit:
				checkSignature(pass, n.Type)
			}
			return true
		})
	}
	return nil
}

func checkSignature(pass *analysis.Pass, ft *ast.FuncType) {
	checkFields(pass, ft.Params, "parameter", "pass a pointer")
	checkFields(pass, ft.Results, "result", "return a pointer")
}

func checkFields(pass *analysis.Pass, fl *ast.FieldList, kind, fix string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if lock := lockPath(t, nil); lock != "" {
			pass.Reportf(field.Type.Pos(), "%s %s contains %s and is passed by value, which copies the lock: %s", kind, types.TypeString(t, types.RelativeTo(pass.Pkg)), lock, fix)
		}
	}
}

// lockPath reports how t transitively contains a sync lock ("" if it does
// not), following struct fields, embedded fields, and array elements — the
// shapes a value copy duplicates. Pointers, slices, maps, and channels stop
// the walk: copying the header shares, not forks, the lock.
func lockPath(t types.Type, seen []types.Type) string {
	t = types.Unalias(t)
	for _, s := range seen {
		if types.Identical(s, t) {
			return ""
		}
	}
	seen = append(seen, t)

	switch u := t.(type) {
	case *types.Named:
		obj := u.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return "sync." + obj.Name()
		}
		return lockPath(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if lock := lockPath(f.Type(), seen); lock != "" {
				return lock + " (field " + f.Name() + ")"
			}
		}
	case *types.Array:
		return lockPath(u.Elem(), seen)
	}
	return ""
}
