// Package clean moves lock-bearing state exclusively by pointer, which is
// the only shape the analyzer accepts.
package clean

import "sync"

type registry struct {
	mu      sync.RWMutex
	entries map[string]int
}

func newRegistry() *registry {
	return &registry{entries: make(map[string]int)}
}

func (r *registry) get(k string) (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.entries[k]
	return v, ok
}

func (r *registry) put(k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[k] = v
}

func transfer(src, dst *registry, k string) {
	if v, ok := src.get(k); ok {
		dst.put(k, v)
	}
}

// Plain structs without locks move by value freely.
type point struct{ x, y int }

func (p point) norm() int     { return p.x*p.x + p.y*p.y }
func scale(p point, k int) point { return point{p.x * k, p.y * k} }
