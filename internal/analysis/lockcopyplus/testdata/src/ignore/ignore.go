// Package ignore proves suppression and malformed-directive reporting for
// lockcopyplus.
package ignore

import "sync"

type guarded struct {
	mu sync.Mutex
}

//lint:ignore lglint/lockcopyplus testdata: next-line suppression must silence the finding
func suppressed(g guarded) {}

func alsoSuppressed(g guarded) {} //lint:ignore lglint/lockcopyplus testdata: same-line suppression must silence the finding

/* want `missing a reason` */ //lint:ignore lglint/lockcopyplus
func reported(g guarded) {} // want `parameter guarded contains sync\.Mutex \(field mu\) and is passed by value`
