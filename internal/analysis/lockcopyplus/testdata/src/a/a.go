// Package a exercises the by-value lock movement detectors.
package a

import "sync"

type Locked struct {
	mu sync.Mutex
	n  int
}

type Embeds struct{ Locked }

type DeepArray struct{ arr [2]Locked }

type Clean struct{ n int }

func (l Locked) BadValueMethod() int { // want `receiver Locked contains sync\.Mutex \(field mu\) and is passed by value`
	return l.n
}

func (l *Locked) GoodPtrMethod() int { return l.n }

func BadParam(l Locked) {} // want `parameter Locked contains sync\.Mutex \(field mu\) and is passed by value`

func BadReturn() Locked { // want `result Locked contains sync\.Mutex \(field mu\) and is passed by value`
	return Locked{}
}

func BadEmbedded(e Embeds) {} // want `parameter Embeds contains sync\.Mutex`

func BadArray(d DeepArray) {} // want `parameter DeepArray contains sync\.Mutex`

func BadBareMutex(mu sync.Mutex) {} // want `parameter sync\.Mutex contains sync\.Mutex and is passed by value`

func BadRWMutex(mu sync.RWMutex) {} // want `parameter sync\.RWMutex contains sync\.RWMutex and is passed by value`

var _ = func(l Locked) {} // want `parameter Locked contains sync\.Mutex \(field mu\) and is passed by value`

func GoodPtr(l *Locked)           {}
func GoodSlice(ls []Locked)       {}
func GoodMap(m map[string]*Locked) {}
func GoodChan(ch chan *Locked)    {}
func GoodClean(c Clean)           {}

// A self-referential type must not send the walker into a loop.
type Node struct {
	next *Node
	mu   sync.Mutex
}

func GoodNodePtr(n *Node) {}

func BadNode(n Node) {} // want `parameter Node contains sync\.Mutex \(field mu\) and is passed by value`
