package lockcopyplus

import (
	"testing"

	"lifeguard/internal/analysis/analysistest"
)

func TestLockcopyplus(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "a", "clean", "ignore")
}
