package analysis

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sarifFixtures(t *testing.T) (*token.FileSet, []Diagnostic, []*Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	src := "package p\nvar x = 1\n"
	f := fset.AddFile("/repo/internal/p/p.go", -1, len(src))
	f.SetLinesForContent([]byte(src))
	diags := []Diagnostic{
		{Analyzer: "maporder", Pos: f.Pos(10), Message: "nondeterministic iteration"},
		{Analyzer: "errcontract", Pos: f.Pos(14), Message: "error 100% discarded\nsecond line"},
	}
	analyzers := []*Analyzer{
		{Name: "maporder", Doc: "first line of maporder\n\nmore detail"},
		{Name: "errcontract", Doc: "first line of errcontract"},
	}
	return fset, diags, analyzers
}

func TestSARIFShape(t *testing.T) {
	fset, diags, analyzers := sarifFixtures(t)
	data, err := SARIF(fset, diags, analyzers, "/repo")
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("version/schema = %q / %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "lglint" {
		t.Fatalf("runs/driver malformed")
	}
	run := log.Runs[0]
	// Rules are name-sorted and carry the lglint/ prefix.
	if len(run.Tool.Driver.Rules) != 2 ||
		run.Tool.Driver.Rules[0].ID != "lglint/errcontract" ||
		run.Tool.Driver.Rules[1].ID != "lglint/maporder" {
		t.Errorf("rules = %+v", run.Tool.Driver.Rules)
	}
	if run.Tool.Driver.Rules[1].ShortDescription.Text != "first line of maporder" {
		t.Errorf("shortDescription = %q, want the doc's first line", run.Tool.Driver.Rules[1].ShortDescription.Text)
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "lglint/maporder" || r.Level != "error" {
		t.Errorf("result[0] ruleId/level = %q/%q", r.RuleID, r.Level)
	}
	loc := r.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/p/p.go" {
		t.Errorf("uri = %q, want repo-relative forward-slash path", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 2 || loc.Region.StartColumn != 1 {
		t.Errorf("region = %+v, want line 2 col 1", loc.Region)
	}
}

func TestGitHubAnnotations(t *testing.T) {
	fset, diags, _ := sarifFixtures(t)
	out := GitHubAnnotations(fset, diags, "/repo")
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("annotation lines = %d, want 2:\n%s", len(lines), out)
	}
	if want := "::error file=internal/p/p.go,line=2,col=5,title=lglint/errcontract::error 100%25 discarded%0Asecond line"; lines[1] != want {
		t.Errorf("annotation = %q\nwant         %q", lines[1], want)
	}
	if !strings.HasPrefix(lines[0], "::error file=internal/p/p.go,line=2,col=1,title=lglint/maporder::") {
		t.Errorf("annotation[0] = %q", lines[0])
	}
}
