package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// This file implements the `go vet -vettool` driver protocol, the same one
// x/tools' unitchecker speaks. cmd/go invokes the tool three ways:
//
//	lglint -V=full          print a version line (build-cache fingerprint)
//	lglint -flags           print the supported flags as JSON
//	lglint [flags] foo.cfg  analyze one package described by the JSON config
//
// The .cfg file names the package's source files and the export-data files
// of every dependency, so we type-check with the compiler's own export data
// rather than re-walking source. Diagnostics go to stderr as
// file:line:col: message; a non-zero exit tells cmd/go the package failed.

// vetConfig mirrors the JSON written by cmd/go for each vet'd package. Field
// names are the protocol; unknown fields are ignored on decode.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool binary built from the given
// analyzers. It never returns.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	versionFlag := fs.String("V", "", "print version and exit (cmd/go passes -V=full)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags as JSON and exit")
	var opts StandaloneOptions
	fs.BoolVar(&opts.JSON, "json", false, "standalone: emit findings as a JSON array on stdout")
	fs.BoolVar(&opts.SARIF, "sarif", false, "standalone: emit a SARIF 2.1.0 log on stdout")
	fs.BoolVar(&opts.GitHub, "github", false, "standalone: emit GitHub ::error annotations on stdout")
	fs.BoolVar(&opts.Fix, "fix", false, "standalone: apply suggested fixes to the source files")
	fs.BoolVar(&opts.DryRun, "dry-run", false, "with -fix: print unified diffs instead of writing files")
	enable := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enable[a.Name] = fs.Bool(a.Name, false, firstLine(a.Doc))
	}
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] [-<analyzer>...] <packages|package.cfg>\n\n", progname)
		fmt.Fprintf(os.Stderr, "%s runs two ways:\n", progname)
		fmt.Fprintf(os.Stderr, "  as a vet tool:   go vet -vettool=$(which %s) ./...   (or `make lint`)\n", progname)
		fmt.Fprintf(os.Stderr, "  standalone:      %s [-json|-sarif|-github] [-fix [-dry-run]] ./...\n\n", progname)
		fmt.Fprintf(os.Stderr, "Standalone exit codes: 0 no findings, 1 findings reported,\n")
		fmt.Fprintf(os.Stderr, "2 usage or load error. -fix does not change the exit code: a run\n")
		fmt.Fprintf(os.Stderr, "that had anything to fix still exits 1.\n\n")
		fmt.Fprintf(os.Stderr, "Analyzers (all enabled unless specific ones are requested):\n\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, firstLine(a.Doc))
		}
		fmt.Fprintf(os.Stderr, "\nSuppress a finding with `//lint:ignore lglint/<analyzer> <reason>` on\n")
		fmt.Fprintf(os.Stderr, "or directly above the offending line; the reason is mandatory.\n")
	}
	fs.Parse(os.Args[1:])

	if *versionFlag != "" {
		// cmd/go fingerprints the tool to key its vet result cache: the
		// line must read "<name> version devel ... buildID=<id>". Hashing
		// our own executable means a rebuilt lglint (new or changed
		// analyzers) invalidates previously cached vet verdicts.
		id, err := selfHash()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		fmt.Printf("%s version devel buildID=%s\n", progname, id)
		os.Exit(0)
	}
	if *flagsFlag {
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []jsonFlag
		for _, a := range analyzers {
			out = append(out, jsonFlag{a.Name, true, firstLine(a.Doc)})
		}
		data, err := json.MarshalIndent(out, "", "\t")
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		os.Stdout.Write(append(data, '\n'))
		os.Exit(0)
	}

	if fs.NArg() == 0 {
		fs.Usage()
		os.Exit(2)
	}

	// Honor explicit -<analyzer> selection; default is the full suite.
	selected := analyzers
	if any := false; true {
		for _, a := range analyzers {
			any = any || *enable[a.Name]
		}
		if any {
			selected = nil
			for _, a := range analyzers {
				if *enable[a.Name] {
					selected = append(selected, a)
				}
			}
		}
	}

	if fs.NArg() == 1 && strings.HasSuffix(fs.Arg(0), ".cfg") {
		os.Exit(runUnit(progname, fs.Arg(0), selected))
	}
	os.Exit(RunStandalone(progname, selected, fs.Args(), opts))
}

func runUnit(progname, cfgFile string, analyzers []*Analyzer) int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}

	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return fail(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fail(fmt.Errorf("parsing %s: %w", cfgFile, err))
	}

	// Facts from every dependency the .cfg names. Missing or empty vetx
	// files (pre-facts caches, deps that failed to analyze) decode as
	// empty sets: absent facts mean fewer findings, never wrong ones.
	facts := NewFactSet()
	for _, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			continue
		}
		if err := facts.Decode(data); err != nil {
			return fail(fmt.Errorf("reading facts from %s: %w", vetx, err))
		}
	}

	// cmd/go expects the facts file to exist afterward; it now carries the
	// set of imported + newly exported facts for this package.
	writeVetx := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		data, err := facts.Encode()
		if err != nil {
			return err
		}
		return os.WriteFile(cfg.VetxOutput, data, 0o666)
	}

	if cfg.VetxOnly {
		// Dependency pass: cmd/go only wants facts. Run the fact-bearing
		// analyzers and discard their diagnostics. Dependencies include
		// the whole standard library, which we did not write and cannot
		// fix, so any failure here — parse, typecheck, analyzer panic —
		// degrades to "no facts from this package" rather than breaking
		// the lint run.
		func() {
			defer func() { recover() }() // a dep we can't analyze exports no facts
			var factful []*Analyzer
			for _, a := range analyzers {
				if len(a.FactTypes) > 0 {
					factful = append(factful, a)
				}
			}
			if len(factful) == 0 {
				return
			}
			fset := token.NewFileSet()
			var files []*ast.File
			for _, name := range cfg.GoFiles {
				f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
				if err != nil {
					return
				}
				files = append(files, f)
			}
			pkg, info, err := typecheck(fset, files, &cfg)
			if err != nil {
				return
			}
			Run(factful, fset, files, pkg, info, facts)
		}()
		if err := writeVetx(); err != nil {
			return fail(err)
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			return fail(err)
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		return fail(fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err))
	}

	diags, err := Run(analyzers, fset, files, pkg, info, facts)
	if err != nil {
		return fail(err)
	}
	if err := writeVetx(); err != nil {
		return fail(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, tag(d))
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func tag(d Diagnostic) string {
	if d.Analyzer == DirectiveCheckerName {
		return DirectiveCheckerName
	}
	return ourPrefix + d.Analyzer
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Typecheck builds go/types information for the files of one package using
// an export-data importer resolved through the provided lookup. importMap
// canonicalizes source-level import paths (nil means identity); the gc
// importer requires canonical paths. It is shared by the vet driver (lookup
// built from the .cfg) and analysistest (lookup built from `go list -export`).
func Typecheck(fset *token.FileSet, files []*ast.File, path, goVersion string, importMap func(path string) string, lookup func(path string) (io.ReadCloser, error)) (*types.Package, *types.Info, error) {
	gc := importer.ForCompiler(fset, "gc", lookup)
	return TypecheckImporter(fset, files, path, goVersion, importerFunc(func(p string) (*types.Package, error) {
		if importMap != nil {
			p = importMap(p)
		}
		return gc.Import(p)
	}))
}

// TypecheckImporter is Typecheck with the import step fully delegated:
// analysistest uses it to resolve testdata-local dependency packages from
// source (so facts can flow between testdata packages) while everything
// else comes from compiler export data.
func TypecheckImporter(fset *token.FileSet, files []*ast.File, path, goVersion string, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: majorMinor(goVersion),
	}
	pkg, err := tc.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

func typecheck(fset *token.FileSet, files []*ast.File, cfg *vetConfig) (*types.Package, *types.Info, error) {
	importMap := func(path string) string {
		if mapped, ok := cfg.ImportMap[path]; ok {
			return mapped
		}
		return path
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return Typecheck(fset, files, cfg.ImportPath, cfg.GoVersion, importMap, lookup)
}

var goVersionRE = regexp.MustCompile(`^go\d+\.\d+`)

// majorMinor trims a toolchain version like "go1.24.0" to the "go1.24" form
// go/types accepts across releases; anything unrecognized becomes "" (latest).
func majorMinor(v string) string {
	return goVersionRE.FindString(v)
}

// selfHash returns a hex digest of the running executable.
func selfHash() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	f, err := os.Open(exe)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16]), nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
