package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Def is one definition of a local variable: an assignment, a short
// declaration, a var declaration, a range binding, a type-switch implicit,
// or a function parameter/receiver/named result (defined at entry).
type Def struct {
	// Obj is the defined variable.
	Obj *types.Var
	// Ident is the defining identifier on the left-hand side; nil for
	// parameters, receivers, and named results.
	Ident *ast.Ident
	// Src is the expression the value flows from: the matching RHS
	// expression of an assignment (the whole call for tuple assignments,
	// the range operand for range bindings, the compound-assignment
	// statement for += and friends, the switch operand for type-switch
	// implicits). Nil when there is no source expression (zero-value
	// declarations, parameters).
	Src ast.Expr
	// Node is the CFG node the definition occurs at.
	Node ast.Node

	id int
}

// Flow holds the reaching-definitions solution for one function.
type Flow struct {
	CFG  *CFG
	info *types.Info

	defs      []*Def
	defOf     map[*ast.Ident]*Def // defining ident → its def
	reaching  map[*ast.Ident][]*Def
	reachedBy map[*Def][]*ast.Ident

	point    map[ast.Node][2]int       // CFG node → (block index, node index)
	usesAt   map[int][][]*ast.Ident    // block index → per-node use idents
	defsAtIx map[int][][]*Def          // block index → per-node defs
	objOfUse map[*ast.Ident]*types.Var // use ident → variable
	funcSpan [2]token.Pos              // the analyzed function's extent
	onEntry  map[*types.Var]*Def       // parameter-style defs
}

// NewFunc computes reaching definitions for fn, which must be an
// *ast.FuncDecl or *ast.FuncLit with a non-nil body. info must cover the
// file containing fn.
func NewFunc(fn ast.Node, info *types.Info) *Flow {
	var body *ast.BlockStmt
	var ftype *ast.FuncType
	var recv *ast.FieldList
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body, ftype, recv = fn.Body, fn.Type, fn.Recv
	case *ast.FuncLit:
		body, ftype = fn.Body, fn.Type
	default:
		panic("dataflow: NewFunc wants *ast.FuncDecl or *ast.FuncLit")
	}
	f := &Flow{
		CFG:       buildCFG(body),
		info:      info,
		defOf:     map[*ast.Ident]*Def{},
		reaching:  map[*ast.Ident][]*Def{},
		reachedBy: map[*Def][]*ast.Ident{},
		point:     map[ast.Node][2]int{},
		usesAt:    map[int][][]*ast.Ident{},
		defsAtIx:  map[int][][]*Def{},
		objOfUse:  map[*ast.Ident]*types.Var{},
		onEntry:   map[*types.Var]*Def{},
		funcSpan:  [2]token.Pos{fn.Pos(), fn.End()},
	}
	f.entryDefs(ftype, recv)
	f.solve()
	return f
}

// DefOf returns the definition introduced by a left-hand-side identifier,
// or nil if id does not define a tracked local.
func (f *Flow) DefOf(id *ast.Ident) *Def { return f.defOf[id] }

// DefsReaching returns the definitions of the used variable that may reach
// the given use identifier.
func (f *Flow) DefsReaching(use *ast.Ident) []*Def { return f.reaching[use] }

// UsesReachedBy returns the use identifiers the definition may reach, in
// position order.
func (f *Flow) UsesReachedBy(def *Def) []*ast.Ident { return f.reachedBy[def] }

// Defs returns every definition, entry defs first, then in CFG order.
func (f *Flow) Defs() []*Def { return f.defs }

// UsesAfter returns the uses of obj at CFG points strictly after node n
// (same block later, or any block reachable from n's block — including n's
// own earlier nodes when a loop leads back into it). n must be a CFG node
// or a descendant of one.
func (f *Flow) UsesAfter(n ast.Node, obj *types.Var) []*ast.Ident {
	pt, ok := f.pointFor(n)
	if !ok {
		return nil
	}
	var out []*ast.Ident
	collect := func(b int, from int) {
		uses := f.usesAt[b]
		for i := from; i < len(uses); i++ {
			for _, u := range uses[i] {
				if f.objOfUse[u] == obj {
					out = append(out, u)
				}
			}
		}
	}
	start := f.CFG.Blocks[pt[0]]
	collect(pt[0], pt[1]+1)
	seen := map[*Block]bool{}
	var queue []*Block
	queue = append(queue, start.Succs...)
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if seen[b] {
			continue
		}
		seen[b] = true
		collect(b.Index, 0)
		queue = append(queue, b.Succs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// UsesBeforeRedef returns the uses of obj at CFG points strictly after
// node n that are reachable on some path that does not pass through a
// redefinition of obj. This is the "is the old value still live here?"
// query: unlike UsesAfter, a loop that re-binds obj each iteration does
// not leak uses from the next iteration.
func (f *Flow) UsesBeforeRedef(n ast.Node, obj *types.Var) []*ast.Ident {
	pt, ok := f.pointFor(n)
	if !ok {
		return nil
	}
	var out []*ast.Ident
	// walkFrom scans block b from node index i, collecting uses of obj,
	// and reports whether the walk reached the block's end (no kill).
	walkFrom := func(b, i int) bool {
		blk := f.CFG.Blocks[b]
		for ; i < len(blk.Nodes); i++ {
			for _, u := range f.usesAt[b][i] {
				if f.objOfUse[u] == obj {
					out = append(out, u)
				}
			}
			for _, d := range f.defsAtIx[b][i] {
				if d.Obj == obj {
					return false
				}
			}
		}
		return true
	}
	seen := map[*Block]bool{}
	var queue []*Block
	start := f.CFG.Blocks[pt[0]]
	if walkFrom(pt[0], pt[1]+1) {
		queue = append(queue, start.Succs...)
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if seen[b] {
			continue
		}
		seen[b] = true
		if walkFrom(b.Index, 0) {
			queue = append(queue, b.Succs...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// pointFor locates the CFG node containing n: n itself if recorded, else
// the smallest recorded node whose span covers n.
func (f *Flow) pointFor(n ast.Node) ([2]int, bool) {
	if pt, ok := f.point[n]; ok {
		return pt, true
	}
	var best ast.Node
	var bestPt [2]int
	for node, pt := range f.point {
		if node.Pos() <= n.Pos() && n.End() <= node.End() {
			if best == nil || node.End()-node.Pos() < best.End()-best.Pos() {
				best, bestPt = node, pt
			}
		}
	}
	return bestPt, best != nil
}

// entryDefs registers receiver, parameters, and named results as
// definitions live at function entry.
func (f *Flow) entryDefs(ftype *ast.FuncType, recv *ast.FieldList) {
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj, ok := f.info.Defs[name].(*types.Var); ok && obj != nil {
					d := &Def{Obj: obj, Node: ftype, id: len(f.defs)}
					f.defs = append(f.defs, d)
					f.onEntry[obj] = d
				}
			}
		}
	}
	addFields(recv)
	addFields(ftype.Params)
	addFields(ftype.Results)
}

// defUse is the per-node event list: uses happen before defs.
type defUse struct {
	uses []*ast.Ident
	defs []*Def
}

func (f *Flow) solve() {
	// Pass 1: enumerate events per node, number defs.
	events := make([][]defUse, len(f.CFG.Blocks))
	for _, b := range f.CFG.Blocks {
		events[b.Index] = make([]defUse, len(b.Nodes))
		f.usesAt[b.Index] = make([][]*ast.Ident, len(b.Nodes))
		f.defsAtIx[b.Index] = make([][]*Def, len(b.Nodes))
		for i, n := range b.Nodes {
			f.point[n] = [2]int{b.Index, i}
			du := f.scan(n)
			events[b.Index][i] = du
			f.usesAt[b.Index][i] = du.uses
			f.defsAtIx[b.Index][i] = du.defs
			for _, u := range du.uses {
				f.objOfUse[u] = f.info.ObjectOf(u).(*types.Var)
			}
		}
	}

	// Pass 2: gen/kill fixpoint over blocks. Sets are maps def→bool keyed
	// per block; functions are small, clarity over bitsets.
	defsOf := map[*types.Var][]*Def{}
	for _, d := range f.defs {
		defsOf[d.Obj] = append(defsOf[d.Obj], d)
	}
	in := make([]map[*Def]bool, len(f.CFG.Blocks))
	out := make([]map[*Def]bool, len(f.CFG.Blocks))
	for i := range in {
		in[i] = map[*Def]bool{}
		out[i] = map[*Def]bool{}
	}
	for _, d := range f.onEntry {
		in[0][d] = true
	}

	transfer := func(b int) map[*Def]bool {
		cur := map[*Def]bool{}
		for d := range in[b] {
			cur[d] = true
		}
		for _, du := range events[b] {
			for _, d := range du.defs {
				for _, other := range defsOf[d.Obj] {
					delete(cur, other)
				}
				cur[d] = true
			}
		}
		return cur
	}

	changed := true
	for changed {
		changed = false
		for _, b := range f.CFG.Blocks {
			newOut := transfer(b.Index)
			if !sameSet(newOut, out[b.Index]) {
				out[b.Index] = newOut
				changed = true
			}
			for _, s := range b.Succs {
				grew := false
				for d := range newOut {
					if !in[s.Index][d] {
						in[s.Index][d] = true
						grew = true
					}
				}
				if grew {
					changed = true
				}
			}
		}
	}

	// Pass 3: walk each block once more resolving every use against the
	// running def set.
	for _, b := range f.CFG.Blocks {
		cur := map[*types.Var][]*Def{}
		for d := range in[b.Index] {
			cur[d.Obj] = append(cur[d.Obj], d)
		}
		for _, du := range events[b.Index] {
			for _, u := range du.uses {
				obj := f.objOfUse[u]
				ds := append([]*Def(nil), cur[obj]...)
				sort.Slice(ds, func(i, j int) bool { return ds[i].id < ds[j].id })
				f.reaching[u] = ds
				for _, d := range ds {
					f.reachedBy[d] = append(f.reachedBy[d], u)
				}
			}
			for _, d := range du.defs {
				cur[d.Obj] = []*Def{d}
			}
		}
	}
	for _, uses := range f.reachedBy {
		sort.Slice(uses, func(i, j int) bool { return uses[i].Pos() < uses[j].Pos() })
	}
}

func sameSet(a, b map[*Def]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for d := range a {
		if !b[d] {
			return false
		}
	}
	return true
}

// newDef records a definition of the variable bound to id (which must be
// in info.Defs or info.Uses) with the given source expression.
func (f *Flow) newDef(id *ast.Ident, src ast.Expr, node ast.Node) *Def {
	if id == nil || id.Name == "_" {
		return nil
	}
	obj, ok := f.info.ObjectOf(id).(*types.Var)
	if !ok || obj == nil || !f.tracked(obj) {
		return nil
	}
	d := &Def{Obj: obj, Ident: id, Src: src, Node: node, id: len(f.defs)}
	f.defs = append(f.defs, d)
	f.defOf[id] = d
	return d
}

// tracked limits the analysis to function-local variables (including
// params): package-level variables and struct fields have defs this
// intra-procedural view cannot see.
func (f *Flow) tracked(obj *types.Var) bool {
	if obj.IsField() {
		return false
	}
	if obj.Pkg() == nil {
		return false
	}
	return obj.Pos() >= f.funcSpan[0] && obj.Pos() <= f.funcSpan[1]
}

// scan extracts the ordered uses and defs of one CFG node.
func (f *Flow) scan(n ast.Node) defUse {
	var du defUse
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			du.uses = append(du.uses, f.exprUses(rhs)...)
		}
		tuple := len(n.Lhs) > 1 && len(n.Rhs) == 1
		for i, lhs := range n.Lhs {
			id, isIdent := lhs.(*ast.Ident)
			if !isIdent {
				du.uses = append(du.uses, f.exprUses(lhs)...)
				continue
			}
			var src ast.Expr
			switch {
			case n.Tok == token.ASSIGN || n.Tok == token.DEFINE:
				if tuple {
					src = n.Rhs[0]
				} else if i < len(n.Rhs) {
					src = n.Rhs[i]
				}
			default:
				// Compound assignment (+=, |=, ...): the old value feeds
				// the new one, so the ident is also a use and the source
				// is the whole statement.
				du.uses = append(du.uses, f.identUse(id)...)
				src = &ast.BinaryExpr{X: id, Y: n.Rhs[0], OpPos: n.TokPos}
			}
			if d := f.newDef(id, src, n); d != nil {
				du.defs = append(du.defs, d)
			} else if n.Tok != token.DEFINE && id.Name != "_" {
				// Assignment to an untracked variable (package-level,
				// captured): record the mention as a use so the value
				// does not look dead.
				du.uses = append(du.uses, f.identUse(id)...)
			}
		}
	case *ast.IncDecStmt:
		if id, ok := n.X.(*ast.Ident); ok {
			du.uses = append(du.uses, f.identUse(id)...)
			f.newDefInto(&du, id, &ast.BinaryExpr{X: id, Y: id, OpPos: n.TokPos}, n)
		} else {
			du.uses = append(du.uses, f.exprUses(n.X)...)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			break
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				du.uses = append(du.uses, f.exprUses(v)...)
			}
			tuple := len(vs.Names) > 1 && len(vs.Values) == 1
			for i, name := range vs.Names {
				var src ast.Expr
				if tuple {
					src = vs.Values[0]
				} else if i < len(vs.Values) {
					src = vs.Values[i]
				}
				f.newDefInto(&du, name, src, n)
			}
		}
	case *ast.RangeStmt:
		du.uses = append(du.uses, f.exprUses(n.X)...)
		for _, kv := range []ast.Expr{n.Key, n.Value} {
			if kv == nil {
				continue
			}
			if id, ok := kv.(*ast.Ident); ok {
				// := declares, = reassigns; either way it is a def whose
				// value flows from the range operand.
				f.newDefInto(&du, id, n.X, n)
			} else {
				du.uses = append(du.uses, f.exprUses(kv)...)
			}
		}
	case *ast.CaseClause:
		// Type-switch clause: carries the implicit per-clause variable.
		for _, e := range n.List {
			du.uses = append(du.uses, f.exprUses(e)...)
		}
		if obj, ok := f.info.Implicits[n].(*types.Var); ok && obj != nil && f.tracked(obj) {
			d := &Def{Obj: obj, Node: n, id: len(f.defs)}
			f.defs = append(f.defs, d)
			du.defs = append(du.defs, d)
		}
	default:
		du.uses = append(du.uses, f.exprUses(n)...)
	}
	return du
}

// newDefInto appends a def to the event list when id defines a tracked
// variable.
func (f *Flow) newDefInto(du *defUse, id *ast.Ident, src ast.Expr, node ast.Node) {
	if d := f.newDef(id, src, node); d != nil {
		du.defs = append(du.defs, d)
	}
}

// identUse returns id as a use if it refers to a tracked variable.
func (f *Flow) identUse(id *ast.Ident) []*ast.Ident {
	if obj, ok := f.info.ObjectOf(id).(*types.Var); ok && obj != nil && f.tracked(obj) {
		return []*ast.Ident{id}
	}
	return nil
}

// exprUses collects the tracked-variable uses inside n. Nested function
// literals contribute their free-variable references (a capture is a use
// at the literal's point) but nothing declared within them.
func (f *Flow) exprUses(n ast.Node) []*ast.Ident {
	var uses []*ast.Ident
	var walk func(n ast.Node, inLit *ast.FuncLit)
	walk = func(n ast.Node, inLit *ast.FuncLit) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.FuncLit:
				if inLit == nil {
					walk(c.Body, c)
					return false
				}
				return true // already inside a literal; keep walking
			case *ast.Ident:
				obj, ok := f.info.Uses[c].(*types.Var)
				if !ok || obj == nil || !f.tracked(obj) {
					return true
				}
				if inLit != nil && obj.Pos() >= inLit.Pos() && obj.Pos() <= inLit.End() {
					return true // declared inside the literal: not a capture
				}
				uses = append(uses, c)
			}
			return true
		})
	}
	if n != nil {
		walk(n, nil)
	}
	return uses
}
