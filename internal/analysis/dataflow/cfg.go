// Package dataflow is the lightweight intra-procedural engine behind the
// cross-package lglint analyzers: a control-flow graph built from go/ast,
// and reaching definitions computed over it, queried through go/types
// objects. It exists so analyzers can ask questions like "is this error
// variable ever read on any path after this call?" or "can this healed
// FailureID flow into a later API call?" without each analyzer hand-rolling
// its own approximation of Go control flow.
//
// Scope and deliberate limits (linting, not compilation):
//
//   - Intra-procedural only. A nested func literal is opaque: identifiers
//     it captures from the enclosing function count as uses at the point
//     of the literal (so values escaping into closures are "used"), but
//     assignments inside the literal are not kills. Both choices are
//     conservative for the analyzers built on top — they can only make a
//     value look more used or more reaching, never less.
//   - Local variables only: package-level variables and struct fields are
//     not tracked.
//   - panic(...) and a bare return end a path; recover-based resumption is
//     ignored.
package dataflow

import (
	"go/ast"
	"go/token"
)

// A Block is a straight-line sequence of CFG nodes. Nodes are statements
// plus the bare condition/tag expressions of if/for/switch, in evaluation
// order; compound statements never appear as nodes (their pieces do).
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// A CFG is the control-flow graph of one function body. Blocks[0] is the
// entry block. Blocks with no successors end the function (return, panic,
// or falling off the end).
type CFG struct {
	Blocks []*Block
}

type builder struct {
	cfg *CFG
	cur *Block // nil while the current point is unreachable

	breakTo    []*Block          // innermost-last stack of break targets
	continueTo []*Block          // innermost-last stack of continue targets
	labels     map[string]*Block // label → block starting the labeled stmt
	gotoFixups map[string][]*Block
	labelLoop  map[string][2]*Block // label → {break target, continue target} for labeled loops

	pendingLabel string // label naming the next loop statement, if any
}

func buildCFG(body *ast.BlockStmt) *CFG {
	b := &builder{
		cfg:        &CFG{},
		labels:     map[string]*Block{},
		gotoFixups: map[string][]*Block{},
		labelLoop:  map[string][2]*Block{},
	}
	b.cur = b.newBlock()
	b.stmt(body)
	// Unresolved gotos (labels in dead code): drop the edges.
	return b.cfg
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// add appends n to the current block (creating one if the point is
// unreachable, so dead code still gets def/use resolution).
func (b *builder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.IfStmt:
		b.stmt(s.Init)
		b.add(s.Cond)
		head := b.cur
		join := b.newBlock()
		b.cur = b.newBlock()
		b.edge(head, b.cur)
		b.stmt(s.Body)
		b.edge(b.cur, join)
		if s.Else != nil {
			b.cur = b.newBlock()
			b.edge(head, b.cur)
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(head, join)
		}
		b.cur = join
	case *ast.ForStmt:
		b.stmt(s.Init)
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		b.add(s.Cond)
		join := b.newBlock()
		// continue target: the post statement (its own block so a
		// continue re-runs post before the back edge), else the head.
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.pushLoop(s, join, post)
		body := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, join)
		}
		b.cur = body
		b.stmt(s.Body)
		if s.Post != nil {
			b.edge(b.cur, post)
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, head)
		} else {
			b.edge(b.cur, head)
		}
		b.popLoop()
		b.cur = join
	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(b.cur, head)
		head.Nodes = append(head.Nodes, s) // scanned specially: X uses, Key/Value defs
		join := b.newBlock()
		b.edge(head, join) // empty range
		b.pushLoop(s, join, head)
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, head)
		b.popLoop()
		b.cur = join
	case *ast.SwitchStmt:
		b.stmt(s.Init)
		b.add(s.Tag)
		b.caseClauses(s.Body, false)
	case *ast.TypeSwitchStmt:
		b.stmt(s.Init)
		b.add(s.Assign)
		b.caseClauses(s.Body, true)
	case *ast.SelectStmt:
		head := b.cur
		if head == nil {
			head = b.newBlock()
			b.cur = head
		}
		join := b.newBlock()
		b.breakTo = append(b.breakTo, join)
		for _, cc := range s.Body.List {
			comm, ok := cc.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			b.stmt(comm.Comm)
			for _, st := range comm.Body {
				b.stmt(st)
			}
			b.edge(b.cur, join)
		}
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		b.cur = join
	case *ast.ReturnStmt:
		b.add(s)
		b.cur = nil
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.LabeledStmt:
		target := b.newBlock()
		b.edge(b.cur, target)
		b.cur = target
		b.labels[s.Label.Name] = target
		for _, from := range b.gotoFixups[s.Label.Name] {
			b.edge(from, target)
		}
		delete(b.gotoFixups, s.Label.Name)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
	case *ast.ExprStmt:
		b.add(s)
		if isTerminalCall(s.X) {
			b.cur = nil
		}
	default:
		// Atomic statements: assign, decl, inc/dec, send, go, defer, empty.
		b.add(s)
	}
}

// caseClauses builds the shared switch shape: every case body branches
// from the current block; fallthrough chains a body into the next one.
func (b *builder) caseClauses(body *ast.BlockStmt, typeSwitch bool) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	join := b.newBlock()
	b.breakTo = append(b.breakTo, join)
	var clauses []*ast.CaseClause
	for _, st := range body.List {
		if cc, ok := st.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		} else if !typeSwitch {
			// Case expressions are evaluated against the tag: uses in head.
			for _, e := range cc.List {
				head.Nodes = append(head.Nodes, e)
			}
		}
	}
	if !hasDefault {
		b.edge(head, join)
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		if typeSwitch {
			// The clause node carries the implicit per-clause variable def.
			b.cur.Nodes = append(b.cur.Nodes, cc)
		}
		fellThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				if i+1 < len(blocks) {
					b.edge(b.cur, blocks[i+1])
					fellThrough = true
				}
				continue
			}
			b.stmt(st)
		}
		if !fellThrough {
			b.edge(b.cur, join)
		}
	}
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.cur = join
}

func (b *builder) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if t, ok := b.labelLoop[s.Label.Name]; ok {
				b.edge(b.cur, t[0])
			}
		} else if len(b.breakTo) > 0 {
			b.edge(b.cur, b.breakTo[len(b.breakTo)-1])
		}
		b.cur = nil
	case token.CONTINUE:
		if s.Label != nil {
			if t, ok := b.labelLoop[s.Label.Name]; ok {
				b.edge(b.cur, t[1])
			}
		} else if len(b.continueTo) > 0 {
			b.edge(b.cur, b.continueTo[len(b.continueTo)-1])
		}
		b.cur = nil
	case token.GOTO:
		if t, ok := b.labels[s.Label.Name]; ok {
			b.edge(b.cur, t)
		} else if b.cur != nil {
			b.gotoFixups[s.Label.Name] = append(b.gotoFixups[s.Label.Name], b.cur)
		}
		b.cur = nil
	}
	// FALLTHROUGH is handled by caseClauses.
}

// pendingLabel communicates a just-seen label to the loop it labels, so
// `continue L` / `break L` resolve to that loop's targets.
func (b *builder) pushLoop(s ast.Stmt, breakTo, continueTo *Block) {
	b.breakTo = append(b.breakTo, breakTo)
	b.continueTo = append(b.continueTo, continueTo)
	if b.pendingLabel != "" {
		b.labelLoop[b.pendingLabel] = [2]*Block{breakTo, continueTo}
		b.pendingLabel = ""
	}
}

func (b *builder) popLoop() {
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
}

// isTerminalCall reports whether e is a call that never returns: the
// builtin panic, or the conventional process-enders.
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit", "Fatal", "Fatalf", "Fatalln", "Goexit":
			return true
		}
	}
	return false
}
