package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// load typechecks one file and returns the named top-level function.
func load(t *testing.T, src, fn string) (*ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:     make(map[ast.Expr]types.TypeAndValue),
		Defs:      make(map[*ast.Ident]types.Object),
		Uses:      make(map[*ast.Ident]types.Object),
		Implicits: make(map[ast.Node]types.Object),
	}
	conf := &types.Config{Importer: importer.Default()}
	if _, err := conf.Check("t", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return fd, info
		}
	}
	t.Fatalf("no func %s", fn)
	return nil, nil
}

// defIdent finds the Def whose defining ident is the nth mention of name.
func defIdent(t *testing.T, f *Flow, name string) *Def {
	t.Helper()
	for _, d := range f.Defs() {
		if d.Ident != nil && d.Ident.Name == name {
			return d
		}
	}
	t.Fatalf("no def of %s", name)
	return nil
}

func TestUncheckedErrorHasNoUses(t *testing.T) {
	src := `package t
func f() error { return nil }
func g() {
	err := f()
	_ = 1
	err = f()
	if err != nil {
		panic(err)
	}
}`
	fn, info := load(t, src, "g")
	flow := NewFunc(fn, info)

	var defs []*Def
	for _, d := range flow.Defs() {
		if d.Ident != nil && d.Ident.Name == "err" {
			defs = append(defs, d)
		}
	}
	if len(defs) != 2 {
		t.Fatalf("got %d defs of err, want 2", len(defs))
	}
	if uses := flow.UsesReachedBy(defs[0]); len(uses) != 0 {
		t.Errorf("first (unchecked) def of err reaches %d uses, want 0", len(uses))
	}
	if uses := flow.UsesReachedBy(defs[1]); len(uses) == 0 {
		t.Errorf("second (checked) def of err reaches no uses, want some")
	}
}

func TestBranchesMergeAtUse(t *testing.T) {
	src := `package t
func g(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`
	fn, info := load(t, src, "g")
	flow := NewFunc(fn, info)

	var ret *ast.Ident
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			ret = r.Results[0].(*ast.Ident)
		}
		return true
	})
	if got := len(flow.DefsReaching(ret)); got != 2 {
		t.Errorf("defs reaching `return x`: %d, want 2 (both branches)", got)
	}
}

func TestLoopBackEdge(t *testing.T) {
	src := `package t
func g(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`
	fn, info := load(t, src, "g")
	flow := NewFunc(fn, info)

	// The `s += i` def must reach the use of s inside `s += i` itself via
	// the back edge, and the use in `return s`.
	d := func() *Def {
		for _, d := range flow.Defs() {
			if d.Ident != nil && d.Ident.Name == "s" && d.Src != nil {
				if _, ok := d.Src.(*ast.BinaryExpr); ok {
					return d
				}
			}
		}
		t.Fatal("no compound def of s")
		return nil
	}()
	if uses := flow.UsesReachedBy(d); len(uses) < 2 {
		t.Errorf("compound def of s reaches %d uses, want >= 2 (loop body + return)", len(uses))
	}
}

func TestUsesAfter(t *testing.T) {
	src := `package t
func heal(id int) {}
func g(a bool) {
	id := 1
	heal(id)
	if a {
		heal(id)
	}
}
func h(a bool) {
	id := 1
	if a {
		heal(id)
	} else {
		heal(id)
	}
}`
	fn, info := load(t, src, "g")
	flow := NewFunc(fn, info)
	d := defIdent(t, flow, "id")

	// Find the first heal call statement.
	var firstHeal ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if firstHeal != nil {
			return false
		}
		if es, ok := n.(*ast.ExprStmt); ok {
			firstHeal = es
			return false
		}
		return true
	})
	after := flow.UsesAfter(firstHeal, d.Obj)
	if len(after) != 1 {
		t.Errorf("uses of id after first heal: %d, want 1", len(after))
	}

	// In h, the two heals are on exclusive branches: nothing after either.
	fn2, info2 := load(t, src, "h")
	flow2 := NewFunc(fn2, info2)
	d2 := defIdent(t, flow2, "id")
	var heals []ast.Node
	ast.Inspect(fn2.Body, func(n ast.Node) bool {
		if es, ok := n.(*ast.ExprStmt); ok {
			heals = append(heals, es)
			return false
		}
		return true
	})
	for i, hstmt := range heals {
		if after := flow2.UsesAfter(hstmt, d2.Obj); len(after) != 0 {
			t.Errorf("branch heal %d: %d uses after, want 0", i, len(after))
		}
	}
}

func TestClosureCaptureIsUse(t *testing.T) {
	src := `package t
func f() error { return nil }
func g() func() {
	err := f()
	return func() {
		if err != nil {
			panic(err)
		}
	}
}`
	fn, info := load(t, src, "g")
	flow := NewFunc(fn, info)
	d := defIdent(t, flow, "err")
	if uses := flow.UsesReachedBy(d); len(uses) == 0 {
		t.Error("closure capture of err not counted as a use")
	}
}

func TestRangeAndSwitch(t *testing.T) {
	src := `package t
func g(xs []int, v any) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	switch v := v.(type) {
	case int:
		total += v
	}
	return total
}`
	fn, info := load(t, src, "g")
	flow := NewFunc(fn, info)
	var ret *ast.Ident
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			ret = r.Results[0].(*ast.Ident)
		}
		return true
	})
	if len(flow.DefsReaching(ret)) < 3 {
		t.Errorf("defs reaching return: %d, want >= 3 (init, range body, switch body)", len(flow.DefsReaching(ret)))
	}
}
