// Package obsregistry enforces the observability registry's fan-out
// discipline: metric handles (Counter/Gauge/Histogram) and Describe
// registrations must be created before trials fan out through
// runner.Map/Reduce, never inside the per-trial closure against a
// registry captured from outside. Handle creation on a shared registry
// inside the closure makes first-touch ordering depend on trial
// scheduling — exactly the nondeterminism the obs subsystem's sorted
// snapshots exist to rule out — and turns every trial's hot path into a
// lock-acquiring lookup that the before-fan-out pattern pays once.
//
// The analyzer exports a FanOut fact for every Map/Reduce-named function
// taking a func-typed parameter; at call sites — local or across packages
// via the fact — it inspects function-literal arguments and flags handle
// creation on registries that escape into the closure from the enclosing
// scope. A registry created inside the closure (per-trial, merged later)
// is fine.
package obsregistry

import (
	"go/ast"
	"go/types"

	"lifeguard/internal/analysis"
)

// FanOut marks a function that runs its func-typed arguments concurrently
// across trials.
type FanOut struct{}

// AFact marks FanOut as a fact type.
func (*FanOut) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name: "obsregistry",
	Doc: "flag obs registry handle creation inside fan-out trial closures (cross-package via facts)\n" +
		"\nCounter/Gauge/Histogram/Describe on a registry captured by a runner.Map/Reduce" +
		" closure makes series creation order depend on trial scheduling. Create handles" +
		" before the fan-out, or give each trial its own registry and merge.",
	FactTypes: []analysis.Fact{(*FanOut)(nil)},
	Run:       run,
}

// handleMethods are the Registry methods that create or register series.
var handleMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"Describe":  true,
}

func run(pass *analysis.Pass) error {
	exportFacts(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isFanOut(pass, calleeObj(pass, call)) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					checkClosure(pass, lit, calleeName(call))
				}
			}
			return true
		})
	}
	return nil
}

func exportFacts(pass *analysis.Pass) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if fn, ok := scope.Lookup(name).(*types.Func); ok && isFanOutFunc(fn) {
			pass.ExportObjectFact(fn, &FanOut{})
		}
	}
}

// isFanOutFunc applies the naming rule: Map or Reduce with at least one
// func-typed parameter.
func isFanOutFunc(fn *types.Func) bool {
	if fn.Name() != "Map" && fn.Name() != "Reduce" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if _, ok := sig.Params().At(i).Type().Underlying().(*types.Signature); ok {
			return true
		}
	}
	return false
}

func isFanOut(pass *analysis.Pass, obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if pass.ImportObjectFact(fn, &FanOut{}) {
		return true
	}
	return isFanOutFunc(fn)
}

// checkClosure flags handle creation inside lit on registries declared
// outside it.
func checkClosure(pass *analysis.Pass, lit *ast.FuncLit, fanOutName string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !handleMethods[sel.Sel.Name] {
			return true
		}
		m, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || !isRegistryMethod(m) {
			return true
		}
		base := baseIdent(sel.X)
		if base == nil {
			// Field access or call result: assume the registry came from
			// outside — only a local declaration proves otherwise.
			report(pass, call, sel.Sel.Name, fanOutName)
			return true
		}
		obj := pass.TypesInfo.Uses[base]
		if obj == nil || insideLit(obj, lit) {
			return true // per-trial registry: allowed
		}
		report(pass, call, sel.Sel.Name, fanOutName)
		return true
	})
}

func report(pass *analysis.Pass, call *ast.CallExpr, method, fanOutName string) {
	pass.Reportf(call.Pos(), "obs registry %s inside a %s trial closure on an escaping registry: create handles before the fan-out or use a per-trial registry", method, fanOutName)
}

// isRegistryMethod reports whether m is a method of a named type Registry
// (by value or pointer receiver).
func isRegistryMethod(m *types.Func) bool {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// baseIdent returns the leftmost identifier of a selector chain, or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// insideLit reports whether obj is declared within lit's extent.
func insideLit(obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
}

func calleeObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	case *ast.IndexExpr: // explicit instantiation: Map[int](...)
		return calleeObjFromExpr(pass, fun.X)
	case *ast.IndexListExpr:
		return calleeObjFromExpr(pass, fun.X)
	}
	return nil
}

func calleeObjFromExpr(pass *analysis.Pass, e ast.Expr) types.Object {
	switch fun := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	case *ast.IndexExpr:
		return calleeNameFromExpr(fun.X)
	case *ast.IndexListExpr:
		return calleeNameFromExpr(fun.X)
	}
	return "call"
}

func calleeNameFromExpr(e ast.Expr) string {
	switch fun := ast.Unparen(e).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
