package obsregistry

import (
	"testing"

	"lifeguard/internal/analysis/analysistest"
)

func TestObsregistry(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "a", "api", "b", "clean", "ignore")
}
