// Package b fans out through api across the package boundary: the FanOut
// facts exported while analyzing api drive the diagnostics here.
package b

import "api"

func escaping(reg *api.Registry) ([]int, error) {
	return api.Map(4, func(trial int) (int, error) {
		reg.Counter("trials_total").Inc() // want `obs registry Counter inside a api\.Map trial closure on an escaping registry`
		return trial, nil
	})
}

func escapingReduce(reg *api.Registry) (int, error) {
	return api.Reduce(4, 0, func(trial int) error {
		reg.Describe("acc", "accumulated trials") // want `obs registry Describe inside a api\.Reduce trial closure on an escaping registry`
		return nil
	}, func(acc, trial int) int { return acc + trial })
}

func perTrial() ([]int, error) {
	shared := &api.Registry{}
	return api.Map(4, func(trial int) (int, error) {
		local := &api.Registry{}
		local.Counter("trials_total").Inc()
		shared.Merge(local)
		return trial, nil
	})
}

func preCreated(reg *api.Registry) ([]int, error) {
	c := reg.Counter("trials_total")
	return api.Map(4, func(trial int) (int, error) {
		c.Inc()
		return trial, nil
	})
}
