// Package a exercises handle creation inside fan-out closures within one
// package.
package a

type Counter struct{ n int64 }

func (c *Counter) Inc() { c.n++ }

type Registry struct{}

func (r *Registry) Counter(name string) *Counter              { return &Counter{} }
func (r *Registry) Gauge(name string) *Counter                { return &Counter{} }
func (r *Registry) Histogram(name string, b []float64) *Counter { return &Counter{} }
func (r *Registry) Describe(name, help string)                {}
func (r *Registry) Merge(src *Registry)                       {}

type Config struct {
	Obs *Registry
}

func Map(n int, trial func(trial int) error) error {
	for i := 0; i < n; i++ {
		if err := trial(i); err != nil {
			return err
		}
	}
	return nil
}

func escapingParam(reg *Registry) {
	Map(4, func(trial int) error {
		reg.Counter("trials_total").Inc() // want `obs registry Counter inside a Map trial closure on an escaping registry`
		return nil
	})
}

func escapingLocal() {
	reg := &Registry{}
	Map(4, func(trial int) error {
		reg.Describe("trials_total", "completed trials") // want `obs registry Describe inside a Map trial closure on an escaping registry`
		return nil
	})
}

func escapingField(cfg Config) {
	Map(4, func(trial int) error {
		g := cfg.Obs.Gauge("inflight") // want `obs registry Gauge inside a Map trial closure on an escaping registry`
		g.Inc()
		return nil
	})
}
