// Package ignore shows the suppression escape hatch.
package ignore

type Registry struct{}

func (r *Registry) Describe(name, help string) {}

func Map(n int, trial func(trial int) error) error {
	for i := 0; i < n; i++ {
		if err := trial(i); err != nil {
			return err
		}
	}
	return nil
}

func suppressed(reg *Registry) error {
	return Map(1, func(trial int) error {
		//lint:ignore lglint/obsregistry n==1 here: no concurrency, describing lazily is safe
		reg.Describe("trials_total", "completed trials")
		return nil
	})
}

func notSuppressed(reg *Registry) error {
	return Map(1, func(trial int) error {
		reg.Describe("trials_total", "completed trials") // want `obs registry Describe inside a Map trial closure on an escaping registry`
		return nil
	})
}
