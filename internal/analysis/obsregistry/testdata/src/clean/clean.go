// Package clean holds the accepted forms: handles created before the
// fan-out, per-trial registries merged afterwards, and registry calls in
// ordinary (non-fan-out) closures.
package clean

type Counter struct{ n int64 }

func (c *Counter) Inc() { c.n++ }

type Registry struct{}

func (r *Registry) Counter(name string) *Counter { return &Counter{} }
func (r *Registry) Describe(name, help string)   {}
func (r *Registry) Merge(src *Registry)          {}

func Map(n int, trial func(trial int) error) error {
	for i := 0; i < n; i++ {
		if err := trial(i); err != nil {
			return err
		}
	}
	return nil
}

func handlesBeforeFanOut(reg *Registry) error {
	trials := reg.Counter("trials_total")
	return Map(4, func(trial int) error {
		trials.Inc()
		return nil
	})
}

func perTrialRegistry(shared *Registry) error {
	return Map(4, func(trial int) error {
		local := &Registry{}
		local.Counter("trials_total").Inc()
		shared.Merge(local)
		return nil
	})
}

// visit is not a fan-out: closures given to it may touch the registry.
func visit(f func() error) error { return f() }

func ordinaryClosure(reg *Registry) error {
	return visit(func() error {
		reg.Counter("setup_total").Inc()
		return nil
	})
}
