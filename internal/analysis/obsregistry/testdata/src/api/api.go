// Package api is the fact-exporting dependency: its Map/Reduce functions
// carry FanOut facts, and it defines the Registry handle API.
package api

type Counter struct{ n int64 }

func (c *Counter) Inc() { c.n++ }

type Registry struct{}

func (r *Registry) Counter(name string) *Counter { return &Counter{} }
func (r *Registry) Gauge(name string) *Counter   { return &Counter{} }
func (r *Registry) Describe(name, help string)   {}
func (r *Registry) Merge(src *Registry)          {}

func Map[T any](n int, trial func(trial int) (T, error)) ([]T, error) {
	out := make([]T, n)
	for i := range out {
		v, err := trial(i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func Reduce[A any](n int, init A, trial func(trial int) error, merge func(acc A, trial int) A) (A, error) {
	acc := init
	for i := 0; i < n; i++ {
		if err := trial(i); err != nil {
			return acc, err
		}
		acc = merge(acc, i)
	}
	return acc, nil
}
