package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectiveCheckerName tags diagnostics about suppression directives
// themselves (malformed syntax, unknown analyzer, missing reason).
const DirectiveCheckerName = "lglint"

// directivePrefix introduces a suppression comment. The syntax follows the
// staticcheck convention:
//
//	//lint:ignore lglint/<analyzer>[,lglint/<analyzer>...] <reason>
//
// The directive must be a // comment. It suppresses matching diagnostics on
// its own line (trailing-comment style) and on the line immediately below
// (full-line-comment style). The reason is mandatory: a directive without
// one is reported and suppresses nothing.
const directivePrefix = "lint:ignore"

// ourPrefix marks analyzer names that belong to this suite. Directives that
// name only foreign checkers (e.g. staticcheck's SA1000) are left alone.
const ourPrefix = "lglint/"

type directive struct {
	file  string
	line  int
	names map[string]bool // short analyzer names, e.g. "simclockcheck"
}

// parseDirectives scans the files' comments for //lint:ignore directives.
// It returns the valid directives addressed to this suite, plus diagnostics
// for directives that are malformed: missing an analyzer list, missing a
// reason, or naming an unknown lglint analyzer. known holds the short names
// of the analyzers in the running suite.
func parseDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) ([]directive, []Diagnostic) {
	var dirs []directive
	var malformed []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		p := &Pass{Analyzer: &Analyzer{Name: DirectiveCheckerName}, diags: &malformed}
		p.Reportf(pos, format, args...)
	}

	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//") {
					continue // block comments cannot carry directives
				}
				body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(body, directivePrefix) {
					continue
				}
				args := strings.TrimSpace(body[len(directivePrefix):])
				nameList, reason, _ := strings.Cut(args, " ")
				reason = strings.TrimSpace(reason)
				if nameList == "" {
					report(c.Pos(), "malformed //lint:ignore directive: usage: //lint:ignore %s<analyzer> <reason>", ourPrefix)
					continue
				}

				names := make(map[string]bool)
				ours := false
				bad := false
				for _, n := range strings.Split(nameList, ",") {
					if !strings.HasPrefix(n, ourPrefix) {
						continue // foreign checker; not our business
					}
					ours = true
					short := strings.TrimPrefix(n, ourPrefix)
					if !known[short] {
						report(c.Pos(), "//lint:ignore names unknown analyzer %q", n)
						bad = true
						continue
					}
					names[short] = true
				}
				if !ours {
					continue
				}
				if reason == "" {
					report(c.Pos(), "//lint:ignore directive is missing a reason: every suppression must say why the invariant does not apply")
					continue
				}
				if bad {
					continue
				}
				pos := fset.Position(c.Pos())
				dirs = append(dirs, directive{file: pos.Filename, line: pos.Line, names: names})
			}
		}
	}
	return dirs, malformed
}

// suppressed reports whether a diagnostic from the named analyzer at posn is
// covered by one of the directives.
func suppressed(dirs []directive, posn token.Position, name string) bool {
	for _, d := range dirs {
		if d.file != posn.Filename || !d.names[name] {
			continue
		}
		if posn.Line == d.line || posn.Line == d.line+1 {
			return true
		}
	}
	return false
}
