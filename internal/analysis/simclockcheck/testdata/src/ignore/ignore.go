// Package ignore exercises the //lint:ignore suppression contract: a
// well-formed directive with a reason silences the diagnostic on its own
// line or the next one; anything malformed is itself reported and
// suppresses nothing.
package ignore

import "time"

var _ = time.Now //lint:ignore lglint/simclockcheck testdata: same-line suppression must silence the finding

//lint:ignore lglint/simclockcheck testdata: a full-line directive covers the next line
var _ = time.Sleep

// A directive without a reason is rejected and suppresses nothing.
/* want `missing a reason` */ //lint:ignore lglint/simclockcheck
var _ = time.After // want `forbidden wall-clock call time\.After`

// A directive naming an unknown analyzer is rejected and suppresses nothing.
/* want `unknown analyzer "lglint/simclok"` */ //lint:ignore lglint/simclok typo in the analyzer name
var _ = time.Tick // want `forbidden wall-clock call time\.Tick`

// A bare directive is malformed.
/* want `malformed //lint:ignore directive` */ //lint:ignore
var _ = time.Until // want `forbidden wall-clock call time\.Until`

// Directives for foreign checkers are none of our business.
//lint:ignore SA1000 staticcheck-style directive aimed at another tool
var _ = time.NewTimer // want `forbidden wall-clock call time\.NewTimer`
