// Package a exercises every forbidden wall-clock entry point.
package a

import (
	"time"

	tt "time"
)

func flagged() {
	_ = time.Now()                      // want `forbidden wall-clock call time\.Now`
	time.Sleep(time.Millisecond)        // want `forbidden wall-clock call time\.Sleep`
	<-time.After(time.Second)           // want `forbidden wall-clock call time\.After`
	_ = time.Since(time.Time{})         // want `forbidden wall-clock call time\.Since`
	_ = time.Until(time.Time{})         // want `forbidden wall-clock call time\.Until`
	_ = time.NewTimer(time.Second)      // want `forbidden wall-clock call time\.NewTimer`
	_ = time.NewTicker(time.Second)     // want `forbidden wall-clock call time\.NewTicker`
	_ = time.AfterFunc(0, func() {})    // want `forbidden wall-clock call time\.AfterFunc`
	<-time.Tick(time.Second)            // want `forbidden wall-clock call time\.Tick`
	_ = tt.Now()                        // want `forbidden wall-clock call time\.Now`
	var sleep = time.Sleep              // want `forbidden wall-clock call time\.Sleep`
	_ = sleep
}
