// Package clean uses the time package only for arithmetic and parsing,
// which is always legal: durations and instants carry no wall-clock read.
package clean

import "time"

func durations(d time.Duration) time.Duration {
	d += 30 * time.Second
	if d > time.Minute {
		d = d.Round(time.Millisecond)
	}
	return d
}

func parsing() (time.Time, error) {
	if d, err := time.ParseDuration("30s"); err == nil {
		_ = d
	}
	return time.Parse(time.RFC3339, "2012-08-13T00:00:00Z")
}

func methods(t *time.Timer, tk *time.Ticker, at time.Time) {
	// Methods on timer values are fine; only constructing them from the
	// wall clock is forbidden.
	t.Stop()
	tk.Reset(time.Second)
	_ = at.Add(time.Hour).Sub(at)
}
