// Package simclockcheck forbids wall-clock time in simulator code.
//
// The reproduction's results are only meaningful if identical seeds replay
// identical event sequences (determinism_test.go); a single time.Now or
// time.Sleep smuggled into the decision process, the monitor, or an
// experiment silently couples results to the host scheduler. All simulated
// time must flow through internal/simclock's virtual clock.
//
// A small allowlist covers the packages that legitimately touch the real
// clock: the wire-level BGP session FSM (deadlines and keepalives on real
// net.Conns) and its test substrate. Anything else needs a
// //lint:ignore lglint/simclockcheck <reason> with a written justification.
package simclockcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"lifeguard/internal/analysis"
)

// forbidden lists the time package's wall-clock entry points. Pure
// arithmetic (time.Duration, time.Second, ParseDuration…) stays legal.
var forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Allowlist holds import-path prefixes where wall-clock time is the point,
// not a bug. Each entry must say why. A package path matches if it equals an
// entry or lives below it; the external-test variant of a package inherits
// its allowlisting.
var Allowlist = []string{
	// The wire-level BGP-4 FSM talks to real routers over real TCP: hold
	// timers, handshake deadlines, and keepalive ticks are wall-clock by
	// definition (RFC 4271 §8), and the simulator never imports it.
	"lifeguard/internal/bgp/session",
	// The shared test substrate wires simulated components to real wire
	// sessions and needs watchdog timeouts against deadlocked goroutines.
	"lifeguard/internal/nettest",
	// lgpeer is an operator tool that peers with real BGP speakers
	// (gobgp, routers); its -linger/-hold windows are real-world time.
	"lifeguard/cmd/lgpeer",
	// The trial runner's per-trial timeout is a wall-clock watchdog
	// against hung simulations; trials themselves stay on the virtual
	// clock, and the runner never influences their results.
	"lifeguard/internal/runner",
	// lgbench measures real wall-clock time by definition — its output is
	// the machine's speed, not a simulation result.
	"lifeguard/cmd/lgbench",
	// scalebench times topology generation and convergence on the host
	// clock — like lgbench, its output *is* wall-clock — while the
	// simulations it drives stay on their own simclocks.
	"lifeguard/internal/scalebench",
	// The HTTP exporter serves live operators: /healthz uptime and request
	// timestamps are wall-clock readings about the host process. The obs
	// core (registry, journal, encoders) is NOT allowlisted — it records
	// sim-time only, enforced by internal/obs's TestNoWallClockInCore.
	"lifeguard/internal/obs/obshttp",
}

var Analyzer = &analysis.Analyzer{
	Name: "simclockcheck",
	Doc: "forbid wall-clock time (time.Now, Sleep, After, ...) outside the allowlist; simulator code must use internal/simclock\n" +
		"\nDeterministic replay is the foundation of every result in this repo;" +
		" wall-clock reads make runs irreproducible.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if allowlisted(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods like Timer.Stop are fine
			}
			if forbidden[fn.Name()] {
				pass.Reportf(id.Pos(), "forbidden wall-clock call time.%s: simulator code must use the virtual clock (internal/simclock)", fn.Name())
			}
			return true
		})
	}
	return nil
}

// allowlisted matches pkg path against Allowlist, normalizing the forms the
// vet driver hands us for test variants: "p [p.test]" and "p_test [p.test]".
func allowlisted(path string) bool {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, "_test")
	for _, prefix := range Allowlist {
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			return true
		}
	}
	return false
}
