package simclockcheck

import (
	"testing"

	"lifeguard/internal/analysis/analysistest"
)

func TestSimclockcheck(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "a", "clean", "ignore")
}

func TestAllowlist(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"lifeguard/internal/bgp/session", true},
		// Test variants as the vet driver names them.
		{"lifeguard/internal/bgp/session [lifeguard/internal/bgp/session.test]", true},
		{"lifeguard/internal/bgp/session_test [lifeguard/internal/bgp/session.test]", true},
		{"lifeguard/internal/nettest", true},
		{"lifeguard/cmd/lgpeer", true},
		// The exporter may read the wall clock; the obs core may not.
		{"lifeguard/internal/obs/obshttp", true},
		{"lifeguard/internal/obs/obshttp_test [lifeguard/internal/obs/obshttp.test]", true},
		{"lifeguard/internal/obs", false},
		{"lifeguard/internal/bgp", false},
		{"lifeguard/internal/bgp/sessionx", false},
		{"lifeguard/internal/monitor", false},
		{"lifeguard/cmd/lgexp", false},
		{"lifeguard", false},
	}
	for _, c := range cases {
		if got := allowlisted(c.path); got != c.want {
			t.Errorf("allowlisted(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
