package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) ([]directive, []Diagnostic, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{"simclockcheck": true, "maporder": true}
	dirs, malformed := parseDirectives(fset, []*ast.File{f}, known)
	return dirs, malformed, fset
}

func TestParseDirectives(t *testing.T) {
	src := `package p

//lint:ignore lglint/simclockcheck the wire FSM needs real deadlines
var a int

//lint:ignore lglint/simclockcheck,lglint/maporder both apply here
var b int

//lint:ignore SA1000 foreign directive, not ours
var c int

//lint:ignore lglint/simclockcheck
var d int

//lint:ignore
var e int

//lint:ignore lglint/doesnotexist some reason
var f int
`
	dirs, malformed, _ := parseOne(t, src)

	if len(dirs) != 2 {
		t.Fatalf("got %d valid directives, want 2: %+v", len(dirs), dirs)
	}
	if !dirs[0].names["simclockcheck"] || dirs[0].names["maporder"] {
		t.Errorf("first directive names = %v", dirs[0].names)
	}
	if !dirs[1].names["simclockcheck"] || !dirs[1].names["maporder"] {
		t.Errorf("comma-separated directive names = %v", dirs[1].names)
	}

	var msgs []string
	for _, d := range malformed {
		msgs = append(msgs, d.Message)
		if d.Analyzer != DirectiveCheckerName {
			t.Errorf("malformed diagnostic attributed to %q, want %q", d.Analyzer, DirectiveCheckerName)
		}
	}
	if len(msgs) != 3 {
		t.Fatalf("got %d malformed diagnostics, want 3: %v", len(msgs), msgs)
	}
	for want, frag := range map[int]string{
		0: "missing a reason",
		1: "malformed //lint:ignore directive",
		2: `unknown analyzer "lglint/doesnotexist"`,
	} {
		if !strings.Contains(msgs[want], frag) {
			t.Errorf("malformed[%d] = %q, want substring %q", want, msgs[want], frag)
		}
	}
}

// TestDirectivesCoveringOneLine pins the overlap semantics: a full-line
// directive above a statement and a trailing directive on the statement
// itself both cover that statement's line, each for its own analyzer.
func TestDirectivesCoveringOneLine(t *testing.T) {
	src := `package p

//lint:ignore lglint/simclockcheck the wire FSM needs real deadlines
var x = 1 //lint:ignore lglint/maporder iteration feeds a sorted slice
`
	dirs, malformed, _ := parseOne(t, src)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed diagnostics: %+v", malformed)
	}
	if len(dirs) != 2 {
		t.Fatalf("got %d directives, want 2: %+v", len(dirs), dirs)
	}
	pos := func(line int) token.Position { return token.Position{Filename: "x.go", Line: line} }
	// Line 4 holds the statement: covered by the line-3 directive (next
	// line) and by its own trailing directive (same line).
	if !suppressed(dirs, pos(4), "simclockcheck") {
		t.Error("full-line directive above should cover the statement line")
	}
	if !suppressed(dirs, pos(4), "maporder") {
		t.Error("trailing directive should cover its own line")
	}
	// Neither directive names the other's analyzer anywhere else.
	if suppressed(dirs, pos(3), "maporder") {
		t.Error("trailing directive must not reach the line above")
	}
}

// TestDirectiveAboveMultiLineStatement pins the coverage contract for
// statements that span several lines: analyzers report at the statement's
// opening position, which the directive on the line above covers; lines
// deeper inside the statement are NOT covered, so a diagnostic anchored
// mid-statement still fires.
func TestDirectiveAboveMultiLineStatement(t *testing.T) {
	src := `package p

func g(a, b int) {}

func f() {
	//lint:ignore lglint/maporder the iteration feeds a sorted slice
	g(
		1,
		2,
	)
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{"maporder": true}
	dirs, malformed := parseDirectives(fset, []*ast.File{f}, known)
	if len(malformed) != 0 || len(dirs) != 1 {
		t.Fatalf("dirs = %+v, malformed = %+v", dirs, malformed)
	}

	var call *ast.CallExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			call = c
		}
		return true
	})
	if call == nil {
		t.Fatal("no call expression found")
	}
	head := fset.Position(call.Pos())
	if head.Line != dirs[0].line+1 {
		t.Fatalf("call head on line %d, directive on line %d: fixture drifted", head.Line, dirs[0].line)
	}
	if !suppressed(dirs, head, "maporder") {
		t.Error("diagnostic at the statement head should be suppressed")
	}
	tail := fset.Position(call.Rparen)
	if suppressed(dirs, tail, "maporder") {
		t.Errorf("diagnostic at line %d, deep inside the statement, must not be suppressed", tail.Line)
	}
}

// TestUnknownNameAlongsideKnown pins that one bad name poisons the whole
// directive: it warns, and the known names on the same line suppress
// nothing (a half-working suppression would hide the typo).
func TestUnknownNameAlongsideKnown(t *testing.T) {
	src := `package p

//lint:ignore lglint/maporder,lglint/nope reason given
var y = 1
`
	dirs, malformed, _ := parseOne(t, src)
	if len(dirs) != 0 {
		t.Fatalf("directive with an unknown name must be dropped, got %+v", dirs)
	}
	if len(malformed) != 1 || !strings.Contains(malformed[0].Message, `unknown analyzer "lglint/nope"`) {
		t.Fatalf("malformed = %+v, want one unknown-analyzer warning", malformed)
	}
	if suppressed(dirs, token.Position{Filename: "x.go", Line: 4}, "maporder") {
		t.Error("known name on a poisoned directive must not suppress")
	}
}

func TestSuppressed(t *testing.T) {
	dirs := []directive{{file: "x.go", line: 10, names: map[string]bool{"maporder": true}}}
	pos := func(line int) token.Position { return token.Position{Filename: "x.go", Line: line} }

	if !suppressed(dirs, pos(10), "maporder") {
		t.Error("same-line diagnostic should be suppressed")
	}
	if !suppressed(dirs, pos(11), "maporder") {
		t.Error("next-line diagnostic should be suppressed")
	}
	if suppressed(dirs, pos(12), "maporder") {
		t.Error("two lines below must not be suppressed")
	}
	if suppressed(dirs, pos(9), "maporder") {
		t.Error("line above must not be suppressed")
	}
	if suppressed(dirs, pos(10), "simclockcheck") {
		t.Error("other analyzers must not be suppressed")
	}
	if suppressed(dirs, token.Position{Filename: "y.go", Line: 10}, "maporder") {
		t.Error("other files must not be suppressed")
	}
}
