package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) ([]directive, []Diagnostic, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{"simclockcheck": true, "maporder": true}
	dirs, malformed := parseDirectives(fset, []*ast.File{f}, known)
	return dirs, malformed, fset
}

func TestParseDirectives(t *testing.T) {
	src := `package p

//lint:ignore lglint/simclockcheck the wire FSM needs real deadlines
var a int

//lint:ignore lglint/simclockcheck,lglint/maporder both apply here
var b int

//lint:ignore SA1000 foreign directive, not ours
var c int

//lint:ignore lglint/simclockcheck
var d int

//lint:ignore
var e int

//lint:ignore lglint/doesnotexist some reason
var f int
`
	dirs, malformed, _ := parseOne(t, src)

	if len(dirs) != 2 {
		t.Fatalf("got %d valid directives, want 2: %+v", len(dirs), dirs)
	}
	if !dirs[0].names["simclockcheck"] || dirs[0].names["maporder"] {
		t.Errorf("first directive names = %v", dirs[0].names)
	}
	if !dirs[1].names["simclockcheck"] || !dirs[1].names["maporder"] {
		t.Errorf("comma-separated directive names = %v", dirs[1].names)
	}

	var msgs []string
	for _, d := range malformed {
		msgs = append(msgs, d.Message)
		if d.Analyzer != DirectiveCheckerName {
			t.Errorf("malformed diagnostic attributed to %q, want %q", d.Analyzer, DirectiveCheckerName)
		}
	}
	if len(msgs) != 3 {
		t.Fatalf("got %d malformed diagnostics, want 3: %v", len(msgs), msgs)
	}
	for want, frag := range map[int]string{
		0: "missing a reason",
		1: "malformed //lint:ignore directive",
		2: `unknown analyzer "lglint/doesnotexist"`,
	} {
		if !strings.Contains(msgs[want], frag) {
			t.Errorf("malformed[%d] = %q, want substring %q", want, msgs[want], frag)
		}
	}
}

func TestSuppressed(t *testing.T) {
	dirs := []directive{{file: "x.go", line: 10, names: map[string]bool{"maporder": true}}}
	pos := func(line int) token.Position { return token.Position{Filename: "x.go", Line: line} }

	if !suppressed(dirs, pos(10), "maporder") {
		t.Error("same-line diagnostic should be suppressed")
	}
	if !suppressed(dirs, pos(11), "maporder") {
		t.Error("next-line diagnostic should be suppressed")
	}
	if suppressed(dirs, pos(12), "maporder") {
		t.Error("two lines below must not be suppressed")
	}
	if suppressed(dirs, pos(9), "maporder") {
		t.Error("line above must not be suppressed")
	}
	if suppressed(dirs, pos(10), "simclockcheck") {
		t.Error("other analyzers must not be suppressed")
	}
	if suppressed(dirs, token.Position{Filename: "y.go", Line: 10}, "maporder") {
		t.Error("other files must not be suppressed")
	}
}
