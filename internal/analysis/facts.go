package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
	"sync"
)

// This file is the facts mechanism: the piece that turns five single-package
// AST checkers into a cross-package analysis framework. A Fact is a small
// serializable statement one analyzer makes about a package-level object (or
// a whole package) while analyzing the defining package — "AnnounceErr's
// error result must be checked", "newWallStamp returns a wall-clock-derived
// value" — which the same analyzer can query later when it analyzes an
// importing package. Facts travel along the package DAG inside the vetx
// files the `go vet -vettool` protocol already ships between compilations
// (see unitchecker.go), mirroring golang.org/x/tools/go/analysis facts.

// A Fact is a datum about an object or package. Implementations must be
// pointers to JSON-serializable structs; the AFact method is a marker that
// keeps arbitrary types out of the fact store. An analyzer declares the
// fact types it uses in Analyzer.FactTypes — undeclared types are rejected
// at export and silently absent at import.
type Fact interface {
	AFact()
}

// An objectpath-lite: facts attach only to package-level objects, so a path
// is either "Name" (func, var, const, type in package scope) or
// "Type.Method" (a method of a package-level named type). This covers every
// API an importing package can reach without the full generality of
// x/tools' go/types/objectpath.

// objectPath returns the intra-package path for obj, or "" if obj is not a
// package-level object (or method of one) and therefore cannot carry facts.
func objectPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if obj.Parent() == obj.Pkg().Scope() {
		return obj.Name()
	}
	if fn, ok := obj.(*types.Func); ok {
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return ""
		}
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return ""
		}
		return named.Obj().Name() + "." + fn.Name()
	}
	return ""
}

// findObject resolves a path produced by objectPath within pkg, returning
// nil if the object no longer exists.
func findObject(pkg *types.Package, path string) types.Object {
	if pkg == nil || path == "" {
		return nil
	}
	name, method, isMethod := strings.Cut(path, ".")
	obj := pkg.Scope().Lookup(name)
	if obj == nil || !isMethod {
		return obj
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == method {
			return m
		}
	}
	return nil
}

// factKey identifies one stored fact: the defining package, the object
// within it ("" for a package fact), the analyzer that produced it, and the
// fact's concrete type name.
type factKey struct {
	PkgPath  string
	Object   string
	Analyzer string
	Type     string
}

// A FactSet holds the facts visible to one analysis unit: everything
// decoded from dependency vetx files plus everything exported while
// analyzing the current package. Exported facts are visible to
// ImportObjectFact in the same pass immediately, so multi-file packages
// see their own facts without a fixpoint. FactSet is safe for the
// single-goroutine driver loop; a mutex guards the analysistest path,
// which loads dependency packages lazily during typechecking.
type FactSet struct {
	mu    sync.Mutex
	facts map[factKey]json.RawMessage
}

// NewFactSet returns an empty fact store.
func NewFactSet() *FactSet {
	return &FactSet{facts: make(map[factKey]json.RawMessage)}
}

func (s *FactSet) put(k factKey, data json.RawMessage) {
	s.mu.Lock()
	s.facts[k] = data
	s.mu.Unlock()
}

func (s *FactSet) get(k factKey) (json.RawMessage, bool) {
	s.mu.Lock()
	data, ok := s.facts[k]
	s.mu.Unlock()
	return data, ok
}

// factTypeName is the name facts are serialized under: the pointed-to
// struct type's name, e.g. "MustCheck" for *errcontract.MustCheck.
func factTypeName(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

// declared reports whether the analyzer listed a fact of the same concrete
// type in FactTypes.
func declared(a *Analyzer, f Fact) bool {
	for _, ft := range a.FactTypes {
		if reflect.TypeOf(ft) == reflect.TypeOf(f) {
			return true
		}
	}
	return false
}

// export stores fact for obj (nil obj = package fact on pkg itself).
// Exporting on a non-package-level object is a programming error in the
// analyzer and panics, matching x/tools.
func (s *FactSet) export(a *Analyzer, pkg *types.Package, obj types.Object, fact Fact) {
	if !declared(a, fact) {
		panic(fmt.Sprintf("analysis: analyzer %s exported fact %T not listed in FactTypes", a.Name, fact))
	}
	k := factKey{PkgPath: pkg.Path(), Analyzer: a.Name, Type: factTypeName(fact)}
	if obj != nil {
		if obj.Pkg() != pkg {
			panic(fmt.Sprintf("analysis: analyzer %s exported fact for object %s outside the package under analysis", a.Name, obj.Name()))
		}
		path := objectPath(obj)
		if path == "" {
			panic(fmt.Sprintf("analysis: analyzer %s exported fact for non-package-level object %s", a.Name, obj.Name()))
		}
		k.Object = path
	}
	data, err := json.Marshal(fact)
	if err != nil {
		panic(fmt.Sprintf("analysis: analyzer %s: encoding fact %T: %v", a.Name, fact, err))
	}
	s.put(k, data)
}

// importFact decodes the stored fact for (pkg, obj, analyzer, type of ptr)
// into ptr, reporting whether one existed.
func (s *FactSet) importFact(a *Analyzer, pkg *types.Package, obj types.Object, ptr Fact) bool {
	if !declared(a, ptr) {
		return false
	}
	k := factKey{PkgPath: pkg.Path(), Analyzer: a.Name, Type: factTypeName(ptr)}
	if obj != nil {
		k.Object = objectPath(obj)
		if k.Object == "" {
			return false
		}
	}
	data, ok := s.get(k)
	if !ok {
		return false
	}
	return json.Unmarshal(data, ptr) == nil
}

// serializedFact is the wire form of one fact inside a vetx file.
type serializedFact struct {
	Pkg      string          `json:"pkg"`
	Object   string          `json:"object,omitempty"`
	Analyzer string          `json:"analyzer"`
	Type     string          `json:"type"`
	Data     json.RawMessage `json:"data"`
}

// Encode serializes every fact in the set, deterministically ordered, for
// a vetx file. The set includes facts re-exported from dependencies so an
// importer sees the transitive closure without walking the DAG itself.
func (s *FactSet) Encode() ([]byte, error) {
	s.mu.Lock()
	out := make([]serializedFact, 0, len(s.facts))
	for k, data := range s.facts {
		out = append(out, serializedFact{Pkg: k.PkgPath, Object: k.Object, Analyzer: k.Analyzer, Type: k.Type, Data: data})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Type < b.Type
	})
	return json.Marshal(out)
}

// Decode merges the facts serialized in data (one dependency's vetx file)
// into the set. Empty input — the pre-facts vetx format, or a dependency
// that failed to analyze — is a valid empty set.
func (s *FactSet) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var in []serializedFact
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("decoding facts: %w", err)
	}
	for _, f := range in {
		s.put(factKey{PkgPath: f.Pkg, Object: f.Object, Analyzer: f.Analyzer, Type: f.Type}, f.Data)
	}
	return nil
}
