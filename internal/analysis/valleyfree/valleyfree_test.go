package valleyfree

import (
	"testing"

	"lifeguard/internal/analysis/analysistest"
)

func TestValleyfree(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "a", "clean", "ignore")
}
