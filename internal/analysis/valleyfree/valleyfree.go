// Package valleyfree flags BGP export paths that drop half of the
// Gao–Rexford valley-free rule.
//
// The rule has two independent clauses: a route learned from a peer or a
// provider (the route's Rel != RelCustomer) may be re-exported only to a
// customer (the relationship to the receiving neighbor == RelCustomer).
// Each clause guards a different leak — the first stops an AS from giving
// free transit between its providers/peers, the second stops customer
// routes from taking valleys — and the engine's exportTo spells them as one
// conjoined condition. The realistic regression is an edit that keeps one
// comparison and loses the other: the result still compiles, still routes
// most of the time, and silently breaks the poisoning experiments that
// depend on export policy (§2.2, §3.1). That half-guarded state is what
// this analyzer rejects.
//
// Heuristic: a function whose name contains "export" and whose body
// consults relationship state — it reads a Rel field from a route-shaped
// struct (one with both Path and Rel fields) or compares an expression
// against RelCustomer — must contain both guards:
//
//   - route side: a ==/!= comparison (or a switch) between a route's .Rel
//     field and RelCustomer;
//   - neighbor side: a ==/!= comparison (or a switch) between RelCustomer
//     and anything that is not a route's .Rel field (the relationship to
//     the receiving neighbor).
//
// Export-named helpers that never touch relationship state (pure path
// manipulation like Route.exported, or community-action checks that name
// only RelPeer/RelProvider) are not valley-free policy and are skipped.
package valleyfree

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lifeguard/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "valleyfree",
	Doc: "flag export functions that enforce only half of the valley-free rule\n" +
		"\nAn export path that consults BGP relationship state must compare both the" +
		" learned route's relationship and the relationship to the receiving neighbor" +
		" against RelCustomer; keeping one comparison and losing the other leaks" +
		" routes across valleys.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !strings.Contains(strings.ToLower(fn.Name.Name), "export") {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// checkFunc classifies every relationship comparison in fn and reports the
// missing guard side(s) as a single diagnostic on the function name.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	var touchesRel, routeGuard, neighborGuard bool
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if isRouteRel(pass, n) {
				touchesRel = true
			}
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			x, y := n.X, n.Y
			if isRelCustomer(x) {
				x, y = y, x
			}
			if !isRelCustomer(y) {
				return true
			}
			touchesRel = true
			if sel, ok := unparen(x).(*ast.SelectorExpr); ok && isRouteRel(pass, sel) {
				routeGuard = true
			} else {
				neighborGuard = true
			}
		case *ast.SwitchStmt:
			if n.Tag == nil || !switchMentionsCustomer(n) {
				return true
			}
			touchesRel = true
			if sel, ok := unparen(n.Tag).(*ast.SelectorExpr); ok && isRouteRel(pass, sel) {
				routeGuard = true
			} else {
				neighborGuard = true
			}
		}
		return true
	})
	if !touchesRel {
		return
	}
	switch {
	case routeGuard && neighborGuard:
	case routeGuard:
		pass.Reportf(fn.Name.Pos(), "%s checks the route's relationship but never the neighbor's: a route may leave the AS toward a peer or provider only if it was learned from a customer — also compare the relationship to the receiving neighbor against RelCustomer", fn.Name.Name)
	case neighborGuard:
		pass.Reportf(fn.Name.Pos(), "%s checks the neighbor's relationship but never the learned route's: routes learned from peers or providers must go only to customers — also compare the route's .Rel against RelCustomer", fn.Name.Name)
	default:
		pass.Reportf(fn.Name.Pos(), "%s consults BGP relationship state but has neither valley-free guard: compare both the learned route's .Rel and the relationship to the receiving neighbor against RelCustomer", fn.Name.Name)
	}
}

// isRelCustomer reports whether e names the customer relationship constant,
// either bare (RelCustomer) or qualified (topo.RelCustomer).
func isRelCustomer(e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e.Name == "RelCustomer"
	case *ast.SelectorExpr:
		return e.Sel.Name == "RelCustomer"
	}
	return false
}

// isRouteRel reports whether sel reads the Rel field of a route-shaped
// value: a struct (or pointer to one) that has both Path and Rel fields.
func isRouteRel(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Rel" {
		return false
	}
	return isRouteShaped(pass.TypesInfo.TypeOf(sel.X))
}

func isRouteShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	var hasPath, hasRel bool
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Name() {
		case "Path":
			hasPath = true
		case "Rel":
			hasRel = true
		}
	}
	return hasPath && hasRel
}

// switchMentionsCustomer reports whether any case of the switch lists
// RelCustomer.
func switchMentionsCustomer(sw *ast.SwitchStmt) bool {
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if isRelCustomer(e) {
				return true
			}
		}
	}
	return false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
