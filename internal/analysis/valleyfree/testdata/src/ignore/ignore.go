// Package ignore proves suppression and malformed-directive reporting for
// valleyfree.
package ignore

type Rel int

const (
	RelCustomer Rel = iota
	RelPeer
)

type Path []uint32

type Route struct {
	Path Path
	Rel  Rel
}

//lint:ignore lglint/valleyfree testdata: one-sided on purpose, the caller handles the neighbor side
func exportSuppressed(b *Route) (Path, bool) {
	if b.Rel != RelCustomer {
		return nil, false
	}
	return b.Path, true
}

func exportReported(b *Route) (Path, bool) { // want `exportReported checks the route's relationship but never the neighbor's`
	/* want `missing a reason` */ //lint:ignore lglint/valleyfree
	if b.Rel != RelCustomer {
		return nil, false
	}
	return b.Path, true
}
