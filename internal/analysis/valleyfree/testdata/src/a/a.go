// Package a exercises the flagged forms: export functions that enforce
// only one side — or neither side — of the valley-free rule.
package a

type Rel int

const (
	RelCustomer Rel = iota
	RelPeer
	RelProvider
)

type Path []uint32

type Route struct {
	Path Path
	Rel  Rel
}

type table struct {
	best map[string]*Route
	rel  map[uint32]Rel
}

// exportRouteOnly kept the learned-route clause and lost the neighbor one:
// customer-learned routes now leak to peers and providers alike.
func (t *table) exportRouteOnly(key string) (Path, bool) { // want `exportRouteOnly checks the route's relationship but never the neighbor's`
	b := t.best[key]
	if b == nil {
		return nil, false
	}
	if b.Rel != RelCustomer {
		return nil, false
	}
	return b.Path, true
}

// exportNeighborOnly kept the neighbor clause and lost the learned-route
// one: provider-learned routes now transit to other providers.
func (t *table) exportNeighborOnly(n uint32, key string) (Path, bool) { // want `exportNeighborOnly checks the neighbor's relationship but never the learned route's`
	b := t.best[key]
	if b == nil {
		return nil, false
	}
	if t.rel[n] != RelCustomer {
		return nil, false
	}
	return b.Path, true
}

// exportNoGuards reads relationship state but never compares it against
// RelCustomer at all.
func (t *table) exportNoGuards(key string) Path { // want `exportNoGuards consults BGP relationship state but has neither valley-free guard`
	b := t.best[key]
	if b == nil {
		return nil
	}
	if b.Rel == RelPeer {
		return nil
	}
	return b.Path
}

// exportSwitchRouteOnly spells its single (route-side) guard as a switch;
// the missing neighbor side is still reported.
func exportSwitchRouteOnly(b *Route) (Path, bool) { // want `exportSwitchRouteOnly checks the route's relationship but never the neighbor's`
	switch b.Rel {
	case RelCustomer:
		return b.Path, true
	}
	return nil, false
}
