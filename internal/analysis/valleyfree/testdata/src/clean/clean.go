// Package clean shows the blessed forms: both valley-free clauses present
// (as one conjoined condition or as switches), plus export-named helpers
// that are not relationship policy at all and therefore need no guards.
package clean

type Rel int

const (
	RelCustomer Rel = iota
	RelPeer
	RelProvider
)

type Path []uint32

type Route struct {
	Path Path
	Rel  Rel
}

// exportTo mirrors the engine's export policy: the conjoined condition
// carries both the neighbor-side and the route-side comparison.
func exportTo(b *Route, relToN Rel) (Path, bool) {
	if b == nil {
		return nil, false
	}
	if relToN != RelCustomer && b.Rel != RelCustomer {
		return nil, false
	}
	return b.Path, true
}

// exportSwitched spells both guards as switches.
func exportSwitched(b *Route, relToN Rel) (Path, bool) {
	switch relToN {
	case RelCustomer:
		return b.Path, true
	}
	switch b.Rel {
	case RelCustomer:
		return b.Path, true
	}
	return nil, false
}

// exported is pure path manipulation — no relationship state, so it is not
// export policy.
func exported(r *Route, self uint32) Path {
	out := make(Path, 0, len(r.Path)+1)
	out = append(out, self)
	out = append(out, r.Path...)
	return out
}

// blockExport consults the neighbor relationship for community actions; it
// never involves RelCustomer or a route's Rel field, so the valley-free
// rule is out of its scope.
func blockExport(relToNeighbor Rel) bool {
	return relToNeighbor == RelPeer || relToNeighbor == RelProvider
}

// usable compares one-sidedly but is not export-named; selection policy is
// not export policy.
func usable(b *Route) bool {
	return b.Rel == RelCustomer
}
