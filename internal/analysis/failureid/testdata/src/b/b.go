// Package b consumes api across the package boundary: the Consumes facts
// exported while analyzing api drive the diagnostics here.
package b

import "api"

func reuse(p *api.Plane) {
	id := p.AddFailure()
	p.RemoveFailure(id)
	p.Failure(id) // want `FailureID id was consumed by p\.RemoveFailure: IDs are never reused`
}

func sliceHeal(p *api.Plane) {
	ids := []api.FailureID{p.AddFailure()}
	api.HealAll(p, ids)
	p.Failure(ids[0]) // want `FailureID ids was consumed by api\.HealAll: IDs are never reused`
}

func rebound(p *api.Plane) {
	id := p.AddFailure()
	p.RemoveFailure(id)
	id = p.AddFailure()
	p.RemoveFailure(id)
}
