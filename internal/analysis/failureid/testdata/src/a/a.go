// Package a exercises use-after-heal within one package.
package a

type FailureID int

type Plane struct {
	n FailureID
}

func (p *Plane) AddFailure() FailureID {
	p.n++
	return p.n
}

func (p *Plane) RemoveFailure(id FailureID) bool { return true }

func (p *Plane) Failure(id FailureID) bool { return false }

func Heal(p *Plane, id FailureID) { p.RemoveFailure(id) }

func useAfterRemove(p *Plane) {
	id := p.AddFailure()
	p.RemoveFailure(id)
	p.Failure(id) // want `FailureID id was consumed by p\.RemoveFailure: IDs are never reused`
}

func doubleRemove(p *Plane) {
	id := p.AddFailure()
	p.RemoveFailure(id)
	p.RemoveFailure(id) // want `FailureID id was consumed by p\.RemoveFailure: IDs are never reused`
}

func useAfterHealFunc(p *Plane) {
	id := p.AddFailure()
	Heal(p, id)
	p.Failure(id) // want `FailureID id was consumed by Heal: IDs are never reused`
}

func branchReuse(p *Plane, c bool) {
	id := p.AddFailure()
	p.RemoveFailure(id)
	if c {
		p.Failure(id) // want `FailureID id was consumed by p\.RemoveFailure: IDs are never reused`
	}
}
