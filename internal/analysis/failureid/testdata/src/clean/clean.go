// Package clean holds the accepted forms: IDs rebound before reuse, reads
// that never go back into the API, and per-iteration fresh IDs.
package clean

type FailureID int

type Plane struct {
	n FailureID
}

func (p *Plane) AddFailure() FailureID {
	p.n++
	return p.n
}

func (p *Plane) RemoveFailure(id FailureID) bool { return true }

func (p *Plane) Failure(id FailureID) bool { return false }

func useThenRemove(p *Plane) {
	id := p.AddFailure()
	p.Failure(id)
	p.RemoveFailure(id)
}

func rebound(p *Plane) {
	id := p.AddFailure()
	p.RemoveFailure(id)
	id = p.AddFailure()
	p.Failure(id)
}

func freshEachIteration(p *Plane) {
	for i := 0; i < 3; i++ {
		id := p.AddFailure()
		p.RemoveFailure(id)
	}
}

func log(args ...any) {}

// Formatting a dead ID into a message is reporting, not reuse: the
// any-typed parameter does not interpret it as an ID.
func reportingIsFine(p *Plane) {
	id := p.AddFailure()
	p.RemoveFailure(id)
	log("removed", id)
}

func plainReadsAreFine(p *Plane) FailureID {
	id := p.AddFailure()
	p.RemoveFailure(id)
	if id > 10 {
		return id
	}
	last := id
	return last
}
