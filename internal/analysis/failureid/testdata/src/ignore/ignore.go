// Package ignore shows the suppression escape hatch.
package ignore

type FailureID int

type Plane struct{ n FailureID }

func (p *Plane) AddFailure() FailureID      { p.n++; return p.n }
func (p *Plane) RemoveFailure(id FailureID) bool { return true }
func (p *Plane) Failure(id FailureID) bool  { return false }

func suppressed(p *Plane) {
	id := p.AddFailure()
	p.RemoveFailure(id)
	//lint:ignore lglint/failureid probing that removal really invalidated the ID
	p.Failure(id)
}

func notSuppressed(p *Plane) {
	id := p.AddFailure()
	p.RemoveFailure(id)
	p.Failure(id) // want `FailureID id was consumed by p\.RemoveFailure: IDs are never reused`
}
