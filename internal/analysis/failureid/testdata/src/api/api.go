// Package api is the fact-exporting dependency: its Heal*/Remove*
// functions carry Consumes facts naming the parameters they kill.
package api

type FailureID int

type Plane struct {
	n FailureID
}

func (p *Plane) AddFailure() FailureID {
	p.n++
	return p.n
}

func (p *Plane) RemoveFailure(id FailureID) bool { return true }

func (p *Plane) Failure(id FailureID) bool { return false }

func HealAll(p *Plane, ids []FailureID) {
	for _, id := range ids {
		p.RemoveFailure(id)
	}
}
