// Package failureid enforces the dataplane FailureID lifecycle contract:
// IDs name installed failure rules, are allocated from a counter that
// never goes backwards, and are dead the moment a Heal*/Remove* call
// consumes them — RemoveFailure on a healed ID returns false forever, and
// chaos invariant checks treat a resurrected ID as a scripting bug. A
// caller that keeps passing a consumed ID to the API is therefore holding
// a dangling name: every later call is a silent no-op that makes a fault
// timeline look healed when it is not.
//
// The analyzer exports a Consumes fact (which parameter positions kill
// their argument) for every package-level Heal*/Remove* function or
// method taking FailureID-typed values; at call sites — local or across
// packages via the fact — it walks the control-flow graph forward from
// the consuming call and flags any use of the same ID variable that
// appears as an argument to another call before the variable is rebound.
package failureid

import (
	"go/ast"
	"go/types"
	"strings"

	"lifeguard/internal/analysis"
	"lifeguard/internal/analysis/dataflow"
)

// Consumes marks a function that invalidates the FailureID arguments at
// the given parameter positions.
type Consumes struct {
	Params []int
}

// AFact marks Consumes as a fact type.
func (*Consumes) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name: "failureid",
	Doc: "flag FailureID values used after a Heal*/Remove* call consumed them (cross-package via facts)\n" +
		"\nFailureIDs are never reused: once healed, an ID is a dangling name and every" +
		" dataplane call made with it is a silent no-op. Rebind the variable from a fresh" +
		" AddFailure before using it again.",
	FactTypes: []analysis.Fact{(*Consumes)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) error {
	exportFacts(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncNode(pass, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkFuncNode(pass, lit)
				}
				return true
			})
		}
	}
	return nil
}

func exportFacts(pass *analysis.Pass) {
	export := func(fn *types.Func) {
		if ps := consumingParams(fn); len(ps) > 0 {
			pass.ExportObjectFact(fn, &Consumes{Params: ps})
		}
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		switch obj := scope.Lookup(name).(type) {
		case *types.Func:
			export(obj)
		case *types.TypeName:
			if named, ok := obj.Type().(*types.Named); ok {
				for i := 0; i < named.NumMethods(); i++ {
					export(named.Method(i))
				}
			}
		}
	}
}

// consumingParams applies the naming rule: a Heal*/Remove* function
// consumes every FailureID-typed parameter.
func consumingParams(fn *types.Func) []int {
	if !strings.HasPrefix(fn.Name(), "Heal") && !strings.HasPrefix(fn.Name(), "Remove") {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var ps []int
	for i := 0; i < sig.Params().Len(); i++ {
		if isFailureIDType(sig.Params().At(i).Type()) {
			ps = append(ps, i)
		}
	}
	return ps
}

// isFailureIDType matches the named type FailureID (any package following
// the dataplane convention) and aggregates of it.
func isFailureIDType(t types.Type) bool {
	switch t := types.Unalias(t).(type) {
	case *types.Named:
		return t.Obj().Name() == "FailureID"
	case *types.Array:
		return isFailureIDType(t.Elem())
	case *types.Slice:
		return isFailureIDType(t.Elem())
	}
	return false
}

// consumes returns the consuming parameter positions for the called
// object: the imported fact, or the local naming rule.
func consumes(pass *analysis.Pass, obj types.Object) []int {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	var fact Consumes
	if pass.ImportObjectFact(fn, &fact) {
		return fact.Params
	}
	return consumingParams(fn)
}

func checkFuncNode(pass *analysis.Pass, fn ast.Node) {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	if body == nil {
		return
	}
	var flow *dataflow.Flow
	reported := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != fn {
			return false // its own checkFuncNode call handles it
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObj(pass, call)
		ps := consumes(pass, obj)
		if len(ps) == 0 {
			return true
		}
		if flow == nil {
			flow = dataflow.NewFunc(fn, pass.TypesInfo)
		}
		for _, p := range ps {
			if p >= len(call.Args) {
				continue
			}
			id, ok := ast.Unparen(call.Args[p]).(*ast.Ident)
			if !ok {
				continue // field/index/expr argument: can't track the binding
			}
			v, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok {
				continue
			}
			for _, use := range flow.UsesBeforeRedef(call, v) {
				if reported[use] || !inFailureIDArg(pass, body, use, call) {
					continue
				}
				reported[use] = true
				pass.Reportf(use.Pos(), "FailureID %s was consumed by %s: IDs are never reused, so this call is a silent no-op; rebind from a fresh AddFailure", id.Name, calleeName(call))
			}
		}
		return true
	})
}

// inFailureIDArg reports whether use sits inside an argument of some call
// (other than the consuming one) whose corresponding parameter is
// FailureID-typed — the shape that hands a dead ID back to an API that
// will interpret it. Comparisons, plain reads, and formatting the value
// into a log or test-failure message (an any-typed parameter) stay legal:
// reporting a dead ID's number is not using it as an ID.
func inFailureIDArg(pass *analysis.Pass, body *ast.BlockStmt, use *ast.Ident, consuming *ast.CallExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call == consuming {
			return true
		}
		sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
		if !ok {
			return true // conversion or type expression, not a call
		}
		for i, arg := range call.Args {
			if arg.Pos() <= use.Pos() && use.End() <= arg.End() {
				if isFailureIDType(paramType(sig, i, call)) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// paramType resolves the parameter type matched by argument i, unrolling
// the variadic tail.
func paramType(sig *types.Signature, i int, call *ast.CallExpr) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if call.Ellipsis.IsValid() {
			return last // id... spread: the argument is the slice itself
		}
		if s, ok := types.Unalias(last).(*types.Slice); ok {
			return s.Elem()
		}
		return last
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

func calleeObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
