package failureid

import (
	"testing"

	"lifeguard/internal/analysis/analysistest"
)

func TestFailureid(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "a", "api", "b", "clean", "ignore")
}
