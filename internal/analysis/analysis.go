// Package analysis is a deliberately small, dependency-free re-creation of
// the golang.org/x/tools/go/analysis model: an Analyzer inspects one
// type-checked package at a time and reports position-tagged diagnostics,
// optionally with machine-applicable suggested fixes, and may exchange
// serializable facts with runs of the same analyzer on other packages.
//
// The repository cannot vendor x/tools (stdlib-only policy), and the subset
// we need — per-package syntax + types, diagnostics, facts along the package
// DAG, a vet driver, and a testdata harness — is around a thousand lines, so
// we own it. The shape mirrors x/tools closely enough that migrating to the
// real framework later is a mechanical change.
//
// Drivers:
//
//   - unitchecker.go speaks the `go vet -vettool` protocol, so the lglint
//     suite runs under the build cache with full export data, exactly like
//     the standard vet passes; facts ride in the vetx files the protocol
//     already ships between packages (see cmd/lglint).
//   - cmd/lglint also has a standalone loader (built on `go list`) for the
//     modes vet cannot drive: -fix, -json, -sarif, -github.
//   - analysistest/ runs an analyzer over testdata packages — including
//     testdata-local dependency packages, analyzed first so facts flow —
//     and matches diagnostics against `// want "regexp"` comments.
//
// Every diagnostic can be suppressed with a written justification:
//
//	//lint:ignore lglint/<analyzer> <reason>
//
// See ignore.go for the exact rules; a malformed directive is itself a
// diagnostic, so silent or reasonless suppressions cannot land.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer inspects a single type-checked package and reports findings.
type Analyzer struct {
	// Name is the short identifier, e.g. "simclockcheck". Diagnostics and
	// suppression directives refer to it as lglint/<Name>.
	Name string

	// Doc is the full help text. The first line is used as the one-line
	// summary in -flags output.
	Doc string

	// FactTypes lists prototype values (pointers to zero structs) of every
	// Fact type this analyzer exports or imports. An analyzer with a
	// non-empty FactTypes also runs on dependency packages in fact-only
	// mode so its facts are available when importers are analyzed.
	FactTypes []Fact

	// Run performs the analysis. It reports findings via pass.Reportf and
	// returns an error only for internal failures (which abort the driver),
	// never for findings.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with everything it may inspect for a single
// package, plus the Reportf sink for diagnostics and the fact store.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
	facts *FactSet
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report records a fully-formed diagnostic (the way to attach
// SuggestedFixes). The Analyzer field is stamped by the pass.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	*p.diags = append(*p.diags, d)
}

// ExportObjectFact states fact about obj, a package-level object (or method
// of one) of the package under analysis. The fact becomes visible to this
// analyzer when later passes analyze importing packages, and to
// ImportObjectFact within this pass immediately.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil {
		return
	}
	p.facts.export(p.Analyzer, p.Pkg, obj, fact)
}

// ImportObjectFact copies into fact the fact previously exported for obj —
// by this pass or by this analyzer's run on the package that defines obj —
// and reports whether one existed. fact must be a pointer of a type listed
// in the analyzer's FactTypes.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts == nil || obj == nil {
		return false
	}
	pkg := obj.Pkg()
	if pkg == nil {
		return false
	}
	return p.facts.importFact(p.Analyzer, pkg, obj, fact)
}

// ExportPackageFact states fact about the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.facts == nil {
		return
	}
	p.facts.export(p.Analyzer, p.Pkg, nil, fact)
}

// ImportPackageFact copies into fact the package fact previously exported
// for pkg, reporting whether one existed.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if p.facts == nil || pkg == nil {
		return false
	}
	return p.facts.importFact(p.Analyzer, pkg, nil, fact)
}

// A TextEdit replaces the source text in [Pos, End) with NewText. Pos ==
// End is a pure insertion.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// A SuggestedFix is one machine-applicable resolution of a diagnostic: a
// set of non-overlapping edits, all within the diagnostic's file. Applying
// the fix must make the diagnostic disappear on re-analysis — the round-trip
// the -fix testdata tests pin.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A Diagnostic is a single finding. Analyzer is the short analyzer name, or
// DirectiveCheckerName for problems with suppression directives themselves.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string

	// SuggestedFixes, when non-empty, are alternative machine-applicable
	// resolutions; drivers apply the first one.
	SuggestedFixes []SuggestedFix
}

// Run executes the given analyzers over one type-checked package, applies
// //lint:ignore suppression, and returns the surviving diagnostics sorted by
// position. Malformed directives are appended as diagnostics exactly once,
// regardless of how many analyzers ran.
//
// facts carries previously-imported dependency facts in and newly-exported
// facts out; nil disables the mechanism (fact calls become no-ops reporting
// nothing, so analyzers degrade to single-package reasoning).
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *FactSet) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	directives, malformed := parseDirectives(fset, files, known)

	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			diags:     &diags,
			facts:     facts,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(directives, fset.Position(d.Pos), d.Analyzer) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, malformed...)
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}
