// Package analysis is a deliberately small, dependency-free re-creation of
// the golang.org/x/tools/go/analysis model: an Analyzer inspects one
// type-checked package at a time and reports position-tagged diagnostics.
//
// The repository cannot vendor x/tools (stdlib-only policy), and the subset
// we need — per-package syntax + types, diagnostics, a vet driver, and a
// testdata harness — is a few hundred lines, so we own it. The shape mirrors
// x/tools closely enough that migrating to the real framework later is a
// mechanical change.
//
// Drivers:
//
//   - unitchecker.go speaks the `go vet -vettool` protocol, so the lglint
//     suite runs under the build cache with full export data, exactly like
//     the standard vet passes (see cmd/lglint).
//   - analysistest/ runs an analyzer over testdata packages and matches
//     diagnostics against `// want "regexp"` comments.
//
// Every diagnostic can be suppressed with a written justification:
//
//	//lint:ignore lglint/<analyzer> <reason>
//
// See ignore.go for the exact rules; a malformed directive is itself a
// diagnostic, so silent or reasonless suppressions cannot land.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer inspects a single type-checked package and reports findings.
type Analyzer struct {
	// Name is the short identifier, e.g. "simclockcheck". Diagnostics and
	// suppression directives refer to it as lglint/<Name>.
	Name string

	// Doc is the full help text. The first line is used as the one-line
	// summary in -flags output.
	Doc string

	// Run performs the analysis. It reports findings via pass.Reportf and
	// returns an error only for internal failures (which abort the driver),
	// never for findings.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with everything it may inspect for a single
// package, plus the Reportf sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is a single finding. Analyzer is the short analyzer name, or
// DirectiveCheckerName for problems with suppression directives themselves.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Run executes the given analyzers over one type-checked package, applies
// //lint:ignore suppression, and returns the surviving diagnostics sorted by
// position. Malformed directives are appended as diagnostics exactly once,
// regardless of how many analyzers ran.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	directives, malformed := parseDirectives(fset, files, known)

	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(directives, fset.Position(d.Pos), d.Analyzer) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, malformed...)
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}
