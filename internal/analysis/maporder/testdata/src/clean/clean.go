// Package clean shows the blessed patterns: commutative aggregation,
// map-to-map accumulation, loop-local slices, ranging over non-maps, and
// the canonical collect-then-sort idiom in all its spellings.
package clean

import (
	"slices"
	"sort"
)

func collectThenSortStrings(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectThenSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func collectThenSlicesSort(m map[uint32]string) []uint32 {
	var asns []uint32
	for asn := range m {
		asns = append(asns, asn)
	}
	slices.Sort(asns)
	return asns
}

func collectThenSortWrapped(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Sort(sort.StringSlice(keys))
	return keys
}

func viaLocalHelper(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func sortKeys(ks []string) { sort.Strings(ks) }

type keyList []string

func (k keyList) Sort() { sort.Strings(k) }

func viaSortMethod(m map[string]int) keyList {
	var keys keyList
	for k := range m {
		keys = append(keys, k)
	}
	keys.Sort()
	return keys
}

func commutative(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func mapToMap(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

func loopLocal(m map[string][]string) int {
	n := 0
	for _, hops := range m {
		trimmed := []string{}
		trimmed = append(trimmed, hops...)
		n += len(trimmed)
	}
	return n
}

func rangeOverSlice(xs []string, ch chan<- string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
		ch <- x
	}
	return out
}
