// Package a exercises the order-sensitive map-iteration detectors.
package a

import (
	"fmt"
	"log"
)

func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside range over map without a following sort`
	}
	return keys
}

func send(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want `send on a channel inside range over map`
	}
}

func printed(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt\.Printf inside range over map prints in randomized order`
	}
	for k := range m {
		log.Println(k) // want `log\.Println inside range over map prints in randomized order`
	}
}

type routes map[uint32][]string

func namedMapType(r routes, out *[]string) {
	for asn := range r {
		*out = append(*out, fmt.Sprint(asn)) // non-ident target: not tracked
	}
	var paths []string
	for _, hops := range r {
		paths = append(paths, hops...) // want `append to "paths" inside range over map without a following sort`
	}
	_ = paths
}

func insideClosure(m map[string]int) func() []string {
	return func() []string {
		var ks []string
		for k := range m {
			ks = append(ks, k) // want `append to "ks" inside range over map without a following sort`
		}
		return ks
	}
}

func helperIsNotASort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside range over map without a following sort`
	}
	reverse(keys)
	return keys
}

func reverse(ks []string) {
	for i, j := 0, len(ks)-1; i < j; i, j = i+1, j-1 {
		ks[i], ks[j] = ks[j], ks[i]
	}
}

func labeled(m map[string]int) []string {
	var keys []string
outer:
	for k := range m {
		if k == "" {
			break outer
		}
		keys = append(keys, k) // want `append to "keys" inside range over map without a following sort`
	}
	return keys
}
