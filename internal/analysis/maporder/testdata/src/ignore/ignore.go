// Package ignore proves suppression and malformed-directive reporting for
// maporder.
package ignore

func suppressed(m map[string]int, ch chan<- string) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //lint:ignore lglint/maporder testdata: consumer is order-insensitive
		//lint:ignore lglint/maporder testdata: next-line suppression must silence the finding
		ch <- k
	}
	return keys
}

func reported(m map[string]int) []string {
	var keys []string
	for k := range m {
		/* want `missing a reason` */ //lint:ignore lglint/maporder
		keys = append(keys, k) // want `append to "keys" inside range over map without a following sort`
	}
	return keys
}
