// Package maporder flags the canonical Go nondeterminism leak: iterating a
// map while building order-sensitive output.
//
// Map iteration order is deliberately randomized by the runtime, so a
// `range` over a map that appends to a slice, sends on a channel, or prints
// directly produces a different ordering every run. In this repo that class
// of bug corrupts the BGP decision process, topology generation, and every
// golden experiment table — and it passes all tests most of the time, which
// is exactly why it must be rejected statically.
//
// The analyzer blesses the canonical fix: appending keys/values to a slice
// is fine if a later statement in the same block sorts that slice before it
// escapes — a call into sort or slices, or to any function or method whose
// name contains "sort" (project-local helpers like sortPrefixes count).
// Accumulating into another map or summing a counter (commutative work) is
// always fine.
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"lifeguard/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map loops that append, send, or print without a subsequent sort\n" +
		"\nMap iteration order is randomized; order-sensitive work inside such a" +
		" loop makes runs irreproducible unless the result is sorted afterwards.",
	Run: run,
}

// printFuncs are direct-output calls whose ordering is user-visible.
var printFuncs = map[string]map[string]bool{
	"fmt": {"Print": true, "Printf": true, "Println": true,
		"Fprint": true, "Fprintf": true, "Fprintln": true},
	"log": {"Print": true, "Printf": true, "Println": true},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				checkStmts(pass, n.List)
			case *ast.CaseClause:
				checkStmts(pass, n.Body)
			case *ast.CommClause:
				checkStmts(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// checkStmts scans one statement list for range-over-map loops, using the
// statements after each loop to decide whether appended slices get sorted.
func checkStmts(pass *analysis.Pass, stmts []ast.Stmt) {
	for i, stmt := range stmts {
		for {
			if ls, ok := stmt.(*ast.LabeledStmt); ok {
				stmt = ls.Stmt
				continue
			}
			break
		}
		rs, ok := stmt.(*ast.RangeStmt)
		if !ok || !isMap(pass, rs.X) {
			continue
		}
		checkRange(pass, rs, stmts[i+1:])
	}
}

func isMap(pass *analysis.Pass, x ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(x)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, after []ast.Stmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "send on a channel inside range over map: iteration order is randomized, so receivers observe a different order every run")
		case *ast.CallExpr:
			if fn := calleeFunc(pass, n); fn != nil {
				if names := printFuncs[fn.Pkg().Path()]; names[fn.Name()] {
					pass.Reportf(n.Pos(), "%s.%s inside range over map prints in randomized order: collect keys, sort them, then iterate", fn.Pkg().Name(), fn.Name())
				}
			}
		case *ast.AssignStmt:
			checkAppend(pass, n, rs, after)
		}
		return true
	})
}

// checkAppend reports `v = append(v, ...)` inside the loop when v outlives
// the loop and no later statement in the enclosing block sorts it.
func checkAppend(pass *analysis.Pass, as *ast.AssignStmt, rs *ast.RangeStmt, after []ast.Stmt) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil || (obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()) {
			continue // loop-local accumulator dies with the loop
		}
		if sortedAfter(pass, obj, after) {
			continue
		}
		pass.Reportf(as.Pos(), "append to %q inside range over map without a following sort: iteration order is randomized — sort %q before it is used (e.g. sort.Strings/slices.Sort)", id.Name, id.Name)
	}
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return nil
	}
	return fn
}

// sortedAfter reports whether any statement after the loop sorts obj: a call
// into the sort or slices package, or to any function or method whose name
// contains "sort" (a project-local helper like sortPrefixes), with obj
// appearing anywhere in the call.
func sortedAfter(pass *analysis.Pass, obj types.Object, after []ast.Stmt) bool {
	found := false
	for _, stmt := range after {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if !isSortCall(pass, call) {
				return true
			}
			ast.Inspect(call, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	if strings.Contains(strings.ToLower(id.Name), "sort") {
		return true
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == "sort" || p == "slices"
}
