package maporder

import (
	"testing"

	"lifeguard/internal/analysis/analysistest"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "a", "clean", "ignore")
}
