// Package seededrand forbids process-global randomness.
//
// Every stochastic choice in the simulator — topology synthesis, outage
// workloads, probe loss — must come from a *rand.Rand constructed from the
// experiment seed and threaded explicitly, so that a seed fully determines a
// run. The math/rand (and math/rand/v2) top-level functions draw from a
// package-global source that is shared across goroutines and seeded
// differently per process; crypto/rand is nondeterministic by design. Both
// turn "same seed, same result" into a lie without failing any test until
// determinism_test.go flakes.
package seededrand

import (
	"go/ast"
	"go/types"

	"lifeguard/internal/analysis"
)

// allowed lists the math/rand functions that construct an explicit,
// seedable generator rather than touching the global source.
var allowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

var randPkgs = map[string]string{
	"math/rand":    "global math/rand source",
	"math/rand/v2": "global math/rand/v2 source",
	"crypto/rand":  "crypto/rand (nondeterministic by design)",
}

var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "forbid the global math/rand source and crypto/rand; inject a seeded *rand.Rand instead\n" +
		"\nA run must be a pure function of its seed: rand.Intn et al. draw from" +
		" a shared process-global source, breaking replayability.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			what, bad := randPkgs[fn.Pkg().Path()]
			if !bad {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods on an injected *rand.Rand are the fix
			}
			if fn.Pkg().Path() != "crypto/rand" && allowed[fn.Name()] {
				return true
			}
			pass.Reportf(id.Pos(), "use of %s via %s.%s: draw from an injected, seeded *rand.Rand so runs replay from their seed", what, fn.Pkg().Name(), fn.Name())
			return true
		})
	}
	return nil
}
