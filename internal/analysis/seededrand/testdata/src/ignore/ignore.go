// Package ignore proves suppression and malformed-directive reporting for
// seededrand.
package ignore

import "math/rand"

var _ = rand.Int63 //lint:ignore lglint/seededrand testdata: same-line suppression must silence the finding

//lint:ignore lglint/seededrand testdata: next-line suppression must silence the finding
var _ = rand.Intn

/* want `missing a reason` */ //lint:ignore lglint/seededrand
var _ = rand.Float64 // want `use of global math/rand source via rand\.Float64`
