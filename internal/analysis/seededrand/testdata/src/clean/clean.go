// Package clean shows the sanctioned pattern: construct a generator from an
// explicit seed and thread it through; methods on it are always fine.
package clean

import (
	"math/rand"
	randv2 "math/rand/v2"
)

type workload struct {
	rng *rand.Rand
}

func newWorkload(seed int64) *workload {
	return &workload{rng: rand.New(rand.NewSource(seed))}
}

func (w *workload) draw() (int, float64) {
	return w.rng.Intn(100), w.rng.Float64()
}

func zipf(seed int64) *rand.Zipf {
	r := rand.New(rand.NewSource(seed))
	return rand.NewZipf(r, 1.2, 1, 1<<20)
}

func v2(seed uint64) int {
	r := randv2.New(randv2.NewPCG(seed, seed))
	return r.IntN(100)
}
