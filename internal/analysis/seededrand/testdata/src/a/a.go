// Package a exercises the global-randomness detectors.
package a

import (
	crand "crypto/rand"
	"math/rand"
	randv2 "math/rand/v2"
)

func flagged() {
	_ = rand.Intn(10)        // want `use of global math/rand source via rand\.Intn`
	_ = rand.Int63()         // want `use of global math/rand source via rand\.Int63`
	_ = rand.Float64()       // want `use of global math/rand source via rand\.Float64`
	rand.Seed(42)            // want `use of global math/rand source via rand\.Seed`
	rand.Shuffle(3, func(i, j int) {}) // want `use of global math/rand source via rand\.Shuffle`
	_ = randv2.IntN(10)      // want `use of global math/rand/v2 source via rand\.IntN`
	_ = randv2.Uint64()      // want `use of global math/rand/v2 source via rand\.Uint64`
	_, _ = crand.Read(nil)   // want `use of crypto/rand \(nondeterministic by design\) via rand\.Read`
	var pick = rand.Perm     // want `use of global math/rand source via rand\.Perm`
	_ = pick
}
