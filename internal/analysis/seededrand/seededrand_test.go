package seededrand

import (
	"testing"

	"lifeguard/internal/analysis/analysistest"
)

func TestSeededrand(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "a", "clean", "ignore")
}
