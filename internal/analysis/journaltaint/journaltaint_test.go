package journaltaint

import (
	"testing"

	"lifeguard/internal/analysis/analysistest"
)

func TestJournaltaint(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "a", "api", "b", "clean", "ignore")
}
