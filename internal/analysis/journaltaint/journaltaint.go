// Package journaltaint keeps wall-clock and RNG-derived values out of the
// deterministic record: the obs journal and the report encoders exist so
// that two runs of the same seed produce byte-identical artifacts, and a
// single time.Now().UnixNano() or rand.Int() smuggled into a journal
// field breaks that property in a way no unit test notices until a diff
// of two CI runs disagrees. Values must come from the simulated clock and
// the seeded experiment RNG instead.
//
// The analyzer runs a small taint analysis on top of the reaching-
// definitions engine. Sources are time.Now/Since/Until, the package-level
// generators of math/rand (v1 and v2, constructors excepted — a *Rand
// seeded explicitly is the sanctioned path), all of crypto/rand, and any
// function already known to return wall-derived data. That last class is
// the cross-package half: a package whose function returns a tainted
// value gets a WallDerived fact exported for it — iterated to a fixpoint
// within the package, carried along the import DAG between packages — so
// a helper that launders time.Now through two calls and a struct-free
// data path is still caught at the sink. Sinks are Journal.Record and the
// Snapshot.Write* encoders.
package journaltaint

import (
	"go/ast"
	"go/types"
	"strings"

	"lifeguard/internal/analysis"
	"lifeguard/internal/analysis/dataflow"
)

// WallDerived marks a function whose return value derives from the wall
// clock or an unseeded RNG.
type WallDerived struct{}

// AFact marks WallDerived as a fact type.
func (*WallDerived) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name: "journaltaint",
	Doc: "flag wall-clock/RNG-derived values flowing into the journal or report encoders (cross-package via facts)\n" +
		"\nJournal.Record and Snapshot.Write* feed byte-identical deterministic artifacts;" +
		" a time.Now or rand-derived value in a field breaks replay comparison. Use the" +
		" simulated clock and the seeded experiment RNG.",
	FactTypes: []analysis.Fact{(*WallDerived)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) error {
	t := &tainter{pass: pass, local: map[*types.Func]bool{}}
	t.exportFacts()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				t.checkSinks(fn)
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						t.checkSinks(lit)
					}
					return true
				})
			}
		}
	}
	return nil
}

type tainter struct {
	pass *analysis.Pass
	// local accumulates this package's wall-derived functions during the
	// fixpoint, including unexported ones facts cannot name.
	local map[*types.Func]bool
}

// exportFacts iterates the package's function declarations to a fixpoint:
// a function returning a tainted value taints its local callers, which
// may taint theirs.
func (t *tainter) exportFacts() {
	for changed := true; changed; {
		changed = false
		for _, f := range t.pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := t.pass.TypesInfo.Defs[fn.Name].(*types.Func)
				if !ok || t.local[obj] {
					continue
				}
				if t.returnsTainted(fn) {
					t.local[obj] = true
					t.pass.ExportObjectFact(obj, &WallDerived{})
					changed = true
				}
			}
		}
	}
}

// returnsTainted reports whether any return path of fn yields a tainted
// value.
func (t *tainter) returnsTainted(fn *ast.FuncDecl) bool {
	sig, ok := t.pass.TypesInfo.Defs[fn.Name].Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	flow := dataflow.NewFunc(fn, t.pass.TypesInfo)
	tainted := t.solve(flow)
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, e := range ret.Results {
			if t.exprTainted(flow, tainted, e) {
				found = true
			}
		}
		return true
	})
	if found {
		return true
	}
	// Bare returns with named results: conservatively tainted if any
	// tainted definition targets a result variable.
	for i := 0; i < sig.Results().Len(); i++ {
		res := sig.Results().At(i)
		if res.Name() == "" {
			continue
		}
		for d := range tainted {
			if d.Obj == res {
				return true
			}
		}
	}
	return false
}

// checkSinks flags tainted arguments at sink calls within one function
// body (literals get their own call).
func (t *tainter) checkSinks(fn ast.Node) {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	if body == nil {
		return
	}
	var flow *dataflow.Flow
	var tainted map[*dataflow.Def]bool
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != fn {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sink := sinkName(t.pass, call)
		if sink == "" {
			return true
		}
		if flow == nil {
			flow = dataflow.NewFunc(fn, t.pass.TypesInfo)
			tainted = t.solve(flow)
		}
		for _, arg := range call.Args {
			if t.exprTainted(flow, tainted, arg) {
				t.pass.Reportf(arg.Pos(), "wall-clock/RNG-derived value reaches %s: deterministic artifacts must derive from the sim clock and seeded RNG", sink)
			}
		}
		return true
	})
}

// solve computes the tainted definitions of one function to a fixpoint.
func (t *tainter) solve(flow *dataflow.Flow) map[*dataflow.Def]bool {
	tainted := map[*dataflow.Def]bool{}
	for changed := true; changed; {
		changed = false
		for _, d := range flow.Defs() {
			if tainted[d] || d.Src == nil {
				continue
			}
			if t.exprTainted(flow, tainted, d.Src) {
				tainted[d] = true
				changed = true
			}
		}
	}
	return tainted
}

// exprTainted reports whether e contains a source call or a use of a
// variable with a tainted reaching definition. Function literal bodies
// are skipped: capturing a tainted value is not yet recording it.
func (t *tainter) exprTainted(flow *dataflow.Flow, tainted map[*dataflow.Def]bool, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if t.isSourceCall(n) {
				found = true
				return false
			}
		case *ast.Ident:
			for _, d := range flow.DefsReaching(n) {
				if tainted[d] {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// isSourceCall reports whether call introduces wall-clock or RNG taint.
func (t *tainter) isSourceCall(call *ast.CallExpr) bool {
	obj := calleeObj(t.pass, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if t.local[fn] {
		return true
	}
	if t.pass.ImportObjectFact(fn, &WallDerived{}) {
		return true
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return true
		}
	case "math/rand", "math/rand/v2":
		// Package-level generators draw from the global, wall-seeded
		// source; the New* constructors take an explicit seed and are the
		// sanctioned path.
		if fn.Type().(*types.Signature).Recv() == nil && !strings.HasPrefix(fn.Name(), "New") {
			return true
		}
	case "crypto/rand":
		return true
	}
	return false
}

// sinkName identifies deterministic-record sinks: Journal.Record and the
// Snapshot.Write* encoders. Returns "" for non-sinks.
func sinkName(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	m, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	recv := recvTypeName(sig.Recv().Type())
	switch {
	case recv == "Journal" && m.Name() == "Record":
		return "Journal.Record"
	case recv == "Snapshot" && strings.HasPrefix(m.Name(), "Write"):
		return "Snapshot." + m.Name()
	}
	return ""
}

func recvTypeName(t types.Type) string {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func calleeObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}
