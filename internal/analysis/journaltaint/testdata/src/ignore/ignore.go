// Package ignore shows the suppression escape hatch.
package ignore

import "time"

type Journal struct{}

func (j *Journal) Record(vtime int64, subsystem, kind string) {}

func suppressed(j *Journal) {
	//lint:ignore lglint/journaltaint wall-clock debugging journal, never diffed across runs
	j.Record(time.Now().UnixNano(), "debug", "mark")
}

func notSuppressed(j *Journal) {
	j.Record(time.Now().UnixNano(), "debug", "mark") // want `wall-clock/RNG-derived value reaches Journal\.Record`
}
