// Package api is the fact-exporting dependency: functions returning
// wall-derived values carry WallDerived facts, including one laundered
// through a second hop.
package api

import "time"

type F struct {
	K string
	V any
}

type Journal struct{}

func (j *Journal) Record(vtime int64, subsystem, kind string, fields ...F) {}

type Snapshot struct{}

func (s Snapshot) WriteJSON(path string) error { return nil }

// Stamp is wall-derived: a WallDerived fact marks it for importers.
func Stamp() int64 { return time.Now().UnixNano() }

// Launder is wall-derived only transitively, through Stamp.
func Launder() int64 {
	v := Stamp()
	return v/1000 + 1
}

// SimNow derives from the caller-supplied step: clean.
func SimNow(step int64) int64 { return step * 10 }
