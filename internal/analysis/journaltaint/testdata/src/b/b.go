// Package b records through api across the package boundary: the
// WallDerived facts exported while analyzing api drive the diagnostics.
package b

import "api"

func direct(j *api.Journal) {
	j.Record(api.Stamp(), "probe", "sent") // want `wall-clock/RNG-derived value reaches Journal\.Record`
}

func laundered(j *api.Journal) {
	v := api.Launder()
	j.Record(v, "probe", "sent") // want `wall-clock/RNG-derived value reaches Journal\.Record`
}

func simClock(j *api.Journal, step int64) {
	j.Record(api.SimNow(step), "probe", "sent")
}
