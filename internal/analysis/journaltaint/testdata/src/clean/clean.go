// Package clean holds the accepted forms: sim-clock values, explicitly
// seeded RNGs, and wall-clock reads that never reach a sink.
package clean

import (
	"math/rand"
	"time"
)

type F struct {
	K string
	V any
}

type Journal struct{}

func (j *Journal) Record(vtime int64, subsystem, kind string, fields ...F) {}

type Snapshot struct{}

func (s Snapshot) WriteJSON(path string) error { return nil }

func simClock(j *Journal, vtime int64) {
	j.Record(vtime, "probe", "sent")
}

func seededRand(j *Journal, seed int64) {
	r := rand.New(rand.NewSource(seed))
	j.Record(0, "probe", "sent", F{K: "jitter", V: r.Int()})
}

func wallClockNotRecorded(j *Journal, vtime int64) time.Duration {
	start := time.Now()
	j.Record(vtime, "probe", "sent")
	return time.Since(start)
}

func rebound(j *Journal, vtime int64) {
	v := time.Now().UnixNano()
	_ = v
	v = vtime
	j.Record(v, "probe", "sent")
}

func fixedPath(s Snapshot) error {
	return s.WriteJSON("out.json")
}
