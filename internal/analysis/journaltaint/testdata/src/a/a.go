// Package a exercises wall-clock and RNG taint reaching sinks within one
// package.
package a

import (
	"math/rand"
	"time"
)

type F struct {
	K string
	V any
}

type Journal struct{}

func (j *Journal) Record(vtime int64, subsystem, kind string, fields ...F) {}

type Snapshot struct{}

func (s Snapshot) WriteJSON(path string) error { return nil }

func direct(j *Journal) {
	j.Record(time.Now().UnixNano(), "probe", "sent") // want `wall-clock/RNG-derived value reaches Journal\.Record`
}

func viaVariable(j *Journal) {
	t := time.Now()
	j.Record(t.UnixNano(), "probe", "sent") // want `wall-clock/RNG-derived value reaches Journal\.Record`
}

func viaBranch(j *Journal, c bool) {
	v := int64(0)
	if c {
		v = time.Now().UnixNano()
	}
	j.Record(v, "probe", "sent") // want `wall-clock/RNG-derived value reaches Journal\.Record`
}

func globalRand(j *Journal) {
	j.Record(0, "probe", "sent", F{K: "jitter", V: rand.Int()}) // want `wall-clock/RNG-derived value reaches Journal\.Record`
}

func taintedPath(s Snapshot) error {
	suffix := rand.Intn(100)
	path := "out-" + string(rune('0'+suffix%10)) + ".json"
	return s.WriteJSON(path) // want `wall-clock/RNG-derived value reaches Snapshot\.WriteJSON`
}

// stamp is unexported: the intra-package fixpoint, not a fact, must carry
// the taint to its caller.
func stamp() int64 { return time.Now().UnixNano() }

func viaHelper(j *Journal) {
	j.Record(stamp(), "probe", "sent") // want `wall-clock/RNG-derived value reaches Journal\.Record`
}
