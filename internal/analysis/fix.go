package analysis

import (
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"
)

// This file applies SuggestedFixes to source files: `lglint -fix` and the
// analysistest round-trip helper both go through ApplyFixes. Edits are
// validated against each other (overlapping edits from different
// diagnostics are conflicts — the first fix in position order wins and the
// loser is reported, never half-applied) and applied right-to-left so
// offsets stay valid.

// A Conflict records a suggested fix that was skipped because one of its
// edits overlaps an edit from an already-accepted fix.
type Conflict struct {
	Pos      token.Position // diagnostic position of the skipped fix
	Analyzer string
	Message  string // the skipped fix's message
}

// fileEdit is one accepted edit localized to a file, in byte offsets.
type fileEdit struct {
	start, end int
	newText    []byte
}

// ApplyFixes takes the first suggested fix of every diagnostic that has
// one and returns the rewritten content of each affected file (keyed by
// filename), plus the fixes skipped due to overlap conflicts. Sources are
// read through src, a filename → content map; files absent from it are
// read from disk, so tests can run fully in memory.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic, src map[string][]byte) (map[string][]byte, []Conflict, error) {
	// Deterministic application order: diagnostic position, so the
	// earliest finding wins a conflict regardless of analyzer order.
	order := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if len(d.SuggestedFixes) > 0 {
			order = append(order, d)
		}
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].Pos < order[j].Pos })

	accepted := map[string][]fileEdit{} // filename → edits, kept sorted by start
	var conflicts []Conflict
	for _, d := range order {
		fix := d.SuggestedFixes[0]
		edits := map[string][]fileEdit{}
		ok := true
		for _, te := range fix.TextEdits {
			posn := fset.Position(te.Pos)
			end := fset.Position(te.End)
			if !posn.IsValid() || !end.IsValid() || posn.Filename != end.Filename || end.Offset < posn.Offset {
				return nil, nil, fmt.Errorf("fix %q: invalid text edit at %s", fix.Message, posn)
			}
			edits[posn.Filename] = append(edits[posn.Filename], fileEdit{start: posn.Offset, end: end.Offset, newText: te.NewText})
		}
		// Check every edit of the fix against the accepted set (and the
		// fix's own edits) before accepting any: a fix applies atomically.
		for file, es := range edits {
			all := append(append([]fileEdit{}, accepted[file]...), es...)
			sort.Slice(all, func(i, j int) bool { return all[i].start < all[j].start })
			for i := 1; i < len(all); i++ {
				if all[i].start < all[i-1].end {
					ok = false
				}
			}
		}
		if !ok {
			conflicts = append(conflicts, Conflict{Pos: fset.Position(d.Pos), Analyzer: d.Analyzer, Message: fix.Message})
			continue
		}
		for file, es := range edits {
			accepted[file] = append(accepted[file], es...)
			sort.Slice(accepted[file], func(i, j int) bool { return accepted[file][i].start < accepted[file][j].start })
		}
	}

	out := map[string][]byte{}
	for file, es := range accepted {
		content, ok := src[file]
		if !ok {
			data, err := os.ReadFile(file)
			if err != nil {
				return nil, nil, err
			}
			content = data
		}
		// Right to left so earlier offsets stay valid.
		for i := len(es) - 1; i >= 0; i-- {
			e := es[i]
			if e.end > len(content) {
				return nil, nil, fmt.Errorf("fix edit [%d,%d) beyond end of %s (%d bytes)", e.start, e.end, file, len(content))
			}
			content = append(content[:e.start:e.start], append([]byte(string(e.newText)), content[e.end:]...)...)
		}
		out[file] = content
	}
	return out, conflicts, nil
}

// UnifiedDiff renders a minimal unified diff between old and new contents
// of one file, for `-fix -dry-run` output. It is a plain line-based LCS —
// source files are small enough that quadratic is fine.
func UnifiedDiff(filename string, oldData, newData []byte) string {
	a := splitLines(string(oldData))
	b := splitLines(string(newData))
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			return ""
		}
	}

	// LCS table.
	n, m := len(a), len(b)
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n+++ %s (fixed)\n", filename, filename)
	i, j := 0, 0
	for i < n || j < m {
		switch {
		case i < n && j < m && a[i] == b[j]:
			i++
			j++
		case j < m && (i == n || lcs[i][j+1] >= lcs[i+1][j]):
			fmt.Fprintf(&sb, "@@ %d @@\n+%s\n", j+1, b[j])
			j++
		default:
			fmt.Fprintf(&sb, "@@ %d @@\n-%s\n", i+1, a[i])
			i++
		}
	}
	return sb.String()
}

func splitLines(s string) []string {
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}
