package analysis

import (
	"go/token"
	"strings"
	"testing"
)

// fixFile registers src under name in a fresh fileset and returns both,
// with a helper mapping byte offsets to token.Pos.
func fixFile(fset *token.FileSet, name, src string) func(offset int) token.Pos {
	f := fset.AddFile(name, -1, len(src))
	f.SetLinesForContent([]byte(src))
	return f.Pos
}

func TestApplyFixesInsertAndReplace(t *testing.T) {
	fset := token.NewFileSet()
	src := "alpha beta gamma\n"
	pos := fixFile(fset, "a.go", src)

	diags := []Diagnostic{
		{
			Analyzer: "x",
			Pos:      pos(6),
			SuggestedFixes: []SuggestedFix{{
				Message: "replace beta",
				TextEdits: []TextEdit{
					{Pos: pos(6), End: pos(10), NewText: []byte("BETA")},
				},
			}},
		},
		{
			Analyzer: "x",
			Pos:      pos(0),
			SuggestedFixes: []SuggestedFix{{
				Message: "prefix",
				TextEdits: []TextEdit{
					{Pos: pos(0), End: pos(0), NewText: []byte("// hi\n")},
				},
			}},
		},
	}
	out, conflicts, err := ApplyFixes(fset, diags, map[string][]byte{"a.go": []byte(src)})
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(conflicts) != 0 {
		t.Fatalf("unexpected conflicts: %v", conflicts)
	}
	if got, want := string(out["a.go"]), "// hi\nalpha BETA gamma\n"; got != want {
		t.Errorf("fixed content = %q, want %q", got, want)
	}
}

func TestApplyFixesConflictFirstWins(t *testing.T) {
	fset := token.NewFileSet()
	src := "alpha beta gamma\n"
	pos := fixFile(fset, "a.go", src)

	diags := []Diagnostic{
		// Later position but listed first: position order decides the winner.
		{
			Analyzer: "second",
			Pos:      pos(8),
			SuggestedFixes: []SuggestedFix{{
				Message:   "rewrite beta wide",
				TextEdits: []TextEdit{{Pos: pos(6), End: pos(16), NewText: []byte("X")}},
			}},
		},
		{
			Analyzer: "first",
			Pos:      pos(6),
			SuggestedFixes: []SuggestedFix{{
				Message:   "rewrite beta",
				TextEdits: []TextEdit{{Pos: pos(6), End: pos(10), NewText: []byte("BETA")}},
			}},
		},
	}
	out, conflicts, err := ApplyFixes(fset, diags, map[string][]byte{"a.go": []byte(src)})
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(conflicts) != 1 || conflicts[0].Analyzer != "second" {
		t.Fatalf("conflicts = %+v, want the later-position fix skipped", conflicts)
	}
	if got, want := string(out["a.go"]), "alpha BETA gamma\n"; got != want {
		t.Errorf("fixed content = %q, want %q", got, want)
	}
}

func TestApplyFixesAtomicPerFix(t *testing.T) {
	fset := token.NewFileSet()
	src := "alpha beta gamma\n"
	pos := fixFile(fset, "a.go", src)

	diags := []Diagnostic{
		{
			Analyzer: "first",
			Pos:      pos(0),
			SuggestedFixes: []SuggestedFix{{
				Message:   "take alpha",
				TextEdits: []TextEdit{{Pos: pos(0), End: pos(5), NewText: []byte("A")}},
			}},
		},
		// Two edits; the first overlaps nothing, the second overlaps the
		// accepted fix — neither may apply.
		{
			Analyzer: "second",
			Pos:      pos(11),
			SuggestedFixes: []SuggestedFix{{
				Message: "gamma and alpha",
				TextEdits: []TextEdit{
					{Pos: pos(11), End: pos(16), NewText: []byte("G")},
					{Pos: pos(2), End: pos(4), NewText: []byte("!")},
				},
			}},
		},
	}
	out, conflicts, err := ApplyFixes(fset, diags, map[string][]byte{"a.go": []byte(src)})
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(conflicts) != 1 || conflicts[0].Analyzer != "second" {
		t.Fatalf("conflicts = %+v, want second skipped entirely", conflicts)
	}
	if got, want := string(out["a.go"]), "A beta gamma\n"; got != want {
		t.Errorf("fixed content = %q, want %q (no half-applied fix)", got, want)
	}
}

func TestApplyFixesNoFixesNoOutput(t *testing.T) {
	fset := token.NewFileSet()
	pos := fixFile(fset, "a.go", "x\n")
	out, conflicts, err := ApplyFixes(fset, []Diagnostic{{Analyzer: "x", Pos: pos(0), Message: "no fix here"}}, nil)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(out) != 0 || len(conflicts) != 0 {
		t.Errorf("out=%v conflicts=%v, want empty", out, conflicts)
	}
}

func TestUnifiedDiff(t *testing.T) {
	if d := UnifiedDiff("a.go", []byte("one\ntwo\n"), []byte("one\ntwo\n")); d != "" {
		t.Errorf("identical content produced a diff: %q", d)
	}
	d := UnifiedDiff("a.go", []byte("one\ntwo\nthree\n"), []byte("one\ntwo fixed\nthree\n"))
	if !strings.Contains(d, "-two") || !strings.Contains(d, "+two fixed") {
		t.Errorf("diff missing changed lines:\n%s", d)
	}
	if !strings.Contains(d, "--- a.go") {
		t.Errorf("diff missing header:\n%s", d)
	}
}
