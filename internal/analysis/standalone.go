package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// This file is the standalone driver: `lglint [flags] ./...` without going
// through `go vet`. It shells out to `go list -deps -export` for the
// package graph and compiler export data, analyzes the module's packages
// in dependency order with a shared fact set (so cross-package facts flow
// exactly as they do under the vet protocol), and owns the output modes
// the vet protocol has no room for: -json, -sarif, -github, and -fix with
// conflict detection and a -dry-run diff preview.
//
// Exit codes are part of the interface (CI scripts branch on them):
//
//	0  no findings
//	1  findings reported (also with -fix: fixes were needed)
//	2  usage or load error (bad flags, package does not build)

// StandaloneOptions selects the standalone driver's output mode.
type StandaloneOptions struct {
	JSON   bool // one machine-readable JSON array on stdout
	SARIF  bool // SARIF 2.1.0 log on stdout (for upload-sarif)
	GitHub bool // ::error workflow commands on stdout
	Fix    bool // apply suggested fixes to the source files
	DryRun bool // with Fix: print unified diffs instead of writing
}

// listedPackage is the subset of `go list -json` output the driver needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	Export     string
	Imports    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// RunStandalone loads the packages matched by patterns plus their
// dependencies, analyzes them in dependency order, and renders findings
// per opts. Returns the process exit code.
func RunStandalone(progname string, analyzers []*Analyzer, patterns []string, opts StandaloneOptions) int {
	usageErr := func(err error) int {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 2
	}
	if n := btoi(opts.JSON) + btoi(opts.SARIF) + btoi(opts.GitHub); n > 1 {
		return usageErr(fmt.Errorf("-json, -sarif, and -github are mutually exclusive"))
	}
	if opts.DryRun && !opts.Fix {
		return usageErr(fmt.Errorf("-dry-run requires -fix"))
	}

	pkgs, err := goList(patterns)
	if err != nil {
		return usageErr(err)
	}

	fset := token.NewFileSet()
	facts := NewFactSet()
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}

	var diags []Diagnostic
	for _, p := range topoOrder(pkgs) {
		if p.Standard {
			continue // stdlib: typed through export data, never analyzed
		}
		var files []*ast.File
		parseFailed := false
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				if p.DepOnly {
					parseFailed = true
					break
				}
				return usageErr(err)
			}
			files = append(files, f)
		}
		if parseFailed || len(files) == 0 {
			continue
		}
		pkg, info, err := Typecheck(fset, files, p.ImportPath, runtime.Version(), nil, lookup)
		if err != nil {
			if p.DepOnly {
				continue // a dep we cannot type: no facts, not fatal
			}
			return usageErr(fmt.Errorf("typechecking %s: %w", p.ImportPath, err))
		}
		run := analyzers
		if p.DepOnly {
			// Dependency pass: facts only, diagnostics belong to the
			// matched packages.
			run = nil
			for _, a := range analyzers {
				if len(a.FactTypes) > 0 {
					run = append(run, a)
				}
			}
			if len(run) == 0 {
				continue
			}
		}
		ds, err := Run(run, fset, files, pkg, info, facts)
		if err != nil {
			return usageErr(err)
		}
		if !p.DepOnly {
			diags = append(diags, ds...)
		}
	}

	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})

	root := moduleRoot()
	if opts.Fix {
		return renderFix(progname, fset, diags, opts.DryRun)
	}
	switch {
	case opts.JSON:
		if err := writeJSON(os.Stdout, fset, diags); err != nil {
			return usageErr(err)
		}
	case opts.SARIF:
		data, err := SARIF(fset, diags, analyzers, root)
		if err != nil {
			return usageErr(err)
		}
		os.Stdout.Write(append(data, '\n'))
	case opts.GitHub:
		os.Stdout.WriteString(GitHubAnnotations(fset, diags, root))
	default:
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, tag(d))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// renderFix applies (or, with dryRun, previews) the suggested fixes and
// reports everything a fix cannot cover.
func renderFix(progname string, fset *token.FileSet, diags []Diagnostic, dryRun bool) int {
	fixed, conflicts, err := ApplyFixes(fset, diags, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 2
	}
	files := make([]string, 0, len(fixed))
	for f := range fixed {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		if dryRun {
			old, err := os.ReadFile(f)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
				return 2
			}
			os.Stdout.WriteString(UnifiedDiff(f, old, fixed[f]))
		} else {
			if err := os.WriteFile(f, fixed[f], 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
				return 2
			}
			fmt.Fprintf(os.Stderr, "%s: fixed %s\n", progname, f)
		}
	}
	for _, c := range conflicts {
		fmt.Fprintf(os.Stderr, "%s: conflicting fix skipped at %s: %s\n", progname, c.Pos, c.Message)
	}
	// Findings without a fix still need human attention.
	for _, d := range diags {
		if len(d.SuggestedFixes) == 0 {
			fmt.Fprintf(os.Stderr, "%s: %s (%s) [no automatic fix]\n", fset.Position(d.Pos), d.Message, tag(d))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// writeJSON renders findings as a JSON array: analyzer, position, message,
// and whether a suggested fix exists.
func writeJSON(w io.Writer, fset *token.FileSet, diags []Diagnostic) error {
	type jsonDiag struct {
		Analyzer string `json:"analyzer"`
		Pos      string `json:"pos"`
		Message  string `json:"message"`
		HasFix   bool   `json:"has_fix"`
	}
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			Analyzer: tag(d),
			Pos:      fset.Position(d.Pos).String(),
			Message:  d.Message,
			HasFix:   len(d.SuggestedFixes) > 0,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// goList runs `go list -deps -export` over the patterns and decodes the
// package stream.
func goList(patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Standard,Export,Imports,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go list %s: %s", strings.Join(patterns, " "), msg)
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("loading %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// topoOrder sorts packages dependencies-first so facts exist before their
// importers run. `go list -deps` already emits that order; the explicit
// sort makes the driver independent of it.
func topoOrder(pkgs []*listedPackage) []*listedPackage {
	byPath := map[string]*listedPackage{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	var out []*listedPackage
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *listedPackage)
	visit = func(p *listedPackage) {
		if state[p.ImportPath] != 0 {
			return
		}
		state[p.ImportPath] = 1
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		state[p.ImportPath] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

// moduleRoot finds the enclosing go.mod directory for relativizing output
// paths; empty (absolute paths) when not in a module.
func moduleRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return ""
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}
