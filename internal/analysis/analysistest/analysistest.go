// Package analysistest runs a lglint analyzer over packages stored under a
// testdata directory and checks its diagnostics against expectations written
// in the source, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	x := time.Now() // want `forbidden call to time\.Now`
//
// An expectation comment starts with the word "want" followed by one or more
// quoted regular expressions (double- or back-quoted); each must match
// exactly one diagnostic reported on that line, and every diagnostic must be
// matched. /* want `...` */ block comments work too, which is how a line
// that already carries a //-directive states its expectation.
//
// Testdata packages live at <dir>/testdata/src/<name>/*.go and may import
// only the standard library: dependency type information comes from
// `go list -export`, i.e. from the toolchain's own export data, so tests run
// offline and agree exactly with what the vet driver sees.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"lifeguard/internal/analysis"
)

// Run applies the analyzer to each named package under dir/testdata/src and
// reports expectation mismatches via t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runPkg(t, filepath.Join(dir, "testdata", "src", pkg), a)
	}
}

func runPkg(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no Go files in %s: %v", dir, err)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[p] = true
			}
		}
	}

	lookup, err := exportLookup(imports)
	if err != nil {
		t.Fatalf("resolving export data: %v", err)
	}
	pkg, info, err := analysis.Typecheck(fset, files, filepath.Base(dir), "", nil, lookup)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}

	diags, err := analysis.Run([]*analysis.Analyzer{a}, fset, files, pkg, info)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	checkExpectations(t, fset, files, diags)
}

// exportLookup shells out to `go list -export` once to map every stdlib
// import (and its transitive dependencies) to the toolchain's export-data
// file in the build cache.
func exportLookup(imports map[string]bool) (func(string) (io.ReadCloser, error), error) {
	var paths []string
	for p := range imports {
		if p != "unsafe" {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	exports := map[string]string{}
	if len(paths) > 0 {
		cmd := exec.Command("go", append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, paths...)...)
		var out, errb bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &errb
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("go list -export: %v\n%s", err, errb.String())
		}
		dec := json.NewDecoder(&out)
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (testdata packages may import only the standard library)", path)
		}
		return os.Open(file)
	}, nil
}

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*expectation{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				switch {
				case strings.HasPrefix(text, "//"):
					text = text[len("//"):]
				case strings.HasPrefix(text, "/*"):
					text = strings.TrimSuffix(text[len("/*"):], "*/")
				}
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				posn := fset.Position(c.Pos())
				k := key{posn.Filename, posn.Line}
				rest := strings.TrimSpace(text[len("want"):])
				for rest != "" {
					rx, tail, err := cutQuoted(rest)
					if err != nil {
						t.Errorf("%s: bad want comment: %v", posn, err)
						break
					}
					re, err := regexp.Compile(rx)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", posn, rx, err)
						break
					}
					wants[k] = append(wants[k], &expectation{rx: re})
					rest = strings.TrimSpace(tail)
				}
			}
		}
	}

	for _, d := range diags {
		posn := fset.Position(d.Pos)
		k := key{posn.Filename, posn.Line}
		found := false
		for _, w := range wants[k] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", posn, d.Message, d.Analyzer)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w.rx)
			}
		}
	}
}

// cutQuoted splits a leading double- or back-quoted string off s.
func cutQuoted(s string) (unquoted, rest string, err error) {
	if s == "" {
		return "", "", fmt.Errorf("empty expectation")
	}
	q := s[0]
	if q != '"' && q != '`' {
		return "", "", fmt.Errorf("expectation must be a quoted regexp, got %q", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] == q && (q == '`' || s[i-1] != '\\') {
			unq, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", err
			}
			return unq, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated quoted regexp in %q", s)
}
