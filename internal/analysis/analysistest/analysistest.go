// Package analysistest runs a lglint analyzer over packages stored under a
// testdata directory and checks its diagnostics against expectations written
// in the source, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	x := time.Now() // want `forbidden call to time\.Now`
//
// An expectation comment starts with the word "want" followed by one or more
// quoted regular expressions (double- or back-quoted); each must match
// exactly one diagnostic reported on that line, and every diagnostic must be
// matched. A quoted regexp may carry a column prefix — `want 12:"re"` — in
// which case the diagnostic must also start at that column. /* want `...` */
// block comments work too, which is how a line that already carries a
// //-directive states its expectation.
//
// Testdata packages live at <dir>/testdata/src/<name>/*.go and may import
// the standard library plus sibling testdata packages: an import path that
// names a directory under the same testdata/src root is loaded from source,
// analyzed first so its facts are available, and only then is the importing
// package checked — the harness-level mirror of the vet driver's
// package-DAG fact flow. Standard-library type information comes from
// `go list -export`, i.e. the toolchain's own export data, so tests run
// offline and agree exactly with what the vet driver sees.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"lifeguard/internal/analysis"
)

// Run applies the analyzer to each named package under dir/testdata/src and
// reports expectation mismatches via t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root := filepath.Join(dir, "testdata", "src")
	for _, pkg := range pkgs {
		l := &loader{root: root, analyzer: a, facts: analysis.NewFactSet(), loaded: map[string]*loadedPkg{}}
		p, err := l.load(pkg)
		if err != nil {
			t.Fatalf("loading %s: %v", pkg, err)
		}
		diags, err := analysis.Run([]*analysis.Analyzer{a}, l.fset(), p.files, p.pkg, p.info, l.facts)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg, err)
		}
		checkExpectations(t, l.fset(), p.files, diags)
	}
}

// RunFix pins the -fix round trip for one testdata package: it runs the
// analyzer, applies every suggested fix in memory, re-runs the analyzer on
// the fixed sources, and fails if any diagnostic that offered a fix is
// still reported (or the fixed source no longer parses/typechecks).
func RunFix(t *testing.T, dir string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	root := filepath.Join(dir, "testdata", "src")
	l := &loader{root: root, analyzer: a, facts: analysis.NewFactSet(), loaded: map[string]*loadedPkg{}}
	p, err := l.load(pkg)
	if err != nil {
		t.Fatalf("loading %s: %v", pkg, err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{a}, l.fset(), p.files, p.pkg, p.info, l.facts)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkg, err)
	}
	hadFix := 0
	for _, d := range diags {
		if len(d.SuggestedFixes) > 0 {
			hadFix++
		}
	}
	if hadFix == 0 {
		t.Fatalf("RunFix(%s, %s): no diagnostic offered a fix; nothing to round-trip", a.Name, pkg)
	}

	fixed, conflicts, err := analysis.ApplyFixes(l.fset(), diags, nil)
	if err != nil {
		t.Fatalf("applying fixes: %v", err)
	}
	for _, c := range conflicts {
		t.Errorf("%s: fix conflict: %s", c.Pos, c.Message)
	}

	// Re-run on the fixed sources (unfixed files pass through unchanged).
	l2 := &loader{root: root, analyzer: a, facts: analysis.NewFactSet(), loaded: map[string]*loadedPkg{}, overlay: fixed}
	p2, err := l2.load(pkg)
	if err != nil {
		t.Fatalf("reloading %s after fixes: %v", pkg, err)
	}
	diags2, err := analysis.Run([]*analysis.Analyzer{a}, l2.fset(), p2.files, p2.pkg, p2.info, l2.facts)
	if err != nil {
		t.Fatalf("re-running %s after fixes on %s: %v", a.Name, pkg, err)
	}
	for _, d := range diags2 {
		if len(d.SuggestedFixes) > 0 {
			t.Errorf("%s: diagnostic survives its own fix: %s", l2.fset().Position(d.Pos), d.Message)
		}
	}
}

// loadedPkg is one typechecked testdata package.
type loadedPkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// loader resolves testdata packages from source (running the analyzer on
// each dependency so facts accumulate) and everything else from toolchain
// export data.
type loader struct {
	root     string
	analyzer *analysis.Analyzer
	facts    *analysis.FactSet
	loaded   map[string]*loadedPkg
	overlay  map[string][]byte // filename → replacement content (RunFix)

	fsetOnce *token.FileSet
	exports  map[string]string // import path → export-data file
	gc       types.Importer
	loading  []string // cycle detection, in order
}

func (l *loader) fset() *token.FileSet {
	if l.fsetOnce == nil {
		l.fsetOnce = token.NewFileSet()
	}
	return l.fsetOnce
}

// load parses, typechecks, and (for dependencies) fact-analyzes the
// testdata package at root/<path>.
func (l *loader) load(path string) (*loadedPkg, error) {
	if p, ok := l.loaded[path]; ok {
		return p, nil
	}
	for _, in := range l.loading {
		if in == path {
			return nil, fmt.Errorf("import cycle through testdata package %q", path)
		}
	}
	l.loading = append(l.loading, path)
	defer func() { l.loading = l.loading[:len(l.loading)-1] }()

	dir := filepath.Join(l.root, path)
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s: %v", dir, err)
	}
	sort.Strings(names)

	var files []*ast.File
	imports := map[string]bool{}
	for _, name := range names {
		var src any
		if l.overlay != nil {
			if data, ok := l.overlay[name]; ok {
				src = data
			}
		}
		f, err := parser.ParseFile(l.fset(), name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[p] = true
			}
		}
	}

	// Split imports: testdata-local siblings load from source, the rest
	// resolve through export data.
	var stdlib []string
	for p := range imports {
		if !l.isLocal(p) {
			stdlib = append(stdlib, p)
		}
	}
	sort.Strings(stdlib) // map iteration order must not leak into `go list` argv
	if err := l.ensureExports(stdlib); err != nil {
		return nil, err
	}

	if l.gc == nil {
		l.gc = importer.ForCompiler(l.fset(), "gc", func(path string) (io.ReadCloser, error) {
			file, ok := l.exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q (testdata packages may import only the standard library and sibling testdata packages)", path)
			}
			return os.Open(file)
		})
	}
	imp := importerFunc(func(p string) (*types.Package, error) {
		if l.isLocal(p) {
			dep, err := l.load(p)
			if err != nil {
				return nil, err
			}
			return dep.pkg, nil
		}
		return l.gc.Import(p)
	})

	pkg, info, err := analysis.TypecheckImporter(l.fset(), files, path, "", imp)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	p := &loadedPkg{files: files, pkg: pkg, info: info}
	l.loaded[path] = p

	// Dependency packages get a fact-gathering pass; their diagnostics are
	// judged only when the package is itself named in Run.
	if len(l.loading) > 1 {
		if _, err := analysis.Run([]*analysis.Analyzer{l.analyzer}, l.fset(), files, pkg, info, l.facts); err != nil {
			return nil, fmt.Errorf("fact pass over %s: %v", path, err)
		}
	}
	return p, nil
}

// isLocal reports whether import path p names a sibling testdata package.
func (l *loader) isLocal(p string) bool {
	if p == "unsafe" || strings.Contains(p, "..") {
		return false
	}
	st, err := os.Stat(filepath.Join(l.root, p))
	return err == nil && st.IsDir()
}

// ensureExports shells out to `go list -export` for any of the given
// import paths not already resolved, merging the resulting export-data
// file map. Each testdata package contributes its own stdlib imports, so
// the map grows as the dependency DAG is walked.
func (l *loader) ensureExports(paths []string) error {
	if l.exports == nil {
		l.exports = map[string]string{}
	}
	var missing []string
	for _, p := range paths {
		if _, ok := l.exports[p]; !ok && p != "unsafe" {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	cmd := exec.Command("go", append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, missing...)...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go list -export: %v\n%s", err, errb.String())
	}
	dec := json.NewDecoder(&out)
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

type expectation struct {
	pos     token.Position // where the want comment is
	col     int            // 0 = any column
	rx      *regexp.Regexp
	matched bool
}

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*expectation{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				switch {
				case strings.HasPrefix(text, "//"):
					text = text[len("//"):]
				case strings.HasPrefix(text, "/*"):
					text = strings.TrimSuffix(text[len("/*"):], "*/")
				}
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				posn := fset.Position(c.Pos())
				k := key{posn.Filename, posn.Line}
				rest := strings.TrimSpace(text[len("want"):])
				for rest != "" {
					col, rx, tail, err := cutExpectation(rest)
					if err != nil {
						t.Errorf("%s: bad want comment: %v", posn, err)
						break
					}
					re, err := regexp.Compile(rx)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", posn, rx, err)
						break
					}
					wants[k] = append(wants[k], &expectation{pos: posn, col: col, rx: re})
					rest = strings.TrimSpace(tail)
				}
			}
		}
	}

	for _, d := range diags {
		posn := fset.Position(d.Pos)
		k := key{posn.Filename, posn.Line}
		found := false
		for _, w := range wants[k] {
			if !w.matched && w.rx.MatchString(d.Message) && (w.col == 0 || w.col == posn.Column) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", posn, d.Message, d.Analyzer)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				if w.col != 0 {
					t.Errorf("%s: expected diagnostic at column %d matching %q, got none", w.pos, w.col, w.rx)
				} else {
					t.Errorf("%s: expected diagnostic matching %q, got none", w.pos, w.rx)
				}
			}
		}
	}
}

// cutExpectation splits one expectation off s: an optional `N:` column
// prefix followed by a double- or back-quoted regexp.
func cutExpectation(s string) (col int, unquoted, rest string, err error) {
	if i := strings.IndexByte(s, ':'); i > 0 {
		if n, convErr := strconv.Atoi(s[:i]); convErr == nil {
			if n <= 0 {
				return 0, "", "", fmt.Errorf("column prefix must be positive, got %d", n)
			}
			col = n
			s = s[i+1:]
		}
	}
	unquoted, rest, err = cutQuoted(s)
	return col, unquoted, rest, err
}

// cutQuoted splits a leading double- or back-quoted string off s.
func cutQuoted(s string) (unquoted, rest string, err error) {
	if s == "" {
		return "", "", fmt.Errorf("empty expectation")
	}
	q := s[0]
	if q != '"' && q != '`' {
		return "", "", fmt.Errorf("expectation must be a quoted regexp (optionally col-prefixed as N:\"re\"), got %q", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] == q && (q == '`' || s[i-1] != '\\') {
			unq, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", err
			}
			return unq, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated quoted regexp in %q", s)
}
