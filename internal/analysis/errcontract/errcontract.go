// Package errcontract enforces the repository's error-contract API
// convention across package boundaries: a function whose name ends in
// "Err" and whose final result is an error — bgp.AnnounceErr,
// bgp.WithdrawErr, and anything else following the PR 2 contract — exists
// precisely so callers handle the error instead of panicking through the
// convenience wrapper. Ignoring that result silently converts a
// recoverable validation failure (bad prefix, unknown ASN) into a no-op,
// which is the silent-nondeterminism class of bug: the simulation keeps
// running with a route that was never actually announced.
//
// The analyzer exports a MustCheck fact for every such function when it
// analyzes the defining package; when it analyzes a caller — any number of
// packages away in the DAG — the fact identifies the callee and the
// dataflow engine decides whether the error result is ever read on any
// path. Three shapes are flagged:
//
//   - the call as a bare statement (or under go/defer): the error is
//     discarded outright; the suggested fix wraps the call in
//     `if err := ...; err != nil { panic(err) }`;
//   - the error assigned to _: explicitly discarded — if that is truly
//     intended, say why with //lint:ignore lglint/errcontract <reason>;
//   - the error assigned to a variable whose definition reaches no use:
//     checked-looking but dead; the suggested fix inserts a check after
//     the assignment.
package errcontract

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lifeguard/internal/analysis"
	"lifeguard/internal/analysis/dataflow"
)

// MustCheck marks a function whose final error result is an API contract:
// callers must read it.
type MustCheck struct{}

// AFact marks MustCheck as a fact type.
func (*MustCheck) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name: "errcontract",
	Doc: "flag ignored errors from *Err error-contract functions (cross-package via facts)\n" +
		"\nFunctions named *Err returning an error (AnnounceErr, WithdrawErr, ...) are the" +
		" checked half of a panicking-wrapper pair; a caller that drops the error turns a" +
		" recoverable failure into a silent no-op. The error must be read on some path.",
	FactTypes: []analysis.Fact{(*MustCheck)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) error {
	exportFacts(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncNode(pass, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkFuncNode(pass, lit)
				}
				return true
			})
		}
	}
	return nil
}

// exportFacts tags this package's own contract functions so importing
// packages see them.
func exportFacts(pass *analysis.Pass) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if fn, ok := scope.Lookup(name).(*types.Func); ok && isContractFunc(fn) {
			pass.ExportObjectFact(fn, &MustCheck{})
		}
		if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
			if named, ok := tn.Type().(*types.Named); ok {
				for i := 0; i < named.NumMethods(); i++ {
					if m := named.Method(i); isContractFunc(m) {
						pass.ExportObjectFact(m, &MustCheck{})
					}
				}
			}
		}
	}
}

// isContractFunc reports whether fn follows the error-contract naming
// convention: name ends in "Err" (longer than the bare suffix) and the
// final result is an error.
func isContractFunc(fn *types.Func) bool {
	if !strings.HasSuffix(fn.Name(), "Err") || fn.Name() == "Err" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// mustCheck reports whether the called object is under the contract:
// either fact-tagged by this analyzer's pass over its defining package, or
// matching the convention directly (which also covers the defining package
// itself and fact-free drivers).
func mustCheck(pass *analysis.Pass, obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if pass.ImportObjectFact(fn, &MustCheck{}) {
		return true
	}
	return isContractFunc(fn)
}

// checkFuncNode analyzes the direct body of one function (declaration or
// literal); nested literals are handled by their own call.
func checkFuncNode(pass *analysis.Pass, fn ast.Node) {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	if body == nil {
		return
	}
	var flow *dataflow.Flow // built lazily: most functions have no contract calls

	// Walk with enough ancestry to classify each contract call's context.
	var visit func(n ast.Node, parents []ast.Node)
	visit = func(n ast.Node, parents []ast.Node) {
		if n == nil {
			return
		}
		if _, ok := n.(*ast.FuncLit); ok && len(parents) > 0 {
			return // separate checkFuncNode call handles it
		}
		call, isCall := n.(*ast.CallExpr)
		if isCall && mustCheck(pass, calleeObj(pass, call)) {
			if flow == nil {
				flow = dataflow.NewFunc(fn, pass.TypesInfo)
			}
			checkCall(pass, flow, call, parents)
		}
		parents = append(parents, n)
		for _, c := range children(n) {
			visit(c, parents)
		}
	}
	visit(fn, nil)
}

// checkCall classifies one contract call site by its syntactic context.
func checkCall(pass *analysis.Pass, flow *dataflow.Flow, call *ast.CallExpr, parents []ast.Node) {
	name := calleeName(call)
	// Nearest non-paren ancestor decides the context.
	var parent ast.Node
	for i := len(parents) - 1; i >= 0; i-- {
		if _, ok := parents[i].(*ast.ParenExpr); ok {
			continue
		}
		parent = parents[i]
		break
	}
	switch p := parent.(type) {
	case *ast.ExprStmt:
		d := analysis.Diagnostic{
			Pos:     call.Pos(),
			Message: fmt.Sprintf("result of %s is an error contract: the error is discarded; check it or suppress with a reason", name),
		}
		if fix, ok := wrapInCheckFix(pass, call, p); ok {
			d.SuggestedFixes = []analysis.SuggestedFix{fix}
		}
		pass.Report(d)
	case *ast.GoStmt, *ast.DeferStmt:
		pass.Reportf(call.Pos(), "result of %s is an error contract: go/defer discards the error", name)
	case *ast.AssignStmt:
		checkAssigned(pass, flow, call, p, name)
	}
	// Any other context (if-init handled via AssignStmt inside IfStmt,
	// return, argument position, comparison) consumes the value: the
	// responsibility moved somewhere this pass can still see or to a
	// caller that this analyzer will check in turn.
}

// checkAssigned handles `..., err := call(...)`: the error destination must
// be a read variable.
func checkAssigned(pass *analysis.Pass, flow *dataflow.Flow, call *ast.CallExpr, as *ast.AssignStmt, name string) {
	// Locate the LHS expression receiving the final (error) result.
	var errLHS ast.Expr
	if len(as.Rhs) == 1 && as.Rhs[0] == call {
		errLHS = as.Lhs[len(as.Lhs)-1]
	} else {
		for i, rhs := range as.Rhs {
			if rhs == call && i < len(as.Lhs) {
				errLHS = as.Lhs[i]
			}
		}
	}
	id, ok := errLHS.(*ast.Ident)
	if !ok {
		return // stored through a selector/index: assume read elsewhere
	}
	if id.Name == "_" {
		pass.Reportf(call.Pos(), "result of %s is an error contract: assigning the error to _ discards it; handle it or suppress with a reason", name)
		return
	}
	def := flow.DefOf(id)
	if def == nil {
		return // package-level or captured variable: out of scope
	}
	if len(flow.UsesReachedBy(def)) > 0 {
		return
	}
	d := analysis.Diagnostic{
		Pos:     call.Pos(),
		Message: fmt.Sprintf("result of %s is an error contract: %s is assigned but never read on any path", name, id.Name),
	}
	if fix, ok := insertCheckFix(pass, id.Name, as); ok {
		d.SuggestedFixes = []analysis.SuggestedFix{fix}
	}
	pass.Report(d)
}

// wrapInCheckFix turns a bare contract-call statement into
// `if err := call(...); err != nil { panic(err) }` using insert-only
// edits, so no original source text needs to be reproduced.
func wrapInCheckFix(pass *analysis.Pass, call *ast.CallExpr, stmt *ast.ExprStmt) (analysis.SuggestedFix, bool) {
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return analysis.SuggestedFix{}, false
	}
	n := sig.Results().Len()
	if n == 0 || (sig.Variadic() && call.Ellipsis.IsValid()) {
		return analysis.SuggestedFix{}, false
	}
	lhs := "err"
	if n > 1 {
		lhs = strings.Repeat("_, ", n-1) + "err"
	}
	indent := indentFor(pass, stmt.Pos())
	return analysis.SuggestedFix{
		Message: "wrap the call in an error check",
		TextEdits: []analysis.TextEdit{
			{Pos: stmt.Pos(), End: stmt.Pos(), NewText: []byte("if " + lhs + " := ")},
			{Pos: stmt.End(), End: stmt.End(), NewText: []byte("; err != nil {\n" + indent + "\tpanic(err)\n" + indent + "}")},
		},
	}, true
}

// insertCheckFix appends `if <name> != nil { panic(<name>) }` after the
// assignment, making the dead error variable live.
func insertCheckFix(pass *analysis.Pass, name string, stmt *ast.AssignStmt) (analysis.SuggestedFix, bool) {
	indent := indentFor(pass, stmt.Pos())
	check := "\n" + indent + "if " + name + " != nil {\n" + indent + "\tpanic(" + name + ")\n" + indent + "}"
	return analysis.SuggestedFix{
		Message: "check the assigned error",
		TextEdits: []analysis.TextEdit{
			{Pos: stmt.End(), End: stmt.End(), NewText: []byte(check)},
		},
	}, true
}

// indentFor reproduces the leading indentation of the line containing pos,
// assuming gofmt's tab indentation (a statement at column N sits behind
// N-1 tabs).
func indentFor(pass *analysis.Pass, pos token.Pos) string {
	col := pass.Fset.Position(pos).Column
	if col < 1 {
		col = 1
	}
	return strings.Repeat("\t", col-1)
}

// calleeObj resolves the called function's object, seeing through
// selectors and parens; nil for indirect calls.
func calleeObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}

// children returns n's immediate AST children, via ast.Inspect's
// depth-first contract.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
