package errcontract

import (
	"testing"

	"lifeguard/internal/analysis/analysistest"
)

func TestErrcontract(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "a", "api", "b", "clean", "ignore")
}

func TestErrcontractFix(t *testing.T) {
	analysistest.RunFix(t, ".", Analyzer, "fixable")
}
