// Package a exercises the flagged forms against contract functions
// defined in the same package.
package a

import "errors"

func AnnounceErr(prefix string) error {
	if prefix == "" {
		return errors.New("empty prefix")
	}
	return nil
}

func ParseErr(s string) (int, error) {
	if s == "" {
		return 0, errors.New("empty")
	}
	return len(s), nil
}

type Engine struct{}

func (e *Engine) WithdrawErr(prefix string) error {
	return nil
}

func bareStatement() {
	AnnounceErr("10.0.0.0/8") // want `result of AnnounceErr is an error contract: the error is discarded`
}

func bareMethod(e *Engine) {
	e.WithdrawErr("10.0.0.0/8") // want `result of e\.WithdrawErr is an error contract: the error is discarded`
}

func underGo() {
	go AnnounceErr("10.0.0.0/8") // want `result of AnnounceErr is an error contract: go/defer discards the error`
}

func underDefer() {
	defer AnnounceErr("10.0.0.0/8") // want `result of AnnounceErr is an error contract: go/defer discards the error`
}

func blankAssign() {
	_ = AnnounceErr("10.0.0.0/8") // want `result of AnnounceErr is an error contract: assigning the error to _ discards it`
}

func blankMulti() {
	_, _ = ParseErr("x") // want `result of ParseErr is an error contract: assigning the error to _ discards it`
}

func assignedNeverRead() {
	err := AnnounceErr("10.0.0.0/8") // want `result of AnnounceErr is an error contract: err is assigned but never read on any path`
	_ = 1
	err = AnnounceErr("192.168.0.0/16")
	if err != nil {
		panic(err)
	}
}

func insideClosure() {
	f := func() {
		AnnounceErr("10.0.0.0/8") // want `result of AnnounceErr is an error contract: the error is discarded`
	}
	f()
}
