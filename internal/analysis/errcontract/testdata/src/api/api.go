// Package api is the fact-exporting dependency: its contract functions
// are tagged with MustCheck facts that importing packages consume.
package api

import "errors"

type FailureID uint64

type Engine struct{}

func (e *Engine) AnnounceErr(prefix string) error {
	if prefix == "" {
		return errors.New("empty prefix")
	}
	return nil
}

func (e *Engine) WithdrawErr(prefix string) error {
	return nil
}

func ResolveErr(name string) (FailureID, error) {
	if name == "" {
		return 0, errors.New("empty name")
	}
	return 1, nil
}
