// Package ignore shows the suppression escape hatch: a reasoned
// //lint:ignore directive quiets the finding on the next line.
package ignore

func AnnounceErr(prefix string) error { return nil }

func suppressed() {
	//lint:ignore lglint/errcontract best-effort re-announce; failure handled by the retry loop
	AnnounceErr("10.0.0.0/8")
}

func notSuppressed() {
	AnnounceErr("10.0.0.0/8") // want `result of AnnounceErr is an error contract: the error is discarded`
}
