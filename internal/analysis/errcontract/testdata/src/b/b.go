// Package b consumes api's contract functions: the MustCheck facts
// exported while analyzing api drive the diagnostics here.
package b

import "api"

func bareCross(e *api.Engine) {
	e.AnnounceErr("10.0.0.0/8") // want `result of e\.AnnounceErr is an error contract: the error is discarded`
}

func blankCross() {
	_, _ = api.ResolveErr("link-7") // want `result of api\.ResolveErr is an error contract: assigning the error to _ discards it`
}

func deadCross(e *api.Engine) bool {
	err := e.WithdrawErr("10.0.0.0/8") // want `result of e\.WithdrawErr is an error contract: err is assigned but never read on any path`
	err = e.WithdrawErr("192.168.0.0/16")
	return err == nil
}

func checkedCross(e *api.Engine) {
	if err := e.AnnounceErr("10.0.0.0/8"); err != nil {
		panic(err)
	}
	id, err := api.ResolveErr("link-7")
	if err != nil {
		panic(err)
	}
	_ = id
}

func consumedCross(e *api.Engine) error {
	return e.AnnounceErr("10.0.0.0/8")
}
