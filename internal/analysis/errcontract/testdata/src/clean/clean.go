// Package clean holds the accepted forms: every contract error is read
// on some path, passed along, or the callee is not under the contract.
package clean

import "errors"

func AnnounceErr(prefix string) error {
	if prefix == "" {
		return errors.New("empty prefix")
	}
	return nil
}

// Err alone is not a contract name; neither is a func without an error.
func Err() error            { return nil }
func CountErr(s string) int { return len(s) }

func checkedInline() {
	if err := AnnounceErr("10.0.0.0/8"); err != nil {
		panic(err)
	}
}

func checkedLater() {
	err := AnnounceErr("10.0.0.0/8")
	if err != nil {
		panic(err)
	}
}

func checkedOnOneBranch(strict bool) {
	err := AnnounceErr("10.0.0.0/8")
	if strict && err != nil {
		panic(err)
	}
}

func propagated() error {
	return AnnounceErr("10.0.0.0/8")
}

func asArgument() {
	record := func(err error) {}
	record(AnnounceErr("10.0.0.0/8"))
}

func capturedByClosure() func() error {
	err := AnnounceErr("10.0.0.0/8")
	return func() error { return err }
}

func notContract() {
	Err()
	CountErr("x")
}
