// Package fixable holds findings that all carry suggested fixes, for the
// apply-then-relint round trip: after the fixes land, the analyzer must
// report nothing.
package fixable

import "errors"

func AnnounceErr(prefix string) error {
	if prefix == "" {
		return errors.New("empty prefix")
	}
	return nil
}

func ParseErr(s string) (int, error) {
	if s == "" {
		return 0, errors.New("empty")
	}
	return len(s), nil
}

func bare() {
	AnnounceErr("10.0.0.0/8") // want `result of AnnounceErr is an error contract: the error is discarded`
}

func bareMulti() {
	ParseErr("x") // want `result of ParseErr is an error contract: the error is discarded`
}

func nested(run bool) {
	if run {
		AnnounceErr("192.168.0.0/16") // want `result of AnnounceErr is an error contract: the error is discarded`
	}
}

func dead() {
	err := AnnounceErr("10.0.0.0/8") // want `result of AnnounceErr is an error contract: err is assigned but never read on any path`
	err = AnnounceErr("192.168.0.0/16")
	if err != nil {
		panic(err)
	}
}
