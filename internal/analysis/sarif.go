package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Encoders that surface lint findings on CI: SARIF 2.1.0 (consumed by
// `github/codeql-action/upload-sarif`, which renders findings inline on
// PRs) and GitHub workflow-command annotations (::error lines, rendered
// without any upload step). Both are driven by cmd/lglint's standalone
// mode; output is deterministic — findings are already position-sorted by
// analysis.Run and rules are emitted in name order.

// sarif 2.1.0 skeleton — only the fields the GitHub code-scanning ingester
// reads.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
	FullDescription  sarifText `json:"fullDescription,omitempty"`
}

type sarifText struct {
	Text string `json:"text,omitempty"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF encodes diagnostics as a SARIF 2.1.0 log. File paths are made
// relative to root (typically the module root) so the URIs match the
// repository layout GitHub expects; paths outside root are kept absolute.
func SARIF(fset *token.FileSet, diags []Diagnostic, analyzers []*Analyzer, root string) ([]byte, error) {
	byName := map[string]*Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}

	// Rules: every analyzer that produced at least one finding, plus the
	// directive checker when it fired. Name order.
	used := map[string]bool{}
	for _, d := range diags {
		used[d.Analyzer] = true
	}
	var names []string
	for n := range used {
		names = append(names, n)
	}
	sort.Strings(names)
	rules := make([]sarifRule, 0, len(names))
	for _, n := range names {
		r := sarifRule{ID: ruleID(n)}
		if a, ok := byName[n]; ok {
			r.ShortDescription = sarifText{Text: firstLine(a.Doc)}
			r.FullDescription = sarifText{Text: a.Doc}
		} else {
			r.ShortDescription = sarifText{Text: "problems with //lint:ignore suppression directives"}
		}
		rules = append(rules, r)
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		results = append(results, sarifResult{
			RuleID:  ruleID(d.Analyzer),
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relURI(root, posn.Filename)},
				Region:           sarifRegion{StartLine: posn.Line, StartColumn: posn.Column},
			}}},
		})
	}

	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "lglint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

// ruleID is the SARIF rule identifier for an analyzer name, matching the
// suppression-directive spelling.
func ruleID(analyzer string) string {
	if analyzer == DirectiveCheckerName {
		return DirectiveCheckerName
	}
	return ourPrefix + analyzer
}

// relURI relativizes file against root with forward slashes, as SARIF
// artifact URIs require.
func relURI(root, file string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

// GitHubAnnotations renders diagnostics as GitHub Actions workflow
// commands, one ::error line per finding, which the Actions runner turns
// into inline PR annotations with no upload step.
func GitHubAnnotations(fset *token.FileSet, diags []Diagnostic, root string) string {
	var sb strings.Builder
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		fmt.Fprintf(&sb, "::error file=%s,line=%d,col=%d,title=%s::%s\n",
			ghEscapeProp(relURI(root, posn.Filename)), posn.Line, posn.Column,
			ghEscapeProp(ruleID(d.Analyzer)), ghEscapeData(d.Message))
	}
	return sb.String()
}

// ghEscapeData escapes a workflow-command message per the Actions runner's
// rules.
func ghEscapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// ghEscapeProp escapes a workflow-command property value.
func ghEscapeProp(s string) string {
	s = ghEscapeData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}
