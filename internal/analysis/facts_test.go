package analysis

import (
	"bytes"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

type markFact struct {
	Note string
}

func (*markFact) AFact() {}

type otherFact struct{}

func (*otherFact) AFact() {}

func typecheckSrc(t *testing.T, path, src string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:     make(map[ast.Expr]types.TypeAndValue),
		Defs:      make(map[*ast.Ident]types.Object),
		Uses:      make(map[*ast.Ident]types.Object),
		Implicits: make(map[ast.Node]types.Object),
	}
	conf := &types.Config{Importer: importer.Default()}
	pkg, err := conf.Check(path, fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, []*ast.File{file}, pkg, info
}

func TestFactRoundTripAcrossEncode(t *testing.T) {
	_, _, pkg, _ := typecheckSrc(t, "p", `package p
func AnnounceErr() error { return nil }
type Engine struct{}
func (e *Engine) WithdrawErr() error { return nil }
`)
	a := &Analyzer{Name: "t", Doc: "t", FactTypes: []Fact{(*markFact)(nil)}}

	s := NewFactSet()
	fn := pkg.Scope().Lookup("AnnounceErr")
	s.export(a, pkg, fn, &markFact{Note: "fn"})
	eng := pkg.Scope().Lookup("Engine").Type().(*types.Named)
	var method types.Object
	for i := 0; i < eng.NumMethods(); i++ {
		method = eng.Method(i)
	}
	s.export(a, pkg, method, &markFact{Note: "method"})

	data, err := s.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	s2 := NewFactSet()
	if err := s2.Decode(data); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	var got markFact
	if !s2.importFact(a, pkg, fn, &got) || got.Note != "fn" {
		t.Errorf("function fact did not round-trip: ok=%v note=%q", got.Note != "", got.Note)
	}
	got = markFact{}
	if !s2.importFact(a, pkg, method, &got) || got.Note != "method" {
		t.Errorf("method fact (Type.Method path) did not round-trip: note=%q", got.Note)
	}
}

func TestFactsAreKeyedByAnalyzerAndType(t *testing.T) {
	_, _, pkg, _ := typecheckSrc(t, "p", `package p
func F() {}
`)
	a := &Analyzer{Name: "a", Doc: "a", FactTypes: []Fact{(*markFact)(nil), (*otherFact)(nil)}}
	b := &Analyzer{Name: "b", Doc: "b", FactTypes: []Fact{(*markFact)(nil)}}
	fn := pkg.Scope().Lookup("F")

	s := NewFactSet()
	s.export(a, pkg, fn, &markFact{Note: "x"})
	if s.importFact(b, pkg, fn, &markFact{}) {
		t.Error("analyzer b sees analyzer a's fact")
	}
	if s.importFact(a, pkg, fn, &otherFact{}) {
		t.Error("otherFact lookup matched a markFact entry")
	}
	if !s.importFact(a, pkg, fn, &markFact{}) {
		t.Error("owner cannot read back its own fact")
	}
}

func TestEncodeIsDeterministicAndDecodeTolerant(t *testing.T) {
	_, _, pkg, _ := typecheckSrc(t, "p", `package p
func A() {}
func B() {}
func C() {}
`)
	a := &Analyzer{Name: "t", Doc: "t", FactTypes: []Fact{(*markFact)(nil)}}
	build := func(order []string) []byte {
		s := NewFactSet()
		for _, n := range order {
			s.export(a, pkg, pkg.Scope().Lookup(n), &markFact{Note: n})
		}
		data, err := s.Encode()
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		return data
	}
	if !bytes.Equal(build([]string{"A", "B", "C"}), build([]string{"C", "A", "B"})) {
		t.Error("Encode output depends on export order")
	}

	var s FactSet
	if err := s.Decode(nil); err != nil {
		t.Errorf("Decode(nil): %v", err)
	}
	if err := s.Decode([]byte{}); err != nil {
		t.Errorf("Decode(empty): %v", err)
	}
}

func TestUndeclaredFactTypePanics(t *testing.T) {
	_, _, pkg, _ := typecheckSrc(t, "p", `package p
func F() {}
`)
	a := &Analyzer{Name: "t", Doc: "t"} // no FactTypes
	defer func() {
		if recover() == nil {
			t.Error("export with undeclared fact type did not panic")
		}
	}()
	NewFactSet().export(a, pkg, pkg.Scope().Lookup("F"), &markFact{})
}

func TestPackageFacts(t *testing.T) {
	_, _, pkg, _ := typecheckSrc(t, "p", `package p
func F() {}
`)
	a := &Analyzer{Name: "t", Doc: "t", FactTypes: []Fact{(*markFact)(nil)}}
	s := NewFactSet()
	s.export(a, pkg, nil, &markFact{Note: "pkg"})
	data, err := s.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	s2 := NewFactSet()
	if err := s2.Decode(data); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	var got markFact
	if !s2.importFact(a, pkg, nil, &got) || got.Note != "pkg" {
		t.Errorf("package fact did not round-trip: note=%q", got.Note)
	}
}
