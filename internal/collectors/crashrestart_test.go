package collectors_test

import (
	"testing"
	"time"

	"lifeguard"
	"lifeguard/internal/collectors"
	"lifeguard/internal/topo"
)

// TestWithdrawalsThroughCrashRestartWindow pins the collector's view of a
// non-graceful control-plane restart: when the origin's speaker crashes
// without graceful restart, every peer that loses its route must have a
// nil-path (withdrawal) entry recorded, and the restore's re-announcement
// must append fresh path entries restoring the pre-crash view. With
// graceful restart the window is invisible — no withdrawal entries at all.
func TestWithdrawalsThroughCrashRestartWindow(t *testing.T) {
	const (
		asO lifeguard.ASN = 10
		asB lifeguard.ASN = 20
		asA lifeguard.ASN = 30
	)
	build := func(t *testing.T, noGraceful bool) (*lifeguard.Network, *lifeguard.Session, *collectors.Collector) {
		t.Helper()
		b := lifeguard.NewTopologyBuilder()
		for _, asn := range []lifeguard.ASN{asO, asB, asA} {
			b.AddAS(asn, "")
			b.AddRouter(asn, "")
		}
		for _, r := range [][2]lifeguard.ASN{{asO, asB}, {asB, asA}} {
			b.Provider(r[0], r[1])
			b.ConnectAS(r[0], r[1])
		}
		top, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		n, err := lifeguard.AssembleNetwork(top, lifeguard.NetworkOptions{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		col := collectors.New(n.Eng, asA, asB)
		ses := lifeguard.NewSession(n, lifeguard.SessionConfig{
			Config:            lifeguard.Config{Origin: asO},
			NoGracefulRestart: noGraceful,
		})
		ses.Start()
		n.Clk.RunFor(1 * time.Minute)
		n.Converge()
		return n, ses, col
	}

	t.Run("non-graceful", func(t *testing.T) {
		n, ses, col := build(t, true)
		prod := topo.ProductionPrefix(asO)
		before := col.CurrentPath(asA, prod)
		if before == nil {
			t.Fatal("A never recorded the production route")
		}

		ses.CrashControl()
		n.Converge()
		for _, peer := range col.Peers() {
			if p := col.CurrentPath(peer, prod); p != nil {
				t.Fatalf("peer %d still holds %v through a non-graceful crash", peer, p)
			}
			ups := col.Updates(peer, prod)
			if len(ups) == 0 || ups[len(ups)-1].Path != nil {
				t.Fatalf("peer %d has no withdrawal entry recorded", peer)
			}
		}

		ses.RestoreControl()
		n.Converge()
		after := col.CurrentPath(asA, prod)
		if !after.Equal(before) {
			t.Fatalf("restore did not rebuild A's route: %v, want %v", after, before)
		}
		// The crash-restart window is fully journaled in the stream:
		// announce, withdraw, re-announce.
		if ups := col.Updates(asA, prod); len(ups) < 3 {
			t.Fatalf("A's stream has %d entries, want >= 3 (announce, withdraw, re-announce)", len(ups))
		}
	})

	t.Run("graceful", func(t *testing.T) {
		n, ses, col := build(t, false)
		prod := topo.ProductionPrefix(asO)

		ses.CrashControl()
		n.Converge()
		ses.RestoreControl()
		n.Converge()
		for _, peer := range col.Peers() {
			for _, e := range col.Updates(peer, prod) {
				if e.Path == nil {
					t.Fatalf("peer %d recorded a withdrawal through a graceful restart", peer)
				}
			}
			if col.CurrentPath(peer, prod) == nil {
				t.Fatalf("peer %d lost the route", peer)
			}
		}
	})
}
